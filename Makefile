.PHONY: all build test bench bench-json ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full-quota run that refreshes the checked-in perf-trajectory file.
bench-json:
	dune exec bench/main.exe -- --json BENCH_lp.json

# Build + tests + a tiny-quota bench smoke run (same as scripts/ci.sh).
ci:
	sh scripts/ci.sh

clean:
	dune clean
