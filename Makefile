.PHONY: all build test bench bench-json ci par-check soak soak-smoke soak-resume msgs-check net-check multi-check explore-check serve serve-smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full-quota run that refreshes the checked-in perf-trajectory file.
# Quota 1 s: the slowest row (B5 seed one-shot, ~0.9 s/run) needs it to
# get enough samples for a clean OLS fit — ci.sh gates r^2 >= 0.7 on the
# committed file's derived-key rows.
# --quota 3: at 1 s the 10-100 ms rows get too few samples for stable
# OLS fits on a noisy host, and ci.sh gates r^2 >= 0.7 on the committed
# file (the B5/B2D slow group separately enforces a >= 8 s quota).
bench-json:
	dune exec bench/main.exe -- --quota 3 --json BENCH_lp.json

# Build + tests + a tiny-quota bench smoke run (same as scripts/ci.sh).
ci:
	sh scripts/ci.sh

# Determinism audit: the experiment reports must be byte-identical no
# matter how many worker domains run the sweeps.
par-check:
	dune build bin/experiments_main.exe
	dune exec bin/experiments_main.exe -- --domains 1 e1 e9 e10 e15 > _build/EXP_d1.txt
	dune exec bin/experiments_main.exe -- --domains 2 e1 e9 e10 e15 > _build/EXP_d2.txt
	cmp _build/EXP_d1.txt _build/EXP_d2.txt
	@echo "par-check: OK (1-domain and 2-domain reports are byte-identical)"

# Randomized chaos soak: seeded (scenario x fault-plan) cases under the
# online invariant monitor and a per-case watchdog (event budget + wall
# deadline), violations shrunk to minimal reproducing plans, watchdogged
# or worker-crashed cases quarantined with a shrunk repro. Writes
# SOAK.json (schema "maaa-soak/2"):
#   seed, mutant, case_events, cases, sync_cases, async_cases -- the grid
#   checks, violations_total, invariants{...}      -- per-invariant totals
#     (validity, agreement, contraction, double-output, malformed-message)
#   missing_outputs, party_failures                -- liveness / isolation
#   quarantined                                    -- watchdogged/crashed cases
#   worst_final_diameter{case, value, eps}         -- tightest agreement seen
#   quarantined_cases[{name, seed, sync, reason, plan, shrunk_plan,
#     shrink_tries, shrink_minimal}]
#   violating_cases[{name, seed, sync, invariants, violations,
#     first_violation, plan, shrunk_plan, shrink_tries, shrink_minimal}]
# Quarantined cases are excluded from every aggregate (a truncated run's
# monitor tables are not trustworthy). The report contains no wall-clock
# data and is byte-identical for any --domains count and for an
# interrupted-and-resumed sweep (--journal FILE / --resume) vs an
# uninterrupted one. Exit code 1 iff any invariant was violated (expected
# with --mutant non-contracting | premature-output).
soak:
	dune exec bin/soak_main.exe -- --cases 500 --seed 7 --journal _build/SOAK.journal

soak-smoke:
	dune exec bin/soak_main.exe -- --smoke --domains 2 --out _build/SOAK_smoke.json

# Kill-and-resume audit: SIGKILL a journaled sweep mid-run, resume it on a
# different --domains count, and require the byte-identical SOAK.json.
soak-resume:
	sh scripts/soak_resume.sh

# Exact per-class message-count check on one pinned configuration
# (n=8, ts=2, ta=1, D=2, lockstep, honest) across the reference rBC
# stack (closed-form model), the batched message layer (pinned packet
# counts, identical logical votes) and the EW quadratic protocol
# (2n^2 per iteration). Deterministic; any drift fails.
msgs-check:
	dune exec bin/msgs_check.exe

# Sim-as-oracle differential gate for the networked runtime: every
# pinned-grid case (D in {1,2}, n in {4,8}, sync + async policies,
# clean / silent / input-poisoning corruption arms) runs three times --
# on the simulator backend, on the loopback TCP perfect-link backend,
# and on the TCP backend under frame chaos (drop/duplicate/reorder/
# delay-spike/connection-flap). The three results must be structurally
# identical after masking wire statistics, and the chaos run's online
# monitor must record zero violations. Exit 1 on any mismatch.
net-check:
	dune exec bin/net_check_main.exe

# Multiplexed-engine differential gate: the full k-instances x D x
# sync/async x corruption grid, every multiplexed run required to be
# byte-identical to its sequential references (results, stats, traffic,
# traces, monitor summaries). Exit 1 with one line per mismatch.
multi-check:
	dune exec bin/multi_check_main.exe

# Bounded model checking of the pinned small configuration: DFS over all
# delivery interleavings the engine can produce (chooser seam in
# lib/sim/engine), every execution graded by the online monitor. Gates:
# the honest n=3 D=1 space is exhaustively clean, both protocol mutants
# (non-contracting, premature-output) are rediscovered with shrunk,
# replay-verified (plan, schedule) repros, and DPOR-style persistent
# sets + canonical-state dedup beat naive enumeration >= 5x. Exit 1 on
# any gate failure. Ad-hoc exploration: `dune exec bin/explore_main.exe
# -- --n 4 --ts 1 --adversary crash:3:2 --depth 3 --out Q.tsv`, then
# `--replay Q.tsv`.
explore-check:
	dune exec bin/explore_main.exe -- --check

# Serve-throughput visibility: push N requests through the batch core
# (no sockets) and print requests/sec. Measured, not gated; any failed
# request exits non-zero.
serve-smoke:
	dune exec bin/serve_main.exe -- --throughput-smoke 64

# The agreement front door: a line-oriented TCP service that batches
# client agreement requests per connection and multiplexes them over
# the worker-domain pool (protocol in lib/harness/serve.mli).
# --port 0 binds an ephemeral port and prints "listening <port>".
serve:
	dune exec bin/serve_main.exe -- --port 7171

clean:
	dune clean
