.PHONY: all build test bench bench-json ci par-check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full-quota run that refreshes the checked-in perf-trajectory file.
bench-json:
	dune exec bench/main.exe -- --json BENCH_lp.json

# Build + tests + a tiny-quota bench smoke run (same as scripts/ci.sh).
ci:
	sh scripts/ci.sh

# Determinism audit: the experiment reports must be byte-identical no
# matter how many worker domains run the sweeps.
par-check:
	dune build bin/experiments_main.exe
	dune exec bin/experiments_main.exe -- --domains 1 e1 e9 e10 e15 > _build/EXP_d1.txt
	dune exec bin/experiments_main.exe -- --domains 2 e1 e9 e10 e15 > _build/EXP_d2.txt
	cmp _build/EXP_d1.txt _build/EXP_d2.txt
	@echo "par-check: OK (1-domain and 2-domain reports are byte-identical)"

clean:
	dune clean
