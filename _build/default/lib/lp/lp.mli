(** A small, dependency-free linear-programming solver.

    Dense two-phase primal simplex with Bland's anti-cycling rule. All
    structural variables are constrained to be non-negative; callers model a
    free variable [y] as the difference [y⁺ − y⁻] of two variables.

    The solver is deterministic: identical problems yield identical optimal
    bases and solutions, which the agreement protocol relies on (parties
    recompute each other's values and must agree bit-for-bit). *)

type cmp = Le | Ge | Eq

type constr = { coeffs : (int * float) list; cmp : cmp; rhs : float }
(** A row [Σ coeffs·x  cmp  rhs]. Variable indices are 0-based and must be
    [< nvars]. Repeated indices in [coeffs] are summed. *)

type result =
  | Optimal of float * float array
      (** Objective value and an optimal assignment of the [nvars]
          structural variables. *)
  | Infeasible
  | Unbounded

val solve :
  ?eps:float ->
  nvars:int ->
  minimize:bool ->
  objective:(int * float) list ->
  constr list ->
  result
(** [solve ~nvars ~minimize ~objective cs] optimises [objective] over
    [{x ≥ 0 : cs}]. [eps] (default [1e-9]) is the numerical tolerance used
    for pivoting and feasibility decisions.

    @raise Failure if the iteration cap is exceeded, which indicates a
    numerically degenerate instance rather than a user error. *)

val feasible_point :
  ?eps:float -> nvars:int -> constr list -> float array option
(** Phase-1 only: some point of the polyhedron, or [None] if empty. *)
