(** Workload generators: the input distributions the experiments and
    examples feed to the protocols. All are deterministic given the RNG. *)

val simplex_corners : d:int -> scale:float -> n:int -> Vec.t list
(** Party [i] gets [scale·e_{i mod (d+1)}] (with [e_0 = 0]): the adversarial
    corner configuration of Theorem 3.1 / Figure 1. *)

val uniform_cube : Rng.t -> d:int -> n:int -> side:float -> Vec.t list
(** i.i.d. uniform points in [\[0, side\]^d]. *)

val gaussian_cluster :
  Rng.t -> d:int -> n:int -> center:Vec.t -> spread:float -> Vec.t list
(** Points around [center] (Box–Muller, radius ~ [spread]). *)

val two_clusters : Rng.t -> d:int -> n:int -> separation:float -> Vec.t list
(** Half the parties near the origin, half near
    [separation·(1,…,1)/√d] — a worst-ish case for convergence. *)

val gradients :
  Rng.t -> d:int -> n:int -> truth:Vec.t -> noise:float -> Vec.t list
(** Federated-learning-style inputs: the common gradient [truth] plus
    per-party zero-mean noise of magnitude [noise]. *)

val ring : n:int -> radius:float -> Vec.t list
(** [n] points on a circle in the plane (robot-gathering workload). *)
