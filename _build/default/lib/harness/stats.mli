(** Small descriptive-statistics helpers for the sweep experiments. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] for [p ∈ [0, 100]], linear interpolation between
    order statistics. @raise Invalid_argument on an empty list. *)

val pp : Format.formatter -> summary -> unit
