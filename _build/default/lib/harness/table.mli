(** Minimal aligned ASCII tables for the experiment reports. *)

val render : header:string list -> string list list -> string
(** Pads each column to its widest cell; rows shorter than the header are
    padded with empty cells. *)

val print : header:string list -> string list list -> unit
(** [render] to stdout, followed by a newline. *)
