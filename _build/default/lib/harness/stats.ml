type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
  end

let summarize xs =
  if xs = [] then invalid_arg "Stats.summarize: empty list";
  let n = List.length xs in
  let fn = float_of_int n in
  let mean = List.fold_left ( +. ) 0. xs /. fn in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. fn
  in
  {
    count = n;
    mean;
    stddev = sqrt var;
    min = List.fold_left Float.min infinity xs;
    max = List.fold_left Float.max neg_infinity xs;
    median = percentile xs 50.;
  }

let pp ppf s =
  Format.fprintf ppf "n=%d mean=%.3g sd=%.3g min=%.3g med=%.3g max=%.3g"
    s.count s.mean s.stddev s.min s.median s.max
