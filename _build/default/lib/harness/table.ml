let render ~header rows =
  let ncols = List.length header in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths =
    List.mapi
      (fun c h ->
        List.fold_left
          (fun acc r -> max acc (String.length (List.nth r c)))
          (String.length h) rows)
      header
  in
  let fmt_row cells =
    String.concat "  "
      (List.map2
         (fun w cell -> cell ^ String.make (w - String.length cell) ' ')
         widths cells)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (fmt_row header :: sep :: List.map fmt_row rows)

let print ~header rows = print_endline (render ~header rows)
