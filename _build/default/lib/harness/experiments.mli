(** The experiment suite: one entry per paper artefact (figures, theorems,
    quantitative lemma claims), as indexed in DESIGN.md §3. Each experiment
    prints a self-contained report (tables included) to stdout and returns
    [true] when every checked property held. [EXPERIMENTS.md] records the
    reference output. *)

val all : (string * string * (unit -> bool)) list
(** [(id, title, run)] for e1 … e12, in order. *)

val run_one : string -> bool
(** Runs the experiment with the given id ([e1] … [e12]).
    @raise Not_found for an unknown id. *)

val run_all : unit -> bool
(** Runs every experiment; [true] iff all passed. *)
