(** Runs the two baseline protocols under the same grading as {!Runner},
    for the comparison experiment (E12).

    Corruptions here are value-poisoning or silence: the strongest attacks
    expressible inside these simpler protocols. [rounds] is the iteration
    budget; {!rounds_for} derives it from the (assumed-known) input spread
    the way the baselines' original papers do. *)

type result = {
  live : bool;
  valid : bool;
  agreement : bool;
  diameter : float;
  outputs : (int * Vec.t) list;
  completion_rounds : float;  (** completion time / Δ *)
  starved_rounds : int;  (** sync baseline only: rounds with missing values *)
  stats : Engine.stats;
}

type corruption = Poison of Vec.t | Mute

val rounds_for : eps:float -> inputs:Vec.t list -> int
(** [⌈log_{√(7/8)}(ε / δmax(inputs))⌉], clamped to ≥ 1. *)

val run_sync_baseline :
  ?seed:int64 ->
  ?policy:Engine.delay_policy ->
  n:int ->
  t:int ->
  rounds:int ->
  delta:int ->
  eps:float ->
  inputs:Vec.t list ->
  corruptions:(int * corruption) list ->
  unit ->
  result

val run_async_baseline :
  ?seed:int64 ->
  ?policy:Engine.delay_policy ->
  n:int ->
  t:int ->
  iters:int ->
  delta:int ->
  eps:float ->
  inputs:Vec.t list ->
  corruptions:(int * corruption) list ->
  unit ->
  result
