type result = {
  live : bool;
  valid : bool;
  agreement : bool;
  diameter : float;
  outputs : (int * Vec.t) list;
  completion_rounds : float;
  starved_rounds : int;
  stats : Engine.stats;
}

type corruption = Poison of Vec.t | Mute

let rounds_for ~eps ~inputs =
  let diam = Vec.diameter inputs in
  if diam <= eps then 1
  else max 1 (int_of_float (Float.ceil (log (eps /. diam) /. log Params.conv_factor)))

let grade ~n ~eps ~delta ~inputs ~corruptions ~honest_count ~starved engine outputs =
  let inputs = Array.of_list inputs in
  let honest_inputs =
    List.filter_map
      (fun i -> if List.mem_assoc i corruptions then None else Some inputs.(i))
      (List.init n Fun.id)
  in
  let live = List.length outputs = honest_count in
  let valid =
    outputs <> []
    && List.for_all
         (fun (_, v) -> Membership.in_hull ~eps:1e-6 honest_inputs v)
         outputs
  in
  let diameter = Vec.diameter (List.map snd outputs) in
  let stats = Engine.stats engine in
  {
    live;
    valid;
    agreement = live && diameter <= eps +. 1e-9;
    diameter;
    outputs;
    completion_rounds = float_of_int stats.Engine.final_time /. float_of_int delta;
    starved_rounds = starved;
    stats;
  }

let effective_input inputs corruptions i =
  match List.assoc_opt i corruptions with
  | Some (Poison v) -> Some v
  | Some Mute -> None
  | None -> Some (List.nth inputs i)

let run_sync_baseline ?(seed = 1L) ?policy ~n ~t ~rounds ~delta ~eps ~inputs
    ~corruptions () =
  let policy =
    match policy with Some p -> p | None -> Network.lockstep ~delta
  in
  let engine = Engine.create ~seed ~size_of:Message.size_of ~n ~policy () in
  let attached =
    List.filter_map
      (fun i ->
        match effective_input inputs corruptions i with
        | Some v ->
            let p = Sync_aa.attach ~n ~t ~rounds ~delta ~me:i engine in
            Some (i, p, v)
        | None -> None)
      (List.init n Fun.id)
  in
  List.iter (fun (_, p, v) -> Sync_aa.start p v) attached;
  Engine.run engine;
  let honest =
    List.filter (fun (i, _, _) -> not (List.mem_assoc i corruptions)) attached
  in
  let outputs =
    List.filter_map
      (fun (i, p, _) -> Option.map (fun v -> (i, v)) (Sync_aa.output p))
      honest
  in
  let starved =
    List.fold_left (fun acc (_, p, _) -> acc + Sync_aa.starved_rounds p) 0 honest
  in
  grade ~n ~eps ~delta ~inputs ~corruptions ~honest_count:(List.length honest)
    ~starved engine outputs

let run_async_baseline ?(seed = 1L) ?policy ~n ~t ~iters ~delta ~eps ~inputs
    ~corruptions () =
  let policy =
    match policy with Some p -> p | None -> Network.lockstep ~delta
  in
  let engine = Engine.create ~seed ~size_of:Message.size_of ~n ~policy () in
  let attached =
    List.filter_map
      (fun i ->
        match effective_input inputs corruptions i with
        | Some v ->
            let p = Async_aa.attach ~n ~t ~iters ~me:i engine in
            Some (i, p, v)
        | None -> None)
      (List.init n Fun.id)
  in
  List.iter (fun (_, p, v) -> Async_aa.start p v) attached;
  Engine.run engine;
  let honest =
    List.filter (fun (i, _, _) -> not (List.mem_assoc i corruptions)) attached
  in
  let outputs =
    List.filter_map
      (fun (i, p, _) -> Option.map (fun v -> (i, v)) (Async_aa.output p))
      honest
  in
  grade ~n ~eps ~delta ~inputs ~corruptions ~honest_count:(List.length honest)
    ~starved:0 engine outputs
