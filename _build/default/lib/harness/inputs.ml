let simplex_corners ~d ~scale ~n =
  List.init n (fun i ->
      let c = i mod (d + 1) in
      if c = 0 then Vec.zero d else Vec.basis ~dim:d (c - 1) scale)

let uniform_cube rng ~d ~n ~side =
  List.init n (fun _ ->
      Vec.of_list (List.init d (fun _ -> Rng.float_range rng 0. side)))

(* Box–Muller from two uniform draws. *)
let gaussian rng =
  let u1 = max 1e-12 (Rng.float01 rng) and u2 = Rng.float01 rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let gaussian_cluster rng ~d ~n ~center ~spread =
  if Vec.dim center <> d then invalid_arg "Inputs.gaussian_cluster";
  List.init n (fun _ ->
      Vec.add center
        (Vec.of_list (List.init d (fun _ -> spread *. gaussian rng))))

let two_clusters rng ~d ~n ~separation =
  let far =
    Vec.scale (separation /. sqrt (float_of_int d)) (Vec.make d 1.)
  in
  List.init n (fun i ->
      let center = if i mod 2 = 0 then Vec.zero d else far in
      Vec.add center
        (Vec.of_list
           (List.init d (fun _ -> 0.05 *. separation *. gaussian rng))))

let gradients rng ~d ~n ~truth ~noise =
  if Vec.dim truth <> d then invalid_arg "Inputs.gradients";
  List.init n (fun _ ->
      Vec.add truth
        (Vec.of_list (List.init d (fun _ -> noise *. gaussian rng))))

let ring ~n ~radius =
  List.init n (fun i ->
      let angle = 2. *. Float.pi *. float_of_int i /. float_of_int n in
      Vec.of_list [ radius *. cos angle; radius *. sin angle ])
