lib/harness/runner.ml: Array Behavior Config Engine Float Format List Membership Message Option Party Scenario Traffic Vec
