lib/harness/baseline_runner.mli: Engine Vec
