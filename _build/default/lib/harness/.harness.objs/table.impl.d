lib/harness/table.ml: List String
