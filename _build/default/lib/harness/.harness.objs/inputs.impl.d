lib/harness/inputs.ml: Float List Rng Vec
