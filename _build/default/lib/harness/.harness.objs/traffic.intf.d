lib/harness/traffic.mli: Engine Message
