lib/harness/traffic.ml: Array Engine List Message
