lib/harness/table.mli:
