lib/harness/scenario.mli: Behavior Config Engine Vec
