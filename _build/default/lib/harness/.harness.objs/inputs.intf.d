lib/harness/inputs.mli: Rng Vec
