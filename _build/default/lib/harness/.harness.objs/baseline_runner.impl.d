lib/harness/baseline_runner.ml: Array Async_aa Engine Float Fun List Membership Message Network Option Params Sync_aa Vec
