lib/harness/fixtures.mli: Engine Message Pairset Vec
