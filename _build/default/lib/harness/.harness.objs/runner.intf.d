lib/harness/runner.mli: Engine Format Scenario Vec
