lib/harness/fixtures.ml: Array Engine Init_round List Message Obc Option Pairset Rbc Vec
