lib/harness/experiments.mli:
