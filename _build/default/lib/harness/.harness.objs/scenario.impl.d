lib/harness/scenario.ml: Array Behavior Config Engine Fun List Network Vec
