lib/sim/rng.mli:
