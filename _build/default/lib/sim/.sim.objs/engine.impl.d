lib/sim/engine.ml: Array Heap Option Rng
