lib/sim/heap.mli:
