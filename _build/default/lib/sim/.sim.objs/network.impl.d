lib/sim/network.ml: Rng
