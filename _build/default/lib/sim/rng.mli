(** Deterministic pseudo-random numbers (SplitMix64).

    Every source of randomness in the simulator flows from one of these
    generators, so a run is exactly reproducible from its seed. The state is
    mutable; use {!split} to derive independent streams (e.g. one per party)
    whose draws do not perturb each other. *)

type t

val create : int64 -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float01 : t -> float
(** Uniform in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val split : t -> t
(** A new generator seeded from (and advancing) [t], statistically
    independent of subsequent draws from [t]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
