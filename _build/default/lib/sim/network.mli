(** Delay policies: the adversary's message-scheduling power.

    Synchronous policies always return delays in [\[1, Δ\]], matching the
    model where every message arrives within Δ. Asynchronous policies
    return arbitrary finite delays — delivery is eventual but unbounded, and
    the adversary can starve chosen parties for long stretches. *)

(* -- synchronous policies (delays ≤ Δ) -- *)

val instant : Engine.delay_policy
(** Every message takes exactly one tick: an idealised LAN. *)

val lockstep : delta:int -> Engine.delay_policy
(** Every message takes exactly Δ: the worst uniform synchronous
    schedule. *)

val sync_uniform : delta:int -> Engine.delay_policy
(** Uniform random delay in [\[1, Δ\]]. *)

val rushing : delta:int -> corrupt:(int -> bool) -> Engine.delay_policy
(** A rushing adversary: messages {e from} corrupted parties arrive in one
    tick, honest traffic takes the full Δ — corrupted parties react to
    honest values before anyone else hears them. *)

val targeted_slow :
  delta:int -> victims:(int -> bool) -> Engine.delay_policy
(** Messages to or from victim parties take the full Δ; the rest of the
    network is fast (1 tick). Still synchronous. *)

(* -- asynchronous policies (finite but unbounded delays) -- *)

val async_uniform : max_delay:int -> Engine.delay_policy
(** Uniform random delay in [\[1, max_delay\]] with [max_delay] typically
    far above the protocol's assumed Δ. *)

val async_starve :
  victims:(int -> bool) -> release:int -> fast:int -> Engine.delay_policy
(** Messages to or from victims are held back until around time [release]
    (plus up to [fast] jitter); all other traffic is delivered within
    [fast] ticks. Models an adversary partitioning away [ts − ta] honest
    parties — the fallback regime the hybrid protocol must survive. *)

val async_heavy_tail : base:int -> Engine.delay_policy
(** Mostly-fast delivery with occasional very long delays
    ([base × 100] with probability 1/50, [base × 10] with probability
    1/10). *)

val async_block :
  blocked:(src:int -> dst:int -> bool) ->
  release:int ->
  fast:int ->
  Engine.delay_policy
(** Pairwise starvation: messages on [blocked] (src, dst) channels are held
    until around [release]; everything else is delivered within [fast]
    ticks. Different receivers can thus miss {e different} senders — the
    schedule that separates the witness-based ΠoBC from its ablation. *)
