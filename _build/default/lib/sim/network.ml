let instant ~rng:_ ~now:_ ~src:_ ~dst:_ = 1
let lockstep ~delta ~rng:_ ~now:_ ~src:_ ~dst:_ = delta
let sync_uniform ~delta ~rng ~now:_ ~src:_ ~dst:_ = 1 + Rng.int rng delta

let rushing ~delta ~corrupt ~rng:_ ~now:_ ~src ~dst:_ =
  if corrupt src then 1 else delta

let targeted_slow ~delta ~victims ~rng:_ ~now:_ ~src ~dst =
  if victims src || victims dst then delta else 1

let async_uniform ~max_delay ~rng ~now:_ ~src:_ ~dst:_ =
  1 + Rng.int rng max_delay

let async_starve ~victims ~release ~fast ~rng ~now ~src ~dst =
  let jitter = 1 + Rng.int rng (max 1 fast) in
  if victims src || victims dst then max jitter (release - now + jitter)
  else jitter

let async_heavy_tail ~base ~rng ~now:_ ~src:_ ~dst:_ =
  let roll = Rng.int rng 100 in
  if roll < 2 then base * 100
  else if roll < 12 then base * 10
  else 1 + Rng.int rng base

let async_block ~blocked ~release ~fast ~rng ~now ~src ~dst =
  let jitter = 1 + Rng.int rng (max 1 fast) in
  if blocked ~src ~dst then max jitter (release - now + jitter) else jitter
