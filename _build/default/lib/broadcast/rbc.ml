module IdMap = Map.Make (struct
  type t = Message.rbc_id

  let compare = Stdlib.compare
end)

module PayloadMap = Map.Make (struct
  type t = Message.payload

  let compare = Stdlib.compare
end)

module IntSet = Set.Make (Int)

type instance = {
  mutable echoed : bool;  (* sent our echo (for some value) *)
  mutable readied : bool;  (* sent our ready (for some value) *)
  mutable output : Message.payload option;
  mutable echo_votes : IntSet.t PayloadMap.t;  (* value -> echo senders *)
  mutable ready_votes : IntSet.t PayloadMap.t;  (* value -> ready senders *)
}

type callbacks = {
  send_all : Message.t -> unit;
  deliver : Message.rbc_id -> Message.payload -> unit;
}

type t = {
  n : int;
  thr : int;
  cb : callbacks;
  mutable instances : instance IdMap.t;
}

let create ~n ~t cb =
  if n <= 3 * t then invalid_arg "Rbc.create: requires n > 3t";
  { n; thr = t; cb; instances = IdMap.empty }

let instance t id =
  match IdMap.find_opt id t.instances with
  | Some inst -> inst
  | None ->
      let inst =
        {
          echoed = false;
          readied = false;
          output = None;
          echo_votes = PayloadMap.empty;
          ready_votes = PayloadMap.empty;
        }
      in
      t.instances <- IdMap.add id inst t.instances;
      inst

let votes map v = try IntSet.cardinal (PayloadMap.find v map) with Not_found -> 0

let add_vote map ~from v =
  PayloadMap.update v
    (function
      | None -> Some (IntSet.singleton from)
      | Some s -> Some (IntSet.add from s))
    map

let send_echo t id v inst =
  if not inst.echoed then begin
    inst.echoed <- true;
    t.cb.send_all (Message.Rbc (id, Message.Echo, v))
  end

let send_ready t id v inst =
  if not inst.readied then begin
    inst.readied <- true;
    t.cb.send_all (Message.Rbc (id, Message.Ready, v))
  end

let check_progress t id inst v =
  (* n - t echoes, or t + 1 readies: send our ready for v *)
  if
    (not inst.readied)
    && (votes inst.echo_votes v >= t.n - t.thr
       || votes inst.ready_votes v >= t.thr + 1)
  then send_ready t id v inst;
  (* n - t readies: deliver v *)
  if inst.output = None && votes inst.ready_votes v >= t.n - t.thr then begin
    inst.output <- Some v;
    t.cb.deliver id v
  end

let broadcast t id v = t.cb.send_all (Message.Rbc (id, Message.Init, v))

let on_message t ~from id step v =
  let inst = instance t id in
  match step with
  | Message.Init ->
      (* only the designated origin may initiate *)
      if from = id.origin then send_echo t id v inst
  | Message.Echo ->
      inst.echo_votes <- add_vote inst.echo_votes ~from v;
      check_progress t id inst v
  | Message.Ready ->
      inst.ready_votes <- add_vote inst.ready_votes ~from v;
      check_progress t id inst v

let delivered t id =
  match IdMap.find_opt id t.instances with
  | Some inst -> inst.output
  | None -> None
