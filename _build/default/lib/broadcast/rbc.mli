(** Bracha's Reliable Broadcast (ΠrBC, Theorem 4.2), multiplexed.

    One value of type {!t} holds {e all} reliable-broadcast instances a
    single party participates in, keyed by {!Message.rbc_id}. Instances are
    created lazily on the first message that mentions them, so a party
    echoes and amplifies for instances it never explicitly joined — which
    is exactly what the paper's Validity/Consistency-"even when not all
    honest parties join" and Conditional Liveness properties require.

    Secure for [n > 3t], with [c_rBC = 3] (an honest sender's broadcast
    completes within 3Δ of a synchronous start) and [c'_rBC = 2] (once any
    honest party delivers, all do within 2Δ). *)

type t

type callbacks = {
  send_all : Message.t -> unit;
      (** best-effort broadcast to all parties, self included *)
  deliver : Message.rbc_id -> Message.payload -> unit;
      (** invoked exactly once per instance, on output *)
}

val create : n:int -> t:int -> callbacks -> t
(** [t] is the corruption threshold the instance thresholds are computed
    from (the paper uses [ts]); requires [n > 3t]. *)

val broadcast : t -> Message.rbc_id -> Message.payload -> unit
(** Act as the designated sender of instance [id] (the caller must be
    [id.origin]): sends the initial value to everyone. *)

val on_message :
  t -> from:int -> Message.rbc_id -> Message.step -> Message.payload -> unit
(** Feed an incoming [Rbc] message. Init steps are only accepted from the
    instance's origin (authenticated channels); echo and ready votes are
    counted at most once per (sender, value). *)

val delivered : t -> Message.rbc_id -> Message.payload option
(** The instance's output, if it has been delivered locally. *)
