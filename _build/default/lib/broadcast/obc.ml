module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type callbacks = {
  now : unit -> int;
  set_timer : at:int -> unit;
  rbc_broadcast : Message.payload -> unit;
  send_all : Message.t -> unit;
  output : Pairset.t -> unit;
}

type t = {
  n : int;
  ts : int;
  delta : int;
  iter : int;
  witnessing : bool;
  cb : callbacks;
  mutable started : bool;
  mutable tau_start : int;
  mutable m : Pairset.t;
  mutable witnesses : IntSet.t;
  mutable pending : Pairset.t IntMap.t;  (* reports not yet verified *)
  mutable seen_report : IntSet.t;  (* senders whose report we keep/kept *)
  mutable sent_report : bool;
  mutable done_ : bool;
}

let create ?(witnessing = true) ~n ~ts ~delta ~iter cb =
  {
    n;
    ts;
    delta;
    iter;
    witnessing;
    cb;
    started = false;
    tau_start = 0;
    m = Pairset.empty;
    witnesses = IntSet.empty;
    pending = IntMap.empty;
    seen_report = IntSet.empty;
    sent_report = false;
    done_ = false;
  }

let has_output t = t.done_

(* A report is validated when it is large enough and every pair in it has
   been rBC-delivered to us too; its sender becomes a witness. *)
let recheck_pending t =
  let validated, still_pending =
    IntMap.partition
      (fun _ report ->
        Pairset.cardinal report >= t.n - t.ts && Pairset.subset report t.m)
      t.pending
  in
  t.pending <- still_pending;
  IntMap.iter (fun from _ -> t.witnesses <- IntSet.add from t.witnesses) validated

let try_fire t =
  if t.started && not t.done_ then begin
    let now = t.cb.now () in
    if
      (not t.sent_report)
      && now > t.tau_start + (Params.c_rbc * t.delta)
      && Pairset.cardinal t.m >= t.n - t.ts
    then begin
      t.sent_report <- true;
      t.cb.send_all (Message.Obc_report { iter = t.iter; pairs = Pairset.bindings t.m })
    end;
    recheck_pending t;
    let witness_ok =
      if t.witnessing then IntSet.cardinal t.witnesses >= t.n - t.ts
      else Pairset.cardinal t.m >= t.n - t.ts
    in
    let deadline =
      if t.witnessing then (Params.c_rbc + Params.c_rbc') * t.delta
      else Params.c_rbc * t.delta
    in
    if now > t.tau_start + deadline && witness_ok then begin
      t.done_ <- true;
      t.cb.output t.m
    end
  end

let start t v =
  if t.started then invalid_arg "Obc.start: already started";
  t.started <- true;
  t.tau_start <- t.cb.now ();
  t.cb.rbc_broadcast (Message.Pvec v);
  t.cb.set_timer ~at:(t.tau_start + (Params.c_rbc * t.delta) + 1);
  t.cb.set_timer ~at:(t.tau_start + ((Params.c_rbc + Params.c_rbc') * t.delta) + 1);
  try_fire t

let valid_party t p = p >= 0 && p < t.n

let on_value t ~origin v =
  if valid_party t origin then begin
    t.m <- Pairset.add ~party:origin v t.m;
    try_fire t
  end

let on_report t ~from pairs =
  if valid_party t from && not (IntSet.mem from t.seen_report) then begin
    t.seen_report <- IntSet.add from t.seen_report;
    let report =
      List.fold_left
        (fun acc (p, v) ->
          if valid_party t p then Pairset.add ~party:p v acc else acc)
        Pairset.empty pairs
    in
    t.pending <- IntMap.add from report t.pending;
    try_fire t
  end

let poke t = try_fire t
