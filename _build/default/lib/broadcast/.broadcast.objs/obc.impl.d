lib/broadcast/obc.ml: Int List Map Message Pairset Params Set
