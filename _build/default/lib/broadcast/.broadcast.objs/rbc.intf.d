lib/broadcast/rbc.mli: Message
