lib/broadcast/rbc.ml: Int Map Message Set Stdlib
