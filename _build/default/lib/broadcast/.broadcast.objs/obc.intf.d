lib/broadcast/obc.mli: Message Pairset Vec
