lib/vec/vec.mli: Format
