lib/vec/pairset.mli: Format Vec
