lib/vec/vec.ml: Array Float Format List Option Stdlib
