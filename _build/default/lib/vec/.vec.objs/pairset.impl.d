lib/vec/pairset.ml: Format Int List Map Vec
