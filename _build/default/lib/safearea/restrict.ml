let max_subsets = 100_000

let count ~m ~t =
  if t < 0 || t > m then 0
  else begin
    let t = min t (m - t) in
    let acc = ref 1 in
    (try
       for i = 1 to t do
         let next = !acc * (m - t + i) / i in
         if next < !acc then begin
           (* overflow *)
           acc := max_int;
           raise Exit
         end;
         acc := next
       done
     with Exit -> ());
    !acc
  end

let subsets ~t l =
  let m = List.length l in
  if t < 0 || t > m then invalid_arg "Restrict.subsets: bad t";
  if count ~m ~t > max_subsets then
    invalid_arg "Restrict.subsets: family too large";
  let keep = m - t in
  (* All order-preserving sublists of length [keep]. *)
  let rec go k xs =
    if k = 0 then [ [] ]
    else
      match xs with
      | [] -> []
      | x :: rest ->
          let with_x = List.map (fun s -> x :: s) (go (k - 1) rest) in
          let without_x = if List.length rest >= k then go k rest else [] in
          with_x @ without_x
  in
  go keep l
