type t =
  | Interval of { lo : float; hi : float }
  | Planar of Polygon.t
  | Implicit of Hullset.t

let compute_1d ~t vs =
  let s = List.sort Float.compare (List.map (fun v -> Vec.get v 0) vs) in
  let arr = Array.of_list s in
  let m = Array.length arr in
  (* The intersection's lower end is the largest attainable subset minimum,
     reached by dropping the [t] smallest values; symmetrically above. *)
  let lo = arr.(t) and hi = arr.(m - 1 - t) in
  if lo > hi then None else Some (Interval { lo; hi })

let compute_2d ~t vs =
  let polys =
    Restrict.subsets ~t vs |> List.map (fun sub -> Polygon.of_points sub)
  in
  Option.map (fun p -> Planar p) (Polygon.inter_all polys)

let compute_nd ~t vs =
  let hs = Hullset.make (Restrict.subsets ~t vs) in
  if Hullset.is_empty hs then None else Some (Implicit hs)

let compute ~t vs =
  (match vs with [] -> invalid_arg "Safe_area.compute: empty multiset" | _ -> ());
  let m = List.length vs in
  if t < 0 || t >= m then invalid_arg "Safe_area.compute: need 0 <= t < |M|";
  (* Canonicalise the multiset order so the result — including its floating
     point noise — is independent of the order values were received in. *)
  let vs = List.sort Vec.compare vs in
  match Vec.dim (List.hd vs) with
  | 1 -> compute_1d ~t vs
  | 2 -> compute_2d ~t vs
  | _ -> compute_nd ~t vs

let contains ?(eps = 1e-9) area p =
  match area with
  | Interval { lo; hi } ->
      let x = Vec.get p 0 in
      x >= lo -. eps && x <= hi +. eps
  | Planar poly -> Polygon.contains ~eps poly p
  | Implicit hs -> Hullset.contains ~eps hs p

let diameter_pair = function
  | Interval { lo; hi } -> (Vec.of_list [ lo ], Vec.of_list [ hi ])
  | Planar poly -> Polygon.diameter_pair poly
  | Implicit hs -> (
      match Hullset.diameter_pair hs with
      | Some pair -> pair
      | None -> assert false (* Implicit areas are non-empty by construction *))

let diameter area =
  let a, b = diameter_pair area in
  Vec.dist a b

let midpoint_value area =
  let a, b = diameter_pair area in
  Vec.midpoint a b

let new_value ~t vs = Option.map midpoint_value (compute ~t vs)

let interior_point = function
  | Interval { lo; hi } -> Vec.of_list [ (lo +. hi) /. 2. ]
  | Planar poly -> Vec.centroid (Polygon.vertices poly)
  | Implicit hs -> (
      match Hullset.find_point hs with
      | Some p -> p
      | None -> assert false (* Implicit areas are non-empty *))

let centroid_value = interior_point
