lib/safearea/safe_area.ml: Array Float Hullset List Option Polygon Restrict Vec
