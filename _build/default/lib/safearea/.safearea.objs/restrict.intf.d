lib/safearea/restrict.mli:
