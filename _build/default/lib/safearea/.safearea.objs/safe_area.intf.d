lib/safearea/safe_area.mli: Hullset Polygon Vec
