lib/safearea/restrict.ml: List
