type t = { n : int; ts : int; ta : int; d : int; eps : float; delta : int }

let feasible ~n ~ts ~ta ~d =
  0 <= ta && ta <= ts && ((d + 1) * ts) + ta < n && n > 3 * ts

let make ~n ~ts ~ta ~d ~eps ~delta =
  if d < 1 then Error "dimension must be at least 1"
  else if n < 1 then Error "need at least one party"
  else if eps <= 0. then Error "epsilon must be positive"
  else if delta < 1 then Error "delta must be at least one tick"
  else if ta < 0 || ta > ts then Error "need 0 <= ta <= ts"
  else if ((d + 1) * ts) + ta >= n then
    Error
      (Printf.sprintf "resilience violated: need (D+1)*ts + ta < n, got %d >= %d"
         (((d + 1) * ts) + ta) n)
  else if n <= 3 * ts then
    Error "reliable broadcast needs n > 3*ts (binding only for D = 1)"
  else Ok { n; ts; ta; d; eps; delta }

let make_exn ~n ~ts ~ta ~d ~eps ~delta =
  match make ~n ~ts ~ta ~d ~eps ~delta with
  | Ok c -> c
  | Error e -> invalid_arg ("Config: " ^ e)

let pp ppf c =
  Format.fprintf ppf "n=%d ts=%d ta=%d D=%d eps=%g delta=%d" c.n c.ts c.ta c.d
    c.eps c.delta
