(** Protocol parameters and their validity conditions.

    The paper's feasibility condition is [(D + 1)·ts + ta < n] (Theorem
    5.19); reliable broadcast additionally needs [n > 3·ts], which is
    implied whenever [D ≥ 2] but binds for [D = 1] (where the paper points
    out that optimal resilience would need a PKI, which this implementation
    does not assume). *)

type t = private {
  n : int;  (** number of parties *)
  ts : int;  (** corruption bound under synchrony *)
  ta : int;  (** corruption bound under asynchrony, [ta ≤ ts] *)
  d : int;  (** dimension [D] *)
  eps : float;  (** agreement parameter ε *)
  delta : int;  (** synchrony bound Δ, in simulator ticks *)
}

val make :
  n:int -> ts:int -> ta:int -> d:int -> eps:float -> delta:int ->
  (t, string) result

val make_exn :
  n:int -> ts:int -> ta:int -> d:int -> eps:float -> delta:int -> t
(** @raise Invalid_argument when the parameters are infeasible. *)

val feasible : n:int -> ts:int -> ta:int -> d:int -> bool
(** The resilience condition alone: [(D+1)·ts + ta < n], [0 ≤ ta ≤ ts],
    and [n > 3·ts]. *)

val pp : Format.formatter -> t -> unit
