lib/maaa/maaa.ml: Array Config Engine Fun List Message Network Option Party Printf Vec
