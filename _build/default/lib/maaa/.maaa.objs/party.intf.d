lib/maaa/party.mli: Config Engine Message Vec
