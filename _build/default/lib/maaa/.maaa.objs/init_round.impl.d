lib/maaa/init_round.ml: Float Int List Map Message Pairset Params Safe_area Set Vec
