lib/maaa/maaa.mli: Config Engine Vec
