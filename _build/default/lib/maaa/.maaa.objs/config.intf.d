lib/maaa/config.mli: Format
