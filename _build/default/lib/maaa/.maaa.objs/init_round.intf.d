lib/maaa/init_round.mli: Message Pairset Vec
