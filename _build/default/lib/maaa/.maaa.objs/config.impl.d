lib/maaa/config.ml: Format Printf
