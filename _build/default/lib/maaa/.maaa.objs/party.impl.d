lib/maaa/party.ml: Config Engine Hashtbl Init_round List Message Obc Option Pairset Params Rbc Safe_area Vec
