(** The pure-synchronous baseline: round-driven [D]-AA in the style of
    Vaidya–Garg / Mendes–Herlihy, resilience [(D+1)·t < n].

    Each round lasts exactly Δ: parties best-effort broadcast their current
    value at the round start and, at the round's end, trim
    [k = received − (n − t)] outliers via the safe area and adopt the
    midpoint of its diameter pair. After a fixed number of rounds (derived
    from known input bounds, which this family of protocols assumes) the
    current value is output.

    The protocol is cheap — no reliable broadcast, no witnesses — but its
    guarantees evaporate the moment a message takes longer than Δ: a late
    honest value is silently dropped from that round's set, which is
    exactly the failure mode experiment E12 measures. *)

type t

val attach :
  n:int -> t:int -> rounds:int -> delta:int -> me:int ->
  Message.t Engine.t -> t
(** Requires [(n > (D+1)·t)] for its guarantees, but this is not checked
    here — the baseline is deliberately runnable outside its envelope. *)

val start : t -> Vec.t -> unit
val output : t -> Vec.t option
val value_history : t -> (int * Vec.t) list
(** [(round, value-after-round)] pairs, ascending; round 0 is the input. *)

val starved_rounds : t -> int
(** Number of rounds in which fewer than [n − t] values arrived — always 0
    under synchrony, positive when the synchrony assumption broke. *)
