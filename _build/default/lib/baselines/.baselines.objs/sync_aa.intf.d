lib/baselines/sync_aa.mli: Engine Message Vec
