lib/baselines/async_aa.ml: Engine Hashtbl Int List Map Message Option Pairset Rbc Safe_area Set Vec
