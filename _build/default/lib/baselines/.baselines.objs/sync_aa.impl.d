lib/baselines/sync_aa.ml: Engine Hashtbl List Message Option Pairset Safe_area Vec
