lib/baselines/async_aa.mli: Engine Message Vec
