(** The pure-asynchronous baseline: witness-based [D]-AA in the style of
    Mendes–Herlihy, resilience [(D+2)·t < n].

    Entirely count-driven — no clocks, no Δ. Each iteration reliably
    broadcasts the current value, waits for [n − t] values, reliably
    broadcasts the collected set as a report, marks validated report
    senders as witnesses, and on [n − t] witnesses trims [t] outliers via
    the safe area and adopts the diameter-pair midpoint. A fixed number of
    iterations is run (the full Mendes–Herlihy protocol estimates it; the
    harness supplies the same estimate our Πinit would give, keeping the
    comparison fair).

    Against at most [t < n/(D+2)] corruptions this protocol is correct in
    {e any} network; with [ts > t] corruptions under synchrony — the regime
    the hybrid protocol exploits — its trim level is too low and validity
    breaks, which experiment E12 measures. *)

type t

val attach :
  n:int -> t:int -> iters:int -> me:int -> Message.t Engine.t -> t

val start : t -> Vec.t -> unit
val output : t -> Vec.t option
val value_history : t -> (int * Vec.t) list
val output_time : t -> int option
