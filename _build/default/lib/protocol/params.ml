let c_rbc = 3
let c_rbc' = 2
let c_obc = c_rbc + c_rbc'
let c_aa_it = c_obc
let c_init = (2 * c_rbc) + c_rbc'
let conv_factor = sqrt (7. /. 8.)
