lib/protocol/message.ml: Format List Vec
