lib/protocol/params.ml:
