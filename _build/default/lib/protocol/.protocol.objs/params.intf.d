lib/protocol/params.mli:
