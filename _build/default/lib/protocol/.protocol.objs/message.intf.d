lib/protocol/message.mli: Format Vec
