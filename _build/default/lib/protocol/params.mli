(** The paper's round-count constants (Theorems 4.2, 4.4; Section 5). *)

val c_rbc : int
(** [c_rBC = 3]: an honest reliable broadcast completes within [3Δ]. *)

val c_rbc' : int
(** [c'_rBC = 2]: once one honest party delivers, all do within [2Δ]. *)

val c_obc : int
(** [c_oBC = c_rBC + c'_rBC = 5]: synchronous ΠoBC completion. *)

val c_aa_it : int
(** [c_AA-it = 5]: one synchronous iteration of ΠAA-it. *)

val c_init : int
(** [c_init = 2·c_rBC + c'_rBC = 8]: synchronous Πinit completion. *)

val conv_factor : float
(** [√(7/8)], the per-iteration contraction factor (Lemma 5.15). *)
