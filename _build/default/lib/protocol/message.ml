type tag =
  | Init_value
  | Init_report
  | Obc_value of int
  | Halt of int
  | Async_value of int
  | Async_report of int

type rbc_id = { tag : tag; origin : int }

type payload =
  | Pvec of Vec.t
  | Ppairs of (int * Vec.t) list
  | Pint of int
  | Pparties of int list

type step = Init | Echo | Ready

type t =
  | Rbc of rbc_id * step * payload
  | Obc_report of { iter : int; pairs : (int * Vec.t) list }
  | Witness_set of int list
  | Sync_round of { round : int; value : Vec.t }
  | Junk of int

let size_of_payload = function
  | Pvec v -> 8 * Vec.dim v
  | Ppairs ps ->
      List.fold_left (fun acc (_, v) -> acc + 4 + (8 * Vec.dim v)) 0 ps
  | Pint _ -> 8
  | Pparties ps -> 4 * List.length ps

let size_of = function
  | Rbc (_, _, p) -> 16 + size_of_payload p
  | Obc_report { pairs; _ } -> 16 + size_of_payload (Ppairs pairs)
  | Witness_set ps -> 16 + (4 * List.length ps)
  | Sync_round { value; _ } -> 16 + (8 * Vec.dim value)
  | Junk n -> 16 + n

let pp_tag ppf = function
  | Init_value -> Format.fprintf ppf "init-value"
  | Init_report -> Format.fprintf ppf "init-report"
  | Obc_value it -> Format.fprintf ppf "obc[%d]" it
  | Halt it -> Format.fprintf ppf "halt[%d]" it
  | Async_value it -> Format.fprintf ppf "async-value[%d]" it
  | Async_report it -> Format.fprintf ppf "async-report[%d]" it

let pp_step ppf = function
  | Init -> Format.fprintf ppf "init"
  | Echo -> Format.fprintf ppf "echo"
  | Ready -> Format.fprintf ppf "ready"

let pp ppf = function
  | Rbc (id, step, _) ->
      Format.fprintf ppf "rbc(%a from P%d, %a)" pp_tag id.tag id.origin
        pp_step step
  | Obc_report { iter; pairs } ->
      Format.fprintf ppf "obc-report[%d] (%d pairs)" iter (List.length pairs)
  | Witness_set ps -> Format.fprintf ppf "witness-set (%d)" (List.length ps)
  | Sync_round { round; _ } -> Format.fprintf ppf "sync-round[%d]" round
  | Junk n -> Format.fprintf ppf "junk(%d)" n
