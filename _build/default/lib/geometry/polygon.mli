(** Convex regions of the plane, possibly degenerate.

    A region is stored as its extreme points in counter-clockwise order: a
    single point, a segment (two points), or a polygon (three or more
    vertices). Safe areas shrink to segments and single points in the
    protocol (Figure 2 of the paper ends in a single point), so every
    operation here must and does support the degenerate cases. *)

type t
(** A non-empty convex region. *)

type halfplane = { normal : Vec.t; offset : float }
(** The closed half-plane [{x : normal·x ≤ offset}]; [normal] has unit
    length so that tolerances are geometric distances. *)

val of_points : Vec.t list -> t
(** Convex hull of a non-empty list of 2-D points. *)

val vertices : t -> Vec.t list
(** Extreme points, CCW. *)

val halfplanes : t -> halfplane list
(** A finite H-representation of the region (also for the degenerate
    cases: a segment is four half-planes, a point is four axis-aligned
    ones). *)

val contains : ?eps:float -> t -> Vec.t -> bool
(** Membership up to distance [eps] (default [1e-9]). *)

val clip : ?eps:float -> t -> halfplane -> t option
(** [clip t h] intersects [t] with [h]; [None] when empty. *)

val inter : ?eps:float -> t -> t -> t option
(** Intersection of two convex regions; [None] when empty. *)

val inter_all : ?eps:float -> t list -> t option
(** Intersection of a non-empty list of regions. *)

val diameter_pair : t -> Vec.t * Vec.t
(** The deterministic pair of extreme points realizing the diameter
    (lexicographic tie-break as in {!Vec.diameter_pair}). For a single
    point [p] this is [(p, p)]. *)

val diameter : t -> float
val area : t -> float
val pp : Format.formatter -> t -> unit
