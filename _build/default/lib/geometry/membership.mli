(** Convex-hull membership in arbitrary dimension, via linear programming. *)

val coeffs : ?eps:float -> Vec.t list -> Vec.t -> float array option
(** [coeffs vs p] is a vector of convex-combination coefficients [λ ≥ 0],
    [Σλ = 1], with [Σ λ_i·vs_i = p], or [None] when [p ∉ convex(vs)].
    [eps] is the LP tolerance. *)

val in_hull : ?eps:float -> Vec.t list -> Vec.t -> bool
(** [in_hull vs p] tests [p ∈ convex(vs)]. Used both inside the safe-area
    machinery and by the harness to check the protocol's Validity property
    ("outputs lie in the convex hull of the honest inputs"). *)
