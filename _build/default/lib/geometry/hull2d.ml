let cross ~o ~a ~b =
  ((Vec.get a 0 -. Vec.get o 0) *. (Vec.get b 1 -. Vec.get o 1))
  -. ((Vec.get a 1 -. Vec.get o 1) *. (Vec.get b 0 -. Vec.get o 0))

(* Andrew's monotone chain. Sorting and the strict-turn test make the result
   deterministic; duplicate points are removed up front. Collinear inputs
   degrade gracefully to the two extreme points. *)
let hull pts =
  if pts = [] then invalid_arg "Hull2d.hull: empty list";
  List.iter
    (fun p -> if Vec.dim p <> 2 then invalid_arg "Hull2d.hull: not 2-D")
    pts;
  let pts = List.sort_uniq Vec.compare pts in
  match pts with
  | [] -> assert false
  | ([ _ ] | [ _; _ ]) as small -> small
  | _ ->
      let arr = Array.of_list pts in
      let n = Array.length arr in
      (* Builds one chain; returns it in visit order with its last point
         dropped (it starts the other chain). *)
      let build idx_seq =
        let chain = ref [] in
        Seq.iter
          (fun i ->
            let p = arr.(i) in
            let rec pop () =
              match !chain with
              | a :: b :: _ when cross ~o:b ~a ~b:p <= 1e-12 ->
                  chain := List.tl !chain;
                  pop ()
              | _ -> ()
            in
            pop ();
            chain := p :: !chain)
          idx_seq;
        List.tl !chain |> List.rev
      in
      let lower = build (Seq.init n (fun i -> i)) in
      let upper = build (Seq.init n (fun i -> n - 1 - i)) in
      lower @ upper
