lib/geometry/membership.mli: Vec
