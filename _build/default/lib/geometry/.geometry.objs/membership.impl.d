lib/geometry/membership.ml: Array List Lp Option Vec
