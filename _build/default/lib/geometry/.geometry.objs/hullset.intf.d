lib/geometry/hullset.mli: Vec
