lib/geometry/polygon.ml: Array Float Format Hull2d List Option Vec
