lib/geometry/hull2d.ml: Array List Seq Vec
