lib/geometry/hullset.ml: Array List Lp Membership Option Vec
