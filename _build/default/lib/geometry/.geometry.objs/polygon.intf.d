lib/geometry/polygon.mli: Format Vec
