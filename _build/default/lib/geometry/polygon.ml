type t = Vec.t array
type halfplane = { normal : Vec.t; offset : float }

let default_eps = 1e-9
let vertices t = Array.to_list t

let dedupe ?(eps = default_eps) pts =
  let close a b = Vec.dist a b <= eps in
  let rec go = function
    | a :: (b :: _ as rest) when close a b -> go rest
    | a :: rest -> a :: go rest
    | [] -> []
  in
  match go pts with
  | [] -> []
  | [ p ] -> [ p ]
  | first :: _ :: _ as l ->
      (* the list is cyclic: the final point may coincide with the first *)
      let rec drop_last = function
        | [ last ] when close last first -> []
        | [] -> []
        | x :: rest -> x :: drop_last rest
      in
      drop_last l

let of_points pts =
  match Hull2d.hull pts with
  | [] -> assert false
  | h -> Array.of_list h

let unit_normal_of_edge p q =
  (* interior of a CCW polygon is to the left of p→q; the outward normal
     points right: (dy, -dx) *)
  let d = Vec.sub q p in
  match Vec.normalize (Vec.of_list [ Vec.get d 1; -.Vec.get d 0 ]) with
  | Some n -> n
  | None -> invalid_arg "Polygon: zero-length edge"

let halfplanes t =
  match Array.length t with
  | 0 -> assert false
  | 1 ->
      let p = t.(0) in
      let x = Vec.get p 0 and y = Vec.get p 1 in
      [
        { normal = Vec.of_list [ 1.; 0. ]; offset = x };
        { normal = Vec.of_list [ -1.; 0. ]; offset = -.x };
        { normal = Vec.of_list [ 0.; 1. ]; offset = y };
        { normal = Vec.of_list [ 0.; -1. ]; offset = -.y };
      ]
  | 2 ->
      let a = t.(0) and b = t.(1) in
      let n = unit_normal_of_edge a b in
      let d = Option.get (Vec.normalize (Vec.sub b a)) in
      [
        { normal = n; offset = Vec.dot n a };
        { normal = Vec.neg n; offset = -.Vec.dot n a };
        { normal = Vec.neg d; offset = -.Vec.dot d a };
        { normal = d; offset = Vec.dot d b };
      ]
  | k ->
      List.init k (fun i ->
          let p = t.(i) and q = t.((i + 1) mod k) in
          let n = unit_normal_of_edge p q in
          { normal = n; offset = Vec.dot n p })

let contains ?(eps = default_eps) t p =
  match Array.length t with
  | 1 -> Vec.dist t.(0) p <= eps
  | 2 ->
      (* distance from p to segment [a,b] *)
      let a = t.(0) and b = t.(1) in
      let ab = Vec.sub b a in
      let len2 = Vec.dot ab ab in
      let tt =
        if len2 <= 0. then 0.
        else Float.max 0. (Float.min 1. (Vec.dot (Vec.sub p a) ab /. len2))
      in
      Vec.dist p (Vec.add a (Vec.scale tt ab)) <= eps
  | _ ->
      List.for_all
        (fun { normal; offset } -> Vec.dot normal p <= offset +. eps)
        (halfplanes t)

let clip ?(eps = default_eps) t { normal; offset } =
  let inside p = Vec.dot normal p <= offset +. eps in
  let k = Array.length t in
  if k = 1 then if inside t.(0) then Some t else None
  else begin
    let out = ref [] in
    let push p = out := p :: !out in
    for i = 0 to k - 1 do
      let cur = t.(i) and next = t.((i + 1) mod k) in
      let dc = Vec.dot normal cur -. offset
      and dn = Vec.dot normal next -. offset in
      let ic = inside cur and inext = inside next in
      if ic then push cur;
      if ic <> inext then begin
        let denom = dc -. dn in
        if Float.abs denom > 1e-15 then
          let tt = dc /. denom in
          push (Vec.add cur (Vec.scale tt (Vec.sub next cur)))
      end
    done;
    match dedupe ~eps (List.rev !out) with
    | [] -> None
    | pts ->
        (* Re-hull to restore strict convexity after numerical noise. *)
        Some (of_points pts)
  end

let inter ?(eps = default_eps) a b =
  (* Clip the region with more vertices by the half-planes of the other:
     fewer clip passes and better behaviour when one side is degenerate. *)
  let subject, clipper =
    if Array.length a >= Array.length b then (a, b) else (b, a)
  in
  List.fold_left
    (fun acc h ->
      match acc with None -> None | Some r -> clip ~eps r h)
    (Some subject) (halfplanes clipper)

let inter_all ?(eps = default_eps) = function
  | [] -> invalid_arg "Polygon.inter_all: empty list"
  | first :: rest ->
      List.fold_left
        (fun acc r ->
          match acc with None -> None | Some x -> inter ~eps x r)
        (Some first) rest

let diameter_pair t =
  match Vec.diameter_pair (vertices t) with
  | Some pair -> pair
  | None -> assert false (* regions are non-empty *)

let diameter t = Vec.diameter (vertices t)

let area t =
  let k = Array.length t in
  if k < 3 then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to k - 1 do
      let p = t.(i) and q = t.((i + 1) mod k) in
      acc := !acc +. ((Vec.get p 0 *. Vec.get q 1) -. (Vec.get q 0 *. Vec.get p 1))
    done;
    Float.abs !acc /. 2.
  end

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Vec.pp)
    (vertices t)
