(** Convex hulls in the plane. *)

val hull : Vec.t list -> Vec.t list
(** [hull pts] is the convex hull of the 2-D points [pts] as a
    counter-clockwise list of vertices without repetition. Collinear points
    interior to an edge are dropped. Degenerate inputs are handled: the hull
    of one point is that point, of collinear points the two extremes.

    @raise Invalid_argument on an empty list or non-2-D points. *)

val cross : o:Vec.t -> a:Vec.t -> b:Vec.t -> float
(** Signed area ×2 of triangle [(o, a, b)]: positive when [o→a→b] turns
    counter-clockwise. *)
