let coeffs ?(eps = 1e-9) vs p =
  match vs with
  | [] -> None
  | v0 :: _ ->
      let d = Vec.dim v0 in
      if Vec.dim p <> d then invalid_arg "Membership: dimension mismatch";
      let n = List.length vs in
      let varr = Array.of_list vs in
      let rows =
        List.init d (fun coord ->
            {
              Lp.coeffs =
                List.init n (fun j -> (j, Vec.get varr.(j) coord));
              cmp = Lp.Eq;
              rhs = Vec.get p coord;
            })
      in
      let sum1 =
        { Lp.coeffs = List.init n (fun j -> (j, 1.)); cmp = Lp.Eq; rhs = 1. }
      in
      Lp.feasible_point ~eps ~nvars:n (sum1 :: rows)

let in_hull ?eps vs p = Option.is_some (coeffs ?eps vs p)
