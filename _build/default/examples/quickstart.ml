(* Quickstart: eight parties agree on a 2-D point despite one crashed and
   one value-poisoning party, over a worst-case synchronous network.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* n = 8 parties, up to ts = 2 corruptions if the network is synchronous,
     up to ta = 1 if it is not; D = 2 dimensions; outputs must be 0.05-close. *)
  let cfg = Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10 in

  (* Every party holds a point in the plane. *)
  let inputs =
    [
      [ 0.0; 0.0 ]; [ 1.0; 0.2 ]; [ 0.4; 1.1 ]; [ 2.0; 2.0 ];
      [ 0.7; 0.7 ]; [ 1.5; 0.1 ]; [ 0.2; 1.9 ]; [ 9.9; -9.9 ];
    ]
    |> List.map Vec.of_list
  in

  (* Parties 3 and 7 are corrupted: 3 crashes from the start, 7's input
     (9.9, -9.9) is adversarial — it follows the protocol, so silencing it
     is not enough; the safe-area trimming has to contain it. *)
  let scenario =
    Scenario.make ~name:"quickstart" ~cfg ~inputs
      ~corruptions:
        [ (3, Behavior.Silent); (7, Behavior.Honest_with_input (List.nth inputs 7)) ]
      ()
  in
  let r = Runner.run scenario in

  Format.printf "%a@.@." Runner.pp_summary r;
  Format.printf "honest outputs:@.";
  List.iter
    (fun (i, v) -> Format.printf "  party %d: %a@." i Vec.pp v)
    r.Runner.outputs;
  Format.printf
    "@.all outputs are inside the convex hull of the honest inputs and@.\
     within eps = %g of each other.@."
    cfg.Config.eps
