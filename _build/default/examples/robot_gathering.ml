(* Robot gathering (Section 1 of the paper): robots scattered on a circle
   must converge to (almost) one meeting point in the plane, even though
   two of them are Byzantine and the radio network may misbehave.

   Each robot's input is its own position; the protocol's Validity property
   means the meeting point is inside the convex hull of the honest robots'
   positions — no honest robot is lured outside the area they occupy.

   Run with:  dune exec examples/robot_gathering.exe *)

let () =
  let n = 10 in
  let cfg = Config.make_exn ~n ~ts:2 ~ta:1 ~d:2 ~eps:0.01 ~delta:10 in
  let positions = Inputs.ring ~n ~radius:50. in

  Format.printf "robot positions (radius-50 circle):@.";
  List.iteri (fun i p -> Format.printf "  robot %d at %a@." i Vec.pp p) positions;

  (* Robot 2 lies about its position to drag the swarm away; robot 7
     crashes mid-protocol. The network is synchronous but the adversary
     delivers corrupted robots' messages first (rushing). *)
  let liar_position = Vec.of_list [ 5000.; 5000. ] in
  let corruptions =
    [ (2, Behavior.Honest_with_input liar_position); (7, Behavior.Crash_at 70) ]
  in
  let scenario =
    Scenario.make ~name:"robot-gathering" ~cfg ~inputs:positions ~corruptions
      ~policy:(Network.rushing ~delta:10 ~corrupt:(fun i -> i = 2 || i = 7))
      ()
  in
  let r = Runner.run scenario in

  Format.printf "@.%a@.@." Runner.pp_summary r;
  (match r.Runner.outputs with
  | (_, meeting) :: _ ->
      Format.printf "meeting point: %a@." Vec.pp meeting;
      Format.printf "distance from the liar's fake position: %.1f@."
        (Vec.dist meeting liar_position);
      Format.printf "max distance between honest meeting points: %.2e@."
        r.Runner.diameter
  | [] -> Format.printf "no outputs!@.");
  Format.printf
    "@.the swarm gathers inside its own convex hull; the liar at (5000, 5000)@.\
     could not move the meeting point outside it.@."
