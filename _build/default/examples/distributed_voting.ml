(* Distributed voting with weighted preferences (Section 1 of the paper).

   Seven committee members assign weights to three proposals (a point of
   the probability simplex in R^3). They want a common weight vector that
   provably reflects only honest preferences, over a network in distress
   (asynchronous scheduling), with one member trying to hijack the vote
   for proposal C.

   Run with:  dune exec examples/distributed_voting.exe *)

let proposals = [| "A"; "B"; "C" |]

let normalize w =
  let l = List.fold_left ( +. ) 0. (Vec.to_list w) in
  if l <= 0. then w else Vec.scale (1. /. l) w

let () =
  let n = 7 in
  let cfg = Config.make_exn ~n ~ts:1 ~ta:1 ~d:3 ~eps:0.02 ~delta:10 in
  let prefs =
    [
      [ 0.6; 0.3; 0.1 ]; [ 0.5; 0.4; 0.1 ]; [ 0.7; 0.2; 0.1 ];
      [ 0.4; 0.5; 0.1 ]; [ 0.6; 0.2; 0.2 ]; [ 0.5; 0.3; 0.2 ];
      [ 0.0; 0.0; 1.0 ] (* the hijacker backs proposal C alone *);
    ]
    |> List.map Vec.of_list
  in
  Format.printf "preferences (A, B, C):@.";
  List.iteri (fun i p -> Format.printf "  member %d: %a@." i Vec.pp p) prefs;

  (* Member 6 is the hijacker; the network is asynchronous: one honest
     member's messages are delayed far beyond any synchrony bound. *)
  let scenario =
    Scenario.make ~name:"voting" ~cfg ~inputs:prefs
      ~corruptions:[ (6, Behavior.Honest_with_input (List.nth prefs 6)) ]
      ~policy:(Network.async_starve ~victims:(fun i -> i = 1) ~release:500 ~fast:4)
      ~sync_network:false ()
  in
  let r = Runner.run scenario in

  Format.printf "@.%a@.@." Runner.pp_summary r;
  match r.Runner.outputs with
  | (_, w) :: _ ->
      let w = normalize w in
      Format.printf "agreed weights:@.";
      Array.iteri
        (fun c name -> Format.printf "  proposal %s: %.3f@." name (Vec.get w c))
        proposals;
      let winner = if Vec.get w 0 >= Vec.get w 1 then 0 else 1 in
      Format.printf
        "@.proposal %s carries the vote; the hijacker's all-in weight on C@.\
         was trimmed away by the safe area — the agreed C weight stays near@.\
         the honest members' C weights.@."
        proposals.(winner)
  | [] -> Format.printf "no outputs!@."
