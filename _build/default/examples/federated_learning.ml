(* Byzantine-robust federated learning (the paper's headline motivation).

   n parties train a shared model by gradient descent on a common quadratic
   loss. Each round every party computes a noisy local gradient (D = 4
   model parameters); instead of trusting a coordinator they run
   multidimensional approximate agreement on the gradient vector. A
   Byzantine participant submits poisoned gradients every round.

   Validity guarantees the agreed gradient lies in the convex hull of the
   honest gradients, so the poisoner cannot steer training; for contrast we
   also run naive gradient averaging, which the same poisoner wrecks.

   Run with:  dune exec examples/federated_learning.exe *)

let dim = 4
let n = 6
let gd_rounds = 5
let lr = 0.35

(* loss(w) = 1/2 |w - w*|^2, so grad = w - w*. *)
let w_star = Vec.of_list [ 1.0; -2.0; 0.5; 3.0 ]
let loss w = 0.5 *. Vec.dist2 w w_star
let true_grad w = Vec.sub w w_star

let local_gradient rng w =
  (* every party sees the true gradient plus its own data noise *)
  Vec.add (true_grad w)
    (Vec.of_list (List.init dim (fun _ -> Rng.float_range rng (-0.15) 0.15)))

let poisoned_gradient w =
  (* push the model away from the optimum, hard *)
  Vec.scale (-25.) (true_grad w)

let () =
  let cfg = Config.make_exn ~n ~ts:1 ~ta:0 ~d:dim ~eps:0.02 ~delta:10 in
  let rng = Rng.create 2026L in
  let byz = 4 in

  Format.printf "federated round | agreed-gradient loss | naive-average loss@.";
  let w_agreed = ref (Vec.zero dim) in
  let w_naive = ref (Vec.zero dim) in
  for round = 1 to gd_rounds do
    (* honest gradients for both variants *)
    let grads =
      List.init n (fun i ->
          if i = byz then poisoned_gradient !w_agreed
          else local_gradient rng !w_agreed)
    in
    (* robust path: agree on a gradient with MAAA *)
    let scenario =
      Scenario.make
        ~name:(Printf.sprintf "fl-round-%d" round)
        ~seed:(Int64.of_int round) ~cfg ~inputs:grads
        ~corruptions:[ (byz, Behavior.Honest_with_input (List.nth grads byz)) ]
        ~policy:(Network.sync_uniform ~delta:10)
        ()
    in
    let r = Runner.run scenario in
    assert (r.Runner.live && r.Runner.valid && r.Runner.agreement);
    let agreed = snd (List.hd r.Runner.outputs) in
    w_agreed := Vec.sub !w_agreed (Vec.scale lr agreed);

    (* naive path: plain averaging of all submitted gradients *)
    let naive_grads =
      List.mapi
        (fun i g -> if i = byz then poisoned_gradient !w_naive else g)
        grads
    in
    w_naive := Vec.sub !w_naive (Vec.scale lr (Vec.centroid naive_grads));

    Format.printf "      %d         |      %8.4f        |    %10.2f@." round
      (loss !w_agreed) (loss !w_naive)
  done;

  Format.printf "@.final model (agreement): %a@." Vec.pp !w_agreed;
  Format.printf "optimum:                  %a@." Vec.pp w_star;
  Format.printf
    "@.the agreed-gradient model converges towards the optimum while the@.\
     naively-averaged model is dragged away by the poisoner.@."
