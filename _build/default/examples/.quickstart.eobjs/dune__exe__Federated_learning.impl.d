examples/federated_learning.ml: Behavior Config Format Int64 List Network Printf Rng Runner Scenario Vec
