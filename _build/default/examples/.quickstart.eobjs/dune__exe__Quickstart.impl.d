examples/quickstart.ml: Behavior Config Format List Runner Scenario Vec
