examples/robot_gathering.ml: Behavior Config Format Inputs List Network Runner Scenario Vec
