examples/distributed_voting.mli:
