examples/quickstart.mli:
