examples/federated_learning.mli:
