examples/robot_gathering.mli:
