examples/distributed_voting.ml: Array Behavior Config Format List Network Runner Scenario Vec
