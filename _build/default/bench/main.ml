(* Benchmark harness (bechamel): the cost model behind the experiments.

   B1  safe-area computation per dimension/representation
   B2  exact polygon path vs implicit LP path on the same 2-D instance
   B3  LP building blocks (simplex feasibility, hull membership)
   B4  2-D convex hull
   B5  implicit diameter search (D = 3)
   B6  full protocol runs (one ΠAA execution, end to end, per config)
   B7  one reliable-broadcast instance, end to end

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit

let rng = Rng.create 9000L

let random_points ~d ~n ~scale =
  List.init n (fun _ ->
      Vec.of_list (List.init d (fun _ -> Rng.float_range rng (-.scale) scale)))

(* Fixed inputs per bench so that every run does identical work. *)

let pts_1d_10 = random_points ~d:1 ~n:10 ~scale:10.
let pts_2d_8 = random_points ~d:2 ~n:8 ~scale:10.
let pts_2d_12 = random_points ~d:2 ~n:12 ~scale:10.
let pts_3d_9 = random_points ~d:3 ~n:9 ~scale:10.
let pts_2d_100 = random_points ~d:2 ~n:100 ~scale:10.
let pts_4d_8 = random_points ~d:4 ~n:8 ~scale:10.

let b1_safe_area =
  Test.make_grouped ~name:"B1 safe-area"
    [
      Test.make ~name:"D=1 n=10 t=3"
        (Staged.stage (fun () -> ignore (Safe_area.new_value ~t:3 pts_1d_10)));
      Test.make ~name:"D=2 n=8 t=2"
        (Staged.stage (fun () -> ignore (Safe_area.new_value ~t:2 pts_2d_8)));
      Test.make ~name:"D=2 n=12 t=3"
        (Staged.stage (fun () -> ignore (Safe_area.new_value ~t:3 pts_2d_12)));
      Test.make ~name:"D=3 n=9 t=2 (LP)"
        (Staged.stage (fun () -> ignore (Safe_area.new_value ~t:2 pts_3d_9)));
    ]

let b2_representations =
  let subsets = Restrict.subsets ~t:2 pts_2d_8 in
  Test.make_grouped ~name:"B2 2-D representation"
    [
      Test.make ~name:"exact polygon clipping"
        (Staged.stage (fun () -> ignore (Safe_area.compute ~t:2 pts_2d_8)));
      Test.make ~name:"implicit LP (same instance)"
        (Staged.stage (fun () ->
             let hs = Hullset.make subsets in
             ignore (Hullset.diameter_pair hs)));
    ]

let b3_lp =
  let p = Vec.of_list [ 1.; 1.; 1.; 1. ] in
  Test.make_grouped ~name:"B3 LP kernel"
    [
      Test.make ~name:"feasibility (20 vars)"
        (Staged.stage (fun () ->
             let cs =
               List.init 10 (fun i ->
                   {
                     Lp.coeffs =
                       List.init 20 (fun j ->
                           (j, float_of_int ((i + j) mod 5) +. 1.));
                     cmp = Lp.Ge;
                     rhs = 10.;
                   })
             in
             ignore (Lp.feasible_point ~nvars:20 cs)));
      Test.make ~name:"hull membership D=4 n=8"
        (Staged.stage (fun () -> ignore (Membership.in_hull pts_4d_8 p)));
    ]

let b4_hull =
  Test.make ~name:"B4 convex hull 2-D (100 pts)"
    (Staged.stage (fun () -> ignore (Hull2d.hull pts_2d_100)))

let b5_diameter =
  let hs = Hullset.make (Restrict.subsets ~t:2 pts_3d_9) in
  Test.make ~name:"B5 implicit diameter D=3"
    (Staged.stage (fun () -> ignore (Hullset.diameter_pair hs)))

let protocol_run ~n ~ts ~ta ~d ~seed =
  let cfg = Config.make_exn ~n ~ts ~ta ~d ~eps:0.05 ~delta:10 in
  let inputs =
    List.init n (fun i ->
        Vec.of_list (List.init d (fun c -> float_of_int ((i + c) mod 4))))
  in
  fun () ->
    let o = Maaa.run ~seed ~policy:(Network.lockstep ~delta:10) ~cfg ~inputs () in
    assert (o.Maaa.outputs <> [])

let b6_protocol =
  Test.make_grouped ~name:"B6 full protocol run"
    [
      Test.make ~name:"n=5 D=1 ts=1"
        (Staged.stage (protocol_run ~n:5 ~ts:1 ~ta:0 ~d:1 ~seed:1L));
      Test.make ~name:"n=8 D=2 ts=2"
        (Staged.stage (protocol_run ~n:8 ~ts:2 ~ta:1 ~d:2 ~seed:1L));
      Test.make ~name:"n=12 D=2 ts=3"
        (Staged.stage (protocol_run ~n:12 ~ts:3 ~ta:1 ~d:2 ~seed:1L));
    ]

let b7_rbc =
  Test.make ~name:"B7 one rBC instance n=7"
    (Staged.stage (fun () ->
         let obs =
           Fixtures.run_rbc ~n:7 ~t:2 ~policy:(Network.lockstep ~delta:10)
             ~honest:[ 0; 1; 2; 3; 4; 5; 6 ]
             ~sender:(`Honest (0, Message.Pvec (Vec.of_list [ 1.; 2. ])))
             ()
         in
         assert (List.length obs.Fixtures.rbc_deliveries = 7)))

let tests =
  Test.make_grouped ~name:"maaa"
    [
      b1_safe_area; b2_representations; b3_lp; b4_hull; b5_diameter;
      b6_protocol; b7_rbc;
    ]

let benchmark () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  Analyze.all ols Instance.monotonic_clock raw

let pp_ns ppf v =
  if v >= 1e9 then Format.fprintf ppf "%8.3f s " (v /. 1e9)
  else if v >= 1e6 then Format.fprintf ppf "%8.3f ms" (v /. 1e6)
  else if v >= 1e3 then Format.fprintf ppf "%8.3f us" (v /. 1e3)
  else Format.fprintf ppf "%8.1f ns" v

let () =
  let results = benchmark () in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> Float.nan
        in
        let r2 =
          match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan
        in
        (name, est, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  Format.printf "%-55s %12s  %s@." "benchmark" "time/run" "r^2";
  Format.printf "%s@." (String.make 80 '-');
  List.iter
    (fun (name, est, r2) -> Format.printf "%-55s %a  %.4f@." name pp_ns est r2)
    rows
