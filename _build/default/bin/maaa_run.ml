(* Command-line driver: run a single ΠAA scenario and print the outcome.

   Example:
     maaa_run.exe --n 8 --ts 2 --ta 1 --dim 2 --eps 0.05 \
                  --network async --corrupt poison:1 --corrupt silent:5 *)

open Cmdliner

let run n ts ta dim eps delta network seed corrupt workload side verbose =
  match Config.make ~n ~ts ~ta ~d:dim ~eps ~delta with
  | Error e ->
      prerr_endline ("invalid configuration: " ^ e);
      1
  | Ok cfg -> (
      let rng = Rng.create (Int64.of_int (Int64.to_int seed + 17)) in
      let inputs =
        match workload with
        | "cube" -> Inputs.uniform_cube rng ~d:dim ~n ~side
        | "clusters" -> Inputs.two_clusters rng ~d:dim ~n ~separation:side
        | "corners" -> Inputs.simplex_corners ~d:dim ~scale:side ~n
        | "gradients" ->
            Inputs.gradients rng ~d:dim ~n ~truth:(Vec.make dim 1.)
              ~noise:(side /. 10.)
        | w ->
            prerr_endline ("unknown workload " ^ w);
            exit 2
      in
      let policy, sync_network =
        match network with
        | "lockstep" -> (Network.lockstep ~delta, true)
        | "sync" -> (Network.sync_uniform ~delta, true)
        | "rushing" ->
            ( Network.rushing ~delta
                ~corrupt:(fun i -> List.exists (fun (_, j) -> j = i) corrupt),
              true )
        | "async" -> (Network.async_heavy_tail ~base:delta, false)
        | "starve" ->
            ( Network.async_starve ~victims:(fun i -> i = 0) ~release:(60 * delta)
                ~fast:4,
              false )
        | p ->
            prerr_endline ("unknown network policy " ^ p);
            exit 2
      in
      let corruptions =
        List.map
          (fun (kind, i) ->
            let b =
              match kind with
              | "silent" -> Behavior.Silent
              | "poison" ->
                  Behavior.Honest_with_input (Vec.make dim (1000. *. side))
              | "crash" -> Behavior.Crash_at (6 * delta)
              | "equivocate" ->
                  Behavior.Equivocate
                    (Vec.make dim (10. *. side), Vec.make dim (-10. *. side))
              | "haltliar" -> Behavior.Halt_liar 1
              | "spam" ->
                  Behavior.Spam
                    { period = 3; payload_bytes = 64; until = 100 * delta }
              | k ->
                  prerr_endline ("unknown corruption " ^ k);
                  exit 2
            in
            (i, b))
          corrupt
      in
      match
        Scenario.make ~name:"cli" ~seed ~policy ~sync_network ~corruptions ~cfg
          ~inputs ()
      with
      | exception Invalid_argument e ->
          prerr_endline e;
          1
      | scenario ->
          let r = Runner.run scenario in
          Format.printf "%a@." Runner.pp_summary r;
          if verbose then begin
            Format.printf "@.outputs:@.";
            List.iter
              (fun (i, v) -> Format.printf "  P%d -> %a@." i Vec.pp v)
              r.Runner.outputs;
            Format.printf "@.iteration diameters:@.";
            List.iter
              (fun (it, d) -> Format.printf "  it %2d: %.6e@." it d)
              (Runner.iteration_diameters r);
            Format.printf "@.bytes sent: %d@." r.Runner.stats.Engine.bytes_sent
          end;
          if r.Runner.live && r.Runner.valid && r.Runner.agreement then 0 else 1)

let corrupt_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ kind; i ] -> (
        match int_of_string_opt i with
        | Some i -> Ok (kind, i)
        | None -> Error (`Msg "expected kind:party-index"))
    | _ -> Error (`Msg "expected kind:party-index, e.g. poison:3")
  in
  let print ppf (k, i) = Format.fprintf ppf "%s:%d" k i in
  Arg.conv (parse, print)

let cmd =
  let n = Arg.(value & opt int 8 & info [ "n"; "parties" ] ~doc:"Number of parties.") in
  let ts =
    Arg.(value & opt int 2 & info [ "ts" ] ~doc:"Synchronous corruption bound.")
  in
  let ta =
    Arg.(value & opt int 1 & info [ "ta" ] ~doc:"Asynchronous corruption bound.")
  in
  let dim = Arg.(value & opt int 2 & info [ "dim"; "d" ] ~doc:"Dimension D.") in
  let eps =
    Arg.(value & opt float 0.05 & info [ "eps" ] ~doc:"Agreement parameter.")
  in
  let delta =
    Arg.(value & opt int 10 & info [ "delta" ] ~doc:"Synchrony bound in ticks.")
  in
  let network =
    Arg.(
      value & opt string "sync"
      & info [ "network" ]
          ~doc:"Network policy: lockstep, sync, rushing, async, starve.")
  in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"RNG seed.") in
  let corrupt =
    Arg.(
      value & opt_all corrupt_conv []
      & info [ "corrupt" ]
          ~doc:
            "Corruption kind:party, repeatable. Kinds: silent, poison, crash, \
             equivocate, haltliar, spam.")
  in
  let workload =
    Arg.(
      value & opt string "cube"
      & info [ "workload" ] ~doc:"Inputs: cube, clusters, corners, gradients.")
  in
  let side =
    Arg.(value & opt float 10. & info [ "side" ] ~doc:"Workload scale.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"More output.") in
  Cmd.v
    (Cmd.info "maaa_run" ~doc:"Run one hybrid D-AA scenario in the simulator")
    Term.(
      const run $ n $ ts $ ta $ dim $ eps $ delta $ network $ seed $ corrupt
      $ workload $ side $ verbose)

let () = exit (Cmd.eval' cmd)
