bin/maaa_run.ml: Arg Behavior Cmd Cmdliner Config Engine Format Inputs Int64 List Network Rng Runner Scenario String Term Vec
