bin/maaa_run.mli:
