(* Regenerates every experiment report of EXPERIMENTS.md.
   Usage: experiments.exe [e1 ... e12] — no argument runs everything. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let ok =
    match args with
    | [] -> Experiments.run_all ()
    | ids ->
        List.for_all
          (fun id ->
            match Experiments.run_one (String.lowercase_ascii id) with
            | ok -> ok
            | exception Not_found ->
                prerr_endline
                  ("unknown experiment '" ^ id ^ "'; known: e1 .. e12");
                false)
          ids
  in
  exit (if ok then 0 else 1)
