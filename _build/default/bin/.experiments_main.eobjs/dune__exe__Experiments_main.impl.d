bin/experiments_main.ml: Array Experiments List String Sys
