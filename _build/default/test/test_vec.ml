(* Unit and property tests for the Vec and Pairset modules. *)

let vec = Alcotest.testable Vec.pp (fun a b -> Vec.compare a b = 0)

let test_basics () =
  let v = Vec.of_list [ 1.; 2.; 3. ] in
  Alcotest.(check int) "dim" 3 (Vec.dim v);
  Alcotest.(check (float 1e-12)) "get" 2. (Vec.get v 1);
  Alcotest.(check vec) "add" (Vec.of_list [ 2.; 4.; 6. ]) (Vec.add v v);
  Alcotest.(check vec) "sub" (Vec.zero 3) (Vec.sub v v);
  Alcotest.(check vec) "scale" (Vec.of_list [ 2.; 4.; 6. ]) (Vec.scale 2. v);
  Alcotest.(check vec) "neg" (Vec.of_list [ -1.; -2.; -3. ]) (Vec.neg v);
  Alcotest.(check (float 1e-12)) "dot" 14. (Vec.dot v v);
  Alcotest.(check (float 1e-12)) "norm" (sqrt 14.) (Vec.norm v)

let test_basis () =
  let e1 = Vec.basis ~dim:3 1 5. in
  Alcotest.(check vec) "basis" (Vec.of_list [ 0.; 5.; 0. ]) e1;
  Alcotest.check_raises "out of range" (Invalid_argument "Vec.basis")
    (fun () -> ignore (Vec.basis ~dim:2 2 1.))

let test_dist () =
  let a = Vec.of_list [ 0.; 0. ] and b = Vec.of_list [ 3.; 4. ] in
  Alcotest.(check (float 1e-12)) "dist 3-4-5" 5. (Vec.dist a b);
  Alcotest.(check (float 1e-12)) "dist2" 25. (Vec.dist2 a b);
  Alcotest.(check vec) "midpoint" (Vec.of_list [ 1.5; 2. ]) (Vec.midpoint a b)

let test_lincomb () =
  let a = Vec.of_list [ 1.; 0. ] and b = Vec.of_list [ 0.; 1. ] in
  Alcotest.(check vec) "lincomb"
    (Vec.of_list [ 0.25; 0.75 ])
    (Vec.lincomb [ (0.25, a); (0.75, b) ]);
  Alcotest.check_raises "empty" (Invalid_argument "Vec.lincomb: empty list")
    (fun () -> ignore (Vec.lincomb []))

let test_compare () =
  let a = Vec.of_list [ 1.; 2. ] and b = Vec.of_list [ 1.; 3. ] in
  Alcotest.(check bool) "lt" true (Vec.compare a b < 0);
  Alcotest.(check bool) "gt" true (Vec.compare b a > 0);
  Alcotest.(check bool) "eq" true (Vec.compare a a = 0);
  Alcotest.(check bool) "shorter first" true
    (Vec.compare (Vec.of_list [ 9. ]) a < 0)

let test_normalize () =
  (match Vec.normalize (Vec.of_list [ 3.; 4. ]) with
  | Some n -> Alcotest.(check (float 1e-12)) "unit" 1. (Vec.norm n)
  | None -> Alcotest.fail "normalize failed");
  Alcotest.(check bool) "zero" true (Vec.normalize (Vec.zero 2) = None)

let test_diameter () =
  let pts =
    [ Vec.of_list [ 0.; 0. ]; Vec.of_list [ 1.; 0. ]; Vec.of_list [ 0.; 1. ] ]
  in
  Alcotest.(check (float 1e-12)) "diameter" (sqrt 2.) (Vec.diameter pts);
  (match Vec.diameter_pair pts with
  | Some (a, b) ->
      Alcotest.(check vec) "pair fst" (Vec.of_list [ 0.; 1. ]) a;
      Alcotest.(check vec) "pair snd" (Vec.of_list [ 1.; 0. ]) b
  | None -> Alcotest.fail "no pair");
  Alcotest.(check (float 1e-12)) "singleton" 0. (Vec.diameter [ Vec.zero 2 ]);
  Alcotest.(check (float 1e-12)) "empty" 0. (Vec.diameter [])

let test_diameter_deterministic () =
  (* All four corners of a square: ties between the two diagonals must be
     broken the same way regardless of input order. *)
  let corners =
    [
      Vec.of_list [ 0.; 0. ]; Vec.of_list [ 1.; 0. ];
      Vec.of_list [ 0.; 1. ]; Vec.of_list [ 1.; 1. ];
    ]
  in
  let p1 = Vec.diameter_pair corners in
  let p2 = Vec.diameter_pair (List.rev corners) in
  Alcotest.(check bool) "order independent" true (p1 = p2)

let test_centroid () =
  let pts = [ Vec.of_list [ 0.; 0. ]; Vec.of_list [ 2.; 4. ] ] in
  Alcotest.(check vec) "centroid" (Vec.of_list [ 1.; 2. ]) (Vec.centroid pts)

(* --- Pairset --- *)

let v1 = Vec.of_list [ 1.; 1. ]
let v2 = Vec.of_list [ 2.; 2. ]
let v3 = Vec.of_list [ 3.; 3. ]

let test_pairset_basics () =
  let m = Pairset.empty |> Pairset.add ~party:1 v1 |> Pairset.add ~party:0 v2 in
  Alcotest.(check int) "cardinal" 2 (Pairset.cardinal m);
  Alcotest.(check bool) "mem" true (Pairset.mem_party 1 m);
  Alcotest.(check bool) "not mem" false (Pairset.mem_party 5 m);
  Alcotest.(check (list int)) "parties sorted" [ 0; 1 ] (Pairset.parties m);
  Alcotest.(check (list vec)) "values by party order" [ v2; v1 ]
    (Pairset.values m)

let test_pairset_first_wins () =
  let m = Pairset.empty |> Pairset.add ~party:0 v1 |> Pairset.add ~party:0 v2 in
  Alcotest.(check (option vec)) "first value kept" (Some v1)
    (Pairset.find_party 0 m)

let test_pairset_subset_inter () =
  let m = Pairset.of_bindings [ (0, v1); (1, v2); (2, v3) ] in
  let m' = Pairset.of_bindings [ (0, v1); (1, v2) ] in
  Alcotest.(check bool) "subset" true (Pairset.subset m' m);
  Alcotest.(check bool) "not subset" false (Pairset.subset m m');
  let conflicting = Pairset.of_bindings [ (0, v2) ] in
  Alcotest.(check bool) "subset needs same value" false
    (Pairset.subset conflicting m);
  Alcotest.(check int) "inter" 2 (Pairset.cardinal (Pairset.inter m m'));
  Alcotest.(check int) "inter conflicting" 0
    (Pairset.cardinal (Pairset.inter conflicting m'));
  Alcotest.(check int) "union" 3 (Pairset.cardinal (Pairset.union m' m))

let test_pairset_diameter () =
  let m = Pairset.of_bindings [ (0, v1); (1, v3) ] in
  Alcotest.(check (float 1e-12)) "diameter" (Vec.dist v1 v3)
    (Pairset.diameter m)

(* --- properties --- *)

let gen_vec d =
  QCheck.Gen.(list_repeat d (float_range (-100.) 100.) >|= Vec.of_list)

let arb_vec d = QCheck.make ~print:Vec.to_string (gen_vec d)

let arb_vec_list d =
  QCheck.make
    ~print:(fun l -> String.concat " " (List.map Vec.to_string l))
    QCheck.Gen.(list_size (int_range 1 12) (gen_vec d))

let prop_triangle =
  QCheck.Test.make ~name:"triangle inequality" ~count:300
    (QCheck.triple (arb_vec 3) (arb_vec 3) (arb_vec 3))
    (fun (a, b, c) -> Vec.dist a c <= Vec.dist a b +. Vec.dist b c +. 1e-9)

let prop_diameter_max =
  QCheck.Test.make ~name:"diameter is max pairwise distance" ~count:200
    (arb_vec_list 2) (fun vs ->
      let d = Vec.diameter vs in
      List.for_all
        (fun a -> List.for_all (fun b -> Vec.dist a b <= d +. 1e-9) vs)
        vs)

let prop_diameter_order_independent =
  QCheck.Test.make ~name:"diameter pair is order independent" ~count:200
    (arb_vec_list 2) (fun vs ->
      Vec.diameter_pair vs = Vec.diameter_pair (List.rev vs))

let prop_midpoint_between =
  QCheck.Test.make ~name:"midpoint halves the distance" ~count:300
    (QCheck.pair (arb_vec 4) (arb_vec 4))
    (fun (a, b) ->
      let m = Vec.midpoint a b in
      Float.abs (Vec.dist a m -. (Vec.dist a b /. 2.)) <= 1e-9)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vec"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "basis" `Quick test_basis;
          Alcotest.test_case "dist" `Quick test_dist;
          Alcotest.test_case "lincomb" `Quick test_lincomb;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "diameter deterministic" `Quick
            test_diameter_deterministic;
          Alcotest.test_case "centroid" `Quick test_centroid;
        ] );
      ( "pairset",
        [
          Alcotest.test_case "basics" `Quick test_pairset_basics;
          Alcotest.test_case "first value wins" `Quick test_pairset_first_wins;
          Alcotest.test_case "subset/inter/union" `Quick
            test_pairset_subset_inter;
          Alcotest.test_case "diameter" `Quick test_pairset_diameter;
        ] );
      ( "vec properties",
        q
          [
            prop_triangle;
            prop_diameter_max;
            prop_diameter_order_independent;
            prop_midpoint_between;
          ] );
    ]
