(* End-to-end tests of the full hybrid protocol ΠAA (Theorem 5.19), run
   through the harness against assorted adversaries and networks. *)

let cfg_2d = Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10

let grid_inputs n d =
  List.init n (fun i ->
      Vec.of_list
        (List.init d (fun c -> float_of_int ((i + c) mod 4) +. (0.1 *. float_of_int i))))

let check_all name r =
  if not r.Runner.live then Alcotest.failf "%s: liveness failed" name;
  if not r.Runner.valid then Alcotest.failf "%s: validity failed" name;
  if not r.Runner.agreement then
    Alcotest.failf "%s: agreement failed (diam %.3e > eps %g)" name
      r.Runner.diameter r.Runner.eps

let run ?name ?seed ?policy ?sync_network ?corruptions ~cfg inputs =
  Runner.run
    (Scenario.make ?name ?seed ?policy ?sync_network ?corruptions ~cfg ~inputs ())

(* --- configuration validation --- *)

let test_config_validation () =
  let ok n ts ta d = Result.is_ok (Config.make ~n ~ts ~ta ~d ~eps:0.1 ~delta:1) in
  Alcotest.(check bool) "feasible" true (ok 8 2 1 2);
  Alcotest.(check bool) "boundary rejected" false (ok 7 2 1 2);
  Alcotest.(check bool) "ta > ts rejected" false (ok 20 1 2 2);
  Alcotest.(check bool) "rbc bound for D=1" false (ok 6 2 0 1);
  Alcotest.(check bool) "D=1 with n > 3ts" true (ok 7 2 0 1);
  Alcotest.(check bool) "ta = ts async optimum" true (ok 9 2 2 2);
  Alcotest.(check bool) "feasibility helper" true
    (Config.feasible ~n:8 ~ts:2 ~ta:1 ~d:2);
  Alcotest.(check bool) "feasibility helper boundary" false
    (Config.feasible ~n:7 ~ts:2 ~ta:1 ~d:2)

(* --- synchronous network, ts corruptions --- *)

let test_sync_honest () =
  check_all "sync honest" (run ~cfg:cfg_2d (grid_inputs 8 2))

let test_sync_poisoned () =
  (* ts extreme-value corruptions: the strongest in-protocol attack *)
  let far = Vec.of_list [ 1000.; -1000. ] in
  let r =
    run ~cfg:cfg_2d
      ~corruptions:
        [ (1, Behavior.Honest_with_input far); (5, Behavior.Honest_with_input far) ]
      (grid_inputs 8 2)
  in
  check_all "sync poisoned" r

let test_sync_silent () =
  let r =
    run ~cfg:cfg_2d
      ~corruptions:[ (0, Behavior.Silent); (7, Behavior.Silent) ]
      (grid_inputs 8 2)
  in
  check_all "sync silent" r

let test_sync_crash_mid_protocol () =
  let r =
    run ~cfg:cfg_2d
      ~corruptions:[ (2, Behavior.Crash_at 45); (4, Behavior.Crash_at 95) ]
      (grid_inputs 8 2)
  in
  check_all "sync crash" r

let test_sync_equivocator () =
  let va = Vec.of_list [ 50.; 50. ] and vb = Vec.of_list [ -50.; -50. ] in
  let r =
    run ~cfg:cfg_2d
      ~corruptions:[ (3, Behavior.Equivocate (va, vb)) ]
      (grid_inputs 8 2)
  in
  check_all "sync equivocator" r

let test_sync_halt_liar () =
  let r =
    run ~cfg:cfg_2d
      ~corruptions:
        [
          (0, Behavior.Halt_liar 1);
          (6, Behavior.Halt_liar 1);
        ]
      (grid_inputs 8 2)
  in
  check_all "sync halt liars" r

let test_sync_spam () =
  let r =
    run ~cfg:cfg_2d
      ~corruptions:
        [ (7, Behavior.Spam { period = 3; payload_bytes = 64; until = 2000 }) ]
      (grid_inputs 8 2)
  in
  check_all "sync spam" r

let test_sync_mixed_adversary () =
  let far = Vec.of_list [ 300.; 300. ] in
  let r =
    run ~cfg:cfg_2d
      ~corruptions:
        [ (1, Behavior.Honest_with_input far); (4, Behavior.Silent) ]
      ~policy:(Network.rushing ~delta:10 ~corrupt:(fun i -> i = 1 || i = 4))
      (grid_inputs 8 2)
  in
  check_all "sync mixed + rushing" r

(* --- asynchronous network, ta corruptions --- *)

let test_async_starved_honest () =
  (* one crash corruption (= ta) plus starvation of an honest party: the
     fallback regime *)
  let r =
    run ~cfg:cfg_2d
      ~policy:(Network.async_starve ~victims:(fun i -> i = 2) ~release:900 ~fast:4)
      ~sync_network:false
      ~corruptions:[ (6, Behavior.Silent) ]
      (grid_inputs 8 2)
  in
  check_all "async starved" r

let test_async_heavy_tail_poison () =
  let far = Vec.of_list [ -500.; 500. ] in
  let r =
    run ~cfg:cfg_2d
      ~policy:(Network.async_heavy_tail ~base:12)
      ~sync_network:false
      ~corruptions:[ (3, Behavior.Honest_with_input far) ]
      (grid_inputs 8 2)
  in
  check_all "async heavy tail" r

(* --- dimensions 1 and 3 --- *)

let test_d1 () =
  let cfg = Config.make_exn ~n:7 ~ts:2 ~ta:0 ~d:1 ~eps:0.05 ~delta:10 in
  let inputs = List.init 7 (fun i -> Vec.of_list [ float_of_int i ]) in
  let far = Vec.of_list [ 10000. ] in
  let r =
    run ~cfg
      ~corruptions:
        [ (0, Behavior.Honest_with_input far); (3, Behavior.Honest_with_input far) ]
      inputs
  in
  check_all "1-dimensional" r

let test_d3 () =
  let cfg = Config.make_exn ~n:6 ~ts:1 ~ta:0 ~d:3 ~eps:0.1 ~delta:10 in
  let inputs =
    List.init 6 (fun i ->
        Vec.of_list
          [ float_of_int (i mod 2); float_of_int (i mod 3); float_of_int i /. 2. ])
  in
  let far = Vec.of_list [ 100.; 100.; 100. ] in
  let r = run ~cfg ~corruptions:[ (2, Behavior.Honest_with_input far) ] inputs in
  check_all "3-dimensional" r

(* --- quantitative claims --- *)

let test_contraction_bound () =
  (* Lemma 5.15: every fully-honest-iteration contraction <= sqrt(7/8),
     up to numerical noise. Poisoning forces a spread so there is something
     to contract. *)
  let cfg = Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:1e-3 ~delta:10 in
  let far = Vec.of_list [ 40.; -30. ] in
  let r =
    run ~cfg
      ~seed:5L
      ~policy:(Network.sync_uniform ~delta:10)
      ~corruptions:[ (2, Behavior.Honest_with_input far) ]
      (grid_inputs 8 2)
  in
  check_all "contraction run" r;
  List.iter
    (fun (it, ratio) ->
      if ratio > Params.conv_factor +. 1e-6 then
        Alcotest.failf "iteration %d contracted only by %.4f > sqrt(7/8)" it ratio)
    (Runner.contraction_ratios r)

let test_sync_round_count () =
  (* Theorem 5.19 timing: completion within c_init + (T + 1) * c_AA-it + c'_rBC
     rounds of Δ under lockstep (plus the final halt delivery). *)
  let r = run ~cfg:cfg_2d ~policy:(Network.lockstep ~delta:10) (grid_inputs 8 2) in
  check_all "round count run" r;
  let t_max =
    List.fold_left (fun acc (_, t) -> max acc t) 1 r.Runner.t_estimates
  in
  let bound =
    float_of_int
      (Params.c_init + ((t_max + 1) * Params.c_aa_it) + Params.c_rbc')
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f rounds within %.1f" r.Runner.completion_rounds bound)
    true
    (r.Runner.completion_rounds <= bound +. 1e-9)

let test_validity_exact_hull_membership () =
  let r =
    run ~cfg:cfg_2d
      ~corruptions:
        [ (0, Behavior.Honest_with_input (Vec.of_list [ 9999.; 9999. ])) ]
      (grid_inputs 8 2)
  in
  check_all "hull membership run" r;
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "inside honest hull" true
        (Membership.in_hull ~eps:1e-6 r.Runner.honest_inputs v))
    r.Runner.outputs

let test_determinism () =
  let go () =
    let r =
      run ~cfg:cfg_2d ~seed:33L
        ~policy:(Network.sync_uniform ~delta:10)
        ~corruptions:[ (5, Behavior.Silent) ]
        (grid_inputs 8 2)
    in
    List.map (fun (i, v) -> (i, Vec.to_list v)) r.Runner.outputs
  in
  Alcotest.(check bool) "bit-identical reruns" true (go () = go ())

(* --- Fixed_t mode (the known-bounds variant, E16) --- *)

let test_fixed_t_mode () =
  let inputs = grid_inputs 8 2 in
  let t_true = Baseline_runner.rounds_for ~eps:cfg_2d.Config.eps ~inputs in
  let engine =
    Engine.create ~seed:5L ~size_of:Message.size_of ~n:8
      ~policy:(Network.sync_uniform ~delta:10) ()
  in
  let parties =
    List.init 8 (fun i ->
        Party.attach ~mode:(Party.Fixed_t t_true) ~cfg:cfg_2d ~me:i engine)
  in
  List.iteri (fun i p -> Party.start p (List.nth inputs i)) parties;
  Engine.run engine;
  let outs = List.filter_map Party.output parties in
  Alcotest.(check int) "all output" 8 (List.length outs);
  Alcotest.(check bool) "agreement" true
    (Vec.diameter outs <= cfg_2d.Config.eps);
  List.iter
    (fun v ->
      Alcotest.(check bool) "validity" true
        (Membership.in_hull ~eps:1e-6 inputs v))
    outs;
  (* iteration 0 in this mode is the party's own input *)
  List.iter
    (fun p ->
      match Party.value_history p with
      | (0, v0) :: _ ->
          Alcotest.(check bool) "seeded from input" true
            (List.exists (fun i -> Vec.compare i v0 = 0) inputs)
      | _ -> Alcotest.fail "missing iteration 0")
    parties

let test_fixed_t_validation () =
  let engine = Engine.create ~n:8 ~policy:Network.instant () in
  let p = Party.attach ~mode:(Party.Fixed_t 0) ~cfg:cfg_2d ~me:0 engine in
  Alcotest.check_raises "T >= 1 required"
    (Invalid_argument "Party.start: Fixed_t needs T >= 1") (fun () ->
      Party.start p (Vec.zero 2))

let test_party_start_validation () =
  let engine = Engine.create ~n:8 ~policy:Network.instant () in
  let p = Party.attach ~cfg:cfg_2d ~me:0 engine in
  Alcotest.check_raises "dimension check"
    (Invalid_argument "Party.start: wrong dimension") (fun () ->
      Party.start p (Vec.zero 3));
  Party.start p (Vec.zero 2);
  Alcotest.check_raises "double start"
    (Invalid_argument "Party.start: already started") (fun () ->
      Party.start p (Vec.zero 2))

(* --- property: random scenarios stay correct --- *)

let prop_random_scenarios =
  QCheck.Test.make ~name:"random sync scenarios satisfy D-AA" ~count:15
    QCheck.(pair (int_range 0 10000) (int_range 0 2))
    (fun (seed, n_corrupt) ->
      let rng = Rng.create (Int64.of_int (seed + 77)) in
      let inputs = Inputs.uniform_cube rng ~d:2 ~n:8 ~side:10. in
      let corruptions =
        List.init n_corrupt (fun i ->
            ( i * 3,
              if i mod 2 = 0 then Behavior.Silent
              else Behavior.Honest_with_input (Vec.of_list [ 1e4; -1e4 ]) ))
      in
      let r =
        run ~cfg:cfg_2d
          ~seed:(Int64.of_int seed)
          ~policy:(Network.sync_uniform ~delta:10)
          ~corruptions inputs
      in
      r.Runner.live && r.Runner.valid && r.Runner.agreement)

let prop_random_async_scenarios =
  QCheck.Test.make ~name:"random async scenarios satisfy D-AA" ~count:10
    (QCheck.int_range 0 10000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int (seed + 13)) in
      let inputs = Inputs.two_clusters rng ~d:2 ~n:8 ~separation:8. in
      let victim = seed mod 8 in
      let corrupt = (victim + 4) mod 8 in
      let r =
        run ~cfg:cfg_2d
          ~seed:(Int64.of_int seed)
          ~policy:
            (Network.async_starve ~victims:(fun i -> i = victim)
               ~release:(500 + (seed mod 400))
               ~fast:5)
          ~sync_network:false
          ~corruptions:[ (corrupt, Behavior.Silent) ]
          inputs
      in
      r.Runner.live && r.Runner.valid && r.Runner.agreement)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "maaa"
    [
      ("config", [ Alcotest.test_case "validation" `Quick test_config_validation ]);
      ( "synchronous",
        [
          Alcotest.test_case "honest" `Quick test_sync_honest;
          Alcotest.test_case "ts poisoned" `Quick test_sync_poisoned;
          Alcotest.test_case "ts silent" `Quick test_sync_silent;
          Alcotest.test_case "crash mid-protocol" `Quick
            test_sync_crash_mid_protocol;
          Alcotest.test_case "equivocator" `Quick test_sync_equivocator;
          Alcotest.test_case "halt liars" `Quick test_sync_halt_liar;
          Alcotest.test_case "spam" `Quick test_sync_spam;
          Alcotest.test_case "mixed + rushing" `Quick test_sync_mixed_adversary;
        ] );
      ( "asynchronous",
        [
          Alcotest.test_case "starved honest party" `Quick
            test_async_starved_honest;
          Alcotest.test_case "heavy tail + poison" `Quick
            test_async_heavy_tail_poison;
        ] );
      ( "dimensions",
        [
          Alcotest.test_case "D = 1" `Quick test_d1;
          Alcotest.test_case "D = 3" `Quick test_d3;
        ] );
      ( "modes",
        [
          Alcotest.test_case "fixed T" `Quick test_fixed_t_mode;
          Alcotest.test_case "fixed T validation" `Quick test_fixed_t_validation;
          Alcotest.test_case "start validation" `Quick test_party_start_validation;
        ] );
      ( "quantitative",
        [
          Alcotest.test_case "contraction bound" `Quick test_contraction_bound;
          Alcotest.test_case "sync round count" `Quick test_sync_round_count;
          Alcotest.test_case "hull membership" `Quick
            test_validity_exact_hull_membership;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "properties",
        q [ prop_random_scenarios; prop_random_async_scenarios ] );
    ]
