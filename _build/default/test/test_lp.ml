(* Tests for the dense two-phase simplex solver. *)

let check_optimal name expected = function
  | Lp.Optimal (z, _) -> Alcotest.(check (float 1e-7)) name expected z
  | Lp.Infeasible -> Alcotest.fail (name ^ ": unexpectedly infeasible")
  | Lp.Unbounded -> Alcotest.fail (name ^ ": unexpectedly unbounded")

(* max x + y s.t. x + 2y <= 4, 3x + y <= 6  ->  optimum 2.8 at (1.6, 1.2) *)
let test_small_max () =
  let r =
    Lp.solve ~nvars:2 ~minimize:false
      ~objective:[ (0, 1.); (1, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 2.) ]; cmp = Lp.Le; rhs = 4. };
        { Lp.coeffs = [ (0, 3.); (1, 1.) ]; cmp = Lp.Le; rhs = 6. };
      ]
  in
  check_optimal "objective" 2.8 r;
  match r with
  | Lp.Optimal (_, x) ->
      Alcotest.(check (float 1e-7)) "x" 1.6 x.(0);
      Alcotest.(check (float 1e-7)) "y" 1.2 x.(1)
  | _ -> assert false

(* min x + y s.t. x + y >= 3, x <= 2, y <= 2 -> optimum 3 *)
let test_small_min () =
  let r =
    Lp.solve ~nvars:2 ~minimize:true
      ~objective:[ (0, 1.); (1, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Ge; rhs = 3. };
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Le; rhs = 2. };
        { Lp.coeffs = [ (1, 1.) ]; cmp = Lp.Le; rhs = 2. };
      ]
  in
  check_optimal "objective" 3. r

let test_equality () =
  (* max 2x + 3y s.t. x + y = 4, x - y <= 2 -> x = 3, y = 1? no:
     maximizing 3y pushes y up: y = 4, x = 0, obj = 12. x - y = -4 <= 2 ok. *)
  let r =
    Lp.solve ~nvars:2 ~minimize:false
      ~objective:[ (0, 2.); (1, 3.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Eq; rhs = 4. };
        { Lp.coeffs = [ (0, 1.); (1, -1.) ]; cmp = Lp.Le; rhs = 2. };
      ]
  in
  check_optimal "objective" 12. r

let test_infeasible () =
  let r =
    Lp.solve ~nvars:1 ~minimize:true ~objective:[ (0, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Ge; rhs = 5. };
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Le; rhs = 1. };
      ]
  in
  Alcotest.(check bool) "infeasible" true (r = Lp.Infeasible)

let test_unbounded () =
  let r =
    Lp.solve ~nvars:1 ~minimize:false ~objective:[ (0, 1.) ]
      [ { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Ge; rhs = 0. } ]
  in
  Alcotest.(check bool) "unbounded" true (r = Lp.Unbounded)

let test_negative_rhs () =
  (* -x <= -2  (i.e. x >= 2), min x -> 2 *)
  let r =
    Lp.solve ~nvars:1 ~minimize:true ~objective:[ (0, 1.) ]
      [ { Lp.coeffs = [ (0, -1.) ]; cmp = Lp.Le; rhs = -2. } ]
  in
  check_optimal "objective" 2. r

let test_degenerate () =
  (* Redundant constraints sharing a vertex: classic degeneracy. *)
  let r =
    Lp.solve ~nvars:2 ~minimize:false
      ~objective:[ (0, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Le; rhs = 1. };
        { Lp.coeffs = [ (0, 1.); (1, 2.) ]; cmp = Lp.Le; rhs = 1. };
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Le; rhs = 1. };
      ]
  in
  check_optimal "objective" 1. r

let test_redundant_equalities () =
  (* x + y = 1 stated twice: phase 1 leaves a redundant artificial row. *)
  let r =
    Lp.solve ~nvars:2 ~minimize:false ~objective:[ (0, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Eq; rhs = 1. };
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Eq; rhs = 1. };
      ]
  in
  check_optimal "objective" 1. r

(* Beale's classic cycling example: Dantzig's rule with naive tie-breaking
   cycles forever on it; the Bland fallback must terminate at z* = -1/20. *)
let test_beale_cycling () =
  let r =
    Lp.solve ~nvars:4 ~minimize:true
      ~objective:[ (0, -0.75); (1, 150.); (2, -0.02); (3, 6.) ]
      [
        { Lp.coeffs = [ (0, 0.25); (1, -60.); (2, -0.04); (3, 9.) ]; cmp = Lp.Le; rhs = 0. };
        { Lp.coeffs = [ (0, 0.5); (1, -90.); (2, -0.02); (3, 3.) ]; cmp = Lp.Le; rhs = 0. };
        { Lp.coeffs = [ (2, 1.) ]; cmp = Lp.Le; rhs = 1. };
      ]
  in
  check_optimal "beale optimum" (-0.05) r

(* Klee-Minty-style: many iterations but must terminate and be exact. *)
let test_klee_minty_3 () =
  let r =
    Lp.solve ~nvars:3 ~minimize:false
      ~objective:[ (0, 4.); (1, 2.); (2, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Le; rhs = 5. };
        { Lp.coeffs = [ (0, 4.); (1, 1.) ]; cmp = Lp.Le; rhs = 25. };
        { Lp.coeffs = [ (0, 8.); (1, 4.); (2, 1.) ]; cmp = Lp.Le; rhs = 125. };
      ]
  in
  check_optimal "klee-minty optimum" 125. r

let test_feasible_point () =
  let cs =
    [
      { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Eq; rhs = 1. };
      { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Ge; rhs = 0.25 };
    ]
  in
  (match Lp.feasible_point ~nvars:2 cs with
  | Some x ->
      Alcotest.(check (float 1e-7)) "sums to one" 1. (x.(0) +. x.(1));
      Alcotest.(check bool) "x0 large enough" true (x.(0) >= 0.25 -. 1e-7)
  | None -> Alcotest.fail "should be feasible");
  let bad = { Lp.coeffs = [ (1, 1.) ]; cmp = Lp.Ge; rhs = 2. } :: cs in
  Alcotest.(check bool) "infeasible point" true
    (Lp.feasible_point ~nvars:2 bad = None)

let test_var_out_of_range () =
  Alcotest.check_raises "range check"
    (Invalid_argument "Lp: variable out of range") (fun () ->
      ignore
        (Lp.solve ~nvars:1 ~minimize:true ~objective:[]
           [ { Lp.coeffs = [ (3, 1.) ]; cmp = Lp.Le; rhs = 0. } ]))

(* Property: for random bounded LPs  max c.x  s.t. x <= u (box), the optimum
   is the obvious corner. *)
let prop_box =
  QCheck.Test.make ~name:"box LP optimum at corner" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 6) (float_range 0.1 10.))
        (list_of_size (Gen.int_range 1 6) (float_range (-5.) 5.)))
    (fun (ub, c) ->
      let n = min (List.length ub) (List.length c) in
      QCheck.assume (n >= 1);
      let ub = Array.of_list ub and c = Array.of_list c in
      let cs =
        List.init n (fun i ->
            { Lp.coeffs = [ (i, 1.) ]; cmp = Lp.Le; rhs = ub.(i) })
      in
      let obj = List.init n (fun i -> (i, c.(i))) in
      match Lp.solve ~nvars:n ~minimize:false ~objective:obj cs with
      | Lp.Optimal (z, _) ->
          let expected = ref 0. in
          for i = 0 to n - 1 do
            if c.(i) > 0. then expected := !expected +. (c.(i) *. ub.(i))
          done;
          Float.abs (z -. !expected) <= 1e-6
      | _ -> false)

(* Property: a random convex combination of points is inside their hull, as
   certified by a feasibility LP. *)
let prop_combination_feasible =
  QCheck.Test.make ~name:"convex combinations are LP-feasible" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 2 7)
        (list_of_size (Gen.return 3) (float_range (-10.) 10.)))
    (fun pts_l ->
      let pts = List.map Vec.of_list pts_l in
      let k = List.length pts in
      let w = List.init k (fun i -> 1. +. float_of_int (i mod 3)) in
      let total = List.fold_left ( +. ) 0. w in
      let p =
        Vec.lincomb (List.map2 (fun wi v -> (wi /. total, v)) w pts)
      in
      Membership.in_hull pts p)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "small max" `Quick test_small_max;
          Alcotest.test_case "small min" `Quick test_small_min;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "redundant equalities" `Quick
            test_redundant_equalities;
          Alcotest.test_case "beale cycling" `Quick test_beale_cycling;
          Alcotest.test_case "klee-minty" `Quick test_klee_minty_3;
          Alcotest.test_case "feasible point" `Quick test_feasible_point;
          Alcotest.test_case "var out of range" `Quick test_var_out_of_range;
        ] );
      ("properties", q [ prop_box; prop_combination_feasible ]);
    ]
