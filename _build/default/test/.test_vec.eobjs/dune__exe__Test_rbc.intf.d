test/test_rbc.mli:
