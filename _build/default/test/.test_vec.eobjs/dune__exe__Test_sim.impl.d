test/test_sim.ml: Alcotest Array Engine Fun Heap List Network QCheck QCheck_alcotest Rng String
