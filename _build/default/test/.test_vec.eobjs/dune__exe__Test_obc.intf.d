test/test_obc.mli:
