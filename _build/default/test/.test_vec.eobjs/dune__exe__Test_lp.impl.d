test/test_lp.ml: Alcotest Array Float Gen List Lp Membership QCheck QCheck_alcotest Vec
