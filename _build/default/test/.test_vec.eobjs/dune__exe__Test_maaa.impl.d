test/test_maaa.ml: Alcotest Baseline_runner Behavior Config Engine Inputs Int64 List Membership Message Network Params Party Printf QCheck QCheck_alcotest Result Rng Runner Scenario Vec
