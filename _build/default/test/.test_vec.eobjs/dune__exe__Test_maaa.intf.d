test/test_maaa.mli:
