test/test_adversary.ml: Alcotest Behavior Config Engine List Network Printf Runner Scenario Vec
