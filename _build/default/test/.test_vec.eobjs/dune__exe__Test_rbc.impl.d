test/test_rbc.ml: Alcotest Array Engine List Message Network Option Params Printf Rbc Vec
