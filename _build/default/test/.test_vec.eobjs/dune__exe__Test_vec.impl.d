test/test_vec.ml: Alcotest Float List Pairset QCheck QCheck_alcotest String Vec
