test/test_protocol.ml: Alcotest Format List Message Params QCheck QCheck_alcotest Safe_area String Vec
