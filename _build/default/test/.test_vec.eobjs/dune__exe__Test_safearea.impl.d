test/test_safearea.ml: Alcotest Float Fun Gen List Membership Polygon QCheck QCheck_alcotest Restrict Safe_area String Vec
