test/test_baselines.ml: Alcotest Async_aa Baseline_runner Engine List Network Sync_aa Vec
