test/test_obc.ml: Alcotest Engine Fun List Message Network Obc Option Pairset Params Printf Rbc Vec
