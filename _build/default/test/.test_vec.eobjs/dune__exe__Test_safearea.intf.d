test/test_safearea.mli:
