test/test_geometry.ml: Alcotest Array Float Hull2d Hullset List Membership Polygon QCheck QCheck_alcotest Vec
