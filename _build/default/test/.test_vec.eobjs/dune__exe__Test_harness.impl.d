test/test_harness.ml: Alcotest Baseline_runner Behavior Config Engine Fixtures Fun Inputs List Membership Message Network Pairset Rng Runner Scenario Stats String Table Traffic Vec
