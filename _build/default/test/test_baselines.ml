(* Tests for the two baseline protocols: correct inside their envelopes,
   demonstrably broken outside (the regimes E12 measures). *)

let inputs_2d n =
  List.init n (fun i ->
      Vec.of_list [ float_of_int (i mod 3); float_of_int (i mod 5) ])

let check_result name ~live ~valid ~agreement (r : Baseline_runner.result) =
  Alcotest.(check bool) (name ^ " live") live r.Baseline_runner.live;
  Alcotest.(check bool) (name ^ " valid") valid r.Baseline_runner.valid;
  Alcotest.(check bool) (name ^ " agreement") agreement r.Baseline_runner.agreement

let test_rounds_for () =
  let inputs = [ Vec.of_list [ 0. ]; Vec.of_list [ 10. ] ] in
  let r = Baseline_runner.rounds_for ~eps:0.1 ~inputs in
  (* log_{sqrt(7/8)}(0.1 / 10) = 2 * ln 100 / ln(8/7) ~ 69 *)
  Alcotest.(check bool) "about 69 rounds" true (r >= 65 && r <= 75);
  Alcotest.(check int) "already close" 1
    (Baseline_runner.rounds_for ~eps:1. ~inputs:[ Vec.of_list [ 0. ] ])

(* --- pure-synchronous baseline --- *)

let test_sync_baseline_home_setting () =
  let inputs = inputs_2d 8 in
  let rounds = Baseline_runner.rounds_for ~eps:0.05 ~inputs in
  let r =
    Baseline_runner.run_sync_baseline ~n:8 ~t:2 ~rounds ~delta:10 ~eps:0.05
      ~inputs
      ~policy:(Network.sync_uniform ~delta:10)
      ~corruptions:
        [
          (1, Baseline_runner.Poison (Vec.of_list [ 1000.; 1000. ]));
          (5, Baseline_runner.Mute);
        ]
      ()
  in
  check_result "sync baseline" ~live:true ~valid:true ~agreement:true r;
  Alcotest.(check int) "no starvation under synchrony" 0 r.starved_rounds

let test_sync_baseline_breaks_off_synchrony () =
  let inputs = inputs_2d 8 in
  let rounds = Baseline_runner.rounds_for ~eps:0.05 ~inputs in
  let r =
    Baseline_runner.run_sync_baseline ~n:8 ~t:2 ~rounds ~delta:10 ~eps:0.05
      ~inputs
      ~policy:
        (Network.async_starve ~victims:(fun i -> i = 0) ~release:100_000 ~fast:4)
      ~corruptions:[ (5, Baseline_runner.Mute) ]
      ()
  in
  Alcotest.(check bool) "starved rounds observed" true (r.starved_rounds > 0);
  Alcotest.(check bool) "agreement lost" false r.agreement

let test_sync_baseline_zero_rounds () =
  let inputs = inputs_2d 4 in
  let r =
    Baseline_runner.run_sync_baseline ~n:4 ~t:1 ~rounds:0 ~delta:10 ~eps:100.
      ~inputs ~corruptions:[] ()
  in
  (* with no rounds everyone outputs its input *)
  check_result "zero rounds" ~live:true ~valid:true ~agreement:true r

(* --- pure-asynchronous baseline --- *)

let test_async_baseline_home_setting () =
  let inputs = inputs_2d 8 in
  let iters = Baseline_runner.rounds_for ~eps:0.05 ~inputs in
  (* n = 8, D = 2: tolerates t = 1 < n / (D + 2) *)
  let r =
    Baseline_runner.run_async_baseline ~n:8 ~t:1 ~iters ~delta:10 ~eps:0.05
      ~inputs
      ~policy:(Network.async_heavy_tail ~base:12)
      ~corruptions:[ (3, Baseline_runner.Poison (Vec.of_list [ -500.; 500. ])) ]
      ()
  in
  check_result "async baseline" ~live:true ~valid:true ~agreement:true r

let test_async_baseline_breaks_beyond_threshold () =
  (* two poison corruptions exceed its t = 1 envelope: validity is lost
     (the converged value is dragged outside the honest hull) *)
  let inputs = inputs_2d 8 in
  let iters = Baseline_runner.rounds_for ~eps:0.05 ~inputs in
  let far = Vec.of_list [ 500.; -500. ] in
  let r =
    Baseline_runner.run_async_baseline ~n:8 ~t:1 ~iters ~delta:10 ~eps:0.05
      ~inputs
      ~policy:(Network.sync_uniform ~delta:10)
      ~corruptions:
        [ (1, Baseline_runner.Poison far); (5, Baseline_runner.Poison far) ]
      ()
  in
  Alcotest.(check bool) "lives" true r.live;
  Alcotest.(check bool) "validity lost" false r.valid

let test_async_baseline_no_clocks () =
  (* purely count-driven: an extreme scheduler only slows it down *)
  let inputs = inputs_2d 7 in
  let r =
    Baseline_runner.run_async_baseline ~n:7 ~t:1 ~iters:10 ~delta:10 ~eps:10.
      ~inputs
      ~policy:
        (Network.async_starve ~victims:(fun i -> i = 2) ~release:3000 ~fast:3)
      ~corruptions:[ (6, Baseline_runner.Mute) ]
      ()
  in
  check_result "async no clocks" ~live:true ~valid:true ~agreement:true r

(* --- direct module behaviour --- *)

let test_sync_aa_history () =
  let delta = 10 in
  let engine = Engine.create ~n:4 ~policy:(Network.lockstep ~delta) () in
  let parties =
    List.init 4 (fun i -> Sync_aa.attach ~n:4 ~t:1 ~rounds:3 ~delta ~me:i engine)
  in
  List.iteri
    (fun i p -> Sync_aa.start p (Vec.of_list [ float_of_int i ]))
    parties;
  Engine.run engine;
  List.iter
    (fun p ->
      Alcotest.(check bool) "output" true (Sync_aa.output p <> None);
      Alcotest.(check int) "history = rounds + 1" 4
        (List.length (Sync_aa.value_history p)))
    parties

let test_async_aa_history () =
  let engine = Engine.create ~n:4 ~policy:Network.instant () in
  let parties =
    List.init 4 (fun i -> Async_aa.attach ~n:4 ~t:1 ~iters:3 ~me:i engine)
  in
  List.iteri
    (fun i p -> Async_aa.start p (Vec.of_list [ float_of_int i ]))
    parties;
  Engine.run engine;
  List.iter
    (fun p ->
      Alcotest.(check bool) "output" true (Async_aa.output p <> None);
      Alcotest.(check bool) "output time recorded" true
        (Async_aa.output_time p <> None);
      Alcotest.(check int) "history = iters + 1" 4
        (List.length (Async_aa.value_history p)))
    parties

let () =
  Alcotest.run "baselines"
    [
      ("rounds", [ Alcotest.test_case "rounds_for" `Quick test_rounds_for ]);
      ( "pure-sync",
        [
          Alcotest.test_case "home setting" `Quick test_sync_baseline_home_setting;
          Alcotest.test_case "breaks off-synchrony" `Quick
            test_sync_baseline_breaks_off_synchrony;
          Alcotest.test_case "zero rounds" `Quick test_sync_baseline_zero_rounds;
          Alcotest.test_case "history" `Quick test_sync_aa_history;
        ] );
      ( "pure-async",
        [
          Alcotest.test_case "home setting" `Quick test_async_baseline_home_setting;
          Alcotest.test_case "breaks beyond threshold" `Quick
            test_async_baseline_breaks_beyond_threshold;
          Alcotest.test_case "count-driven" `Quick test_async_baseline_no_clocks;
          Alcotest.test_case "history" `Quick test_async_aa_history;
        ] );
    ]
