(* Pinned per-class message-count check (make msgs-check).

   One fixed configuration — n=8, ts=2, ta=1, D=2, eps=0.05, delta=10,
   lockstep, all honest, the E14 input pattern — run through all three
   communication paths:

     reference  the unbatched rBC stack, checked against the closed-form
                E14 cost model (exact, not approximate)
     batched    the combined-packet layer; its logical step rows must
                equal the reference run's exactly (same votes, different
                packaging) and its physical packet counts are pinned
     ew         the quadratic-communication protocol; only the "EW
                direct" class may be non-zero, at exactly 2n^2 per
                iteration

   Counts here are deterministic (lockstep drains by (time, seq) order,
   no RNG), so any drift is a protocol or accounting change — the point
   of this gate. Prints the three tables; exit 1 on any mismatch. *)

let n = 8
let d = 2
let cfg = Config.make_exn ~n ~ts:2 ~ta:1 ~d ~eps:0.05 ~delta:10

let inputs =
  List.init n (fun i ->
      Vec.of_list (List.init d (fun c -> float_of_int ((i + c) mod 4))))

let run ?message_layer ?protocol name =
  let r =
    Runner.run
      (Scenario.make ~name ~cfg ~inputs ?message_layer ?protocol
         ~policy:(Network.lockstep ~delta:10) ())
  in
  if not (r.Runner.live && r.Runner.valid && r.Runner.agreement) then (
    Printf.eprintf "msgs-check: %s run did not converge\n" name;
    exit 1);
  r

let failures = ref 0

let check_table ~title rows expected =
  Printf.printf "%s\n" title;
  Printf.printf "  %-16s %10s %10s  %s\n" "class" "measured" "expected" "ok";
  List.iter
    (fun (name, msgs, _bytes) ->
      match List.assoc_opt name expected with
      | None ->
          incr failures;
          Printf.printf "  %-16s %10d %10s  UNEXPECTED CLASS\n" name msgs "-"
      | Some exp ->
          let ok = msgs = exp in
          if not ok then incr failures;
          Printf.printf "  %-16s %10d %10d  %s\n" name msgs exp
            (if ok then "yes" else "MISMATCH"))
    rows;
  print_newline ()

let () =
  let r_ref = run "msgs-reference" in
  let r_bat = run ~message_layer:`Batched "msgs-batched" in
  let r_ew = run ~protocol:`Ew "msgs-ew" in

  (* Reference: the E14 closed-form model. *)
  let iterations =
    1 + List.fold_left (fun acc (_, it) -> max acc it) 0 r_ref.Runner.output_iters
  in
  let per_instance = n + (2 * n * n) in
  let instances = (2 * n) + (iterations * n) + n in
  let expected_ref =
    [
      ("Pi_init rBC", 2 * n * per_instance);
      ("iteration rBC", iterations * n * per_instance);
      ("halt rBC", n * per_instance);
      ("oBC reports", (iterations - 1) * n * n);
      ("witness sets", n * n);
      ("baseline", 0);
      ("junk", 0);
      ("batched rBC", 0);
      ("EW direct", 0);
      ("rBC step: init", instances * n);
      ("rBC step: echo", instances * n * n);
      ("rBC step: ready", instances * n * n);
    ]
  in
  check_table
    ~title:
      (Printf.sprintf "reference (closed form, %d iterations, %d instances)"
         iterations instances)
    r_ref.Runner.traffic expected_ref;

  (* Batched: identical logical votes (step rows copied from the
     reference run's measured table), pinned physical packet counts.
     Plain rBC rows stay non-zero: a tick in which a party has exactly
     one vote for one receiver goes out unbatched. *)
  let ref_row name =
    match
      List.find_opt (fun (name', _, _) -> name' = name) r_ref.Runner.traffic
    with
    | Some (_, m, _) -> m
    | None -> -1
  in
  let expected_bat =
    [
      ("Pi_init rBC", 128);
      ("iteration rBC", 64);
      ("halt rBC", 0);
      ("oBC reports", (iterations - 1) * n * n);
      ("witness sets", n * n);
      ("baseline", 0);
      ("junk", 0);
      ("batched rBC", 576);
      ("EW direct", 0);
      ("rBC step: init", ref_row "rBC step: init");
      ("rBC step: echo", ref_row "rBC step: echo");
      ("rBC step: ready", ref_row "rBC step: ready");
    ]
  in
  check_table
    ~title:"batched (pinned packets; step rows must equal reference)"
    r_bat.Runner.traffic expected_bat;

  (* EW: every message is a direct one-to-all send — 2n^2 per iteration
     (a value wave and a report wave), nothing else on the wire. *)
  let ew_iters =
    match r_ew.Runner.output_iters with
    | (_, it) :: _ -> it
    | [] -> 0
  in
  let expected_ew =
    List.map
      (fun (name, _, _) ->
        (name, if name = "EW direct" then 2 * n * n * ew_iters else 0))
      r_ew.Runner.traffic
  in
  check_table
    ~title:(Printf.sprintf "ew (2n^2 per iteration, %d iterations)" ew_iters)
    r_ew.Runner.traffic expected_ew;

  if !failures > 0 then (
    Printf.printf "msgs-check: %d mismatching classes\n" !failures;
    exit 1)
  else Printf.printf "msgs-check: all per-class counts exact\n"
