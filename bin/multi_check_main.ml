(* Sequential-vs-multiplexed differential gate (`make multi-check`).

   Runs the full Multi_runner differential grid — k in {1,4,16} instances
   x D in {1,2} x sync/async x silent/poison corruption arms, plus EW
   instances and a cross-instance-batching group — and requires every
   multiplexed run to be byte-identical to its k sequential references:
   results, engine statistics, per-instance traffic, full traces and
   monitor summaries. Exit 1 with one line per mismatch otherwise. *)

let () =
  (match Array.to_list Sys.argv with
  | _ :: [] -> ()
  | _ :: args ->
      Printf.eprintf "multi_check: unexpected arguments: %s\n"
        (String.concat " " args);
      exit 2
  | [] -> assert false);
  match Multi_runner.check_grid () with
  | [] ->
      print_endline
        "multi-check: OK (multiplexed runs byte-identical to sequential \
         across the grid)"
  | failures ->
      List.iter (fun f -> Printf.eprintf "multi-check: %s\n" f) failures;
      Printf.eprintf "multi-check: %d mismatches\n" (List.length failures);
      exit 1
