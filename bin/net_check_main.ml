(* Sim-as-oracle differential gate for the networked runtime.
   Usage: net_check.exe [--verbose]
   Runs the pinned differential grid (lib/harness/differential.mli):
   every case on the sim backend, the loopback TCP backend, and the TCP
   backend under frame chaos — the three results must be identical after
   masking wire statistics, and the chaos run's monitor must be clean.
   Exit 0 when every case agrees, 1 on any mismatch, 2 on bad args. *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("net_check: " ^ msg);
      exit 2)
    fmt

let () =
  let verbose = ref false in
  let rec parse = function
    | [] -> ()
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | flag :: _ ->
        die "unknown argument %S (usage: net_check.exe [--verbose])" flag
  in
  parse (List.tl (Array.to_list Sys.argv));
  let log = if !verbose then fun s -> Printf.printf "%s\n%!" s else ignore in
  let report = Differential.execute ~log () in
  Format.printf "%a@." Differential.pp report;
  exit (if Differential.passed report then 0 else 1)
