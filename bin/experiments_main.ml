(* Regenerates every experiment report of EXPERIMENTS.md.
   Usage: experiments.exe [--domains N] [e1 ... e17]
   No experiment id runs everything. Independent scenario batches run on
   N worker domains (also settable via MAAA_DOMAINS; default
   Domain.recommended_domain_count). The report text is byte-identical
   for every N — see DESIGN.md §7 "Parallel harness & determinism". *)

let usage () =
  prerr_endline "usage: experiments.exe [--domains N] [e1 ... e17]";
  exit 2

let () =
  let default_domains =
    match Sys.getenv_opt "MAAA_DOMAINS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> n
        | _ ->
            prerr_endline "experiments: MAAA_DOMAINS must be a positive integer";
            exit 2)
    | None -> Domain.recommended_domain_count ()
  in
  let rec parse domains ids = function
    | [] -> (domains, List.rev ids)
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> parse n ids rest
        | _ ->
            prerr_endline "experiments: --domains expects a positive integer";
            usage ())
    | [ "--domains" ] -> usage ()
    | a :: rest -> parse domains (a :: ids) rest
  in
  let domains, ids = parse default_domains [] (List.tl (Array.to_list Sys.argv)) in
  Experiments.set_domains domains;
  let ok =
    match ids with
    | [] -> Experiments.run_all ()
    | ids ->
        List.for_all
          (fun id ->
            match Experiments.find_opt (String.lowercase_ascii id) with
            | Some run -> run ()
            | None ->
                prerr_endline
                  ("unknown experiment '" ^ id ^ "'; known: e1 .. e17");
                false)
          ids
  in
  exit (if ok then 0 else 1)
