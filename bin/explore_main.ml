(* Bounded model-checking driver over lib/explore.
   Usage: explore.exe [--mode naive|pruned] [--mutant M] [--adversary SPEC]
                      [--n N] [--d D] [--ts N] [--ta N] [--eps E] [--delta N]
                      [--depth K] [--max-events N] [--max-execs N] [--max-cx N]
                      [--protocol maaa|ew] [--out FILE]
          explore.exe --replay FILE
          explore.exe --check
   Enumerates delivery interleavings (and, with --adversary, crash points /
   equivocation splits) of a small configuration, grades every execution
   with the online invariant monitor, shrinks violations to minimal
   (plan, schedule) repros and quarantines them to --out in the soak-style
   TSV format. --replay re-runs a quarantine file's shrunk repros and
   verifies each still violates. --check runs the pinned CI gates: the
   honest n=3 D=1 space explores exhaustively clean, both protocol mutants
   are rediscovered with replay-verified shrunk repros, and DPOR pruning
   plus state dedup beat naive enumeration by the pinned factor.
   Exit codes: 0 clean, 1 violations found / gate failed / replay failed,
   2 argument errors (one line on stderr). *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("explore: " ^ msg);
      exit 2)
    fmt

let pos_int ~flag v =
  match int_of_string_opt v with
  | Some n when n >= 1 -> n
  | Some n -> die "%s must be >= 1 (got %d)" flag n
  | None -> die "%s expects a positive integer (got %S)" flag v

let nonneg_int ~flag v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> n
  | Some n -> die "%s must be >= 0 (got %d)" flag n
  | None -> die "%s expects a non-negative integer (got %S)" flag v

(* Evenly spread 1-D inputs work for any (n, d): party i gets
   (i/(n-1)) * e_1 — distinct, spread 1, hull = [0,1] on the first axis. *)
let default_inputs ~n ~d =
  List.init n (fun i ->
      Vec.of_array
        (Array.init d (fun j ->
             if j = 0 && n > 1 then float_of_int i /. float_of_int (n - 1)
             else 0.)))

let summarize label (r : Explore.report) =
  Printf.printf
    "%s: %d executions, %d choice points, %d truncated, %d dedup cuts, %d \
     distinct states, exhausted=%b, %d counterexample(s)\n"
    label r.Explore.executions r.Explore.choice_points r.Explore.truncated
    r.Explore.dedup_cuts r.Explore.distinct_states r.Explore.exhausted
    (List.length r.Explore.counterexamples);
  List.iteri
    (fun i cx ->
      Printf.printf "  cx %d: {%s} plan=%s schedule=[%s] tries=%d minimal=%b\n"
        (i + 1)
        (String.concat ", " cx.Explore.cx_invariants)
        (match cx.Explore.cx_shrunk_plan with
        | [] -> "-"
        | p -> Fault_plan.to_repr p)
        (String.concat "; " (List.map string_of_int cx.Explore.cx_shrunk_schedule))
        cx.Explore.cx_tries cx.Explore.cx_minimal)
    r.Explore.counterexamples

(* -- the pinned CI gates -- *)

let check_config ?mutant ~mode () =
  let cfg = Config.make_exn ~n:3 ~ts:0 ~ta:0 ~d:1 ~eps:0.25 ~delta:2 in
  Explore.default_config ~mode ?mutant ~max_schedule_depth:4
    ~max_executions:20_000 ~cfg
    ~inputs:(default_inputs ~n:3 ~d:1)
    ()

let run_check () =
  let failures = ref [] in
  let gate name ok detail =
    Printf.printf "%-44s %s%s\n" name
      (if ok then "ok" else "FAIL")
      (if detail = "" then "" else " (" ^ detail ^ ")");
    if not ok then failures := name :: !failures
  in
  (* Gate 1: the honest space is exhaustively clean. *)
  let honest = Explore.explore (check_config ~mode:Explore.Pruned ()) in
  gate "honest n=3 D=1 exhaustive" honest.Explore.exhausted
    (Printf.sprintf "%d executions" honest.Explore.executions);
  gate "honest n=3 D=1 clean"
    (honest.Explore.counterexamples = [])
    (Printf.sprintf "%d counterexamples"
       (List.length honest.Explore.counterexamples));
  gate "honest n=3 D=1 no truncation"
    (honest.Explore.truncated = 0)
    (Printf.sprintf "%d truncated" honest.Explore.truncated);
  (* Gate 2: both protocol mutants are rediscovered, with shrunk repros
     that replay. *)
  List.iter
    (fun (mutant, expect_inv) ->
      let name = Explore.mutant_repr (Some mutant) in
      let config = check_config ~mutant ~mode:Explore.Pruned () in
      let r = Explore.explore config in
      let flagged =
        List.exists
          (fun cx -> List.mem expect_inv cx.Explore.cx_invariants)
          r.Explore.counterexamples
      in
      gate
        (Printf.sprintf "mutant %s flagged (%s)" name expect_inv)
        flagged
        (Printf.sprintf "%d counterexamples"
           (List.length r.Explore.counterexamples));
      let replays =
        r.Explore.counterexamples <> []
        && List.for_all
             (fun cx ->
               let got =
                 Explore.replay config ~plan:cx.Explore.cx_shrunk_plan
                   ~schedule:cx.Explore.cx_shrunk_schedule
               in
               List.for_all
                 (fun inv -> List.mem inv got)
                 cx.Explore.cx_invariants)
             r.Explore.counterexamples
      in
      gate (Printf.sprintf "mutant %s shrunk repros replay" name) replays "")
    [
      (Party.Non_contracting_update, "validity");
      (Party.Premature_output, "agreement");
    ]
  ;
  (* Gate 3: pruning pays. Same honest space, naive enumeration vs DPOR +
     state dedup, pinned reduction factor. *)
  let naive = Explore.explore (check_config ~mode:Explore.Naive ()) in
  let factor =
    if honest.Explore.executions = 0 then 0.
    else
      float_of_int naive.Explore.executions
      /. float_of_int honest.Explore.executions
  in
  gate "naive exploration exhaustive" naive.Explore.exhausted
    (Printf.sprintf "%d executions" naive.Explore.executions);
  gate "pruned >= 5x fewer executions than naive" (factor >= 5.)
    (Printf.sprintf "%d naive / %d pruned = %.1fx" naive.Explore.executions
       honest.Explore.executions factor);
  (* Gate 4: the dedup table stays small on the pinned config — the
     canonical-state fingerprint is doing its compression job. *)
  gate "pruned distinct states under ceiling"
    (honest.Explore.distinct_states <= 20_000)
    (Printf.sprintf "%d states" honest.Explore.distinct_states);
  match !failures with
  | [] ->
      print_endline "explore-check: all gates passed";
      0
  | fs ->
      Printf.printf "explore-check: %d gate(s) failed\n" (List.length fs);
      1

let () =
  let mode = ref Explore.Pruned in
  let mutant = ref None in
  let adversary = ref Explore.Honest in
  let n = ref 3 in
  let d = ref 1 in
  let ts = ref 0 in
  let ta = ref 0 in
  let eps = ref 0.25 in
  let delta = ref 2 in
  let depth = ref 4 in
  let max_events = ref 50_000 in
  let max_execs = ref 20_000 in
  let max_cx = ref 3 in
  let protocol = ref `Maaa in
  let out = ref None in
  let replay_file = ref None in
  let check = ref false in
  let rec parse = function
    | [] -> ()
    | "--check" :: rest ->
        check := true;
        parse rest
    | "--replay" :: v :: rest ->
        replay_file := Some v;
        parse rest
    | "--mode" :: v :: rest -> (
        match Explore.mode_of_repr v with
        | Ok m ->
            mode := m;
            parse rest
        | Error msg -> die "--mode: %s" msg)
    | "--mutant" :: v :: rest -> (
        match Explore.mutant_of_repr v with
        | Ok m ->
            mutant := m;
            parse rest
        | Error msg -> die "--mutant: %s" msg)
    | "--adversary" :: v :: rest -> (
        match Explore.adversary_of_repr v with
        | Ok a ->
            adversary := a;
            parse rest
        | Error msg -> die "--adversary: %s" msg)
    | "--n" :: v :: rest ->
        n := pos_int ~flag:"--n" v;
        parse rest
    | "--d" :: v :: rest ->
        d := pos_int ~flag:"--d" v;
        parse rest
    | "--ts" :: v :: rest ->
        ts := nonneg_int ~flag:"--ts" v;
        parse rest
    | "--ta" :: v :: rest ->
        ta := nonneg_int ~flag:"--ta" v;
        parse rest
    | "--eps" :: v :: rest -> (
        match float_of_string_opt v with
        | Some e when e > 0. ->
            eps := e;
            parse rest
        | _ -> die "--eps expects a positive float (got %S)" v)
    | "--delta" :: v :: rest ->
        delta := pos_int ~flag:"--delta" v;
        parse rest
    | "--depth" :: v :: rest ->
        depth := nonneg_int ~flag:"--depth" v;
        parse rest
    | "--max-events" :: v :: rest ->
        max_events := pos_int ~flag:"--max-events" v;
        parse rest
    | "--max-execs" :: v :: rest ->
        max_execs := pos_int ~flag:"--max-execs" v;
        parse rest
    | "--max-cx" :: v :: rest ->
        max_cx := pos_int ~flag:"--max-cx" v;
        parse rest
    | "--protocol" :: v :: rest -> (
        match v with
        | "maaa" ->
            protocol := `Maaa;
            parse rest
        | "ew" ->
            protocol := `Ew;
            parse rest
        | _ -> die "--protocol expects maaa or ew (got %S)" v)
    | "--out" :: v :: rest ->
        out := Some v;
        parse rest
    | [ ("--replay" | "--mode" | "--mutant" | "--adversary" | "--n" | "--d"
        | "--ts" | "--ta" | "--eps" | "--delta" | "--depth" | "--max-events"
        | "--max-execs" | "--max-cx" | "--protocol" | "--out") as flag ] ->
        die "%s expects a value" flag
    | flag :: _ -> die "unknown argument %S" flag
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !check then exit (run_check ());
  match !replay_file with
  | Some path -> (
      match Explore.replay_quarantine ~path with
      | Error msg -> die "--replay %s: %s" path msg
      | Ok { Explore.rp_total; rp_reproduced; rp_failures } ->
          Printf.printf "replayed %d/%d shrunk counterexample(s)\n"
            rp_reproduced rp_total;
          List.iter print_endline rp_failures;
          exit (if rp_reproduced = rp_total then 0 else 1))
  | None ->
      let cfg =
        match
          Config.make ~n:!n ~ts:!ts ~ta:!ta ~d:!d ~eps:!eps ~delta:!delta
        with
        | Ok cfg -> cfg
        | Error e -> die "infeasible configuration: %s" e
      in
      let config =
        try
          Explore.default_config ~mode:!mode ~adversary:!adversary
            ?mutant:!mutant ~protocol:!protocol ~max_events:!max_events
            ~max_executions:!max_execs ~max_schedule_depth:!depth
            ~max_counterexamples:!max_cx ~cfg
            ~inputs:(default_inputs ~n:!n ~d:!d)
            ()
        with Invalid_argument msg -> die "%s" msg
      in
      let report = Explore.explore config in
      summarize (Explore.mode_repr !mode) report;
      (match !out with
      | None -> ()
      | Some path -> Explore.write_quarantine ~path config report);
      exit (if report.Explore.counterexamples = [] then 0 else 1)
