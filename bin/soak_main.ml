(* Randomized chaos soak driver.
   Usage: soak.exe [--cases N] [--seed S] [--domains N] [--mutant M]
                   [--message-layer interned|reference|batched]
                   [--update-kernel safe-area|centroid]
                   [--protocol maaa|ew] [--transport sim|net]
                   [--out FILE] [--journal FILE] [--resume]
                   [--case-events N] [--wall SECONDS|none] [--retries N]
                   [--inject-stuck I] [--smoke]
   Runs N seeded (scenario × fault-plan) cases under the online invariant
   monitor with a per-case watchdog, shrinks any abnormal case to a minimal
   reproducing plan, quarantines cases the watchdog stopped, and writes a
   SOAK.json report (schema maaa-soak/2; see `make help-soak`). With
   --journal the sweep checkpoints every finished case; --resume replays
   the journal and finishes the remainder, producing a byte-identical
   report. Exit code 1 when any invariant was violated — which is the
   EXPECTED outcome with --mutant, where a deliberately broken protocol
   variant must be caught. The report is byte-identical for any --domains.
   All argument errors are one line on stderr and exit code 2. *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("soak: " ^ msg);
      exit 2)
    fmt

(* Every malformed value gets its own one-line diagnostic (not just the
   usage block): these are the errors scripts hit, and "which flag, which
   value, what was expected" is what makes them greppable in CI logs. *)
let pos_int ~flag v =
  match int_of_string_opt v with
  | Some n when n >= 1 -> n
  | Some n -> die "%s must be >= 1 (got %d)" flag n
  | None -> die "%s expects a positive integer (got %S)" flag v

let nonneg_int ~flag v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> n
  | Some n -> die "%s must be >= 0 (got %d)" flag n
  | None -> die "%s expects a non-negative integer (got %S)" flag v

let () =
  let cases = ref Soak.default.Soak.cases in
  let seed = ref Soak.default.Soak.seed in
  let domains =
    ref
      (match Sys.getenv_opt "MAAA_DOMAINS" with
      | Some s -> (
          match int_of_string_opt s with
          | Some n when n >= 1 -> n
          | _ -> die "MAAA_DOMAINS must be a positive integer (got %S)" s)
      | None -> Domain.recommended_domain_count ())
  in
  let mutant = ref None in
  let out_file = ref (Some "SOAK.json") in
  let journal = ref None in
  let resume = ref false in
  let case_events = ref Soak.default.Soak.case_events in
  let case_wall = ref Soak.default.Soak.case_wall in
  let retries = ref Soak.default.Soak.retries in
  let stuck = ref None in
  let layer = ref Soak.default.Soak.message_layer in
  let kernel = ref Soak.default.Soak.update_kernel in
  let protocol = ref Soak.default.Soak.protocol in
  let transport = ref Soak.default.Soak.transport in
  let rec parse = function
    | [] -> ()
    | "--cases" :: v :: rest ->
        cases := pos_int ~flag:"--cases" v;
        parse rest
    | "--seed" :: v :: rest -> (
        match Int64.of_string_opt v with
        | Some s ->
            seed := s;
            parse rest
        | None -> die "--seed expects a 64-bit integer (got %S)" v)
    | "--domains" :: v :: rest ->
        domains := pos_int ~flag:"--domains" v;
        parse rest
    | "--mutant" :: v :: rest -> (
        match Soak.mutant_of_string v with
        | Ok m ->
            mutant := m;
            parse rest
        | Error msg -> die "%s" msg)
    | "--out" :: v :: rest ->
        out_file := (if v = "-" then None else Some v);
        parse rest
    | "--journal" :: v :: rest ->
        journal := Some v;
        parse rest
    | "--resume" :: rest ->
        resume := true;
        parse rest
    | "--case-events" :: v :: rest ->
        case_events := pos_int ~flag:"--case-events" v;
        parse rest
    | "--wall" :: "none" :: rest ->
        case_wall := None;
        parse rest
    | "--wall" :: v :: rest -> (
        match float_of_string_opt v with
        | Some w when w > 0. ->
            case_wall := Some w;
            parse rest
        | _ -> die "--wall expects a positive number of seconds or 'none' (got %S)" v)
    | "--retries" :: v :: rest ->
        retries := nonneg_int ~flag:"--retries" v;
        parse rest
    | "--inject-stuck" :: v :: rest ->
        stuck := Some (nonneg_int ~flag:"--inject-stuck" v);
        parse rest
    | "--message-layer" :: v :: rest -> (
        match Soak.layer_of_string v with
        | Ok l ->
            layer := l;
            parse rest
        | Error msg -> die "%s" msg)
    | "--update-kernel" :: v :: rest -> (
        match Soak.kernel_of_string v with
        | Ok k ->
            kernel := k;
            parse rest
        | Error msg -> die "%s" msg)
    | "--protocol" :: v :: rest -> (
        match Soak.protocol_of_string v with
        | Ok p ->
            protocol := p;
            parse rest
        | Error msg -> die "%s" msg)
    | "--transport" :: v :: rest -> (
        match Soak.transport_of_string v with
        | Ok t ->
            transport := t;
            parse rest
        | Error msg -> die "%s" msg)
    | "--smoke" :: rest ->
        cases := 60;
        parse rest
    | [ flag ]
      when List.mem flag
             [ "--cases"; "--seed"; "--domains"; "--mutant"; "--out";
               "--journal"; "--case-events"; "--wall"; "--retries";
               "--inject-stuck"; "--message-layer"; "--update-kernel";
               "--protocol"; "--transport" ] ->
        die "%s expects a value" flag
    | flag :: _ ->
        die
          "unknown argument %S (usage: soak.exe [--cases N] [--seed S] \
           [--domains N] [--mutant M] [--message-layer \
           interned|reference|batched] [--update-kernel safe-area|centroid] \
           [--protocol maaa|ew] [--transport sim|net] [--out FILE] \
           [--journal FILE] [--resume] \
           [--case-events N] [--wall SECONDS|none] [--retries N] \
           [--inject-stuck I] [--smoke])"
          flag
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !resume && !journal = None then die "--resume requires --journal FILE";
  (match (!resume, !journal) with
  | true, Some path when not (Sys.file_exists path) ->
      die "--resume: journal %s does not exist" path
  | _ -> ());
  (match !stuck with
  | Some i when i >= !cases ->
      die "--inject-stuck %d is out of range (only %d cases)" i !cases
  | _ -> ());
  let config =
    {
      Soak.cases = !cases;
      seed = !seed;
      domains = !domains;
      mutant = !mutant;
      max_shrink = Soak.default.Soak.max_shrink;
      case_events = !case_events;
      case_wall = !case_wall;
      retries = !retries;
      stuck = !stuck;
      message_layer = !layer;
      update_kernel = !kernel;
      protocol = !protocol;
      transport = !transport;
    }
  in
  let outcome =
    try Soak.execute ?journal:!journal ~resume:!resume config
    with Invalid_argument msg -> die "%s" msg
  in
  Soak.pp Format.std_formatter outcome;
  Format.pp_print_flush Format.std_formatter ();
  let json = Soak.to_json config outcome in
  (match !out_file with
  | None -> print_string json
  | Some f ->
      let oc = open_out f in
      output_string oc json;
      close_out oc;
      Printf.printf "report: %s\n" f);
  exit (if outcome.Soak.violations_total > 0 then 1 else 0)
