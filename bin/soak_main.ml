(* Randomized chaos soak driver.
   Usage: soak.exe [--cases N] [--seed S] [--domains N] [--mutant M]
                   [--out FILE] [--smoke]
   Runs N seeded (scenario × fault-plan) cases under the online invariant
   monitor, shrinks any violating case to a minimal reproducing plan and
   writes a SOAK.json report (schema maaa-soak/1; see `make help-soak`).
   Exit code 1 when any invariant was violated — which is the EXPECTED
   outcome with --mutant, where a deliberately broken protocol variant
   must be caught. The report is byte-identical for any --domains. *)

let usage () =
  prerr_endline
    "usage: soak.exe [--cases N] [--seed S] [--domains N]\n\
    \                [--mutant none|non-contracting|premature-output]\n\
    \                [--out FILE] [--smoke]";
  exit 2

let () =
  let cases = ref Soak.default.Soak.cases in
  let seed = ref Soak.default.Soak.seed in
  let domains =
    ref
      (match Sys.getenv_opt "MAAA_DOMAINS" with
      | Some s -> (
          match int_of_string_opt s with
          | Some n when n >= 1 -> n
          | _ ->
              prerr_endline "soak: MAAA_DOMAINS must be a positive integer";
              exit 2)
      | None -> Domain.recommended_domain_count ())
  in
  let mutant = ref None in
  let out_file = ref (Some "SOAK.json") in
  let rec parse = function
    | [] -> ()
    | "--cases" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            cases := n;
            parse rest
        | _ -> usage ())
    | "--seed" :: v :: rest -> (
        match Int64.of_string_opt v with
        | Some s ->
            seed := s;
            parse rest
        | None -> usage ())
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            domains := n;
            parse rest
        | _ -> usage ())
    | "--mutant" :: v :: rest -> (
        match Soak.mutant_of_string v with
        | Ok m ->
            mutant := m;
            parse rest
        | Error msg ->
            prerr_endline ("soak: " ^ msg);
            usage ())
    | "--out" :: v :: rest ->
        out_file := (if v = "-" then None else Some v);
        parse rest
    | "--smoke" :: rest ->
        cases := 60;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let config =
    {
      Soak.default with
      Soak.cases = !cases;
      seed = !seed;
      domains = !domains;
      mutant = !mutant;
    }
  in
  let outcome = Soak.execute config in
  Soak.pp Format.std_formatter outcome;
  Format.pp_print_flush Format.std_formatter ();
  let json = Soak.to_json config outcome in
  (match !out_file with
  | None -> print_string json
  | Some f ->
      let oc = open_out f in
      output_string oc json;
      close_out oc;
      Printf.printf "report: %s\n" f);
  exit (if outcome.Soak.violations_total > 0 then 1 else 0)
