(* Agreement front-door daemon.
   Usage: serve.exe [--port N] [--host ADDR] [--domains N] [--max-conns N]
   Listens for line-oriented agreement requests (protocol in
   lib/harness/serve.mli) and multiplexes each connection's batch over
   the worker-domain pool. --port 0 binds an ephemeral port; the bound
   port is printed as "listening <port>" so scripts can handshake.
   All argument errors are one line on stderr and exit code 2. *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("serve: " ^ msg);
      exit 2)
    fmt

let pos_int ~flag v =
  match int_of_string_opt v with
  | Some n when n >= 1 -> n
  | Some n -> die "%s must be >= 1 (got %d)" flag n
  | None -> die "%s expects a positive integer (got %S)" flag v

let () =
  let port = ref 0 in
  let host = ref "127.0.0.1" in
  let domains = ref 1 in
  let max_conns = ref None in
  let smoke = ref None in
  let rec parse = function
    | [] -> ()
    | "--throughput-smoke" :: v :: rest ->
        smoke := Some (pos_int ~flag:"--throughput-smoke" v);
        parse rest
    | "--port" :: v :: rest -> (
        match int_of_string_opt v with
        | Some p when p >= 0 && p <= 65535 ->
            port := p;
            parse rest
        | Some p -> die "--port must be in 0..65535 (got %d)" p
        | None -> die "--port expects an integer (got %S)" v)
    | "--host" :: v :: rest -> (
        match Unix.inet_addr_of_string v with
        | _ ->
            host := v;
            parse rest
        | exception Failure _ -> die "--host expects an IP address (got %S)" v)
    | "--domains" :: v :: rest ->
        domains := pos_int ~flag:"--domains" v;
        parse rest
    | "--max-conns" :: v :: rest ->
        max_conns := Some (pos_int ~flag:"--max-conns" v);
        parse rest
    | [ flag ]
      when List.mem flag
             [
               "--port"; "--host"; "--domains"; "--max-conns";
               "--throughput-smoke";
             ] ->
        die "%s expects a value" flag
    | flag :: _ ->
        die
          "unknown argument %S (usage: serve.exe [--port N] [--host ADDR] \
           [--domains N] [--max-conns N] [--throughput-smoke N])"
          flag
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !smoke with
  | Some n ->
      (* measured, printed, not gated: serve-throughput visibility *)
      let rps = Serve.throughput_smoke ~domains:!domains n in
      Printf.printf "throughput-smoke: %d requests, %.0f requests/sec\n%!" n rps
  | None -> (
      try
        Serve.serve ~host:!host ~domains:!domains ?max_conns:!max_conns
          ~port:!port ()
      with Unix.Unix_error (e, fn, _) ->
        die "%s failed: %s" fn (Unix.error_message e))
