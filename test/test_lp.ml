(* Tests for the dense two-phase simplex solver. *)

let check_optimal name expected = function
  | Lp.Optimal (z, _) -> Alcotest.(check (float 1e-7)) name expected z
  | Lp.Infeasible -> Alcotest.fail (name ^ ": unexpectedly infeasible")
  | Lp.Unbounded -> Alcotest.fail (name ^ ": unexpectedly unbounded")

(* max x + y s.t. x + 2y <= 4, 3x + y <= 6  ->  optimum 2.8 at (1.6, 1.2) *)
let test_small_max () =
  let r =
    Lp.solve ~nvars:2 ~minimize:false
      ~objective:[ (0, 1.); (1, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 2.) ]; cmp = Lp.Le; rhs = 4. };
        { Lp.coeffs = [ (0, 3.); (1, 1.) ]; cmp = Lp.Le; rhs = 6. };
      ]
  in
  check_optimal "objective" 2.8 r;
  match r with
  | Lp.Optimal (_, x) ->
      Alcotest.(check (float 1e-7)) "x" 1.6 x.(0);
      Alcotest.(check (float 1e-7)) "y" 1.2 x.(1)
  | _ -> assert false

(* min x + y s.t. x + y >= 3, x <= 2, y <= 2 -> optimum 3 *)
let test_small_min () =
  let r =
    Lp.solve ~nvars:2 ~minimize:true
      ~objective:[ (0, 1.); (1, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Ge; rhs = 3. };
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Le; rhs = 2. };
        { Lp.coeffs = [ (1, 1.) ]; cmp = Lp.Le; rhs = 2. };
      ]
  in
  check_optimal "objective" 3. r

let test_equality () =
  (* max 2x + 3y s.t. x + y = 4, x - y <= 2 -> x = 3, y = 1? no:
     maximizing 3y pushes y up: y = 4, x = 0, obj = 12. x - y = -4 <= 2 ok. *)
  let r =
    Lp.solve ~nvars:2 ~minimize:false
      ~objective:[ (0, 2.); (1, 3.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Eq; rhs = 4. };
        { Lp.coeffs = [ (0, 1.); (1, -1.) ]; cmp = Lp.Le; rhs = 2. };
      ]
  in
  check_optimal "objective" 12. r

let test_infeasible () =
  let r =
    Lp.solve ~nvars:1 ~minimize:true ~objective:[ (0, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Ge; rhs = 5. };
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Le; rhs = 1. };
      ]
  in
  Alcotest.(check bool) "infeasible" true (r = Lp.Infeasible)

let test_unbounded () =
  let r =
    Lp.solve ~nvars:1 ~minimize:false ~objective:[ (0, 1.) ]
      [ { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Ge; rhs = 0. } ]
  in
  Alcotest.(check bool) "unbounded" true (r = Lp.Unbounded)

let test_negative_rhs () =
  (* -x <= -2  (i.e. x >= 2), min x -> 2 *)
  let r =
    Lp.solve ~nvars:1 ~minimize:true ~objective:[ (0, 1.) ]
      [ { Lp.coeffs = [ (0, -1.) ]; cmp = Lp.Le; rhs = -2. } ]
  in
  check_optimal "objective" 2. r

let test_degenerate () =
  (* Redundant constraints sharing a vertex: classic degeneracy. *)
  let r =
    Lp.solve ~nvars:2 ~minimize:false
      ~objective:[ (0, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Le; rhs = 1. };
        { Lp.coeffs = [ (0, 1.); (1, 2.) ]; cmp = Lp.Le; rhs = 1. };
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Le; rhs = 1. };
      ]
  in
  check_optimal "objective" 1. r

let test_redundant_equalities () =
  (* x + y = 1 stated twice: phase 1 leaves a redundant artificial row. *)
  let r =
    Lp.solve ~nvars:2 ~minimize:false ~objective:[ (0, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Eq; rhs = 1. };
        { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Eq; rhs = 1. };
      ]
  in
  check_optimal "objective" 1. r

(* Beale's classic cycling example: Dantzig's rule with naive tie-breaking
   cycles forever on it; the Bland fallback must terminate at z* = -1/20. *)
let test_beale_cycling () =
  let r =
    Lp.solve ~nvars:4 ~minimize:true
      ~objective:[ (0, -0.75); (1, 150.); (2, -0.02); (3, 6.) ]
      [
        { Lp.coeffs = [ (0, 0.25); (1, -60.); (2, -0.04); (3, 9.) ]; cmp = Lp.Le; rhs = 0. };
        { Lp.coeffs = [ (0, 0.5); (1, -90.); (2, -0.02); (3, 3.) ]; cmp = Lp.Le; rhs = 0. };
        { Lp.coeffs = [ (2, 1.) ]; cmp = Lp.Le; rhs = 1. };
      ]
  in
  check_optimal "beale optimum" (-0.05) r

(* Klee-Minty-style: many iterations but must terminate and be exact. *)
let test_klee_minty_3 () =
  let r =
    Lp.solve ~nvars:3 ~minimize:false
      ~objective:[ (0, 4.); (1, 2.); (2, 1.) ]
      [
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Le; rhs = 5. };
        { Lp.coeffs = [ (0, 4.); (1, 1.) ]; cmp = Lp.Le; rhs = 25. };
        { Lp.coeffs = [ (0, 8.); (1, 4.); (2, 1.) ]; cmp = Lp.Le; rhs = 125. };
      ]
  in
  check_optimal "klee-minty optimum" 125. r

let test_feasible_point () =
  let cs =
    [
      { Lp.coeffs = [ (0, 1.); (1, 1.) ]; cmp = Lp.Eq; rhs = 1. };
      { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Ge; rhs = 0.25 };
    ]
  in
  (match Lp.feasible_point ~nvars:2 cs with
  | Some x ->
      Alcotest.(check (float 1e-7)) "sums to one" 1. (x.(0) +. x.(1));
      Alcotest.(check bool) "x0 large enough" true (x.(0) >= 0.25 -. 1e-7)
  | None -> Alcotest.fail "should be feasible");
  let bad = { Lp.coeffs = [ (1, 1.) ]; cmp = Lp.Ge; rhs = 2. } :: cs in
  Alcotest.(check bool) "infeasible point" true
    (Lp.feasible_point ~nvars:2 bad = None)

let test_var_out_of_range () =
  Alcotest.check_raises "range check"
    (Invalid_argument "Lp: variable out of range") (fun () ->
      ignore
        (Lp.solve ~nvars:1 ~minimize:true ~objective:[]
           [ { Lp.coeffs = [ (3, 1.) ]; cmp = Lp.Le; rhs = 0. } ]))

(* Property: for random bounded LPs  max c.x  s.t. x <= u (box), the optimum
   is the obvious corner. *)
let prop_box =
  QCheck.Test.make ~name:"box LP optimum at corner" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 6) (float_range 0.1 10.))
        (list_of_size (Gen.int_range 1 6) (float_range (-5.) 5.)))
    (fun (ub, c) ->
      let n = min (List.length ub) (List.length c) in
      QCheck.assume (n >= 1);
      let ub = Array.of_list ub and c = Array.of_list c in
      let cs =
        List.init n (fun i ->
            { Lp.coeffs = [ (i, 1.) ]; cmp = Lp.Le; rhs = ub.(i) })
      in
      let obj = List.init n (fun i -> (i, c.(i))) in
      match Lp.solve ~nvars:n ~minimize:false ~objective:obj cs with
      | Lp.Optimal (z, _) ->
          let expected = ref 0. in
          for i = 0 to n - 1 do
            if c.(i) > 0. then expected := !expected +. (c.(i) *. ub.(i))
          done;
          Float.abs (z -. !expected) <= 1e-6
      | _ -> false)

(* Property: a random convex combination of points is inside their hull, as
   certified by a feasibility LP. *)
let prop_combination_feasible =
  QCheck.Test.make ~name:"convex combinations are LP-feasible" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 2 7)
        (list_of_size (Gen.return 3) (float_range (-10.) 10.)))
    (fun pts_l ->
      let pts = List.map Vec.of_list pts_l in
      let k = List.length pts in
      let w = List.init k (fun i -> 1. +. float_of_int (i mod 3)) in
      let total = List.fold_left ( +. ) 0. w in
      let p =
        Vec.lincomb (List.map2 (fun wi v -> (wi /. total, v)) w pts)
      in
      Membership.in_hull pts p)

(* --- Lp.Problem: the reusable workspace --- *)

let bits_eq a b = Int64.bits_of_float a = Int64.bits_of_float b

(* Bit-level equality, the contract of [solve_objective ~warm:false]. *)
let result_bits_eq r1 r2 =
  match (r1, r2) with
  | Lp.Optimal (z1, x1), Lp.Optimal (z2, x2) ->
      bits_eq z1 z2
      && Array.length x1 = Array.length x2
      && Array.for_all2 bits_eq x1 x2
  | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> true
  | _ -> false

let test_problem_reuse () =
  let cs =
    [
      { Lp.coeffs = [ (0, 1.); (1, 2.) ]; cmp = Lp.Le; rhs = 4. };
      { Lp.coeffs = [ (0, 3.); (1, 1.) ]; cmp = Lp.Le; rhs = 6. };
    ]
  in
  let p = Lp.Problem.make ~nvars:2 cs in
  Alcotest.(check bool) "feasible" true (Lp.Problem.is_feasible p);
  Alcotest.(check int) "nvars" 2 (Lp.Problem.nvars p);
  (* A sequence of warm solves over the same workspace. *)
  check_optimal "max x+y" 2.8
    (Lp.Problem.solve_objective p ~minimize:false
       ~objective:[ (0, 1.); (1, 1.) ]);
  check_optimal "max x" 2.
    (Lp.Problem.solve_objective p ~minimize:false ~objective:[ (0, 1.) ]);
  check_optimal "min x" 0.
    (Lp.Problem.solve_objective p ~minimize:true ~objective:[ (0, 1.) ]);
  check_optimal "max x+y again" 2.8
    (Lp.Problem.solve_objective p ~minimize:false
       ~objective:[ (0, 1.); (1, 1.) ])

let test_problem_infeasible () =
  let p =
    Lp.Problem.make ~nvars:1
      [
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Ge; rhs = 5. };
        { Lp.coeffs = [ (0, 1.) ]; cmp = Lp.Le; rhs = 1. };
      ]
  in
  Alcotest.(check bool) "infeasible" false (Lp.Problem.is_feasible p);
  Alcotest.(check bool) "no point" true (Lp.Problem.feasible_point p = None);
  Alcotest.(check bool) "solve reports infeasible" true
    (Lp.Problem.solve_objective p ~minimize:true ~objective:[ (0, 1.) ]
    = Lp.Infeasible)

let test_problem_unbounded () =
  let p =
    Lp.Problem.make ~nvars:2
      [ { Lp.coeffs = [ (0, 1.); (1, -1.) ]; cmp = Lp.Le; rhs = 1. } ]
  in
  Alcotest.(check bool) "unbounded" true
    (Lp.Problem.solve_objective p ~minimize:false ~objective:[ (1, 1.) ]
    = Lp.Unbounded);
  (* The workspace survives an unbounded query: bounded objectives still
     answer, in either mode. *)
  check_optimal "still answers warm" 0.
    (Lp.Problem.solve_objective p ~minimize:true ~objective:[ (0, 1.) ]);
  check_optimal "still answers cold" 0.
    (Lp.Problem.solve_objective ~warm:false p ~minimize:true
       ~objective:[ (0, 1.) ])

(* Random instances: small dense systems over quarter-integer data, which
   keeps reduced costs away from the eps window without avoiding
   degeneracy. *)
let gen_instance =
  QCheck.Gen.(
    int_range 1 4 >>= fun nvars ->
    int_range 1 6 >>= fun nrows ->
    let coeff = int_range (-8) 8 >|= fun k -> float_of_int k /. 2. in
    let row =
      list_repeat nvars coeff >>= fun coeffs ->
      int_range 0 2 >|= fun c ->
      let cmp = match c with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq in
      (coeffs, cmp)
    in
    list_repeat nrows (pair row (int_range (-12) 12)) >>= fun rows ->
    list_repeat 3 (list_repeat nvars coeff) >|= fun objectives ->
    let cs =
      List.map
        (fun ((coeffs, cmp), rhs) ->
          {
            Lp.coeffs = List.mapi (fun j v -> (j, v)) coeffs;
            cmp;
            rhs = float_of_int rhs /. 2.;
          })
        rows
    in
    let objectives =
      List.map (List.mapi (fun j v -> (j, v))) objectives
    in
    (nvars, cs, objectives))

let print_instance (nvars, cs, _) =
  Printf.sprintf "nvars=%d rows=%d" nvars (List.length cs)

(* The workspace in replay mode is bit-identical to the one-shot solver,
   across a whole sequence of interleaved objectives; warm mode agrees on
   status and optimal value. *)
let prop_problem_matches_solve =
  QCheck.Test.make ~name:"Problem.solve_objective ≡ Lp.solve" ~count:300
    (QCheck.make ~print:print_instance gen_instance)
    (fun (nvars, cs, objectives) ->
      let p = Lp.Problem.make ~nvars cs in
      Lp.Problem.feasible_point p = Lp.feasible_point ~nvars cs
      && List.for_all
           (fun objective ->
             List.for_all
               (fun minimize ->
                 let reference = Lp.solve ~nvars ~minimize ~objective cs in
                 let cold =
                   Lp.Problem.solve_objective ~warm:false p ~minimize
                     ~objective
                 in
                 let warm =
                   Lp.Problem.solve_objective p ~minimize ~objective
                 in
                 result_bits_eq reference cold
                 &&
                 match (reference, warm) with
                 | Lp.Optimal (z1, _), Lp.Optimal (z2, _) ->
                     Float.abs (z1 -. z2) <= 1e-6 *. (1. +. Float.abs z1)
                 | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded
                   ->
                     true
                 | _ -> false)
               [ false; true ])
           objectives)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "small max" `Quick test_small_max;
          Alcotest.test_case "small min" `Quick test_small_min;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "redundant equalities" `Quick
            test_redundant_equalities;
          Alcotest.test_case "beale cycling" `Quick test_beale_cycling;
          Alcotest.test_case "klee-minty" `Quick test_klee_minty_3;
          Alcotest.test_case "feasible point" `Quick test_feasible_point;
          Alcotest.test_case "var out of range" `Quick test_var_out_of_range;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "objective reuse" `Quick test_problem_reuse;
          Alcotest.test_case "infeasible system" `Quick
            test_problem_infeasible;
          Alcotest.test_case "unbounded objective" `Quick
            test_problem_unbounded;
        ] );
      ( "properties",
        q [ prop_box; prop_combination_feasible; prop_problem_matches_solve ]
      );
    ]
