(* Tests for the domain pool and the parallel scenario sweep path: task
   ordering and overflow, failure isolation, and the bit-identical-replay
   contract of Runner.run_batch. *)

(* --- Pool --- *)

let test_pool_order_and_overflow () =
  (* many more tasks than workers: all run, results in submission order *)
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "size" 3 (Pool.size pool);
      let out = Pool.map pool (fun i -> i * i) (List.init 50 Fun.id) in
      Alcotest.(check (list int))
        "order preserved"
        (List.init 50 (fun i -> i * i))
        out)

let test_pool_empty_map () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool Fun.id []))

let test_pool_exception_does_not_wedge () =
  Pool.with_pool ~domains:2 (fun pool ->
      (* two failing tasks: every task still runs, the lowest-indexed
         failure is the one re-raised *)
      (match
         Pool.map pool
           (fun i -> if i = 3 || i = 7 then failwith (Printf.sprintf "boom%d" i) else i)
           (List.init 16 Fun.id)
       with
      | _ -> Alcotest.fail "expected a failure to propagate"
      | exception Failure m ->
          Alcotest.(check string) "first failing index wins" "boom3" m);
      (* the pool is still fully usable afterwards *)
      let out = Pool.map pool string_of_int [ 1; 2; 3 ] in
      Alcotest.(check (list string)) "usable after failure" [ "1"; "2"; "3" ] out)

let test_pool_shutdown () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Pool.submit pool (fun () -> ()))

(* --- map_chunked: batched dispatch, same contract as map --- *)

let test_map_chunked_matches_map () =
  Pool.with_pool ~domains:3 (fun pool ->
      let xs = List.init 53 Fun.id in
      let f i = (i * 7) - 3 in
      let expected = List.map f xs in
      Alcotest.(check (list int))
        "default chunking" expected
        (Pool.map_chunked pool f xs);
      (* explicit chunk sizes, including per-item and one-chunk-fits-all *)
      List.iter
        (fun chunk_size ->
          Alcotest.(check (list int))
            (Printf.sprintf "chunk_size=%d" chunk_size)
            expected
            (Pool.map_chunked ~chunk_size pool f xs))
        [ 1; 2; 7; 53; 1000 ];
      Alcotest.(check (list int))
        "empty list" []
        (Pool.map_chunked pool f []);
      Alcotest.check_raises "chunk_size must be positive"
        (Invalid_argument "Pool.map_chunked: chunk_size 0")
        (fun () -> ignore (Pool.map_chunked ~chunk_size:0 pool f xs)))

let test_map_chunked_exception_isolation () =
  Pool.with_pool ~domains:2 (fun pool ->
      (* failures inside a chunk: the rest of the chunk still runs, and
         the lowest-indexed failure is the one re-raised — exactly the
         Pool.map contract *)
      (match
         Pool.map_chunked ~chunk_size:4 pool
           (fun i ->
             if i = 5 || i = 11 then failwith (Printf.sprintf "chunk%d" i)
             else i)
           (List.init 16 Fun.id)
       with
      | _ -> Alcotest.fail "expected a failure to propagate"
      | exception Failure m ->
          Alcotest.(check string) "first failing index wins" "chunk5" m);
      let out = Pool.map_chunked pool string_of_int [ 4; 5; 6 ] in
      Alcotest.(check (list string)) "usable after failure" [ "4"; "5"; "6" ] out)

(* Contention microbench for the signal-one wakeup path: thousands of
   sub-microsecond jobs dispatched per-item. With broadcast-on-submit
   this thrashes; with the waiting-counter signal it must still complete
   every job (no lost wakeups) and stay ordered. *)
let test_pool_contention_many_tiny_jobs () =
  Pool.with_pool ~domains:4 (fun pool ->
      let n = 4000 in
      let xs = List.init n Fun.id in
      let out = Pool.map_chunked ~chunk_size:1 pool (fun i -> i + 1) xs in
      Alcotest.(check int) "all jobs ran" n (List.length out);
      Alcotest.(check int)
        "sum checks out"
        (n * (n + 1) / 2)
        (List.fold_left ( + ) 0 out);
      (* and the same storm through plain map (per-item submit) *)
      let out = Pool.map pool (fun i -> i * 2) xs in
      Alcotest.(check (list int)) "map storm ordered" (List.map (fun i -> i * 2) xs) out)

let test_with_pool_exception_cleanup () =
  (* with_pool shuts the pool down even when the body raises: no leaked
     domains, and the escaped pool handle is unusable *)
  let captured = ref None in
  (try
     Pool.with_pool ~domains:2 (fun pool ->
         captured := Some pool;
         failwith "body blew up")
   with Failure _ -> ());
  match !captured with
  | None -> Alcotest.fail "body never ran"
  | Some pool ->
      Alcotest.check_raises "pool shut down on the exception path"
        (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
          Pool.submit pool (fun () -> ()))

(* --- Supervised: worker-domain crash recovery --- *)

let outcome_int =
  Alcotest.testable
    (fun ppf -> function
      | Pool.Supervised.Done v -> Format.fprintf ppf "Done %d" v
      | Pool.Supervised.Crashed { attempts; last_error } ->
          Format.fprintf ppf "Crashed{attempts=%d; %s}" attempts last_error)
    ( = )

let test_supervised_clean_sweep () =
  let xs = List.init 25 Fun.id in
  let out = Pool.Supervised.map ~domains:3 (fun i -> i * i) xs in
  Alcotest.(check (list outcome_int))
    "all done, submission order"
    (List.map (fun i -> Pool.Supervised.Done (i * i)) xs)
    out;
  Alcotest.(check int) "no leaked domains" 0 (Pool.Supervised.active_domains ())

let test_supervised_empty_and_oversized () =
  Alcotest.(check (list outcome_int))
    "empty" [] (Pool.Supervised.map ~domains:4 (fun i -> i) []);
  (* more domains than items: the pool clamps, completes, and joins every
     spawned domain — independent of Domain.recommended_domain_count *)
  let out = Pool.Supervised.map ~domains:16 (fun i -> i + 1) [ 10; 20; 30 ] in
  Alcotest.(check (list outcome_int))
    "clamped pool" (List.map (fun v -> Pool.Supervised.Done v) [ 11; 21; 31 ])
    out;
  Alcotest.(check int) "no leaked domains" 0 (Pool.Supervised.active_domains ())

let test_supervised_fatal_crash_is_bounded () =
  (* item 5 kills its worker with an Out_of_memory-style fatal every time:
     it must be retried max_retries times, then reported Crashed — and the
     rest of the sweep must complete on replacement domains *)
  let job i = if i = 5 then raise Out_of_memory else i * 10 in
  let out =
    Pool.Supervised.map ~domains:2 ~max_retries:2 job (List.init 12 Fun.id)
  in
  List.iteri
    (fun i o ->
      match (i, o) with
      | 5, Pool.Supervised.Crashed { attempts; last_error } ->
          Alcotest.(check int) "retry budget exhausted" 3 attempts;
          Alcotest.(check bool) "exception preserved" true
            (String.length last_error > 0)
      | 5, Pool.Supervised.Done _ -> Alcotest.fail "crasher reported Done"
      | _, Pool.Supervised.Done v -> Alcotest.(check int) "sibling result" (i * 10) v
      | _, Pool.Supervised.Crashed _ ->
          Alcotest.failf "healthy item %d reported Crashed" i)
    out;
  Alcotest.(check int) "every domain joined" 0 (Pool.Supervised.active_domains ())

let test_supervised_transient_crash_retries () =
  (* first attempt dies, the requeued attempt succeeds: the item must come
     back Done with no Crashed report *)
  let first = Atomic.make true in
  let job i =
    if i = 2 && Atomic.exchange first false then failwith "transient"
    else i
  in
  let out = Pool.Supervised.map ~domains:2 ~max_retries:1 job (List.init 6 Fun.id) in
  Alcotest.(check (list outcome_int))
    "transient crash recovered"
    (List.map (fun i -> Pool.Supervised.Done i) (List.init 6 Fun.id))
    out;
  Alcotest.(check int) "no leaked domains" 0 (Pool.Supervised.active_domains ())

let test_supervised_on_done_once_per_item () =
  (* on_done runs in the calling domain, exactly once per item, crash or
     not — the journaling hook's contract *)
  let n = 10 in
  let seen = Array.make n 0 in
  let caller = Domain.self () in
  let job i = if i = 4 then raise Stack_overflow else i in
  let out =
    Pool.Supervised.map ~domains:3 ~max_retries:0
      ~on_done:(fun i _ ->
        Alcotest.(check bool) "on_done in the calling domain" true
          (Domain.self () = caller);
        seen.(i) <- seen.(i) + 1)
      job (List.init n Fun.id)
  in
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "item %d seen once" i) 1 c)
    seen;
  (match List.nth out 4 with
  | Pool.Supervised.Crashed { attempts; _ } ->
      Alcotest.(check int) "max_retries=0: one attempt" 1 attempts
  | Pool.Supervised.Done _ -> Alcotest.fail "crasher reported Done");
  Alcotest.(check int) "no leaked domains" 0 (Pool.Supervised.active_domains ())

(* --- Runner.run_batch: bit-identical parallel replay --- *)

(* A grid of scenarios over D in 1..3, sync/async delay policies and two
   Byzantine behaviours. Small n keeps the D = 3 LP path affordable. *)
let grid () =
  let poison d = Behavior.Honest_with_input (Vec.make d 50.) in
  List.concat_map
    (fun (d, n, ts, ta) ->
      let cfg = Config.make_exn ~n ~ts ~ta ~d ~eps:0.1 ~delta:10 in
      let inputs =
        List.init n (fun i ->
            Vec.of_list (List.init d (fun c -> float_of_int ((i + c) mod 4))))
      in
      List.concat_map
        (fun (pname, policy, sync) ->
          List.map
            (fun (bname, corruptions) ->
              Scenario.make
                ~name:(Printf.sprintf "grid D=%d %s %s" d pname bname)
                ~seed:(Int64.of_int ((d * 97) + n))
                ~cfg ~inputs ~policy ~sync_network:sync ~corruptions ())
            [
              ("silent", [ (0, Behavior.Silent) ]);
              ("poison", [ (0, poison d) ]);
            ])
        [
          ("sync", Network.sync_uniform ~delta:10, true);
          ("async", Network.async_heavy_tail ~base:8, false);
        ])
    [ (1, 4, 1, 0); (2, 5, 1, 1); (3, 5, 1, 0) ]

(* Structural equality over the whole result record — every field,
   including stats and the traffic rows. [compare] (not [=]) so that any
   NaN still compares equal to itself. *)
let same_result a b = compare (a : Runner.result) b = 0

let test_run_batch_matches_sequential () =
  let scenarios = grid () in
  let seq = List.map Runner.run scenarios in
  let par = Runner.run_batch ~domains:4 scenarios in
  Alcotest.(check int) "same count" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (a.Runner.scenario_name ^ " bit-identical") true (same_result a b))
    seq par

let test_run_batch_domains_one_is_sequential () =
  let scenarios = grid () in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (a.Runner.scenario_name ^ " identical") true (same_result a b))
    (List.map Runner.run scenarios)
    (Runner.run_batch scenarios)

let test_replicate_and_batch () =
  let cfg = Config.make_exn ~n:4 ~ts:1 ~ta:0 ~d:2 ~eps:0.1 ~delta:10 in
  let inputs = List.init 4 (fun i -> Vec.of_list [ float_of_int i; 0. ]) in
  let base =
    Scenario.make ~name:"rep" ~cfg ~inputs
      ~policy:(Network.async_heavy_tail ~base:8) ~sync_network:false ()
  in
  let seeds = [ 1L; 2L; 3L; 4L; 5L ] in
  let reps = Scenario.replicate ~seeds base in
  Alcotest.(check (list string))
    "names carry the seed"
    [ "rep@1"; "rep@2"; "rep@3"; "rep@4"; "rep@5" ]
    (List.map (fun s -> s.Scenario.name) reps);
  Alcotest.(check bool)
    "seeds applied" true
    (List.map (fun s -> s.Scenario.seed) reps = seeds);
  let seq = List.map Runner.run reps in
  let par = Runner.run_batch ~domains:3 reps in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (a.Runner.scenario_name ^ " bit-identical") true (same_result a b))
    seq par;
  (* different engine seeds really do explore different schedules *)
  Alcotest.(check bool) "schedules differ across seeds" true
    (List.length
       (List.sort_uniq compare
          (List.map (fun r -> r.Runner.stats.Engine.final_time) seq))
    > 1)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "order + overflow" `Quick
            test_pool_order_and_overflow;
          Alcotest.test_case "empty map" `Quick test_pool_empty_map;
          Alcotest.test_case "exception isolation" `Quick
            test_pool_exception_does_not_wedge;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "map_chunked = map" `Quick
            test_map_chunked_matches_map;
          Alcotest.test_case "map_chunked exception isolation" `Quick
            test_map_chunked_exception_isolation;
          Alcotest.test_case "contention: tiny-job storm" `Quick
            test_pool_contention_many_tiny_jobs;
          Alcotest.test_case "with_pool exception cleanup" `Quick
            test_with_pool_exception_cleanup;
        ] );
      ( "supervised",
        [
          Alcotest.test_case "clean sweep" `Quick test_supervised_clean_sweep;
          Alcotest.test_case "empty + oversized pool" `Quick
            test_supervised_empty_and_oversized;
          Alcotest.test_case "fatal crash bounded + quarantined" `Quick
            test_supervised_fatal_crash_is_bounded;
          Alcotest.test_case "transient crash retried to Done" `Quick
            test_supervised_transient_crash_retries;
          Alcotest.test_case "on_done once per item, calling domain" `Quick
            test_supervised_on_done_once_per_item;
        ] );
      ( "run_batch",
        [
          Alcotest.test_case "parallel = sequential (grid)" `Quick
            test_run_batch_matches_sequential;
          Alcotest.test_case "domains=1 = sequential" `Quick
            test_run_batch_domains_one_is_sequential;
          Alcotest.test_case "replicate + batch" `Quick test_replicate_and_batch;
        ] );
    ]
