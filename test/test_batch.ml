(* The batched message layer and the EW quadratic protocol.

   The batching guarantee mirrors test_intern.ml's: under RNG-free delay
   policies the batched layer changes the packets, never the protocol —
   every logical rBC vote is delivered at exactly the tick the unbatched
   layer would have chosen. So (a) the expanded logical send trace is the
   same multiset, (b) whole Runner.result records agree once the fields
   that intentionally differ (packet/byte counts, traffic rows, monitor
   check tallies) are masked, and (c) the packet count drops by the
   batching factor E14 predicts. *)

let vec l = Vec.of_list l

(* --- Batch buffer unit tests --- *)

let id_ tag origin = { Message.tag; origin; instance = 0 }

let test_batch_buffer () =
  let sent = ref [] in
  let b = Batch.create ~send_all:(fun m -> sent := m :: !sent) () in
  Batch.flush b;
  Alcotest.(check (list reject)) "empty flush is a no-op" [] !sent;
  Batch.add b (id_ Message.Init_value 3) Message.Init (Message.Pvec (vec [ 1. ]));
  Batch.flush b;
  (match !sent with
  | [ Message.Rbc ({ tag = Message.Init_value; origin = 3; _ }, Message.Init, _) ]
    ->
      ()
  | _ -> Alcotest.fail "singleton flush must send a plain Rbc packet");
  sent := [];
  Batch.add b (id_ Message.Init_value 0) Message.Echo (Message.Pvec (vec [ 1. ]));
  Batch.add b (id_ (Message.Obc_value 2) 1) Message.Ready (Message.Pint 5);
  Batch.flush b;
  (match !sent with
  | [ Message.Rbc_batch entries ] ->
      Alcotest.(check int) "both entries" 2 (List.length entries);
      (match entries with
      | [ (i1, Message.Echo, _); (i2, Message.Ready, _) ] ->
          Alcotest.(check int) "emission order kept" 0 i1.Message.origin;
          Alcotest.(check int) "emission order kept" 1 i2.Message.origin
      | _ -> Alcotest.fail "entries out of order")
  | _ -> Alcotest.fail "multi-entry flush must send one Rbc_batch");
  Alcotest.(check int) "lifetime votes" 3 (Batch.buffered b);
  Alcotest.(check int) "non-empty flushes" 2 (Batch.flushes b);
  Alcotest.(check int) "nothing pending" 0 (Batch.pending b)

(* A window-2 buffer holds its votes through the first fire, emits on the
   second, and always emits on a final fire regardless of the count. *)
let test_batch_window () =
  let sent = ref [] in
  let b = Batch.create ~window:2 ~send_all:(fun m -> sent := m :: !sent) () in
  Batch.add b (id_ Message.Init_value 0) Message.Init (Message.Pvec (vec [ 1. ]));
  Batch.flush b;
  Alcotest.(check int) "held through first fire" 1 (Batch.pending b);
  Batch.add b (id_ Message.Init_value 1) Message.Echo (Message.Pvec (vec [ 2. ]));
  Batch.flush b;
  Alcotest.(check int) "emitted on second fire" 0 (Batch.pending b);
  (match !sent with
  | [ Message.Rbc_batch entries ] ->
      Alcotest.(check int) "both ticks' votes coalesced" 2 (List.length entries)
  | _ -> Alcotest.fail "window flush must send one Rbc_batch");
  sent := [];
  (* an empty fire must not age the window of votes that arrive later *)
  Batch.flush b;
  Batch.add b (id_ Message.Init_value 2) Message.Ready (Message.Pint 7);
  Batch.flush b;
  Alcotest.(check int) "empty fire did not count" 1 (Batch.pending b);
  Batch.flush ~final:true b;
  Alcotest.(check int) "final fire drains" 0 (Batch.pending b);
  (match !sent with
  | [ Message.Rbc (_, Message.Ready, _) ] -> ()
  | _ -> Alcotest.fail "final singleton leaves as a plain Rbc");
  match Batch.create ~window:0 ~send_all:(fun _ -> ()) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "window 0 must be rejected"

(* --- engine end-of-tick flusher --- *)

(* A flusher registered on party 0 buffers sends made during a tick and
   emits them when the engine is about to advance time — so a message
   sent "during" tick 5 still leaves at tick 5, and the flusher runs at
   most once per tick even when several events fire on that tick. *)
let test_engine_flusher () =
  let n = 2 in
  let engine =
    Engine.create ~n ~policy:(fun ~rng:_ ~now:_ ~src:_ ~dst:_ -> 3) ()
  in
  let buffer = ref [] in
  let flush_ticks = ref [] in
  Engine.set_flusher engine 0 (fun ~final:_ ->
      flush_ticks := Engine.now engine :: !flush_ticks;
      List.iter (fun m -> Engine.send engine ~src:0 ~dst:1 m) (List.rev !buffer);
      buffer := []);
  let deliveries = ref [] in
  Engine.set_party engine 1 (fun ev ->
      match ev with
      | Engine.Deliver { msg; _ } ->
          deliveries := (Engine.now engine, msg) :: !deliveries
      | Engine.Timer _ -> ());
  (* two same-tick events at t=5 for party 0, each buffering one message *)
  Engine.set_party engine 0 (fun _ -> buffer := "vote" :: !buffer);
  Engine.set_timer engine ~party:0 ~at:5 ~tag:0;
  Engine.set_timer engine ~party:0 ~at:5 ~tag:1;
  Engine.run engine;
  Alcotest.(check (list (pair int string)))
    "both votes leave at tick 5, delivered at 8"
    [ (8, "vote"); (8, "vote") ]
    (List.rev !deliveries);
  (* ticks where the flusher actually ran and found work: only tick 5
     matters; the queue-drain flush at tick 8 is an empty no-op pass *)
  Alcotest.(check bool) "flusher ran at tick 5" true (List.mem 5 !flush_ticks)

(* --- scenario helpers --- *)

let scenario ?(message_layer = `Interned) ?(protocol = `Maaa)
    ?(corruptions = []) ?policy ?(sync_network = true) ~name ~n ~ts ~ta ~d ()
    =
  let cfg = Config.make_exn ~n ~ts ~ta ~d ~eps:0.1 ~delta:10 in
  let inputs =
    List.init n (fun i ->
        Vec.of_list (List.init d (fun c -> float_of_int ((i + c) mod 4))))
  in
  Scenario.make ~name ~seed:(Int64.of_int ((n * 977) + d)) ~cfg ~inputs
    ?policy ~sync_network ~corruptions ~message_layer ~protocol ()

(* Fields that intentionally differ across layers: packet/byte/event
   counts, traffic rows, and the monitor's per-send check tally. *)
let normalize (r : Runner.result) =
  {
    r with
    Runner.stats =
      {
        r.Runner.stats with
        Engine.messages_sent = 0;
        bytes_sent = 0;
        messages_delivered = 0;
        events_processed = 0;
      };
    traffic = [];
    monitor = Option.map (fun m -> { m with Monitor.checks = 0 }) r.Runner.monitor;
  }

(* --- differential grid: batched vs interned, deterministic policies --- *)

let grid () =
  let poison d = Behavior.Honest_with_input (Vec.make d 50.) in
  List.concat_map
    (fun (d, n, ts, ta) ->
      List.concat_map
        (fun (pname, policy, sync) ->
          List.map
            (fun (bname, corruptions) ->
              ( Printf.sprintf "batch-diff D=%d %s %s" d pname bname,
                fun layer ->
                  scenario ~message_layer:layer ~corruptions ~policy
                    ~sync_network:sync
                    ~name:(Printf.sprintf "D=%d %s %s" d pname bname)
                    ~n ~ts ~ta ~d () ))
            [
              ("silent", [ (0, Behavior.Silent) ]);
              ("poison", [ (0, poison d) ]);
            ])
        [
          (* deterministic policies only: batching collapses per-vote
             RNG draws into per-packet draws, so randomised schedules
             diverge (correct but not byte-comparable) *)
          ("lockstep", Network.lockstep ~delta:10, true);
          ( "targeted-slow",
            Network.targeted_slow ~delta:10 ~victims:(fun i -> i = 1),
            false );
        ])
    [ (1, 4, 1, 0); (2, 5, 1, 1); (3, 5, 1, 0) ]

let test_grid_differential () =
  List.iter
    (fun (name, mk) ->
      let a = Runner.run ~monitor:true (mk `Batched) in
      let b = Runner.run ~monitor:true (mk `Interned) in
      Alcotest.(check bool)
        (name ^ " masked records identical") true
        (compare (normalize a) (normalize b) = 0);
      Alcotest.(check bool)
        (name ^ " batched sends fewer packets") true
        (a.Runner.stats.Engine.messages_sent
        < b.Runner.stats.Engine.messages_sent))
    (grid ())

(* --- expanded logical trace: same vote multiset, same ticks --- *)

let logical_sends ?batch_window message_layer =
  let n = 5 in
  let cfg = Config.make_exn ~n ~ts:1 ~ta:1 ~d:2 ~eps:0.1 ~delta:10 in
  let inputs =
    List.init n (fun i -> vec [ float_of_int i; float_of_int (i mod 3) ])
  in
  let engine =
    Engine.create ~seed:11L ~size_of:Message.size_of ~n
      ~policy:(Network.lockstep ~delta:10) ()
  in
  let sends = ref [] in
  Engine.set_tracer engine (fun ev ->
      match ev with
      | Engine.Sent { src; dst; at; deliver_at; msg } ->
          let entries =
            match msg with
            | Message.Rbc (id, step, p) -> [ (id, step, p) ]
            | Message.Rbc_batch entries -> entries
            | _ -> []
          in
          List.iter
            (fun e -> sends := (at, deliver_at, src, dst, e) :: !sends)
            entries
      | _ -> ());
  let parties =
    List.init n (fun i ->
        Party.attach ~message_layer ?batch_window ~cfg ~me:i engine)
  in
  List.iteri (fun i p -> Party.start p (List.nth inputs i)) parties;
  Engine.run engine;
  (List.sort compare !sends, List.map Party.output parties)

let test_logical_trace () =
  let sa, oa = logical_sends `Batched in
  let sb, ob = logical_sends `Interned in
  Alcotest.(check int) "same number of logical votes" (List.length sb)
    (List.length sa);
  Alcotest.(check bool)
    "every vote leaves and lands at the reference layer's ticks" true
    (compare sa sb = 0);
  Alcotest.(check bool) "outputs equal" true (compare oa ob = 0)

(* Window > 1 shifts send ticks (by at most window − 1), which lawfully
   changes which report subsets cross the protocol's thresholds first —
   payload {e values} may diverge. What the buffer must preserve is the
   vote {e identity} multiset: who casts which (instance, step) vote to
   whom, with none lost to the window and none duplicated by it. The run
   must also still converge. *)
let test_window_logical_trace () =
  let strip sends =
    List.sort compare
      (List.map
         (fun (_, _, src, dst, (id, step, _payload)) -> (src, dst, id, step))
         sends)
  in
  let sw, ow = logical_sends ~batch_window:3 `Batched in
  let sb, _ = logical_sends `Batched in
  Alcotest.(check int) "same number of logical votes" (List.length sb)
    (List.length sw);
  Alcotest.(check bool)
    "same vote-identity multiset modulo ticks" true
    (compare (strip sw) (strip sb) = 0);
  Alcotest.(check bool) "windowed run produced outputs" true
    (List.for_all Option.is_some ow)

(* --- the message wall: ≥3× packet reduction at n = 12 --- *)

let msgs_of s = (Runner.run s).Runner.stats.Engine.messages_sent

let test_reduction_n12 () =
  let reference =
    msgs_of (scenario ~name:"ref n12" ~n:12 ~ts:2 ~ta:1 ~d:2 ())
  in
  let batched =
    msgs_of
      (scenario ~message_layer:`Batched ~name:"batched n12" ~n:12 ~ts:2 ~ta:1
         ~d:2 ())
  in
  let ratio = float_of_int reference /. float_of_int batched in
  Alcotest.(check bool)
    (Printf.sprintf "(%d / %d = %.1fx) >= 3x" reference batched ratio)
    true (ratio >= 3.)

(* --- EW protocol --- *)

let test_ew_converges () =
  let r =
    Runner.run ~monitor:true
      (scenario ~protocol:`Ew ~name:"ew honest" ~n:8 ~ts:2 ~ta:1 ~d:2 ())
  in
  Alcotest.(check bool) "live" true r.Runner.live;
  Alcotest.(check bool) "valid" true r.Runner.valid;
  Alcotest.(check bool) "agreement" true r.Runner.agreement;
  match r.Runner.monitor with
  | Some m -> Alcotest.(check int) "no violations" 0 (List.length m.Monitor.violations)
  | None -> Alcotest.fail "monitor summary missing"

let test_ew_silent_corruption () =
  let r =
    Runner.run ~monitor:true
      (scenario ~protocol:`Ew ~corruptions:[ (3, Behavior.Silent) ]
         ~policy:(Network.targeted_slow ~delta:10 ~victims:(fun i -> i = 2))
         ~sync_network:false ~name:"ew silent" ~n:8 ~ts:2 ~ta:1 ~d:2 ())
  in
  Alcotest.(check bool) "live" true r.Runner.live;
  Alcotest.(check bool) "valid" true r.Runner.valid;
  Alcotest.(check bool) "agreement" true r.Runner.agreement;
  match r.Runner.monitor with
  | Some m -> Alcotest.(check int) "no violations" 0 (List.length m.Monitor.violations)
  | None -> Alcotest.fail "monitor summary missing"

(* Messages per run ~ Θ(n²): quadrupling n should ×16 the messages, give
   or take the iteration count; the cubic protocol would give ×64. *)
let test_ew_quadratic () =
  let msgs n =
    msgs_of (scenario ~protocol:`Ew ~name:"ew sweep" ~n ~ts:2 ~ta:1 ~d:2 ())
  in
  let m8 = msgs 8 and m32 = msgs 32 in
  let ratio = float_of_int m32 /. float_of_int m8 in
  Alcotest.(check bool)
    (Printf.sprintf "m32/m8 = %.1f in [8, 40]" ratio)
    true
    (ratio >= 8. && ratio <= 40.)

let () =
  Alcotest.run "batch"
    [
      ( "batch buffer",
        [
          Alcotest.test_case "encoder" `Quick test_batch_buffer;
          Alcotest.test_case "cross-tick window" `Quick test_batch_window;
          Alcotest.test_case "engine end-of-tick flusher" `Quick
            test_engine_flusher;
        ] );
      ( "differential",
        [
          Alcotest.test_case "grid: masked records byte-identical" `Quick
            test_grid_differential;
          Alcotest.test_case "logical vote trace identical" `Quick
            test_logical_trace;
          Alcotest.test_case "window > 1: vote multiset preserved" `Quick
            test_window_logical_trace;
          Alcotest.test_case "3x packet reduction at n=12" `Quick
            test_reduction_n12;
        ] );
      ( "ew protocol",
        [
          Alcotest.test_case "honest run converges" `Quick test_ew_converges;
          Alcotest.test_case "silent corruption tolerated" `Quick
            test_ew_silent_corruption;
          Alcotest.test_case "quadratic message scaling" `Quick
            test_ew_quadratic;
        ] );
    ]
