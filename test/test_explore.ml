(* Tests for the bounded model-checking explorer and its supporting
   seams: the engine chooser hook is byte-invisible at its default across
   the sim / net / multi backends, Fault_plan reprs round-trip, the
   shrinker is 1-minimal and idempotent against its own move set, the EW
   equivocation defence rejects an explicitly equivocating adversary the
   legacy protocol accepts, and the explorer rediscovers both protocol
   mutants with replayable shrunk repros. *)

let zero_chooser engine = Engine.set_chooser engine (fun _ -> 0)

(* Everything in a result is schedule-determined except the transport
   tag and the kernel-scheduling-dependent wire statistics. *)
let masked (r : Runner.result) =
  { r with Runner.wire = None; transport = `Sim }

(* --- chooser default byte-identity: sim / net / multi --- *)

let grid_slice ~n ~d =
  match
    List.find_opt
      (fun s -> s.Scenario.cfg.Config.n = n && s.Scenario.cfg.Config.d = d)
      (Differential.pinned_grid ())
  with
  | Some s -> s
  | None -> Alcotest.failf "no (n=%d, d=%d) slice in the pinned grid" n d

let check_identity name baseline hooked =
  Alcotest.(check bool)
    (name ^ ": always-0 chooser is byte-identical to no chooser")
    true
    (masked baseline = masked hooked)

let test_chooser_identity_sim () =
  List.iter
    (fun (n, d) ->
      let s = grid_slice ~n ~d in
      check_identity
        (Printf.sprintf "sim n=%d d=%d" n d)
        (Runner.run ~monitor:true s)
        (Runner.run ~monitor:true ~on_engine:zero_chooser s))
    [ (4, 1); (8, 2) ]

let test_chooser_identity_net () =
  let s = { (grid_slice ~n:4 ~d:1) with Scenario.transport = `Net } in
  check_identity "net n=4 d=1"
    (Runner.run ~monitor:true s)
    (Runner.run ~monitor:true ~on_engine:zero_chooser s)

let test_chooser_identity_multi () =
  let cfg = Config.make_exn ~n:4 ~ts:1 ~ta:0 ~d:1 ~eps:0.05 ~delta:4 in
  let mk i =
    Scenario.make
      ~name:(Printf.sprintf "mux#%d" i)
      ~seed:(Int64.of_int (41 + i))
      ~cfg
      ~inputs:
        (List.init 4 (fun p ->
             Vec.of_list [ float_of_int (((i * 7) + (p * 3)) mod 11) ]))
      ()
  in
  let scens = [ mk 0; mk 1; mk 2 ] in
  let plain = Multi_runner.run_group ~monitor:true scens in
  let hooked = Multi_runner.run_group ~monitor:true ~on_engine:zero_chooser scens in
  List.iter2
    (fun (a : Runner.result) b ->
      Alcotest.(check bool)
        (a.Runner.scenario_name ^ ": multiplexed runs byte-identical")
        true (a = b))
    plain hooked

(* A non-default chooser must actually steer the schedule — guards
   against the hook silently degenerating into a no-op. *)
let test_chooser_steers () =
  let s = grid_slice ~n:4 ~d:1 in
  let consulted = ref 0 in
  let last_chooser engine =
    Engine.set_chooser engine (fun cands ->
        incr consulted;
        Array.length cands - 1)
  in
  let base = Runner.run s in
  let steered = Runner.run ~on_engine:last_chooser s in
  Alcotest.(check bool) "chooser was consulted" true (!consulted > 0);
  (* Outputs must still agree (the protocol is schedule-insensitive in
     its correctness envelope) but the event order differs, which the
     per-party output times expose under the lockstep policy. *)
  Alcotest.(check bool)
    "live either way" true
    (base.Runner.live && steered.Runner.live)

(* --- Fault_plan repr round-trip --- *)

let all_atoms_plan =
  let v x = Vec.of_list [ x; -1.5 ] in
  [
    Fault_plan.Corrupt_at { tick = 7; party = 1; behavior = Behavior.Silent };
    Fault_plan.Corrupt_at { tick = 0; party = 2; behavior = Behavior.Crash_at 9 };
    Fault_plan.Corrupt_at
      { tick = 3; party = 3; behavior = Behavior.Honest_with_input (v 2.25) };
    Fault_plan.Corrupt_at
      { tick = 1; party = 4; behavior = Behavior.Equivocate (v 1., v 2.) };
    Fault_plan.Corrupt_at
      {
        tick = 2;
        party = 5;
        behavior =
          Behavior.Equivocate_split
            { values = (v 0.5, v 0.125); assign = [| 0; 1; 0; 1; 1; 0; 0; 0 |] };
      };
    Fault_plan.Corrupt_at { tick = 4; party = 6; behavior = Behavior.Halt_liar 2 };
    Fault_plan.Corrupt_at
      {
        tick = 5;
        party = 0;
        behavior = Behavior.Spam { period = 3; payload_bytes = 64; until = 40 };
      };
    Fault_plan.Corrupt_at { tick = 6; party = 7; behavior = Behavior.Garbage 17 };
    Fault_plan.Corrupt_at { tick = 8; party = 1; behavior = Behavior.Lagger 4 };
    Fault_plan.Partition
      { from_tick = 2; until_tick = 9; group_of = [| 0; 0; 1; 1; 0; 1; 0; 1 |] };
    Fault_plan.Delay_spike { from_tick = 0; until_tick = 5; factor = 3 };
    Fault_plan.Duplicate { from_tick = 1; until_tick = 6; percent = 35 };
    Fault_plan.Reorder { from_tick = 4; until_tick = 12; window = 5 };
  ]

let test_repr_roundtrip_all_atoms () =
  let repr = Fault_plan.to_repr all_atoms_plan in
  Alcotest.(check bool) "repr is tab-free" false (String.contains repr '\t');
  match Fault_plan.of_repr repr with
  | Error e -> Alcotest.failf "of_repr rejected its own encoding: %s" e
  | Ok plan -> Alcotest.(check bool) "round trip" true (plan = all_atoms_plan)

let test_repr_rejects_garbage () =
  List.iter
    (fun s ->
      match Fault_plan.of_repr s with
      | Ok _ -> Alcotest.failf "of_repr accepted %S" s
      | Error _ -> ())
    [ "X,1,2"; "C,1"; "C,x,2,s"; "P,0,5,012x"; "D,3,1"; "C,1,2,e:1.0" ]

let cfg8 = Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10

let prop_repr_roundtrip =
  QCheck.Test.make ~name:"generated plans round-trip through repr" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let plan =
        Fault_gen.sample
          (Rng.create (Int64.of_int seed))
          ~cfg:cfg8 ~sync:true ~existing:[] ~horizon:200
      in
      Fault_plan.of_repr (Fault_plan.to_repr plan) = Ok plan)

(* --- Fault_shrink: strong 1-minimality and idempotence --- *)

(* A deterministic, strictly candidate-monotone oracle: every move in
   the shrinker's repertoire (atom drop, candidate weakening) strictly
   decreases [weight], so "weight >= threshold" lets us assert full
   1-minimality against exactly the shrinker's move set. *)
let weight_atom = function
  | Fault_plan.Corrupt_at { tick; behavior; _ } ->
      tick + (match behavior with Behavior.Silent -> 0 | _ -> 5)
  | Fault_plan.Partition { from_tick; until_tick; _ } ->
      from_tick + (until_tick - from_tick)
  | Fault_plan.Delay_spike { from_tick; until_tick; factor } ->
      from_tick + (until_tick - from_tick) + factor
  | Fault_plan.Duplicate { from_tick; until_tick; percent } ->
      from_tick + (until_tick - from_tick) + percent
  | Fault_plan.Reorder { from_tick; until_tick; window } ->
      from_tick + (until_tick - from_tick) + window

let weight plan = List.fold_left (fun acc a -> acc + weight_atom a) 0 plan

let check_one_minimal ~reproduces plan =
  List.iteri
    (fun i _ ->
      let dropped = List.filteri (fun j _ -> j <> i) plan in
      if reproduces dropped then
        Alcotest.failf "dropping atom %d still reproduces" i)
    plan;
  List.iteri
    (fun i atom ->
      List.iter
        (fun cand ->
          let replaced = List.mapi (fun j a -> if j = i then cand else a) plan in
          if reproduces replaced then
            Alcotest.failf "weakening atom %d (%s) still reproduces" i
              (Fault_plan.atom_to_string cand))
        (Fault_shrink.candidates atom))
    plan

let prop_shrink_minimal_idempotent =
  QCheck.Test.make
    ~name:"shrink output is 1-minimal against drops and candidates, and \
           shrinking is idempotent"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let plan =
        Fault_gen.sample
          (Rng.create (Int64.of_int seed))
          ~cfg:cfg8 ~sync:true ~existing:[] ~horizon:120
      in
      let total = weight plan in
      QCheck.assume (plan <> [] && total > 0);
      let threshold = max 1 (total / 2) in
      let reproduces p = weight p >= threshold in
      let o = Fault_shrink.shrink ~max_tries:100_000 ~reproduces plan in
      let p = o.Fault_shrink.plan in
      if not (reproduces p) then
        QCheck.Test.fail_report "shrunk plan lost the property";
      if not o.Fault_shrink.minimal then
        QCheck.Test.fail_report "try budget unexpectedly exhausted";
      check_one_minimal ~reproduces p;
      let o2 = Fault_shrink.shrink ~max_tries:100_000 ~reproduces p in
      if o2.Fault_shrink.plan <> p then
        QCheck.Test.fail_report "shrinking a shrunk plan changed it";
      true)

(* A pinned case where removal and numeric shrinking must interleave:
   the oracle wants either two corrupt atoms or one strong delay spike,
   so the joint fixpoint must discard the spike entirely and zero the
   corrupt ticks — a single removal-then-numeric pass would leave the
   spike's window shrinkable. *)
let test_shrink_joint_fixpoint () =
  let plan =
    [
      Fault_plan.Corrupt_at { tick = 12; party = 1; behavior = Behavior.Silent };
      Fault_plan.Delay_spike { from_tick = 4; until_tick = 20; factor = 8 };
      Fault_plan.Corrupt_at { tick = 30; party = 2; behavior = Behavior.Silent };
    ]
  in
  let corrupt_atoms p =
    List.length
      (List.filter (function Fault_plan.Corrupt_at _ -> true | _ -> false) p)
  in
  let strong_spike p =
    List.exists
      (function
        | Fault_plan.Delay_spike { factor; _ } -> factor >= 4
        | _ -> false)
      p
  in
  let reproduces p = corrupt_atoms p >= 2 || strong_spike p in
  let o = Fault_shrink.shrink ~reproduces plan in
  let shrunk = o.Fault_shrink.plan in
  Alcotest.(check bool) "reproduces" true (reproduces shrunk);
  Alcotest.(check bool) "minimal" true o.Fault_shrink.minimal;
  check_one_minimal ~reproduces shrunk;
  (* Which 1-minimal fixpoint greedy reaches (two zero-tick corrupt atoms,
     or one tight strong spike) is not pinned — but reaching EITHER needs
     removal and numeric moves to interleave: atoms must go AND the
     survivors' numerics must hit the oracle floor. *)
  Alcotest.(check bool) "at least one atom removed" true
    (List.length shrunk < List.length plan);
  Alcotest.(check bool)
    (Printf.sprintf "numerics shrunk to the oracle floor (weight %d)"
       (weight shrunk))
    true
    (weight shrunk <= 5)

(* --- EW equivocation: legacy accepts, the defence rejects --- *)

(* n = 4, t = 1. Party 2's links are slow (3 ticks), everyone else's are
   fast (1 tick). The Byzantine party 3 shows value [va] to {0, 1} and
   [vb] to {2}: the fast parties' value sets close over (3, va) while
   party 2's closes over (3, vb), so without a consistency mechanism no
   honest report ever passes another party's subset test — witness
   counts stall at 2 < n − t and NOBODY outputs. The echo-confirmation
   defence denies party 3 a confirmation quorum for either value and the
   honest pairs confirm everywhere, so the protocol completes on the
   honest inputs alone. *)
let ew_equivocation_run ~defence =
  let n = 4 in
  let policy ~rng:_ ~now:_ ~src ~dst:_ = if src = 2 then 3 else 1 in
  let engine = Engine.create ~n ~policy () in
  let honest = [ 0; 1; 2 ] in
  let parties =
    List.map
      (fun i ->
        ( i,
          Ew_aa.attach ~equivocation_defence:defence ~n ~t:1 ~iters:1 ~me:i
            engine ))
      honest
  in
  Engine.set_party engine 3 (fun _ -> ());
  let inputs = [| 0.0; 1.0; 0.5 |] in
  List.iter
    (fun (i, p) -> Ew_aa.start p (Vec.of_list [ inputs.(i) ]))
    parties;
  let va = Vec.of_list [ 10. ] and vb = Vec.of_list [ -10. ] in
  List.iter
    (fun dst ->
      Engine.send engine ~src:3 ~dst
        (Message.Ew_value
           { instance = 0; iter = 1; value = (if dst = 2 then vb else va) }))
    honest;
  Engine.run engine;
  List.map (fun (i, p) -> (i, Ew_aa.output p)) parties

let test_ew_equivocation_legacy_stalls () =
  List.iter
    (fun (i, out) ->
      Alcotest.(check bool)
        (Printf.sprintf "legacy party %d stalls under equivocation" i)
        true (out = None))
    (ew_equivocation_run ~defence:false)

let test_ew_equivocation_defence_completes () =
  let outs = ew_equivocation_run ~defence:true in
  let values =
    List.map
      (fun (i, out) ->
        match out with
        | None -> Alcotest.failf "defence party %d failed to output" i
        | Some v -> (Vec.to_array v).(0))
      outs
  in
  List.iter
    (fun x ->
      Alcotest.(check bool) "output within the honest hull [0,1]" true
        (x >= 0. && x <= 1.))
    values;
  match values with
  | x :: rest ->
      List.iter
        (fun y ->
          Alcotest.(check (float 1e-12)) "outputs agree exactly" x y)
        rest
  | [] -> Alcotest.fail "no outputs"

(* The defence must not change the legacy wire behaviour when off: an
   honest EW scenario produces byte-identical results either way (the
   default is off; this pins that the new message type stays silent). *)
let test_ew_defence_off_is_legacy () =
  let run () =
    let n = 4 in
    let engine = Engine.create ~n ~policy:(Network.lockstep ~delta:4) () in
    let parties =
      List.init n (fun i -> Ew_aa.attach ~n ~t:1 ~iters:2 ~me:i engine)
    in
    List.iteri
      (fun i p -> Ew_aa.start p (Vec.of_list [ float_of_int i ]))
      parties;
    Engine.run engine;
    (List.map (fun p -> Ew_aa.output p) parties, Engine.stats engine)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "honest EW runs are reproducible" true (a = b)

(* --- the explorer itself --- *)

let explore_cfg = Config.make_exn ~n:3 ~ts:0 ~ta:0 ~d:1 ~eps:0.25 ~delta:2

let explore_inputs =
  [ Vec.of_list [ 0. ]; Vec.of_list [ 0.5 ]; Vec.of_list [ 1. ] ]

let test_explorer_honest_clean () =
  let config =
    Explore.default_config ~mode:Explore.Pruned ~max_schedule_depth:2
      ~cfg:explore_cfg ~inputs:explore_inputs ()
  in
  let r = Explore.explore config in
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check bool) "clean" true (r.Explore.counterexamples = []);
  Alcotest.(check int) "no truncation" 0 r.Explore.truncated;
  Alcotest.(check bool) "explored more than the default schedule" true
    (r.Explore.executions > 1)

let test_explorer_pruning_reduces () =
  let mk mode =
    Explore.default_config ~mode ~max_schedule_depth:2 ~cfg:explore_cfg
      ~inputs:explore_inputs ()
  in
  let naive = Explore.explore (mk Explore.Naive) in
  let pruned = Explore.explore (mk Explore.Pruned) in
  Alcotest.(check bool) "both exhausted" true
    (naive.Explore.exhausted && pruned.Explore.exhausted);
  Alcotest.(check bool)
    (Printf.sprintf "pruning reduces executions (%d naive vs %d pruned)"
       naive.Explore.executions pruned.Explore.executions)
    true
    (pruned.Explore.executions < naive.Explore.executions)

let test_explorer_rediscovers_mutants () =
  List.iter
    (fun (mutant, invariant) ->
      let config =
        Explore.default_config ~mutant ~max_schedule_depth:1 ~cfg:explore_cfg
          ~inputs:explore_inputs ()
      in
      let r = Explore.explore config in
      let name = Explore.mutant_repr (Some mutant) in
      Alcotest.(check bool) (name ^ " flagged") true
        (r.Explore.counterexamples <> []);
      List.iter
        (fun cx ->
          Alcotest.(check bool)
            (name ^ " violates " ^ invariant)
            true
            (List.mem invariant cx.Explore.cx_invariants);
          let got =
            Explore.replay config ~plan:cx.Explore.cx_shrunk_plan
              ~schedule:cx.Explore.cx_shrunk_schedule
          in
          Alcotest.(check bool)
            (name ^ " shrunk repro replays")
            true
            (List.for_all (fun i -> List.mem i got) cx.Explore.cx_invariants))
        r.Explore.counterexamples)
    [
      (Party.Non_contracting_update, "validity");
      (Party.Premature_output, "agreement");
    ]

let test_explorer_quarantine_roundtrip () =
  let config =
    Explore.default_config ~mutant:Party.Premature_output ~max_schedule_depth:1
      ~cfg:explore_cfg ~inputs:explore_inputs ()
  in
  let r = Explore.explore config in
  Alcotest.(check bool) "found something to quarantine" true
    (r.Explore.counterexamples <> []);
  let path = Filename.temp_file "explore-quarantine" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Explore.write_quarantine ~path config r;
      match Explore.replay_quarantine ~path with
      | Error e -> Alcotest.failf "replay_quarantine: %s" e
      | Ok o ->
          Alcotest.(check int) "all cases reproduce" o.Explore.rp_total
            o.Explore.rp_reproduced;
          Alcotest.(check bool) "no failures" true (o.Explore.rp_failures = []))

let test_explorer_quarantine_rejects_garbage () =
  let path = Filename.temp_file "explore-garbage" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not-a-quarantine\tfile\n";
      close_out oc;
      match Explore.replay_quarantine ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage file accepted")

let () =
  Alcotest.run "explore"
    [
      ( "chooser identity",
        [
          Alcotest.test_case "sim grid slices" `Quick test_chooser_identity_sim;
          Alcotest.test_case "net backend" `Quick test_chooser_identity_net;
          Alcotest.test_case "multi-instance engine" `Quick
            test_chooser_identity_multi;
          Alcotest.test_case "non-default chooser steers" `Quick
            test_chooser_steers;
        ] );
      ( "plan repr",
        [
          Alcotest.test_case "all atom kinds round-trip" `Quick
            test_repr_roundtrip_all_atoms;
          Alcotest.test_case "garbage rejected" `Quick test_repr_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_repr_roundtrip;
        ] );
      ( "shrinker",
        [
          QCheck_alcotest.to_alcotest prop_shrink_minimal_idempotent;
          Alcotest.test_case "joint removal/numeric fixpoint" `Quick
            test_shrink_joint_fixpoint;
        ] );
      ( "ew equivocation",
        [
          Alcotest.test_case "legacy stalls" `Quick
            test_ew_equivocation_legacy_stalls;
          Alcotest.test_case "defence completes" `Quick
            test_ew_equivocation_defence_completes;
          Alcotest.test_case "defence off is legacy" `Quick
            test_ew_defence_off_is_legacy;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "honest space clean" `Quick
            test_explorer_honest_clean;
          Alcotest.test_case "pruning reduces executions" `Quick
            test_explorer_pruning_reduces;
          Alcotest.test_case "rediscovers both mutants" `Quick
            test_explorer_rediscovers_mutants;
          Alcotest.test_case "quarantine round-trip" `Quick
            test_explorer_quarantine_roundtrip;
          Alcotest.test_case "quarantine rejects garbage" `Quick
            test_explorer_quarantine_rejects_garbage;
        ] );
    ]
