(* Tests for Bracha reliable broadcast against the properties of
   Definition 4.1 / Theorem 4.2. *)

let tag = Message.Init_value
let id origin = { Message.tag; origin; instance = 0 }
let pvec x = Message.Pvec (Vec.of_list [ x ])

type fixture = {
  engine : Message.t Engine.t;
  rbcs : Rbc.t option array;
  deliveries : (int * Message.rbc_id * Message.payload * int) list ref;
      (* (party, instance, payload, time) *)
}

(* Wire an honest rBC stack for every party in [honest]. *)
let make_fixture ?(seed = 1L) ~n ~t ~policy ~honest () =
  let engine = Engine.create ~seed ~n ~policy () in
  let deliveries = ref [] in
  let rbcs = Array.make n None in
  List.iter
    (fun i ->
      let rbc =
        Rbc.create ~n ~t
          {
            Rbc.send_all = (fun msg -> Engine.broadcast engine ~src:i msg);
            deliver =
              (fun id payload ->
                deliveries := (i, id, payload, Engine.now engine) :: !deliveries);
          }
      in
      rbcs.(i) <- Some rbc;
      Engine.set_party engine i (fun ev ->
          match ev with
          | Engine.Deliver { src; msg = Message.Rbc (id, step, payload) } ->
              Rbc.on_message rbc ~from:src id step payload
          | _ -> ()))
    honest;
  { engine; rbcs; deliveries }

let delivered_to f party =
  List.filter_map
    (fun (p, _, payload, time) -> if p = party then Some (payload, time) else None)
    !(f.deliveries)

let test_honest_liveness_3delta () =
  let delta = 10 in
  let honest = [ 0; 1; 2; 3 ] in
  let f = make_fixture ~n:4 ~t:1 ~policy:(Network.lockstep ~delta) ~honest () in
  Rbc.broadcast (Option.get f.rbcs.(0)) (id 0) (pvec 7.);
  Engine.run f.engine;
  List.iter
    (fun p ->
      match delivered_to f p with
      | [ (payload, time) ] ->
          Alcotest.(check bool) "value" true (payload = pvec 7.);
          Alcotest.(check bool)
            (Printf.sprintf "party %d within c_rBC * delta" p)
            true
            (time <= Params.c_rbc * delta)
      | l -> Alcotest.failf "party %d: %d deliveries" p (List.length l))
    honest

let test_validity_no_other_value () =
  let honest = [ 0; 1; 2; 3 ] in
  let f =
    make_fixture ~n:4 ~t:1 ~policy:(Network.sync_uniform ~delta:5) ~honest ()
  in
  Rbc.broadcast (Option.get f.rbcs.(1)) (id 1) (pvec 3.);
  Engine.run f.engine;
  List.iter
    (fun (_, _, payload, _) ->
      Alcotest.(check bool) "only the sender's value" true (payload = pvec 3.))
    !(f.deliveries)

(* An equivocating sender: conflicting Init messages to the two halves plus
   echoes for both values. Consistency must still hold. *)
let equivocate f ~me ~va ~vb =
  let n = Engine.n f.engine in
  for dst = 0 to n - 1 do
    let v = if dst < n / 2 then va else vb in
    Engine.send f.engine ~src:me ~dst (Message.Rbc (id me, Message.Init, v))
  done;
  (* echo both values to everyone, trying to tip both over the threshold *)
  List.iter
    (fun v ->
      Engine.broadcast f.engine ~src:me (Message.Rbc (id me, Message.Echo, v)))
    [ va; vb ]

let test_consistency_under_equivocation () =
  (* try several schedules: consistency must hold in every one *)
  List.iter
    (fun seed ->
      let honest = [ 0; 1; 2 ] in
      let f =
        make_fixture ~seed ~n:4 ~t:1
          ~policy:(Network.sync_uniform ~delta:8)
          ~honest ()
      in
      equivocate f ~me:3 ~va:(pvec 1.) ~vb:(pvec 2.);
      Engine.run f.engine;
      let values =
        List.sort_uniq compare
          (List.map (fun (_, _, payload, _) -> payload) !(f.deliveries))
      in
      Alcotest.(check bool)
        (Printf.sprintf "at most one value delivered (seed %Ld)" seed)
        true
        (List.length values <= 1))
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L ]

let test_no_delivery_without_sender () =
  let honest = [ 0; 1; 2; 3 ] in
  let f = make_fixture ~n:4 ~t:1 ~policy:Network.instant ~honest () in
  (* nobody broadcasts; a single echo from a corrupt party is far below
     any threshold *)
  Engine.send f.engine ~src:2 ~dst:0 (Message.Rbc (id 2, Message.Echo, pvec 9.));
  Engine.run f.engine;
  Alcotest.(check int) "no deliveries" 0 (List.length !(f.deliveries))

let test_init_only_from_origin () =
  let honest = [ 0; 1; 2; 3 ] in
  let f = make_fixture ~n:4 ~t:1 ~policy:Network.instant ~honest () in
  (* party 2 tries to initiate *party 3's* instance; honest parties must
     ignore the forged Init (channels are authenticated) *)
  Engine.broadcast f.engine ~src:2 (Message.Rbc (id 3, Message.Init, pvec 5.));
  Engine.run f.engine;
  Alcotest.(check int) "no deliveries" 0 (List.length !(f.deliveries))

let test_conditional_liveness_gap () =
  (* all honest participate; with an honest sender every delivery gap is at
     most c'_rBC * delta even under adversarial-but-synchronous delays *)
  let delta = 10 in
  let honest = [ 0; 1; 2; 3; 4; 5; 6 ] in
  let f =
    make_fixture ~n:7 ~t:2
      ~policy:(Network.sync_uniform ~delta)
      ~honest ()
  in
  Rbc.broadcast (Option.get f.rbcs.(0)) (id 0) (pvec 1.);
  Engine.run f.engine;
  let times = List.map (fun (_, _, _, time) -> time) !(f.deliveries) in
  Alcotest.(check int) "everyone delivered" 7 (List.length times);
  let lo = List.fold_left min max_int times
  and hi = List.fold_left max 0 times in
  Alcotest.(check bool) "gap within c'_rBC * delta" true
    (hi - lo <= Params.c_rbc' * delta)

let test_liveness_with_crashes () =
  (* t parties crash-silent: the rest still deliver an honest broadcast *)
  let honest = [ 0; 1; 2; 3; 4 ] in
  (* parties 5, 6 absent *)
  let f =
    make_fixture ~n:7 ~t:2 ~policy:(Network.sync_uniform ~delta:5) ~honest ()
  in
  Rbc.broadcast (Option.get f.rbcs.(0)) (id 0) (pvec 4.);
  Engine.run f.engine;
  Alcotest.(check int) "5 deliveries" 5 (List.length !(f.deliveries))

let test_multiple_instances () =
  let honest = [ 0; 1; 2; 3 ] in
  let f = make_fixture ~n:4 ~t:1 ~policy:Network.instant ~honest () in
  Rbc.broadcast (Option.get f.rbcs.(0)) (id 0) (pvec 1.);
  Rbc.broadcast (Option.get f.rbcs.(1)) (id 1) (pvec 2.);
  Rbc.broadcast
    (Option.get f.rbcs.(0))
    { Message.tag = Message.Halt 3; origin = 0; instance = 0 }
    (Message.Pint 3);
  Engine.run f.engine;
  (* 4 parties x 3 instances *)
  Alcotest.(check int) "12 deliveries" 12 (List.length !(f.deliveries));
  let p0 = delivered_to f 0 in
  Alcotest.(check int) "3 at party 0" 3 (List.length p0)

let test_ready_amplification () =
  (* t + 1 ready votes alone (no Init, no Echo) must trigger a party's own
     ready, cascading to delivery — the amplification path of Bracha. *)
  let honest = [ 0; 1 ] in
  let f = make_fixture ~n:4 ~t:1 ~policy:Network.instant ~honest () in
  (* two corrupt parties send ready(v) to everyone *)
  List.iter
    (fun c ->
      Engine.broadcast f.engine ~src:c (Message.Rbc (id 3, Message.Ready, pvec 8.)))
    [ 2; 3 ];
  Engine.run f.engine;
  (* each honest party: 2 corrupt readys -> amplifies -> 2 corrupt + 2
     honest readys >= n - t -> delivers *)
  Alcotest.(check int) "both honest delivered" 2 (List.length !(f.deliveries));
  List.iter
    (fun (_, _, payload, _) ->
      Alcotest.(check bool) "amplified value" true (payload = pvec 8.))
    !(f.deliveries)

let test_duplicate_votes_ignored () =
  (* a corrupt party repeating its echo many times must not reach the
     n - t echo threshold alone *)
  let honest = [ 0; 1; 2 ] in
  let f = make_fixture ~n:4 ~t:1 ~policy:Network.instant ~honest () in
  for _ = 1 to 10 do
    Engine.broadcast f.engine ~src:3 (Message.Rbc (id 3, Message.Echo, pvec 1.))
  done;
  Engine.run f.engine;
  Alcotest.(check int) "no delivery from repeated votes" 0
    (List.length !(f.deliveries))

let test_threshold_validation () =
  Alcotest.check_raises "n > 3t required"
    (Invalid_argument "Rbc.create: requires n > 3t") (fun () ->
      ignore
        (Rbc.create ~n:6 ~t:2
           { Rbc.send_all = ignore; deliver = (fun _ _ -> ()) }))

let () =
  Alcotest.run "rbc"
    [
      ( "bracha",
        [
          Alcotest.test_case "honest liveness within 3 delta" `Quick
            test_honest_liveness_3delta;
          Alcotest.test_case "validity" `Quick test_validity_no_other_value;
          Alcotest.test_case "consistency under equivocation" `Quick
            test_consistency_under_equivocation;
          Alcotest.test_case "no delivery without sender" `Quick
            test_no_delivery_without_sender;
          Alcotest.test_case "init only from origin" `Quick
            test_init_only_from_origin;
          Alcotest.test_case "conditional liveness gap" `Quick
            test_conditional_liveness_gap;
          Alcotest.test_case "liveness with crashes" `Quick
            test_liveness_with_crashes;
          Alcotest.test_case "multiple instances" `Quick test_multiple_instances;
          Alcotest.test_case "ready amplification" `Quick
            test_ready_amplification;
          Alcotest.test_case "duplicate votes ignored" `Quick
            test_duplicate_votes_ignored;
          Alcotest.test_case "threshold validation" `Quick
            test_threshold_validation;
        ] );
    ]
