(* Tests for the harness: input generators, scenario validation, metric
   extraction, tables, and the isolated sub-protocol fixtures. *)

(* --- Inputs --- *)

let test_simplex_corners () =
  let pts = Inputs.simplex_corners ~d:3 ~scale:2. ~n:5 in
  Alcotest.(check int) "count" 5 (List.length pts);
  Alcotest.(check bool) "first is origin" true
    (Vec.compare (List.hd pts) (Vec.zero 3) = 0);
  Alcotest.(check bool) "second is 2 e_0" true
    (Vec.compare (List.nth pts 1) (Vec.basis ~dim:3 0 2.) = 0);
  (* wraps around after d + 1 corners *)
  Alcotest.(check bool) "wraps" true
    (Vec.compare (List.nth pts 4) (Vec.zero 3) = 0)

let test_uniform_cube () =
  let rng = Rng.create 1L in
  let pts = Inputs.uniform_cube rng ~d:4 ~n:50 ~side:3. in
  Alcotest.(check int) "count" 50 (List.length pts);
  List.iter
    (fun p ->
      List.iter
        (fun x -> Alcotest.(check bool) "in cube" true (x >= 0. && x <= 3.))
        (Vec.to_list p))
    pts

let test_gaussian_cluster () =
  let rng = Rng.create 2L in
  let center = Vec.of_list [ 5.; 5. ] in
  let pts = Inputs.gaussian_cluster rng ~d:2 ~n:200 ~center ~spread:0.5 in
  let c = Vec.centroid pts in
  Alcotest.(check bool) "centroid near center" true (Vec.dist c center < 0.3)

let test_two_clusters () =
  let rng = Rng.create 3L in
  let pts = Inputs.two_clusters rng ~d:2 ~n:20 ~separation:100. in
  let near_origin =
    List.filter (fun p -> Vec.norm p < 50.) pts |> List.length
  in
  Alcotest.(check int) "half near origin" 10 near_origin

let test_gradients () =
  let rng = Rng.create 4L in
  let truth = Vec.of_list [ 1.; 2.; 3. ] in
  let pts = Inputs.gradients rng ~d:3 ~n:100 ~truth ~noise:0.1 in
  let c = Vec.centroid pts in
  Alcotest.(check bool) "centered on truth" true (Vec.dist c truth < 0.1)

let test_ring () =
  let pts = Inputs.ring ~n:12 ~radius:7. in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9)) "on the circle" 7. (Vec.norm p))
    pts

(* --- Scenario --- *)

let cfg = Config.make_exn ~n:4 ~ts:1 ~ta:0 ~d:2 ~eps:0.1 ~delta:10
let inputs4 = List.init 4 (fun i -> Vec.of_list [ float_of_int i; 0. ])

let test_scenario_validation () =
  Alcotest.check_raises "wrong input count"
    (Invalid_argument "Scenario.make: need one input per party") (fun () ->
      ignore (Scenario.make ~cfg ~inputs:[ Vec.zero 2 ] ()));
  Alcotest.check_raises "wrong dimension"
    (Invalid_argument "Scenario.make: input dimension mismatch") (fun () ->
      ignore
        (Scenario.make ~cfg ~inputs:(List.init 4 (fun _ -> Vec.zero 3)) ()));
  Alcotest.check_raises "corruption out of range"
    (Invalid_argument "Scenario.make: corrupted party out of range") (fun () ->
      ignore
        (Scenario.make ~cfg ~inputs:inputs4
           ~corruptions:[ (9, Behavior.Silent) ]
           ()));
  Alcotest.check_raises "duplicate corruption"
    (Invalid_argument "Scenario.make: duplicate corruption") (fun () ->
      ignore
        (Scenario.make ~cfg ~inputs:inputs4
           ~corruptions:[ (1, Behavior.Silent); (1, Behavior.Silent) ]
           ()))

let test_scenario_accessors () =
  let s =
    Scenario.make ~cfg ~inputs:inputs4 ~corruptions:[ (2, Behavior.Silent) ] ()
  in
  Alcotest.(check (list int)) "honest" [ 0; 1; 3 ] (Scenario.honest s);
  Alcotest.(check int) "corrupt count" 1 (Scenario.corrupt_count s);
  Alcotest.(check int) "honest inputs" 3 (List.length (Scenario.honest_inputs s))

(* --- Runner metrics --- *)

let test_runner_contraction_and_diameters () =
  let s = Scenario.make ~cfg ~inputs:inputs4 () in
  let r = Runner.run s in
  let diams = Runner.iteration_diameters r in
  Alcotest.(check bool) "diameters non-empty" true (diams <> []);
  Alcotest.(check bool) "iteration 0 present" true
    (List.mem_assoc 0 diams);
  List.iter
    (fun (_, ratio) ->
      Alcotest.(check bool) "ratio sane" true (ratio >= 0. && ratio <= 1.))
    (Runner.contraction_ratios r)

let test_runner_reports_dead_run () =
  (* an infeasible adversary (all corrupt) is not constructible, but a
     network that never delivers within the horizon leaves liveness false
     rather than raising *)
  let s =
    Scenario.make ~cfg ~inputs:inputs4
      ~corruptions:[ (0, Behavior.Silent); (1, Behavior.Silent) ]
        (* 2 > ts: outside the budget, liveness may fail; must not raise *)
      ()
  in
  let r = Runner.run s in
  Alcotest.(check bool) "no exception; some verdict" true
    (r.Runner.live || not r.Runner.live);
  (* even with no honest output the Δ-round metric stays nan-free *)
  Alcotest.(check bool) "completion_rounds nan-free" true
    (Float.is_finite r.Runner.completion_rounds
    && r.Runner.completion_rounds >= 0.)

(* The centroid update kernel adopts interior points of the same safe
   areas the midpoint rule uses, so the monitor's invariants (Validity,
   hull Contraction, ε-Agreement) must hold unchanged — including with a
   silent corruption and at D=3, where the safe area runs on the exact
   Hull3d arm. *)
let test_centroid_kernel_monitored_clean () =
  List.iter
    (fun (d, corruptions) ->
      let cfg = Config.make_exn ~n:5 ~ts:1 ~ta:0 ~d ~eps:0.05 ~delta:10 in
      let inputs =
        let rng = Rng.create 2027L in
        Inputs.uniform_cube rng ~d ~n:5 ~side:4.
      in
      let s =
        Scenario.make
          ~name:(Printf.sprintf "centroid-d%d" d)
          ~update_kernel:`Centroid ~corruptions ~cfg ~inputs ()
      in
      let r = Runner.run ~monitor:true s in
      let name fmt = Printf.sprintf ("d=%d: " ^^ fmt) d in
      Alcotest.(check bool) (name "live") true r.Runner.live;
      Alcotest.(check bool) (name "valid") true r.Runner.valid;
      Alcotest.(check bool) (name "agreement") true r.Runner.agreement;
      match r.Runner.monitor with
      | None -> Alcotest.fail (name "no monitor summary")
      | Some m ->
          Alcotest.(check int)
            (name "0 violations") 0
            (Monitor.total_violations m))
    [ (2, []); (3, [ (4, Behavior.Silent) ]) ]

(* --- Table --- *)

let test_table_render () =
  let s =
    Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* all lines equal width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

(* --- Fixtures --- *)

let test_fixture_rbc_crashed_sender_still_consistent () =
  (* sender not in [honest]: its raw Init still gets echoed by honest
     parties and delivered consistently *)
  let obs =
    Fixtures.run_rbc ~n:4 ~t:1 ~policy:Network.instant ~honest:[ 0; 1; 2 ]
      ~sender:(`Honest (3, Message.Pint 5))
      ()
  in
  Alcotest.(check int) "3 deliveries" 3 (List.length obs.Fixtures.rbc_deliveries)

let test_fixture_obc_start_delays () =
  let inputs = List.init 4 (fun i -> (i, Vec.of_list [ float_of_int i ])) in
  let obs =
    Fixtures.run_obc ~n:4 ~ts:1 ~delta:10 ~policy:Network.instant
      ~start_delays:[ (3, 15) ] ~inputs ()
  in
  Alcotest.(check int) "all output" 4 (List.length obs.Fixtures.obc_outputs)

let test_fixture_init_outputs () =
  let inputs = List.init 4 (fun i -> (i, Vec.of_list [ float_of_int i; 0. ])) in
  let obs =
    Fixtures.run_init ~n:4 ~ts:1 ~ta:0 ~delta:10 ~eps:0.1
      ~policy:(Network.lockstep ~delta:10) ~inputs ()
  in
  Alcotest.(check int) "all output" 4 (List.length obs.Fixtures.init_results);
  List.iter
    (fun (_, t, v0, _) ->
      Alcotest.(check bool) "T >= 1" true (t >= 1);
      Alcotest.(check bool) "v0 in hull" true
        (Membership.in_hull ~eps:1e-6 (List.map snd inputs) v0))
    obs.Fixtures.init_results

let test_init_estimation_consistency () =
  (* Πinit's consistency argument: two honest parties that both marked P'
     as a witness computed the same estimation for P' (the estimations are
     deterministic functions of reliably-broadcast reports). *)
  let inputs =
    List.init 6 (fun i ->
        (i, Vec.of_list [ float_of_int (i mod 3); float_of_int (i mod 4) ]))
  in
  let obs =
    Fixtures.run_init ~seed:9L ~n:6 ~ts:1 ~ta:1 ~delta:10 ~eps:0.1
      ~policy:(Network.sync_uniform ~delta:10) ~inputs ()
  in
  let sets = List.map snd obs.Fixtures.init_estimations in
  List.iter
    (fun s ->
      List.iter
        (fun s' ->
          List.iter
            (fun p ->
              match (Pairset.find_party p s, Pairset.find_party p s') with
              | Some v, Some v' ->
                  Alcotest.(check bool) "same estimation" true
                    (Vec.compare v v' = 0)
              | _ -> ())
            (List.init 6 Fun.id))
        sets)
    sets

(* --- Stats --- *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "count" 5 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 3. s.Stats.mean;
  Alcotest.(check (float 1e-9)) "median" 3. s.Stats.median;
  Alcotest.(check (float 1e-9)) "min" 1. s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5. s.Stats.max;
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.) s.Stats.stddev

let test_stats_percentile () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  Alcotest.(check (float 1e-9)) "p0" 10. (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100" 40. (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p50" 25. (Stats.percentile xs 50.);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty list")
    (fun () -> ignore (Stats.percentile [] 50.))

(* --- Traffic --- *)

let test_traffic_classification () =
  let v = Vec.of_list [ 1.; 2. ] in
  let checks =
    [
      ( Message.Rbc
          ({ tag = Message.Init_value; origin = 0; instance = 0 },
            Message.Echo,
            Message.Pvec v ),
        Traffic.Init_rbc );
      ( Message.Rbc
          ({ tag = Message.Obc_value 3; origin = 0; instance = 0 },
            Message.Ready,
            Message.Pvec v ),
        Traffic.Iteration_rbc );
      ( Message.Rbc
          ({ tag = Message.Halt 2; origin = 0; instance = 0 },
            Message.Init,
            Message.Pint 2 ),
        Traffic.Halt_rbc );
      (Message.Obc_report { instance = 0; iter = 1; pairs = [] },
        Traffic.Obc_reports );
      (Message.Witness_set { instance = 0; parties = [ 1 ] },
        Traffic.Witness_sets );
      (Message.Sync_round { round = 0; value = v }, Traffic.Baseline);
      (Message.Junk 3, Traffic.Junk);
    ]
  in
  List.iter
    (fun (msg, expected) ->
      Alcotest.(check string) "class"
        (Traffic.klass_name expected)
        (Traffic.klass_name (Traffic.klass_of msg)))
    checks

let test_traffic_counters () =
  let t = Traffic.create () in
  let engine =
    Engine.create ~size_of:Message.size_of ~n:2 ~policy:Network.instant ()
  in
  Traffic.attach t engine;
  Engine.set_party engine 1 (fun _ -> ());
  Engine.send engine ~src:0 ~dst:1 (Message.Junk 10);
  Engine.send engine ~src:0 ~dst:1 (Message.Junk 20);
  Engine.run engine;
  Alcotest.(check int) "count" 2 (Traffic.count t Traffic.Junk);
  Alcotest.(check int) "bytes" (16 + 10 + 16 + 20) (Traffic.bytes t Traffic.Junk);
  Alcotest.(check int) "total" 2 (Traffic.total t)

(* --- Baseline runner corruption plumbing --- *)

let test_baseline_runner_mute_excluded () =
  let inputs = List.init 4 (fun i -> Vec.of_list [ float_of_int i; 0. ]) in
  let r =
    Baseline_runner.run_sync_baseline ~n:4 ~t:1 ~rounds:2 ~delta:10 ~eps:10.
      ~inputs
      ~corruptions:[ (3, Baseline_runner.Mute) ]
      ()
  in
  Alcotest.(check int) "3 honest outputs" 3 (List.length r.Baseline_runner.outputs)

let () =
  Alcotest.run "harness"
    [
      ( "inputs",
        [
          Alcotest.test_case "simplex corners" `Quick test_simplex_corners;
          Alcotest.test_case "uniform cube" `Quick test_uniform_cube;
          Alcotest.test_case "gaussian cluster" `Quick test_gaussian_cluster;
          Alcotest.test_case "two clusters" `Quick test_two_clusters;
          Alcotest.test_case "gradients" `Quick test_gradients;
          Alcotest.test_case "ring" `Quick test_ring;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "accessors" `Quick test_scenario_accessors;
        ] );
      ( "runner",
        [
          Alcotest.test_case "metrics" `Quick test_runner_contraction_and_diameters;
          Alcotest.test_case "centroid kernel monitored clean" `Quick
            test_centroid_kernel_monitored_clean;
          Alcotest.test_case "graceful on dead runs" `Quick
            test_runner_reports_dead_run;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
      ( "fixtures",
        [
          Alcotest.test_case "rbc crashed sender" `Quick
            test_fixture_rbc_crashed_sender_still_consistent;
          Alcotest.test_case "obc start delays" `Quick test_fixture_obc_start_delays;
          Alcotest.test_case "init outputs" `Quick test_fixture_init_outputs;
          Alcotest.test_case "init estimation consistency" `Quick
            test_init_estimation_consistency;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "classification" `Quick test_traffic_classification;
          Alcotest.test_case "counters" `Quick test_traffic_counters;
        ] );
      ( "baseline runner",
        [
          Alcotest.test_case "mute excluded" `Quick
            test_baseline_runner_mute_excluded;
        ] );
    ]
