(* Tests for restrict_t enumeration and the safe-area machinery, including
   the paper's worked examples (Figure 2 and the Section 5 empty-area
   example). *)

let v = Vec.of_list

(* --- Restrict --- *)

let test_restrict_count () =
  Alcotest.(check int) "C(5,2)" 10 (Restrict.count ~m:5 ~t:2);
  Alcotest.(check int) "C(5,0)" 1 (Restrict.count ~m:5 ~t:0);
  Alcotest.(check int) "C(5,5)" 1 (Restrict.count ~m:5 ~t:5);
  Alcotest.(check int) "C(5,6)" 0 (Restrict.count ~m:5 ~t:6);
  Alcotest.(check int) "C(12,4)" 495 (Restrict.count ~m:12 ~t:4)

let test_restrict_subsets () =
  let subs = Restrict.subsets ~t:1 [ 1; 2; 3 ] in
  Alcotest.(check int) "3 subsets" 3 (List.length subs);
  List.iter
    (fun s -> Alcotest.(check int) "size 2" 2 (List.length s))
    subs;
  let sorted = List.sort compare subs in
  Alcotest.(check bool) "exact family" true
    (sorted = [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ]);
  Alcotest.(check bool) "t=0 is identity" true
    (Restrict.subsets ~t:0 [ 1; 2; 3 ] = [ [ 1; 2; 3 ] ])

let test_restrict_invalid () =
  Alcotest.check_raises "bad t" (Invalid_argument "Restrict.subsets: bad t")
    (fun () -> ignore (Restrict.subsets ~t:4 [ 1; 2; 3 ]))

let test_restrict_preserves_order () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "ascending" true (List.sort compare s = s))
    (Restrict.subsets ~t:2 [ 1; 2; 3; 4; 5 ])

(* --- Safe areas, D = 1 --- *)

let floats_1d xs = List.map (fun x -> v [ x ]) xs

let test_safe_1d () =
  match Safe_area.compute ~t:1 (floats_1d [ 0.; 1.; 2.; 3.; 4. ]) with
  | Some (Safe_area.Interval { lo; hi }) ->
      Alcotest.(check (float 1e-12)) "lo" 1. lo;
      Alcotest.(check (float 1e-12)) "hi" 3. hi
  | _ -> Alcotest.fail "expected interval"

let test_safe_1d_point () =
  match Safe_area.compute ~t:2 (floats_1d [ 0.; 1.; 2.; 3.; 4. ]) with
  | Some (Safe_area.Interval { lo; hi }) ->
      Alcotest.(check (float 1e-12)) "lo" 2. lo;
      Alcotest.(check (float 1e-12)) "hi" 2. hi
  | _ -> Alcotest.fail "expected point interval"

let test_safe_1d_empty () =
  Alcotest.(check bool) "empty" true
    (Safe_area.compute ~t:2 (floats_1d [ 0.; 1.; 2.; 3. ]) = None)

let test_safe_1d_duplicates () =
  (* multiset semantics: duplicated values count separately *)
  match Safe_area.compute ~t:1 (floats_1d [ 0.; 0.; 5. ]) with
  | Some (Safe_area.Interval { lo; hi }) ->
      Alcotest.(check (float 1e-12)) "lo" 0. lo;
      Alcotest.(check (float 1e-12)) "hi" 0. hi
  | _ -> Alcotest.fail "expected interval"

let test_safe_1d_new_value () =
  match Safe_area.new_value ~t:1 (floats_1d [ 0.; 1.; 2.; 3.; 4. ]) with
  | Some nv -> Alcotest.(check (float 1e-12)) "midpoint" 2. (Vec.get nv 0)
  | None -> Alcotest.fail "non-empty"

(* --- Safe areas, D = 2: the paper's examples --- *)

(* Figure 2: four points in convex position with t = 1; the safe area is the
   single intersection point of the diagonals. *)
let test_figure2_single_point () =
  let pts = [ v [ 0.; 0. ]; v [ 2.; 0. ]; v [ 2.; 2. ]; v [ 0.; 2. ] ] in
  match Safe_area.compute ~t:1 pts with
  | Some (Safe_area.Planar poly as area) ->
      Alcotest.(check int) "single vertex" 1 (List.length (Polygon.vertices poly));
      Alcotest.(check bool) "is diagonal crossing" true
        (Safe_area.contains area (v [ 1.; 1. ]));
      Alcotest.(check (float 1e-9)) "diameter 0" 0. (Safe_area.diameter area)
  | _ -> Alcotest.fail "expected planar point"

(* interior point variant: safe_1 of a triangle plus an interior point is
   exactly the interior point *)
let test_interior_point () =
  let d = v [ 1.; 1. ] in
  let pts = [ v [ 0.; 0. ]; v [ 4.; 0. ]; v [ 0.; 4. ]; d ] in
  match Safe_area.compute ~t:1 pts with
  | Some area ->
      Alcotest.(check bool) "d in safe" true (Safe_area.contains area d);
      Alcotest.(check (float 1e-6)) "only d" 0. (Safe_area.diameter area);
      let nv = Safe_area.midpoint_value area in
      Alcotest.(check bool) "new value is d" true (Vec.dist nv d <= 1e-6)
  | None -> Alcotest.fail "non-empty"

(* Section 5's motivating example: three honest values with t = ts = 1 give
   an empty safe area — the reason the protocol trims max(k, ta) instead. *)
let test_paper_empty_example () =
  let pts = [ v [ 0.; 0. ]; v [ 0.; 1. ]; v [ 1.; 0. ] ] in
  Alcotest.(check bool) "safe_1 empty" true (Safe_area.compute ~t:1 pts = None);
  (* with the paper's fix, k = 0 and ta = 0 trim nothing *)
  match Safe_area.compute ~t:0 pts with
  | Some area ->
      Alcotest.(check bool) "full hull" true
        (Safe_area.contains area (v [ 0.3; 0.3 ]))
  | None -> Alcotest.fail "safe_0 is the hull itself"

let test_safe_2d_diameter_pair_deterministic () =
  let pts =
    [ v [ 0.; 0. ]; v [ 3.; 0. ]; v [ 3.; 3. ]; v [ 0.; 3. ]; v [ 1.; 1. ] ]
  in
  let area order =
    match Safe_area.compute ~t:1 order with
    | Some a -> Safe_area.diameter_pair a
    | None -> Alcotest.fail "non-empty"
  in
  Alcotest.(check bool) "order independent" true
    (area pts = area (List.rev pts))

(* --- properties --- *)

let gen_pts ~d ~m =
  QCheck.Gen.(list_repeat m (list_repeat d (float_range (-10.) 10.) >|= Vec.of_list))

let print_pts l = String.concat " " (List.map Vec.to_string l)

(* Lemma 5.5 instance: n = 8, ts = 2, ta = 1, D = 2 satisfies
   n > (D+1)ts + ta. With |M| = n - ts + k values, trimming max(k, ta)
   must leave a non-empty area. *)
let prop_lemma_5_5 =
  QCheck.Test.make ~name:"lemma 5.5: safe area non-empty" ~count:60
    (QCheck.make ~print:print_pts
       QCheck.Gen.(int_range 0 2 >>= fun k -> gen_pts ~d:2 ~m:(8 - 2 + k)))
    (fun pts ->
      let n = 8 and ts = 2 and ta = 1 in
      let k = List.length pts - (n - ts) in
      let t = max k ta in
      Safe_area.compute ~t pts <> None)

(* Lemma 5.6: the new value lies in the safe area. *)
let prop_lemma_5_6 =
  QCheck.Test.make ~name:"lemma 5.6: midpoint inside area" ~count:60
    (QCheck.make ~print:print_pts (gen_pts ~d:2 ~m:7))
    (fun pts ->
      match Safe_area.compute ~t:1 pts with
      | None -> QCheck.assume_fail ()
      | Some area ->
          Safe_area.contains ~eps:1e-6 area (Safe_area.midpoint_value area))

(* Lemma 5.7: safe_t(M) is inside the hull of every (|M|-t)-subset. *)
let prop_lemma_5_7 =
  QCheck.Test.make ~name:"lemma 5.7: safe area inside every subset hull"
    ~count:40
    (QCheck.make ~print:print_pts (gen_pts ~d:2 ~m:6))
    (fun pts ->
      match Safe_area.compute ~t:1 pts with
      | None -> QCheck.assume_fail ()
      | Some area ->
          let a, b = Safe_area.diameter_pair area in
          let mid = Safe_area.midpoint_value area in
          List.for_all
            (fun sub ->
              List.for_all
                (fun p -> Membership.in_hull ~eps:1e-6 sub p)
                [ a; b; mid ])
            (Restrict.subsets ~t:1 pts))

(* agreement of the three representations: a point is in safe_t iff it is in
   every subset hull (checked via LP), in dimensions 2 and 3 *)
let prop_contains_agrees =
  QCheck.Test.make ~name:"contains agrees with subset-hull definition"
    ~count:40
    (QCheck.make
       ~print:(fun (pts, p) -> print_pts pts ^ " @ " ^ Vec.to_string p)
       QCheck.Gen.(
         pair (gen_pts ~d:3 ~m:6)
           (list_repeat 3 (float_range (-10.) 10.) >|= Vec.of_list)))
    (fun (pts, p) ->
      match Safe_area.compute ~t:1 pts with
      | None -> QCheck.assume_fail ()
      | Some area ->
          let by_def eps =
            List.for_all
              (fun sub -> Membership.in_hull ~eps sub p)
              (Restrict.subsets ~t:1 pts)
          in
          (* skip boundary-ambiguous points *)
          let strict_in = by_def 1e-9 and loose_out = not (by_def 1e-5) in
          QCheck.assume (strict_in || loose_out);
          Safe_area.contains ~eps:1e-6 area p = strict_in)

(* Lemma 5.8 shape: two sets sharing a core of n - ts values have
   intersecting safe areas. Construction: n = 8, ts = 2, ta = 1. *)
let prop_lemma_5_8 =
  QCheck.Test.make ~name:"lemma 5.8: honest safe areas intersect" ~count:40
    (QCheck.make ~print:print_pts (gen_pts ~d:2 ~m:8))
    (fun pts ->
      let n = 8 and ts = 2 and ta = 1 in
      let core = List.filteri (fun i _ -> i < n - ts) pts in
      let extra = List.filteri (fun i _ -> i >= n - ts) pts in
      let m1 = core @ [ List.nth extra 0 ] in
      let m2 = core @ [ List.nth extra 1 ] in
      let t_of m = max (List.length m - (n - ts)) ta in
      match
        (Safe_area.compute ~t:(t_of m1) m1, Safe_area.compute ~t:(t_of m2) m2)
      with
      | Some (Safe_area.Planar p1), Some (Safe_area.Planar p2) ->
          Polygon.inter p1 p2 <> None
      | _ -> false)

(* brute force: the family has exactly C(m, t) distinct members *)
let prop_restrict_complete =
  QCheck.Test.make ~name:"restrict family complete and distinct" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 4))
    (fun (m, t) ->
      QCheck.assume (t <= m);
      let subs = Restrict.subsets ~t (List.init m Fun.id) in
      List.length subs = Restrict.count ~m ~t
      && List.length (List.sort_uniq compare subs) = List.length subs
      && List.for_all (fun sub -> List.length sub = m - t) subs)

(* brute force: the 1-D fast path equals the naive subset-interval
   intersection *)
let prop_safe_1d_matches_bruteforce =
  QCheck.Test.make ~name:"1-D safe area equals brute force" ~count:150
    QCheck.(pair (list_of_size (Gen.int_range 3 9) (float_range (-50.) 50.)) (int_range 0 3))
    (fun (xs, t) ->
      QCheck.assume (t < List.length xs);
      let vs = List.map (fun x -> Vec.of_list [ x ]) xs in
      let brute =
        Restrict.subsets ~t xs
        |> List.map (fun sub ->
               ( List.fold_left Float.min infinity sub,
                 List.fold_left Float.max neg_infinity sub ))
        |> List.fold_left
             (fun (lo, hi) (l, h) -> (Float.max lo l, Float.min hi h))
             (neg_infinity, infinity)
      in
      match (Safe_area.compute ~t vs, brute) with
      | None, (lo, hi) -> lo > hi
      | Some (Safe_area.Interval { lo; hi }), (blo, bhi) ->
          Float.abs (lo -. blo) <= 1e-12 && Float.abs (hi -. bhi) <= 1e-12
      | Some _, _ -> false)

(* Regression for the quadratic [List.length rest >= k] the recursive
   enumerator used to hide: the iterative kernel must produce exactly
   C(m, t) subsets across a whole m × t grid. *)
let test_subsets_grid () =
  for m = 0 to 12 do
    let l = List.init m Fun.id in
    for t = 0 to m do
      let subs = Restrict.subsets ~t l in
      Alcotest.(check int)
        (Printf.sprintf "|subsets ~t:%d| of %d" t m)
        (Restrict.count ~m ~t) (List.length subs)
    done
  done

(* The list API is a view of the array kernel: same family, same order. *)
let test_subsets_arr_consistent () =
  let l = List.init 7 Fun.id in
  for t = 0 to 7 do
    let via_arr =
      Restrict.subsets_arr ~t (Array.of_list l)
      |> Array.map Array.to_list |> Array.to_list
    in
    Alcotest.(check bool)
      (Printf.sprintf "t=%d" t)
      true
      (via_arr = Restrict.subsets ~t l)
  done;
  (* lexicographic order of the kept index sets, explicitly *)
  Alcotest.(check bool) "lexicographic" true
    (Restrict.subsets ~t:2 [ 0; 1; 2; 3 ]
    = [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ])

let vec_opt_eq a b =
  match (a, b) with
  | None, None -> true
  | Some u, Some w -> Vec.compare u w = 0
  | _ -> false

(* The array-native entry point the protocol now uses must be bit-identical
   to the list path, in every dimension regime (order statistics, polygon
   clipping, LP workspace). *)
let prop_new_value_arr_matches =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun d ->
      int_range (d + 2) 7 >>= fun n ->
      int_range 1 2 >>= fun t ->
      list_repeat n (list_repeat d (float_range (-10.) 10.)) >|= fun pts ->
      (t, List.map Vec.of_list pts))
  in
  QCheck.Test.make ~name:"new_value_arr ≡ new_value" ~count:60
    (QCheck.make ~print:(fun (t, pts) ->
         Printf.sprintf "t=%d %s" t (print_pts pts))
       gen)
    (fun (t, pts) ->
      QCheck.assume (t < List.length pts);
      vec_opt_eq
        (Safe_area.new_value_arr ~t (Array.of_list pts))
        (Safe_area.new_value ~t pts))

(* For implicit (D ≥ 4) areas, the cached-workspace diameter must match the
   pre-workspace one-shot search on the very same hullset. (D = 3 now takes
   the exact [Spatial] kernel; its differential grid against
   [Hullset.Reference] lives in test_hull3d.ml.) *)
let prop_implicit_diameter_matches_reference =
  let gen =
    QCheck.Gen.(
      list_repeat 6 (list_repeat 4 (float_range (-10.) 10.)) >|= fun pts ->
      List.map Vec.of_list pts)
  in
  QCheck.Test.make ~name:"implicit diameter ≡ reference" ~count:20
    (QCheck.make ~print:print_pts gen)
    (fun pts ->
      match Safe_area.compute ~t:1 pts with
      | Some (Safe_area.Implicit hs) -> (
          let a, b = Safe_area.diameter_pair (Safe_area.Implicit hs) in
          match Hullset.Reference.diameter_pair hs with
          | Some (a', b') -> Vec.compare a a' = 0 && Vec.compare b b' = 0
          | None -> false)
      | Some _ -> false
      | None -> QCheck.assume_fail ())

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "safearea"
    [
      ( "restrict",
        [
          Alcotest.test_case "count" `Quick test_restrict_count;
          Alcotest.test_case "subsets" `Quick test_restrict_subsets;
          Alcotest.test_case "invalid" `Quick test_restrict_invalid;
          Alcotest.test_case "order preserved" `Quick
            test_restrict_preserves_order;
          Alcotest.test_case "count grid" `Quick test_subsets_grid;
          Alcotest.test_case "array kernel consistent" `Quick
            test_subsets_arr_consistent;
        ] );
      ( "safe-1d",
        [
          Alcotest.test_case "interval" `Quick test_safe_1d;
          Alcotest.test_case "point" `Quick test_safe_1d_point;
          Alcotest.test_case "empty" `Quick test_safe_1d_empty;
          Alcotest.test_case "duplicates" `Quick test_safe_1d_duplicates;
          Alcotest.test_case "new value" `Quick test_safe_1d_new_value;
        ] );
      ( "safe-2d",
        [
          Alcotest.test_case "figure 2: single point" `Quick
            test_figure2_single_point;
          Alcotest.test_case "interior point" `Quick test_interior_point;
          Alcotest.test_case "paper empty example" `Quick
            test_paper_empty_example;
          Alcotest.test_case "deterministic diameter pair" `Quick
            test_safe_2d_diameter_pair_deterministic;
        ] );
      ( "properties",
        q
          [
            prop_lemma_5_5;
            prop_lemma_5_6;
            prop_lemma_5_7;
            prop_contains_agrees;
            prop_lemma_5_8;
            prop_restrict_complete;
            prop_safe_1d_matches_bruteforce;
            prop_new_value_arr_matches;
            prop_implicit_diameter_matches_reference;
          ] );
    ]
