(* Statistical sanity for the SplitMix64 generator: split-stream
   independence and chi-square uniformity of [Rng.int]/[Rng.float01].
   Fixed seeds make every test a deterministic regression pin (the
   chi-square critical value 27.88 is the p = 0.001 cutoff at 9 degrees
   of freedom for 10 buckets), not a flaky hypothesis test. *)

let test_split_independent_of_parent_use () =
  (* the split stream depends only on the parent's state at the split
     point — interleaving further parent draws must not perturb it *)
  let a = Rng.create 99L and b = Rng.create 99L in
  let sa = Rng.split a in
  let sb = Rng.split b in
  let xs =
    List.init 100 (fun _ ->
        ignore (Rng.next_int64 a);
        Rng.next_int64 sa)
  in
  let ys = List.init 100 (fun _ -> Rng.next_int64 sb) in
  Alcotest.(check (list int64)) "child stream unaffected by parent draws" xs ys

let test_parent_independent_of_child_use () =
  let a = Rng.create 7L and b = Rng.create 7L in
  let ca = Rng.split a and cb = Rng.split b in
  for _ = 1 to 1000 do
    ignore (Rng.next_int64 ca)
  done;
  ignore cb;
  for _ = 1 to 50 do
    Alcotest.(check int64) "parent stream unaffected by child draws"
      (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_siblings_differ () =
  (* consecutive splits of one parent give distinct streams *)
  let master = Rng.create 1L in
  let c1 = Rng.split master and c2 = Rng.split master in
  let d1 = List.init 10 (fun _ -> Rng.next_int64 c1) in
  let d2 = List.init 10 (fun _ -> Rng.next_int64 c2) in
  Alcotest.(check bool) "sibling streams differ" true (d1 <> d2)

let chi_square buckets expected =
  Array.fold_left
    (fun acc o ->
      let d = float_of_int o -. expected in
      acc +. (d *. d /. expected))
    0. buckets

let critical_9dof = 27.88 (* p = 0.001 *)

let check_uniform name seed draw =
  let r = Rng.create seed in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = draw r in
    buckets.(k) <- buckets.(k) + 1
  done;
  let x2 = chi_square buckets 1000. in
  if x2 >= critical_9dof then
    Alcotest.failf "%s: chi-square %.2f >= %.2f (seed %Ld)" name x2
      critical_9dof seed

let test_chi_square_int () =
  List.iter
    (fun seed -> check_uniform "int" seed (fun r -> Rng.int r 10))
    [ 1L; 2L; 42L; 1234L ]

let test_chi_square_float01 () =
  List.iter
    (fun seed ->
      check_uniform "float01" seed (fun r ->
          min 9 (int_of_float (Rng.float01 r *. 10.))))
    [ 3L; 7L; 99L; 31337L ]

let test_chi_square_across_split_streams () =
  (* one draw from each of 10_000 sibling streams: uniformity must also
     hold ACROSS streams, which is what the soak's per-case splits use *)
  let master = Rng.create 11L in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let child = Rng.split master in
    let k = Rng.int child 10 in
    buckets.(k) <- buckets.(k) + 1
  done;
  let x2 = chi_square buckets 1000. in
  if x2 >= critical_9dof then
    Alcotest.failf "split streams: chi-square %.2f >= %.2f" x2 critical_9dof

let () =
  Alcotest.run "rng"
    [
      ( "split independence",
        [
          Alcotest.test_case "child vs parent draws" `Quick
            test_split_independent_of_parent_use;
          Alcotest.test_case "parent vs child draws" `Quick
            test_parent_independent_of_child_use;
          Alcotest.test_case "siblings differ" `Quick test_siblings_differ;
        ] );
      ( "uniformity",
        [
          Alcotest.test_case "chi-square int" `Quick test_chi_square_int;
          Alcotest.test_case "chi-square float01" `Quick
            test_chi_square_float01;
          Alcotest.test_case "chi-square across splits" `Quick
            test_chi_square_across_split_streams;
        ] );
    ]
