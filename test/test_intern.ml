(* Unit tests for the Intern hash-consing table, plus the differential
   guarantee the interned message layer is built on: engine traces and
   run results are byte-identical to the Reference (seed) layer — the
   fast path changes representation, never behaviour. *)

let vec l = Vec.of_list l

(* --- Intern unit tests --- *)

let test_intern_basic () =
  let t = Intern.create () in
  let p1 = Message.Pvec (vec [ 1.; 2. ]) in
  let p2 = Message.Pvec (vec [ 1.; 2. ]) in
  let p3 = Message.Pvec (vec [ 1.; 3. ]) in
  let id1 = Intern.intern t p1 in
  Alcotest.(check int) "ids are dense from 0" 0 id1;
  Alcotest.(check int) "equal payload, same id" id1 (Intern.intern t p2);
  Alcotest.(check bool)
    "distinct payload, distinct id" true
    (Intern.intern t p3 <> id1);
  Alcotest.(check int) "count" 2 (Intern.count t);
  Alcotest.(check bool)
    "canonical representative is the first seen" true
    (Intern.payload t id1 == p1);
  Alcotest.(check bool)
    "intern_payload canonicalizes" true
    (Intern.intern_payload t p2 == p1);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Intern.payload: bad id") (fun () ->
      ignore (Intern.payload t 99))

let test_intern_constructors () =
  let t = Intern.create () in
  let payloads =
    [
      Message.Pint 3;
      Message.Pvec (vec [ 3. ]);
      Message.Pparties [ 3 ];
      Message.Ppairs [ (3, vec [ 3. ]) ];
      Message.Ppairs [ (3, vec [ 3. ]); (4, vec [ 1.; 2. ]) ];
      Message.Pparties [];
      Message.Ppairs [];
    ]
  in
  let ids = List.map (Intern.intern t) payloads in
  Alcotest.(check int)
    "all constructors distinct"
    (List.length payloads)
    (List.length (List.sort_uniq compare ids));
  (* id partition = Stdlib.compare partition, on re-interning *)
  List.iter2
    (fun p id -> Alcotest.(check int) "stable on re-intern" id (Intern.intern t p))
    payloads ids

(* The partition guarantee under NaN: [Stdlib.compare] calls any two NaNs
   equal, so the interner must give every NaN-bearing-but-otherwise-equal
   vector one id — even when the NaNs have different bit patterns. *)
let test_intern_nan () =
  let t = Intern.create () in
  let quiet = Float.nan in
  let computed = 0. /. 0. in
  (* different bit pattern on most platforms *)
  let a = Intern.intern t (Message.Pvec (vec [ quiet; 1. ])) in
  let b = Intern.intern t (Message.Pvec (vec [ computed; 1. ])) in
  Alcotest.(check int) "NaN payloads share an id" a b;
  Alcotest.(check int)
    "matching Stdlib.compare" 0
    (compare [| quiet; 1. |] [| computed; 1. |]);
  let c = Intern.intern t (Message.Pvec (vec [ 1.; quiet ])) in
  Alcotest.(check bool) "NaN position still matters" true (a <> c)

let test_intern_collision_chains () =
  (* fixed one-bucket table: every payload hash-collides, correctness
     must come from the equality chain walk alone *)
  let t = Intern.create ~fixed:true ~initial_size:1 () in
  let payloads =
    List.init 64 (fun i -> Message.Pvec (vec [ float_of_int i; 0.5 ]))
  in
  let ids = List.map (Intern.intern t) payloads in
  Alcotest.(check (list int)) "dense ids in order" (List.init 64 Fun.id) ids;
  Alcotest.(check (list int))
    "chain lookups still hit" ids
    (List.map (Intern.intern t) payloads);
  Alcotest.(check int) "count" 64 (Intern.count t);
  List.iter2
    (fun p id ->
      Alcotest.(check bool) "payload round-trip" true (Intern.payload t id == p))
    payloads ids

let test_intern_reset () =
  let t = Intern.create () in
  let p = Message.Pint 7 in
  let id = Intern.intern t p in
  Intern.reset t;
  Alcotest.(check int) "count back to 0" 0 (Intern.count t);
  Alcotest.check_raises "old ids are gone"
    (Invalid_argument "Intern.payload: bad id") (fun () ->
      ignore (Intern.payload t id));
  Alcotest.(check int) "ids restart at 0" 0 (Intern.intern t (Message.Pint 9));
  Alcotest.(check int) "fresh table semantics" 1 (Intern.intern t p)

(* --- engine-level differential: byte-identical traces --- *)

(* Full ΠAA under an async heavy-tail schedule, the whole trace (sends
   with delivery times, deliveries, timers) captured via the tracer.
   Interned and Reference layers must produce traces that [compare]
   equal: the canonical payloads the fast path re-broadcasts are
   structurally equal to what the seed layer would have sent. *)
let trace_of message_layer =
  let n = 5 in
  let cfg = Config.make_exn ~n ~ts:1 ~ta:1 ~d:2 ~eps:0.1 ~delta:10 in
  let inputs =
    List.init n (fun i -> vec [ float_of_int i; float_of_int (i mod 3) ])
  in
  let engine =
    Engine.create ~seed:7L ~size_of:Message.size_of ~n
      ~policy:(Network.async_heavy_tail ~base:8) ()
  in
  let events = ref [] in
  Engine.set_tracer engine (fun ev -> events := ev :: !events);
  let parties =
    List.init n (fun i -> Party.attach ~message_layer ~cfg ~me:i engine)
  in
  List.iteri (fun i p -> Party.start p (List.nth inputs i)) parties;
  Engine.run engine;
  (List.rev !events, List.map Party.output parties, Engine.stats engine)

let test_traces_identical () =
  let ta, oa, sa = trace_of `Interned in
  let tb, ob, sb = trace_of `Reference in
  Alcotest.(check int) "trace length" (List.length tb) (List.length ta);
  Alcotest.(check bool) "traces compare equal" true (compare ta tb = 0);
  Alcotest.(check bool) "outputs compare equal" true (compare oa ob = 0);
  Alcotest.(check bool) "stats compare equal" true (compare sa sb = 0)

(* --- runner-level differential: the full scenario grid --- *)

(* Same grid shape as test_pool.ml: D 1..3, sync and async networks, a
   silent crash and an out-of-hull poisoner. Whole-record compare. *)
let grid () =
  let poison d = Behavior.Honest_with_input (Vec.make d 50.) in
  List.concat_map
    (fun (d, n, ts, ta) ->
      let cfg = Config.make_exn ~n ~ts ~ta ~d ~eps:0.1 ~delta:10 in
      let inputs =
        List.init n (fun i ->
            Vec.of_list (List.init d (fun c -> float_of_int ((i + c) mod 4))))
      in
      List.concat_map
        (fun (pname, policy, sync) ->
          List.map
            (fun (bname, corruptions) ->
              Scenario.make
                ~name:(Printf.sprintf "diff D=%d %s %s" d pname bname)
                ~seed:(Int64.of_int ((d * 131) + n))
                ~cfg ~inputs ~policy ~sync_network:sync ~corruptions ())
            [
              ("silent", [ (0, Behavior.Silent) ]);
              ("poison", [ (0, poison d) ]);
            ])
        [
          ("sync", Network.sync_uniform ~delta:10, true);
          ("async", Network.async_heavy_tail ~base:8, false);
        ])
    [ (1, 4, 1, 0); (2, 5, 1, 1); (3, 5, 1, 0) ]

let test_grid_differential () =
  List.iter
    (fun s ->
      let a = Runner.run { s with Scenario.message_layer = `Interned } in
      let b = Runner.run { s with Scenario.message_layer = `Reference } in
      (* the caches field legitimately differs: the reference layer has
         no intern table, so its hit/miss counters stay zero *)
      let b = { b with Runner.caches = a.Runner.caches } in
      Alcotest.(check bool)
        (s.Scenario.name ^ " identical across message layers")
        true
        (compare (a : Runner.result) b = 0))
    (grid ())

let () =
  Alcotest.run "intern"
    [
      ( "intern table",
        [
          Alcotest.test_case "basic interning" `Quick test_intern_basic;
          Alcotest.test_case "constructor coverage" `Quick
            test_intern_constructors;
          Alcotest.test_case "NaN partition" `Quick test_intern_nan;
          Alcotest.test_case "forced collision chains" `Quick
            test_intern_collision_chains;
          Alcotest.test_case "reset" `Quick test_intern_reset;
        ] );
      ( "differential",
        [
          Alcotest.test_case "engine traces byte-identical" `Quick
            test_traces_identical;
          Alcotest.test_case "scenario grid whole-record" `Quick
            test_grid_differential;
        ] );
    ]
