(* Tests for Overlap All-to-All Broadcast against Definition 4.3 /
   Theorem 4.4. *)

let vec1 x = Vec.of_list [ x ]

type fixture = {
  engine : Message.t Engine.t;
  obcs : (int * Obc.t) list ref;
  outputs : (int * Pairset.t * int) list ref;  (* (party, set, time) *)
}

(* An honest ΠoBC party: an rBC mux plus one oBC instance for iteration 1. *)
let wire_party f ~n ~ts ~delta i =
  let engine = f.engine in
  let obc_ref = ref None in
  let rbc_ref = ref None in
  let rbc =
    Rbc.create ~n ~t:ts
      {
        Rbc.send_all = (fun msg -> Engine.broadcast engine ~src:i msg);
        deliver =
          (fun id payload ->
            match (id.Message.tag, payload) with
            | Message.Obc_value 1, Message.Pvec v ->
                Obc.on_value (Option.get !obc_ref) ~origin:id.Message.origin v
            | _ -> ());
      }
  in
  rbc_ref := Some rbc;
  let obc =
    Obc.create ~n ~ts ~delta ~iter:1
      {
        Obc.now = (fun () -> Engine.now engine);
        set_timer =
          (fun ~at -> Engine.set_timer engine ~party:i ~at ~tag:0);
        rbc_broadcast =
          (fun payload ->
            Rbc.broadcast rbc
              { Message.tag = Message.Obc_value 1; origin = i; instance = 0 }
              payload);
        send_all = (fun msg -> Engine.broadcast engine ~src:i msg);
        output =
          (fun m -> f.outputs := (i, m, Engine.now engine) :: !(f.outputs));
      }
  in
  obc_ref := Some obc;
  Engine.set_party engine i (fun ev ->
      match ev with
      | Engine.Deliver { src; msg = Message.Rbc (id, step, payload) } ->
          Rbc.on_message rbc ~from:src id step payload
      | Engine.Deliver { src; msg = Message.Obc_report { iter = 1; pairs; _ } } ->
          Obc.on_report obc ~from:src pairs
      | Engine.Timer _ -> Obc.poke obc
      | Engine.Deliver _ -> ());
  f.obcs := (i, obc) :: !(f.obcs);
  obc

let make ?(seed = 1L) ~n ~ts ~delta ~policy ~honest () =
  let engine = Engine.create ~seed ~n ~policy () in
  let f = { engine; obcs = ref []; outputs = ref [] } in
  let handles = List.map (fun i -> (i, wire_party f ~n ~ts ~delta i)) honest in
  (f, handles)

let output_of f p =
  List.find_map
    (fun (i, m, time) -> if i = p then Some (m, time) else None)
    !(f.outputs)

let test_sync_all_honest () =
  let n = 5 and ts = 1 and delta = 10 in
  let f, handles =
    make ~n ~ts ~delta ~policy:(Network.lockstep ~delta) ~honest:[ 0; 1; 2; 3; 4 ] ()
  in
  List.iter (fun (i, obc) -> Obc.start obc (vec1 (float_of_int i))) handles;
  Engine.run f.engine;
  List.iter
    (fun (i, _) ->
      match output_of f i with
      | None -> Alcotest.failf "party %d: no output" i
      | Some (m, time) ->
          (* Synchronized Liveness: by c_oBC * delta *)
          Alcotest.(check bool) "by 5 delta" true (time <= (Params.c_obc * delta) + 2);
          (* Synchronized Overlap: all honest values present and correct *)
          List.iter
            (fun j ->
              match Pairset.find_party j m with
              | Some v ->
                  Alcotest.(check bool) "correct value" true
                    (Vec.compare v (vec1 (float_of_int j)) = 0)
              | None -> Alcotest.failf "party %d missing value of %d" i j)
            [ 0; 1; 2; 3; 4 ])
    handles

let test_sync_with_silent_corrupt () =
  let n = 5 and ts = 1 and delta = 10 in
  let honest = [ 0; 1; 2; 3 ] in
  let f, handles =
    make ~n ~ts ~delta ~policy:(Network.lockstep ~delta) ~honest ()
  in
  List.iter (fun (i, obc) -> Obc.start obc (vec1 (float_of_int i))) handles;
  Engine.run f.engine;
  List.iter
    (fun (i, _) ->
      match output_of f i with
      | None -> Alcotest.failf "party %d: no output" i
      | Some (m, _) ->
          Alcotest.(check bool) "at least n - ts values" true
            (Pairset.cardinal m >= n - ts))
    handles

let test_async_overlap () =
  (* Asynchronous scheduling that starves one honest party: outputs may
     differ but any two must share >= n - ts pairs ((ts, ta)-Overlap). *)
  let n = 5 and ts = 1 and delta = 10 in
  let honest = [ 0; 1; 2; 3; 4 ] in
  List.iter
    (fun seed ->
      let f, handles =
        make ~seed ~n ~ts ~delta
          ~policy:
            (Network.async_starve ~victims:(fun i -> i = 4) ~release:300 ~fast:3)
          ~honest ()
      in
      List.iter (fun (i, obc) -> Obc.start obc (vec1 (float_of_int i))) handles;
      Engine.run f.engine;
      let outs = List.filter_map (fun (i, _) -> Option.map fst (output_of f i)) (List.map (fun (i,o) -> (i,o)) handles) in
      Alcotest.(check int) "all honest output" 5 (List.length outs);
      List.iter
        (fun m ->
          List.iter
            (fun m' ->
              Alcotest.(check bool)
                (Printf.sprintf "overlap >= n - ts (seed %Ld)" seed)
                true
                (Pairset.cardinal (Pairset.inter m m') >= n - ts))
            outs)
        outs)
    [ 1L; 2L; 3L ]

let test_async_validity_consistency () =
  let n = 5 and ts = 1 and delta = 10 in
  let honest = [ 0; 1; 2; 3; 4 ] in
  let f, handles =
    make ~n ~ts ~delta ~policy:(Network.async_heavy_tail ~base:8) ~honest ()
  in
  List.iter (fun (i, obc) -> Obc.start obc (vec1 (float_of_int i))) handles;
  Engine.run f.engine;
  let outs =
    List.filter_map
      (fun (i, _) -> Option.map (fun (m, _) -> (i, m)) (output_of f i))
      handles
  in
  (* Validity: honest pairs carry the true value *)
  List.iter
    (fun (_, m) ->
      List.iter
        (fun j ->
          match Pairset.find_party j m with
          | Some v ->
              Alcotest.(check bool) "true value" true
                (Vec.compare v (vec1 (float_of_int j)) = 0)
          | None -> ())
        [ 0; 1; 2; 3; 4 ])
    outs;
  (* Consistency across parties *)
  List.iter
    (fun (_, m) ->
      List.iter
        (fun (_, m') ->
          List.iter
            (fun j ->
              match (Pairset.find_party j m, Pairset.find_party j m') with
              | Some v, Some v' ->
                  Alcotest.(check bool) "consistent" true (Vec.compare v v' = 0)
              | _ -> ())
            (List.init n Fun.id))
        outs)
    outs

let test_ablation_no_witnessing_loses_overlap_guarantee () =
  (* The non-witnessing variant outputs at the first deadline; under the
     same starvation schedule its output time is strictly earlier, showing
     what the witness phase costs — and E5 shows what it buys. *)
  let n = 5 and ts = 1 and delta = 10 in
  let engine = Engine.create ~seed:1L ~n ~policy:(Network.lockstep ~delta) () in
  let out_time = ref None in
  let obc_ref = ref None in
  let rbc =
    Rbc.create ~n ~t:ts
      {
        Rbc.send_all = (fun msg -> Engine.broadcast engine ~src:0 msg);
        deliver =
          (fun id payload ->
            match (id.Message.tag, payload) with
            | Message.Obc_value 1, Message.Pvec v ->
                Obc.on_value (Option.get !obc_ref) ~origin:id.Message.origin v
            | _ -> ());
      }
  in
  let obc =
    Obc.create ~witnessing:false ~n ~ts ~delta ~iter:1
      {
        Obc.now = (fun () -> Engine.now engine);
        set_timer = (fun ~at -> Engine.set_timer engine ~party:0 ~at ~tag:0);
        rbc_broadcast =
          (fun payload ->
            Rbc.broadcast rbc
              { Message.tag = Message.Obc_value 1; origin = 0; instance = 0 }
              payload);
        send_all = (fun msg -> Engine.broadcast engine ~src:0 msg);
        output = (fun _ -> out_time := Some (Engine.now engine));
      }
  in
  obc_ref := Some obc;
  Engine.set_party engine 0 (fun ev ->
      match ev with
      | Engine.Deliver { src; msg = Message.Rbc (id, step, payload) } ->
          Rbc.on_message rbc ~from:src id step payload
      | Engine.Timer _ -> Obc.poke obc
      | Engine.Deliver _ -> ());
  (* peers: plain rBC stacks so values flow *)
  List.iter
    (fun i ->
      let rbc_i =
        Rbc.create ~n ~t:ts
          {
            Rbc.send_all = (fun msg -> Engine.broadcast engine ~src:i msg);
            deliver = (fun _ _ -> ());
          }
      in
      Engine.set_party engine i (fun ev ->
          match ev with
          | Engine.Deliver { src; msg = Message.Rbc (id, step, payload) } ->
              Rbc.on_message rbc_i ~from:src id step payload
          | _ -> ());
      Rbc.broadcast rbc_i
        { Message.tag = Message.Obc_value 1; origin = i; instance = 0 }
        (Message.Pvec (vec1 (float_of_int i))))
    [ 1; 2; 3; 4 ];
  Obc.start obc (vec1 0.);
  Engine.run engine;
  match !out_time with
  | None -> Alcotest.fail "no output"
  | Some time ->
      Alcotest.(check bool) "outputs at the first deadline" true
        ((time <= (Params.c_rbc * delta) + 2))

let () =
  Alcotest.run "obc"
    [
      ( "overlap broadcast",
        [
          Alcotest.test_case "sync: all honest, 5 delta" `Quick
            test_sync_all_honest;
          Alcotest.test_case "sync: silent corrupt party" `Quick
            test_sync_with_silent_corrupt;
          Alcotest.test_case "async: pairwise overlap" `Quick test_async_overlap;
          Alcotest.test_case "async: validity and consistency" `Quick
            test_async_validity_consistency;
          Alcotest.test_case "ablation: no witnessing" `Quick
            test_ablation_no_witnessing_loses_overlap_guarantee;
        ] );
    ]
