(* The networked runtime: frame codec hardening (fuzz + property),
   perfect-link state machines against a fake clock, sim-as-oracle
   differential smoke, frame-chaos masking, and kill/reconnect replay.
   The heavyweight exhaustive differential grid lives in
   bin/net_check_main.exe (make net-check); here we pin the mechanisms
   and run a cheap slice of the grid so `dune runtest` covers the
   stack end to end. *)

let key_a = Auth.of_master 0x5EED_0001L
let keys_of_master master ~src:_ ~dst:_ = Auth.of_master master
let key_of = keys_of_master 0x5EED_0001L

let frame ?(ftype = Wire.Data) ?(src = 0) ?(dst = 1) ?(seq = 7L) ?(ack = 3L)
    payload =
  { Wire.ftype; src; dst; seq; ack; payload = Bytes.of_string payload }

let frame_eq (a : Wire.frame) (b : Wire.frame) =
  a.Wire.ftype = b.Wire.ftype && a.src = b.src && a.dst = b.dst
  && a.seq = b.seq && a.ack = b.ack
  && Bytes.equal a.payload b.payload

(* -- codec: roundtrip and rejection ------------------------------------ *)

let gen_frame =
  QCheck.Gen.(
    let* ft = oneofl [ Wire.Hello; Wire.Data; Wire.Ack ] in
    let* src = int_range 0 7 in
    let* dst = int_range 0 7 in
    let* seq = map Int64.of_int (int_range 0 1_000_000) in
    let* ack = map Int64.of_int (int_range 0 1_000_000) in
    let* payload = string_size (int_range 0 2048) in
    return (frame ~ftype:ft ~src ~dst ~seq ~ack payload))

let arb_frame = QCheck.make gen_frame

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:300 arb_frame
    (fun f ->
      match Wire.decode_exact ~n:8 ~key_of (Wire.encode ~key:key_a f) with
      | Ok g -> frame_eq f g
      | Error _ -> false)

let prop_bit_flip =
  QCheck.Test.make ~name:"any single flipped bit is rejected" ~count:300
    QCheck.(pair arb_frame (int_bound 100_000))
    (fun (f, r) ->
      let b = Wire.encode ~key:key_a f in
      let bit = r mod (8 * Bytes.length b) in
      let i = bit / 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
      match Wire.decode_exact ~n:8 ~key_of b with
      | Ok _ -> false
      | Error _ -> true)

let prop_garbage =
  QCheck.Test.make ~name:"random bytes never crash the decoder" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 4096))
    (fun s ->
      let d = Wire.decoder ~n:8 ~key_of in
      Wire.feed d (Bytes.of_string s) ~off:0 ~len:(String.length s);
      (* drain until the decoder wants more bytes or poisons the
         stream; any outcome except an escaping exception passes *)
      let rec drain () =
        match Wire.next d with
        | Ok (Some _) -> drain ()
        | Ok None | Error _ -> true
      in
      drain ())

let test_torn_tails () =
  let b = Wire.encode ~key:key_a (frame "torn-tail payload") in
  for len = 0 to Bytes.length b - 1 do
    (* exact decode: a truncated buffer is a structured Short_frame *)
    (match Wire.decode_exact ~n:8 ~key_of (Bytes.sub b 0 len) with
    | Error Wire.Short_frame -> ()
    | Ok _ -> Alcotest.failf "prefix %d decoded" len
    | Error e ->
        Alcotest.failf "prefix %d: %s" len (Format.asprintf "%a" Wire.pp_error e));
    (* incremental decode: a torn tail just waits for more bytes *)
    let d = Wire.decoder ~n:8 ~key_of in
    Wire.feed d b ~off:0 ~len;
    match Wire.next d with
    | Ok None -> ()
    | Ok (Some _) -> Alcotest.failf "incremental prefix %d decoded" len
    | Error e ->
        Alcotest.failf "incremental prefix %d: %s" len
          (Format.asprintf "%a" Wire.pp_error e)
  done

let test_oversize () =
  let b = Wire.encode ~key:key_a (frame "x") in
  (* length field lives at bytes 5..8 (magic·ver·type·src·dst first) *)
  for i = 5 to 8 do
    Bytes.set b i '\xff'
  done;
  match Wire.decode_exact ~n:8 ~key_of b with
  | Error (Wire.Oversize _) -> ()
  | Ok _ -> Alcotest.fail "oversize length accepted"
  | Error e ->
      Alcotest.failf "expected Oversize, got %s"
        (Format.asprintf "%a" Wire.pp_error e)

let test_bad_mac () =
  let b = Wire.encode ~key:key_a (frame "macced") in
  match Wire.decode_exact ~n:8 ~key_of:(keys_of_master 0xBAD_0002L) b with
  | Error Wire.Bad_mac -> ()
  | Ok _ -> Alcotest.fail "wrong-key frame accepted"
  | Error e ->
      Alcotest.failf "expected Bad_mac, got %s"
        (Format.asprintf "%a" Wire.pp_error e)

let test_bad_magic () =
  let b = Wire.encode ~key:key_a (frame "m") in
  Bytes.set b 0 '\x00';
  match Wire.decode_exact ~n:8 ~key_of b with
  | Error (Wire.Bad_magic _) -> ()
  | _ -> Alcotest.fail "expected Bad_magic"

let test_chunked_stream () =
  let frames =
    [ frame ~seq:1L "alpha"; frame ~ftype:Wire.Ack ~seq:0L ~ack:9L "";
      frame ~seq:2L (String.make 600 'z') ]
  in
  let stream =
    Bytes.concat Bytes.empty (List.map (Wire.encode ~key:key_a) frames)
  in
  let d = Wire.decoder ~n:8 ~key_of in
  let got = ref [] in
  (* worst-case framing: the stream arrives one byte at a time *)
  for i = 0 to Bytes.length stream - 1 do
    Wire.feed d stream ~off:i ~len:1;
    let rec drain () =
      match Wire.next d with
      | Ok (Some f) ->
          got := f :: !got;
          drain ()
      | Ok None -> ()
      | Error e ->
          Alcotest.failf "decode error: %s" (Format.asprintf "%a" Wire.pp_error e)
    in
    drain ()
  done;
  let got = List.rev !got in
  Alcotest.(check int) "all frames recovered" (List.length frames)
    (List.length got);
  List.iter2
    (fun a b -> Alcotest.(check bool) "frame equal" true (frame_eq a b))
    frames got

(* -- perfect link against a fake clock --------------------------------- *)

let mk_sender ?window ?(rto0 = 8) ?(rto_max = 32) () =
  Link.sender ?window ~rto0 ~rto_max ~rng:(Rng.create 99L) ()

(* Collect the ticks at which [seq] is (re)transmitted, scanning the
   fake clock one tick at a time. *)
let fire_times s ~upto =
  let fires = ref [] in
  for t = 0 to upto do
    List.iter (fun (seq, _) -> fires := (t, seq) :: !fires) (Link.due s ~now:t)
  done;
  List.rev !fires

let test_exact_schedule () =
  (* rto0=1, rto_max=2 keeps every rto below the jitter threshold (4),
     so the schedule is exact: fire at 0, then gaps 1, 2, 2, 2, ... *)
  let s = Link.sender ~rto0:1 ~rto_max:2 ~rng:(Rng.create 5L) () in
  (match Link.submit s ~now:0 (Bytes.of_string "p") with
  | `Accepted 1 -> ()
  | _ -> Alcotest.fail "first submit should be seq 1");
  let fires = List.map fst (fire_times s ~upto:12) in
  Alcotest.(check (list int)) "exact retransmit schedule"
    [ 0; 1; 3; 5; 7; 9; 11 ] fires;
  Alcotest.(check int) "retransmit count excludes first tx" 6
    (Link.retransmits s)

let test_backoff_bounds () =
  (* with jitter active the gaps must stay in [rto_k, rto_k + rto_k/4],
     rto doubling from rto0 and capping at rto_max *)
  let s = mk_sender ~rto0:8 ~rto_max:32 () in
  ignore (Link.submit s ~now:0 (Bytes.of_string "p"));
  let fires = List.map fst (fire_times s ~upto:400) in
  Alcotest.(check bool) "enough fires observed" true (List.length fires >= 6);
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  List.iteri
    (fun k gap ->
      let rto = min (8 * (1 lsl k)) 32 in
      if gap < rto || gap > rto + (rto / 4) then
        Alcotest.failf "gap %d (retransmission %d) outside [%d, %d]" gap
          (k + 1) rto
          (rto + (rto / 4)))
    (gaps fires)

let test_ack_cancels () =
  let s = mk_sender () in
  List.iter
    (fun p -> ignore (Link.submit s ~now:0 (Bytes.of_string p)))
    [ "a"; "b"; "c" ];
  Alcotest.(check int) "three harvested" 3 (List.length (Link.due s ~now:0));
  Alcotest.(check int) "cumulative ack frees two" 2 (Link.on_ack s ~ack:2);
  Alcotest.(check int) "one left in flight" 1 (Link.in_flight s);
  (* far in the future only seq 3's timer is still armed *)
  Alcotest.(check (list int)) "only unacked entry retransmits" [ 3 ]
    (List.map fst (Link.due s ~now:1000));
  Alcotest.(check int) "re-acking is idempotent" 0 (Link.on_ack s ~ack:2)

let test_backpressure () =
  let s = mk_sender ~window:2 () in
  ignore (Link.submit s ~now:0 (Bytes.of_string "a"));
  ignore (Link.submit s ~now:0 (Bytes.of_string "b"));
  (match Link.submit s ~now:0 (Bytes.of_string "c") with
  | `Backpressure -> ()
  | `Accepted _ -> Alcotest.fail "window overrun accepted");
  ignore (Link.on_ack s ~ack:1);
  match Link.submit s ~now:0 (Bytes.of_string "c") with
  | `Accepted 3 -> ()
  | `Accepted n -> Alcotest.failf "freed slot got seq %d" n
  | `Backpressure -> Alcotest.fail "freed slot still backpressured"

let test_mark_replay () =
  let s = mk_sender ~rto0:8 ~rto_max:32 () in
  ignore (Link.submit s ~now:0 (Bytes.of_string "a"));
  ignore (Link.submit s ~now:0 (Bytes.of_string "b"));
  ignore (Link.due s ~now:0);
  Alcotest.(check (list int)) "timers armed, nothing due yet" []
    (List.map fst (Link.due s ~now:1));
  (* reconnect: the whole unacked backlog replays immediately *)
  Link.mark_replay s;
  Alcotest.(check (list int)) "backlog due at once" [ 1; 2 ]
    (List.map fst (Link.due s ~now:1))

let test_receiver_order_dedup () =
  let r = Link.receiver () in
  let p s = Bytes.of_string s in
  Alcotest.(check int) "early arrival buffered" 0
    (List.length (Link.on_data r ~seq:2 (p "two")));
  Alcotest.(check (list string)) "in-order drain" [ "one"; "two" ]
    (List.map Bytes.to_string (Link.on_data r ~seq:1 (p "one")));
  Alcotest.(check int) "cumulative ack" 2 (Link.cumulative_ack r);
  Alcotest.(check int) "replay suppressed" 0
    (List.length (Link.on_data r ~seq:1 (p "one")));
  Alcotest.(check int) "replay counted" 1 (Link.duplicates r);
  Alcotest.(check int) "ack unchanged by replay" 2 (Link.cumulative_ack r)

let test_receiver_window () =
  let r = Link.receiver ~window:4 () in
  Alcotest.(check int) "beyond reorder window: dropped" 0
    (List.length (Link.on_data r ~seq:6 (Bytes.of_string "far")));
  Alcotest.(check int) "within window: buffered" 0
    (List.length (Link.on_data r ~seq:4 (Bytes.of_string "four")));
  Alcotest.(check int) "no dup counted for the drop" 0 (Link.duplicates r)

(* -- sim-as-oracle slice + chaos masking ------------------------------- *)

let grid_case name =
  match
    List.find_opt
      (fun s -> s.Scenario.name = name)
      (Differential.pinned_grid ())
  with
  | Some s -> s
  | None -> Alcotest.failf "pinned grid lost case %s" name

let check_verdict name =
  let v = Differential.run_case (grid_case name) in
  Alcotest.(check bool)
    (name ^ ": net run identical to sim oracle")
    true v.Differential.net_ok;
  Alcotest.(check bool)
    (name ^ ": chaos fully masked")
    true v.Differential.chaos_ok;
  Alcotest.(check bool) (name ^ ": monitor clean") true
    v.Differential.monitor_clean;
  Alcotest.(check bool)
    (name ^ ": no logical loss")
    true
    Netrun.(
      v.Differential.chaos_wire.logical_sent
      = v.Differential.chaos_wire.logical_delivered)

let test_differential_slice () =
  check_verdict "diff-d1-n4-sync-lockstep-clean";
  check_verdict "diff-d2-n4-sync-lockstep-silent"

(* -- kill/reconnect replay --------------------------------------------- *)

let reconnect_cfg = lazy (Config.make_exn ~n:4 ~ts:1 ~ta:0 ~d:2 ~eps:0.05 ~delta:4)

let reconnect_engine () =
  Engine.create ~seed:42L ~size_of:Message.size_of ~n:4
    ~policy:(Network.lockstep ~delta:4) ()

let reconnect_setup engine =
  let cfg = Lazy.force reconnect_cfg in
  let parties = List.init 4 (fun i -> Party.attach ~cfg ~me:i engine) in
  List.iteri
    (fun i p ->
      Party.start p (Vec.of_list [ float_of_int i; float_of_int (i mod 2) ]))
    parties;
  parties

let outcome engine parties =
  (List.map Party.output parties, Engine.stats engine)

let test_kill_reconnect () =
  (* sim oracle *)
  let e0 = reconnect_engine () in
  let p0 = reconnect_setup e0 in
  Engine.run e0;
  let reference = outcome e0 p0 in
  (* net arm: kill two connections mid-protocol; the supervisor must
     re-dial and both directions must replay their unacked backlog.
     pump_budget is the wall watchdog — a wedged wire raises a
     structured Failure instead of hanging the test. *)
  let e1 = reconnect_engine () in
  let nr = Netrun.attach ~rto0:4 ~pump_budget:30. e1 in
  Fun.protect ~finally:(fun () -> Netrun.close nr) @@ fun () ->
  let p1 = reconnect_setup e1 in
  Engine.run ~until:6 e1;
  Netrun.kill_connection nr ~a:0 ~b:1;
  Netrun.kill_connection nr ~a:0 ~b:2;
  Engine.run e1;
  let s = Netrun.stats nr in
  Alcotest.(check bool) "byte-identical to the sim oracle" true
    (outcome e1 p1 = reference);
  Alcotest.(check bool) "both kills re-established" true
    (s.Netrun.reconnects >= 2);
  Alcotest.(check bool) "no logical loss across reconnect" true
    Netrun.(s.logical_sent = s.logical_delivered)

(* -- the front door ----------------------------------------------------- *)

let good_line =
  "agree v=1 d=1 eps=0.1 delta=4 ts=1 ta=0 inputs=0;1;0.5;0.25"

let test_parse_request () =
  (match Serve.parse_request good_line with
  | Ok r ->
      Alcotest.(check int) "d" 1 r.Serve.d;
      Alcotest.(check int) "n from inputs" 4 (List.length r.Serve.inputs);
      Alcotest.(check bool) "default transport sim" true (r.Serve.transport = `Sim)
  | Error e -> Alcotest.failf "good line rejected: %s" e);
  let is_err line =
    match Serve.parse_request line with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "bad version" true (is_err "agree v=2 d=1 eps=0.1 delta=4 ts=1 ta=0 inputs=0;1");
  Alcotest.(check bool) "missing field" true (is_err "agree v=1 d=1 eps=0.1 delta=4 ts=1 inputs=0;1");
  Alcotest.(check bool) "bad float" true (is_err "agree v=1 d=1 eps=x delta=4 ts=1 ta=0 inputs=0;1");
  Alcotest.(check bool) "dim mismatch" true (is_err "agree v=1 d=2 eps=0.1 delta=4 ts=1 ta=0 inputs=0;1");
  Alcotest.(check bool) "bad transport" true
    (is_err "agree v=1 d=1 eps=0.1 delta=4 ts=1 ta=0 transport=udp inputs=0;1");
  Alcotest.(check bool) "unknown verb" true (is_err "decide v=1 d=1");
  Alcotest.(check bool) "crlf tolerated" true
    (match Serve.parse_request (good_line ^ "\r") with Ok _ -> true | Error _ -> false)

let test_handle_batch () =
  let resps =
    Serve.handle_batch
      [ good_line; "agree v=1 d=1 eps=0.1 delta=4 ts=9 ta=9 inputs=0;1";
        good_line ]
  in
  Alcotest.(check int) "one response per request" 3 (List.length resps);
  (match resps with
  | [ a; b; c ] ->
      Alcotest.(check bool) "first ok" true (String.length a > 2 && String.sub a 0 2 = "ok");
      Alcotest.(check bool) "infeasible answers err in place" true
        (String.length b > 3 && String.sub b 0 3 = "err");
      Alcotest.(check string) "identical requests, identical answers" a c
  | _ -> assert false)

let test_serve_e2e () =
  let port = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        Serve.serve ~domains:1 ~max_conns:1
          ~announce:(fun p -> Atomic.set port p)
          ~port:0 ())
  in
  let rec wait_port n =
    if Atomic.get port <> 0 then Atomic.get port
    else if n = 0 then Alcotest.fail "server never announced a port"
    else begin
      Unix.sleepf 0.01;
      wait_port (n - 1)
    end
  in
  let p = wait_port 500 in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  (* one sim request and the same agreement over the real TCP backend:
     the front door must answer both, and identically *)
  output_string oc (good_line ^ "\n");
  output_string oc
    "agree v=1 d=1 eps=0.1 delta=4 ts=1 ta=0 transport=net \
     inputs=0;1;0.5;0.25\n";
  flush oc;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let r1 = input_line ic in
  let r2 = input_line ic in
  Domain.join server;
  Alcotest.(check bool) "sim answer ok" true (String.sub r1 0 2 = "ok");
  Alcotest.(check string) "net backend answers byte-identically" r1 r2

let () =
  Alcotest.run "net"
    [
      ( "wire codec",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_bit_flip;
          QCheck_alcotest.to_alcotest prop_garbage;
          Alcotest.test_case "torn tails wait or Short_frame" `Quick
            test_torn_tails;
          Alcotest.test_case "oversized length prefix" `Quick test_oversize;
          Alcotest.test_case "MAC mismatch" `Quick test_bad_mac;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "byte-at-a-time stream" `Quick test_chunked_stream;
        ] );
      ( "perfect link",
        [
          Alcotest.test_case "exact retransmit schedule" `Quick
            test_exact_schedule;
          Alcotest.test_case "backoff doubling, cap, jitter bounds" `Quick
            test_backoff_bounds;
          Alcotest.test_case "cumulative ack cancels timers" `Quick
            test_ack_cancels;
          Alcotest.test_case "window backpressure" `Quick test_backpressure;
          Alcotest.test_case "replay on reconnect" `Quick test_mark_replay;
          Alcotest.test_case "receiver order + dedup" `Quick
            test_receiver_order_dedup;
          Alcotest.test_case "receiver reorder window" `Quick
            test_receiver_window;
        ] );
      ( "sim as oracle",
        [
          Alcotest.test_case "differential slice + chaos mask" `Slow
            test_differential_slice;
          Alcotest.test_case "kill two connections mid-run" `Slow
            test_kill_reconnect;
        ] );
      ( "front door",
        [
          Alcotest.test_case "request parsing" `Quick test_parse_request;
          Alcotest.test_case "batch core ordering" `Quick test_handle_batch;
          Alcotest.test_case "socket end-to-end (sim + net)" `Slow
            test_serve_e2e;
        ] );
    ]
