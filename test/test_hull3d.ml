(* The exact D = 3 kernel, differentially against the LP-backed oracle.

   Hull3d is the fast path for D = 3 safe areas; Hullset.Reference (the
   seed one-shot LP implementation) is the ground truth it must agree
   with: containment both ways at ε and diameter within tolerance, over
   random and adversarial point sets. All grids are seeded with the
   repo's SplitMix64 generator, so the cases — and hence the verdicts —
   are identical on every run. *)

let vec3 x y z = Vec.of_list [ x; y; z ]

let poly_exn = function
  | `Poly p -> p
  | `Degenerate -> Alcotest.fail "unexpected `Degenerate"

(* --- unit tests on the primitives --- *)

let unit_cube_pts =
  [
    vec3 0. 0. 0.;
    vec3 1. 0. 0.;
    vec3 0. 1. 0.;
    vec3 1. 1. 0.;
    vec3 0. 0. 1.;
    vec3 1. 0. 1.;
    vec3 0. 1. 1.;
    vec3 1. 1. 1.;
  ]

let test_cube () =
  let p = poly_exn (Hull3d.of_points unit_cube_pts) in
  Alcotest.(check int) "6 faces" 6 (Hull3d.nfaces p);
  Alcotest.(check int) "8 vertices" 8 (List.length (Hull3d.vertices p));
  Alcotest.(check (float 1e-9)) "diameter √3" (sqrt 3.) (Hull3d.diameter p);
  let c = Hull3d.centroid p in
  Alcotest.(check (float 1e-9)) "centroid x" 0.5 (Vec.get c 0);
  Alcotest.(check bool) "contains centre" true
    (Hull3d.contains p (vec3 0.5 0.5 0.5));
  Alcotest.(check bool) "excludes outside" false
    (Hull3d.contains p (vec3 1.5 0.5 0.5))

let test_cube_interior_ignored () =
  (* interior and duplicate generators change nothing *)
  let p =
    poly_exn
      (Hull3d.of_points
         (unit_cube_pts @ [ vec3 0.5 0.5 0.5; vec3 1. 1. 1.; vec3 0.25 0.5 0.5 ]))
  in
  Alcotest.(check int) "still 6 faces" 6 (Hull3d.nfaces p);
  Alcotest.(check int) "still 8 vertices" 8 (List.length (Hull3d.vertices p))

let test_tetrahedron () =
  let p =
    poly_exn
      (Hull3d.of_points
         [ vec3 0. 0. 0.; vec3 2. 0. 0.; vec3 0. 2. 0.; vec3 0. 0. 2. ])
  in
  Alcotest.(check int) "4 faces" 4 (Hull3d.nfaces p);
  Alcotest.(check int) "4 vertices" 4 (List.length (Hull3d.vertices p));
  let a, b = Hull3d.diameter_pair p in
  Alcotest.(check (float 1e-9)) "diameter 2√2" (2. *. sqrt 2.) (Vec.dist a b)

let test_degenerate_inputs () =
  let deg pts =
    match Hull3d.of_points pts with `Degenerate -> true | `Poly _ -> false
  in
  Alcotest.(check bool) "too few points" true
    (deg [ vec3 0. 0. 0.; vec3 1. 0. 0.; vec3 0. 1. 0. ]);
  Alcotest.(check bool) "coplanar" true
    (deg [ vec3 0. 0. 0.; vec3 1. 0. 0.; vec3 0. 1. 0.; vec3 1. 1. 0. ]);
  Alcotest.(check bool) "collinear" true
    (deg [ vec3 0. 0. 0.; vec3 1. 1. 1.; vec3 2. 2. 2.; vec3 3. 3. 3. ]);
  Alcotest.(check bool) "all equal" true
    (deg (List.init 5 (fun _ -> vec3 1. 2. 3.)))

let test_inter_hulls () =
  let shift d = List.map (fun v -> Vec.add v (vec3 d 0. 0.)) unit_cube_pts in
  (* overlapping cubes: a 0.5 × 1 × 1 box *)
  (match
     Hull3d.inter_hulls
       [| Array.of_list unit_cube_pts; Array.of_list (shift 0.5) |]
   with
  | `Poly p ->
      Alcotest.(check (float 1e-9))
        "slab diameter" (sqrt 2.25) (Hull3d.diameter p);
      Alcotest.(check bool) "slab member" true
        (Hull3d.contains p (vec3 0.75 0.5 0.5));
      Alcotest.(check bool) "slab non-member" false
        (Hull3d.contains p (vec3 0.25 0.5 0.5))
  | `Empty | `Degenerate -> Alcotest.fail "expected a proper intersection");
  (* disjoint cubes *)
  match
    Hull3d.inter_hulls
      [| Array.of_list unit_cube_pts; Array.of_list (shift 3.) |]
  with
  | `Empty -> ()
  | `Poly _ | `Degenerate -> Alcotest.fail "expected `Empty"

(* --- differential grid vs the LP oracle --- *)

let eps_member = 1e-6

(* One case: compare the Safe_area D = 3 result against the reference
   one-shot LP queries on the very same trimmed-subset family. *)
let check_case ~name ~t pts =
  let vs = Array.of_list pts in
  Array.sort Vec.compare vs;
  (* t < |M| is a caller invariant of Safe_area.compute *)
  match Safe_area.compute_arr ~t vs with
  | None ->
      (* the exact kernel never decides emptiness alone: the LP must agree *)
      let hs = Hullset.of_arrays (Restrict.subsets_arr ~t vs) in
      Alcotest.(check bool) (name ^ ": reference agrees empty") true
        (Hullset.is_empty hs)
  | Some (Safe_area.Spatial p) -> (
      let hs = Hullset.of_arrays (Restrict.subsets_arr ~t vs) in
      (* every polytope vertex is in the reference intersection *)
      List.iter
        (fun v ->
          if not (Hullset.contains ~eps:eps_member hs v) then
            Alcotest.failf "%s: hull3d vertex %s outside reference" name
              (Vec.to_string v))
        (Hull3d.vertices p);
      (* the reference's witness points are in the polytope *)
      (match Hullset.Reference.find_point hs with
      | None -> Alcotest.failf "%s: reference empty but hull3d non-empty" name
      | Some q ->
          Alcotest.(check bool)
            (name ^ ": reference point inside")
            true
            (Hull3d.contains ~eps:eps_member p q));
      match Hullset.Reference.diameter_pair hs with
      | None -> Alcotest.failf "%s: reference diameter missing" name
      | Some (a, b) ->
          Alcotest.(check bool)
            (name ^ ": reference pair inside")
            true
            (Hull3d.contains ~eps:eps_member p a
            && Hull3d.contains ~eps:eps_member p b);
          let d3 = Hull3d.diameter p and dref = Vec.dist a b in
          (* the exact diameter dominates the LP search's lower bound and
             stays within its convergence band *)
          if d3 +. 1e-6 < dref then
            Alcotest.failf "%s: exact diameter %.9g below reference %.9g" name
              d3 dref;
          if d3 > (dref *. 1.25) +. 1e-6 then
            Alcotest.failf
              "%s: exact diameter %.9g implausibly above reference %.9g" name
              d3 dref)
  | Some (Safe_area.Implicit _) ->
      (* degenerate fallback: the LP kernel is the oracle itself; nothing to
         compare, but the arm choice must be deterministic — recompute *)
      let again =
        match Safe_area.compute_arr ~t vs with
        | Some (Safe_area.Implicit _) -> true
        | _ -> false
      in
      Alcotest.(check bool) (name ^ ": fallback deterministic") true again
  | Some _ -> Alcotest.failf "%s: non-D-3 representation" name

let test_differential_random () =
  let rng = Rng.create 2026L in
  for n = 4 to 8 do
    for t = 1 to min 2 (n - 2) do
      for rep = 1 to 6 do
        let pts =
          List.init n (fun _ ->
              vec3
                (Rng.float_range rng (-10.) 10.)
                (Rng.float_range rng (-10.) 10.)
                (Rng.float_range rng (-10.) 10.))
        in
        check_case ~name:(Printf.sprintf "rand n=%d t=%d rep=%d" n t rep) ~t
          pts
      done
    done
  done

let test_differential_adversarial () =
  let rng = Rng.create 4096L in
  (* clustered: two tight clouds far apart *)
  for rep = 1 to 4 do
    let cloud c k =
      List.init k (fun _ ->
          Vec.add c
            (vec3
               (Rng.float_range rng (-0.01) 0.01)
               (Rng.float_range rng (-0.01) 0.01)
               (Rng.float_range rng (-0.01) 0.01)))
    in
    check_case
      ~name:(Printf.sprintf "clusters rep=%d" rep)
      ~t:1
      (cloud (vec3 (-5.) 0. 0.) 4 @ cloud (vec3 5. 1. 1.) 4)
  done;
  (* duplicates surviving the trim *)
  check_case ~name:"duplicates" ~t:1
    [
      vec3 0. 0. 0.;
      vec3 0. 0. 0.;
      vec3 4. 0. 0.;
      vec3 0. 4. 0.;
      vec3 0. 0. 4.;
      vec3 1. 1. 1.;
    ];
  (* coplanar multiset: must fall back (degenerate) and stay consistent *)
  check_case ~name:"coplanar" ~t:1
    [
      vec3 0. 0. 0.;
      vec3 1. 0. 0.;
      vec3 0. 1. 0.;
      vec3 1. 1. 0.;
      vec3 0.5 0.5 0.;
    ];
  (* near-coplanar: thickness far below the membership tolerance *)
  check_case ~name:"near-coplanar" ~t:1
    [
      vec3 0. 0. 0.;
      vec3 1. 0. 0.;
      vec3 0. 1. 0.;
      vec3 1. 1. 1e-12;
      vec3 0.5 0.25 0.;
    ];
  (* simplex corners with an outlier the trim removes *)
  check_case ~name:"simplex+outlier" ~t:1
    [
      vec3 0. 0. 0.;
      vec3 10. 0. 0.;
      vec3 0. 10. 0.;
      vec3 0. 0. 10.;
      vec3 3. 3. 3.;
      vec3 1000. 1000. 1000.;
    ];
  (* a scaled-down copy of the same shape: tolerance must be relative *)
  check_case ~name:"tiny scale" ~t:1
    (List.map
       (fun v -> Vec.scale 1e-6 v)
       [
         vec3 0. 0. 0.;
         vec3 10. 0. 0.;
         vec3 0. 10. 0.;
         vec3 0. 0. 10.;
         vec3 3. 3. 3.;
         vec3 9. 9. 9.;
       ])

(* --- the centroid update kernel stays inside the area --- *)

let test_centroid_value_in_area () =
  let rng = Rng.create 77L in
  for d = 1 to 4 do
    for rep = 1 to 8 do
      let n = 5 + (rep mod 3) in
      let pts =
        List.init n (fun _ ->
            Vec.of_list
              (List.init d (fun _ -> Rng.float_range rng (-10.) 10.)))
      in
      let vs = Array.of_list pts in
      match Safe_area.compute_arr ~t:1 vs with
      | None -> ()
      | Some area ->
          let c = Safe_area.centroid_value area in
          Alcotest.(check bool)
            (Printf.sprintf "centroid in area d=%d rep=%d" d rep)
            true
            (Safe_area.contains ~eps:1e-6 area c);
          (match Safe_area.centroid_value_arr ~t:1 vs with
          | Some c' ->
              Alcotest.(check bool) "centroid_value_arr consistent" true
                (Vec.compare c c' = 0)
          | None -> Alcotest.fail "centroid_value_arr empty");
          (* D = 1: the interval centroid IS the midpoint rule *)
          if d = 1 then
            match Safe_area.new_value_arr ~t:1 vs with
            | Some m ->
                Alcotest.(check bool) "1-D centroid ≡ midpoint" true
                  (Vec.compare c m = 0)
            | None -> Alcotest.fail "midpoint missing"
    done
  done

let () =
  Alcotest.run "hull3d"
    [
      ( "primitives",
        [
          Alcotest.test_case "unit cube" `Quick test_cube;
          Alcotest.test_case "interior points ignored" `Quick
            test_cube_interior_ignored;
          Alcotest.test_case "tetrahedron" `Quick test_tetrahedron;
          Alcotest.test_case "degenerate inputs" `Quick test_degenerate_inputs;
          Alcotest.test_case "hull intersection" `Quick test_inter_hulls;
        ] );
      ( "differential",
        [
          Alcotest.test_case "random grid vs reference" `Quick
            test_differential_random;
          Alcotest.test_case "adversarial sets vs reference" `Quick
            test_differential_adversarial;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "centroid value stays in area" `Quick
            test_centroid_value_in_area;
        ] );
    ]
