(* The multi-instance engine: the differential grid (multiplexed runs
   byte-identical to their sequential references) plus targeted
   cross-instance isolation checks for the shared caches. *)

let cfg1 () = Config.make_exn ~n:4 ~ts:1 ~ta:1 ~d:1 ~eps:0.05 ~delta:4

(* --- the grid --- *)

let test_grid () =
  match Multi_runner.check_grid () with
  | [] -> ()
  | failures ->
      Alcotest.failf "differential grid: %d mismatches:\n%s"
        (List.length failures)
        (String.concat "\n" failures)

(* --- admission --- *)

let test_admission () =
  let cfg = cfg1 () in
  let inputs = List.init 4 (fun i -> Vec.of_list [ float_of_int i ]) in
  let ok = Scenario.make ~cfg ~inputs () in
  Alcotest.(check bool) "plain sim scenario muxable" true
    (Multi_runner.muxable ok);
  Alcotest.(check bool) "net transport rejected" false
    (Multi_runner.muxable { ok with Scenario.transport = `Net });
  Alcotest.(check bool) "isolate rejected" false
    (Multi_runner.muxable { ok with Scenario.isolate = true });
  Alcotest.(check bool) "event budget rejected" false
    (Multi_runner.muxable
       {
         ok with
         Scenario.budget =
           { Scenario.max_events = Some 1000; wall_seconds = None };
       });
  Alcotest.(check bool) "equivocator rejected" false
    (Multi_runner.muxable
       {
         ok with
         Scenario.corruptions =
           [ (3, Behavior.Equivocate (Vec.of_list [ 0. ], Vec.of_list [ 1. ])) ];
       });
  Alcotest.(check bool) "silent admitted" true
    (Multi_runner.muxable
       { ok with Scenario.corruptions = [ (3, Behavior.Silent) ] });
  Alcotest.check_raises "run_group refuses inadmissible"
    (Invalid_argument
       "Multi_runner: scenario \"scenario\" is not admissible (needs Sim \
        transport, no chaos/isolate/max_events, batch_window 1, and only \
        Silent/Honest_with_input corruptions)")
    (fun () ->
      ignore
        (Multi_runner.run_group [ { ok with Scenario.transport = `Net } ]))

(* --- shared-cache isolation --- *)

(* Two co-resident instances with deliberately different inputs (hence
   different payloads and different safe-area multisets) must produce
   exactly the outputs of their dedicated runs: shared Intern tables may
   not leak ids across instances, and the shared Safe_cache may not leak
   values across distinct multisets. *)
let test_cache_isolation () =
  let cfg = cfg1 () in
  let mk i =
    Scenario.make
      ~name:(Printf.sprintf "iso#%d" i)
      ~seed:(Int64.of_int (100 + i))
      ~cfg
      ~inputs:
        (List.init 4 (fun p ->
             Vec.of_list [ (float_of_int (i + 1) *. 10.) +. float_of_int p ]))
      ()
  in
  let scens = [ mk 0; mk 1; mk 2 ] in
  let seq = List.map (fun s -> Runner.run s) scens in
  let mux = Multi_runner.run_group scens in
  List.iter2
    (fun (a : Runner.result) (b : Runner.result) ->
      Alcotest.(check bool)
        (a.Runner.scenario_name ^ " outputs identical")
        true
        (a.Runner.outputs = b.Runner.outputs);
      Alcotest.(check bool)
        (a.Runner.scenario_name ^ " histories identical")
        true
        (a.Runner.histories = b.Runner.histories))
    seq mux;
  (* all three instances share one (D, ts, ta) cache class: the shared
     totals must cover at least each instance's own misses, and hits must
     appear once instances replay each other's multisets within an
     instance (every instance still hits on its own parties' repeats) *)
  let shared = (List.hd mux).Runner.caches in
  let own =
    List.fold_left
      (fun acc (r : Runner.result) ->
        acc + r.Runner.caches.Runner.safe_misses)
      0 seq
  in
  Alcotest.(check bool) "shared cache deduplicates kernel work" true
    (shared.Runner.safe_misses <= own);
  Alcotest.(check bool) "shared totals replicated per result" true
    (List.for_all
       (fun (r : Runner.result) -> r.Runner.caches = shared)
       mux)

(* NaN payload canonicalisation must survive table sharing: a poisoned
   instance emitting NaN coordinates may not perturb a clean co-resident
   instance. *)
let test_nan_partition () =
  let cfg = cfg1 () in
  let clean =
    Scenario.make ~name:"nan-clean" ~seed:7L ~cfg
      ~inputs:(List.init 4 (fun p -> Vec.of_list [ float_of_int p ]))
      ()
  in
  let poisoned =
    Scenario.make ~name:"nan-poison" ~seed:8L ~cfg
      ~inputs:(List.init 4 (fun p -> Vec.of_list [ float_of_int p ]))
      ~corruptions:[ (3, Behavior.Honest_with_input (Vec.of_list [ Float.nan ])) ]
      ()
  in
  let seq = List.map (fun s -> Runner.run s) [ clean; poisoned ] in
  let mux = Multi_runner.run_group [ clean; poisoned ] in
  List.iter2
    (fun (a : Runner.result) (b : Runner.result) ->
      Alcotest.(check bool)
        (a.Runner.scenario_name ^ " outputs identical")
        true
        (a.Runner.outputs = b.Runner.outputs))
    seq mux

(* --- run_many --- *)

let test_run_many_mixed () =
  let cfg = cfg1 () in
  let mk ?(net = false) i =
    Scenario.make
      ~name:(Printf.sprintf "many#%d" i)
      ~seed:(Int64.of_int (50 + i))
      ~transport:(if net then `Net else `Sim)
      ~cfg
      ~inputs:(List.init 4 (fun p -> Vec.of_list [ float_of_int (p + i) ]))
      ()
  in
  (* small group size forces several groups; one net scenario exercises
     the non-muxable fallback path *)
  let scens = [ mk 0; mk 1; mk ~net:true 2; mk 3; mk 4 ] in
  let seq = List.map (fun s -> Runner.run s) scens in
  let many = Multi_runner.run_many ~group_size:2 scens in
  Alcotest.(check int) "result count" (List.length seq) (List.length many);
  List.iter2
    (fun (a : Runner.result) (b : Runner.result) ->
      Alcotest.(check string) "order preserved" a.Runner.scenario_name
        b.Runner.scenario_name;
      Alcotest.(check bool)
        (a.Runner.scenario_name ^ " outputs identical")
        true
        (a.Runner.outputs = b.Runner.outputs))
    seq many

let test_run_many_domains () =
  let cfg = cfg1 () in
  let scens =
    List.init 6 (fun i ->
        Scenario.make
          ~name:(Printf.sprintf "dom#%d" i)
          ~seed:(Int64.of_int (70 + i))
          ~cfg
          ~inputs:
            (List.init 4 (fun p -> Vec.of_list [ float_of_int (p * (i + 1)) ]))
          ())
  in
  let one = Multi_runner.run_many ~group_size:2 scens in
  let two = Multi_runner.run_many ~group_size:2 ~domains:2 scens in
  List.iter2
    (fun (a : Runner.result) (b : Runner.result) ->
      Alcotest.(check bool)
        (a.Runner.scenario_name ^ " sharded identical")
        true
        (a.Runner.outputs = b.Runner.outputs
        && a.Runner.stats = b.Runner.stats))
    one two

let () =
  Alcotest.run "multi"
    [
      ( "multi-instance engine",
        [
          Alcotest.test_case "differential grid" `Slow test_grid;
          Alcotest.test_case "admission" `Quick test_admission;
          Alcotest.test_case "cache isolation" `Quick test_cache_isolation;
          Alcotest.test_case "NaN partition isolation" `Quick test_nan_partition;
          Alcotest.test_case "run_many mixed + order" `Quick test_run_many_mixed;
          Alcotest.test_case "run_many sharded" `Quick test_run_many_domains;
        ] );
    ]
