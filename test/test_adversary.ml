(* Tests for the Byzantine behaviour strategies: each must be contained by
   the protocol within its corruption budget, and each must actually do
   what it claims (observable through the runner's metrics). *)

let cfg = Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10

let inputs =
  List.init 8 (fun i ->
      Vec.of_list [ float_of_int (i mod 4); float_of_int (i mod 3) ])

let run ?(seed = 21L) ?policy ?(sync_network = true) corruptions =
  Runner.run
    (Scenario.make ~seed ?policy ~sync_network ~corruptions ~cfg ~inputs ())

let assert_contained name r =
  if not (r.Runner.live && r.Runner.valid && r.Runner.agreement) then
    Alcotest.failf "%s: protocol properties violated (live=%b valid=%b agree=%b)"
      name r.Runner.live r.Runner.valid r.Runner.agreement

let test_silent () = assert_contained "silent" (run [ (0, Behavior.Silent); (4, Behavior.Silent) ])

let test_crash_spectrum () =
  (* crash at several protocol phases: during init, between init and the
     first iteration, and deep into the iterations *)
  List.iter
    (fun tick ->
      assert_contained
        (Printf.sprintf "crash at %d" tick)
        (run [ (2, Behavior.Crash_at tick); (6, Behavior.Crash_at (tick + 17)) ]))
    [ 5; 40; 82; 130 ]

let test_poison_both_slots () =
  let far1 = Vec.of_list [ 1e4; 1e4 ] and far2 = Vec.of_list [ -1e4; 1e4 ] in
  assert_contained "double poison"
    (run
       [ (1, Behavior.Honest_with_input far1); (5, Behavior.Honest_with_input far2) ])

let test_equivocator_contained () =
  List.iter
    (fun seed ->
      assert_contained "equivocator"
        (Runner.run
           (Scenario.make ~seed ~cfg ~inputs
              ~policy:(Network.sync_uniform ~delta:10)
              ~corruptions:
                [
                  ( 3,
                    Behavior.Equivocate
                      (Vec.of_list [ 77.; 0. ], Vec.of_list [ 0.; 77. ]) );
                ]
              ())))
    [ 1L; 2L; 3L; 4L; 5L ]

let test_halt_liar_cannot_force_early_output () =
  (* even ts halt liars are one short of the ts + 1 threshold *)
  let r = run [ (0, Behavior.Halt_liar 1); (4, Behavior.Halt_liar 1) ] in
  assert_contained "halt liars" r;
  (* honest halts still dictate it_h >= 1, and outputs happen at an
     iteration every honest party completed *)
  List.iter
    (fun (_, it) ->
      Alcotest.(check bool) "output iteration >= 1" true (it >= 1))
    r.Runner.output_iters

let test_spam_flood () =
  let r =
    run
      [ (7, Behavior.Spam { period = 2; payload_bytes = 256; until = 3000 }) ]
  in
  assert_contained "spam" r;
  Alcotest.(check bool) "junk traffic accounted" true
    (r.Runner.stats.Engine.bytes_sent > 100_000)

let test_lagger_is_tolerated () =
  List.iter
    (fun delay ->
      assert_contained
        (Printf.sprintf "lagger %d" delay)
        (Runner.run
           (Scenario.make ~seed:3L ~cfg ~inputs
              ~policy:(Network.sync_uniform ~delta:10)
              ~corruptions:[ (6, Behavior.Lagger delay) ]
              ())))
    [ 3; 8; 25; 60 ]

let test_lagger_replays_backlog () =
  (* a very late lagger must still terminate: its backlog replay lets it
     catch up with the others' reliable broadcasts *)
  let r =
    Runner.run
      (Scenario.make ~seed:4L ~cfg ~inputs
         ~policy:(Network.sync_uniform ~delta:10)
         ~corruptions:[ (6, Behavior.Lagger 200) ]
         ())
  in
  assert_contained "very late lagger" r

let test_garbage_flood () =
  (* structurally-invalid messages land mid-Pi_init and mid-iteration; the
     validation paths must drop them without breaking any property *)
  List.iter
    (fun at ->
      assert_contained
        (Printf.sprintf "garbage at %d" at)
        (run [ (3, Behavior.Garbage at); (6, Behavior.Garbage (at + 30)) ]))
    [ 15; 45; 85 ]

let test_full_budget_mixed () =
  (* one of each kind within the ts = 2 budget, several schedulers *)
  List.iter
    (fun (name, policy, sync) ->
      let r =
        Runner.run
          (Scenario.make ~seed:9L ~cfg ~inputs ~policy ~sync_network:sync
             ~corruptions:
               (if sync then
                  [
                    (1, Behavior.Honest_with_input (Vec.of_list [ 999.; -999. ]));
                    (5, Behavior.Crash_at 55);
                  ]
                else [ (5, Behavior.Silent) ])
             ())
      in
      assert_contained name r)
    [
      ("lockstep", Network.lockstep ~delta:10, true);
      ("rushing", Network.rushing ~delta:10 ~corrupt:(fun i -> i = 1 || i = 5), true);
      ("heavy tail", Network.async_heavy_tail ~base:15, false);
      ( "block pairs",
        Network.async_block
          ~blocked:(fun ~src ~dst -> src = 0 && dst = 3)
          ~release:400 ~fast:3,
        false );
    ]

(* --- boundary ticks --- *)

let test_crash_at_zero () =
  (* crash before doing anything: indistinguishable from Silent *)
  assert_contained "crash at 0"
    (run [ (2, Behavior.Crash_at 0); (6, Behavior.Crash_at 0) ])

let test_crash_exactly_on_timer_ticks () =
  (* under lockstep every protocol timer lands on a multiple of Δ;
     crashing exactly there races the crash against the timer handler *)
  List.iter
    (fun k ->
      assert_contained
        (Printf.sprintf "crash at timer tick %d" (k * 10))
        (Runner.run
           (Scenario.make ~seed:13L ~cfg ~inputs
              ~policy:(Network.lockstep ~delta:10)
              ~corruptions:[ (2, Behavior.Crash_at (k * 10)) ]
              ())))
    [ 1; 3; 8 ]

let test_lagger_after_last_honest_output () =
  (* the lagger joins long after every honest party has output; its
     backlog replay must still leave a terminating, contained run *)
  let r =
    Runner.run
      (Scenario.make ~seed:3L ~cfg ~inputs
         ~policy:(Network.lockstep ~delta:10)
         ~corruptions:[ (6, Behavior.Lagger 5000) ]
         ())
  in
  assert_contained "lagger after last output" r;
  List.iter
    (fun (_, t) ->
      Alcotest.(check bool) "honest outputs precede the join" true (t < 5000))
    r.Runner.output_times

let test_lagger_replay_liveness_minimal () =
  (* n = 2, ts = 0: reliable broadcast needs BOTH parties' echoes, so
     party 0 can only output thanks to messages party 1 queued while
     "offline" and replayed at its join — pins the replay-queue
     semantics (a dropping lagger would deadlock this run) *)
  let cfg = Config.make_exn ~n:2 ~ts:0 ~ta:0 ~d:1 ~eps:0.1 ~delta:10 in
  let inputs = [ Vec.of_list [ 0. ]; Vec.of_list [ 1. ] ] in
  let r =
    Runner.run
      (Scenario.make ~seed:5L ~cfg ~inputs
         ~policy:(Network.lockstep ~delta:10)
         ~corruptions:[ (1, Behavior.Lagger 70) ]
         ())
  in
  Alcotest.(check bool) "party 0 outputs despite the late peer" true
    r.Runner.live

let () =
  Alcotest.run "adversary"
    [
      ( "behaviours",
        [
          Alcotest.test_case "silent" `Quick test_silent;
          Alcotest.test_case "crash spectrum" `Quick test_crash_spectrum;
          Alcotest.test_case "double poison" `Quick test_poison_both_slots;
          Alcotest.test_case "equivocator" `Quick test_equivocator_contained;
          Alcotest.test_case "halt liars" `Quick
            test_halt_liar_cannot_force_early_output;
          Alcotest.test_case "spam flood" `Quick test_spam_flood;
          Alcotest.test_case "garbage flood" `Quick test_garbage_flood;
          Alcotest.test_case "lagger tolerated" `Quick test_lagger_is_tolerated;
          Alcotest.test_case "lagger backlog replay" `Quick
            test_lagger_replays_backlog;
          Alcotest.test_case "full budget mixed" `Quick test_full_budget_mixed;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "crash at tick 0" `Quick test_crash_at_zero;
          Alcotest.test_case "crash on timer ticks" `Quick
            test_crash_exactly_on_timer_ticks;
          Alcotest.test_case "lagger after last output" `Quick
            test_lagger_after_last_honest_output;
          Alcotest.test_case "lagger replay liveness (n=2)" `Quick
            test_lagger_replay_liveness_minimal;
        ] );
    ]
