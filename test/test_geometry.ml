(* Tests for 2-D hulls, convex polygon operations, and the LP-backed
   general-dimension hull machinery. *)

let v = Vec.of_list
let vec = Alcotest.testable Vec.pp (fun a b -> Vec.compare a b = 0)

let test_hull_square () =
  let pts =
    [ v [ 0.; 0. ]; v [ 1.; 0. ]; v [ 1.; 1. ]; v [ 0.; 1. ]; v [ 0.5; 0.5 ] ]
  in
  Alcotest.(check (list vec))
    "square hull CCW"
    [ v [ 0.; 0. ]; v [ 1.; 0. ]; v [ 1.; 1. ]; v [ 0.; 1. ] ]
    (Hull2d.hull pts)

let test_hull_degenerate () =
  Alcotest.(check (list vec)) "point" [ v [ 1.; 2. ] ] (Hull2d.hull [ v [ 1.; 2. ] ]);
  Alcotest.(check (list vec))
    "duplicates collapse" [ v [ 1.; 2. ] ]
    (Hull2d.hull [ v [ 1.; 2. ]; v [ 1.; 2. ] ]);
  Alcotest.(check (list vec))
    "collinear keeps extremes"
    [ v [ 0.; 0. ]; v [ 3.; 3. ] ]
    (Hull2d.hull [ v [ 1.; 1. ]; v [ 0.; 0. ]; v [ 3.; 3. ]; v [ 2.; 2. ] ])

let test_hull_collinear_on_edge () =
  (* midpoint of an edge must be dropped *)
  let h = Hull2d.hull [ v [ 0.; 0. ]; v [ 2.; 0. ]; v [ 1.; 0. ]; v [ 1.; 1. ] ] in
  Alcotest.(check int) "3 vertices" 3 (List.length h)

let test_cross () =
  Alcotest.(check bool) "ccw positive" true
    (Hull2d.cross ~o:(v [ 0.; 0. ]) ~a:(v [ 1.; 0. ]) ~b:(v [ 0.; 1. ]) > 0.)

(* --- Polygon --- *)

let triangle = Polygon.of_points [ v [ 0.; 0. ]; v [ 4.; 0. ]; v [ 0.; 4. ] ]
let square01 = Polygon.of_points [ v [ 0.; 0. ]; v [ 1.; 0. ]; v [ 1.; 1. ]; v [ 0.; 1. ] ]

let test_polygon_contains () =
  Alcotest.(check bool) "inside" true (Polygon.contains triangle (v [ 1.; 1. ]));
  Alcotest.(check bool) "boundary" true (Polygon.contains triangle (v [ 2.; 2. ]));
  Alcotest.(check bool) "vertex" true (Polygon.contains triangle (v [ 0.; 0. ]));
  Alcotest.(check bool) "outside" false (Polygon.contains triangle (v [ 3.; 3. ]))

let test_polygon_contains_degenerate () =
  let seg = Polygon.of_points [ v [ 0.; 0. ]; v [ 2.; 2. ] ] in
  Alcotest.(check bool) "on segment" true (Polygon.contains seg (v [ 1.; 1. ]));
  Alcotest.(check bool) "off segment" false (Polygon.contains seg (v [ 1.; 1.5 ]));
  Alcotest.(check bool) "past endpoint" false (Polygon.contains seg (v [ 3.; 3. ]));
  let pt = Polygon.of_points [ v [ 1.; 1. ] ] in
  Alcotest.(check bool) "point self" true (Polygon.contains pt (v [ 1.; 1. ]));
  Alcotest.(check bool) "point other" false (Polygon.contains pt (v [ 1.; 1.1 ]))

let test_polygon_clip () =
  (* clip the 4x4 triangle to x <= 2 *)
  let h = { Polygon.normal = v [ 1.; 0. ]; offset = 2. } in
  match Polygon.clip triangle h with
  | None -> Alcotest.fail "clip should be non-empty"
  | Some p ->
      Alcotest.(check (float 1e-9)) "area" 6. (Polygon.area p);
      Alcotest.(check bool) "kept" true (Polygon.contains p (v [ 1.; 1. ]));
      Alcotest.(check bool) "cut" false (Polygon.contains p (v [ 3.; 0.5 ]))

let test_polygon_clip_away () =
  let h = { Polygon.normal = v [ 1.; 0. ]; offset = -1. } in
  Alcotest.(check bool) "clipped away" true (Polygon.clip triangle h = None)

let test_polygon_inter () =
  (* unit square moved by (0.5, 0.5) overlaps in a 0.5x0.5 square *)
  let other =
    Polygon.of_points
      [ v [ 0.5; 0.5 ]; v [ 1.5; 0.5 ]; v [ 1.5; 1.5 ]; v [ 0.5; 1.5 ] ]
  in
  match Polygon.inter square01 other with
  | None -> Alcotest.fail "should intersect"
  | Some p -> Alcotest.(check (float 1e-9)) "area" 0.25 (Polygon.area p)

let test_polygon_inter_empty () =
  let far = Polygon.of_points [ v [ 5.; 5. ]; v [ 6.; 5. ]; v [ 5.; 6. ] ] in
  Alcotest.(check bool) "disjoint" true (Polygon.inter square01 far = None)

let test_polygon_inter_point () =
  (* two squares sharing exactly one corner *)
  let other =
    Polygon.of_points [ v [ 1.; 1. ]; v [ 2.; 1. ]; v [ 2.; 2. ]; v [ 1.; 2. ] ]
  in
  match Polygon.inter square01 other with
  | None -> Alcotest.fail "corner intersection lost"
  | Some p ->
      Alcotest.(check int) "single point" 1 (List.length (Polygon.vertices p));
      Alcotest.(check bool) "is the corner" true (Polygon.contains p (v [ 1.; 1. ]))

let test_polygon_inter_segments () =
  (* crossing segments meet in a point *)
  let s1 = Polygon.of_points [ v [ 0.; 0. ]; v [ 2.; 2. ] ] in
  let s2 = Polygon.of_points [ v [ 0.; 2. ]; v [ 2.; 0. ] ] in
  (match Polygon.inter s1 s2 with
  | None -> Alcotest.fail "crossing segments"
  | Some p ->
      Alcotest.(check bool) "center" true (Polygon.contains p (v [ 1.; 1. ])));
  (* collinear overlapping segments meet in a segment *)
  let s3 = Polygon.of_points [ v [ 1.; 1. ]; v [ 3.; 3. ] ] in
  match Polygon.inter s1 s3 with
  | None -> Alcotest.fail "collinear overlap"
  | Some p ->
      Alcotest.(check bool) "low end" true (Polygon.contains p (v [ 1.; 1. ]));
      Alcotest.(check bool) "high end" true (Polygon.contains p (v [ 2.; 2. ]));
      Alcotest.(check bool) "outside overlap" false
        (Polygon.contains p (v [ 0.5; 0.5 ]))

let test_polygon_diameter () =
  let a, b = Polygon.diameter_pair triangle in
  Alcotest.(check (float 1e-9)) "diameter" (4. *. sqrt 2.) (Vec.dist a b);
  Alcotest.(check (float 1e-9)) "diameter fn" (4. *. sqrt 2.)
    (Polygon.diameter triangle)

let test_polygon_inter_all () =
  let t2 = Polygon.of_points [ v [ 0.; 0. ]; v [ 4.; 0. ]; v [ 4.; 4. ] ] in
  let t3 = Polygon.of_points [ v [ 0.; 0. ]; v [ 4.; 4. ]; v [ 0.; 4. ] ] in
  match Polygon.inter_all [ triangle; t2; t3 ] with
  | None -> Alcotest.fail "non-empty"
  | Some p ->
      Alcotest.(check bool) "origin in all" true (Polygon.contains p (v [ 0.; 0. ]))

(* --- Membership (LP) --- *)

let test_membership_simplex () =
  let pts = [ v [ 0.; 0.; 0. ]; v [ 1.; 0.; 0. ]; v [ 0.; 1.; 0. ]; v [ 0.; 0.; 1. ] ] in
  Alcotest.(check bool) "centroid inside" true
    (Membership.in_hull pts (v [ 0.25; 0.25; 0.25 ]));
  Alcotest.(check bool) "vertex inside" true
    (Membership.in_hull pts (v [ 0.; 0.; 1. ]));
  Alcotest.(check bool) "outside" false
    (Membership.in_hull pts (v [ 0.5; 0.5; 0.5 ]));
  Alcotest.(check bool) "negative outside" false
    (Membership.in_hull pts (v [ -0.1; 0.; 0. ]))

let test_membership_coeffs () =
  let pts = [ v [ 0. ]; v [ 2. ] ] in
  match Membership.coeffs pts (v [ 0.5 ]) with
  | None -> Alcotest.fail "inside"
  | Some lam ->
      Alcotest.(check (float 1e-7)) "lambda0" 0.75 lam.(0);
      Alcotest.(check (float 1e-7)) "lambda1" 0.25 lam.(1)

(* membership must agree with the exact polygon test in 2-D *)
let prop_membership_agrees_2d =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 3 8)
           (list_repeat 2 (float_range (-10.) 10.)))
        (list_repeat 2 (float_range (-12.) 12.)))
  in
  QCheck.Test.make ~name:"LP membership agrees with polygon test" ~count:150
    (QCheck.make gen) (fun (pts_l, p_l) ->
      let pts = List.map Vec.of_list pts_l and p = Vec.of_list p_l in
      let poly = Polygon.of_points pts in
      (* skip points within 1e-6 of the boundary, where the two eps regimes
         may legitimately disagree *)
      let inside = Polygon.contains ~eps:(-1e-6) poly p in
      let outside = not (Polygon.contains ~eps:1e-6 poly p) in
      QCheck.assume (inside || outside);
      Membership.in_hull pts p = inside)

let gen_poly_pts =
  QCheck.Gen.(list_size (int_range 3 9) (list_repeat 2 (float_range (-10.) 10.)))

let prop_hull_idempotent =
  QCheck.Test.make ~name:"hull is idempotent" ~count:200 (QCheck.make gen_poly_pts)
    (fun pts_l ->
      let pts = List.map Vec.of_list pts_l in
      let h = Hull2d.hull pts in
      Hull2d.hull h = h)

let prop_hull_contains_inputs =
  QCheck.Test.make ~name:"hull contains all inputs" ~count:200
    (QCheck.make gen_poly_pts) (fun pts_l ->
      let pts = List.map Vec.of_list pts_l in
      let poly = Polygon.of_points pts in
      List.for_all (fun p -> Polygon.contains ~eps:1e-7 poly p) pts)

let prop_clip_stays_inside =
  QCheck.Test.make ~name:"clip result stays inside the polygon" ~count:150
    (QCheck.make QCheck.Gen.(pair gen_poly_pts (pair (float_range (-1.) 1.) (float_range (-10.) 10.))))
    (fun (pts_l, (nx, off)) ->
      let pts = List.map Vec.of_list pts_l in
      let poly = Polygon.of_points pts in
      let ny = sqrt (Float.max 0. (1. -. (nx *. nx))) in
      let h = { Polygon.normal = Vec.of_list [ nx; ny ]; offset = off } in
      match Polygon.clip poly h with
      | None -> true
      | Some clipped ->
          List.for_all
            (fun p ->
              Polygon.contains ~eps:1e-6 poly p
              && Vec.dot (Vec.of_list [ nx; ny ]) p <= off +. 1e-6)
            (Polygon.vertices clipped))

let prop_inter_inside_both =
  QCheck.Test.make ~name:"intersection inside both polygons" ~count:150
    (QCheck.make QCheck.Gen.(pair gen_poly_pts gen_poly_pts))
    (fun (a_l, b_l) ->
      let pa = Polygon.of_points (List.map Vec.of_list a_l) in
      let pb = Polygon.of_points (List.map Vec.of_list b_l) in
      match Polygon.inter pa pb with
      | None -> true
      | Some r ->
          List.for_all
            (fun p ->
              Polygon.contains ~eps:1e-6 pa p && Polygon.contains ~eps:1e-6 pb p)
            (Polygon.vertices r))

let prop_inter_area_shrinks =
  QCheck.Test.make ~name:"intersection area bounded by both" ~count:150
    (QCheck.make QCheck.Gen.(pair gen_poly_pts gen_poly_pts))
    (fun (a_l, b_l) ->
      let pa = Polygon.of_points (List.map Vec.of_list a_l) in
      let pb = Polygon.of_points (List.map Vec.of_list b_l) in
      match Polygon.inter pa pb with
      | None -> true
      | Some r ->
          Polygon.area r <= Polygon.area pa +. 1e-6
          && Polygon.area r <= Polygon.area pb +. 1e-6)

(* --- Hullset --- *)

let test_hullset_basic () =
  let h1 = [ v [ 0.; 0. ]; v [ 4.; 0. ]; v [ 0.; 4. ] ] in
  let h2 = [ v [ 1.; 1. ]; v [ 5.; 1. ]; v [ 1.; 5. ] ] in
  let hs = Hullset.make [ h1; h2 ] in
  Alcotest.(check bool) "non-empty" false (Hullset.is_empty hs);
  Alcotest.(check bool) "contains" true (Hullset.contains hs (v [ 1.5; 1.5 ]));
  Alcotest.(check bool) "not contains" false (Hullset.contains hs (v [ 0.5; 0.5 ]));
  match Hullset.find_point hs with
  | None -> Alcotest.fail "point"
  | Some p -> Alcotest.(check bool) "found point inside" true (Hullset.contains hs p)

let test_hullset_empty () =
  let h1 = [ v [ 0.; 0. ]; v [ 1.; 0. ] ] in
  let h2 = [ v [ 0.; 1. ]; v [ 1.; 1. ] ] in
  Alcotest.(check bool) "empty" true (Hullset.is_empty (Hullset.make [ h1; h2 ]))

let test_hullset_support () =
  let hs = Hullset.make [ [ v [ 0.; 0. ]; v [ 2.; 0. ]; v [ 2.; 2. ]; v [ 0.; 2. ] ] ] in
  match Hullset.support hs ~dir:(v [ 1.; 1. ]) with
  | None -> Alcotest.fail "support"
  | Some (value, p) ->
      Alcotest.(check (float 1e-7)) "value" 4. value;
      Alcotest.(check bool) "maximiser" true (Vec.dist p (v [ 2.; 2. ]) <= 1e-6)

let test_hullset_diameter_square () =
  let hs = Hullset.make [ [ v [ 0.; 0. ]; v [ 2.; 0. ]; v [ 2.; 2. ]; v [ 0.; 2. ] ] ] in
  match Hullset.diameter_pair hs with
  | None -> Alcotest.fail "diameter"
  | Some (a, b) ->
      Alcotest.(check (float 1e-6)) "diagonal" (2. *. sqrt 2.) (Vec.dist a b)

let test_hullset_diameter_3d () =
  (* intersection of two tetrahedra = octahedron-ish region; check that the
     approximation at least finds points inside and a sensible diameter *)
  let cube =
    [
      v [ 0.; 0.; 0. ]; v [ 1.; 0.; 0. ]; v [ 0.; 1.; 0. ]; v [ 0.; 0.; 1. ];
      v [ 1.; 1.; 0. ]; v [ 1.; 0.; 1. ]; v [ 0.; 1.; 1. ]; v [ 1.; 1.; 1. ];
    ]
  in
  let shifted = List.map (fun p -> Vec.add p (v [ 0.5; 0.; 0. ])) cube in
  let hs = Hullset.make [ cube; shifted ] in
  match Hullset.diameter_pair hs with
  | None -> Alcotest.fail "diameter"
  | Some (a, b) ->
      Alcotest.(check bool) "a in K" true (Hullset.contains hs a);
      Alcotest.(check bool) "b in K" true (Hullset.contains hs b);
      (* exact diameter: the 0.5 x 1 x 1 box diagonal = sqrt(2.25) = 1.5 *)
      let d = Vec.dist a b in
      Alcotest.(check bool) "close to exact" true (Float.abs (d -. 1.5) <= 0.02)

let test_hullset_of_arrays () =
  let h1 = [ v [ 0.; 0. ]; v [ 2.; 0. ]; v [ 2.; 2. ]; v [ 0.; 2. ] ] in
  let h2 = [ v [ 1.; 1. ]; v [ 3.; 1. ]; v [ 3.; 3. ]; v [ 1.; 3. ] ] in
  let from_lists = Hullset.make [ h1; h2 ] in
  let from_arrays =
    Hullset.of_arrays [| Array.of_list h1; Array.of_list h2 |]
  in
  Alcotest.(check bool) "same find_point" true
    (Hullset.find_point from_lists = Hullset.find_point from_arrays);
  Alcotest.(check bool) "same diameter" true
    (Hullset.diameter_pair from_lists = Hullset.diameter_pair from_arrays);
  Alcotest.check_raises "no hulls" (Invalid_argument "Hullset.make: no hulls")
    (fun () -> ignore (Hullset.of_arrays [||]));
  Alcotest.check_raises "empty hull"
    (Invalid_argument "Hullset.make: empty hull") (fun () ->
      ignore (Hullset.of_arrays [| [| v [ 0.; 0. ] |]; [||] |]))

(* --- cached workspace vs the one-shot reference path --- *)

let vec_opt_bits_eq a b =
  match (a, b) with
  | None, None -> true
  | Some u, Some w -> Vec.compare u w = 0
  | _ -> false

let pair_opt_bits_eq a b =
  match (a, b) with
  | None, None -> true
  | Some (u1, u2), Some (w1, w2) ->
      Vec.compare u1 w1 = 0 && Vec.compare u2 w2 = 0
  | _ -> false

(* The workspace-backed queries must be bit-identical to the pre-workspace
   one-shot path (Hullset.Reference), per the solver's replay guarantee —
   this is what keeps cached recomputation protocol-safe. Exercised on the
   full safe-area shape: hullsets built from restrict_t subset families of
   random point sets in D ∈ {3, 4}. *)
let prop_workspace_matches_reference =
  let gen =
    QCheck.Gen.(
      int_range 3 4 >>= fun d ->
      int_range 5 6 >>= fun n ->
      list_repeat n (list_repeat d (float_range (-10.) 10.)) >|= fun pts ->
      (d, List.map Vec.of_list pts))
  in
  QCheck.Test.make ~name:"workspace queries ≡ one-shot reference" ~count:25
    (QCheck.make ~print:(fun (d, pts) ->
         Printf.sprintf "d=%d n=%d %s" d (List.length pts)
           (String.concat " " (List.map Vec.to_string pts)))
       gen)
    (fun (d, pts) ->
      let hs = Hullset.of_arrays (Restrict.subsets_arr ~t:1 (Array.of_list pts)) in
      let dp = Hullset.diameter_pair hs in
      let axis = Vec.basis ~dim:d 0 1. in
      vec_opt_bits_eq (Hullset.find_point hs) (Hullset.Reference.find_point hs)
      && pair_opt_bits_eq dp (Hullset.Reference.diameter_pair hs)
      && (match (Hullset.support hs ~dir:axis, Hullset.Reference.support hs ~dir:axis) with
         | None, None -> true
         | Some (v1, p1), Some (v2, p2) ->
             Int64.bits_of_float v1 = Int64.bits_of_float v2
             && Vec.compare p1 p2 = 0
         | _ -> false)
      (* and the cached answers are stable under repetition *)
      && pair_opt_bits_eq dp (Hullset.diameter_pair hs))

(* Support-cache hits must be bit-identical to cold queries: a twin hullset
   answers each direction cold exactly once, while the probed hullset
   answers the same direction repeatedly from its memo table — every answer
   must carry the same bits. An eps change in between must drop the memo
   and reproduce the cold answer again. *)
let prop_support_cache_hits_bit_identical =
  let gen =
    QCheck.Gen.(
      int_range 3 4 >>= fun d ->
      int_range 5 6 >>= fun n ->
      list_repeat n (list_repeat d (float_range (-10.) 10.)) >|= fun pts ->
      (d, List.map Vec.of_list pts))
  in
  QCheck.Test.make ~name:"support-cache hits ≡ cold queries" ~count:25
    (QCheck.make ~print:(fun (d, pts) ->
         Printf.sprintf "d=%d n=%d %s" d (List.length pts)
           (String.concat " " (List.map Vec.to_string pts)))
       gen)
    (fun (d, pts) ->
      let mk () =
        Hullset.of_arrays (Restrict.subsets_arr ~t:1 (Array.of_list pts))
      in
      let cold = mk () and hot = mk () in
      let support_bits_eq a b =
        match (a, b) with
        | None, None -> true
        | Some (v1, p1), Some (v2, p2) ->
            Int64.bits_of_float v1 = Int64.bits_of_float v2
            && Vec.compare p1 p2 = 0
        | _ -> false
      in
      let dirs =
        List.init d (fun c -> Vec.basis ~dim:d c 1.)
        @ List.init d (fun c -> Vec.basis ~dim:d c (-1.))
      in
      List.for_all
        (fun dir ->
          let reference = Hullset.support cold ~dir in
          let first = Hullset.support hot ~dir in
          let hit = Hullset.support hot ~dir in
          (* a different eps resets the memo; returning must restore the
             original bits via a fresh cold solve *)
          ignore (Hullset.support hot ~eps:1e-6 ~dir);
          let after_reset = Hullset.support hot ~dir in
          support_bits_eq reference first && support_bits_eq first hit
          && support_bits_eq reference after_reset)
        dirs
      && vec_opt_bits_eq (Hullset.find_point hot) (Hullset.find_point hot)
      && vec_opt_bits_eq (Hullset.find_point hot) (Hullset.find_point cold))

let test_hullset_deterministic () =
  let h1 = [ v [ 0.; 0.; 0. ]; v [ 2.; 0.; 0. ]; v [ 0.; 2.; 0. ]; v [ 0.; 0.; 2. ] ] in
  let h2 = [ v [ 1.; 1.; 1. ]; v [ -1.; 0.; 0. ]; v [ 0.; -1.; 0. ]; v [ 0.; 0.; 1. ] ] in
  let hs () = Hullset.make [ h1; h2 ] in
  let p1 = Hullset.diameter_pair (hs ()) and p2 = Hullset.diameter_pair (hs ()) in
  Alcotest.(check bool) "same result" true (p1 = p2)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "geometry"
    [
      ( "hull2d",
        [
          Alcotest.test_case "square" `Quick test_hull_square;
          Alcotest.test_case "degenerate" `Quick test_hull_degenerate;
          Alcotest.test_case "collinear on edge" `Quick test_hull_collinear_on_edge;
          Alcotest.test_case "cross" `Quick test_cross;
        ] );
      ( "polygon",
        [
          Alcotest.test_case "contains" `Quick test_polygon_contains;
          Alcotest.test_case "contains degenerate" `Quick
            test_polygon_contains_degenerate;
          Alcotest.test_case "clip" `Quick test_polygon_clip;
          Alcotest.test_case "clip away" `Quick test_polygon_clip_away;
          Alcotest.test_case "inter" `Quick test_polygon_inter;
          Alcotest.test_case "inter empty" `Quick test_polygon_inter_empty;
          Alcotest.test_case "inter point" `Quick test_polygon_inter_point;
          Alcotest.test_case "inter segments" `Quick test_polygon_inter_segments;
          Alcotest.test_case "diameter" `Quick test_polygon_diameter;
          Alcotest.test_case "inter_all" `Quick test_polygon_inter_all;
        ] );
      ( "membership",
        [
          Alcotest.test_case "simplex 3d" `Quick test_membership_simplex;
          Alcotest.test_case "coeffs" `Quick test_membership_coeffs;
        ] );
      ( "hullset",
        [
          Alcotest.test_case "basic" `Quick test_hullset_basic;
          Alcotest.test_case "empty" `Quick test_hullset_empty;
          Alcotest.test_case "support" `Quick test_hullset_support;
          Alcotest.test_case "diameter square" `Quick test_hullset_diameter_square;
          Alcotest.test_case "diameter 3d" `Quick test_hullset_diameter_3d;
          Alcotest.test_case "deterministic" `Quick test_hullset_deterministic;
          Alcotest.test_case "of_arrays" `Quick test_hullset_of_arrays;
        ] );
      ( "properties",
        q
          [
            prop_workspace_matches_reference;
            prop_support_cache_hits_bit_identical;
            prop_membership_agrees_2d;
            prop_hull_idempotent;
            prop_hull_contains_inputs;
            prop_clip_stays_inside;
            prop_inter_inside_both;
            prop_inter_area_shrinks;
          ] );
    ]
