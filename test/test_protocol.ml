(* Tests for the protocol kernel: message sizes, pretty-printing, timing
   constants, and additional paper-lemma properties of the safe-area stack
   that sit between geometry and the protocol (Lemmas 5.10 and 6.12). *)

let v2 = Vec.of_list [ 1.; 2. ]

let test_params () =
  Alcotest.(check int) "c_rbc" 3 Params.c_rbc;
  Alcotest.(check int) "c_rbc'" 2 Params.c_rbc';
  Alcotest.(check int) "c_obc" 5 Params.c_obc;
  Alcotest.(check int) "c_aa_it" 5 Params.c_aa_it;
  Alcotest.(check int) "c_init" 8 Params.c_init;
  Alcotest.(check (float 1e-12)) "conv factor" (sqrt (7. /. 8.))
    Params.conv_factor

let test_message_sizes () =
  let id = { Message.tag = Message.Init_value; origin = 0; instance = 0 } in
  Alcotest.(check int) "vec payload" (16 + 16)
    (Message.size_of (Message.Rbc (id, Message.Init, Message.Pvec v2)));
  Alcotest.(check int) "pairs payload"
    (16 + (2 * (4 + 16)))
    (Message.size_of
       (Message.Rbc (id, Message.Init, Message.Ppairs [ (0, v2); (1, v2) ])));
  Alcotest.(check int) "witness set" (16 + 12)
    (Message.size_of (Message.Witness_set { instance = 0; parties = [ 0; 1; 2 ] }));
  Alcotest.(check int) "junk" (16 + 99) (Message.size_of (Message.Junk 99));
  Alcotest.(check int) "sync round" (16 + 16)
    (Message.size_of (Message.Sync_round { round = 1; value = v2 }))

let test_message_pp () =
  let s m = Format.asprintf "%a" Message.pp m in
  let id it = { Message.tag = Message.Obc_value it; origin = 3; instance = 0 } in
  Alcotest.(check bool) "mentions instance" true
    (String.length (s (Message.Rbc (id 7, Message.Echo, Message.Pvec v2))) > 0);
  Alcotest.(check string) "obc report" "obc-report[2] (1 pairs)"
    (s (Message.Obc_report { instance = 0; iter = 2; pairs = [ (0, v2) ] }))

(* Lemma 6.12: safe_t(M) ⊆ safe_{t-1}(M). *)
let prop_safe_monotone_in_t =
  QCheck.Test.make ~name:"lemma 6.12: safe_t ⊆ safe_{t-1}" ~count:50
    (QCheck.make
       QCheck.Gen.(
         list_size (return 7) (list_repeat 2 (float_range (-10.) 10.))))
    (fun pts_l ->
      let pts = List.map Vec.of_list pts_l in
      match (Safe_area.compute ~t:2 pts, Safe_area.compute ~t:1 pts) with
      | None, _ -> QCheck.assume_fail ()
      | Some a2, Some a1 ->
          let x, y = Safe_area.diameter_pair a2 in
          let mid = Safe_area.midpoint_value a2 in
          List.for_all (fun p -> Safe_area.contains ~eps:1e-6 a1 p) [ x; y; mid ]
      | Some _, None -> false)

(* Lemma 5.10: safe_t(M) ⊆ safe_t(M ∪ {m}). *)
let prop_safe_monotone_in_m =
  QCheck.Test.make ~name:"lemma 5.10: safe_t(M) ⊆ safe_t(M + m)" ~count:50
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (return 6) (list_repeat 2 (float_range (-10.) 10.)))
           (list_repeat 2 (float_range (-10.) 10.))))
    (fun (pts_l, extra_l) ->
      let pts = List.map Vec.of_list pts_l in
      let extra = Vec.of_list extra_l in
      match
        (Safe_area.compute ~t:1 pts, Safe_area.compute ~t:1 (extra :: pts))
      with
      | None, _ -> QCheck.assume_fail ()
      | Some a, Some a' ->
          let x, y = Safe_area.diameter_pair a in
          let mid = Safe_area.midpoint_value a in
          List.for_all (fun p -> Safe_area.contains ~eps:1e-6 a' p) [ x; y; mid ]
      | Some _, None -> false)

(* The centroid rule also yields points inside the area (the ablation's
   validity requirement). *)
let prop_centroid_inside =
  QCheck.Test.make ~name:"centroid value stays inside the area" ~count:80
    (QCheck.make
       QCheck.Gen.(
         list_size (return 7) (list_repeat 2 (float_range (-10.) 10.))))
    (fun pts_l ->
      let pts = List.map Vec.of_list pts_l in
      match Safe_area.compute ~t:1 pts with
      | None -> QCheck.assume_fail ()
      | Some a -> Safe_area.contains ~eps:1e-6 a (Safe_area.centroid_value a))

(* Determinism of the estimation rule across permutations of the received
   set — the property Πinit's consistency argument needs. *)
let prop_estimation_deterministic =
  QCheck.Test.make ~name:"new value independent of reception order" ~count:60
    (QCheck.make
       QCheck.Gen.(
         list_size (return 7) (list_repeat 2 (float_range (-10.) 10.))))
    (fun pts_l ->
      let pts = List.map Vec.of_list pts_l in
      match (Safe_area.new_value ~t:1 pts, Safe_area.new_value ~t:1 (List.rev pts)) with
      | Some a, Some b -> Vec.compare a b = 0
      | None, None -> true
      | _ -> false)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "protocol"
    [
      ( "kernel",
        [
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "message sizes" `Quick test_message_sizes;
          Alcotest.test_case "message pp" `Quick test_message_pp;
        ] );
      ( "lemma properties",
        q
          [
            prop_safe_monotone_in_t;
            prop_safe_monotone_in_m;
            prop_centroid_inside;
            prop_estimation_deterministic;
          ] );
    ]
