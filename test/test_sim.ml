(* Tests for the simulation substrate: RNG, heap, engine, delay policies. *)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_ranges () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = Rng.float01 r in
    Alcotest.(check bool) "float01 in range" true (f >= 0. && f < 1.);
    let g = Rng.float_range r 2. 5. in
    Alcotest.(check bool) "float_range" true (g >= 2. && g < 5.)
  done

let test_rng_split () =
  let a = Rng.create 42L in
  let c = Rng.split a in
  (* the split stream differs from the parent's continuation *)
  Alcotest.(check bool) "independent" true
    (Rng.next_int64 c <> Rng.next_int64 a)

let test_rng_coverage () =
  let r = Rng.create 3L in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 10) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_rng_shuffle () =
  let r = Rng.create 5L in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

(* --- Heap --- *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  let input = [ 5; 3; 8; 1; 9; 2; 7; 1; 4 ] in
  List.iter (Heap.push h) input;
  Alcotest.(check int) "size" (List.length input) (Heap.size h);
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" (List.sort compare input) (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 1;
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_heap_pop_exn () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h));
  List.iter (Heap.push h) [ 4; 2; 9 ];
  Alcotest.(check int) "min first" 2 (Heap.pop_exn h);
  Alcotest.(check int) "then" 4 (Heap.pop_exn h);
  Alcotest.(check int) "then" 9 (Heap.pop_exn h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let prop_heap =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare l)

(* --- Engine --- *)

let test_engine_delivery () =
  let engine = Engine.create ~n:2 ~policy:Network.instant () in
  let got = ref [] in
  Engine.set_party engine 1 (fun ev ->
      match ev with
      | Engine.Deliver { src; msg } -> got := (src, msg) :: !got
      | Engine.Timer _ -> ());
  Engine.send engine ~src:0 ~dst:1 "hello";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !got

let test_engine_fifo_per_tick () =
  (* same delays: delivery order = send order (sequence tie-break) *)
  let engine = Engine.create ~n:2 ~policy:Network.instant () in
  let got = ref [] in
  Engine.set_party engine 1 (fun ev ->
      match ev with
      | Engine.Deliver { msg; _ } -> got := msg :: !got
      | Engine.Timer _ -> ());
  List.iter (fun m -> Engine.send engine ~src:0 ~dst:1 m) [ "a"; "b"; "c" ];
  Engine.run engine;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !got)

let test_engine_timer () =
  let engine = Engine.create ~n:1 ~policy:Network.instant () in
  let fired = ref [] in
  Engine.set_party engine 0 (fun ev ->
      match ev with
      | Engine.Timer tag -> fired := (tag, Engine.now engine) :: !fired
      | Engine.Deliver _ -> ());
  Engine.set_timer engine ~party:0 ~at:10 ~tag:1;
  Engine.set_timer engine ~party:0 ~at:5 ~tag:2;
  Engine.run engine;
  Alcotest.(check (list (pair int int))) "timers in time order"
    [ (2, 5); (1, 10) ]
    (List.rev !fired)

let test_engine_broadcast_and_stats () =
  let engine =
    Engine.create ~n:3 ~size_of:String.length ~policy:Network.instant ()
  in
  let count = ref 0 in
  for i = 0 to 2 do
    Engine.set_party engine i (fun ev ->
        match ev with Engine.Deliver _ -> incr count | Engine.Timer _ -> ())
  done;
  Engine.broadcast engine ~src:0 "xyz";
  Engine.run engine;
  let s = Engine.stats engine in
  Alcotest.(check int) "deliveries incl self" 3 !count;
  Alcotest.(check int) "messages" 3 s.Engine.messages_sent;
  Alcotest.(check int) "bytes" 9 s.Engine.bytes_sent

let test_engine_crash () =
  let engine = Engine.create ~n:2 ~policy:Network.instant () in
  let got = ref 0 in
  Engine.set_party engine 1 (fun _ -> incr got);
  Engine.clear_party engine 1;
  Engine.send engine ~src:0 ~dst:1 "dropped";
  Engine.run engine;
  Alcotest.(check int) "nothing handled" 0 !got

let test_engine_until () =
  let engine = Engine.create ~n:1 ~policy:Network.instant () in
  let fired = ref 0 in
  Engine.set_party engine 0 (fun _ -> incr fired);
  Engine.set_timer engine ~party:0 ~at:5 ~tag:0;
  Engine.set_timer engine ~party:0 ~at:50 ~tag:0;
  Engine.run ~until:10 engine;
  Alcotest.(check int) "only first" 1 !fired;
  Alcotest.(check bool) "queue not drained" false (Engine.quiescent engine);
  Engine.run engine;
  Alcotest.(check int) "rest after" 2 !fired

let test_engine_max_events_exact () =
  (* a run needing exactly [max_events] events succeeds; one more event in
     the queue raises without popping it (counter and clock stay put) *)
  let mk k =
    let engine = Engine.create ~n:1 ~policy:Network.instant () in
    Engine.set_party engine 0 (fun _ -> ());
    for i = 1 to k do
      Engine.set_timer engine ~party:0 ~at:i ~tag:i
    done;
    engine
  in
  let engine = mk 5 in
  Engine.run ~max_events:5 engine;
  Alcotest.(check int) "exactly the budget" 5
    (Engine.stats engine).Engine.events_processed;
  let engine = mk 6 in
  Alcotest.check_raises "budget + 1 raises"
    (Failure "Engine.run: max_events exceeded (run-away protocol?)")
    (fun () -> Engine.run ~max_events:5 engine);
  let s = Engine.stats engine in
  Alcotest.(check int) "counter stopped at the budget" 5
    s.Engine.events_processed;
  Alcotest.(check int) "clock not past the budgeted events" 5 s.Engine.final_time

let test_engine_budget_stop () =
  (* ~on_budget:`Stop turns budget exhaustion into a structured stop
     instead of an exception, at exactly the same point, and the engine
     stays resumable *)
  let engine = Engine.create ~n:1 ~policy:Network.instant () in
  Engine.set_party engine 0 (fun _ -> ());
  for i = 1 to 8 do
    Engine.set_timer engine ~party:0 ~at:i ~tag:i
  done;
  Engine.run ~max_events:5 ~on_budget:`Stop engine;
  Alcotest.(check bool) "stopped on the budget" true
    (Engine.stop_reason engine = `Event_budget);
  Alcotest.(check int) "counter at the budget" 5
    (Engine.stats engine).Engine.events_processed;
  Engine.run engine;
  Alcotest.(check bool) "resumed to quiescence" true
    (Engine.stop_reason engine = `Quiescent);
  Alcotest.(check int) "rest processed" 8
    (Engine.stats engine).Engine.events_processed

let test_engine_cancellation () =
  (* ?should_stop is polled every [stop_poll_mask + 1] events; a true
     verdict unwinds the run cleanly with stop_reason `Cancelled *)
  let engine = Engine.create ~n:1 ~policy:Network.instant () in
  Engine.set_party engine 0 (fun _ -> ());
  for i = 1 to 200 do
    Engine.set_timer engine ~party:0 ~at:i ~tag:i
  done;
  let polls = ref 0 in
  Engine.run
    ~should_stop:(fun () ->
      incr polls;
      (Engine.stats engine).Engine.events_processed >= 64)
    engine;
  Alcotest.(check bool) "cancelled" true (Engine.stop_reason engine = `Cancelled);
  Alcotest.(check int) "stopped at the first poll past the flag" 64
    (Engine.stats engine).Engine.events_processed;
  Alcotest.(check bool) "polling is sparse, not per-event" true (!polls <= 3);
  (* cancellation leaves the queue intact: a later run drains it *)
  Engine.run engine;
  Alcotest.(check int) "drained after cancellation" 200
    (Engine.stats engine).Engine.events_processed;
  Alcotest.(check bool) "quiescent" true (Engine.stop_reason engine = `Quiescent)

let test_engine_determinism () =
  let run_once () =
    let engine =
      Engine.create ~seed:9L ~n:3 ~policy:(Network.sync_uniform ~delta:7) ()
    in
    let log = ref [] in
    for i = 0 to 2 do
      Engine.set_party engine i (fun ev ->
          match ev with
          | Engine.Deliver { src; msg } ->
              log := (Engine.now engine, i, src, msg) :: !log
          | Engine.Timer _ -> ())
    done;
    for s = 0 to 2 do
      Engine.broadcast engine ~src:s (string_of_int s)
    done;
    Engine.run engine;
    !log
  in
  Alcotest.(check bool) "identical logs" true (run_once () = run_once ())

let test_engine_tracer () =
  let engine = Engine.create ~n:2 ~policy:Network.instant () in
  let sends = ref 0 and delivers = ref 0 and timers = ref 0 in
  Engine.set_tracer engine (function
    | Engine.Sent { deliver_at; at; _ } ->
        incr sends;
        Alcotest.(check bool) "deliver after send" true (deliver_at > at)
    | Engine.Delivered _ -> incr delivers
    | Engine.Timer_fired { tag; _ } ->
        incr timers;
        Alcotest.(check int) "tag" 5 tag
    | Engine.Party_failed _ -> ());
  Engine.set_party engine 1 (fun _ -> ());
  Engine.send engine ~src:0 ~dst:1 "x";
  Engine.set_timer engine ~party:1 ~at:3 ~tag:5;
  Engine.run engine;
  Alcotest.(check int) "sends" 1 !sends;
  Alcotest.(check int) "delivers" 1 !delivers;
  Alcotest.(check int) "timers" 1 !timers;
  (* clearing stops tracing *)
  Engine.clear_tracer engine;
  Engine.send engine ~src:0 ~dst:1 "y";
  Engine.run engine;
  Alcotest.(check int) "no more trace events" 1 !sends

let test_engine_fail_fast_default () =
  (* the default isolation mode lets handler exceptions abort the run *)
  let engine = Engine.create ~n:1 ~policy:Network.instant () in
  Engine.set_party engine 0 (fun _ -> failwith "boom");
  Engine.set_timer engine ~party:0 ~at:1 ~tag:0;
  (match Engine.run engine with
  | () -> Alcotest.fail "expected the handler exception to propagate"
  | exception Failure m -> Alcotest.(check string) "propagated" "boom" m);
  Alcotest.(check int) "nothing recorded under fail-fast" 0
    (Engine.stats engine).Engine.party_failures

let test_engine_isolation () =
  let engine = Engine.create ~n:2 ~policy:Network.instant () in
  Engine.set_isolation engine `Isolate;
  let traced = ref [] in
  Engine.set_tracer engine (function
    | Engine.Party_failed f -> traced := f :: !traced
    | _ -> ());
  let p0 = ref 0 in
  Engine.set_party engine 0 (fun _ -> incr p0);
  Engine.set_party engine 1 (fun _ -> failwith "handler bug");
  Engine.send engine ~src:0 ~dst:1 "a" (* kills party 1 *);
  Engine.send engine ~src:1 ~dst:0 "b" (* still delivered *);
  Engine.send engine ~src:0 ~dst:1 "c" (* dropped: party 1 is cleared *);
  Engine.run engine;
  Alcotest.(check int) "run continued past the failure" 1 !p0;
  Alcotest.(check int) "stats counter" 1
    (Engine.stats engine).Engine.party_failures;
  (match Engine.failures engine with
  | [ f ] ->
      Alcotest.(check int) "failed party" 1 f.Engine.party;
      Alcotest.(check bool) "reason captured" true
        (String.length f.Engine.reason > 0)
  | l -> Alcotest.failf "recorded %d failures, expected 1" (List.length l));
  match !traced with
  | [ t ] -> Alcotest.(check int) "traced party" 1 t.Engine.party
  | l -> Alcotest.failf "traced %d failures, expected 1" (List.length l)

let test_engine_wrap_party () =
  let engine = Engine.create ~n:2 ~policy:Network.instant () in
  let got = ref [] in
  Engine.set_party engine 1 (fun ev ->
      match ev with
      | Engine.Deliver { msg; _ } -> got := msg :: !got
      | Engine.Timer _ -> ());
  (* replay every delivery once, as the chaos Duplicate atom does *)
  Engine.wrap_party engine 1 (fun inner ev ->
      inner ev;
      match ev with Engine.Deliver _ -> inner ev | Engine.Timer _ -> ());
  Engine.send engine ~src:0 ~dst:1 "x";
  Engine.run engine;
  Alcotest.(check (list string)) "handler saw the replay" [ "x"; "x" ]
    (List.rev !got);
  Alcotest.check_raises "bad party"
    (Invalid_argument "Engine.wrap_party: bad party") (fun () ->
      Engine.wrap_party engine 7 (fun inner -> inner))

(* --- policies --- *)

let check_policy_range name policy lo hi =
  let rng = Rng.create 11L in
  for now = 0 to 50 do
    for src = 0 to 3 do
      for dst = 0 to 3 do
        let d = policy ~rng ~now ~src ~dst in
        if not (d >= lo && d <= hi) then
          Alcotest.failf "%s: delay %d outside [%d, %d]" name d lo hi
      done
    done
  done

let test_policies_sync_bound () =
  check_policy_range "lockstep" (Network.lockstep ~delta:10) 10 10;
  check_policy_range "sync_uniform" (Network.sync_uniform ~delta:10) 1 10;
  check_policy_range "rushing"
    (Network.rushing ~delta:10 ~corrupt:(fun i -> i = 0))
    1 10;
  check_policy_range "targeted_slow"
    (Network.targeted_slow ~delta:10 ~victims:(fun i -> i = 1))
    1 10

let test_policy_rushing_bias () =
  let rng = Rng.create 1L in
  let p = Network.rushing ~delta:10 ~corrupt:(fun i -> i = 0) in
  Alcotest.(check int) "corrupt fast" 1 (p ~rng ~now:0 ~src:0 ~dst:1);
  Alcotest.(check int) "honest slow" 10 (p ~rng ~now:0 ~src:1 ~dst:0)

let test_policy_starve () =
  let rng = Rng.create 1L in
  let p =
    Network.async_starve ~victims:(fun i -> i = 2) ~release:100 ~fast:3
  in
  let d = p ~rng ~now:0 ~src:2 ~dst:0 in
  Alcotest.(check bool) "victim held" true (d >= 100);
  let d = p ~rng ~now:0 ~src:0 ~dst:1 in
  Alcotest.(check bool) "others fast" true (d <= 3);
  let d = p ~rng ~now:200 ~src:2 ~dst:0 in
  Alcotest.(check bool) "after release fast" true (d <= 4)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "coverage" `Quick test_rng_coverage;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "pop_exn" `Quick test_heap_pop_exn;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivery" `Quick test_engine_delivery;
          Alcotest.test_case "fifo per tick" `Quick test_engine_fifo_per_tick;
          Alcotest.test_case "timer" `Quick test_engine_timer;
          Alcotest.test_case "broadcast + stats" `Quick
            test_engine_broadcast_and_stats;
          Alcotest.test_case "crash" `Quick test_engine_crash;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "max_events exact" `Quick
            test_engine_max_events_exact;
          Alcotest.test_case "budget stop (structured)" `Quick
            test_engine_budget_stop;
          Alcotest.test_case "cooperative cancellation" `Quick
            test_engine_cancellation;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "tracer" `Quick test_engine_tracer;
          Alcotest.test_case "fail fast default" `Quick
            test_engine_fail_fast_default;
          Alcotest.test_case "isolation" `Quick test_engine_isolation;
          Alcotest.test_case "wrap_party" `Quick test_engine_wrap_party;
        ] );
      ( "policies",
        [
          Alcotest.test_case "sync bounds" `Quick test_policies_sync_bound;
          Alcotest.test_case "rushing bias" `Quick test_policy_rushing_bias;
          Alcotest.test_case "starvation" `Quick test_policy_starve;
        ] );
      ("heap properties", q [ prop_heap ]);
    ]
