(* Tests for the chaos layer (fault-plan DSL, generator, shrinker), the
   online invariant monitor, and the soak driver that ties them together:
   seeded reproducibility, the network-model bounds of compiled plans,
   monitor unit checks, mutant detection end-to-end and the byte-identical
   parallel soak report. *)

let cfg8 = Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10

(* --- Fault_plan.validate --- *)

let ok_or_fail name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: unexpectedly rejected: %s" name msg

let expect_error name = function
  | Ok () -> Alcotest.failf "%s: expected a validation error" name
  | Error _ -> ()

let test_validate () =
  let corrupt p =
    Fault_plan.Corrupt_at { tick = 5; party = p; behavior = Behavior.Silent }
  in
  ok_or_fail "two adaptive under ts=2"
    (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[]
       [ corrupt 1; corrupt 2 ]);
  expect_error "three adaptive under ts=2"
    (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[]
       [ corrupt 1; corrupt 2; corrupt 3 ]);
  expect_error "budget shared with static corruptions"
    (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[ 0; 4 ] [ corrupt 1 ]);
  expect_error "re-targeting a static corruption"
    (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[ 1 ] [ corrupt 1 ]);
  expect_error "async budget is ta=1"
    (Fault_plan.validate ~cfg:cfg8 ~sync:false ~existing:[]
       [ corrupt 1; corrupt 2 ]);
  expect_error "party out of range"
    (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[] [ corrupt 9 ]);
  ok_or_fail "empty window is a legal no-op"
    (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[]
       [ Fault_plan.Delay_spike { from_tick = 30; until_tick = 30; factor = 2 } ]);
  expect_error "inverted window"
    (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[]
       [ Fault_plan.Delay_spike { from_tick = 30; until_tick = 29; factor = 2 } ]);
  expect_error "partition group array length"
    (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[]
       [
         Fault_plan.Partition
           { from_tick = 0; until_tick = 10; group_of = [| 0; 1 |] };
       ]);
  expect_error "percent over 100"
    (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[]
       [ Fault_plan.Duplicate { from_tick = 0; until_tick = 10; percent = 150 } ])

(* --- Fault_gen: seeded reproducibility --- *)

let test_gen_deterministic () =
  let sample seed =
    Fault_gen.sample (Rng.create seed) ~cfg:cfg8 ~sync:true ~existing:[ 0 ]
      ~horizon:400
  in
  List.iter
    (fun seed ->
      let p1 = sample seed and p2 = sample seed in
      Alcotest.(check (list string))
        "same seed, same plan"
        (Fault_plan.to_strings p1) (Fault_plan.to_strings p2);
      ok_or_fail "sampled plan validates"
        (Fault_plan.validate ~cfg:cfg8 ~sync:true ~existing:[ 0 ] p1))
    [ 1L; 2L; 3L; 17L; 255L ]

let test_gen_respects_async_budget () =
  (* ta = 1 and one existing corruption: no adaptive atoms may be drawn *)
  for seed = 1 to 30 do
    let plan =
      Fault_gen.sample
        (Rng.create (Int64.of_int seed))
        ~cfg:cfg8 ~sync:false ~existing:[ 3 ] ~horizon:400
    in
    Alcotest.(check (list int)) "no adaptive corruption" []
      (Fault_plan.corrupted plan);
    ok_or_fail "validates" (Fault_plan.validate ~cfg:cfg8 ~sync:false ~existing:[ 3 ] plan)
  done

(* --- Fault_plan.compile: network-model bounds --- *)

let test_compile_sync_bounded_by_delta () =
  (* whatever atoms a plan stacks, compiled synchronous delays stay in
     [1, Δ] — chaos degrades the schedule, never breaks the model *)
  for seed = 1 to 25 do
    let gen = Rng.create (Int64.of_int seed) in
    let plan = Fault_gen.sample gen ~cfg:cfg8 ~sync:true ~existing:[] ~horizon:400 in
    let policy =
      Fault_plan.compile ~sync:true ~delta:10
        ~base:(Network.sync_uniform ~delta:10) plan
    in
    let rng = Rng.create 77L in
    for now = 0 to 120 do
      for src = 0 to 7 do
        for dst = 0 to 7 do
          let d = policy ~rng ~now ~src ~dst in
          if d < 1 || d > 10 then
            Alcotest.failf "sync delay %d outside [1, 10] (seed %d, now %d)" d
              seed now
        done
      done
    done
  done

let test_compile_async_finite_and_positive () =
  for seed = 1 to 25 do
    let gen = Rng.create (Int64.of_int seed) in
    let plan =
      Fault_gen.sample gen ~cfg:cfg8 ~sync:false ~existing:[] ~horizon:400
    in
    let policy =
      Fault_plan.compile ~sync:false ~delta:10
        ~base:(Network.async_uniform ~max_delay:50) plan
    in
    let rng = Rng.create 78L in
    for now = 0 to 120 do
      let d = policy ~rng ~now ~src:(now mod 8) ~dst:((now + 3) mod 8) in
      if d < 1 then Alcotest.failf "async delay %d < 1 (seed %d)" d seed
    done
  done

let test_compile_partition_holds_until_heal () =
  let plan =
    [
      Fault_plan.Partition
        { from_tick = 5; until_tick = 20; group_of = [| 0; 1; 0; 1; 0; 1; 0; 1 |] };
    ]
  in
  let policy = Fault_plan.compile ~sync:false ~delta:10 ~base:Network.instant plan in
  let rng = Rng.create 1L in
  (* crossing the cut inside the window: held until the partition heals *)
  let d = policy ~rng ~now:10 ~src:0 ~dst:1 in
  Alcotest.(check bool) "cross-cut held" true (10 + d > 20);
  (* same side: base delay *)
  Alcotest.(check int) "same side fast" 1 (policy ~rng ~now:10 ~src:0 ~dst:2);
  (* outside the window: base delay *)
  Alcotest.(check int) "healed" 1 (policy ~rng ~now:25 ~src:0 ~dst:1)

(* --- Fault_shrink: synthetic oracle --- *)

let test_shrink_synthetic_predicate () =
  (* "bug" := a Delay_spike with factor >= 4 AND a Corrupt_at of party 2;
     the shrinker must land on exactly those two atoms, numerically
     weakened as far as the predicate allows *)
  let plan =
    [
      Fault_plan.Delay_spike { from_tick = 10; until_tick = 60; factor = 6 };
      Fault_plan.Corrupt_at
        {
          tick = 40;
          party = 2;
          behavior = Behavior.Equivocate (Vec.of_list [ 1.; 1. ], Vec.of_list [ 2.; 2. ]);
        };
      Fault_plan.Duplicate { from_tick = 0; until_tick = 30; percent = 50 };
      Fault_plan.Reorder { from_tick = 5; until_tick = 25; window = 4 };
      Fault_plan.Corrupt_at { tick = 7; party = 0; behavior = Behavior.Silent };
    ]
  in
  let reproduces p =
    List.exists
      (function Fault_plan.Delay_spike { factor; _ } -> factor >= 4 | _ -> false)
      p
    && List.exists
         (function Fault_plan.Corrupt_at { party = 2; _ } -> true | _ -> false)
         p
  in
  let o = Fault_shrink.shrink ~reproduces plan in
  Alcotest.(check bool) "still reproduces" true (reproduces o.Fault_shrink.plan);
  Alcotest.(check bool) "1-minimal" true o.Fault_shrink.minimal;
  Alcotest.(check int) "two atoms survive" 2 (List.length o.Fault_shrink.plan);
  List.iter
    (function
      | Fault_plan.Delay_spike { factor; _ } ->
          Alcotest.(check bool) "factor not below the threshold" true (factor >= 4)
      | Fault_plan.Corrupt_at { tick; party; behavior } ->
          Alcotest.(check int) "party pinned" 2 party;
          Alcotest.(check int) "tick driven to 0" 0 tick;
          (match behavior with
          | Behavior.Silent -> ()
          | b ->
              Alcotest.failf "behaviour not weakened to Silent: %s"
                (Fault_plan.atom_to_string
                   (Fault_plan.Corrupt_at { tick; party; behavior = b })))
      | a -> Alcotest.failf "unexpected survivor: %s" (Fault_plan.atom_to_string a))
    o.Fault_shrink.plan

let test_shrink_respects_try_budget () =
  let plan =
    List.init 6 (fun i ->
        Fault_plan.Delay_spike
          { from_tick = i * 10; until_tick = (i * 10) + 5; factor = 2 })
  in
  let calls = ref 0 in
  let reproduces _ =
    incr calls;
    true
  in
  let o = Fault_shrink.shrink ~max_tries:3 ~reproduces plan in
  Alcotest.(check bool) "oracle budget respected" true (o.Fault_shrink.tries <= 3);
  Alcotest.(check bool) "budget exhaustion reported" false o.Fault_shrink.minimal;
  Alcotest.(check bool) "result still reproduces" true (reproduces o.Fault_shrink.plan)

(* --- Monitor units --- *)

let mcfg = Config.make_exn ~n:4 ~ts:1 ~ta:0 ~d:1 ~eps:0.1 ~delta:10
let v1 x = Vec.of_list [ x ]
let minputs = List.map v1 [ 0.; 1.; 2.; 3. ]

let fresh_monitor () =
  Monitor.create ~cfg:mcfg ~honest:[ 0; 1; 2; 3 ] ~honest_inputs:minputs

let count s name =
  match List.assoc_opt name s.Monitor.counts with Some c -> c | None -> 0

let test_monitor_clean_run () =
  let m = fresh_monitor () in
  List.iteri
    (fun i x -> Monitor.on_iteration m ~party:i ~now:1 ~iter:0 (v1 x))
    [ 0.; 1.; 2.; 3. ];
  List.iteri
    (fun i x -> Monitor.on_iteration m ~party:i ~now:2 ~iter:1 (v1 x))
    [ 1.; 1.5; 2.; 2.5 ];
  List.iteri
    (fun i x -> Monitor.on_output m ~party:i ~now:3 ~iter:1 (v1 x))
    [ 2.; 2.05; 2.; 2.05 ];
  Monitor.on_trace m
    (Engine.Sent
       {
         src = 0;
         dst = 1;
         at = 1;
         deliver_at = 2;
         msg =
           Message.Rbc
             ( { Message.tag = Message.Obc_value 1; origin = 0; instance = 0 },
               Message.Init,
               Message.Pvec (v1 1.) );
       });
  let s = Monitor.summary m in
  Alcotest.(check int) "no violations" 0 (Monitor.total_violations s);
  Alcotest.(check bool) "checks counted" true (s.Monitor.checks > 0);
  Alcotest.(check int) "all outputs seen" 4 s.Monitor.honest_outputs;
  Alcotest.(check (float 1e-9)) "final diameter" 0.05 s.Monitor.final_diameter;
  (* summary is idempotent *)
  Alcotest.(check int) "idempotent" 0 (Monitor.total_violations (Monitor.summary m))

let test_monitor_validity_violation () =
  let m = fresh_monitor () in
  Monitor.on_output m ~party:0 ~now:5 ~iter:1 (v1 10.);
  let s = Monitor.summary m in
  Alcotest.(check int) "flagged" 1 (count s "validity")

let test_monitor_agreement_violation () =
  let m = fresh_monitor () in
  Monitor.on_output m ~party:0 ~now:5 ~iter:1 (v1 0.);
  Monitor.on_output m ~party:1 ~now:5 ~iter:1 (v1 1.);
  let s = Monitor.summary m in
  Alcotest.(check int) "pairwise distance > eps" 1 (count s "agreement");
  Alcotest.(check (float 1e-9)) "diameter reported" 1. s.Monitor.final_diameter

let test_monitor_double_output () =
  let m = fresh_monitor () in
  Monitor.on_output m ~party:1 ~now:5 ~iter:1 (v1 1.5);
  Monitor.on_output m ~party:1 ~now:6 ~iter:2 (v1 1.5);
  let s = Monitor.summary m in
  Alcotest.(check int) "flagged" 1 (count s "double-output")

let test_monitor_contraction_violation () =
  let m = fresh_monitor () in
  List.iteri
    (fun i x -> Monitor.on_iteration m ~party:i ~now:1 ~iter:0 (v1 x))
    [ 0.; 1.; 2.; 3. ];
  (* iteration-1 value outside the hull of ALL iteration-0 values: the
     deferred re-check in summary must catch it *)
  Monitor.on_iteration m ~party:0 ~now:2 ~iter:1 (v1 5.);
  let s = Monitor.summary m in
  Alcotest.(check int) "flagged" 1 (count s "contraction")

let test_monitor_malformed_honest_message () =
  let m = fresh_monitor () in
  let send msg =
    Monitor.on_trace m (Engine.Sent { src = 0; dst = 1; at = 0; deliver_at = 1; msg })
  in
  send (Message.Junk 9);
  send
    (Message.Rbc
       ( { Message.tag = Message.Obc_value 1; origin = 9; instance = 0 },
         Message.Init,
         Message.Pvec (v1 1.) ));
  send (Message.Sync_round { round = 1; value = Vec.of_list [ 1.; 2. ] });
  let s = Monitor.summary m in
  Alcotest.(check int) "all three flagged" 3 (count s "malformed-message");
  (* a corrupt sender's junk is NOT flagged — only honest senders are held
     to the protocol's message grammar *)
  let m2 = Monitor.create ~cfg:mcfg ~honest:[ 0; 1; 2 ] ~honest_inputs:(List.map v1 [ 0.; 1.; 2. ]) in
  Monitor.on_trace m2
    (Engine.Sent { src = 3; dst = 1; at = 0; deliver_at = 1; msg = Message.Junk 9 });
  Alcotest.(check int) "corrupt junk ignored" 0
    (Monitor.total_violations (Monitor.summary m2))

(* --- Soak end-to-end --- *)

let test_soak_real_protocol_clean () =
  let config = { Soak.default with Soak.cases = 8; seed = 42L; domains = 1 } in
  let o = Soak.execute config in
  Alcotest.(check int) "all cases ran" 8 o.Soak.total;
  Alcotest.(check int) "zero violations" 0 o.Soak.violations_total;
  Alcotest.(check int) "no honest party missing an output" 0 o.Soak.missing_outputs;
  Alcotest.(check bool) "checks performed" true (o.Soak.checks > 0);
  Alcotest.(check bool) "worst diameter within eps" true
    (o.Soak.worst_diameter <= o.Soak.worst_diameter_eps +. 1e-9)

let test_soak_deterministic_across_domains () =
  let config = { Soak.default with Soak.cases = 6; seed = 9L } in
  let j1 = Soak.to_json config (Soak.execute { config with Soak.domains = 1 }) in
  let j2 = Soak.to_json config (Soak.execute { config with Soak.domains = 2 }) in
  Alcotest.(check string) "byte-identical report" j1 j2

let count_outcome (o : Soak.outcome) name =
  match List.assoc_opt name o.Soak.counts with Some c -> c | None -> 0

let test_soak_catches_mutants () =
  List.iter
    (fun (mutant, expected_invariant) ->
      let config =
        {
          Soak.default with
          Soak.cases = 2;
          seed = 3L;
          domains = 1;
          mutant = Some mutant;
          max_shrink = 60;
        }
      in
      let o = Soak.execute config in
      Alcotest.(check bool)
        (Soak.mutant_to_string (Some mutant) ^ " detected")
        true
        (o.Soak.violations_total > 0);
      Alcotest.(check bool)
        ("invariant " ^ expected_invariant ^ " flagged")
        true
        (count_outcome o expected_invariant > 0);
      List.iter
        (fun vc ->
          Alcotest.(check bool) "shrink reached a fixpoint" true
            vc.Soak.vc_shrink_minimal;
          (* the protocol itself is broken, so the minimal reproducing
             fault plan is the empty one *)
          Alcotest.(check (list string)) "shrunk to the empty plan" []
            vc.Soak.vc_shrunk_plan)
        o.Soak.violating)
    [
      (Party.Non_contracting_update, "validity");
      (Party.Premature_output, "agreement");
    ]

let test_soak_scenarios_reproducible () =
  let config = { Soak.default with Soak.cases = 12; seed = 5L } in
  let fingerprint (s : Scenario.t) =
    ( s.Scenario.name,
      s.Scenario.seed,
      s.Scenario.sync_network,
      List.map fst s.Scenario.corruptions,
      Option.map Fault_plan.to_strings s.Scenario.chaos )
  in
  let a = List.map fingerprint (Soak.build_scenarios config) in
  let b = List.map fingerprint (Soak.build_scenarios config) in
  Alcotest.(check bool) "same seed, same case grid" true (a = b);
  let c =
    List.map fingerprint (Soak.build_scenarios { config with Soak.seed = 6L })
  in
  Alcotest.(check bool) "different seed, different grid" true (a <> c)

(* --- Watchdog, journal and resume --- *)

let test_runner_watchdog_structured () =
  (* the per-case event budget lands as a structured termination, not an
     exception — and ~fail_fast:true pins the old raising behaviour *)
  let scen =
    List.hd (Soak.build_scenarios { Soak.default with Soak.cases = 1; seed = 4L })
  in
  let tiny =
    {
      scen with
      Scenario.budget = { Scenario.max_events = Some 50; wall_seconds = None };
    }
  in
  let r = Runner.run tiny in
  Alcotest.(check string)
    "structured budget exhaustion" "budget-exhausted"
    (Runner.termination_to_string r.Runner.termination);
  Alcotest.(check int) "stopped exactly at the budget" 50
    r.Runner.stats.Engine.events_processed;
  Alcotest.check_raises "fail-fast pins the raise"
    (Failure "Engine.run: max_events exceeded (run-away protocol?)")
    (fun () -> ignore (Runner.run ~fail_fast:true tiny));
  let full = Runner.run scen in
  Alcotest.(check string)
    "a normal case completes" "completed"
    (Runner.termination_to_string full.Runner.termination)

let roundtrip_record r =
  Alcotest.(check bool) "journal line round-trips" true
    (Soak.parse_case (Soak.render_case r) = r)

let test_journal_roundtrip () =
  let base =
    {
      Soak.cr_index = 3;
      cr_name = "soak-0003";
      cr_seed = -77L;
      cr_sync = false;
      cr_checks = 12345;
      cr_counts = [ 0; 1; 2; 0; 5; 0 ];
      cr_missing = 1;
      cr_pfail = 2;
      cr_diameter = 0.1 +. 0.2;  (* not exactly representable: %h must hold *)
      cr_eps = 0.05;
      cr_plan = [ "delay-spike [10,60) x6"; "odd \t%~\x1f chars\n" ];
      cr_status = Soak.Clean;
    }
  in
  roundtrip_record base;
  roundtrip_record
    {
      base with
      Soak.cr_status =
        Soak.Violating
          {
            vd_invariants = [ "validity"; "agreement" ];
            vd_total = 4;
            vd_first = [ "[validity] party=1 t=9 output outside hull" ];
            vd_shrunk = [];
            vd_tries = 12;
            vd_minimal = true;
          };
    };
  roundtrip_record
    {
      base with
      Soak.cr_plan = [];
      cr_status =
        Soak.Quarantined
          {
            qd_reason = "budget-exhausted(40000 events)";
            qd_shrunk = [ "~" ];  (* the empty-list marker itself, escaped *)
            qd_tries = 3;
            qd_minimal = false;
          };
    }

let test_soak_stuck_case_quarantined () =
  (* case 1 is replaced by an unbounded spammer: the event-budget watchdog
     must stop and quarantine it while the other cases grade normally *)
  let config =
    {
      Soak.default with
      Soak.cases = 4;
      seed = 11L;
      domains = 1;
      case_events = 300_000;
      max_shrink = 40;
      stuck = Some 1;
    }
  in
  let o = Soak.execute config in
  Alcotest.(check int) "all cases accounted for" 4 o.Soak.total;
  Alcotest.(check int) "one quarantined" 1 (List.length o.Soak.quarantined);
  let qc = List.hd o.Soak.quarantined in
  Alcotest.(check string) "the injected case" "soak-0001" qc.Soak.qc_name;
  Alcotest.(check bool) "reason names the event budget" true
    (String.length qc.Soak.qc_reason >= 16
    && String.sub qc.Soak.qc_reason 0 16 = "budget-exhausted");
  (* the stuck case carries no chaos plan, so the shrunk repro is the
     empty plan — stuck-ness is attributed to the scenario itself *)
  Alcotest.(check (list string)) "trivial minimal repro" [] qc.Soak.qc_shrunk_plan;
  Alcotest.(check bool) "shrink converged" true qc.Soak.qc_shrink_minimal;
  (* quarantine is not a violation, and the truncated run's monitor data
     stays out of the aggregates *)
  Alcotest.(check int) "no violations" 0 o.Soak.violations_total;
  let clean = Soak.execute { config with Soak.stuck = None } in
  Alcotest.(check int) "without injection nothing is quarantined" 0
    (List.length clean.Soak.quarantined)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let test_soak_resume_byte_identical () =
  let config = { Soak.default with Soak.cases = 6; seed = 9L; domains = 1 } in
  let tmp = Filename.temp_file "soak" ".journal" in
  let json_full = Soak.to_json config (Soak.execute ~journal:tmp config) in
  (* simulate a SIGKILL after 3 cases: header, 3 complete records, and a
     torn half-record with no sentinel and no trailing newline *)
  (match read_lines tmp with
  | header :: c0 :: c1 :: c2 :: c3 :: _ ->
      let oc = open_out tmp in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        [ header; c0; c1; c2 ];
      output_string oc (String.sub c3 0 (String.length c3 - 4));
      close_out oc
  | _ -> Alcotest.fail "journal shorter than expected");
  (* resume on a different domain count: the torn record re-runs, the
     rest replay from the journal, and the report is byte-identical *)
  let o2 = Soak.execute ~journal:tmp ~resume:true { config with Soak.domains = 4 } in
  Alcotest.(check string) "resumed = uninterrupted" json_full
    (Soak.to_json config o2);
  (* the journal is now complete: resuming again re-runs nothing (pure
     replay) and still reproduces the document *)
  let o3 = Soak.execute ~journal:tmp ~resume:true config in
  Alcotest.(check string) "pure replay = uninterrupted" json_full
    (Soak.to_json config o3);
  Sys.remove tmp

let test_soak_resume_rejects_mismatch () =
  let config = { Soak.default with Soak.cases = 2; seed = 21L; domains = 1 } in
  let tmp = Filename.temp_file "soak" ".journal" in
  ignore (Soak.execute ~journal:tmp config);
  (* a journal from a different sweep configuration must be refused, not
     silently replayed into the wrong report *)
  (try
     ignore (Soak.execute ~journal:tmp ~resume:true { config with Soak.seed = 22L });
     Alcotest.fail "mismatched journal accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Soak.execute ~resume:true config);
     Alcotest.fail "resume without a journal accepted"
   with Invalid_argument _ -> ());
  Sys.remove tmp;
  (try
     ignore (Soak.execute ~journal:tmp ~resume:true config);
     Alcotest.fail "missing journal accepted"
   with Invalid_argument _ -> ())

let () =
  Alcotest.run "chaos"
    [
      ( "fault plan",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "generator deterministic" `Quick
            test_gen_deterministic;
          Alcotest.test_case "generator respects async budget" `Quick
            test_gen_respects_async_budget;
          Alcotest.test_case "sync compile bounded by delta" `Quick
            test_compile_sync_bounded_by_delta;
          Alcotest.test_case "async compile finite" `Quick
            test_compile_async_finite_and_positive;
          Alcotest.test_case "partition heals" `Quick
            test_compile_partition_holds_until_heal;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "synthetic predicate" `Quick
            test_shrink_synthetic_predicate;
          Alcotest.test_case "try budget" `Quick test_shrink_respects_try_budget;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "clean run" `Quick test_monitor_clean_run;
          Alcotest.test_case "validity" `Quick test_monitor_validity_violation;
          Alcotest.test_case "agreement" `Quick test_monitor_agreement_violation;
          Alcotest.test_case "double output" `Quick test_monitor_double_output;
          Alcotest.test_case "contraction" `Quick
            test_monitor_contraction_violation;
          Alcotest.test_case "malformed messages" `Quick
            test_monitor_malformed_honest_message;
        ] );
      ( "soak",
        [
          Alcotest.test_case "real protocol clean" `Slow
            test_soak_real_protocol_clean;
          Alcotest.test_case "domains byte-identical" `Slow
            test_soak_deterministic_across_domains;
          Alcotest.test_case "mutants caught + shrunk" `Slow
            test_soak_catches_mutants;
          Alcotest.test_case "case grid reproducible" `Quick
            test_soak_scenarios_reproducible;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "runner watchdog structured" `Quick
            test_runner_watchdog_structured;
          Alcotest.test_case "journal line round-trip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "stuck case quarantined" `Slow
            test_soak_stuck_case_quarantined;
          Alcotest.test_case "kill + resume byte-identical" `Slow
            test_soak_resume_byte_identical;
          Alcotest.test_case "resume validation" `Slow
            test_soak_resume_rejects_mismatch;
        ] );
    ]
