(** A small, dependency-free linear-programming solver.

    Dense two-phase primal simplex with Bland's anti-cycling rule. All
    structural variables are constrained to be non-negative; callers model a
    free variable [y] as the difference [y⁺ − y⁻] of two variables.

    The solver is deterministic: identical problems yield identical optimal
    bases and solutions, which the agreement protocol relies on (parties
    recompute each other's values and must agree bit-for-bit). *)

type cmp = Le | Ge | Eq

type constr = { coeffs : (int * float) list; cmp : cmp; rhs : float }
(** A row [Σ coeffs·x  cmp  rhs]. Variable indices are 0-based and must be
    [< nvars]. Repeated indices in [coeffs] are summed. *)

type result =
  | Optimal of float * float array
      (** Objective value and an optimal assignment of the [nvars]
          structural variables. *)
  | Infeasible
  | Unbounded

val solve :
  ?eps:float ->
  nvars:int ->
  minimize:bool ->
  objective:(int * float) list ->
  constr list ->
  result
(** [solve ~nvars ~minimize ~objective cs] optimises [objective] over
    [{x ≥ 0 : cs}]. [eps] (default [1e-9]) is the numerical tolerance used
    for pivoting and feasibility decisions.

    @raise Failure if the iteration cap is exceeded, which indicates a
    numerically degenerate instance rather than a user error. *)

val feasible_point :
  ?eps:float -> nvars:int -> constr list -> float array option
(** Phase-1 only: some point of the polyhedron, or [None] if empty. *)

(** A reusable LP workspace over one fixed constraint system.

    {!Problem.make} builds the tableau and runs phase-1 feasibility exactly
    once; {!Problem.solve_objective} then answers any number of objectives
    against the same polyhedron by re-pricing the objective row over a basis
    that is already primal feasible. The tableau is one flat row-major float
    array; it, the objective scratch row and the restore snapshot are all
    allocated in [make] and reused across solves — a solve allocates nothing
    beyond the returned solution vector, and a [warm:false] restore is a
    single contiguous blit.

    This is the hot path of the geometry stack: a safe-area diameter search
    issues ~2·(D + 24) support queries against one constraint system, and
    the one-shot {!solve} would rebuild the tableau and redo phase-1 for
    each of them. *)
module Problem : sig
  type t

  val make : ?eps:float -> nvars:int -> constr list -> t
  (** Build the tableau and decide feasibility (phase 1) once. [eps] as in
      {!solve}; it applies to every subsequent query on the workspace.

      @raise Invalid_argument on a variable index outside [0 .. nvars-1].
      @raise Failure if the phase-1 iteration cap is exceeded. *)

  val is_feasible : t -> bool

  val nvars : t -> int

  val feasible_point : t -> float array option
  (** The phase-1 point, bit-identical to the one-shot {!feasible_point} on
      the same constraints, regardless of any solves in between. *)

  val solve_objective :
    ?warm:bool -> t -> minimize:bool -> objective:(int * float) list -> result
  (** Optimise one more objective over the workspace's polyhedron.

      With [warm:true] (the default) phase 2 starts from the basis the
      previous solve ended in — the fastest mode when consecutive
      objectives are related, e.g. a swept support direction. The result is
      still deterministic (a fixed call sequence yields fixed answers) and
      the optimal {e value} agrees with {!solve}, but the pivot path — and
      hence the floating-point noise and the argmax on a degenerate face —
      may differ from the one-shot solver's.

      With [warm:false] the pristine post-phase-1 tableau is restored first
      (one whole-tableau blit, no allocation), after which phase 2 replays
      exactly what
      {!solve} would do: results are bit-identical to the one-shot solver.
      The geometry stack uses this mode so that cached-workspace queries
      remain bit-compatible with recomputation from scratch.

      @raise Invalid_argument on a variable index outside [0 .. nvars-1].
      @raise Failure if the iteration cap is exceeded. *)
end
