type cmp = Le | Ge | Eq
type constr = { coeffs : (int * float) list; cmp : cmp; rhs : float }
type result = Optimal of float * float array | Infeasible | Unbounded

(* The tableau is a dense [m × (ncols + 1)] matrix stored as one flat
   row-major float array ([stride = ncols + 1]); row [i] occupies
   [tab.(i*stride) .. tab.(i*stride + ncols)], last cell = rhs. [basis.(i)]
   is the variable basic in row [i]. The objective is carried as a separate
   priced-out row [obj] of length [stride]; [obj.(ncols)] holds [−z]. The
   [obj] scratch row is allocated once with the tableau and reused by every
   phase, so a solve performs no per-phase allocation. Bland's rule
   (smallest eligible index enters, smallest basic index leaves on ties)
   makes the solver terminate and deterministic. *)

type tableau = {
  m : int;
  ncols : int;
  stride : int;
  tab : float array;
  basis : int array;
  obj : float array;  (* shared scratch objective row, length [stride] *)
  eps : float;
}

let price_out t obj =
  let tab = t.tab in
  for i = 0 to t.m - 1 do
    let c = obj.(t.basis.(i)) in
    if Float.abs c > 0. then begin
      let off = i * t.stride in
      for j = 0 to t.ncols do
        obj.(j) <- obj.(j) -. (c *. tab.(off + j))
      done
    end
  done

let pivot t obj ~row ~col =
  let tab = t.tab in
  let ro = row * t.stride in
  let piv = tab.(ro + col) in
  for j = 0 to t.ncols do
    tab.(ro + j) <- tab.(ro + j) /. piv
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let io = i * t.stride in
      let f = tab.(io + col) in
      if Float.abs f > 0. then
        for j = 0 to t.ncols do
          tab.(io + j) <- tab.(io + j) -. (f *. tab.(ro + j))
        done
    end
  done;
  let f = obj.(col) in
  if Float.abs f > 0. then
    for j = 0 to t.ncols do
      obj.(j) <- obj.(j) -. (f *. tab.(ro + j))
    done;
  t.basis.(row) <- col

(* Optimise the priced-out objective [obj] over columns [< allowed].
   Dantzig's rule (most negative reduced cost) for speed; after a stall
   threshold the loop switches to Bland's rule with exact tie comparisons,
   which cannot cycle. Returns [`Optimal] or [`Unbounded]. *)
let optimise t obj ~allowed =
  let stall = 2_000 + (20 * (t.m + t.ncols)) in
  let cap = (20 * stall) + 200_000 in
  let rec loop iter =
    if iter > cap then failwith "Lp: iteration cap exceeded";
    let bland = iter > stall in
    let entering = ref (-1) in
    if bland then (
      try
        for j = 0 to allowed - 1 do
          if obj.(j) < -.t.eps then begin
            entering := j;
            raise Exit
          end
        done
      with Exit -> ())
    else begin
      let best = ref (-.t.eps) in
      for j = 0 to allowed - 1 do
        if obj.(j) < !best then begin
          best := obj.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let off = i * t.stride in
        let a = t.tab.(off + col) in
        if a > t.eps then begin
          let ratio = t.tab.(off + t.ncols) /. a in
          (* exact comparisons: Bland's termination argument needs true
             ties, not eps-windows *)
          if
            ratio < !best_ratio
            || (ratio = !best_ratio && !best >= 0
               && t.basis.(i) < t.basis.(!best))
          then begin
            best := i;
            best_ratio := ratio
          end
        end
      done;
      if !best < 0 then `Unbounded
      else begin
        pivot t obj ~row:!best ~col;
        loop (iter + 1)
      end
    end
  in
  loop 0

(* Build the tableau: structural vars, then slack/surplus, then artificials.
   Returns the tableau together with the index where artificials start. *)
let build ~eps ~nvars cs =
  let m = List.length cs in
  let n_slack =
    List.fold_left
      (fun acc c -> match c.cmp with Le | Ge -> acc + 1 | Eq -> acc)
      0 cs
  in
  (* Worst case every row needs an artificial. *)
  let art_start = nvars + n_slack in
  let ncols = art_start + m in
  let stride = ncols + 1 in
  let tab = Array.make (m * stride) 0. in
  let basis = Array.make m (-1) in
  let obj = Array.make stride 0. in
  let slack = ref nvars in
  let n_art = ref 0 in
  List.iteri
    (fun i c ->
      let off = i * stride in
      List.iter
        (fun (j, v) ->
          if j < 0 || j >= nvars then invalid_arg "Lp: variable out of range";
          tab.(off + j) <- tab.(off + j) +. v)
        c.coeffs;
      tab.(off + ncols) <- c.rhs;
      let cmp = c.cmp in
      (* Normalise to rhs ≥ 0. *)
      let cmp =
        if tab.(off + ncols) < 0. then begin
          for j = 0 to ncols do
            tab.(off + j) <- -.tab.(off + j)
          done;
          match cmp with Le -> Ge | Ge -> Le | Eq -> Eq
        end
        else cmp
      in
      (match cmp with
      | Le ->
          tab.(off + !slack) <- 1.;
          basis.(i) <- !slack;
          incr slack
      | Ge ->
          tab.(off + !slack) <- -1.;
          incr slack;
          let a = art_start + !n_art in
          tab.(off + a) <- 1.;
          basis.(i) <- a;
          incr n_art
      | Eq ->
          let a = art_start + !n_art in
          tab.(off + a) <- 1.;
          basis.(i) <- a;
          incr n_art);
      (* A Le row with rhs ≥ 0 uses its slack as the initial basic var. *)
      ())
    cs;
  ({ m; ncols; stride; tab; basis; obj; eps }, art_start)

(* After phase 1, drive any artificial still in the basis out of it (its
   value is 0). If its whole row is 0 on real columns the row is redundant:
   neutralise it so it can never pivot again. *)
let expel_artificials t obj ~art_start =
  for i = 0 to t.m - 1 do
    if t.basis.(i) >= art_start then begin
      let off = i * t.stride in
      let col = ref (-1) in
      (try
         for j = 0 to art_start - 1 do
           if Float.abs t.tab.(off + j) > t.eps then begin
             col := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !col >= 0 then pivot t obj ~row:i ~col:!col
      else
        (* redundant row: zero it, keep the artificial basic at level 0 *)
        for j = 0 to t.ncols do
          if j <> t.basis.(i) then t.tab.(off + j) <- 0.
        done
    end
  done

let phase1 ~eps ~nvars cs =
  let t, art_start = build ~eps ~nvars cs in
  let obj = t.obj in
  for j = art_start to t.ncols - 1 do
    obj.(j) <- 1.
  done;
  price_out t obj;
  (match optimise t obj ~allowed:t.ncols with
  | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | `Optimal -> ());
  let z = -.obj.(t.ncols) in
  (* infeasibility tolerance scales with problem size a little *)
  if z > eps *. 1e3 *. float_of_int (max 1 t.m) then None
  else begin
    expel_artificials t obj ~art_start;
    Some (t, art_start)
  end

(* The returned assignment is the only allocation a solve makes: it escapes
   to the caller (geometry keeps the points), so it cannot be a reused
   scratch buffer. *)
let extract t ~nvars =
  let x = Array.make nvars 0. in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    if b < nvars then x.(b) <- t.tab.((i * t.stride) + t.ncols)
  done;
  x

let solve ?(eps = 1e-9) ~nvars ~minimize ~objective cs =
  match phase1 ~eps ~nvars cs with
  | None -> Infeasible
  | Some (t, art_start) ->
      let obj = t.obj in
      Array.fill obj 0 t.stride 0.;
      let sign = if minimize then 1. else -1. in
      List.iter (fun (j, v) -> obj.(j) <- obj.(j) +. (sign *. v)) objective;
      price_out t obj;
      (match optimise t obj ~allowed:art_start with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let x = extract t ~nvars in
          let z = -.obj.(t.ncols) in
          Optimal ((if minimize then z else -.z), x))

let feasible_point ?(eps = 1e-9) ~nvars cs =
  match phase1 ~eps ~nvars cs with
  | None -> None
  | Some (t, _) -> Some (extract t ~nvars)

(* A factored LP workspace: the tableau is built and phase-1 is run exactly
   once per constraint system; every subsequent objective is answered by
   re-pricing over a basis that is already primal feasible. Two phase-2
   entry modes share the same buffers:

   - [warm:true] starts from whatever basis the previous solve ended in.
     Successive similar objectives (e.g. support directions swept over a
     polytope) then need only a handful of pivots.
   - [warm:false] first restores the pristine post-phase-1 tableau (one
     whole-array blit on the flat tableau, no allocation). Phase 2 then
     replays exactly the pivots the one-shot [solve] would have made, so
     results are bit-identical to it — which the agreement protocol's
     cross-party determinism and the differential tests rely on.

   The flat tableau, its objective scratch row and the restore snapshot are
   allocated once in [make]; [solve_objective] itself allocates only the
   returned solution vector. *)
module Problem = struct
  type state = {
    t : tableau;
    art_start : int;
    nvars : int;
    base_tab : float array;  (* post-phase-1 snapshot, same flat layout *)
    base_basis : int array;
    mutable pristine : bool;  (* true while [t] still equals the snapshot *)
  }

  type t = Empty of { nvars : int } | Workspace of state

  let make ?(eps = 1e-9) ~nvars cs =
    match phase1 ~eps ~nvars cs with
    | None -> Empty { nvars }
    | Some (t, art_start) ->
        Workspace
          {
            t;
            art_start;
            nvars;
            base_tab = Array.copy t.tab;
            base_basis = Array.copy t.basis;
            pristine = true;
          }

  let is_feasible = function Empty _ -> false | Workspace _ -> true
  let nvars = function Empty { nvars } | Workspace { nvars; _ } -> nvars

  let restore s =
    if not s.pristine then begin
      Array.blit s.base_tab 0 s.t.tab 0 (Array.length s.base_tab);
      Array.blit s.base_basis 0 s.t.basis 0 s.t.m;
      s.pristine <- true
    end

  (* Reads the snapshot directly, so the answer matches the one-shot
     [feasible_point] bit-for-bit no matter what has been solved since. *)
  let feasible_point = function
    | Empty _ -> None
    | Workspace s ->
        let x = Array.make s.nvars 0. in
        for i = 0 to s.t.m - 1 do
          let b = s.base_basis.(i) in
          if b < s.nvars then
            x.(b) <- s.base_tab.((i * s.t.stride) + s.t.ncols)
        done;
        Some x

  let solve_objective ?(warm = true) p ~minimize ~objective =
    match p with
    | Empty _ -> Infeasible
    | Workspace s ->
        if not warm then restore s;
        let obj = s.t.obj in
        Array.fill obj 0 s.t.stride 0.;
        let sign = if minimize then 1. else -1. in
        List.iter
          (fun (j, v) ->
            if j < 0 || j >= s.nvars then
              invalid_arg "Lp: variable out of range";
            obj.(j) <- obj.(j) +. (sign *. v))
          objective;
        price_out s.t obj;
        s.pristine <- false;
        (match optimise s.t obj ~allowed:s.art_start with
        | `Unbounded -> Unbounded
        | `Optimal ->
            let x = extract s.t ~nvars:s.nvars in
            let z = -.obj.(s.t.ncols) in
            Optimal ((if minimize then z else -.z), x))
end
