type 'msg event = Deliver of { src : int; msg : 'msg } | Timer of int

type 'msg endpoint = {
  me : int;
  n : int;
  now : unit -> int;
  send_all : 'msg -> unit;
  set_timer : at:int -> tag:int -> unit;
  register_flush : (final:bool -> unit) -> unit;
  set_handler : ('msg event -> unit) -> unit;
}
