(** The transport seam between protocol code and whatever moves the
    messages.

    A party is driven entirely through one {!endpoint}: it learns the
    local clock from [now], emits through [send_all], arms wake-ups with
    [set_timer], and receives deliveries and timer fires through the
    handler it installs with [set_handler]. Nothing in [lib/maaa],
    [lib/broadcast] or [lib/baselines] may assume what sits behind the
    record — today it is either the discrete-event simulator
    ([Engine.endpoint]) or the simulator driving the loopback TCP wire
    of [lib/net] ([lib/net] plugs in {e below} the engine, so the same
    endpoint serves both backends).

    Time is an abstract integer tick count; each backend defines its
    own clock (simulator ticks today). Channels are authenticated: a
    delivered message carries its true sender. *)

type 'msg event =
  | Deliver of { src : int; msg : 'msg }
  | Timer of int  (** protocol-chosen tag *)

type 'msg endpoint = {
  me : int;  (** this party's identity, [0 .. n-1] *)
  n : int;  (** number of parties *)
  now : unit -> int;  (** local clock, in backend ticks *)
  send_all : 'msg -> unit;  (** broadcast to every party, including self *)
  set_timer : at:int -> tag:int -> unit;
      (** wake the handler with [Timer tag] at absolute tick [at] *)
  register_flush : (final:bool -> unit) -> unit;
      (** register an end-of-tick flush hook (the batched message
          layer's seam). The backend runs every registered hook once
          per tick value just before time advances; it additionally
          runs them with [final = true] when the whole run is about to
          go quiescent, so a hook that coalesces across ticks can emit
          what it still holds instead of losing it. *)
  set_handler : ('msg event -> unit) -> unit;
      (** install (or replace) the event handler *)
}
