let max_subsets = 100_000

let count ~m ~t =
  if t < 0 || t > m then 0
  else begin
    let t = min t (m - t) in
    let acc = ref 1 in
    (try
       for i = 1 to t do
         let next = !acc * (m - t + i) / i in
         if next < !acc then begin
           (* overflow *)
           acc := max_int;
           raise Exit
         end;
         acc := next
       done
     with Exit -> ());
    !acc
  end

(* Iterative lexicographic generator over index arrays: [idx] walks the
   C(m, t) combinations of [keep = m − t] positions in increasing
   lexicographic order — the same order the old recursive list-of-lists
   version produced — with the family size taken from [count] instead of
   being discovered by consing. No list append, no [List.length], and the
   only allocations are the result rows themselves. *)
let subsets_arr ~t arr =
  let m = Array.length arr in
  if t < 0 || t > m then invalid_arg "Restrict.subsets: bad t";
  if count ~m ~t > max_subsets then
    invalid_arg "Restrict.subsets: family too large";
  let keep = m - t in
  let total = count ~m ~t in
  if keep = 0 then Array.make total [||]
  else begin
    let out = Array.make total [||] in
    let idx = Array.init keep (fun i -> i) in
    for s = 0 to total - 1 do
      out.(s) <- Array.init keep (fun i -> arr.(idx.(i)));
      if s < total - 1 then begin
        (* Advance: bump the rightmost index that still has headroom and
           restack everything to its right immediately after it. *)
        let p = ref (keep - 1) in
        while idx.(!p) = m - keep + !p do
          decr p
        done;
        idx.(!p) <- idx.(!p) + 1;
        for q = !p + 1 to keep - 1 do
          idx.(q) <- idx.(q - 1) + 1
        done
      end
    done;
    out
  end

let subsets ~t l =
  Array.to_list (Array.map Array.to_list (subsets_arr ~t (Array.of_list l)))
