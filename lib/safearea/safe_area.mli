(** The safe area [safe_t(M)] of Definition 5.1 and the protocol's
    new-value rule.

    [safe_t(M) = ⋂ { convex(M') : M' ⊆ M, |M'| = |M| − t }] is the region
    guaranteed to lie inside the convex hull of the honest values of [M]
    whenever at most [t] of them are adversarial. The representation is
    exact for dimensions 1–3 (order statistics, convex polygon clipping,
    clipped 3-D polytopes — see {!Hull3d}) and implicit (LP-backed, see
    {!Hullset}) for [D ≥ 4]; degenerate [D = 3] inputs fall back to the
    implicit kernel. The implicit diameter is a deterministic convergent
    approximation, as documented in DESIGN.md.

    Every operation is deterministic: parties recomputing a safe area from
    the same multiset obtain bit-identical results, which Πinit's
    estimation consistency relies on. *)

type t =
  | Interval of { lo : float; hi : float }  (** [D = 1] *)
  | Planar of Polygon.t  (** [D = 2] *)
  | Spatial of Hull3d.poly  (** [D = 3], exact clipped polytope *)
  | Implicit of Hullset.t
      (** [D ≥ 4], and the [D = 3] degenerate fallback; known non-empty *)

val compute : t:int -> Vec.t list -> t option
(** [compute ~t vs] is [safe_t(vs)], or [None] when the intersection is
    empty. [vs] is the multiset [val(M)] (duplicates allowed and
    meaningful).

    @raise Invalid_argument if [vs] is empty, [t < 0], [t ≥ length vs], or
    the subset family exceeds {!Restrict.max_subsets}. *)

val compute_arr : t:int -> Vec.t array -> t option
(** Array-native variant of {!compute} (the protocol hot path); the input
    array is not mutated. Bit-identical to [compute ~t (Array.to_list vs)]. *)

val contains : ?eps:float -> t -> Vec.t -> bool

val diameter_pair : t -> Vec.t * Vec.t
(** The deterministic pair [(a, b)] realizing (for [D ≤ 3]: exactly; for
    the implicit arm: approximately, see DESIGN.md) the diameter of the
    area, with the paper's lexicographic tie-break. *)

val diameter : t -> float

val midpoint_value : t -> Vec.t
(** [(a + b) / 2] for [(a, b) = diameter_pair]; the value an honest party
    adopts in ΠAA-it (and the estimation rule of Πinit). Guaranteed to lie
    in the area (Lemma 5.6). *)

val new_value : t:int -> Vec.t list -> Vec.t option
(** [new_value ~t vs = Option.map midpoint_value (compute ~t vs)]:
    the complete "trim and average" step of one iteration. *)

val new_value_arr : t:int -> Vec.t array -> Vec.t option
(** Array-native {!new_value}, over {!compute_arr}. *)

val interior_point : t -> Vec.t
(** Some deterministic point of the area (used by the ablations; the
    protocol itself uses {!midpoint_value}). *)

val centroid_value : t -> Vec.t
(** The centroid-style update rule (DESIGN.md §4 ablation and the
    Cambus–Melnyk-inspired [`Centroid] party kernel): the centroid of the
    area's known extreme points ([D ≤ 3]) or a deterministic interior
    point (implicit arm — the memoised phase-1 point, no diameter LPs).
    Valid (stays inside the area, hence inside every trimmed-subset hull)
    but comes without the paper's [√(7/8)] contraction constant; E7 and
    E17 measure the difference. *)

val centroid_value_arr : t:int -> Vec.t array -> Vec.t option
(** [Option.map centroid_value (compute_arr ~t vs)]: the complete
    trim-and-centroid step of one [`Centroid]-kernel iteration. *)