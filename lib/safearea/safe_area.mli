(** The safe area [safe_t(M)] of Definition 5.1 and the protocol's
    new-value rule.

    [safe_t(M) = ⋂ { convex(M') : M' ⊆ M, |M'| = |M| − t }] is the region
    guaranteed to lie inside the convex hull of the honest values of [M]
    whenever at most [t] of them are adversarial. The representation is
    exact for dimensions 1 and 2 (order statistics, convex polygon
    clipping) and implicit (LP-backed, see {!Hullset}) for [D ≥ 3]; the
    [D ≥ 3] diameter is a deterministic convergent approximation, as
    documented in DESIGN.md.

    Every operation is deterministic: parties recomputing a safe area from
    the same multiset obtain bit-identical results, which Πinit's
    estimation consistency relies on. *)

type t =
  | Interval of { lo : float; hi : float }  (** [D = 1] *)
  | Planar of Polygon.t  (** [D = 2] *)
  | Implicit of Hullset.t  (** [D ≥ 3]; known non-empty *)

val compute : t:int -> Vec.t list -> t option
(** [compute ~t vs] is [safe_t(vs)], or [None] when the intersection is
    empty. [vs] is the multiset [val(M)] (duplicates allowed and
    meaningful).

    @raise Invalid_argument if [vs] is empty, [t < 0], [t ≥ length vs], or
    the subset family exceeds {!Restrict.max_subsets}. *)

val compute_arr : t:int -> Vec.t array -> t option
(** Array-native variant of {!compute} (the protocol hot path); the input
    array is not mutated. Bit-identical to [compute ~t (Array.to_list vs)]. *)

val contains : ?eps:float -> t -> Vec.t -> bool

val diameter_pair : t -> Vec.t * Vec.t
(** The deterministic pair [(a, b)] realizing (for [D ≤ 2]: exactly; for
    [D ≥ 3]: approximately, see DESIGN.md) the diameter of the area, with
    the paper's lexicographic tie-break. *)

val diameter : t -> float

val midpoint_value : t -> Vec.t
(** [(a + b) / 2] for [(a, b) = diameter_pair]; the value an honest party
    adopts in ΠAA-it (and the estimation rule of Πinit). Guaranteed to lie
    in the area (Lemma 5.6). *)

val new_value : t:int -> Vec.t list -> Vec.t option
(** [new_value ~t vs = Option.map midpoint_value (compute ~t vs)]:
    the complete "trim and average" step of one iteration. *)

val new_value_arr : t:int -> Vec.t array -> Vec.t option
(** Array-native {!new_value}, over {!compute_arr}. *)

val interior_point : t -> Vec.t
(** Some deterministic point of the area (used by the ablations; the
    protocol itself uses {!midpoint_value}). *)

val centroid_value : t -> Vec.t
(** The ablated update rule of DESIGN.md §4: the centroid of the area's
    known extreme points ([D ≤ 2]) or a deterministic interior point
    ([D ≥ 3]). Valid (stays inside the area) but comes without the
    paper's [√(7/8)] contraction constant; E7 measures the difference. *)