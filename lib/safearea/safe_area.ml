type t =
  | Interval of { lo : float; hi : float }
  | Planar of Polygon.t
  | Spatial of Hull3d.poly
  | Implicit of Hullset.t

let compute_1d ~t vs =
  let arr = Array.map (fun v -> Vec.get v 0) vs in
  Array.sort Float.compare arr;
  let m = Array.length arr in
  (* The intersection's lower end is the largest attainable subset minimum,
     reached by dropping the [t] smallest values; symmetrically above. *)
  let lo = arr.(t) and hi = arr.(m - 1 - t) in
  if lo > hi then None else Some (Interval { lo; hi })

let compute_2d ~t vs =
  let polys =
    Restrict.subsets_arr ~t vs
    |> Array.map (fun sub -> Polygon.of_points (Array.to_list sub))
    |> Array.to_list
  in
  Option.map (fun p -> Planar p) (Polygon.inter_all polys)

let compute_nd_of subs =
  let hs = Hullset.of_arrays subs in
  if Hullset.is_empty hs then None else Some (Implicit hs)

let compute_nd ~t vs = compute_nd_of (Restrict.subsets_arr ~t vs)

(* D = 3 fast path: the exact clipped-polytope kernel. Degenerate inputs
   (affinely dependent subsets, tolerance-thin intersections) and advisory
   emptiness both fall back to the LP-backed implicit kernel, so the
   emptiness *decision* — which the protocol's non-emptiness assertion
   (Lemma 5.5) leans on — is always the LP's. The fallback condition is a
   pure function of the input bits, so all parties take the same arm. *)
let compute_3d ~t vs =
  let subs = Restrict.subsets_arr ~t vs in
  match Hull3d.inter_hulls subs with
  | `Poly p -> Some (Spatial p)
  | `Empty | `Degenerate -> compute_nd_of subs

(* Array-native core: the multiset arrives as an array, is canonicalised in
   place, and flows into the per-dimension kernels without intermediate
   lists. [compute] wraps it for list-based callers. *)
let compute_arr ~t vs =
  let m = Array.length vs in
  if m = 0 then invalid_arg "Safe_area.compute: empty multiset";
  if t < 0 || t >= m then invalid_arg "Safe_area.compute: need 0 <= t < |M|";
  (* Canonicalise the multiset order so the result — including its floating
     point noise — is independent of the order values were received in.
     (Vectors comparing equal are coordinate-identical, so the unstable
     sort cannot perturb the value sequence.) *)
  let vs = Array.copy vs in
  Array.sort Vec.compare vs;
  match Vec.dim vs.(0) with
  | 1 -> compute_1d ~t vs
  | 2 -> compute_2d ~t vs
  | 3 -> compute_3d ~t vs
  | _ -> compute_nd ~t vs

let compute ~t vs = compute_arr ~t (Array.of_list vs)

let contains ?(eps = 1e-9) area p =
  match area with
  | Interval { lo; hi } ->
      let x = Vec.get p 0 in
      x >= lo -. eps && x <= hi +. eps
  | Planar poly -> Polygon.contains ~eps poly p
  | Spatial poly -> Hull3d.contains ~eps poly p
  | Implicit hs -> Hullset.contains ~eps hs p

let diameter_pair = function
  | Interval { lo; hi } -> (Vec.of_list [ lo ], Vec.of_list [ hi ])
  | Planar poly -> Polygon.diameter_pair poly
  | Spatial poly -> Hull3d.diameter_pair poly
  | Implicit hs -> (
      match Hullset.diameter_pair hs with
      | Some pair -> pair
      | None -> assert false (* Implicit areas are non-empty by construction *))

let diameter area =
  let a, b = diameter_pair area in
  Vec.dist a b

let midpoint_value area =
  let a, b = diameter_pair area in
  Vec.midpoint a b

let new_value ~t vs = Option.map midpoint_value (compute ~t vs)
let new_value_arr ~t vs = Option.map midpoint_value (compute_arr ~t vs)

let interior_point = function
  | Interval { lo; hi } -> Vec.of_list [ (lo +. hi) /. 2. ]
  | Planar poly -> Vec.centroid (Polygon.vertices poly)
  | Spatial poly -> Hull3d.centroid poly
  | Implicit hs -> (
      match Hullset.find_point hs with
      | Some p -> p
      | None -> assert false (* Implicit areas are non-empty *))

let centroid_value = interior_point
let centroid_value_arr ~t vs = Option.map centroid_value (compute_arr ~t vs)
