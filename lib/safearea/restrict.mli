(** Enumeration of the subset family [restrict_t(M)] of Definition 5.1:
    all subsets of [M] of size [|M| − t]. *)

val count : m:int -> t:int -> int
(** [count ~m ~t = C(m, t)], the size of the family. Saturates at
    [max_int] rather than overflowing. *)

val subsets_arr : t:int -> 'a array -> 'a array array
(** [subsets_arr ~t a] is every subarray of [a] obtained by removing
    exactly [t] elements, each preserving the original order; the family is
    produced in increasing lexicographic order of the kept index sets. This
    is the allocation-lean kernel behind {!subsets} and the safe-area
    computation; the returned rows are fresh.

    @raise Invalid_argument under the same conditions as {!subsets}. *)

val subsets : t:int -> 'a list -> 'a list list
(** [subsets ~t l] is every sublist of [l] obtained by removing exactly
    [t] elements, each preserving the original order; the family itself is
    produced in a deterministic order.

    @raise Invalid_argument if [t < 0], [t > length l], or the family would
    exceed {!max_subsets} elements. *)

val max_subsets : int
(** Safety cap ([100_000]) on the family size. *)
