(** Run-scoped memoisation of the safe-area update rules.

    The update rule is a deterministic pure function of the kernel, the
    trim level and the value multiset, and in synchronous executions every
    honest party evaluates it on the {e same} multiset each iteration (and
    on the same witness reports during Πinit). One cache shared by all
    parties of a run makes those n duplicate evaluations one kernel call
    plus n-1 lookups, without changing any result bit: a hit returns
    exactly what the miss computed from identical inputs.

    Scope a cache to one engine: within one event loop it may be shared
    across {e co-resident protocol instances} too (the multi-instance
    runner keys one cache per (D, trim-profile) class), because the memo
    is pure — a hit returns the identical bits a miss would recompute.
    Sharing across pool domains is forbidden by the harness determinism
    contract (no mutable state crosses jobs). *)

type kernel = [ `Safe_area | `Centroid ]
(** Which update rule a cached value belongs to: the paper's
    diameter-midpoint rule ({!Safe_area.new_value_arr}) or the
    centroid-style rule ({!Safe_area.centroid_value_arr}). The kernel is
    part of the cache key, so one run-scoped cache can serve parties on
    different kernels without collisions. *)

type t

val create : unit -> t

val new_value_arr : ?kernel:kernel -> t -> t:int -> Vec.t array -> Vec.t option
(** Same contract as {!Safe_area.new_value_arr} (default) or
    {!Safe_area.centroid_value_arr} ([~kernel:`Centroid]); the multiset is
    canonicalised, so permutations of one multiset hit one entry. *)

val reset : t -> unit

(* -- lookup accounting (surfaced in Runner.result) -- *)

val hits : t -> int
(** Lookups answered from the memo. *)

val misses : t -> int
(** Lookups that ran the geometry kernel. *)

val size : t -> int
(** Distinct (kernel, trim, multiset) keys currently cached. *)
