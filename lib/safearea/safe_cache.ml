(* Memoised safe-area update values, shared across the parties of one run.
   ΠAA's update rule is a pure function of (kernel, trim, multiset): under
   any schedule where several honest parties assemble the same report
   multiset in the same iteration — which is every party, every iteration,
   in a synchronous run without equivocation — the geometry kernel redoes
   the same O(C(m, m-t)) intersection per party. Keying on the
   canonically-sorted multiset collapses those to one computation. The
   cached vector is exactly what the uncached call would have returned
   (same inputs, deterministic kernel), so results are bit-identical;
   sharing the physical vector is safe because [Vec.t] is immutable. *)

type kernel = [ `Safe_area | `Centroid ]

type key = {
  trim : int;
  kernel : int;  (* 0 = midpoint rule, 1 = centroid rule *)
  vs : Vec.t array; (* sorted by Vec.compare *)
}

module H = Hashtbl.Make (struct
  type t = key

  let equal a b =
    a.trim = b.trim && a.kernel = b.kernel
    && Array.length a.vs = Array.length b.vs
    &&
    let n = Array.length a.vs in
    let rec go i = i = n || (Vec.equal_exact a.vs.(i) b.vs.(i) && go (i + 1)) in
    go 0

  let hash k =
    let h = ref (((k.trim + 1) * 0x01000193) lxor (k.kernel * 0x9e3779b9)) in
    Array.iter (fun v -> h := (!h * 0x01000193) lxor Vec.hash v) k.vs;
    !h land max_int
end)

type t = {
  tbl : Vec.t option H.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { tbl = H.create 64; hits = 0; misses = 0 }
let hits t = t.hits
let misses t = t.misses
let size t = H.length t.tbl

let new_value_arr ?(kernel = `Safe_area) cache ~t vs =
  (* Canonicalise the order here so permutations of one multiset share an
     entry; [Safe_area.new_value_arr] re-sorts its own copy, which is
     idempotent and cheap next to the kernel. *)
  let vs = Array.copy vs in
  Array.sort Vec.compare vs;
  let kid = match kernel with `Safe_area -> 0 | `Centroid -> 1 in
  let key = { trim = t; kernel = kid; vs } in
  match H.find_opt cache.tbl key with
  | Some r ->
      cache.hits <- cache.hits + 1;
      r
  | None ->
      cache.misses <- cache.misses + 1;
      let r =
        match kernel with
        | `Safe_area -> Safe_area.new_value_arr ~t vs
        | `Centroid -> Safe_area.centroid_value_arr ~t vs
      in
      H.add cache.tbl key r;
      r

let reset t =
  H.reset t.tbl;
  t.hits <- 0;
  t.misses <- 0
