type outcome = { plan : Fault_plan.t; tries : int; minimal : bool }

(* Simpler variants of one atom, strongest simplification first. Variants
   must stay valid whenever the original was (ticks only move toward 0,
   windows only shrink, magnitudes only weaken). *)
let candidates (atom : Fault_plan.atom) : Fault_plan.atom list =
  match atom with
  | Fault_plan.Corrupt_at { tick; party; behavior } ->
      (match behavior with
      | Behavior.Silent -> []
      | _ -> [ Fault_plan.Corrupt_at { tick; party; behavior = Behavior.Silent } ])
      @
      if tick > 0 then
        [
          Fault_plan.Corrupt_at { tick = 0; party; behavior };
          Fault_plan.Corrupt_at { tick = tick / 2; party; behavior };
        ]
      else []
  | Fault_plan.Partition { from_tick; until_tick; group_of } ->
      let len = until_tick - from_tick in
      (if from_tick > 0 then
         [
           Fault_plan.Partition { from_tick = 0; until_tick = len; group_of };
           Fault_plan.Partition
             {
               from_tick = from_tick / 2;
               until_tick = (from_tick / 2) + len;
               group_of;
             };
         ]
       else [])
      @
      if len > 1 then
        [
          Fault_plan.Partition
            { from_tick; until_tick = from_tick + max 1 (len / 2); group_of };
        ]
      else []
  | Fault_plan.Delay_spike { from_tick; until_tick; factor } ->
      let len = until_tick - from_tick in
      (if factor > 2 then
         [ Fault_plan.Delay_spike { from_tick; until_tick; factor = max 2 (factor / 2) } ]
       else [])
      @ (if from_tick > 0 then
           [ Fault_plan.Delay_spike { from_tick = 0; until_tick = len; factor } ]
         else [])
      @
      if len > 1 then
        [
          Fault_plan.Delay_spike
            { from_tick; until_tick = from_tick + max 1 (len / 2); factor };
        ]
      else []
  | Fault_plan.Duplicate { from_tick; until_tick; percent } ->
      let len = until_tick - from_tick in
      (if percent > 10 then
         [ Fault_plan.Duplicate { from_tick; until_tick; percent = max 10 (percent / 2) } ]
       else [])
      @ (if from_tick > 0 then
           [ Fault_plan.Duplicate { from_tick = 0; until_tick = len; percent } ]
         else [])
      @
      if len > 1 then
        [
          Fault_plan.Duplicate
            { from_tick; until_tick = from_tick + max 1 (len / 2); percent };
        ]
      else []
  | Fault_plan.Reorder { from_tick; until_tick; window } ->
      let len = until_tick - from_tick in
      (if window > 1 then
         [ Fault_plan.Reorder { from_tick; until_tick; window = max 1 (window / 2) } ]
       else [])
      @ (if from_tick > 0 then
           [ Fault_plan.Reorder { from_tick = 0; until_tick = len; window } ]
         else [])
      @
      if len > 1 then
        [
          Fault_plan.Reorder
            { from_tick; until_tick = from_tick + max 1 (len / 2); window };
        ]
      else []

let shrink ?(max_tries = 200) ~reproduces plan =
  let tries = ref 0 in
  let exhausted = ref false in
  let check p =
    if !tries >= max_tries then begin
      exhausted := true;
      false
    end
    else begin
      incr tries;
      reproduces p
    end
  in
  (* Phase 1: drop whole atoms to a fixpoint (1-minimality). *)
  let rec removal plan =
    let len = List.length plan in
    let rec try_drop i =
      if i >= len || !exhausted then None
      else
        let cand = List.filteri (fun j _ -> j <> i) plan in
        if check cand then Some cand else try_drop (i + 1)
    in
    match try_drop 0 with Some smaller -> removal smaller | None -> plan
  in
  (* Phase 2: per-atom numeric shrinking. Every candidate is tested against
     the current (already partially shrunk) plan, so the returned plan as a
     whole is known to reproduce. *)
  let numeric plan0 =
    let plan = ref plan0 in
    for i = 0 to List.length plan0 - 1 do
      let rec go () =
        let atom = List.nth !plan i in
        let rec try_cand = function
          | [] -> ()
          | cand :: rest ->
              let replaced =
                List.mapi (fun j a -> if j = i then cand else a) !plan
              in
              if (not !exhausted) && check replaced then begin
                plan := replaced;
                go ()
              end
              else try_cand rest
        in
        try_cand (candidates atom)
      in
      go ()
    done;
    !plan
  in
  (* Removal and numeric shrinking feed each other: a weakened atom may
     become removable, and a removal may make a previously-rejected
     weakening of another atom reproduce. Iterating both passes to a
     joint fixpoint is what makes the result 1-minimal in the strong
     sense (dropping any atom or applying any single candidate weakening
     stops reproducing) — a single removal pass after the numeric pass,
     as earlier versions did, can leave reachable weakenings behind.
     Termination: every accepted step strictly shrinks the atom count or
     some atom's numeric measure, both well-founded. *)
  let rec fix plan =
    let plan' = numeric (removal plan) in
    if !exhausted || plan' = plan then plan' else fix plan'
  in
  let plan = fix plan in
  { plan; tries = !tries; minimal = not !exhausted }
