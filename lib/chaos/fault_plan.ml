type atom =
  | Corrupt_at of { tick : int; party : int; behavior : Behavior.t }
  | Partition of { from_tick : int; until_tick : int; group_of : int array }
  | Delay_spike of { from_tick : int; until_tick : int; factor : int }
  | Duplicate of { from_tick : int; until_tick : int; percent : int }
  | Reorder of { from_tick : int; until_tick : int; window : int }

type t = atom list

let corrupted plan =
  List.filter_map
    (function Corrupt_at { party; _ } -> Some party | _ -> None)
    plan
  |> List.sort_uniq compare

let validate ~cfg ~sync ~existing plan =
  let n = cfg.Config.n in
  let budget =
    (if sync then cfg.Config.ts else cfg.Config.ta) - List.length existing
  in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_window ~from_tick ~until_tick what =
    if from_tick < 0 || until_tick < from_tick then
      err "%s: bad window [%d, %d)" what from_tick until_tick
    else Ok ()
  in
  let rec go = function
    | [] ->
        if List.length (corrupted plan) > budget then
          err "corruption budget exceeded: %d adaptive targets, %d allowed"
            (List.length (corrupted plan))
            (max 0 budget)
        else Ok ()
    | Corrupt_at { tick; party; _ } :: rest ->
        if tick < 0 then err "corrupt_at: negative tick %d" tick
        else if party < 0 || party >= n then
          err "corrupt_at: party %d out of range" party
        else if List.mem party existing then
          err "corrupt_at: party %d already statically corrupted" party
        else go rest
    | Partition { from_tick; until_tick; group_of } :: rest -> (
        match check_window ~from_tick ~until_tick "partition" with
        | Error _ as e -> e
        | Ok () ->
            if Array.length group_of <> n then
              err "partition: group array has %d entries, want %d"
                (Array.length group_of) n
            else go rest)
    | Delay_spike { from_tick; until_tick; factor } :: rest -> (
        match check_window ~from_tick ~until_tick "delay_spike" with
        | Error _ as e -> e
        | Ok () -> if factor < 1 then err "delay_spike: factor < 1" else go rest)
    | Duplicate { from_tick; until_tick; percent } :: rest -> (
        match check_window ~from_tick ~until_tick "duplicate" with
        | Error _ as e -> e
        | Ok () ->
            if percent < 0 || percent > 100 then
              err "duplicate: percent %d outside [0, 100]" percent
            else go rest)
    | Reorder { from_tick; until_tick; window } :: rest -> (
        match check_window ~from_tick ~until_tick "reorder" with
        | Error _ as e -> e
        | Ok () -> if window < 0 then err "reorder: negative window" else go rest)
  in
  go plan

let in_window ~from_tick ~until_tick now = now >= from_tick && now < until_tick

let compile ~sync ~delta ~base plan ~rng ~now ~src ~dst =
  let d0 = base ~rng ~now ~src ~dst in
  let d =
    List.fold_left
      (fun d atom ->
        match atom with
        | Corrupt_at _ | Duplicate _ -> d
        | Partition { from_tick; until_tick; group_of } ->
            if
              in_window ~from_tick ~until_tick now
              && src < Array.length group_of
              && dst < Array.length group_of
              && group_of.(src) <> group_of.(dst)
            then max d (until_tick - now + 1)
            else d
        | Delay_spike { from_tick; until_tick; factor } ->
            if in_window ~from_tick ~until_tick now then d * factor else d
        | Reorder { from_tick; until_tick; window } ->
            if in_window ~from_tick ~until_tick now then
              d + Rng.int rng (window + 1)
            else d)
      d0 plan
  in
  if sync then max 1 (min d delta) else max 1 d

let install engine ~cfg ~inputs plan =
  (* Duplicate wrappers go on first: a later adaptive corruption replaces
     the victim's whole handler chain, which is fine — duplicates towards a
     corrupted party cannot affect safety. *)
  List.iter
    (function
      | Duplicate { from_tick; until_tick; percent } ->
          for i = 0 to Engine.n engine - 1 do
            let rng = Rng.split (Engine.rng engine) in
            Engine.wrap_party engine i (fun inner ev ->
                (match ev with
                | Engine.Deliver _ ->
                    if
                      in_window ~from_tick ~until_tick (Engine.now engine)
                      && Rng.int rng 100 < percent
                    then inner ev
                | Engine.Timer _ -> ());
                inner ev)
          done
      | _ -> ())
    plan;
  List.iter
    (function
      | Corrupt_at { tick; party; behavior } ->
          Engine.wrap_party engine party (fun inner ->
              let corrupted = ref false in
              fun ev ->
                if !corrupted then inner ev
                else if Engine.now engine >= tick then begin
                  corrupted := true;
                  (* the triggering event is absorbed: from this instant the
                     party is the adversary's *)
                  Behavior.install engine ~cfg ~me:party ~input:inputs.(party)
                    behavior
                end
                else inner ev);
          Engine.set_timer engine ~party ~at:tick ~tag:0
      | _ -> ())
    plan

let behavior_to_string = function
  | Behavior.Silent -> "silent"
  | Behavior.Crash_at t -> Printf.sprintf "crash@%d" t
  | Behavior.Honest_with_input v -> Printf.sprintf "poison%s" (Vec.to_string v)
  | Behavior.Equivocate (a, b) ->
      Printf.sprintf "equivocate%s/%s" (Vec.to_string a) (Vec.to_string b)
  | Behavior.Equivocate_split { values = a, b; assign } ->
      Printf.sprintf "equivocate-split%s/%s->%s" (Vec.to_string a)
        (Vec.to_string b)
        (String.concat ""
           (Array.to_list
              (Array.map (fun x -> if x <> 0 then "1" else "0") assign)))
  | Behavior.Halt_liar it -> Printf.sprintf "halt-liar:%d" it
  | Behavior.Spam { period; payload_bytes; until } ->
      Printf.sprintf "spam:period=%d,bytes=%d,until=%d" period payload_bytes until
  | Behavior.Garbage at -> Printf.sprintf "garbage@%d" at
  | Behavior.Lagger d -> Printf.sprintf "lagger:%d" d

let atom_to_string = function
  | Corrupt_at { tick; party; behavior } ->
      Printf.sprintf "corrupt_at{tick=%d;party=%d;behavior=%s}" tick party
        (behavior_to_string behavior)
  | Partition { from_tick; until_tick; group_of } ->
      Printf.sprintf "partition{[%d,%d);groups=%s}" from_tick until_tick
        (String.concat ""
           (Array.to_list (Array.map string_of_int group_of)))
  | Delay_spike { from_tick; until_tick; factor } ->
      Printf.sprintf "delay_spike{[%d,%d);x%d}" from_tick until_tick factor
  | Duplicate { from_tick; until_tick; percent } ->
      Printf.sprintf "duplicate{[%d,%d);%d%%}" from_tick until_tick percent
  | Reorder { from_tick; until_tick; window } ->
      Printf.sprintf "reorder{[%d,%d);window=%d}" from_tick until_tick window

let to_strings = List.map atom_to_string

let pp ppf plan =
  Format.fprintf ppf "[%s]" (String.concat "; " (to_strings plan))

(* -- Machine-readable round-trip encoding -------------------------------

   [atom_to_string] above is for humans; the explorer's quarantine files
   need plans that parse back. The grammar is deliberately tiny: atoms
   join with ';', fields with ',', behaviour sub-fields with ':', vector
   coordinates with '/' rendered as hex floats (bit-exact round trip),
   and 0/1 arrays as digit strings. No field ever contains a tab, so a
   repr embeds directly in the soak-style TSV journal encoding. *)

let vec_to_repr v =
  String.concat "/"
    (List.map (fun x -> Printf.sprintf "%h" x) (Vec.to_list v))

let vec_of_repr s =
  match
    List.map float_of_string_opt (String.split_on_char '/' s)
  with
  | floats when List.for_all Option.is_some floats && floats <> [] ->
      Ok (Vec.of_list (List.map Option.get floats))
  | _ -> Error (Printf.sprintf "bad vector %S" s)

let digits_to_array s =
  let ok = ref true in
  let a =
    Array.init (String.length s) (fun i ->
        match s.[i] with '0' -> 0 | '1' -> 1 | _ -> ok := false; 0)
  in
  if !ok && Array.length a > 0 then Ok a
  else Error (Printf.sprintf "bad 0/1 array %S" s)

let behavior_to_repr = function
  | Behavior.Silent -> "s"
  | Behavior.Crash_at t -> Printf.sprintf "c:%d" t
  | Behavior.Honest_with_input v -> Printf.sprintf "h:%s" (vec_to_repr v)
  | Behavior.Equivocate (a, b) ->
      Printf.sprintf "e:%s:%s" (vec_to_repr a) (vec_to_repr b)
  | Behavior.Equivocate_split { values = a, b; assign } ->
      Printf.sprintf "x:%s:%s:%s" (vec_to_repr a) (vec_to_repr b)
        (String.concat ""
           (Array.to_list
              (Array.map (fun x -> if x <> 0 then "1" else "0") assign)))
  | Behavior.Halt_liar it -> Printf.sprintf "l:%d" it
  | Behavior.Spam { period; payload_bytes; until } ->
      Printf.sprintf "m:%d:%d:%d" period payload_bytes until
  | Behavior.Garbage at -> Printf.sprintf "g:%d" at
  | Behavior.Lagger d -> Printf.sprintf "w:%d" d

let ( let* ) = Result.bind

let int_of_repr s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad int %S" s)

let behavior_of_repr s =
  match String.split_on_char ':' s with
  | [ "s" ] -> Ok Behavior.Silent
  | [ "c"; t ] ->
      let* t = int_of_repr t in
      Ok (Behavior.Crash_at t)
  | [ "h"; v ] ->
      let* v = vec_of_repr v in
      Ok (Behavior.Honest_with_input v)
  | [ "e"; a; b ] ->
      let* a = vec_of_repr a in
      let* b = vec_of_repr b in
      Ok (Behavior.Equivocate (a, b))
  | [ "x"; a; b; assign ] ->
      let* a = vec_of_repr a in
      let* b = vec_of_repr b in
      let* assign = digits_to_array assign in
      Ok (Behavior.Equivocate_split { values = (a, b); assign })
  | [ "l"; it ] ->
      let* it = int_of_repr it in
      Ok (Behavior.Halt_liar it)
  | [ "m"; period; bytes; until ] ->
      let* period = int_of_repr period in
      let* payload_bytes = int_of_repr bytes in
      let* until = int_of_repr until in
      Ok (Behavior.Spam { period; payload_bytes; until })
  | [ "g"; at ] ->
      let* at = int_of_repr at in
      Ok (Behavior.Garbage at)
  | [ "w"; d ] ->
      let* d = int_of_repr d in
      Ok (Behavior.Lagger d)
  | _ -> Error (Printf.sprintf "bad behavior %S" s)

let atom_to_repr = function
  | Corrupt_at { tick; party; behavior } ->
      Printf.sprintf "C,%d,%d,%s" tick party (behavior_to_repr behavior)
  | Partition { from_tick; until_tick; group_of } ->
      Printf.sprintf "P,%d,%d,%s" from_tick until_tick
        (String.concat "."
           (Array.to_list (Array.map string_of_int group_of)))
  | Delay_spike { from_tick; until_tick; factor } ->
      Printf.sprintf "D,%d,%d,%d" from_tick until_tick factor
  | Duplicate { from_tick; until_tick; percent } ->
      Printf.sprintf "U,%d,%d,%d" from_tick until_tick percent
  | Reorder { from_tick; until_tick; window } ->
      Printf.sprintf "R,%d,%d,%d" from_tick until_tick window

let atom_of_repr s =
  match String.split_on_char ',' s with
  | [ "C"; tick; party; behavior ] ->
      let* tick = int_of_repr tick in
      let* party = int_of_repr party in
      let* behavior = behavior_of_repr behavior in
      Ok (Corrupt_at { tick; party; behavior })
  | [ "P"; from_tick; until_tick; groups ] ->
      let* from_tick = int_of_repr from_tick in
      let* until_tick = int_of_repr until_tick in
      let* group_of =
        List.fold_left
          (fun acc g ->
            let* acc = acc in
            let* g = int_of_repr g in
            Ok (g :: acc))
          (Ok [])
          (String.split_on_char '.' groups)
      in
      Ok
        (Partition
           { from_tick; until_tick; group_of = Array.of_list (List.rev group_of) })
  | [ "D"; from_tick; until_tick; factor ] ->
      let* from_tick = int_of_repr from_tick in
      let* until_tick = int_of_repr until_tick in
      let* factor = int_of_repr factor in
      Ok (Delay_spike { from_tick; until_tick; factor })
  | [ "U"; from_tick; until_tick; percent ] ->
      let* from_tick = int_of_repr from_tick in
      let* until_tick = int_of_repr until_tick in
      let* percent = int_of_repr percent in
      Ok (Duplicate { from_tick; until_tick; percent })
  | [ "R"; from_tick; until_tick; window ] ->
      let* from_tick = int_of_repr from_tick in
      let* until_tick = int_of_repr until_tick in
      let* window = int_of_repr window in
      Ok (Reorder { from_tick; until_tick; window })
  | _ -> Error (Printf.sprintf "bad atom %S" s)

let to_repr plan = String.concat ";" (List.map atom_to_repr plan)

let of_repr = function
  | "" -> Ok []
  | s ->
      List.fold_left
        (fun acc a ->
          let* acc = acc in
          let* atom = atom_of_repr a in
          Ok (atom :: acc))
        (Ok [])
        (String.split_on_char ';' s)
      |> Result.map List.rev
