let poison_vec rng ~d =
  Vec.of_list (List.init d (fun _ -> Rng.float_range rng (-50.) 50.))

let behaviors_menu rng ~cfg ~horizon ~tick =
  let d = cfg.Config.d in
  match Rng.int rng 7 with
  | 0 -> Behavior.Silent
  | 1 -> Behavior.Crash_at (tick + Rng.int rng (max 1 (horizon - tick)))
  | 2 -> Behavior.Honest_with_input (poison_vec rng ~d)
  | 3 -> Behavior.Equivocate (poison_vec rng ~d, poison_vec rng ~d)
  | 4 -> Behavior.Halt_liar (1 + Rng.int rng 3)
  | 5 ->
      Behavior.Spam
        {
          period = 1 + Rng.int rng 4;
          payload_bytes = 32 + Rng.int rng 224;
          until = tick + (4 * cfg.Config.delta) + Rng.int rng horizon;
        }
  | _ -> Behavior.Lagger (1 + Rng.int rng horizon)

let window rng ~horizon ~max_len =
  let from_tick = Rng.int rng horizon in
  let len = 1 + Rng.int rng max_len in
  (from_tick, from_tick + len)

(* Pick [k] distinct parties outside [taken], by shuffling the candidates. *)
let pick_parties rng ~n ~taken ~k =
  let candidates =
    Array.of_list
      (List.filter (fun p -> not (List.mem p taken)) (List.init n Fun.id))
  in
  Rng.shuffle rng candidates;
  Array.to_list (Array.sub candidates 0 (min k (Array.length candidates)))

let sample rng ~cfg ~sync ~existing ~horizon =
  let n = cfg.Config.n in
  let horizon = max 1 horizon in
  let budget =
    max 0 ((if sync then cfg.Config.ts else cfg.Config.ta) - List.length existing)
  in
  let n_corrupt = if budget = 0 then 0 else Rng.int rng (budget + 1) in
  let targets = pick_parties rng ~n ~taken:existing ~k:n_corrupt in
  let corruptions =
    List.map
      (fun party ->
        let tick = Rng.int rng horizon in
        let behavior = behaviors_menu rng ~cfg ~horizon ~tick in
        Fault_plan.Corrupt_at { tick; party; behavior })
      targets
  in
  let n_net = Rng.int rng 4 in
  let delta = cfg.Config.delta in
  let net =
    List.init n_net (fun _ ->
        match Rng.int rng 4 with
        | 0 ->
            let from_tick, until_tick =
              window rng ~horizon ~max_len:(6 * delta)
            in
            let group_of = Array.init n (fun _ -> Rng.int rng 2) in
            Fault_plan.Partition { from_tick; until_tick; group_of }
        | 1 ->
            let from_tick, until_tick =
              window rng ~horizon ~max_len:(6 * delta)
            in
            Fault_plan.Delay_spike
              { from_tick; until_tick; factor = 2 + Rng.int rng 7 }
        | 2 ->
            let from_tick, until_tick =
              window rng ~horizon ~max_len:(8 * delta)
            in
            Fault_plan.Duplicate
              { from_tick; until_tick; percent = 10 + Rng.int rng 51 }
        | _ ->
            let from_tick, until_tick =
              window rng ~horizon ~max_len:(6 * delta)
            in
            Fault_plan.Reorder
              { from_tick; until_tick; window = 1 + Rng.int rng (3 * delta) })
  in
  corruptions @ net
