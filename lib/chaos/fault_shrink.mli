(** Deterministic counterexample shrinking for fault plans.

    Given a plan that reproduces a monitor violation (as judged by the
    caller's [reproduces] oracle — typically "re-run the scenario with this
    plan and check the same invariant fires"), {!shrink} searches for a
    smaller plan that still reproduces:

    + {b atom removal} to a fixpoint — the result is 1-minimal: dropping
      any single remaining atom stops reproducing (unless the try budget
      ran out first);
    + {b numeric shrinking} — each surviving atom's ticks are bisected
      toward 0, windows toward length 1, factors/percentages/jitter toward
      their weakest value, and corruption behaviours toward [Silent].

    The search is deterministic: same oracle, same plan, same result. *)

type outcome = {
  plan : Fault_plan.t;  (** the smallest reproducing plan found *)
  tries : int;  (** oracle invocations spent *)
  minimal : bool;
      (** true when the atom-removal fixpoint was reached within the try
          budget (the numeric pass is always best-effort) *)
}

val shrink :
  ?max_tries:int -> reproduces:(Fault_plan.t -> bool) -> Fault_plan.t -> outcome
(** [max_tries] caps oracle invocations (default [200]). The initial plan
    is assumed to reproduce; it is returned unchanged if nothing smaller
    does. Removal and numeric passes iterate to a {e joint} fixpoint, so
    when [minimal] is [true] the result is 1-minimal against both move
    kinds: dropping any single atom, or replacing any atom by any of its
    {!candidates}, yields a plan the oracle rejects. Shrinking is
    therefore idempotent — shrinking a shrunk plan returns it unchanged
    (modulo oracle invocations spent re-verifying). *)

val candidates : Fault_plan.atom -> Fault_plan.atom list
(** The single-step weakenings of one atom, strongest simplification
    first: ticks bisected toward 0, windows toward length 1, factors /
    percentages / jitter toward their weakest value, behaviours toward
    [Silent]. Exposed so property tests can check 1-minimality of
    {!shrink} output against exactly the moves the shrinker uses. *)
