(** A seeded, composable fault plan: the chaos layer's DSL.

    A plan is a list of fault atoms. Network atoms ([Partition],
    [Delay_spike], [Reorder]) compile into a wrapper around the scenario's
    {!Engine.delay_policy}; [Duplicate] and [Corrupt_at] atoms install
    themselves on the engine ({!install}) as handler wrappers and an
    adaptive-corruption scheduler. Everything a plan does is a bounded
    transformation {e inside} the paper's network models:

    - in synchronous mode every compiled delay is clamped to [Δ], so a
      partition or spike degrades to a worst-case-but-legal schedule;
    - in asynchronous mode delays stay finite (eventual delivery) — drops
      and partitions are expressed as bounded-duration delays, never as
      message loss;
    - duplicate delivery re-runs a receiver's handler, which authenticated
      channels permit (a Byzantine network may replay);
    - adaptive corruptions consume the scenario's [ts]/[ta] budget, checked
      by {!validate}.

    A plan is plain data: it can be compared, printed, shrunk
    ({!Fault_shrink}) and regenerated bit-identically from a seed
    ({!Fault_gen}). *)

type atom =
  | Corrupt_at of { tick : int; party : int; behavior : Behavior.t }
      (** adaptively corrupt [party] at [tick]: it behaves honestly before,
          then its handler is replaced by [behavior] (its queued state is
          discarded — the adversary takes over) *)
  | Partition of { from_tick : int; until_tick : int; group_of : int array }
      (** messages crossing groups during [\[from_tick, until_tick)] are
          held back until [until_tick] (clamped to [Δ] under synchrony);
          [group_of.(p)] is party [p]'s side *)
  | Delay_spike of { from_tick : int; until_tick : int; factor : int }
      (** multiply every delay in the window by [factor] *)
  | Duplicate of { from_tick : int; until_tick : int; percent : int }
      (** each delivery in the window is replayed to the receiving handler
          with probability [percent]/100 *)
  | Reorder of { from_tick : int; until_tick : int; window : int }
      (** add uniform jitter in [\[0, window\]] to delays in the window,
          permuting arrival order *)

type t = atom list

val corrupted : t -> int list
(** Sorted, de-duplicated targets of the plan's [Corrupt_at] atoms. *)

val validate :
  cfg:Config.t -> sync:bool -> existing:int list -> t -> (unit, string) result
(** Checks the plan against the scenario: corruption targets in range,
    distinct from [existing] (statically corrupted) parties and within the
    remaining budget ([ts − |existing|] under synchrony, [ta − |existing|]
    under asynchrony); ticks non-negative; windows, factors, percentages
    and partition arrays well-formed. *)

val compile :
  sync:bool -> delta:int -> base:Engine.delay_policy -> t -> Engine.delay_policy
(** The network-atom part of the plan as a delay-policy wrapper. Atoms
    apply in list order to the base policy's delay; the result is clamped
    to [\[1, Δ\]] when [sync], to [≥ 1] otherwise. *)

val install : Message.t Engine.t -> cfg:Config.t -> inputs:Vec.t array -> t -> unit
(** Installs the engine-side atoms: duplicate-delivery wrappers on every
    live party and the adaptive-corruption scheduler ([Corrupt_at] wraps
    the victim's handler and arms a trigger timer; when it fires,
    {!Behavior.install} replaces the victim). Call after parties are
    attached and static behaviours installed, before [Engine.run]. *)

val atom_to_string : atom -> string
val to_strings : t -> string list
val pp : Format.formatter -> t -> unit

val to_repr : t -> string
(** Machine-readable plan encoding: atoms joined by [';'], fields by
    [','], vectors as ['/']-joined hex floats. Contains no tabs or
    control characters, so a repr embeds directly in the soak-style TSV
    journal/quarantine encoding. [of_repr (to_repr p) = Ok p] for every
    plan whose [Equivocate_split] assignments are 0/1 (the encoding
    normalizes other non-zero marks to 1). *)

val of_repr : string -> (t, string) result
(** Parses {!to_repr} output; [Error] describes the first offending
    atom. The empty string is the empty plan. Parsing performs no
    scenario validation — run {!validate} separately. *)
