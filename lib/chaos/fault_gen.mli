(** Seeded sampling of random fault plans.

    Every plan drawn from the same [Rng.t] state is identical, so a soak
    case is reproducible from [(seed, scenario)] alone. Sampled plans
    always satisfy {!Fault_plan.validate} for the given scenario shape:
    adaptive corruptions stay inside the remaining [ts]/[ta] budget and
    every tick lands in [\[0, horizon)]. *)

val sample :
  Rng.t ->
  cfg:Config.t ->
  sync:bool ->
  existing:int list ->
  horizon:int ->
  Fault_plan.t
(** [existing] are the scenario's statically corrupted parties (they cap
    the adaptive budget and are never re-targeted). [horizon] bounds every
    tick and window in the plan; a natural choice is a small multiple of
    the expected run length, e.g. [40 * cfg.delta]. *)

val behaviors_menu :
  Rng.t -> cfg:Config.t -> horizon:int -> tick:int -> Behavior.t
(** One random corruption behaviour (also used for static corruption
    sampling in the soak driver). [tick] is when the behaviour starts
    (bounds its internal timers). *)
