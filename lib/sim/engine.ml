type time = int

type 'msg event = 'msg Transport.event =
  | Deliver of { src : int; msg : 'msg }
  | Timer of int

type delay_policy = rng:Rng.t -> now:time -> src:int -> dst:int -> time

type 'msg wire = {
  wire_send : src:int -> dst:int -> seq:int -> deliver_at:time -> 'msg -> unit;
  wire_pump : unit -> bool;
}

type stats = {
  messages_sent : int;
  bytes_sent : int;
  messages_delivered : int;
  final_time : time;
  events_processed : int;
  party_failures : int;
}

type failure = { party : int; at : time; reason : string }

type isolation = [ `Fail_fast | `Isolate ]

type stop_reason = [ `Quiescent | `Past_until | `Event_budget | `Cancelled ]

type 'msg trace_event =
  | Sent of { src : int; dst : int; at : time; deliver_at : time; msg : 'msg }
  | Delivered of { src : int; dst : int; at : time; msg : 'msg }
  | Timer_fired of { party : int; at : time; tag : int }
  | Party_failed of failure

type 'msg choice = {
  ch_at : time;
  ch_seq : int;
  ch_target : int;
  ch_event : 'msg event;
}

type 'msg t = {
  n : int;
  policy : delay_policy;
  rng : Rng.t;
  size_of : 'msg -> int;
  queue : 'msg event Heap.Keyed.t;  (* aux rider = delivery target *)
  handlers : ('msg event -> unit) option array;
  flushers : (final:bool -> unit) option array;
  mutable wire : 'msg wire option;
  classify : ('msg -> (int -> int -> unit) -> unit) option;
  class_msgs : int array;
  class_bytes : int array;
  mutable has_flushers : bool;
  mutable flushed_upto : time;  (* last tick whose flushers have run *)
  mutable tracer : ('msg trace_event -> unit) option;
  mutable chooser : ('msg choice array -> int) option;
  mutable isolation : isolation;
  mutable stop_reason : stop_reason;
  mutable failures : failure list;  (* reverse chronological *)
  mutable now : time;
  mutable seq : int;
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_delivered : int;
  mutable events_processed : int;
}

(* The queue orders events by (delivery time, push sequence), packed into
   one int key so the heap sifts on immediate integer comparisons — this
   runs O(log queue) times per event and used to be a polymorphic-compare
   C call each time. [seq_bits] caps one run at 2^31 pushes and 2^31
   ticks, both far beyond [max_events]; ties are impossible because [seq]
   is distinct per push, so the pop order is exactly the old (at, seq)
   lexicographic order. *)
let seq_bits = 31

let create ?(seed = 0x5eedL) ?(size_of = fun _ -> 0) ?(classes = 0) ?classify
    ~n ~policy () =
  if n <= 0 then invalid_arg "Engine.create: n must be positive";
  if classes < 0 then invalid_arg "Engine.create: classes must be >= 0";
  {
    n;
    policy;
    rng = Rng.create seed;
    size_of;
    queue = Heap.Keyed.create ();
    handlers = Array.make n None;
    flushers = Array.make n None;
    wire = None;
    classify = (if classes = 0 then None else classify);
    class_msgs = Array.make classes 0;
    class_bytes = Array.make classes 0;
    has_flushers = false;
    flushed_upto = -1;
    tracer = None;
    chooser = None;
    isolation = `Fail_fast;
    stop_reason = `Quiescent;
    failures = [];
    now = 0;
    seq = 0;
    messages_sent = 0;
    bytes_sent = 0;
    messages_delivered = 0;
    events_processed = 0;
  }

let n t = t.n
let now t = t.now
let rng t = t.rng

let set_party t i handler =
  if i < 0 || i >= t.n then invalid_arg "Engine.set_party: bad party";
  t.handlers.(i) <- Some handler

let clear_party t i =
  t.handlers.(i) <- None;
  t.flushers.(i) <- None

let set_flusher t i f =
  if i < 0 || i >= t.n then invalid_arg "Engine.set_flusher: bad party";
  t.flushers.(i) <- Some f;
  t.has_flushers <- true

let wrap_party t i f =
  if i < 0 || i >= t.n then invalid_arg "Engine.wrap_party: bad party";
  match t.handlers.(i) with
  | Some h -> t.handlers.(i) <- Some (f h)
  | None -> ()

let set_isolation t mode = t.isolation <- mode
let stop_reason t = t.stop_reason
let failures t = List.rev t.failures
let set_chooser t f = t.chooser <- Some f
let clear_chooser t = t.chooser <- None
let has_handler t i = i >= 0 && i < t.n && t.handlers.(i) <> None

let pending t =
  let acc = ref [] in
  Heap.Keyed.iter t.queue (fun ~key ~aux ev ->
      acc :=
        {
          ch_at = key lsr seq_bits;
          ch_seq = key land ((1 lsl seq_bits) - 1);
          ch_target = aux;
          ch_event = ev;
        }
        :: !acc);
  List.sort (fun a b -> compare (a.ch_at, a.ch_seq) (b.ch_at, b.ch_seq)) !acc

let push t ~at ~target ev =
  let at = max at t.now in
  t.seq <- t.seq + 1;
  Heap.Keyed.push t.queue ~key:((at lsl seq_bits) lor t.seq) ~aux:target ev

let set_wire t w = t.wire <- Some w
let clear_wire t = t.wire <- None

(* Re-insertion point for a wire backend: the message was sent earlier
   (its sequence number was allocated then, its stats were counted then)
   and has now physically arrived, so it enters the heap under exactly
   the key a direct [push] would have used at send time. The pop order
   of a wire run is therefore identical to the simulator's. *)
let inject t ~src ~dst ~seq ~deliver_at msg =
  if dst < 0 || dst >= t.n then invalid_arg "Engine.inject: bad destination";
  let at = max deliver_at t.now in
  Heap.Keyed.push t.queue ~key:((at lsl seq_bits) lor seq) ~aux:dst
    (Deliver { src; msg })

let send t ~src ~dst msg =
  if dst < 0 || dst >= t.n then invalid_arg "Engine.send: bad destination";
  let delay = max 1 (t.policy ~rng:t.rng ~now:t.now ~src ~dst) in
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + t.size_of msg;
  (match t.classify with
  | Some f ->
      f msg (fun klass bytes ->
          t.class_msgs.(klass) <- t.class_msgs.(klass) + 1;
          t.class_bytes.(klass) <- t.class_bytes.(klass) + bytes)
  | None -> ());
  let deliver_at = t.now + delay in
  (match t.tracer with
  | Some f -> f (Sent { src; dst; at = t.now; deliver_at; msg })
  | None -> ());
  match t.wire with
  | None -> push t ~at:deliver_at ~target:dst (Deliver { src; msg })
  | Some w ->
      (* the sequence number is allocated here, in global send order, and
         travels with the message so [inject] can reproduce the heap key *)
      t.seq <- t.seq + 1;
      w.wire_send ~src ~dst ~seq:t.seq ~deliver_at msg

let send_at t ~src ~dst ~deliver_at msg =
  if dst < 0 || dst >= t.n then invalid_arg "Engine.send_at: bad destination";
  (* same floor as [send]: nothing is delivered within its own tick *)
  let deliver_at = max deliver_at (t.now + 1) in
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + t.size_of msg;
  (match t.classify with
  | Some f ->
      f msg (fun klass bytes ->
          t.class_msgs.(klass) <- t.class_msgs.(klass) + 1;
          t.class_bytes.(klass) <- t.class_bytes.(klass) + bytes)
  | None -> ());
  (match t.tracer with
  | Some f -> f (Sent { src; dst; at = t.now; deliver_at; msg })
  | None -> ());
  match t.wire with
  | None -> push t ~at:deliver_at ~target:dst (Deliver { src; msg })
  | Some w ->
      t.seq <- t.seq + 1;
      w.wire_send ~src ~dst ~seq:t.seq ~deliver_at msg

let broadcast t ~src msg =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst msg
  done

let set_timer t ~party ~at ~tag =
  if party < 0 || party >= t.n then invalid_arg "Engine.set_timer: bad party";
  push t ~at ~target:party (Timer tag)

let endpoint t ~me : 'msg Transport.endpoint =
  if me < 0 || me >= t.n then invalid_arg "Engine.endpoint: bad party";
  {
    Transport.me;
    n = t.n;
    now = (fun () -> t.now);
    send_all = (fun msg -> broadcast t ~src:me msg);
    set_timer = (fun ~at ~tag -> set_timer t ~party:me ~at ~tag);
    register_flush = (fun f -> set_flusher t me f);
    set_handler = (fun h -> set_party t me h);
  }

let quiescent t = Heap.Keyed.is_empty t.queue

(* End-of-tick flush: registered flushers run (in party-index order, for
   determinism) at most once per tick value, exactly when the loop is
   about to advance time past [t.now] — or when the queue drains. Flushed
   sends have delay ≥ 1, so a flush can never re-trigger at the same
   tick; returning [true] makes the caller re-examine the queue, because
   flushing typically enqueues new events below the previously peeked
   minimum. *)
let flush_tick t =
  if t.has_flushers && t.flushed_upto < t.now then begin
    t.flushed_upto <- t.now;
    for i = 0 to t.n - 1 do
      match t.flushers.(i) with Some f -> f ~final:false | None -> ()
    done;
    true
  end
  else false

(* Wire drain: when a wire backend is attached, its pump moves every
   in-flight message through the physical layer and re-injects it (via
   {!inject}); returns [true] iff anything new entered the queue. Runs at
   the same seams as {!flush_tick} — when the queue empties and when the
   loop is about to advance time — so a wire run processes events in
   exactly the simulator's order. *)
let pump t =
  match t.wire with None -> false | Some w -> w.wire_pump ()

(* Last-chance flush before the run goes quiescent: hooks that coalesce
   across ticks (a cross-tick batch window) may still hold traffic that
   no further tick would ever flush. Runs every flusher with
   [final = true]; progress is detected through the send counter, which
   both the direct and the wire send paths bump. *)
let final_flush t =
  if not t.has_flushers then false
  else begin
    let before = t.messages_sent in
    for i = 0 to t.n - 1 do
      match t.flushers.(i) with Some f -> f ~final:true | None -> ()
    done;
    t.messages_sent > before
  end

(* [should_stop] is polled every [stop_poll_mask + 1] processed events, so
   a wall-clock deadline closure costs one clock read per 64 events, not
   per event. The flag is cooperative: a handler that never returns cannot
   be interrupted — only event-generating livelock (which [max_events]
   bounds) and between-event deadlines are catchable. *)
let stop_poll_mask = 63

let run ?until ?(max_events = 10_000_000) ?(on_budget = `Raise) ?should_stop t
    =
  t.stop_reason <- `Quiescent;
  let continue = ref true in
  while !continue do
    if Heap.Keyed.is_empty t.queue then begin
      if not (flush_tick t || pump t || final_flush t) then begin
        t.stop_reason <- `Quiescent;
        continue := false
      end
    end
    else if
      match should_stop with
      | Some f when t.events_processed land stop_poll_mask = 0 -> f ()
      | _ -> false
    then begin
      t.stop_reason <- `Cancelled;
      continue := false
    end
    else
      let at = Heap.Keyed.min_key_exn t.queue lsr seq_bits in
      if at > t.now && (flush_tick t || pump t) then ()
        (* flushed the current tick / drained the wire: re-peek, the
           minimum may have moved *)
      else if match until with Some u -> at > u | None -> false then begin
        t.stop_reason <- `Past_until;
        continue := false
      end
      else if t.events_processed >= max_events then begin
        match on_budget with
        | `Raise ->
            failwith "Engine.run: max_events exceeded (run-away protocol?)"
        | `Stop ->
            t.stop_reason <- `Event_budget;
            continue := false
      end
      else begin
        let target, ev =
          match t.chooser with
          | None ->
              let target = Heap.Keyed.min_aux_exn t.queue in
              let ev = Heap.Keyed.pop_exn t.queue in
              (target, ev)
          | Some choose ->
              (* Choice point: gather every entry of the minimal tick (they
                 pop in seq order, so the candidate array is sorted), let
                 the strategy pick one, and re-insert the rest under their
                 original keys — keys are unique, so the remainder pops in
                 exactly the order it would have without the detour, and a
                 strategy that always answers [0] reproduces the default
                 pop order byte-for-byte. *)
              let rec gather acc =
                if
                  (not (Heap.Keyed.is_empty t.queue))
                  && Heap.Keyed.min_key_exn t.queue lsr seq_bits = at
                then
                  let key = Heap.Keyed.min_key_exn t.queue in
                  let aux = Heap.Keyed.min_aux_exn t.queue in
                  let ev = Heap.Keyed.pop_exn t.queue in
                  gather
                    ({
                       ch_at = at;
                       ch_seq = key land ((1 lsl seq_bits) - 1);
                       ch_target = aux;
                       ch_event = ev;
                     }
                    :: acc)
                else List.rev acc
              in
              let cands = Array.of_list (gather []) in
              let k = Array.length cands in
              let idx = if k = 1 then 0 else choose cands in
              if idx < 0 || idx >= k then
                invalid_arg "Engine.run: chooser index out of range";
              Array.iteri
                (fun i c ->
                  if i <> idx then
                    Heap.Keyed.push t.queue
                      ~key:((c.ch_at lsl seq_bits) lor c.ch_seq)
                      ~aux:c.ch_target c.ch_event)
                cands;
              (cands.(idx).ch_target, cands.(idx).ch_event)
        in
        t.now <- max t.now at;
        t.events_processed <- t.events_processed + 1;
        (match ev with
        | Deliver { src; msg } ->
            t.messages_delivered <- t.messages_delivered + 1;
            (match t.tracer with
            | Some f -> f (Delivered { src; dst = target; at = t.now; msg })
            | None -> ())
        | Timer tag -> (
            match t.tracer with
            | Some f -> f (Timer_fired { party = target; at = t.now; tag })
            | None -> ()));
        (match t.handlers.(target) with
        | Some h -> (
            match t.isolation with
            | `Fail_fast -> h ev
            | `Isolate -> (
                try h ev
                with exn ->
                  let f =
                    {
                      party = target;
                      at = t.now;
                      reason = Printexc.to_string exn;
                    }
                  in
                  t.handlers.(target) <- None;
                  t.flushers.(target) <- None;
                  t.failures <- f :: t.failures;
                  (match t.tracer with
                  | Some tr -> tr (Party_failed f)
                  | None -> ())))
        | None -> ())
      end
  done

let stats t =
  {
    messages_sent = t.messages_sent;
    bytes_sent = t.bytes_sent;
    messages_delivered = t.messages_delivered;
    final_time = t.now;
    events_processed = t.events_processed;
    party_failures = List.length t.failures;
  }

let class_messages t = Array.copy t.class_msgs
let class_bytes t = Array.copy t.class_bytes

let set_tracer t f = t.tracer <- Some f
let clear_tracer t = t.tracer <- None
