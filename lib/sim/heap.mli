(** A mutable binary min-heap, the event queue of the simulator. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns a minimal element. When elements compare equal the
    choice is deterministic (heap order), but callers should make their
    comparison total — the simulator uses a (time, sequence) key. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but without the option allocation — the engine's hot loop
    pops after peeking. @raise Invalid_argument on an empty heap. *)

val peek : 'a t -> 'a option
val clear : 'a t -> unit
