(** A mutable binary min-heap, the event queue of the simulator. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns a minimal element. When elements compare equal the
    choice is deterministic (heap order), but callers should make their
    comparison total — the simulator uses a (time, sequence) key. *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but without the option allocation — the engine's hot loop
    pops after peeking. @raise Invalid_argument on an empty heap. *)

val peek : 'a t -> 'a option
val clear : 'a t -> unit

(** Min-heap with explicit [int] keys held in an unboxed array — the
    engine's event queue. Ties are broken by whatever the caller packs
    into the key (the engine packs [(time, seq)] into one int), so equal
    keys never arise there. *)
module Keyed : sig
  type 'a t

  val create : unit -> 'a t
  val is_empty : 'a t -> bool
  val size : 'a t -> int
  val push : 'a t -> key:int -> ?aux:int -> 'a -> unit
  (** [aux] (default 0) is an unboxed int carried alongside the element —
      the engine stores the delivery target there instead of allocating a
      wrapper record per event. *)

  val peek_key : 'a t -> int option
  (** The minimal key without removing its element. *)

  val min_key_exn : 'a t -> int
  (** {!peek_key} without the option allocation, for the engine's loop.
      @raise Invalid_argument on an empty heap. *)

  val min_aux_exn : 'a t -> int
  (** The [aux] rider of the minimal-key element.
      @raise Invalid_argument on an empty heap. *)

  val pop_exn : 'a t -> 'a
  (** Removes and returns an element with the minimal key.
      @raise Invalid_argument on an empty heap. *)

  val iter : 'a t -> (key:int -> aux:int -> 'a -> unit) -> unit
  (** Visits every entry in internal (heap-array) order — {e not} sorted.
      The engine's pending-event snapshot sorts the result itself. Must
      not mutate the heap from [f]. *)

  val clear : 'a t -> unit
end
