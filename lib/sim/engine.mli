(** The deterministic discrete-event network simulator.

    [n] parties exchange messages of an arbitrary type ['msg]. Time is an
    integer tick count; the synchrony bound Δ and every delay policy are
    expressed in ticks. A run is fully determined by the seed, the delay
    policy, and the party handlers: the event queue breaks time ties by a
    global sequence number.

    The adversary's scheduling power is exactly the {!delay_policy}: it
    sees the sender, the destination and the current time and picks the
    delivery delay. Synchronous policies must return delays [≤ Δ];
    asynchronous policies may return anything finite (eventual delivery).

    Parties may be replaced at any point with {!set_party} (adaptive
    corruption). Messages carry their true source: channels are
    authenticated. *)

type time = int

type 'msg event = 'msg Transport.event =
  | Deliver of { src : int; msg : 'msg }
  | Timer of int  (** protocol-chosen tag *)

type delay_policy = rng:Rng.t -> now:time -> src:int -> dst:int -> time
(** Returns the delivery delay in ticks, clamped below to [1] by the
    engine. *)

type 'msg t

type stats = {
  messages_sent : int;
  bytes_sent : int;
  messages_delivered : int;
  final_time : time;
  events_processed : int;
  party_failures : int;
      (** handler exceptions captured under [`Isolate] (see
          {!set_isolation}); always [0] under the default [`Fail_fast] *)
}

val create :
  ?seed:int64 ->
  ?size_of:('msg -> int) ->
  ?classes:int ->
  ?classify:('msg -> (int -> int -> unit) -> unit) ->
  n:int ->
  policy:delay_policy ->
  unit ->
  'msg t
(** [size_of] is used only for byte accounting (default: 0 per message).

    [classes]/[classify] enable per-class accounting on the send path:
    [classify msg emit] is invoked once per sent message and calls
    [emit klass bytes] for each accounting entry it attributes to the
    message — usually once, but a batched packet may emit once per
    logical entry it carries, so the classifier is a fold rather than a
    plain classification function. [klass] must lie in
    [0 .. classes - 1]. Free when [classes = 0] (the default). *)

val n : 'msg t -> int
val now : 'msg t -> time
val rng : 'msg t -> Rng.t
(** The engine's RNG stream (shared with the delay policy). *)

val set_party : 'msg t -> int -> ('msg event -> unit) -> unit
(** Installs (or replaces) the event handler of a party. A party without a
    handler silently discards its events (a crashed party). *)

val clear_party : 'msg t -> int -> unit
(** Removes the handler (and any registered flusher): the party crashes. *)

val set_flusher : 'msg t -> int -> (final:bool -> unit) -> unit
(** Registers an end-of-tick flush hook for party [i]. All registered
    flushers run, in party-index order, exactly once per tick value —
    when the run loop is about to advance simulated time past the
    current tick, and when the event queue drains. This is the seam the
    batched message layer uses: a party buffers its outgoing votes
    during a tick and emits one combined packet per receiver when its
    flusher fires. Flushed sends are ordinary sends (delay ≥ 1), so a
    flush can never cascade within the same tick. Cleared together with
    the handler by {!clear_party} and by [`Isolate] failure capture.

    When the run is about to go quiescent (queue drained, no per-tick
    flush produced traffic, wire drained) every flusher additionally
    runs with [final = true]: a hook holding cross-tick state (the
    opt-in batch window) must emit it then or lose it. Hooks that flush
    everything on every call can ignore the flag. *)

val endpoint : 'msg t -> me:int -> 'msg Transport.endpoint
(** Party [me]'s view of this engine as an abstract {!Transport.endpoint}
    — the seam that keeps protocol code free of engine specifics.
    [send_all] is {!broadcast}, [set_timer] {!set_timer},
    [register_flush] {!set_flusher}, [set_handler] {!set_party}. *)

val wrap_party : 'msg t -> int -> (('msg event -> unit) -> 'msg event -> unit) -> unit
(** [wrap_party t i f] replaces party [i]'s handler [h] with [f h] — the
    hook the chaos layer uses to interpose duplicate-delivery and
    adaptive-corruption triggers without the party's cooperation. No-op
    when the party has no handler (already crashed). *)

type failure = { party : int; at : time; reason : string }

type isolation = [ `Fail_fast | `Isolate ]

val set_isolation : 'msg t -> isolation -> unit
(** Under the default [`Fail_fast], an exception escaping a party handler
    aborts {!run} (and with it a whole pooled batch). Under [`Isolate] the
    exception is caught: the failure is recorded (see {!failures}, the
    [party_failures] stats counter and the [Party_failed] trace event) and
    the party is cleared — treated as crashed from that tick — so the rest
    of the run continues. *)

val failures : 'msg t -> failure list
(** Captured handler failures, in chronological order. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueues a message; its delivery time comes from the policy. *)

val send_at : 'msg t -> src:int -> dst:int -> deliver_at:int -> 'msg -> unit
(** Like {!send}, but with the delivery time chosen by the caller instead
    of the engine's policy (clamped to [now + 1] — nothing arrives within
    its own tick). The multi-instance runner uses this to apply {e per
    instance} delay policies and RNG streams while sharing one global
    event heap: sequence numbers are still allocated in global push
    order, so per-instance delivery order matches what a dedicated
    engine would produce. Statistics, classification and tracing are
    identical to {!send}. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** [send] to every party, including [src] itself. *)

val set_timer : 'msg t -> party:int -> at:time -> tag:int -> unit
(** Wakes [party] with [Timer tag] at absolute time [at] (clamped to the
    present). Timers fire after message deliveries scheduled at the same
    tick that were enqueued earlier. *)

val run :
  ?until:time ->
  ?max_events:int ->
  ?on_budget:[ `Raise | `Stop ] ->
  ?should_stop:(unit -> bool) ->
  'msg t ->
  unit
(** Processes events in (time, sequence) order until the queue is empty,
    [until] is passed, or exactly [max_events] events have fired (default
    [10_000_000]). Attempting to process event [max_events + 1] under the
    default [~on_budget:`Raise] raises [Failure] {e before} popping it, so
    neither the clock nor the event counter move past the budget — it
    indicates a run-away protocol. Under [~on_budget:`Stop] the run
    instead returns normally with {!stop_reason} [= `Event_budget] (the
    harness watchdog path: a structured outcome, never a bare exception).

    [should_stop] is a cooperative cancellation flag, polled between
    events once every 64 processed events (so a wall-clock deadline
    closure is cheap); when it returns [true] the run returns with
    {!stop_reason} [= `Cancelled], leaving the queue intact. It cannot
    interrupt a handler that never returns. *)

type stop_reason = [ `Quiescent | `Past_until | `Event_budget | `Cancelled ]

val stop_reason : 'msg t -> stop_reason
(** Why the {e last} {!run} returned: [`Quiescent] (queue drained — also
    the value before any run), [`Past_until], [`Event_budget] (only under
    [~on_budget:`Stop]) or [`Cancelled] (via [should_stop]). *)

val quiescent : 'msg t -> bool
(** No pending events. *)

val stats : 'msg t -> stats

val class_messages : 'msg t -> int array
(** Per-class sent-message counts (a copy, length [classes]), as
    attributed by the [classify] hook given to {!create}. Empty when
    accounting is off. *)

val class_bytes : 'msg t -> int array
(** Per-class sent-byte counts, same layout as {!class_messages}. *)

type 'msg trace_event =
  | Sent of { src : int; dst : int; at : time; deliver_at : time; msg : 'msg }
  | Delivered of { src : int; dst : int; at : time; msg : 'msg }
  | Timer_fired of { party : int; at : time; tag : int }
  | Party_failed of failure
      (** emitted only under [`Isolate] when a handler raised *)

type 'msg wire = {
  wire_send : src:int -> dst:int -> seq:int -> deliver_at:time -> 'msg -> unit;
      (** take custody of a sent message: it must eventually come back
          through {!inject} with the same [seq]/[deliver_at] *)
  wire_pump : unit -> bool;
      (** move every in-flight message through the physical layer and
          {!inject} it; [true] iff anything entered the queue *)
}

val set_wire : 'msg t -> 'msg wire -> unit
(** Attaches a physical message layer below the engine. With a wire set,
    {!send} still draws the delay policy, counts stats and fires the
    [Sent] trace exactly as before, but instead of pushing the delivery
    event it allocates the event sequence number and hands
    [(src, dst, seq, deliver_at, msg)] to [wire_send]. The run loop calls
    [wire_pump] whenever the queue drains or simulated time is about to
    advance, so every in-flight message is re-injected before any event
    of a later tick is processed — the pop order (and hence the whole
    run) is identical to the direct path. A perfect physical layer must
    lose nothing; [lib/net]'s retransmit/ACK link provides that over real
    sockets. *)

val clear_wire : 'msg t -> unit

val inject :
  'msg t -> src:int -> dst:int -> seq:int -> deliver_at:time -> 'msg -> unit
(** Wire-side re-insertion of a message previously handed to [wire_send]:
    enters the event queue under the exact key a direct send would have
    used (the carried [seq] breaks time ties). Stats were already counted
    at send time — inject counts nothing. *)

val set_tracer : 'msg t -> ('msg trace_event -> unit) -> unit
(** Installs a hook invoked on every send, delivery and timer. Used for
    per-primitive traffic accounting and debugging; absent by default and
    free when unset. *)

val clear_tracer : 'msg t -> unit

(** {2 Choice points — the explorer's seam}

    All nondeterminism the engine resolves by itself lives in one place:
    when several events are pending at the minimal tick, the (time, seq)
    key order decides which fires first. A {e chooser} intercepts exactly
    that decision. With a chooser set, the run loop gathers every entry of
    the minimal tick into a candidate array (in seq, i.e. default-pop,
    order), asks the chooser for an index, processes that event and
    re-inserts the rest under their original keys. A chooser that always
    answers [0] therefore reproduces the default schedule byte-for-byte —
    the invariant the differential tests pin — while [lib/explore]
    enumerates the other answers to model-check small configurations.

    The chooser is only consulted when at least two events share the
    minimal tick; single-candidate pops take the ordinary path. *)

type 'msg choice = {
  ch_at : time;  (** the tick every candidate shares *)
  ch_seq : int;  (** engine sequence number (the default tiebreaker) *)
  ch_target : int;  (** receiving party *)
  ch_event : 'msg event;
}

val set_chooser : 'msg t -> ('msg choice array -> int) -> unit
(** [choose] receives the same-tick candidates sorted by [ch_seq]
    (ascending — index 0 is what the engine would pop by default) and
    must return an index into the array; anything out of range raises
    [Invalid_argument] from {!run}. *)

val clear_chooser : 'msg t -> unit

val pending : 'msg t -> 'msg choice list
(** Snapshot of the whole event queue, sorted by [(ch_at, ch_seq)]; does
    not disturb the heap. The explorer folds this into its canonical
    state fingerprint. O(queue · log queue) — not for hot paths. *)

val has_handler : 'msg t -> int -> bool
(** Whether party [i] currently has a handler installed ([false] for
    crashed/cleared parties, and for out-of-range [i]). Events to
    handler-less targets are no-ops, which the explorer's pruning uses. *)
