type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let is_empty t = t.size = 0
let size t = t.size

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap x in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_exn t =
  if t.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  top

let pop t = if t.size = 0 then None else Some (pop_exn t)

let peek t = if t.size = 0 then None else Some t.data.(0)
let clear t = t.size <- 0

(* Int-keyed variant for the engine's hot loop: keys live in their own
   unboxed int array, so a sift does immediate integer reads instead of a
   closure call plus two pointer dereferences per comparison. The payload
   array mirrors every key move. *)
module Keyed = struct
  type 'a t = {
    mutable keys : int array;
    mutable aux : int array;  (* one unboxed int rider per entry *)
    mutable data : 'a array;
    mutable size : int;
  }

  let create () = { keys = [||]; aux = [||]; data = [||]; size = 0 }
  let is_empty t = t.size = 0
  let size t = t.size

  let grow t x =
    let cap = Array.length t.keys in
    if t.size = cap then begin
      let ncap = max 16 (2 * cap) in
      let nk = Array.make ncap 0
      and na = Array.make ncap 0
      and nd = Array.make ncap x in
      Array.blit t.keys 0 nk 0 t.size;
      Array.blit t.aux 0 na 0 t.size;
      Array.blit t.data 0 nd 0 t.size;
      t.keys <- nk;
      t.aux <- na;
      t.data <- nd
    end

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if t.keys.(i) < t.keys.(parent) then begin
        let k = t.keys.(i) and a = t.aux.(i) and d = t.data.(i) in
        t.keys.(i) <- t.keys.(parent);
        t.aux.(i) <- t.aux.(parent);
        t.data.(i) <- t.data.(parent);
        t.keys.(parent) <- k;
        t.aux.(parent) <- a;
        t.data.(parent) <- d;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
    if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
    let s = !smallest in
    if s <> i then begin
      let k = t.keys.(i) and a = t.aux.(i) and d = t.data.(i) in
      t.keys.(i) <- t.keys.(s);
      t.aux.(i) <- t.aux.(s);
      t.data.(i) <- t.data.(s);
      t.keys.(s) <- k;
      t.aux.(s) <- a;
      t.data.(s) <- d;
      sift_down t s
    end

  let push t ~key ?(aux = 0) x =
    grow t x;
    t.keys.(t.size) <- key;
    t.aux.(t.size) <- aux;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let peek_key t = if t.size = 0 then None else Some t.keys.(0)

  let min_key_exn t =
    if t.size = 0 then invalid_arg "Heap.Keyed.min_key_exn: empty heap";
    t.keys.(0)

  let min_aux_exn t =
    if t.size = 0 then invalid_arg "Heap.Keyed.min_aux_exn: empty heap";
    t.aux.(0)

  let pop_exn t =
    if t.size = 0 then invalid_arg "Heap.Keyed.pop_exn: empty heap";
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.aux.(0) <- t.aux.(t.size);
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    top

  let iter t f =
    for i = 0 to t.size - 1 do
      f ~key:t.keys.(i) ~aux:t.aux.(i) t.data.(i)
    done

  let clear t = t.size <- 0
end
