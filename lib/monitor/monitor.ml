type invariant =
  | Validity
  | Agreement
  | Contraction
  | Double_output
  | Malformed_message

let invariant_name = function
  | Validity -> "validity"
  | Agreement -> "agreement"
  | Contraction -> "contraction"
  | Double_output -> "double-output"
  | Malformed_message -> "malformed-message"

let all_invariants =
  [ Validity; Agreement; Contraction; Double_output; Malformed_message ]

type violation = {
  invariant : invariant;
  party : int;
  time : int;
  detail : string;
}

type t = {
  cfg : Config.t;
  honest : bool array;
  honest_inputs : Vec.t list;
  (* iter -> (party, value) in arrival order *)
  iter_values : (int, (int * Vec.t) list ref) Hashtbl.t;
  outputs : (int, Vec.t * int * int) Hashtbl.t;  (* party -> v, iter, time *)
  mutable pending : (int * int * Vec.t * int) list;  (* party, iter, v, time *)
  mutable violations : violation list;  (* reverse detection order *)
  mutable checks : int;
}

(* Same LP tolerance the harness grades Validity with. *)
let hull_eps = 1e-6

let create ~cfg ~honest ~honest_inputs =
  let h = Array.make cfg.Config.n false in
  List.iter (fun i -> if i >= 0 && i < cfg.Config.n then h.(i) <- true) honest;
  {
    cfg;
    honest = h;
    honest_inputs;
    iter_values = Hashtbl.create 16;
    outputs = Hashtbl.create 8;
    pending = [];
    violations = [];
    checks = 0;
  }

let flag t invariant ~party ~time detail =
  t.violations <- { invariant; party; time; detail } :: t.violations

let values_at t iter =
  match Hashtbl.find_opt t.iter_values iter with
  | Some l -> List.rev !l
  | None -> []

let record_value t ~party ~iter v =
  match Hashtbl.find_opt t.iter_values iter with
  | Some l -> l := (party, v) :: !l
  | None -> Hashtbl.add t.iter_values iter (ref [ (party, v) ])

let check_validity t ~party ~now ~what v =
  t.checks <- t.checks + 1;
  if not (Membership.in_hull ~eps:hull_eps t.honest_inputs v) then
    flag t Validity ~party ~time:now
      (Printf.sprintf "%s %s outside hull of honest inputs" what
         (Vec.to_string v))

let on_iteration t ~party ~now ~iter v =
  if party >= 0 && party < t.cfg.Config.n && t.honest.(party) then begin
    record_value t ~party ~iter v;
    if iter = 0 then check_validity t ~party ~now ~what:"Pi_init output" v
    else begin
      t.checks <- t.checks + 1;
      let prev = List.map snd (values_at t (iter - 1)) in
      (* The hull of I_{iter-1} only grows as stragglers report, so "inside
         the partial hull" is conclusive; "outside" is decided at summary
         time against the complete table. *)
      if prev = [] || not (Membership.in_hull ~eps:hull_eps prev v) then
        t.pending <- (party, iter, v, now) :: t.pending
    end
  end

let on_output t ~party ~now ~iter v =
  if party >= 0 && party < t.cfg.Config.n && t.honest.(party) then begin
    t.checks <- t.checks + 1;
    if Hashtbl.mem t.outputs party then
      flag t Double_output ~party ~time:now
        (Printf.sprintf "second output at iteration %d" iter)
    else begin
      Hashtbl.add t.outputs party (v, iter, now);
      check_validity t ~party ~now ~what:"output" v
    end
  end

(* -- honest-message well-formedness ------------------------------------- *)

let ok_party t p = p >= 0 && p < t.cfg.Config.n

let ok_pairs t pairs =
  List.for_all (fun (p, v) -> ok_party t p && Vec.dim v = t.cfg.Config.d) pairs

(* One rBC vote — standalone packet or batch entry, same rules. *)
let malformed_rbc t id payload : string option =
  if not (ok_party t id.Message.origin) then
    Some (Printf.sprintf "rBC origin %d out of range" id.Message.origin)
  else
    let tag_ok =
      match id.Message.tag with
      | Message.Init_value | Message.Init_report -> true
      | Message.Obc_value it
      | Message.Async_value it
      | Message.Async_report it ->
          it >= 1
      | Message.Halt it -> (
          it >= 1 && match payload with Message.Pint j -> j = it | _ -> false)
    in
    if not tag_ok then Some "rBC tag/payload mismatch"
    else
      match payload with
      | Message.Pvec v ->
          if Vec.dim v = t.cfg.Config.d then None
          else Some "rBC value dimension mismatch"
      | Message.Ppairs pairs ->
          if ok_pairs t pairs then None else Some "rBC pairs invalid"
      | Message.Pint i -> if i >= 0 then None else Some "negative rBC int"
      | Message.Pparties ps ->
          if List.for_all (ok_party t) ps then None
          else Some "rBC party list out of range"

let malformed t (msg : Message.t) : string option =
  match msg with
  | Message.Junk _ -> Some "honest party sent junk"
  | Message.Witness_set { parties = ws; _ } ->
      if List.for_all (ok_party t) ws then None
      else Some "witness set names out-of-range party"
  | Message.Obc_report { iter; pairs; _ } ->
      if iter < 1 then Some (Printf.sprintf "oBC report for iteration %d" iter)
      else if not (ok_pairs t pairs) then Some "oBC report with invalid pairs"
      else None
  | Message.Sync_round { round; value } ->
      if round < 0 then Some "negative baseline round"
      else if Vec.dim value <> t.cfg.Config.d then
        Some "baseline value dimension mismatch"
      else None
  | Message.Ew_value { iter; value; _ } ->
      if iter < 1 then Some (Printf.sprintf "EW value for iteration %d" iter)
      else if Vec.dim value <> t.cfg.Config.d then
        Some "EW value dimension mismatch"
      else None
  | Message.Ew_echo { iter; pairs; _ } ->
      if iter < 1 then Some (Printf.sprintf "EW echo for iteration %d" iter)
      else if not (ok_pairs t pairs) then Some "EW echo with invalid pairs"
      else None
  | Message.Ew_report { iter; pairs; _ } ->
      if iter < 1 then Some (Printf.sprintf "EW report for iteration %d" iter)
      else if not (ok_pairs t pairs) then Some "EW report with invalid pairs"
      else None
  | Message.Rbc_batch entries ->
      if entries = [] then Some "empty rBC batch"
      else
        List.find_map
          (fun (id, _step, payload) -> malformed_rbc t id payload)
          entries
  | Message.Rbc (id, _step, payload) -> malformed_rbc t id payload

let on_trace t (ev : Message.t Engine.trace_event) =
  match ev with
  | Engine.Sent { src; at; msg; _ } when ok_party t src && t.honest.(src) -> (
      t.checks <- t.checks + 1;
      match malformed t msg with
      | Some detail -> flag t Malformed_message ~party:src ~time:at detail
      | None -> ())
  | _ -> ()

(* -- end-of-run --------------------------------------------------------- *)

type summary = {
  checks : int;
  violations : violation list;
  counts : (string * int) list;
  final_diameter : float;
  eps : float;
  honest_outputs : int;
  honest_expected : int;
}

let total_violations s = List.length s.violations

let summary t =
  let extra = ref [] in
  let extra_checks = ref 0 in
  (* Deferred containment checks, now against the complete tables. *)
  List.iter
    (fun (party, iter, v, time) ->
      incr extra_checks;
      let prev = List.map snd (values_at t (iter - 1)) in
      let inside = prev <> [] && Membership.in_hull ~eps:hull_eps prev v in
      if not inside then
        extra :=
          {
            invariant = Contraction;
            party;
            time;
            detail =
              Printf.sprintf
                "iteration-%d value %s outside hull of %d honest \
                 iteration-%d values"
                iter (Vec.to_string v) (List.length prev) (iter - 1);
          }
          :: !extra)
    (List.rev t.pending);
  (* ε-agreement over every pair of honest outputs. *)
  let outs =
    Hashtbl.fold (fun p (v, _, time) acc -> (p, v, time) :: acc) t.outputs []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let eps = t.cfg.Config.eps in
  let diameter = ref 0. in
  let rec pairs = function
    | [] -> ()
    | (p, v, _) :: rest ->
        List.iter
          (fun (q, w, time_q) ->
            incr extra_checks;
            let d = Vec.dist v w in
            if d > !diameter then diameter := d;
            if d > eps +. 1e-9 then
              extra :=
                {
                  invariant = Agreement;
                  party = -1;
                  time = time_q;
                  detail =
                    Printf.sprintf
                      "outputs of %d and %d are %.6g apart (eps = %g)" p q d
                      eps;
                }
                :: !extra)
          rest;
        pairs rest
  in
  pairs outs;
  let violations = List.rev t.violations @ List.rev !extra in
  let counts =
    List.map
      (fun inv ->
        ( invariant_name inv,
          List.length (List.filter (fun v -> v.invariant = inv) violations) ))
      all_invariants
  in
  {
    checks = t.checks + !extra_checks;
    violations;
    counts;
    final_diameter = !diameter;
    eps;
    honest_outputs = List.length outs;
    honest_expected = Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 t.honest;
  }

let pp_summary ppf s =
  let total = total_violations s in
  if total = 0 then
    Format.fprintf ppf "monitor: ok (%d checks, diam %.3g <= eps %g, %d/%d outputs)"
      s.checks s.final_diameter s.eps s.honest_outputs s.honest_expected
  else begin
    Format.fprintf ppf "monitor: %d VIOLATIONS (%d checks):" total s.checks;
    List.iter
      (fun (name, c) -> if c > 0 then Format.fprintf ppf " %s=%d" name c)
      s.counts;
    List.iter
      (fun v ->
        Format.fprintf ppf "@\n  [%s] t=%d party=%d %s"
          (invariant_name v.invariant) v.time v.party v.detail)
      s.violations
  end
