(** Online safety-invariant checker for ΠAA runs.

    One monitor watches one run: wire {!on_trace} into the engine's tracer
    and {!on_iteration}/{!on_output} into the honest parties' callbacks
    (the harness does both when [Runner.run ~monitor:true]). Violations are
    {e accumulated} as structured records, never asserted — a soak batch
    keeps running and reports them all.

    Monitored invariants, and the paper claim each one encodes:
    - {b validity} — every honest Πinit output, adopted iteration value and
      protocol output lies in the convex hull of the honest inputs
      (Theorem 3.1 / Lemma 5.9 validity);
    - {b contraction} — each honest iteration-[it] value lies in the hull
      of the honest iteration-[(it−1)] values: the safe-area trim step
      never expands the honest spread (the containment behind the
      [√(7/8)]-contraction of Lemma 5.15);
    - {b agreement} — pairwise distance of honest outputs ≤ ε at
      termination (ε-agreement, Theorem 5.19);
    - {b double-output} — an honest party outputs at most once;
    - {b malformed-message} — honest parties only emit structurally valid
      messages (ids in range, iterations ≥ 1, payload dimensions matching
      the config).

    Containment checks that cannot be decided online (a party may run one
    iteration ahead of the stragglers, so the honest hull of [it−1] is
    still growing) are re-checked in {!summary} against the complete
    tables, so the monitor never reports a false positive. *)

type invariant =
  | Validity
  | Agreement
  | Contraction
  | Double_output
  | Malformed_message

val invariant_name : invariant -> string
val all_invariants : invariant list

type violation = {
  invariant : invariant;
  party : int;  (** [-1] when not attributable to one party *)
  time : int;
  detail : string;
}

type t

val create : cfg:Config.t -> honest:int list -> honest_inputs:Vec.t list -> t
(** [honest] are the parties graded as honest for this run: never
    statically corrupted and not targeted by any adaptive corruption.
    Events from other parties must not be fed to the monitor. *)

val on_iteration : t -> party:int -> now:int -> iter:int -> Vec.t -> unit
(** The party adopted [v_iter] ([iter = 0] is the Πinit output). *)

val on_output : t -> party:int -> now:int -> iter:int -> Vec.t -> unit

val on_trace : t -> Message.t Engine.trace_event -> unit
(** Feed every engine trace event; only [Sent] by honest parties is
    inspected (well-formedness). *)

type summary = {
  checks : int;  (** invariant evaluations performed *)
  violations : violation list;  (** in detection order *)
  counts : (string * int) list;  (** per-invariant totals, fixed order *)
  final_diameter : float;  (** of the honest outputs seen, [0.] if < 2 *)
  eps : float;
  honest_outputs : int;
  honest_expected : int;
}

val summary : t -> summary
(** Finalizes the run: resolves deferred containment checks against the
    complete iteration tables and evaluates ε-agreement over the outputs.
    Idempotent; call after [Engine.run] returns. *)

val total_violations : summary -> int
val pp_summary : Format.formatter -> summary -> unit
