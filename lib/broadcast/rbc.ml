type callbacks = {
  send_all : Message.t -> unit;
  deliver : Message.rbc_id -> Message.payload -> unit;
}

(* The seed implementation, kept verbatim (including its
   exception-as-control-flow [votes] lookup) as the differential-test
   baseline — the interned fast path below must be trace-identical to
   this module on every schedule. *)
module Reference = struct
  module IdMap = Map.Make (struct
    type t = Message.rbc_id

    let compare = Stdlib.compare
  end)

  module PayloadMap = Map.Make (struct
    type t = Message.payload

    let compare = Stdlib.compare
  end)

  module IntSet = Set.Make (Int)

  type instance = {
    mutable echoed : bool;  (* sent our echo (for some value) *)
    mutable readied : bool;  (* sent our ready (for some value) *)
    mutable output : Message.payload option;
    mutable echo_votes : IntSet.t PayloadMap.t;  (* value -> echo senders *)
    mutable ready_votes : IntSet.t PayloadMap.t;  (* value -> ready senders *)
  }

  type t = {
    n : int;
    thr : int;
    cb : callbacks;
    mutable instances : instance IdMap.t;
  }

  let create ~n ~t cb =
    if n <= 3 * t then invalid_arg "Rbc.create: requires n > 3t";
    { n; thr = t; cb; instances = IdMap.empty }

  let instance t id =
    match IdMap.find_opt id t.instances with
    | Some inst -> inst
    | None ->
        let inst =
          {
            echoed = false;
            readied = false;
            output = None;
            echo_votes = PayloadMap.empty;
            ready_votes = PayloadMap.empty;
          }
        in
        t.instances <- IdMap.add id inst t.instances;
        inst

  let votes map v =
    try IntSet.cardinal (PayloadMap.find v map) with Not_found -> 0

  let add_vote map ~from v =
    PayloadMap.update v
      (function
        | None -> Some (IntSet.singleton from)
        | Some s -> Some (IntSet.add from s))
      map

  let send_echo t id v inst =
    if not inst.echoed then begin
      inst.echoed <- true;
      t.cb.send_all (Message.Rbc (id, Message.Echo, v))
    end

  let send_ready t id v inst =
    if not inst.readied then begin
      inst.readied <- true;
      t.cb.send_all (Message.Rbc (id, Message.Ready, v))
    end

  let check_progress t id inst v =
    (* n - t echoes, or t + 1 readies: send our ready for v *)
    if
      (not inst.readied)
      && (votes inst.echo_votes v >= t.n - t.thr
         || votes inst.ready_votes v >= t.thr + 1)
    then send_ready t id v inst;
    (* n - t readies: deliver v *)
    if inst.output = None && votes inst.ready_votes v >= t.n - t.thr then begin
      inst.output <- Some v;
      t.cb.deliver id v
    end

  let broadcast t id v = t.cb.send_all (Message.Rbc (id, Message.Init, v))

  let on_message t ~from id step v =
    let inst = instance t id in
    match step with
    | Message.Init ->
        (* only the designated origin may initiate *)
        if from = id.origin then send_echo t id v inst
    | Message.Echo ->
        inst.echo_votes <- add_vote inst.echo_votes ~from v;
        check_progress t id inst v
    | Message.Ready ->
        inst.ready_votes <- add_vote inst.ready_votes ~from v;
        check_progress t id inst v

  let delivered t id =
    match IdMap.find_opt id t.instances with
    | Some inst -> inst.output
    | None -> None
end

(* ------------------------------------------------------------------ *)
(* Interned fast path: payloads become dense ids at receipt (one
   structural hash each — see Intern), instances live in a hashtable
   keyed by a per-constructor rbc_id code, and echo/ready accounting is
   an int counter plus a per-(payload, sender) bitset. No polymorphic
   compare or hash anywhere below. *)

(* Injective over (tag kind, iteration); used for hashing only, so a
   pathological iteration value can at worst cause a chain, never a
   wrong lookup — [id_equal] checks the full id. *)
let tag_code = function
  | Message.Init_value -> 0
  | Message.Init_report -> 1
  | Message.Obc_value it -> 2 + (4 * it)
  | Message.Halt it -> 3 + (4 * it)
  | Message.Async_value it -> 4 + (4 * it)
  | Message.Async_report it -> 5 + (4 * it)

let id_equal (a : Message.rbc_id) (b : Message.rbc_id) =
  a.origin = b.origin && a.instance = b.instance
  &&
  match (a.tag, b.tag) with
  | Message.Init_value, Message.Init_value
  | Message.Init_report, Message.Init_report ->
      true
  | Message.Obc_value i, Message.Obc_value j
  | Message.Halt i, Message.Halt j
  | Message.Async_value i, Message.Async_value j
  | Message.Async_report i, Message.Async_report j ->
      i = j
  | _ -> false

module IdTbl = Hashtbl.Make (struct
  type t = Message.rbc_id

  let equal = id_equal

  let hash (id : Message.rbc_id) =
    ((((tag_code id.tag * 0x01000193) lxor id.origin) * 0x01000193)
    lxor id.instance)
    land max_int
end)

(* One slot per distinct payload an instance has seen votes for; honest
   executions have exactly one, equivocation a handful, so a linear scan
   over the slot list beats any keyed structure. *)
type slot = {
  pid : int;  (* interned payload id *)
  payload : Message.payload;  (* canonical representative *)
  echo_seen : Bytes.t;  (* sender bitsets, in-range senders *)
  ready_seen : Bytes.t;
  mutable echo_count : int;
  mutable ready_count : int;
  mutable echo_extra : int list;  (* out-of-range senders, deduped *)
  mutable ready_extra : int list;
}

type instance = {
  mutable echoed : bool;
  mutable readied : bool;
  mutable output : Message.payload option;
  mutable slots : slot list;
}

type fast = {
  n : int;
  thr : int;
  bpp : int;  (* bytes per sender bitset *)
  cb : callbacks;
  intern : Intern.t;
  instances : instance IdTbl.t;
  (* 1-entry lookup memo: deliveries arrive in per-instance bursts (all
     echoes, then all readies), so remembering the last id skips the
     hashtable on the common path. *)
  mutable last_id : Message.rbc_id option;
  mutable last_inst : instance option;
}

let bit_mem b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

let fast_instance t id =
  match t.last_id with
  | Some lid when id_equal lid id -> (
      match t.last_inst with Some inst -> inst | None -> assert false)
  | _ ->
      let inst =
        match IdTbl.find_opt t.instances id with
        | Some inst -> inst
        | None ->
            let inst =
              { echoed = false; readied = false; output = None; slots = [] }
            in
            IdTbl.add t.instances id inst;
            inst
      in
      t.last_id <- Some id;
      t.last_inst <- Some inst;
      inst

let slot_for t inst pid payload =
  let rec find = function
    | [] ->
        let s =
          {
            pid;
            payload;
            echo_seen = Bytes.make t.bpp '\000';
            ready_seen = Bytes.make t.bpp '\000';
            echo_count = 0;
            ready_count = 0;
            echo_extra = [];
            ready_extra = [];
          }
        in
        inst.slots <- s :: inst.slots;
        s
    | s :: rest -> if s.pid = pid then s else find rest
  in
  find inst.slots

(* Count a vote at most once per (sender, value). Senders outside
   [0, n) cannot index the bitset; they go to a deduped side list so the
   totals still match the reference IntSet semantics exactly. *)
let add_echo t s ~from =
  if from >= 0 && from < t.n then begin
    if not (bit_mem s.echo_seen from) then begin
      bit_set s.echo_seen from;
      s.echo_count <- s.echo_count + 1
    end
  end
  else if not (List.mem from s.echo_extra) then begin
    s.echo_extra <- from :: s.echo_extra;
    s.echo_count <- s.echo_count + 1
  end

let add_ready t s ~from =
  if from >= 0 && from < t.n then begin
    if not (bit_mem s.ready_seen from) then begin
      bit_set s.ready_seen from;
      s.ready_count <- s.ready_count + 1
    end
  end
  else if not (List.mem from s.ready_extra) then begin
    s.ready_extra <- from :: s.ready_extra;
    s.ready_count <- s.ready_count + 1
  end

let fast_check_progress t id inst (s : slot) =
  (* n - t echoes, or t + 1 readies: send our ready for this value *)
  if
    (not inst.readied)
    && (s.echo_count >= t.n - t.thr || s.ready_count >= t.thr + 1)
  then begin
    inst.readied <- true;
    t.cb.send_all (Message.Rbc (id, Message.Ready, s.payload))
  end;
  (* n - t readies: deliver *)
  if inst.output = None && s.ready_count >= t.n - t.thr then begin
    inst.output <- Some s.payload;
    t.cb.deliver id s.payload
  end

let fast_on_message t ~from id step v =
  let inst = fast_instance t id in
  (* one structural hash per receipt; everything after is int-keyed *)
  let pid = Intern.intern t.intern v in
  match step with
  | Message.Init ->
      if from = id.origin && not inst.echoed then begin
        inst.echoed <- true;
        t.cb.send_all (Message.Rbc (id, Message.Echo, Intern.payload t.intern pid))
      end
  | Message.Echo ->
      let s = slot_for t inst pid (Intern.payload t.intern pid) in
      add_echo t s ~from;
      fast_check_progress t id inst s
  | Message.Ready ->
      let s = slot_for t inst pid (Intern.payload t.intern pid) in
      add_ready t s ~from;
      fast_check_progress t id inst s

(* ------------------------------------------------------------------ *)

type t = Fast of fast | Ref of Reference.t

let create ?(impl = `Interned) ?intern ~n ~t cb =
  match impl with
  | `Reference -> Ref (Reference.create ~n ~t cb)
  | `Interned ->
      if n <= 3 * t then invalid_arg "Rbc.create: requires n > 3t";
      (* standalone (non-Party) use: small tables — one broadcast is a
         single instance with a handful of payloads *)
      let intern =
        match intern with Some i -> i | None -> Intern.create ~initial_size:16 ()
      in
      Fast
        {
          n;
          thr = t;
          bpp = (n + 7) / 8;
          cb;
          intern;
          instances = IdTbl.create 16;
          last_id = None;
          last_inst = None;
        }

let broadcast t id v =
  match t with
  | Ref r -> Reference.broadcast r id v
  | Fast f ->
      (* intern our own value so the self-delivered copy is a hash hit *)
      f.cb.send_all (Message.Rbc (id, Message.Init, Intern.intern_payload f.intern v))

let on_message t ~from id step v =
  match t with
  | Ref r -> Reference.on_message r ~from id step v
  | Fast f -> fast_on_message f ~from id step v

let delivered t id =
  match t with
  | Ref r -> Reference.delivered r id
  | Fast f -> (
      match IdTbl.find_opt f.instances id with
      | Some inst -> inst.output
      | None -> None)
