(** Egress buffer for the batched message layer.

    Collects every rBC vote a party emits during one delivery tick —
    across all concurrent Bracha instances — and flushes them as a single
    combined {!Message.Rbc_batch} broadcast (one packet per receiver).
    Wire the {!flush} into [Engine.set_flusher] so it runs at the end of
    each tick; a singleton buffer is flushed as a plain {!Message.Rbc}
    packet. Batching is behaviour-preserving under RNG-free delay
    policies (see the implementation comment for the argument).

    With [~window] > 1 (opt-in) the buffer additionally coalesces across
    up to [window] consecutive end-of-tick fires before emitting — the
    cross-{e tick} aggregation that uniformly-random-delay schedules
    need, where same-tick batching finds little to combine. The engine's
    final flush drains a part-filled window before a run goes quiescent.
    The logical vote multiset is unchanged; delivery ticks shift by at
    most [window − 1], which is sound under the asynchronous model (and
    under synchrony only if the caller budgets the window into Δ). *)

type t

val create : ?window:int -> send_all:(Message.t -> unit) -> unit -> t
(** [send_all] broadcasts one packet to every party — the same primitive
    the unbatched layer hands to [Rbc]. [window] (default [1]: emit at
    every fire, the PR 6 behaviour) is the maximum number of flusher
    fires a vote may sit through before the buffer must emit. Raises
    [Invalid_argument] when [window < 1]. *)

val add : t -> Message.rbc_id -> Message.step -> Message.payload -> unit
(** Buffer one outgoing vote (in emission order). *)

val flush : ?final:bool -> t -> unit
(** One end-of-tick fire: emit the buffered votes as one combined
    broadcast once the window is exhausted (immediately at the default
    window of 1); no-op when empty. [~final:true] — the engine's
    about-to-go-quiescent fire — always emits what is held. *)

val pending : t -> int
(** Votes currently buffered. *)

val buffered : t -> int
(** Lifetime votes buffered (for tests / accounting). *)

val flushes : t -> int
(** Lifetime non-empty flushes. *)
