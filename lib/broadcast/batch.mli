(** Egress buffer for the batched message layer.

    Collects every rBC vote a party emits during one delivery tick —
    across all concurrent Bracha instances — and flushes them as a single
    combined {!Message.Rbc_batch} broadcast (one packet per receiver).
    Wire the {!flush} into [Engine.set_flusher] so it runs at the end of
    each tick; a singleton buffer is flushed as a plain {!Message.Rbc}
    packet. Batching is behaviour-preserving under RNG-free delay
    policies (see the implementation comment for the argument). *)

type t

val create : send_all:(Message.t -> unit) -> t
(** [send_all] broadcasts one packet to every party — the same primitive
    the unbatched layer hands to [Rbc]. *)

val add : t -> Message.rbc_id -> Message.step -> Message.payload -> unit
(** Buffer one outgoing vote (in emission order). *)

val flush : t -> unit
(** Emit the buffered votes as one combined broadcast; no-op when empty. *)

val pending : t -> int
(** Votes currently buffered. *)

val buffered : t -> int
(** Lifetime votes buffered (for tests / accounting). *)

val flushes : t -> int
(** Lifetime non-empty flushes. *)
