(** Bracha's Reliable Broadcast (ΠrBC, Theorem 4.2), multiplexed.

    One value of type {!t} holds {e all} reliable-broadcast instances a
    single party participates in, keyed by {!Message.rbc_id}. Instances are
    created lazily on the first message that mentions them, so a party
    echoes and amplifies for instances it never explicitly joined — which
    is exactly what the paper's Validity/Consistency-"even when not all
    honest parties join" and Conditional Liveness properties require.

    Secure for [n > 3t], with [c_rBC = 3] (an honest sender's broadcast
    completes within 3Δ of a synchronous start) and [c'_rBC = 2] (once any
    honest party delivers, all do within 2Δ).

    Two implementations sit behind the same interface (select with
    [create ?impl]):
    - [`Interned] (default): every received payload is hash-consed through
      an {!Intern} table once at receipt, instances live in a hashtable
      with a specialized [rbc_id] hash, and votes are flat counters plus
      per-(payload, sender) bitsets — no polymorphic compare on the hot
      path. This is the production path.
    - [`Reference]: the seed [PayloadMap]/[IntSet] implementation (also
      exposed directly as {!Reference}), retained for differential tests
      and the B7/B11 before/after benches. The interned path is
      trace-identical to it on every schedule — locked in by
      [test_intern.ml]. *)

type t

type callbacks = {
  send_all : Message.t -> unit;
      (** best-effort broadcast to all parties, self included *)
  deliver : Message.rbc_id -> Message.payload -> unit;
      (** invoked exactly once per instance, on output *)
}

val create :
  ?impl:[ `Interned | `Reference ] ->
  ?intern:Intern.t ->
  n:int ->
  t:int ->
  callbacks ->
  t
(** [t] is the corruption threshold the instance thresholds are computed
    from (the paper uses [ts]); requires [n > 3t]. [intern] lets the
    owning party share one interning table across its sub-protocols
    (fresh private table when omitted); it is ignored by [`Reference]. *)

val broadcast : t -> Message.rbc_id -> Message.payload -> unit
(** Act as the designated sender of instance [id] (the caller must be
    [id.origin]): sends the initial value to everyone. *)

val on_message :
  t -> from:int -> Message.rbc_id -> Message.step -> Message.payload -> unit
(** Feed an incoming [Rbc] message. Init steps are only accepted from the
    instance's origin (authenticated channels); echo and ready votes are
    counted at most once per (sender, value). *)

val delivered : t -> Message.rbc_id -> Message.payload option
(** The instance's output, if it has been delivered locally. *)

(** The seed message layer, verbatim — [Map]s keyed by polymorphic
    compare over full payloads. Differential baseline only; protocol code
    should go through {!create}. *)
module Reference : sig
  type t

  val create : n:int -> t:int -> callbacks -> t
  val broadcast : t -> Message.rbc_id -> Message.payload -> unit

  val on_message :
    t -> from:int -> Message.rbc_id -> Message.step -> Message.payload -> unit

  val delivered : t -> Message.rbc_id -> Message.payload option
end
