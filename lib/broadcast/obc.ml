type callbacks = {
  now : unit -> int;
  set_timer : at:int -> unit;
  rbc_broadcast : Message.payload -> unit;
  send_all : Message.t -> unit;
  output : Pairset.t -> unit;
}

(* Seed implementation, kept verbatim as the differential baseline: all
   collected-set accounting through Pairset (an Int map of vectors) and
   report verification through Pairset.subset — O(n · D) float compares
   per pending report on every event. *)
module Reference = struct
  module IntSet = Set.Make (Int)
  module IntMap = Map.Make (Int)

  type t = {
    n : int;
    ts : int;
    delta : int;
    iter : int;
    witnessing : bool;
    cb : callbacks;
    mutable started : bool;
    mutable tau_start : int;
    mutable m : Pairset.t;
    mutable witnesses : IntSet.t;
    mutable pending : Pairset.t IntMap.t;  (* reports not yet verified *)
    mutable seen_report : IntSet.t;  (* senders whose report we keep/kept *)
    mutable sent_report : bool;
    mutable done_ : bool;
  }

  let create ?(witnessing = true) ~n ~ts ~delta ~iter cb =
    {
      n;
      ts;
      delta;
      iter;
      witnessing;
      cb;
      started = false;
      tau_start = 0;
      m = Pairset.empty;
      witnesses = IntSet.empty;
      pending = IntMap.empty;
      seen_report = IntSet.empty;
      sent_report = false;
      done_ = false;
    }

  let has_output t = t.done_

  (* A report is validated when it is large enough and every pair in it has
     been rBC-delivered to us too; its sender becomes a witness. *)
  let recheck_pending t =
    let validated, still_pending =
      IntMap.partition
        (fun _ report ->
          Pairset.cardinal report >= t.n - t.ts && Pairset.subset report t.m)
        t.pending
    in
    t.pending <- still_pending;
    IntMap.iter
      (fun from _ -> t.witnesses <- IntSet.add from t.witnesses)
      validated

  let try_fire t =
    if t.started && not t.done_ then begin
      let now = t.cb.now () in
      if
        (not t.sent_report)
        && now > t.tau_start + (Params.c_rbc * t.delta)
        && Pairset.cardinal t.m >= t.n - t.ts
      then begin
        t.sent_report <- true;
        t.cb.send_all
          (Message.Obc_report
             { instance = 0; iter = t.iter; pairs = Pairset.bindings t.m })
      end;
      recheck_pending t;
      let witness_ok =
        if t.witnessing then IntSet.cardinal t.witnesses >= t.n - t.ts
        else Pairset.cardinal t.m >= t.n - t.ts
      in
      let deadline =
        if t.witnessing then (Params.c_rbc + Params.c_rbc') * t.delta
        else Params.c_rbc * t.delta
      in
      if now > t.tau_start + deadline && witness_ok then begin
        t.done_ <- true;
        t.cb.output t.m
      end
    end

  let start t v =
    if t.started then invalid_arg "Obc.start: already started";
    t.started <- true;
    t.tau_start <- t.cb.now ();
    t.cb.rbc_broadcast (Message.Pvec v);
    t.cb.set_timer ~at:(t.tau_start + (Params.c_rbc * t.delta) + 1);
    t.cb.set_timer
      ~at:(t.tau_start + ((Params.c_rbc + Params.c_rbc') * t.delta) + 1);
    try_fire t

  let valid_party t p = p >= 0 && p < t.n

  let on_value t ~origin v =
    if valid_party t origin then begin
      t.m <- Pairset.add ~party:origin v t.m;
      try_fire t
    end

  let on_report t ~from pairs =
    if valid_party t from && not (IntSet.mem from t.seen_report) then begin
      t.seen_report <- IntSet.add from t.seen_report;
      let report =
        List.fold_left
          (fun acc (p, v) ->
            if valid_party t p then Pairset.add ~party:p v acc else acc)
          Pairset.empty pairs
      in
      t.pending <- IntMap.add from report t.pending;
      try_fire t
    end

  let poke t = try_fire t
end

(* ------------------------------------------------------------------ *)
(* Interned fast path. The collected set M is a flat party-indexed array
   of interned value ids, a pending report is the same shape, and the
   subset check behind witness promotion — re-run on every single event
   by [try_fire] — degrades from O(n·D) float comparisons to O(n) int
   compares. Vectors are interned as [Pvec] through the same table the
   party's rBC layer uses, so the ids agree with the values rBC
   delivered and the canonical vectors are shared in memory. *)

type pending = {
  sender : int;
  rep_pid : int array;  (* party -> value id, -1 absent *)
  rep_count : int;
}

type fast = {
  n : int;
  ts : int;
  delta : int;
  iter : int;
  witnessing : bool;
  cb : callbacks;
  intern : Intern.t;
  m_pid : int array;  (* party -> interned value id, -1 absent *)
  m_vec : Vec.t array;  (* canonical vectors, valid where m_pid >= 0 *)
  mutable m_count : int;
  witness_seen : Bytes.t;
  mutable witness_count : int;
  mutable pending : pending list;  (* unverified reports, newest first *)
  seen_report : Bytes.t;
  mutable started : bool;
  mutable tau_start : int;
  mutable sent_report : bool;
  mutable done_ : bool;
}

let bit_mem b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

let intern_vec t v =
  let pid = Intern.intern t.intern (Message.Pvec v) in
  match Intern.payload t.intern pid with
  | Message.Pvec cv -> (pid, cv)
  | _ -> assert false

(* ascending party order — exactly Pairset.bindings of the same set *)
let fast_bindings t =
  let acc = ref [] in
  for p = t.n - 1 downto 0 do
    if t.m_pid.(p) >= 0 then acc := (p, t.m_vec.(p)) :: !acc
  done;
  !acc

let fast_pairset t = Pairset.of_bindings (fast_bindings t)

let report_verified t r =
  r.rep_count >= t.n - t.ts
  &&
  let ok = ref true in
  for p = 0 to t.n - 1 do
    if r.rep_pid.(p) >= 0 && r.rep_pid.(p) <> t.m_pid.(p) then ok := false
  done;
  !ok

let fast_recheck_pending t =
  let validated, rest = List.partition (report_verified t) t.pending in
  t.pending <- rest;
  List.iter
    (fun r ->
      if not (bit_mem t.witness_seen r.sender) then begin
        bit_set t.witness_seen r.sender;
        t.witness_count <- t.witness_count + 1
      end)
    validated

let fast_try_fire t =
  if t.started && not t.done_ then begin
    let now = t.cb.now () in
    if
      (not t.sent_report)
      && now > t.tau_start + (Params.c_rbc * t.delta)
      && t.m_count >= t.n - t.ts
    then begin
      t.sent_report <- true;
      t.cb.send_all
        (Message.Obc_report
           { instance = 0; iter = t.iter; pairs = fast_bindings t })
    end;
    fast_recheck_pending t;
    let witness_ok =
      if t.witnessing then t.witness_count >= t.n - t.ts
      else t.m_count >= t.n - t.ts
    in
    let deadline =
      if t.witnessing then (Params.c_rbc + Params.c_rbc') * t.delta
      else Params.c_rbc * t.delta
    in
    if now > t.tau_start + deadline && witness_ok then begin
      t.done_ <- true;
      t.cb.output (fast_pairset t)
    end
  end

let fast_start t v =
  if t.started then invalid_arg "Obc.start: already started";
  t.started <- true;
  t.tau_start <- t.cb.now ();
  t.cb.rbc_broadcast (Message.Pvec v);
  t.cb.set_timer ~at:(t.tau_start + (Params.c_rbc * t.delta) + 1);
  t.cb.set_timer
    ~at:(t.tau_start + ((Params.c_rbc + Params.c_rbc') * t.delta) + 1);
  fast_try_fire t

let fast_valid_party t p = p >= 0 && p < t.n

let fast_on_value t ~origin v =
  if fast_valid_party t origin then begin
    (* first value per origin wins, as in Pairset.add *)
    if t.m_pid.(origin) < 0 then begin
      let pid, cv = intern_vec t v in
      t.m_pid.(origin) <- pid;
      t.m_vec.(origin) <- cv;
      t.m_count <- t.m_count + 1
    end;
    fast_try_fire t
  end

let fast_on_report t ~from pairs =
  if fast_valid_party t from && not (bit_mem t.seen_report from) then begin
    bit_set t.seen_report from;
    let rep_pid = Array.make t.n (-1) in
    let count = ref 0 in
    List.iter
      (fun (p, v) ->
        if fast_valid_party t p && rep_pid.(p) < 0 then begin
          let pid, _ = intern_vec t v in
          rep_pid.(p) <- pid;
          incr count
        end)
      pairs;
    t.pending <- { sender = from; rep_pid; rep_count = !count } :: t.pending;
    fast_try_fire t
  end

(* ------------------------------------------------------------------ *)

type t = Fast of fast | Ref of Reference.t

let create ?(impl = `Interned) ?intern ?(witnessing = true) ~n ~ts ~delta
    ~iter cb =
  match impl with
  | `Reference -> Ref (Reference.create ~witnessing ~n ~ts ~delta ~iter cb)
  | `Interned ->
      let intern =
        match intern with Some i -> i | None -> Intern.create ~initial_size:16 ()
      in
      Fast
        {
          n;
          ts;
          delta;
          iter;
          witnessing;
          cb;
          intern;
          m_pid = Array.make n (-1);
          m_vec = Array.make n (Vec.zero 0);
          m_count = 0;
          witness_seen = Bytes.make ((n + 7) / 8) '\000';
          witness_count = 0;
          pending = [];
          seen_report = Bytes.make ((n + 7) / 8) '\000';
          started = false;
          tau_start = 0;
          sent_report = false;
          done_ = false;
        }

let has_output = function
  | Fast f -> f.done_
  | Ref r -> Reference.has_output r

let start t v =
  match t with Fast f -> fast_start f v | Ref r -> Reference.start r v

let on_value t ~origin v =
  match t with
  | Fast f -> fast_on_value f ~origin v
  | Ref r -> Reference.on_value r ~origin v

let on_report t ~from pairs =
  match t with
  | Fast f -> fast_on_report f ~from pairs
  | Ref r -> Reference.on_report r ~from pairs

let poke t =
  match t with Fast f -> fast_try_fire f | Ref r -> Reference.poke r
