(* Egress buffer for the batched message layer.

   A party routes every outgoing rBC vote here instead of broadcasting it
   immediately; the engine's end-of-tick flusher then emits the buffered
   votes as one combined [Rbc_batch] packet per receiver (the buffer sits
   in front of the party's broadcast primitive, so "one packet per
   receiver" falls out of broadcasting the combined packet once).

   Under a delay policy that ignores the RNG — lockstep, instant, rushing,
   targeted-slow — this is behaviour-preserving, not just equivalent in
   distribution: a vote buffered at tick T is flushed at tick T, and its
   per-receiver delay depends only on (src, dst, T), so every logical vote
   is delivered at exactly the tick the unbatched layer would have chosen.
   Randomised policies draw one delay per packet instead of one per vote,
   so schedules diverge (while the protocol stays correct); the
   differential tests therefore pin deterministic policies.

   The opt-in cross-tick window ([~window] > 1) holds the buffer across up
   to [window] consecutive flusher fires before emitting, so votes emitted
   on different ticks — the common shape under uniformly-random-delay
   schedules, where echo thresholds crossed by different parties land on
   different ticks — still coalesce into one packet. This trades latency
   (a vote can leave up to [window − 1] ticks late) for packet count; it
   changes the schedule, never the logical vote multiset, and is only
   sound where arbitrary-but-finite extra delay is: under the asynchronous
   network model, or under synchrony when the caller accounts the window
   into its Δ budget. The engine's final flush ([~final:true], fired just
   before a run goes quiescent) drains whatever the window still holds, so
   no vote is ever lost to a run ending mid-window. *)

type t = {
  mutable buf : (Message.rbc_id * Message.step * Message.payload) list;
      (* reverse emission order *)
  mutable buffered : int;  (* lifetime votes buffered *)
  mutable flushes : int;  (* non-empty flushes *)
  mutable fires : int;  (* flusher fires since the buffer last emptied *)
  window : int;
  send_all : Message.t -> unit;
}

let create ?(window = 1) ~send_all () =
  if window < 1 then invalid_arg "Batch.create: window must be >= 1";
  { buf = []; buffered = 0; flushes = 0; fires = 0; window; send_all }

let add t id step payload =
  t.buffered <- t.buffered + 1;
  t.buf <- (id, step, payload) :: t.buf

let emit t =
  match t.buf with
  | [] -> ()
  | [ (id, step, p) ] ->
      (* a lone vote gains nothing from the batch framing — send it
         plain, so receivers and byte accounting see the familiar shape *)
      t.buf <- [];
      t.fires <- 0;
      t.flushes <- t.flushes + 1;
      t.send_all (Message.Rbc (id, step, p))
  | entries ->
      t.buf <- [];
      t.fires <- 0;
      t.flushes <- t.flushes + 1;
      t.send_all (Message.Rbc_batch (List.rev entries))

let flush ?(final = false) t =
  match t.buf with
  | [] -> t.fires <- 0
  | _ ->
      t.fires <- t.fires + 1;
      if final || t.fires >= t.window then emit t

let pending t = List.length t.buf
let buffered t = t.buffered
let flushes t = t.flushes
