(* Egress buffer for the batched message layer.

   A party routes every outgoing rBC vote here instead of broadcasting it
   immediately; the engine's end-of-tick flusher then emits the buffered
   votes as one combined [Rbc_batch] packet per receiver (the buffer sits
   in front of the party's broadcast primitive, so "one packet per
   receiver" falls out of broadcasting the combined packet once).

   Under a delay policy that ignores the RNG — lockstep, instant, rushing,
   targeted-slow — this is behaviour-preserving, not just equivalent in
   distribution: a vote buffered at tick T is flushed at tick T, and its
   per-receiver delay depends only on (src, dst, T), so every logical vote
   is delivered at exactly the tick the unbatched layer would have chosen.
   Randomised policies draw one delay per packet instead of one per vote,
   so schedules diverge (while the protocol stays correct); the
   differential tests therefore pin deterministic policies. *)

type t = {
  mutable buf : (Message.rbc_id * Message.step * Message.payload) list;
      (* reverse emission order *)
  mutable buffered : int;  (* lifetime votes buffered *)
  mutable flushes : int;  (* non-empty flushes *)
  send_all : Message.t -> unit;
}

let create ~send_all = { buf = []; buffered = 0; flushes = 0; send_all }

let add t id step payload =
  t.buffered <- t.buffered + 1;
  t.buf <- (id, step, payload) :: t.buf

let flush t =
  match t.buf with
  | [] -> ()
  | [ (id, step, p) ] ->
      (* a lone vote gains nothing from the batch framing — send it
         plain, so receivers and byte accounting see the familiar shape *)
      t.buf <- [];
      t.flushes <- t.flushes + 1;
      t.send_all (Message.Rbc (id, step, p))
  | entries ->
      t.buf <- [];
      t.flushes <- t.flushes + 1;
      t.send_all (Message.Rbc_batch (List.rev entries))

let pending t = List.length t.buf
let buffered t = t.buffered
let flushes t = t.flushes
