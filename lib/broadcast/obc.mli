(** Overlap All-to-All Broadcast (ΠoBC, Section 4.2) — one instance, for one
    party and one iteration.

    Every party reliably broadcasts its value; after [c_rBC·Δ], once
    [n − ts] values are in, the party reports its collected set best-effort;
    senders of fully-verified reports become {e witnesses}; after
    [(c_rBC + c'_rBC)·Δ], once [n − ts] witnesses are marked, the party
    outputs its (current) collected set.

    Timing guards re-fire on every event: the owner must route its timer
    wake-ups to {!poke} and arrange timers at the two deadline instants
    (done automatically via the [set_timer] callback on {!start}).

    The [witnessing] flag exists only for the E5 ablation: switching it off
    skips the witness phase and outputs on the first deadline, losing the
    [(ts, ta)]-Overlap guarantee under asynchrony.

    Like {!Rbc}, two implementations share this interface: the default
    [`Interned] path keeps the collected set and every pending report as
    flat party-indexed arrays of {!Intern} value ids (report verification
    is O(n) int compares instead of a [Pairset.subset] of float vectors
    on every event), while [`Reference] is the seed Pairset/Map code —
    trace-identical, retained for differential tests and benches. *)

type t

type callbacks = {
  now : unit -> int;
  set_timer : at:int -> unit;  (** must eventually trigger {!poke} *)
  rbc_broadcast : Message.payload -> unit;
      (** start our own rBC instance for this iteration's value *)
  send_all : Message.t -> unit;  (** best-effort broadcast *)
  output : Pairset.t -> unit;  (** fired exactly once *)
}

val create :
  ?impl:[ `Interned | `Reference ] ->
  ?intern:Intern.t ->
  ?witnessing:bool ->
  n:int ->
  ts:int ->
  delta:int ->
  iter:int ->
  callbacks ->
  t
(** [intern] shares the owning party's interning table (fresh private
    table when omitted; ignored by [`Reference]) — pass the same table as
    the party's {!Rbc} so value ids agree across the layers. *)

val start : t -> Vec.t -> unit
(** Join the protocol with our value; records the local start time. *)

val on_value : t -> origin:int -> Vec.t -> unit
(** An rBC instance [(Obc_value iter, origin)] delivered [origin]'s value. *)

val on_report : t -> from:int -> (int * Vec.t) list -> unit
(** A best-effort [Obc_report] arrived. Only the first report per sender is
    retained (honest parties send exactly one). *)

val poke : t -> unit
(** Re-evaluate all guards (call on timer wake-ups). *)

val has_output : t -> bool

(** The seed Pairset/Map implementation, verbatim — differential baseline
    only; protocol code should go through {!create}. *)
module Reference : sig
  type t

  val create :
    ?witnessing:bool -> n:int -> ts:int -> delta:int -> iter:int ->
    callbacks -> t

  val start : t -> Vec.t -> unit
  val on_value : t -> origin:int -> Vec.t -> unit
  val on_report : t -> from:int -> (int * Vec.t) list -> unit
  val poke : t -> unit
  val has_output : t -> bool
end
