(* A fixed-size domain pool over stdlib Domain/Mutex/Condition (no
   dependencies beyond OCaml 5). Workers block on a shared job queue;
   [map] fans a list out and reassembles results in submission order.

   Determinism contract: the pool never shares mutable protocol state
   between jobs — each job closes over its own data. Jobs run in an
   arbitrary interleaving, so anything a job mutates must be private to
   it, and callers must not print from inside a job (emit from the
   ordered result list after [map] returns instead). *)

type job = Job of (unit -> unit) | Stop

type t = {
  lock : Mutex.t;
  pending : Condition.t;  (* signalled when a job (or Stop) is queued *)
  jobs : job Queue.t;
  mutable workers : unit Domain.t list;
  mutable waiting : int;  (* workers currently blocked in Condition.wait *)
  mutable stopped : bool;
}

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.jobs do
    pool.waiting <- pool.waiting + 1;
    Condition.wait pool.pending pool.lock;
    pool.waiting <- pool.waiting - 1
  done;
  let job = Queue.pop pool.jobs in
  Mutex.unlock pool.lock;
  match job with
  | Stop -> ()
  | Job f ->
      f ();
      worker_loop pool

let create ?domains () =
  let requested =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  let size = max 1 requested in
  let pool =
    {
      lock = Mutex.create ();
      pending = Condition.create ();
      jobs = Queue.create ();
      workers = [];
      waiting = 0;
      stopped = false;
    }
  in
  pool.workers <-
    List.init size (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = List.length pool.workers

let submit pool f =
  Mutex.lock pool.lock;
  if pool.stopped then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add (Job f) pool.jobs;
  (* Signal exactly one sleeper, and only when someone is actually asleep:
     a busy worker re-checks the queue on its own, so an unconditional
     signal would just burn a futex syscall per job on a saturated pool. *)
  if pool.waiting > 0 then Condition.signal pool.pending;
  Mutex.unlock pool.lock

let shutdown pool =
  Mutex.lock pool.lock;
  if not pool.stopped then begin
    pool.stopped <- true;
    List.iter (fun _ -> Queue.add Stop pool.jobs) pool.workers;
    Condition.broadcast pool.pending;
    Mutex.unlock pool.lock;
    List.iter Domain.join pool.workers
  end
  else Mutex.unlock pool.lock

(* A job that raises is recorded as [Error] in its own slot and the first
   failure (by submission index) is re-raised only after every job has
   finished — one bad task cannot wedge the pool or abandon its
   siblings' results. *)
let map pool f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let out = Array.make n None in
  let done_lock = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref n in
  Array.iteri
    (fun i x ->
      submit pool (fun () ->
          let r =
            match f x with
            | v -> Ok v
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                Error (e, bt)
          in
          Mutex.lock done_lock;
          out.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock done_lock))
    items;
  Mutex.lock done_lock;
  while !remaining > 0 do
    Condition.wait all_done done_lock
  done;
  Mutex.unlock done_lock;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* remaining = 0 fills every slot *))
       out)

(* Same contract as [map], but one queued job per contiguous chunk of
   ⌈n/size⌉ items instead of one per item. For protocol-run sized jobs the
   per-item dispatch (queue lock + wakeup + done-counter lock) is the
   dominant pool overhead once items outnumber workers; chunking pays it
   once per chunk. Chunks are contiguous and results keep submission
   order, so the output is bit-identical to [map]'s. *)
let map_chunked ?chunk_size pool f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let chunk =
      match chunk_size with
      | Some c when c > 0 -> c
      | Some c -> invalid_arg (Printf.sprintf "Pool.map_chunked: chunk_size %d" c)
      | None -> (n + size pool - 1) / size pool
    in
    let out = Array.make n None in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let chunks = (n + chunk - 1) / chunk in
    let remaining = ref chunks in
    for c = 0 to chunks - 1 do
      let lo = c * chunk in
      let hi = min n (lo + chunk) - 1 in
      submit pool (fun () ->
          for i = lo to hi do
            out.(i) <-
              Some
                (match f items.(i) with
                | v -> Ok v
                | exception e ->
                    let bt = Printexc.get_raw_backtrace () in
                    Error (e, bt))
          done;
          Mutex.lock done_lock;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock done_lock)
    done;
    Mutex.lock done_lock;
    while !remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false (* every chunk fills its whole range *))
         out)
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
