(* A fixed-size domain pool over stdlib Domain/Mutex/Condition (no
   dependencies beyond OCaml 5). Workers block on a shared job queue;
   [map] fans a list out and reassembles results in submission order.

   Determinism contract: the pool never shares mutable protocol state
   between jobs — each job closes over its own data. Jobs run in an
   arbitrary interleaving, so anything a job mutates must be private to
   it, and callers must not print from inside a job (emit from the
   ordered result list after [map] returns instead). *)

type job = Job of (unit -> unit) | Stop

type t = {
  lock : Mutex.t;
  pending : Condition.t;  (* signalled when a job (or Stop) is queued *)
  jobs : job Queue.t;
  mutable workers : unit Domain.t list;
  mutable waiting : int;  (* workers currently blocked in Condition.wait *)
  mutable stopped : bool;
}

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.jobs do
    pool.waiting <- pool.waiting + 1;
    Condition.wait pool.pending pool.lock;
    pool.waiting <- pool.waiting - 1
  done;
  let job = Queue.pop pool.jobs in
  Mutex.unlock pool.lock;
  match job with
  | Stop -> ()
  | Job f ->
      f ();
      worker_loop pool

let create ?domains () =
  let requested =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  let size = max 1 requested in
  let pool =
    {
      lock = Mutex.create ();
      pending = Condition.create ();
      jobs = Queue.create ();
      workers = [];
      waiting = 0;
      stopped = false;
    }
  in
  pool.workers <-
    List.init size (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = List.length pool.workers

let submit pool f =
  Mutex.lock pool.lock;
  if pool.stopped then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add (Job f) pool.jobs;
  (* Signal exactly one sleeper, and only when someone is actually asleep:
     a busy worker re-checks the queue on its own, so an unconditional
     signal would just burn a futex syscall per job on a saturated pool. *)
  if pool.waiting > 0 then Condition.signal pool.pending;
  Mutex.unlock pool.lock

let shutdown pool =
  Mutex.lock pool.lock;
  if not pool.stopped then begin
    pool.stopped <- true;
    List.iter (fun _ -> Queue.add Stop pool.jobs) pool.workers;
    Condition.broadcast pool.pending;
    Mutex.unlock pool.lock;
    List.iter Domain.join pool.workers
  end
  else Mutex.unlock pool.lock

(* A job that raises is recorded as [Error] in its own slot and the first
   failure (by submission index) is re-raised only after every job has
   finished — one bad task cannot wedge the pool or abandon its
   siblings' results. *)
let map pool f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let out = Array.make n None in
  let done_lock = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref n in
  Array.iteri
    (fun i x ->
      submit pool (fun () ->
          let r =
            match f x with
            | v -> Ok v
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                Error (e, bt)
          in
          Mutex.lock done_lock;
          out.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock done_lock))
    items;
  Mutex.lock done_lock;
  while !remaining > 0 do
    Condition.wait all_done done_lock
  done;
  Mutex.unlock done_lock;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* remaining = 0 fills every slot *))
       out)

(* Same contract as [map], but one queued job per contiguous chunk of
   ⌈n/size⌉ items instead of one per item. For protocol-run sized jobs the
   per-item dispatch (queue lock + wakeup + done-counter lock) is the
   dominant pool overhead once items outnumber workers; chunking pays it
   once per chunk. Chunks are contiguous and results keep submission
   order, so the output is bit-identical to [map]'s. *)
let map_chunked ?chunk_size pool f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let chunk =
      match chunk_size with
      | Some c when c > 0 -> c
      | Some c -> invalid_arg (Printf.sprintf "Pool.map_chunked: chunk_size %d" c)
      | None -> (n + size pool - 1) / size pool
    in
    let out = Array.make n None in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let chunks = (n + chunk - 1) / chunk in
    let remaining = ref chunks in
    for c = 0 to chunks - 1 do
      let lo = c * chunk in
      let hi = min n (lo + chunk) - 1 in
      submit pool (fun () ->
          for i = lo to hi do
            out.(i) <-
              Some
                (match f items.(i) with
                | v -> Ok v
                | exception e ->
                    let bt = Printexc.get_raw_backtrace () in
                    Error (e, bt))
          done;
          Mutex.lock done_lock;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock done_lock)
    done;
    Mutex.lock done_lock;
    while !remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false (* every chunk fills its whole range *))
         out)
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* -- Supervised sweeps: worker-domain crash recovery -----------------

   [map]/[map_chunked] capture job exceptions in-slot, which is right for
   programming errors in cheap jobs — but a soak sweep must also survive
   *fatal* worker failures (Out_of_memory, Stack_overflow, a crashed
   runtime invariant) without losing the rest of the sweep or the results
   already collected. [Supervised.map] therefore treats ANY exception
   escaping a job as the death of its worker domain: the worker unwinds
   and exits, the supervisor (the calling domain) joins the corpse, spawns
   a replacement, and requeues the in-flight item with a bounded retry
   count — after [max_retries] requeues the item is reported as [Crashed]
   instead of aborting the sweep.

   The supervisor is also the only domain that runs [on_done], so callers
   can journal per-case progress (file IO) without violating the pool's
   no-IO-in-workers rule. Outcomes keep submission order; jobs must not
   share mutable state, exactly as with [map]. *)
module Supervised = struct
  type 'b outcome = Done of 'b | Crashed of { attempts : int; last_error : string }

  (* Spawned-minus-joined across all Supervised sweeps; a test probe for
     "no leaked domains", independent of Domain.recommended_domain_count. *)
  let live = Atomic.make 0

  let active_domains () = Atomic.get live

  let map ?domains ?(max_retries = 1) ?on_done job xs =
    let items = Array.of_list xs in
    let n = Array.length items in
    if n = 0 then []
    else begin
      let requested =
        match domains with
        | Some d -> max 1 d
        | None -> Domain.recommended_domain_count ()
      in
      let size = min requested n in
      let lock = Mutex.create () in
      let wake_workers = Condition.create () in
      let wake_super = Condition.create () in
      let pending = Queue.create () in
      (* (item index, prior crash count) *)
      Array.iteri (fun i _ -> Queue.add (i, 0) pending) items;
      let results = Array.make n None in
      let completed = ref 0 in
      let notify = Queue.create () in (* fresh outcomes for on_done *)
      let dead = Queue.create () in (* (worker id, item, crashes, error) *)
      let stop = ref false in
      let workers = Hashtbl.create (size * 2) in
      let next_wid = ref 0 in
      let record i o =
        (* lock held *)
        results.(i) <- Some o;
        incr completed;
        Queue.add i notify;
        Condition.signal wake_super
      in
      let worker_body wid =
        let rec loop () =
          Mutex.lock lock;
          while Queue.is_empty pending && not !stop do
            Condition.wait wake_workers lock
          done;
          if Queue.is_empty pending then Mutex.unlock lock
          else begin
            let i, crashes = Queue.pop pending in
            Mutex.unlock lock;
            match job items.(i) with
            | v ->
                Mutex.lock lock;
                record i (Done v);
                Mutex.unlock lock;
                loop ()
            | exception e ->
                (* The crash path: report the death and fall off the end of
                   the domain — the supervisor joins us and respawns. *)
                let msg = Printexc.to_string e in
                Mutex.lock lock;
                Queue.add (wid, i, crashes + 1, msg) dead;
                Condition.signal wake_super;
                Mutex.unlock lock
          end
        in
        loop ()
      in
      let spawn () =
        (* lock held; the new domain blocks on [lock] until we release *)
        let wid = !next_wid in
        incr next_wid;
        Atomic.incr live;
        Hashtbl.replace workers wid (Domain.spawn (fun () -> worker_body wid))
      in
      let join_worker wid =
        (* lock held; released around the join so live workers keep going *)
        let d = Hashtbl.find workers wid in
        Hashtbl.remove workers wid;
        Mutex.unlock lock;
        Domain.join d;
        Atomic.decr live;
        Mutex.lock lock
      in
      Mutex.lock lock;
      for _ = 1 to size do
        spawn ()
      done;
      while !completed < n do
        while not (Queue.is_empty notify) do
          let i = Queue.pop notify in
          match on_done with
          | None -> ()
          | Some f ->
              let o = Option.get results.(i) in
              Mutex.unlock lock;
              f i o;
              Mutex.lock lock
        done;
        while not (Queue.is_empty dead) do
          let wid, i, crashes, msg = Queue.pop dead in
          join_worker wid;
          if crashes > max_retries then
            record i (Crashed { attempts = crashes; last_error = msg })
          else begin
            Queue.add (i, crashes) pending;
            Condition.signal wake_workers
          end;
          if (not (Queue.is_empty pending)) && Hashtbl.length workers < size
          then spawn ()
        done;
        if
          !completed < n
          && Queue.is_empty notify
          && Queue.is_empty dead
        then Condition.wait wake_super lock
      done;
      stop := true;
      Condition.broadcast wake_workers;
      let rest = Hashtbl.fold (fun wid _ acc -> wid :: acc) workers [] in
      List.iter join_worker rest;
      Mutex.unlock lock;
      (* drain outcomes recorded after the last in-loop notify sweep *)
      (match on_done with
      | None -> ()
      | Some f ->
          Queue.iter (fun i -> f i (Option.get results.(i))) notify);
      Array.to_list (Array.map Option.get results)
    end
end
