(** Mini-networks that drive a single sub-protocol in isolation, for the
    per-primitive experiments (E4, E5, E8) and focused tests. *)

type rbc_obs = {
  rbc_deliveries : (int * Message.payload * int) list;
      (** (party, payload, delivery time) *)
}

val run_rbc :
  ?seed:int64 ->
  ?impl:[ `Interned | `Reference ] ->
  n:int ->
  t:int ->
  policy:Engine.delay_policy ->
  honest:int list ->
  sender:[ `Honest of int * Message.payload
         | `Equivocator of int * Message.payload * Message.payload ] ->
  unit ->
  rbc_obs
(** One reliable-broadcast instance. With [`Equivocator], the sender sends
    the first payload to the lower half and the second to the upper half,
    echoing both. *)

type obc_obs = {
  obc_outputs : (int * Pairset.t * int) list;  (** (party, set, time) *)
}

val run_obc :
  ?seed:int64 ->
  ?witnessing:bool ->
  ?start_delays:(int * int) list ->
  n:int ->
  ts:int ->
  delta:int ->
  policy:Engine.delay_policy ->
  inputs:(int * Vec.t) list ->
  unit ->
  obc_obs
(** One ΠoBC instance per listed (honest) party; unlisted parties are
    silent-corrupt. Parties in [start_delays] join that many ticks late —
    their values then race other parties' collection deadlines, which is
    how report sets diverge. *)

type init_obs = {
  init_results : (int * int * Vec.t * int) list;
      (** (party, T, v0, output time) *)
  init_estimations : (int * Pairset.t) list;  (** party ↦ its I_e *)
}

val run_init :
  ?seed:int64 ->
  ?double_witnessing:bool ->
  n:int ->
  ts:int ->
  ta:int ->
  delta:int ->
  eps:float ->
  policy:Engine.delay_policy ->
  inputs:(int * Vec.t) list ->
  unit ->
  init_obs
(** One Πinit per listed (honest) party. *)
