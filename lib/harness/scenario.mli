(** A complete experiment description: configuration, network, inputs and
    corruptions. Running one is a pure function of this record. *)

type t = {
  name : string;
  cfg : Config.t;
  seed : int64;
  policy : Engine.delay_policy;
  sync_network : bool;
      (** whether [policy] respects the Δ bound — decides which corruption
          budget ([ts] or [ta]) the run is graded against *)
  inputs : Vec.t list;  (** one per party, including corrupted ones *)
  corruptions : (int * Behavior.t) list;  (** party id ↦ behaviour *)
}

val make :
  ?name:string ->
  ?seed:int64 ->
  ?policy:Engine.delay_policy ->
  ?sync_network:bool ->
  ?corruptions:(int * Behavior.t) list ->
  cfg:Config.t ->
  inputs:Vec.t list ->
  unit ->
  t
(** Defaults: worst-case synchronous lockstep policy, no corruptions.
    @raise Invalid_argument on malformed inputs/corruptions. *)

val replicate : seeds:int64 list -> t -> t list
(** One copy per seed (same config, inputs, corruptions and policy), the
    name suffixed ["@<seed>"]. The cheap way to widen a statistical sweep
    over scheduling randomness; feed the list to {!Runner.run_batch}. *)

val honest : t -> int list
val corrupt_count : t -> int
val honest_inputs : t -> Vec.t list
