(** A complete experiment description: configuration, network, inputs,
    corruptions and (optionally) a chaos fault plan. Running one is a pure
    function of this record. *)

type budget = {
  max_events : int option;
      (** engine event budget for the run; [None] = the engine default
          (10M) — but see {!Runner.run}: exhaustion is reported as a
          structured [Budget_exhausted] outcome, not an exception *)
  wall_seconds : float option;
      (** wall-clock deadline for the run, polled cooperatively between
          engine events; exceeding it yields a [Timed_out] outcome.
          Wall-clock is inherently non-reproducible — use it as a hang
          safety net, and [max_events] as the deterministic budget *)
}

val no_budget : budget
(** Both fields [None]: the pre-watchdog behaviour. *)

type t = {
  name : string;
  cfg : Config.t;
  seed : int64;
  policy : Engine.delay_policy;
  sync_network : bool;
      (** whether [policy] respects the Δ bound — decides which corruption
          budget ([ts] or [ta]) the run is graded against *)
  inputs : Vec.t list;  (** one per party, including corrupted ones *)
  corruptions : (int * Behavior.t) list;  (** party id ↦ behaviour *)
  chaos : Fault_plan.t option;
      (** seeded fault plan layered on top of [policy] and [corruptions]
          (see {!Fault_plan}); adaptive corruption targets count against
          the same [ts]/[ta] budget *)
  mutant : Party.mutant option;
      (** deliberately broken protocol variant — only for proving the
          monitor detects real bugs *)
  mode : Party.mode;
      (** honest parties' protocol mode (see {!Party.mode}): [Estimate]
          (default, the paper's Πinit + iterations) or [Fixed_t] — the
          known-input-bounds variant that skips Πinit, used by E16 and by
          the B14 small-instance saturation bench. Ignored under [`Ew]. *)
  isolate : bool;
      (** run the engine under [`Isolate]: a party-handler exception
          records a failure and crashes that party instead of aborting the
          whole run (and, in pooled sweeps, the whole batch) *)
  message_layer : [ `Interned | `Reference | `Batched ];
      (** broadcast-layer implementation for honest parties (see
          {!Party.attach}); [`Reference] exists for differential testing
          against the seed message layer and the B6/B11 benches;
          [`Batched] coalesces each party's per-tick rBC votes into one
          combined packet per receiver (ignored under [`Ew], which has no
          rBC traffic) *)
  batch_window : int;
      (** cross-tick aggregation window for the [`Batched] layer (see
          {!Batch.create}); [1] (default) = the per-tick behaviour.
          Ignored unless [message_layer] is [`Batched]. *)
  update_kernel : Safe_cache.kernel;
      (** iteration update rule for honest parties (see {!Party.attach}):
          the paper's safe-area midpoint (default) or the centroid-style
          rule benchmarked in E17; ignored under [`Ew] *)
  protocol : [ `Maaa | `Ew ];
      (** which protocol the honest parties run: the paper's hybrid ΠAA
          (default) or the Erbes–Wattenhofer quadratic-communication
          asynchronous AA ({!Ew_aa}). Under [`Ew] the [mutant] and
          [message_layer] fields are ignored. *)
  transport : [ `Sim | `Net ];
      (** message-passing backend: [`Sim] (default) keeps deliveries
          inside the engine's event queue; [`Net] routes every message
          through the loopback TCP runtime ({!Netrun}) below the same
          engine-as-scheduler — results are byte-identical by design,
          which is exactly what the differential harness checks *)
  wire_chaos : Wire_chaos.plan option;
      (** frame-level fault plan for the [`Net] transport (drop /
          duplicate / reorder / delay / flap below the perfect link);
          must be [None] under [`Sim] *)
  budget : budget;
      (** per-case watchdog budgets the runner enforces (see {!budget});
          defaults to {!no_budget} *)
}

val make :
  ?name:string ->
  ?seed:int64 ->
  ?policy:Engine.delay_policy ->
  ?sync_network:bool ->
  ?corruptions:(int * Behavior.t) list ->
  ?chaos:Fault_plan.t ->
  ?mutant:Party.mutant ->
  ?mode:Party.mode ->
  ?isolate:bool ->
  ?message_layer:[ `Interned | `Reference | `Batched ] ->
  ?batch_window:int ->
  ?update_kernel:Safe_cache.kernel ->
  ?protocol:[ `Maaa | `Ew ] ->
  ?transport:[ `Sim | `Net ] ->
  ?wire_chaos:Wire_chaos.plan ->
  ?budget:budget ->
  cfg:Config.t ->
  inputs:Vec.t list ->
  unit ->
  t
(** Defaults: worst-case synchronous lockstep policy, no corruptions, no
    chaos plan, real protocol, fail-fast engine, interned message layer.
    @raise Invalid_argument on malformed inputs/corruptions, or when the
    fault plan fails {!Fault_plan.validate} (out-of-range or duplicate
    targets, corruption budget exceeded, bad windows). *)

val replicate : seeds:int64 list -> t -> t list
(** One copy per seed (same config, inputs, corruptions and policy), the
    name suffixed ["@<seed>"]. The cheap way to widen a statistical sweep
    over scheduling randomness; feed the list to {!Runner.run_batch}. *)

val honest : t -> int list
(** Parties without a static corruption (adaptive chaos targets are still
    listed — they start the run honest). *)

val chaos_corrupted : t -> int list
(** Targets of the fault plan's adaptive corruptions, sorted. *)

val graded_honest : t -> int list
(** The parties the run's properties are graded against: honest {e and}
    never adaptively corrupted. Equals {!honest} when [chaos] is absent. *)

val corrupt_count : t -> int
(** Static plus adaptive corruptions. *)

val honest_inputs : t -> Vec.t list
(** Inputs of the {!graded_honest} parties. *)
