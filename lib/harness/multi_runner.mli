(** The multi-instance engine: many concurrent ΠAA (or EW) scenario
    instances multiplexed onto ONE discrete-event loop, sharing payload
    intern tables and safe-area memos, with an optional cross-instance
    batching layer — the high-throughput path for serving thousands of
    small agreement requests (the B14 saturation bench and the serve
    front door both run on it).

    {b Determinism contract} (differential-tested by {!check_grid},
    gated by [make multi-check]): a multiplexed run of [k] admissible
    scenarios is byte-identical — results, engine statistics, full
    per-instance traces and monitor summaries — to the [k] sequential
    {!Runner.run}s, except for the [caches] field of {!Runner.result},
    which reports the shared totals.

    Why it holds: the shared engine orders events by (time, global
    sequence number) and instances never exchange messages, so each
    instance's events pop in the same relative order as in a dedicated
    engine. Delays are not drawn from the shared engine's policy:
    each instance carries its own {!Rng} (seeded from its scenario) and
    its own delay policy, and the mux draws delays in exactly the
    per-destination order [Engine.broadcast] would before enqueueing
    through [Engine.send_at].

    Two slot layouts:

    - {e Ranges} (the default, and the fast path): instance [j] owns a
      contiguous block of engine slots. Messages travel untouched — no
      instance tag, no per-delivery rewrite — so the steady-state hot
      path allocates nothing beyond what a dedicated engine would.
    - {e Overlay} (selected by [~batching]): all instances share slots
      [[0, n_max)]; the mux stamps the instance id into each message on
      send and strips it on delivery, and timer tags are multiplexed as
      [(instance lsl 7) lor tag]. Sharing slots is what lets the
      cross-instance batcher merge co-resident packets addressed to one
      receiver into a single wire event.

    Cache sharing: one {!Safe_cache} per (D, ts, ta) class serves every
    co-resident instance of that class, and one {!Intern} table per
    engine slot is shared by the honest ΠAA parties on it — a later
    instance's safe-area lookups land on earlier instances' entries and
    bypass the LP kernel entirely (the warm-workspace story). *)

(** Shared-cache effectiveness totals for a batch of results, with the
    per-class replication of {!Runner.result}[.caches] deduplicated. *)
type group_stats = {
  instances : int;
  shared_safe_caches : int;  (** distinct (D, ts, ta) cache classes *)
  safe_hits : int;
  safe_misses : int;
  intern_hits : int;
  intern_misses : int;
}

val muxable : Scenario.t -> bool
(** [muxable s] is whether [s] can join a multiplexed group: [`Sim]
    transport, no wire/engine chaos, no isolation, no [max_events]
    budget (a [wall_seconds] budget is fine — it grades liveness, not
    event order), batch window 1, and only [Silent] /
    [Honest_with_input] corruptions. {!run_many} runs non-muxable
    scenarios on dedicated engines instead. *)

val run_group :
  ?monitor:bool ->
  ?batching:bool ->
  ?tracer:(int -> Message.t Engine.trace_event -> unit) ->
  ?on_engine:(Message.t Engine.t -> unit) ->
  Scenario.t list ->
  Runner.result list
(** [run_group scenarios] runs every scenario to termination on one
    shared engine and returns results in input order. Raises
    [Invalid_argument] if any scenario is not {!muxable}.

    [~batching:true] selects the overlay layout and merges co-resident
    per-tick vote packets to each receiver into combined wire packets;
    it requires every scenario to use the [`Batched] message layer (and
    is only byte-faithful when all instances share one uniform-delay
    policy, as the differential grid's batching arm pins down).
    [?tracer j] observes instance [j]'s engine trace events.
    [?on_engine] receives the shared engine right after creation (before
    any instance attaches) — the seam the choice-point-hook tests use to
    install a default {!Engine.set_chooser} on the mux engine. *)

val run_many :
  ?monitor:bool ->
  ?group_size:int ->
  ?domains:int ->
  ?pool:Pool.t ->
  Scenario.t list ->
  Runner.result list
(** [run_many scenarios] is the sharded front end: muxable scenarios
    are packed into groups of at most [group_size] (default 64, the
    cache-locality sweet spot measured by B14), non-muxable ones fall
    back to dedicated {!Runner.run}s, and the resulting jobs are spread
    across worker domains — over [?pool] if given (the pool survives
    the call; the serve daemon reuses one across connections), else
    over [Pool.Supervised] when [~domains] > 1 (a crashed worker's
    group is re-run sequentially un-multiplexed). Results come back in
    input order regardless of sharding. *)

val group_stats : Runner.result list -> group_stats
(** Aggregate shared-cache counters across a batch of results,
    deduplicating the per-class totals that {!run_group} replicates
    into every member of a cache class. *)

val check_group :
  what:string -> ?batching:bool -> Scenario.t list -> string list
(** [check_group ~what scenarios] runs the group sequentially and
    multiplexed (both fully monitored and traced) and returns one
    human-readable line per byte-level divergence — results, monitor
    summaries, trace lengths, first diverging trace event. [[]] means
    the determinism contract holds for this group. *)

val check_grid : unit -> string list
(** The full differential grid: k ∈ {1,4,16} × D ∈ {1,2} ×
    {sync, async} × {silent, poison}, plus an EW group and a
    cross-instance batching group. Returns all mismatch descriptions
    ([[]] = clean); both [test/test_multi.ml] and the [make multi-check]
    gate assert emptiness. *)
