(** Randomized chaos soak: thousands of seeded (scenario × fault-plan)
    cases fanned across the {!Pool} domains, each watched by the online
    {!Monitor}, with deterministic counterexample shrinking on any
    violation.

    Everything is a pure function of {!config}: the case grid is generated
    up front from one RNG stream, results are joined back in submission
    order and shrinking re-runs cases sequentially after the join — so the
    produced report (and its JSON rendering) is byte-identical for any
    [domains] count. *)

type config = {
  cases : int;  (** number of (scenario × fault-plan) cases *)
  seed : int64;  (** master seed; every case derives from it *)
  domains : int;  (** worker domains for the sweep *)
  mutant : Party.mutant option;
      (** run a deliberately broken protocol variant instead of the real
          one — the monitor must then flag violations *)
  max_shrink : int;  (** shrinker oracle budget per violating case *)
}

val default : config
(** 500 cases, seed 7, 1 domain, real protocol, 200 shrink tries. *)

val mutant_of_string : string -> (Party.mutant option, string) result
(** ["none"], ["non-contracting"], ["premature-output"]. *)

val mutant_to_string : Party.mutant option -> string

type violating_case = {
  vc_name : string;
  vc_seed : int64;  (** the case's scenario seed *)
  vc_sync : bool;
  vc_invariants : string list;  (** violated invariant names *)
  vc_violations : Monitor.violation list;
  vc_plan : Fault_plan.t;  (** the sampled plan *)
  vc_shrunk : Fault_shrink.outcome;  (** minimal reproducing plan *)
}

type outcome = {
  total : int;
  sync_cases : int;
  async_cases : int;
  checks : int;  (** monitor invariant evaluations across all cases *)
  counts : (string * int) list;  (** per-invariant violation totals *)
  violations_total : int;
  missing_outputs : int;  (** graded-honest parties that never output *)
  party_failures : int;  (** handler exceptions isolated by the engine *)
  worst_diameter : float;
  worst_diameter_eps : float;
  worst_diameter_case : string;
  violating : violating_case list;
}

val build_scenarios : config -> Scenario.t list
(** The seeded case grid: alternating sync/async network modes over several
    feasible configs at the paper's resilience bounds, random workloads,
    random static corruptions and a {!Fault_gen}-sampled chaos plan, all
    within the mode's [ts]/[ta] budget. Scenarios run [isolate]d. *)

val execute : config -> outcome
(** Build, sweep ([Runner.run_batch ~monitor:true]), aggregate, and shrink
    each violating case to a minimal reproducing plan. *)

val to_json : config -> outcome -> string
(** The [SOAK.json] document (schema ["maaa-soak/1"]; field list documented
    in the Makefile's soak help). Deterministic: contains no wall-clock
    values and no [domains]-dependent data. *)

val pp : Format.formatter -> outcome -> unit
