(** Randomized chaos soak: thousands of seeded (scenario × fault-plan)
    cases fanned across supervised worker domains, each watched by the
    online {!Monitor} and by a per-case watchdog (event budget + wall
    deadline), with deterministic counterexample shrinking on any
    violation and quarantine (plus shrunk repro) for any case the
    watchdog had to abort or whose worker domain crashed.

    Everything in the report is a pure function of {!config}: the case
    grid is generated up front from one RNG stream, per-case records are
    aggregated in case-index order, and the journal replays records
    byte-exactly — so the produced report (and its JSON rendering) is
    byte-identical for any [domains] count {e and} for an
    interrupted-and-resumed sweep vs an uninterrupted one. *)

type config = {
  cases : int;  (** number of (scenario × fault-plan) cases *)
  seed : int64;  (** master seed; every case derives from it *)
  domains : int;  (** worker domains for the sweep *)
  mutant : Party.mutant option;
      (** run a deliberately broken protocol variant instead of the real
          one — the monitor must then flag violations *)
  max_shrink : int;  (** shrinker oracle budget per abnormal case *)
  case_events : int;
      (** per-case engine event budget — the deterministic watchdog *)
  case_wall : float option;
      (** per-case wall-clock deadline in seconds ([None] = no deadline) —
          the non-reproducible hang safety net *)
  retries : int;
      (** requeues allowed per case after a worker-domain crash before the
          case is quarantined *)
  stuck : int option;
      (** test/CI hook: replace case [i]'s faults with an unbounded
          spammer so the case livelocks and must be caught by the
          watchdog *)
  message_layer : [ `Interned | `Reference | `Batched ];
      (** rBC implementation + egress path every case's honest parties
          use (see {!Scenario.t}); [`Interned] is the default grid *)
  update_kernel : Safe_cache.kernel;
      (** iteration update rule every case's honest parties use (see
          {!Scenario.t}); [`Safe_area] is the default grid, [`Centroid]
          re-soaks the same case grid under the centroid-style rule *)
  protocol : [ `Maaa | `Ew ];
      (** [`Ew] soaks the quadratic-communication protocol instead of
          ΠAA: the static corruption budget is capped at the case
          config's [ta] (EW's resilience bound regardless of synchrony)
          and chaos plans are dropped — static-corruption grading is the
          property under test *)
  transport : [ `Sim | `Net ];
      (** message backend every case runs on: [`Sim] (default) keeps
          messages inside the discrete-event engine; [`Net] carries every
          one over the loopback TCP perfect-link runtime ({!Netrun}).
          Because the net backend is exact w.r.t. the engine schedule,
          the graded results are identical — the net sweep exercises the
          wire stack under the same case grid *)
}

val default : config
(** 500 cases, seed 7, 1 domain, real protocol, 200 shrink tries, 10M
    events + 300 s per case, 1 retry, no stuck case. *)

val mutant_of_string : string -> (Party.mutant option, string) result
(** ["none"], ["non-contracting"], ["premature-output"]. *)

val mutant_to_string : Party.mutant option -> string

val layer_of_string :
  string -> ([ `Interned | `Reference | `Batched ], string) result
(** ["interned"], ["reference"], ["batched"]. *)

val layer_to_string : [ `Interned | `Reference | `Batched ] -> string

val kernel_of_string : string -> (Safe_cache.kernel, string) result
(** ["safe-area"], ["centroid"]. *)

val kernel_to_string : Safe_cache.kernel -> string

val protocol_of_string : string -> ([ `Maaa | `Ew ], string) result
(** ["maaa"], ["ew"]. *)

val protocol_to_string : [ `Maaa | `Ew ] -> string

val transport_of_string : string -> ([ `Sim | `Net ], string) result
(** ["sim"], ["net"]. *)

val transport_to_string : [ `Sim | `Net ] -> string

(** How one case ended, as plain data (strings/ints/floats only, so a
    record round-trips through the journal byte-exactly). *)
type violating_detail = {
  vd_invariants : string list;  (** violated invariant names *)
  vd_total : int;
  vd_first : string list;  (** up to 3 rendered violations *)
  vd_shrunk : string list;  (** minimal reproducing plan, rendered *)
  vd_tries : int;
  vd_minimal : bool;
}

type quarantine_detail = {
  qd_reason : string;
      (** ["budget-exhausted(N events)"], ["timed-out(N events)"] or
          ["crashed: <exn> (attempts=K)"] *)
  qd_shrunk : string list;
      (** minimal plan still preventing completion (unshrunk plan for
          crashes — re-running a crasher under the supervisor is unsafe) *)
  qd_tries : int;
  qd_minimal : bool;
}

type case_status =
  | Clean
  | Violating of violating_detail
  | Quarantined of quarantine_detail

type case_record = {
  cr_index : int;  (** position in the case grid *)
  cr_name : string;
  cr_seed : int64;
  cr_sync : bool;
  cr_checks : int;
  cr_counts : int list;  (** aligned with [Monitor.all_invariants] *)
  cr_missing : int;
  cr_pfail : int;
  cr_diameter : float;
  cr_eps : float;
  cr_plan : string list;  (** the sampled chaos plan, rendered *)
  cr_status : case_status;
}

type violating_case = {
  vc_name : string;
  vc_seed : int64;  (** the case's scenario seed *)
  vc_sync : bool;
  vc_invariants : string list;
  vc_violations : int;
  vc_first : string list;
  vc_plan : string list;
  vc_shrunk_plan : string list;
  vc_shrink_tries : int;
  vc_shrink_minimal : bool;
}

type quarantined_case = {
  qc_name : string;
  qc_seed : int64;
  qc_sync : bool;
  qc_reason : string;
  qc_plan : string list;
  qc_shrunk_plan : string list;
  qc_shrink_tries : int;
  qc_shrink_minimal : bool;
}

type outcome = {
  total : int;
  sync_cases : int;
  async_cases : int;
  checks : int;  (** monitor invariant evaluations across graded cases *)
  counts : (string * int) list;  (** per-invariant violation totals *)
  violations_total : int;
  missing_outputs : int;  (** graded-honest parties that never output *)
  party_failures : int;  (** handler exceptions isolated by the engine *)
  worst_diameter : float;
  worst_diameter_eps : float;
  worst_diameter_case : string;
  violating : violating_case list;
  quarantined : quarantined_case list;
      (** watchdogged or crash-killed cases: excluded from every aggregate
          above (a truncated run's monitor tables are not trustworthy),
          reported here with a shrunk repro instead *)
}

val build_scenarios : config -> Scenario.t list
(** The seeded case grid: alternating sync/async network modes over several
    feasible configs at the paper's resilience bounds, random workloads,
    random static corruptions and a {!Fault_gen}-sampled chaos plan, all
    within the mode's [ts]/[ta] budget. Scenarios run [isolate]d and carry
    the per-case {!Scenario.budget} from [case_events]/[case_wall]. The
    [stuck] hook (if set) swaps that one case's faults for an unbounded
    spammer {e after} all RNG draws, so the rest of the grid is
    unchanged. *)

val journal_header : config -> string
(** First line of a journal for [config] (schema ["maaa-soak-journal/1"]):
    binds the journal to the sweep parameters that determine case
    identity — everything except [domains], which is free to change
    between interrupt and resume. *)

val render_case : case_record -> string
(** One journal line: TAB-separated, percent-encoded strings, hex floats,
    trailing ["."] sentinel (so a SIGKILL-truncated line is detectably
    incomplete). *)

val parse_case : string -> case_record
(** Inverse of {!render_case}. @raise Bad_line (private) on malformed
    input — callers use {!load_journal}, which skips bad lines. *)

val load_journal :
  header:string -> string -> (case_record list, string) result
(** Reads a journal written for [header]'s configuration. [Error] when the
    file is missing, empty, or was written by a different configuration;
    malformed (e.g. kill-truncated) case lines are silently dropped — those
    cases simply re-run. *)

val execute : ?journal:string -> ?resume:bool -> config -> outcome
(** Build the grid, run every case not already recorded, aggregate.

    Each case runs inside a {!Pool.Supervised} worker under its watchdog;
    a case the watchdog stops is quarantined with a shrunk repro (oracle:
    the sub-plan still prevents completion), a case whose worker crashes
    is requeued up to [retries] times and then quarantined unshrunk.

    With [~journal:path], completed case records are appended (and
    flushed) to [path] as they finish; with [~resume:true] the journal is
    first replayed and recorded cases are skipped, so an interrupted sweep
    continues where it left off and produces the same {!outcome}.
    @raise Invalid_argument on [cases <= 0], [domains <= 0],
    [resume] without [journal], or a missing/mismatched resume journal. *)

val to_json : config -> outcome -> string
(** The [SOAK.json] document (schema ["maaa-soak/2"]; field list documented
    in the Makefile's soak help). Deterministic: contains no wall-clock
    values and no [domains]-dependent data, and is byte-identical between
    fresh and resumed sweeps. *)

val pp : Format.formatter -> outcome -> unit
