(** The agreement front door: a line-oriented TCP service that accepts
    batches of client agreement requests and multiplexes them over the
    {!Pool} worker domains via {!Runner.run_batch}.

    Protocol (one request per line, LF-terminated ASCII):

    {v agree v=1 d=2 eps=0.05 delta=4 ts=1 ta=0 transport=net seed=7 inputs=0,0;1,0;0,1;1,1 v}

    [v=1] is the protocol version and mandatory; [transport] (sim|net,
    default sim) and [seed] (default 1) are optional; [n] is the number
    of [;]-separated input vectors. A connection sends any number of
    request lines and half-closes (or sends an empty line); the server
    runs the whole batch on the domain pool and answers with exactly one
    line per request, in order:

    {v ok diameter=<float> rounds=<float> outputs=<x,y;...> v}

    or [err <reason>] for a malformed or infeasible request (other
    requests on the same connection are unaffected). *)

type request = {
  d : int;
  eps : float;
  delta : int;
  ts : int;
  ta : int;
  transport : [ `Sim | `Net ];
  seed : int64;
  inputs : Vec.t list;
}

val parse_request : string -> (request, string) result
(** Parses one request line. [Error] strings are single-line,
    human-readable, and name the offending field. *)

val scenario_of_request : request -> (Scenario.t, string) result
(** Validates feasibility ({!Config.make}) and builds the synchronous
    lockstep scenario the service runs. *)

val handle_batch : ?domains:int -> ?pool:Pool.t -> string list -> string list
(** Pure core of the service: one response line per request line, in
    order. Well-formed requests flow through the multiplexed engine
    ({!Multi_runner.run_many}): admissible sim requests share one event
    loop and its caches per group, [`Net] requests fall back to dedicated
    runs — responses are byte-identical either way. Malformed requests
    answer [err ...] without consuming a pool slot. When [pool] is given
    it is used as-is (the socket loop hoists one pool across
    connections); otherwise [domains] governs per-batch sharding. *)

val throughput_smoke : ?domains:int -> int -> float
(** Runs [n] canonical small agreement requests (n=4, D=1) through
    {!handle_batch} and returns the measured requests/sec — the serve
    validation smoke. Raises [Failure] if any request errors. *)

val serve :
  ?host:string ->
  ?domains:int ->
  ?max_conns:int ->
  ?announce:(int -> unit) ->
  port:int ->
  unit ->
  unit
(** Binds [host] (default 127.0.0.1) on [port] ([0] = ephemeral),
    reports the bound port through [announce] (default: prints
    ["listening <port>"] on stdout, flushed — the handshake scripts wait
    for), then accepts connections sequentially, [handle_batch]-ing each.
    Stops after [max_conns] connections (default: serve forever). *)
