(* Line-oriented agreement front door; protocol in serve.mli. The
   request parser and the batch core are pure so the CLI validation
   loop and the e2e test drive them without sockets. *)

type request = {
  d : int;
  eps : float;
  delta : int;
  ts : int;
  ta : int;
  transport : [ `Sim | `Net ];
  seed : int64;
  inputs : Vec.t list;
}

(* -- parsing ------------------------------------------------------------ *)

let split_on_char_nonempty c s =
  List.filter (fun t -> t <> "") (String.split_on_char c s)

let parse_vec ~d s =
  let parts = String.split_on_char ',' s in
  if List.length parts <> d then
    Error (Printf.sprintf "input %S has %d coordinates (d=%d)" s
             (List.length parts) d)
  else
    try Ok (Vec.of_list (List.map float_of_string parts))
    with _ -> Error (Printf.sprintf "input %S: bad float" s)

let parse_inputs ~d s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match parse_vec ~d p with
        | Ok v -> go (v :: acc) rest
        | Error e -> Error e)
  in
  match split_on_char_nonempty ';' s with
  | [] -> Error "inputs= is empty"
  | parts -> go [] parts

let parse_request line =
  let line =
    (* tolerate CRLF clients *)
    if String.length line > 0 && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  match split_on_char_nonempty ' ' line with
  | [] -> Error "empty request"
  | verb :: fields when verb = "agree" -> (
      let kv = Hashtbl.create 8 in
      let bad = ref None in
      List.iter
        (fun f ->
          match String.index_opt f '=' with
          | Some i ->
              Hashtbl.replace kv
                (String.sub f 0 i)
                (String.sub f (i + 1) (String.length f - i - 1))
          | None -> if !bad = None then bad := Some f)
        fields;
      match !bad with
      | Some f -> Error (Printf.sprintf "malformed field %S (want key=value)" f)
      | None -> (
          let get k = Hashtbl.find_opt kv k in
          let req k = function
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "missing required field %s=" k)
          in
          let int_field k v =
            match int_of_string_opt v with
            | Some n -> Ok n
            | None -> Error (Printf.sprintf "%s expects an integer (got %S)" k v)
          in
          let float_field k v =
            match float_of_string_opt v with
            | Some f -> Ok f
            | None -> Error (Printf.sprintf "%s expects a float (got %S)" k v)
          in
          let ( let* ) = Result.bind in
          let* v = req "v" (get "v") in
          let* () =
            if v = "1" then Ok ()
            else Error (Printf.sprintf "unsupported protocol version %S" v)
          in
          let* d = Result.bind (req "d" (get "d")) (int_field "d") in
          let* eps = Result.bind (req "eps" (get "eps")) (float_field "eps") in
          let* delta =
            Result.bind (req "delta" (get "delta")) (int_field "delta")
          in
          let* ts = Result.bind (req "ts" (get "ts")) (int_field "ts") in
          let* ta = Result.bind (req "ta" (get "ta")) (int_field "ta") in
          let* transport =
            match get "transport" with
            | None -> Ok `Sim
            | Some "sim" -> Ok `Sim
            | Some "net" -> Ok `Net
            | Some t ->
                Error (Printf.sprintf "unknown transport %S (expected sim|net)" t)
          in
          let* seed =
            match get "seed" with
            | None -> Ok 1L
            | Some s -> (
                match Int64.of_string_opt s with
                | Some s -> Ok s
                | None ->
                    Error (Printf.sprintf "seed expects a 64-bit integer (got %S)" s))
          in
          let* raw = req "inputs" (get "inputs") in
          let* () =
            if d >= 1 then Ok ()
            else Error (Printf.sprintf "d must be >= 1 (got %d)" d)
          in
          let* inputs = parse_inputs ~d raw in
          Ok { d; eps; delta; ts; ta; transport; seed; inputs }))
  | verb :: _ -> Error (Printf.sprintf "unknown verb %S (expected agree)" verb)

let scenario_of_request r =
  let n = List.length r.inputs in
  match
    Config.make ~n ~ts:r.ts ~ta:r.ta ~d:r.d ~eps:r.eps ~delta:r.delta
  with
  | Error e -> Error e
  | Ok cfg -> (
      try
        Ok
          (Scenario.make
             ~name:(Printf.sprintf "serve-n%d-d%d" n r.d)
             ~seed:r.seed
             ~policy:(Network.lockstep ~delta:r.delta)
             ~transport:r.transport
             ~budget:{ Scenario.max_events = None; wall_seconds = Some 120. }
             ~cfg ~inputs:r.inputs ())
      with Invalid_argument e -> Error e)

(* -- the batch core ----------------------------------------------------- *)

let render_result (res : Runner.result) =
  if not res.Runner.live then "err liveness failure (no honest output)"
  else
    let outputs =
      res.Runner.outputs
      |> List.map (fun (_, v) ->
             Vec.to_list v
             |> List.map (Printf.sprintf "%.17g")
             |> String.concat ",")
      |> String.concat ";"
    in
    Printf.sprintf "ok diameter=%.17g rounds=%.17g outputs=%s"
      res.Runner.diameter res.Runner.completion_rounds outputs

let handle_batch ?(domains = 1) ?pool lines =
  let parsed =
    List.map
      (fun line ->
        match parse_request line with
        | Error e -> Error e
        | Ok req -> scenario_of_request req)
      lines
  in
  let scens = List.filter_map Result.to_option parsed in
  (* the whole batch flows through the multiplexed engine: admissible
     sim requests share one event loop (and its caches) per group,
     non-muxable ones (the `Net transport) fall back to dedicated runs;
     either way results are byte-identical to per-request engines *)
  let results = ref (Multi_runner.run_many ~domains ?pool scens) in
  List.map
    (fun p ->
      match p with
      | Error e -> "err " ^ e
      | Ok _ -> (
          match !results with
          | res :: rest ->
              results := rest;
              render_result res
          | [] -> assert false))
    parsed

let throughput_smoke ?(domains = 1) n =
  let lines =
    List.init n (fun i ->
        Printf.sprintf
          "agree v=1 d=1 eps=0.25 delta=1 ts=1 ta=0 seed=%d \
           inputs=0.4;0.45;0.5;0.55"
          (i + 1))
  in
  let t0 = Unix.gettimeofday () in
  let resps = handle_batch ~domains lines in
  let dt = Unix.gettimeofday () -. t0 in
  List.iter
    (fun r ->
      if String.length r < 2 || String.sub r 0 2 <> "ok" then
        failwith ("throughput_smoke: request failed: " ^ r))
    resps;
  float_of_int n /. dt

(* -- the socket loop ---------------------------------------------------- *)

let serve ?(host = "127.0.0.1") ?(domains = 1) ?max_conns ?announce ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 16;
  let actual =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  (match announce with
  | Some f -> f actual
  | None -> Printf.printf "listening %d\n%!" actual);
  let conns = ref 0 in
  let continue () =
    match max_conns with None -> true | Some m -> !conns < m
  in
  (* the worker pool is created once and survives across connections —
     per-request engine/pool construction was the serve-throughput wall *)
  let pool = if domains > 1 then Some (Pool.create ~domains ()) else None in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with _ -> ());
      Option.iter Pool.shutdown pool)
  @@ fun () ->
  while continue () do
    let fd, _ = Unix.accept sock in
    incr conns;
    (* One bad connection must not take the service down: parse errors
       answer in-band, everything else drops only this connection. *)
    (try
       let ic = Unix.in_channel_of_descr fd in
       let oc = Unix.out_channel_of_descr fd in
       let rec read acc =
         match input_line ic with
         | "" | "\r" -> List.rev acc
         | line -> read (line :: acc)
         | exception End_of_file -> List.rev acc
       in
       let lines = read [] in
       let resps = handle_batch ~domains ?pool lines in
       List.iter
         (fun r ->
           output_string oc r;
           output_char oc '\n')
         resps;
       flush oc
     with _ -> ());
    try Unix.close fd with _ -> ()
  done
