type termination = Completed | Timed_out | Budget_exhausted

let termination_to_string = function
  | Completed -> "completed"
  | Timed_out -> "timed-out"
  | Budget_exhausted -> "budget-exhausted"

(* Shared-cache efficacy, surfaced per run: the safe-area memo the run's
   parties share, plus the payload-interning tables summed over the graded
   parties. Under the multi-instance engine both may be shared with other
   co-resident instances, so a multiplexed run reports the shared totals —
   the number that actually explains its throughput. *)
type cache_stats = {
  safe_hits : int;
  safe_misses : int;
  safe_size : int;
  intern_hits : int;
  intern_misses : int;
  intern_size : int;
}

type result = {
  scenario_name : string;
  termination : termination;
  live : bool;
  valid : bool;
  agreement : bool;
  diameter : float;
  eps : float;
  outputs : (int * Vec.t) list;
  output_iters : (int * int) list;
  output_times : (int * int) list;
  t_estimates : (int * int) list;
  histories : (int * (int * Vec.t) list) list;
  completion_rounds : float;
  stats : Engine.stats;
  honest_inputs : Vec.t list;
  traffic : (string * int * int) list;
  monitor : Monitor.summary option;
  caches : cache_stats;
  transport : [ `Sim | `Net ];
  wire : Netrun.wire_stats option;
      (* [Some] iff the run used the `Net transport *)
}

(* Uniform read-side view over whichever protocol the scenario runs, so
   the metrics below don't care whether a ΠAA [Party.t] or an EW
   [Ew_aa.t] sits behind it. *)
type attached = {
  a_start : Vec.t -> unit;
  a_output : unit -> Vec.t option;
  a_output_iter : unit -> int option;
  a_output_time : unit -> int option;
  a_t_estimate : unit -> int option;
  a_history : unit -> (int * Vec.t) list;
  a_intern : unit -> int * int * int;  (* (hits, misses, size); zeros for EW *)
}

type hooks = (iter:int -> Vec.t -> unit) * (iter:int -> Vec.t -> unit)

(* Attach the scenario's protocol onto an arbitrary endpoint — the one
   seam both the sequential runner below and the multi-instance runner
   build parties through, so a multiplexed party is configured exactly
   like a dedicated-engine one. *)
let attach_party ~(scenario : Scenario.t) ?hooks ?intern ~safe_cache ~ew_iters
    (ep : Message.t Transport.endpoint) =
  let s = scenario in
  let cfg = s.Scenario.cfg in
  match s.protocol with
  | `Maaa ->
      let callbacks =
        match hooks with
        | Some (on_iteration, on_output) -> { Party.on_iteration; on_output }
        | None -> Party.no_callbacks
      in
      let p =
        Party.attach_endpoint ~callbacks ?mutant:s.mutant ~mode:s.mode
          ~message_layer:s.message_layer ~batch_window:s.batch_window
          ~update_kernel:s.update_kernel ~safe_cache ?intern ~cfg ep
      in
      {
        a_start = Party.start p;
        a_output = (fun () -> Party.output p);
        a_output_iter = (fun () -> Party.output_iteration p);
        a_output_time = (fun () -> Party.output_time p);
        a_t_estimate = (fun () -> Party.iteration_estimate p);
        a_history = (fun () -> Party.value_history p);
        a_intern = (fun () -> Party.intern_stats p);
      }
  | `Ew ->
      let callbacks =
        match hooks with
        | Some (on_iteration, on_output) -> { Ew_aa.on_iteration; on_output }
        | None -> Ew_aa.no_callbacks
      in
      let p =
        Ew_aa.attach_endpoint ~callbacks ~t:cfg.Config.ta
          ~iters:(Lazy.force ew_iters) ep
      in
      {
        a_start = Ew_aa.start p;
        a_output = (fun () -> Ew_aa.output p);
        a_output_iter = (fun () -> Ew_aa.output_iteration p);
        a_output_time = (fun () -> Ew_aa.output_time p);
        a_t_estimate = (fun () -> None);
        a_history = (fun () -> Ew_aa.value_history p);
        a_intern = (fun () -> (0, 0, 0));
      }

(* The grading tail: everything a result reports that is computed from
   the attached parties after the event loop stops. Factored out so the
   multi-instance runner produces results through the identical code. *)
let grade ~(scenario : Scenario.t) ~termination ~stats ~traffic ~monitor
    ~safe_cache ~transport ~wire parties =
  let s = scenario in
  let cfg = s.Scenario.cfg in
  let graded = Scenario.graded_honest s in
  let honest_inputs = Scenario.honest_inputs s in
  (* Adaptive chaos targets run the protocol but are graded as corrupt:
     every reported metric below is over the still-honest parties. *)
  let parties = List.filter (fun (i, _) -> List.mem i graded) parties in
  let outputs =
    List.filter_map
      (fun (i, p) -> Option.map (fun v -> (i, v)) (p.a_output ()))
      parties
  in
  let live = List.length outputs = List.length parties in
  let valid =
    outputs <> []
    && List.for_all
         (fun (_, v) -> Membership.in_hull ~eps:1e-6 honest_inputs v)
         outputs
  in
  let diameter = Vec.diameter (List.map snd outputs) in
  let agreement = live && diameter <= cfg.Config.eps +. 1e-9 in
  let output_times =
    List.filter_map
      (fun (i, p) -> Option.map (fun t -> (i, t)) (p.a_output_time ()))
      parties
  in
  let completion_rounds =
    (* Δ-rounds to the last honest output; 0. (not a fold over nothing)
       when no honest party output at all *)
    match output_times with
    | [] -> 0.
    | times ->
        List.fold_left (fun acc (_, t) -> Float.max acc (float_of_int t)) 0. times
        /. float_of_int cfg.Config.delta
  in
  let caches =
    let ih, im, isz =
      List.fold_left
        (fun (h, m, sz) (_, p) ->
          let h', m', sz' = p.a_intern () in
          (h + h', m + m', sz + sz'))
        (0, 0, 0) parties
    in
    {
      safe_hits = Safe_cache.hits safe_cache;
      safe_misses = Safe_cache.misses safe_cache;
      safe_size = Safe_cache.size safe_cache;
      intern_hits = ih;
      intern_misses = im;
      intern_size = isz;
    }
  in
  {
    scenario_name = s.name;
    termination;
    live;
    valid;
    agreement;
    diameter;
    eps = cfg.Config.eps;
    outputs;
    output_iters =
      List.filter_map
        (fun (i, p) -> Option.map (fun it -> (i, it)) (p.a_output_iter ()))
        parties;
    output_times;
    t_estimates =
      List.filter_map
        (fun (i, p) -> Option.map (fun t -> (i, t)) (p.a_t_estimate ()))
        parties;
    histories = List.map (fun (i, p) -> (i, p.a_history ())) parties;
    completion_rounds;
    stats;
    honest_inputs;
    traffic;
    monitor;
    caches;
    transport;
    wire;
  }

let run ?(monitor = false) ?(fail_fast = false) ?tracer ?on_engine
    (s : Scenario.t) =
  let cfg = s.Scenario.cfg in
  let policy =
    match s.chaos with
    | None -> s.policy
    | Some plan ->
        Fault_plan.compile ~sync:s.sync_network ~delta:cfg.Config.delta
          ~base:s.policy plan
  in
  let engine =
    Engine.create ~seed:s.seed ~size_of:Message.size_of
      ~classes:Traffic.num_klasses ~classify:Traffic.classify_into
      ~n:cfg.Config.n ~policy ()
  in
  if s.isolate then Engine.set_isolation engine `Isolate;
  (* The explorer's seam: hand the freshly created engine to the caller
     (to install a schedule chooser) before any party attaches or any
     event is enqueued. *)
  (match on_engine with Some f -> f engine | None -> ());
  (* The net transport must be below the engine before the first send;
     its own wall budget doubles as the wire-stall watchdog. [Fun.protect]
     guarantees the sockets die with the run, also on exceptions. *)
  let net =
    match s.transport with
    | `Sim -> None
    | `Net ->
        let pump_budget =
          Option.value s.Scenario.budget.Scenario.wall_seconds ~default:30.
        in
        Some
          (Netrun.attach ?chaos:s.wire_chaos ~chaos_seed:s.seed ~pump_budget
             engine)
  in
  Fun.protect ~finally:(fun () -> Option.iter Netrun.close net) @@ fun () ->
  let inputs = Array.of_list s.inputs in
  let honest_ids = Scenario.honest s in
  let graded = Scenario.graded_honest s in
  let honest_inputs = Scenario.honest_inputs s in
  let mon =
    if monitor then Some (Monitor.create ~cfg ~honest:graded ~honest_inputs)
    else None
  in
  (* Traffic accounting rides the engine's send path (see {!Traffic});
     the tracer is needed only when a monitor or an external observer
     (the differential grid) wants the event stream. *)
  (match (mon, tracer) with
  | None, None -> ()
  | Some m, None -> Engine.set_tracer engine (fun ev -> Monitor.on_trace m ev)
  | None, Some f -> Engine.set_tracer engine f
  | Some m, Some f ->
      Engine.set_tracer engine (fun ev ->
          Monitor.on_trace m ev;
          f ev));
  (* Shared safe-area memo: scoped to this run (this engine), so pooled
     sweeps still share nothing across jobs. *)
  let safe_cache = Safe_cache.create () in
  let monitor_hooks i =
    match mon with
    | Some m when List.mem i graded ->
        Some
          ( (fun ~iter v ->
              Monitor.on_iteration m ~party:i ~now:(Engine.now engine) ~iter v),
            fun ~iter v ->
              Monitor.on_output m ~party:i ~now:(Engine.now engine) ~iter v )
    | _ -> None
  in
  (* EW runs at the asynchronous trim level [ta] (its whole point is
     asynchronous resilience) and, like the rBC-based async baseline,
     takes its iteration count from the harness's estimate of the honest
     input spread — the same number our Πinit would arrive at. *)
  let ew_iters =
    lazy
      (Baseline_runner.rounds_for ~eps:cfg.Config.eps ~inputs:honest_inputs)
  in
  let parties =
    List.map
      (fun i ->
        ( i,
          attach_party ~scenario:s ?hooks:(monitor_hooks i) ~safe_cache
            ~ew_iters
            (Engine.endpoint engine ~me:i) ))
      honest_ids
  in
  List.iter
    (fun (i, b) -> Behavior.install engine ~cfg ~me:i ~input:inputs.(i) b)
    s.corruptions;
  (match s.chaos with
  | None -> ()
  | Some plan -> Fault_plan.install engine ~cfg ~inputs plan);
  List.iter (fun (i, p) -> p.a_start inputs.(i)) parties;
  (* The per-case watchdog: the wall deadline is read lazily here (not at
     scenario build time) so pooled cases are charged only for their own
     runtime, and the engine polls it between events — a stuck case
     unwinds into a structured [Timed_out]/[Budget_exhausted] result
     instead of hanging the sweep or throwing across the pool. *)
  let should_stop =
    match s.Scenario.budget.Scenario.wall_seconds with
    | None -> None
    | Some w ->
        let deadline = Unix.gettimeofday () +. w in
        Some (fun () -> Unix.gettimeofday () > deadline)
  in
  Engine.run
    ?max_events:s.Scenario.budget.Scenario.max_events
    ~on_budget:(if fail_fast then `Raise else `Stop)
    ?should_stop engine;
  let termination =
    match Engine.stop_reason engine with
    | `Event_budget -> Budget_exhausted
    | `Cancelled -> Timed_out
    | `Quiescent | `Past_until -> Completed
  in
  grade ~scenario:s ~termination ~stats:(Engine.stats engine)
    ~traffic:(Traffic.to_rows (Traffic.of_engine engine))
    ~monitor:(Option.map Monitor.summary mon)
    ~safe_cache ~transport:s.transport
    ~wire:(Option.map Netrun.stats net)
    parties

(* Parallel sweeps. [run] touches no state outside its own scenario: the
   engine, its Rng, the traffic counters and every LP workspace (inside
   the parties' Hullsets) are created per call, and nothing in lib/ holds
   top-level mutable state. So fanning scenarios out to a domain pool is
   bit-identical to running them in sequence — the pool only changes
   wall-clock interleaving. [run] also never prints; experiment reports
   must be emitted from the ordered result list after the join. *)
let run_batch ?(domains = 1) ?(monitor = false) scenarios =
  let run s = run ~monitor s in
  if domains <= 1 then List.map run scenarios
  else
    match scenarios with
    | [] | [ _ ] -> List.map run scenarios
    | _ ->
        (* One contiguous chunk per domain: a scenario run is micro-seconds
           to milliseconds, so per-scenario dispatch overhead (and the
           cross-domain cache traffic it causes) is what sank the original
           per-item fan-out on wide batches. *)
        Pool.with_pool ~domains (fun pool ->
            Pool.map_chunked pool run scenarios)

(* I_it = the honest values adopted in iteration [it]; only iterations every
   honest party reached are meaningful for Lemma 5.15. *)
let iteration_diameters r =
  match r.histories with
  | [] -> []
  | (_, first) :: _ ->
      let iters = List.map fst first in
      List.filter_map
        (fun it ->
          let values =
            List.filter_map (fun (_, h) -> List.assoc_opt it h) r.histories
          in
          if List.length values = List.length r.histories then
            Some (it, Vec.diameter values)
          else None)
        iters

let contraction_ratios r =
  let diams = iteration_diameters r in
  let rec go = function
    | (it0, d0) :: ((it1, d1) :: _ as rest) when it1 = it0 + 1 ->
        if d0 > 1e-12 then (it1, d1 /. d0) :: go rest else go rest
    | _ :: rest -> go rest
    | [] -> []
  in
  go diams

let pp_summary ppf r =
  Format.fprintf ppf
    "%s: live=%b valid=%b agreement=%b diam=%.3e (eps=%g) rounds=%.1f msgs=%d"
    r.scenario_name r.live r.valid r.agreement r.diameter r.eps
    r.completion_rounds r.stats.Engine.messages_sent;
  Format.fprintf ppf " cache=safe:%d/%d,intern:%d/%d"
    r.caches.safe_hits
    (r.caches.safe_hits + r.caches.safe_misses)
    r.caches.intern_hits
    (r.caches.intern_hits + r.caches.intern_misses);
  (* only non-default backends announce themselves: committed sim
     summaries stay byte-identical *)
  (match (r.transport, r.wire) with
  | `Net, Some w ->
      Format.fprintf ppf " transport=net(frames=%d retx=%d reconn=%d)"
        w.Netrun.frames_sent w.Netrun.retransmits w.Netrun.reconnects
  | `Net, None -> Format.fprintf ppf " transport=net"
  | `Sim, _ -> ());
  (match r.termination with
  | Completed -> ()
  | t ->
      Format.fprintf ppf " WATCHDOG=%s(%d events)"
        (termination_to_string t) r.stats.Engine.events_processed);
  match r.monitor with
  | None -> ()
  | Some m -> (
      match Monitor.total_violations m with
      | 0 -> Format.fprintf ppf " monitor=ok(%d checks)" m.Monitor.checks
      | n -> Format.fprintf ppf " monitor=%d VIOLATIONS" n)
