type termination = Completed | Timed_out | Budget_exhausted

let termination_to_string = function
  | Completed -> "completed"
  | Timed_out -> "timed-out"
  | Budget_exhausted -> "budget-exhausted"

type result = {
  scenario_name : string;
  termination : termination;
  live : bool;
  valid : bool;
  agreement : bool;
  diameter : float;
  eps : float;
  outputs : (int * Vec.t) list;
  output_iters : (int * int) list;
  output_times : (int * int) list;
  t_estimates : (int * int) list;
  histories : (int * (int * Vec.t) list) list;
  completion_rounds : float;
  stats : Engine.stats;
  honest_inputs : Vec.t list;
  traffic : (string * int * int) list;
  monitor : Monitor.summary option;
}

let run ?(monitor = false) ?(fail_fast = false) (s : Scenario.t) =
  let cfg = s.Scenario.cfg in
  let policy =
    match s.chaos with
    | None -> s.policy
    | Some plan ->
        Fault_plan.compile ~sync:s.sync_network ~delta:cfg.Config.delta
          ~base:s.policy plan
  in
  let engine =
    Engine.create ~seed:s.seed ~size_of:Message.size_of ~n:cfg.Config.n
      ~policy ()
  in
  if s.isolate then Engine.set_isolation engine `Isolate;
  let traffic = Traffic.create () in
  let inputs = Array.of_list s.inputs in
  let honest_ids = Scenario.honest s in
  let graded = Scenario.graded_honest s in
  let honest_inputs = Scenario.honest_inputs s in
  let mon =
    if monitor then Some (Monitor.create ~cfg ~honest:graded ~honest_inputs)
    else None
  in
  (match mon with
  | None -> Traffic.attach traffic engine
  | Some m ->
      Engine.set_tracer engine (fun ev ->
          Traffic.observe traffic ev;
          Monitor.on_trace m ev));
  (* Shared safe-area memo: scoped to this run (this engine), so pooled
     sweeps still share nothing across jobs. *)
  let safe_cache = Safe_cache.create () in
  let parties =
    List.map
      (fun i ->
        let callbacks =
          match mon with
          | Some m when List.mem i graded ->
              {
                Party.on_iteration =
                  (fun ~iter v ->
                    Monitor.on_iteration m ~party:i ~now:(Engine.now engine)
                      ~iter v);
                on_output =
                  (fun ~iter v ->
                    Monitor.on_output m ~party:i ~now:(Engine.now engine)
                      ~iter v);
              }
          | _ -> Party.no_callbacks
        in
        ( i,
          Party.attach ~callbacks ?mutant:s.mutant
            ~message_layer:s.message_layer ~safe_cache ~cfg ~me:i engine ))
      honest_ids
  in
  List.iter
    (fun (i, b) -> Behavior.install engine ~cfg ~me:i ~input:inputs.(i) b)
    s.corruptions;
  (match s.chaos with
  | None -> ()
  | Some plan -> Fault_plan.install engine ~cfg ~inputs plan);
  List.iter (fun (i, p) -> Party.start p inputs.(i)) parties;
  (* The per-case watchdog: the wall deadline is read lazily here (not at
     scenario build time) so pooled cases are charged only for their own
     runtime, and the engine polls it between events — a stuck case
     unwinds into a structured [Timed_out]/[Budget_exhausted] result
     instead of hanging the sweep or throwing across the pool. *)
  let should_stop =
    match s.Scenario.budget.Scenario.wall_seconds with
    | None -> None
    | Some w ->
        let deadline = Unix.gettimeofday () +. w in
        Some (fun () -> Unix.gettimeofday () > deadline)
  in
  Engine.run
    ?max_events:s.Scenario.budget.Scenario.max_events
    ~on_budget:(if fail_fast then `Raise else `Stop)
    ?should_stop engine;
  let termination =
    match Engine.stop_reason engine with
    | `Event_budget -> Budget_exhausted
    | `Cancelled -> Timed_out
    | `Quiescent | `Past_until -> Completed
  in
  (* Adaptive chaos targets run the protocol but are graded as corrupt:
     every reported metric below is over the still-honest parties. *)
  let parties = List.filter (fun (i, _) -> List.mem i graded) parties in
  let outputs =
    List.filter_map
      (fun (i, p) -> Option.map (fun v -> (i, v)) (Party.output p))
      parties
  in
  let live = List.length outputs = List.length parties in
  let valid =
    outputs <> []
    && List.for_all
         (fun (_, v) -> Membership.in_hull ~eps:1e-6 honest_inputs v)
         outputs
  in
  let diameter = Vec.diameter (List.map snd outputs) in
  let agreement = live && diameter <= cfg.Config.eps +. 1e-9 in
  let output_times =
    List.filter_map
      (fun (i, p) -> Option.map (fun t -> (i, t)) (Party.output_time p))
      parties
  in
  let completion_rounds =
    (* Δ-rounds to the last honest output; 0. (not a fold over nothing)
       when no honest party output at all *)
    match output_times with
    | [] -> 0.
    | times ->
        List.fold_left (fun acc (_, t) -> Float.max acc (float_of_int t)) 0. times
        /. float_of_int cfg.Config.delta
  in
  {
    scenario_name = s.name;
    termination;
    live;
    valid;
    agreement;
    diameter;
    eps = cfg.Config.eps;
    outputs;
    output_iters =
      List.filter_map
        (fun (i, p) -> Option.map (fun it -> (i, it)) (Party.output_iteration p))
        parties;
    output_times;
    t_estimates =
      List.filter_map
        (fun (i, p) -> Option.map (fun t -> (i, t)) (Party.iteration_estimate p))
        parties;
    histories = List.map (fun (i, p) -> (i, Party.value_history p)) parties;
    completion_rounds;
    stats = Engine.stats engine;
    honest_inputs;
    traffic = Traffic.to_rows traffic;
    monitor = Option.map Monitor.summary mon;
  }

(* Parallel sweeps. [run] touches no state outside its own scenario: the
   engine, its Rng, the traffic counters and every LP workspace (inside
   the parties' Hullsets) are created per call, and nothing in lib/ holds
   top-level mutable state. So fanning scenarios out to a domain pool is
   bit-identical to running them in sequence — the pool only changes
   wall-clock interleaving. [run] also never prints; experiment reports
   must be emitted from the ordered result list after the join. *)
let run_batch ?(domains = 1) ?(monitor = false) scenarios =
  let run s = run ~monitor s in
  if domains <= 1 then List.map run scenarios
  else
    match scenarios with
    | [] | [ _ ] -> List.map run scenarios
    | _ ->
        (* One contiguous chunk per domain: a scenario run is micro-seconds
           to milliseconds, so per-scenario dispatch overhead (and the
           cross-domain cache traffic it causes) is what sank the original
           per-item fan-out on wide batches. *)
        Pool.with_pool ~domains (fun pool ->
            Pool.map_chunked pool run scenarios)

(* I_it = the honest values adopted in iteration [it]; only iterations every
   honest party reached are meaningful for Lemma 5.15. *)
let iteration_diameters r =
  match r.histories with
  | [] -> []
  | (_, first) :: _ ->
      let iters = List.map fst first in
      List.filter_map
        (fun it ->
          let values =
            List.filter_map (fun (_, h) -> List.assoc_opt it h) r.histories
          in
          if List.length values = List.length r.histories then
            Some (it, Vec.diameter values)
          else None)
        iters

let contraction_ratios r =
  let diams = iteration_diameters r in
  let rec go = function
    | (it0, d0) :: ((it1, d1) :: _ as rest) when it1 = it0 + 1 ->
        if d0 > 1e-12 then (it1, d1 /. d0) :: go rest else go rest
    | _ :: rest -> go rest
    | [] -> []
  in
  go diams

let pp_summary ppf r =
  Format.fprintf ppf
    "%s: live=%b valid=%b agreement=%b diam=%.3e (eps=%g) rounds=%.1f msgs=%d"
    r.scenario_name r.live r.valid r.agreement r.diameter r.eps
    r.completion_rounds r.stats.Engine.messages_sent;
  (match r.termination with
  | Completed -> ()
  | t ->
      Format.fprintf ppf " WATCHDOG=%s(%d events)"
        (termination_to_string t) r.stats.Engine.events_processed);
  match r.monitor with
  | None -> ()
  | Some m -> (
      match Monitor.total_violations m with
      | 0 -> Format.fprintf ppf " monitor=ok(%d checks)" m.Monitor.checks
      | n -> Format.fprintf ppf " monitor=%d VIOLATIONS" n)
