type budget = { max_events : int option; wall_seconds : float option }

let no_budget = { max_events = None; wall_seconds = None }

type t = {
  name : string;
  cfg : Config.t;
  seed : int64;
  policy : Engine.delay_policy;
  sync_network : bool;
  inputs : Vec.t list;
  corruptions : (int * Behavior.t) list;
  chaos : Fault_plan.t option;
  mutant : Party.mutant option;
  mode : Party.mode;
  isolate : bool;
  message_layer : [ `Interned | `Reference | `Batched ];
  batch_window : int;
  update_kernel : Safe_cache.kernel;
  protocol : [ `Maaa | `Ew ];
  transport : [ `Sim | `Net ];
  wire_chaos : Wire_chaos.plan option;
  budget : budget;
}

let make ?(name = "scenario") ?(seed = 1L) ?policy ?(sync_network = true)
    ?(corruptions = []) ?chaos ?mutant ?(mode = Party.Estimate)
    ?(isolate = false)
    ?(message_layer = `Interned) ?(batch_window = 1)
    ?(update_kernel = `Safe_area) ?(protocol = `Maaa) ?(transport = `Sim)
    ?wire_chaos ?(budget = no_budget) ~cfg ~inputs () =
  if List.length inputs <> cfg.Config.n then
    invalid_arg "Scenario.make: need one input per party";
  List.iter
    (fun v ->
      if Vec.dim v <> cfg.Config.d then
        invalid_arg "Scenario.make: input dimension mismatch")
    inputs;
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= cfg.Config.n then
        invalid_arg "Scenario.make: corrupted party out of range")
    corruptions;
  let ids = List.map fst corruptions in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Scenario.make: duplicate corruption";
  (match chaos with
  | None -> ()
  | Some plan -> (
      match Fault_plan.validate ~cfg ~sync:sync_network ~existing:ids plan with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Scenario.make: bad fault plan: " ^ msg)));
  if batch_window < 1 then invalid_arg "Scenario.make: batch_window < 1";
  (match (wire_chaos, transport) with
  | Some _, `Sim ->
      invalid_arg "Scenario.make: wire_chaos requires the `Net transport"
  | _ -> ());
  if transport = `Net && cfg.Config.n > 255 then
    invalid_arg "Scenario.make: `Net transport frames party ids in one byte";
  (match budget.max_events with
  | Some e when e <= 0 -> invalid_arg "Scenario.make: budget.max_events <= 0"
  | _ -> ());
  (match budget.wall_seconds with
  | Some w when not (w > 0.) ->
      invalid_arg "Scenario.make: budget.wall_seconds <= 0"
  | _ -> ());
  let policy =
    match policy with
    | Some p -> p
    | None -> Network.lockstep ~delta:cfg.Config.delta
  in
  {
    name;
    cfg;
    seed;
    policy;
    sync_network;
    inputs;
    corruptions;
    chaos;
    mutant;
    mode;
    isolate;
    message_layer;
    batch_window;
    update_kernel;
    protocol;
    transport;
    wire_chaos;
    budget;
  }

let replicate ~seeds t =
  List.map
    (fun seed ->
      { t with seed; name = Printf.sprintf "%s@%Ld" t.name seed })
    seeds

let honest t =
  List.filter
    (fun i -> not (List.mem_assoc i t.corruptions))
    (List.init t.cfg.Config.n Fun.id)

let chaos_corrupted t =
  match t.chaos with None -> [] | Some plan -> Fault_plan.corrupted plan

let graded_honest t =
  let adaptive = chaos_corrupted t in
  List.filter (fun i -> not (List.mem i adaptive)) (honest t)

let corrupt_count t =
  List.length t.corruptions + List.length (chaos_corrupted t)

let honest_inputs t =
  let inputs = Array.of_list t.inputs in
  List.map (fun i -> inputs.(i)) (graded_honest t)
