type rbc_obs = { rbc_deliveries : (int * Message.payload * int) list }

let rbc_id origin = { Message.tag = Message.Init_value; origin; instance = 0 }

let run_rbc ?(seed = 1L) ?impl ~n ~t ~policy ~honest ~sender () =
  let engine = Engine.create ~seed ~n ~policy () in
  let deliveries = ref [] in
  let rbcs = Array.make n None in
  List.iter
    (fun i ->
      let rbc =
        Rbc.create ?impl ~n ~t
          {
            Rbc.send_all = (fun msg -> Engine.broadcast engine ~src:i msg);
            deliver =
              (fun _ payload ->
                deliveries := (i, payload, Engine.now engine) :: !deliveries);
          }
      in
      rbcs.(i) <- Some rbc;
      Engine.set_party engine i (fun ev ->
          match ev with
          | Engine.Deliver { src; msg = Message.Rbc (id, step, payload) } ->
              Rbc.on_message rbc ~from:src id step payload
          | _ -> ()))
    honest;
  (match sender with
  | `Honest (s, payload) -> (
      match rbcs.(s) with
      | Some rbc -> Rbc.broadcast rbc (rbc_id s) payload
      | None ->
          (* a crash-corrupt sender that still initiates *)
          Engine.broadcast engine ~src:s
            (Message.Rbc (rbc_id s, Message.Init, payload)))
  | `Equivocator (s, pa, pb) ->
      for dst = 0 to n - 1 do
        let p = if dst < n / 2 then pa else pb in
        Engine.send engine ~src:s ~dst (Message.Rbc (rbc_id s, Message.Init, p))
      done;
      List.iter
        (fun p ->
          Engine.broadcast engine ~src:s
            (Message.Rbc (rbc_id s, Message.Echo, p)))
        [ pa; pb ]);
  Engine.run engine;
  { rbc_deliveries = !deliveries }

type obc_obs = { obc_outputs : (int * Pairset.t * int) list }

let run_obc ?(seed = 1L) ?(witnessing = true) ?(start_delays = []) ~n ~ts
    ~delta ~policy ~inputs () =
  let engine = Engine.create ~seed ~n ~policy () in
  let outputs = ref [] in
  let parties =
    List.map
      (fun (i, v) ->
        let obc_ref = ref None in
        let rbc =
          Rbc.create ~n ~t:ts
            {
              Rbc.send_all = (fun msg -> Engine.broadcast engine ~src:i msg);
              deliver =
                (fun id payload ->
                  match (id.Message.tag, payload) with
                  | Message.Obc_value 1, Message.Pvec v ->
                      Obc.on_value (Option.get !obc_ref)
                        ~origin:id.Message.origin v
                  | _ -> ());
            }
        in
        let obc =
          Obc.create ~witnessing ~n ~ts ~delta ~iter:1
            {
              Obc.now = (fun () -> Engine.now engine);
              set_timer = (fun ~at -> Engine.set_timer engine ~party:i ~at ~tag:0);
              rbc_broadcast =
                (fun payload ->
                  Rbc.broadcast rbc
                    { Message.tag = Message.Obc_value 1; origin = i; instance = 0 }
                    payload);
              send_all = (fun msg -> Engine.broadcast engine ~src:i msg);
              output =
                (fun m -> outputs := (i, m, Engine.now engine) :: !outputs);
            }
        in
        obc_ref := Some obc;
        let started = ref false in
        let start () =
          if not !started then begin
            started := true;
            Obc.start obc v
          end
        in
        let delay =
          match List.assoc_opt i start_delays with Some d -> d | None -> 0
        in
        Engine.set_party engine i (fun ev ->
            match ev with
            | Engine.Deliver { src; msg = Message.Rbc (id, step, payload) } ->
                Rbc.on_message rbc ~from:src id step payload
            | Engine.Deliver { src; msg = Message.Obc_report { iter = 1; pairs; _ } }
              ->
                Obc.on_report obc ~from:src pairs
            | Engine.Timer 1 -> start ()
            | Engine.Timer _ -> Obc.poke obc
            | Engine.Deliver _ -> ());
        if delay > 0 then Engine.set_timer engine ~party:i ~at:delay ~tag:1;
        (i, delay, start))
      inputs
  in
  List.iter (fun (_, delay, start) -> if delay = 0 then start ()) parties;
  Engine.run engine;
  { obc_outputs = !outputs }

type init_obs = {
  init_results : (int * int * Vec.t * int) list;
  init_estimations : (int * Pairset.t) list;
}

let run_init ?(seed = 1L) ?(double_witnessing = true) ~n ~ts ~ta ~delta ~eps
    ~policy ~inputs () =
  let engine = Engine.create ~seed ~n ~policy () in
  let results = ref [] in
  let inits = ref [] in
  let parties =
    List.map
      (fun (i, v) ->
        let init_ref = ref None in
        let rbc =
          Rbc.create ~n ~t:ts
            {
              Rbc.send_all = (fun msg -> Engine.broadcast engine ~src:i msg);
              deliver =
                (fun id payload ->
                  let init = Option.get !init_ref in
                  match (id.Message.tag, payload) with
                  | Message.Init_value, Message.Pvec v ->
                      Init_round.on_value init ~origin:id.Message.origin v
                  | Message.Init_report, Message.Ppairs pairs ->
                      Init_round.on_report init ~origin:id.Message.origin pairs
                  | _ -> ());
            }
        in
        let init =
          Init_round.create ~double_witnessing ~n ~ts ~ta ~delta ~eps
            {
              Init_round.now = (fun () -> Engine.now engine);
              set_timer = (fun ~at -> Engine.set_timer engine ~party:i ~at ~tag:0);
              rbc_broadcast =
                (fun tag payload ->
                  Rbc.broadcast rbc { Message.tag; origin = i; instance = 0 } payload);
              send_all = (fun msg -> Engine.broadcast engine ~src:i msg);
              output =
                (fun tt v0 ->
                  results := (i, tt, v0, Engine.now engine) :: !results);
            }
        in
        init_ref := Some init;
        inits := (i, init) :: !inits;
        Engine.set_party engine i (fun ev ->
            match ev with
            | Engine.Deliver { src; msg = Message.Rbc (id, step, payload) } ->
                Rbc.on_message rbc ~from:src id step payload
            | Engine.Deliver { src; msg = Message.Witness_set { parties = ws; _ } } ->
                Init_round.on_witness_set init ~from:src ws
            | Engine.Timer _ -> Init_round.poke init
            | Engine.Deliver _ -> ());
        (init, v))
      inputs
  in
  List.iter (fun (init, v) -> Init_round.start init v) parties;
  Engine.run engine;
  {
    init_results = !results;
    init_estimations =
      List.map (fun (i, init) -> (i, Init_round.estimations init)) !inits;
  }
