(* The multi-instance engine: many concurrent ΠAA (or EW) scenario
   instances multiplexed onto ONE discrete-event loop, sharing payload
   intern tables and safe-area memos, with an optional cross-instance
   batching layer — the high-throughput path for serving thousands of
   small agreement requests.

   Determinism contract (differential-tested by {!check_grid}): a
   multiplexed run of k admissible scenarios is byte-identical — results,
   engine statistics, full per-instance traces and monitor summaries — to
   the k sequential [Runner.run]s, except for the [caches] field, which
   reports the shared totals.

   Why it holds: the shared engine orders events by (time, global
   sequence number) and instances never exchange messages, so instance
   j's events pop in the same relative order as in its dedicated engine
   (its pushes happen in the same relative order, by induction over
   handler executions, and the heap is stable across instances). Delays
   and delivery times are not taken from the shared engine's policy at
   all: each instance carries its own [Rng] seeded from its scenario and
   its own delay policy, the mux draws them in exactly the per-dst order
   [Engine.broadcast] would, and enqueues through [Engine.send_at]. Tick
   values, flush points and timer times therefore coincide with the
   dedicated run; extra flush firings at ticks where only other
   instances were active hit empty buffers and are no-ops.

   Two slot layouts share this machinery:

   - {e Ranges} (the default, and the fast path): instance [j] owns the
     contiguous engine-slot block [[base_j, base_j + n_j)]. Messages
     travel untouched — no instance tag, no per-delivery rewrite — and
     deliveries reach the party handler as the engine popped them, so
     the steady-state hot path allocates nothing beyond what a
     dedicated engine would. Timer tags pass through raw.

   - {e Overlay} (selected by [~batching]): all instances share slots
     [[0, n_max)]. An instance's parties are instance-agnostic (they
     build messages with [instance = 0]); the mux stamps the instance
     id into the message ([Message.with_instance]) on send and strips
     it on delivery, so handlers, vote tables and traces see exactly
     the sequential bytes. Timer tags are multiplexed as
     [(instance lsl 7) lor tag] (protocol tags are 0 today, and always
     < 128 by construction). Sharing slots is what lets the
     cross-instance batcher merge co-resident packets to one receiver
     into a single wire event.

   Cache sharing: one {!Safe_cache} per (D, ts, ta) class serves every
   co-resident instance of that class — a hit returns the identical bits
   a miss would recompute, so only the hit/miss counters (and the LP work
   skipped) change; likewise one {!Intern} table per engine slot is
   shared by the honest ΠAA parties that sit on it. This is the warm-
   workspace story: a later instance's safe-area lookups land on the
   earlier instances' entries and bypass the LP kernel entirely. *)

type group_stats = {
  instances : int;
  shared_safe_caches : int;  (** distinct (D, ts, ta) cache classes *)
  safe_hits : int;
  safe_misses : int;
  intern_hits : int;
  intern_misses : int;
}

(* -- admission ---------------------------------------------------------- *)

let muxable (s : Scenario.t) =
  s.Scenario.transport = `Sim && s.wire_chaos = None && s.chaos = None
  && (not s.isolate)
  && s.Scenario.budget.Scenario.max_events = None
  && (s.message_layer <> `Batched || s.batch_window = 1)
  && List.for_all
       (fun (_, b) ->
         match b with
         | Behavior.Silent | Behavior.Honest_with_input _ -> true
         | _ -> false)
       s.corruptions

let check_admissible s =
  if not (muxable s) then
    invalid_arg
      (Printf.sprintf
         "Multi_runner: scenario %S is not admissible (needs Sim transport, \
          no chaos/isolate/max_events, batch_window 1, and only \
          Silent/Honest_with_input corruptions)"
         s.Scenario.name)

(* -- per-instance state ------------------------------------------------- *)

type inst = {
  s : Scenario.t;
  j : int;  (* instance id within the group *)
  n : int;
  base : int;  (* first engine slot ([0] under the overlay layout) *)
  rng : Rng.t;  (* replays the dedicated engine's delay stream *)
  policy : Engine.delay_policy;
  handlers : (Message.t Transport.event -> unit) option array;
  mutable sent : int;
  mutable bytes : int;
  mutable delivered : int;
  mutable events : int;
  mutable final_time : int;
  traffic : Traffic.t;
  monitor : Monitor.t option;
  tracer : (Message.t Engine.trace_event -> unit) option;
  observing : bool;  (* monitor or tracer present: build trace events *)
  safe_cache : Safe_cache.t;  (* shared across the (D, ts, ta) class *)
  mutable parties : (int * Runner.attached) list;  (* honest, slot order *)
}

let observe inst ev =
  (match inst.monitor with Some m -> Monitor.on_trace m ev | None -> ());
  match inst.tracer with Some f -> f ev | None -> ()

(* A packet diverted into the cross-instance batching buffer: the
   instance's own per-tick vote packet, its pre-tagged wire form, and the
   per-dst delivery times its policy drew (the traces already went out at
   divert time, so the emitter below only moves bytes). *)
type xpacket = {
  x_inst : inst;
  x_tagged : Message.t;
  x_deliver : int array;  (* deliver_at per dst, length x_inst.n *)
}

type group = {
  eng : Message.t Engine.t;
  n_max : int;  (* slots under overlay; total slots under ranges *)
  overlay : bool;
  batching : bool;
  mutable flushing : bool;  (* inside a slot's flush hooks right now *)
  flush_hooks : (final:bool -> unit) list ref array;  (* per slot *)
  xbufs : xpacket list ref array;  (* per slot, reverse order *)
}

(* -- the send path ------------------------------------------------------ *)

let batch_entries = function
  | Message.Rbc (id, step, p) -> [ (id, step, p) ]
  | Message.Rbc_batch entries -> entries
  | _ -> assert false

let mux_broadcast g inst ~slot msg =
  let now = Engine.now g.eng in
  let size = Message.size_of msg in
  inst.sent <- inst.sent + inst.n;
  inst.bytes <- inst.bytes + (size * inst.n);
  (* class accounting mirrors the engine's send path: one classification
     per copy sent (the observe hook only reads [msg], so one event
     serves all copies) *)
  let acct =
    Engine.Sent { src = slot; dst = 0; at = now; deliver_at = now; msg }
  in
  for _ = 1 to inst.n do
    Traffic.observe inst.traffic acct
  done;
  let divert =
    g.batching && g.flushing
    && match msg with Message.Rbc _ | Message.Rbc_batch _ -> true | _ -> false
  in
  (* under the range layout the slot block already identifies the
     instance, so the message travels untagged *)
  let tagged = if g.overlay then Message.with_instance inst.j msg else msg in
  if divert then begin
    (* draw the per-dst delays in broadcast order (keeps the instance's
       RNG stream identical to the dedicated run) and emit the Sent
       traces now; the wire packet leaves in the slot's cross emitter *)
    let deliver = Array.make inst.n 0 in
    for dst = 0 to inst.n - 1 do
      let delay = max 1 (inst.policy ~rng:inst.rng ~now ~src:slot ~dst) in
      deliver.(dst) <- now + delay;
      if inst.observing then
        observe inst
          (Engine.Sent
             { src = slot; dst; at = now; deliver_at = now + delay; msg })
    done;
    g.xbufs.(slot) :=
      { x_inst = inst; x_tagged = tagged; x_deliver = deliver }
      :: !(g.xbufs.(slot))
  end
  else
    for dst = 0 to inst.n - 1 do
      let delay = max 1 (inst.policy ~rng:inst.rng ~now ~src:slot ~dst) in
      if inst.observing then
        observe inst
          (Engine.Sent
             { src = slot; dst; at = now; deliver_at = now + delay; msg });
      Engine.send_at g.eng ~src:slot ~dst:(inst.base + dst)
        ~deliver_at:(now + delay) tagged
    done

(* Cross-instance batch emission for one slot: one combined packet per
   receiver carrying every co-resident instance's entries whose party
   count covers that receiver. The per-instance traces and statistics
   already happened at divert time, so equality with the dedicated runs
   needs only the delivery times to agree — which is why this mode
   requires the instances to share one uniform (RNG-free) delay policy. *)
let emit_cross g ~slot =
  match !(g.xbufs.(slot)) with
  | [] -> ()
  | rev ->
      g.xbufs.(slot) := [];
      let packets = List.rev rev in
      for dst = 0 to g.n_max - 1 do
        let contrib = List.filter (fun x -> dst < x.x_inst.n) packets in
        match contrib with
        | [] -> ()
        | [ x ] ->
            Engine.send_at g.eng ~src:slot ~dst
              ~deliver_at:x.x_deliver.(dst) x.x_tagged
        | x :: rest ->
            let deliver_at = x.x_deliver.(dst) in
            List.iter
              (fun y ->
                if y.x_deliver.(dst) <> deliver_at then
                  invalid_arg
                    "Multi_runner: cross-instance batching requires one \
                     uniform delay policy across the group")
              rest;
            let entries =
              List.concat_map (fun y -> batch_entries y.x_tagged) contrib
            in
            Engine.send_at g.eng ~src:slot ~dst ~deliver_at
              (Message.Rbc_batch entries)
      done

(* -- the delivery path -------------------------------------------------- *)

let deliver_inst g inst ~slot ~src plain =
  let at = Engine.now g.eng in
  inst.delivered <- inst.delivered + 1;
  inst.events <- inst.events + 1;
  if at > inst.final_time then inst.final_time <- at;
  if inst.observing then
    observe inst (Engine.Delivered { src; dst = slot; at; msg = plain });
  (* no handler = crashed/Silent party: counted and traced, then dropped,
     exactly like the engine's own run loop *)
  match inst.handlers.(slot) with
  | Some h -> h (Transport.Deliver { src; msg = plain })
  | None -> ()

(* Range-layout delivery: the popped event already carries the
   instance's local [src] and an untouched message, so it goes to the
   party handler exactly as the engine popped it — the counting wrapper
   allocates only when a monitor or tracer is watching. *)
let deliver_direct g inst ~local ev =
  let at = Engine.now g.eng in
  inst.events <- inst.events + 1;
  if at > inst.final_time then inst.final_time <- at;
  (match ev with
  | Transport.Deliver { src; msg } ->
      inst.delivered <- inst.delivered + 1;
      if inst.observing then
        observe inst (Engine.Delivered { src; dst = local; at; msg })
  | Transport.Timer tag ->
      if inst.observing then
        observe inst (Engine.Timer_fired { party = local; at; tag }));
  match inst.handlers.(local) with Some h -> h ev | None -> ()

(* Reshape one instance's segment of a combined packet back to the exact
   message its dedicated run would have received: [Batch] emits a lone
   vote as a plain [Rbc] and several as an [Rbc_batch]. *)
let reshape segment =
  match segment with
  | [ (id, step, p) ] -> Message.Rbc (Message.with_instance_id 0 id, step, p)
  | entries -> Message.with_instance 0 (Message.Rbc_batch entries)

let mixed_instances = function
  | (first, _, _) :: rest ->
      List.exists
        (fun ((id : Message.rbc_id), _, _) ->
          id.instance <> first.Message.instance)
        rest
  | [] -> false

let dispatch g insts ~slot ev =
  match ev with
  | Transport.Deliver { src; msg = Message.Rbc_batch entries }
    when mixed_instances entries ->
      (* one combined cross-instance packet: split into per-instance
         segments (contiguous by construction) and deliver each as its
         own logical packet *)
      let rec go = function
        | [] -> ()
        | ((id : Message.rbc_id), _, _) :: _ as entries ->
            let j = id.instance in
            let rec take acc = function
              | ((e : Message.rbc_id), _, _) as entry :: rest
                when e.instance = j ->
                  take (entry :: acc) rest
              | rest -> (List.rev acc, rest)
            in
            let seg, rest = take [] entries in
            deliver_inst g insts.(j) ~slot ~src (reshape seg);
            go rest
      in
      go entries
  | Transport.Deliver { src; msg } ->
      let j = Message.instance_of msg in
      deliver_inst g insts.(j) ~slot ~src (Message.with_instance 0 msg)
  | Transport.Timer tag' ->
      let j = tag' lsr 7 and tag = tag' land 127 in
      let inst = insts.(j) in
      let at = Engine.now g.eng in
      inst.events <- inst.events + 1;
      if at > inst.final_time then inst.final_time <- at;
      if inst.observing then
        observe inst (Engine.Timer_fired { party = slot; at; tag });
      (match inst.handlers.(slot) with
      | Some h -> h (Transport.Timer tag)
      | None -> ())

(* -- group execution ---------------------------------------------------- *)

let run_group ?(monitor = false) ?(batching = false) ?tracer ?on_engine
    scenarios =
  match scenarios with
  | [] -> []
  | scenarios ->
      List.iter check_admissible scenarios;
      if batching then
        List.iter
          (fun (s : Scenario.t) ->
            if s.message_layer <> `Batched then
              invalid_arg
                "Multi_runner: ~batching requires every scenario to use the \
                 `Batched message layer")
          scenarios;
      let n_max =
        List.fold_left
          (fun acc (s : Scenario.t) -> max acc s.cfg.Config.n)
          0 scenarios
      in
      (* cross-instance batching needs co-resident parties on shared
         slots; everything else runs the allocation-free range layout *)
      let overlay = batching in
      let n_engine =
        if overlay then n_max
        else
          List.fold_left
            (fun acc (s : Scenario.t) -> acc + s.cfg.Config.n)
            0 scenarios
      in
      (* The shared engine is pure machinery: its policy and RNG are never
         consulted (every delivery goes through [send_at]), classification
         is off (per-instance Traffic counters ride the mux send path),
         and its stats are ignored in favour of the per-instance ones. *)
      let eng =
        Engine.create ~n:n_engine
          ~policy:(fun ~rng:_ ~now:_ ~src:_ ~dst:_ -> 1)
          ()
      in
      (match on_engine with Some f -> f eng | None -> ());
      let g =
        {
          eng;
          n_max;
          overlay;
          batching;
          flushing = false;
          flush_hooks = Array.init n_engine (fun _ -> ref []);
          xbufs = Array.init n_engine (fun _ -> ref []);
        }
      in
      (* shared safe-area memo per (D, ts, ta) class; shared intern table
         per engine slot *)
      let caches : (int * int * int, Safe_cache.t) Hashtbl.t =
        Hashtbl.create 8
      in
      let cache_for (cfg : Config.t) =
        let key = (cfg.Config.d, cfg.Config.ts, cfg.Config.ta) in
        match Hashtbl.find_opt caches key with
        | Some c -> c
        | None ->
            let c = Safe_cache.create () in
            Hashtbl.add caches key c;
            c
      in
      let interns = Array.make n_max None in
      let intern_for slot =
        match interns.(slot) with
        | Some i -> i
        | None ->
            let i = Intern.create () in
            interns.(slot) <- Some i;
            i
      in
      let bases =
        let acc = ref 0 in
        List.map
          (fun (s : Scenario.t) ->
            let b = if overlay then 0 else !acc in
            acc := !acc + s.cfg.Config.n;
            b)
          scenarios
      in
      let insts =
        Array.of_list
          (List.mapi
             (fun j ((s : Scenario.t), base) ->
               let cfg = s.cfg in
               let graded = Scenario.graded_honest s in
               let honest_inputs = Scenario.honest_inputs s in
               {
                 s;
                 j;
                 n = cfg.Config.n;
                 base;
                 rng = Rng.create s.seed;
                 policy = s.policy;
                 handlers = Array.make cfg.Config.n None;
                 sent = 0;
                 bytes = 0;
                 delivered = 0;
                 events = 0;
                 final_time = 0;
                 traffic = Traffic.create ();
                 monitor =
                   (if monitor then
                      Some (Monitor.create ~cfg ~honest:graded ~honest_inputs)
                    else None);
                 tracer = Option.map (fun f -> f j) tracer;
                 observing = monitor || tracer <> None;
                 safe_cache = cache_for cfg;
                 parties = [];
               })
             (List.combine scenarios bases))
      in
      (* parties install their own handlers into their instance's table,
         never into the engine: the engine slots carry the mux's counting
         wrappers — the overlay's full dispatcher, or the range layout's
         direct pass-through *)
      if overlay then
        for slot = 0 to n_max - 1 do
          Engine.set_party eng slot (dispatch g insts ~slot)
        done
      else
        Array.iter
          (fun inst ->
            for i = 0 to inst.n - 1 do
              Engine.set_party eng (inst.base + i) (deliver_direct g inst ~local:i)
            done)
          insts;
      let endpoint inst slot : Message.t Transport.endpoint =
        let gslot = inst.base + slot in
        {
          Transport.me = slot;
          n = inst.n;
          now = (fun () -> Engine.now eng);
          send_all = (fun msg -> mux_broadcast g inst ~slot msg);
          set_timer =
            (fun ~at ~tag ->
              let tag = if g.overlay then (inst.j lsl 7) lor tag else tag in
              Engine.set_timer eng ~party:gslot ~at ~tag);
          register_flush =
            (fun hook ->
              let hooks = g.flush_hooks.(gslot) in
              if !hooks = [] then
                Engine.set_flusher eng gslot (fun ~final ->
                    g.flushing <- true;
                    List.iter (fun h -> h ~final) !hooks;
                    g.flushing <- false;
                    if g.batching then emit_cross g ~slot:gslot);
              hooks := !hooks @ [ hook ]);
          set_handler = (fun h -> inst.handlers.(slot) <- Some h);
        }
      in
      (* Build and start each instance exactly in [Runner.run]'s order —
         attach honest parties, install corruptions (an honest-with-input
         adversary starts, and sends, immediately), then start the honest
         parties — one instance completing its setup before the next, so
         every instance's RNG draws and event pushes keep their
         sequential relative order. *)
      Array.iter
        (fun inst ->
          let s = inst.s in
          let cfg = s.Scenario.cfg in
          let inputs = Array.of_list s.inputs in
          let graded = Scenario.graded_honest s in
          let honest_inputs = Scenario.honest_inputs s in
          let hooks i =
            match inst.monitor with
            | Some m when List.mem i graded ->
                Some
                  ( (fun ~iter v ->
                      Monitor.on_iteration m ~party:i ~now:(Engine.now eng)
                        ~iter v),
                    fun ~iter v ->
                      Monitor.on_output m ~party:i ~now:(Engine.now eng) ~iter
                        v )
            | _ -> None
          in
          let ew_iters =
            lazy
              (Baseline_runner.rounds_for ~eps:cfg.Config.eps
                 ~inputs:honest_inputs)
          in
          inst.parties <-
            List.map
              (fun i ->
                let intern =
                  match s.protocol with
                  | `Maaa -> Some (intern_for i)
                  | `Ew -> None
                in
                ( i,
                  Runner.attach_party ~scenario:s ?hooks:(hooks i) ?intern
                    ~safe_cache:inst.safe_cache ~ew_iters (endpoint inst i) ))
              (Scenario.honest s);
          List.iter
            (fun (i, b) ->
              match b with
              | Behavior.Silent -> ()
              | Behavior.Honest_with_input v ->
                  (* mirror [Behavior.install]: a default-configured party
                     with its own fresh caches, started on the poisoned
                     value *)
                  let p = Party.attach_endpoint ~cfg (endpoint inst i) in
                  Party.start p v
              | _ -> assert false (* excluded by admission *))
            s.corruptions;
          List.iter (fun (i, p) -> p.Runner.a_start inputs.(i)) inst.parties)
        insts;
      (* One cooperative deadline for the whole group: the tightest
         instance budget. A fired deadline cannot be attributed to one
         instance, so every result reports [Timed_out] — the same
         quarantine semantics a sequential wall timeout has. *)
      let should_stop =
        let deadlines =
          List.filter_map
            (fun (s : Scenario.t) -> s.Scenario.budget.Scenario.wall_seconds)
            scenarios
        in
        match deadlines with
        | [] -> None
        | ds ->
            let w = List.fold_left Float.min Float.max_float ds in
            let deadline = Unix.gettimeofday () +. w in
            Some (fun () -> Unix.gettimeofday () > deadline)
      in
      let max_events =
        (* the engine default is per-run; scale it by the group size so a
           group never trips a budget none of its instances would have *)
        let k = Array.length insts in
        if k > max_int / 10_000_000 then max_int else k * 10_000_000
      in
      Engine.run ~max_events ~on_budget:`Stop ?should_stop eng;
      let termination =
        match Engine.stop_reason eng with
        | `Event_budget -> Runner.Budget_exhausted
        | `Cancelled -> Runner.Timed_out
        | `Quiescent | `Past_until -> Runner.Completed
      in
      Array.to_list insts
      |> List.map (fun inst ->
             let stats =
               {
                 Engine.messages_sent = inst.sent;
                 bytes_sent = inst.bytes;
                 messages_delivered = inst.delivered;
                 final_time = inst.final_time;
                 events_processed = inst.events;
                 party_failures = 0;
               }
             in
             Runner.grade ~scenario:inst.s ~termination ~stats
               ~traffic:(Traffic.to_rows inst.traffic)
               ~monitor:(Option.map Monitor.summary inst.monitor)
               ~safe_cache:inst.safe_cache ~transport:`Sim ~wire:None
               inst.parties)

(* -- sharded execution -------------------------------------------------- *)

let chunk size xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let run_many ?(monitor = false) ?(group_size = 64) ?domains ?pool scenarios =
  if group_size <= 0 then invalid_arg "Multi_runner.run_many: group_size";
  let indexed = List.mapi (fun i s -> (i, s)) scenarios in
  let mux, direct = List.partition (fun (_, s) -> muxable s) indexed in
  let jobs =
    List.map (fun g -> `Group g) (chunk group_size mux)
    @ List.map (fun d -> `Direct d) direct
  in
  let run_job = function
    | `Group g ->
        List.map2
          (fun (i, _) r -> (i, r))
          g
          (run_group ~monitor (List.map snd g))
    | `Direct (i, s) -> [ (i, Runner.run ~monitor s) ]
  in
  let seq_job = function
    | `Group g -> List.map (fun (i, s) -> (i, Runner.run ~monitor s)) g
    | `Direct (i, s) -> [ (i, Runner.run ~monitor s) ]
  in
  let outs =
    match (pool, jobs) with
    | _, ([] | [ _ ]) -> List.map run_job jobs
    | Some p, _ -> Pool.map p run_job jobs
    | None, _ -> (
        match domains with
        | None | Some 1 -> List.map run_job jobs
        | Some d ->
            (* crash-tolerant sharding: a worker death re-runs only that
               group's scenarios, sequentially and un-multiplexed *)
            List.map2
              (fun job outcome ->
                match outcome with
                | Pool.Supervised.Done r -> r
                | Pool.Supervised.Crashed _ -> seq_job job)
              jobs
              (Pool.Supervised.map ~domains:d run_job jobs))
  in
  List.concat outs
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let group_stats results =
  (* shared-cache totals are replicated into every result of a class, so
     "sum of distinct totals" needs deduplication; results coming out of
     one group share physical cache counters, making (hits, misses, size)
     triples a serviceable dedup key for reporting purposes *)
  let module S = Set.Make (struct
    type t = int * int * int

    let compare = compare
  end) in
  let classes, sh, sm =
    List.fold_left
      (fun (seen, h, m) (r : Runner.result) ->
        let key =
          ( r.Runner.caches.Runner.safe_hits,
            r.caches.safe_misses,
            r.caches.safe_size )
        in
        if S.mem key seen then (seen, h, m)
        else (S.add key seen, h + r.caches.safe_hits, m + r.caches.safe_misses))
      (S.empty, 0, 0) results
  in
  {
    instances = List.length results;
    shared_safe_caches = S.cardinal classes;
    safe_hits = sh;
    safe_misses = sm;
    intern_hits =
      List.fold_left (fun a (r : Runner.result) -> a + r.caches.intern_hits) 0
        results;
    intern_misses =
      List.fold_left
        (fun a (r : Runner.result) -> a + r.caches.intern_misses)
        0 results;
  }

(* -- the differential grid ---------------------------------------------- *)

(* Byte-identity of a multiplexed run against its sequential references:
   k ∈ {1,4,16} × D ∈ {1,2} × {sync, async} × {silent, poison}, plus a
   cross-instance batching group. Returns human-readable mismatch
   descriptions; [] = the determinism contract holds. Used by both
   [test/test_multi.ml] (asserts []) and [bin/multi_check_main.ml] (the
   [make multi-check] gate). *)

let grid_scenario ~name ~cfg ~policy ~sync ~layer ~corrupt ~seed i =
  let n = cfg.Config.n in
  let d = cfg.Config.d in
  let base = 0.13 *. float_of_int (i + 1) in
  let inputs =
    List.init n (fun p ->
        Vec.of_list
          (List.init d (fun c ->
               base
               +. (0.31 *. float_of_int p)
               +. (0.07 *. float_of_int c))))
  in
  let corruptions =
    match corrupt with
    | `None -> []
    | `Silent -> [ (n - 1, Behavior.Silent) ]
    | `Poison ->
        [ (n - 1, Behavior.Honest_with_input (Vec.of_list (List.init d (fun _ -> 9.0)))) ]
  in
  Scenario.make
    ~name:(Printf.sprintf "%s#%d" name i)
    ~seed:(Int64.of_int (seed + (17 * i)))
    ~policy ~sync_network:sync ~corruptions ~message_layer:layer
    ~cfg ~inputs ()

let check_group ~what ?(batching = false) scenarios =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let capture () =
    let traces = Array.make (List.length scenarios) [] in
    let tracer j ev = traces.(j) <- ev :: traces.(j) in
    (traces, tracer)
  in
  let seq_traces, seq_tracer = capture () in
  let seq =
    List.mapi
      (fun j s -> Runner.run ~monitor:true ~tracer:(seq_tracer j) s)
      scenarios
  in
  let mux_traces, mux_tracer = capture () in
  let mux =
    run_group ~monitor:true ~batching ~tracer:(fun j -> mux_tracer j) scenarios
  in
  List.iteri
    (fun j ((a : Runner.result), b) ->
      (* the caches field legitimately differs (shared totals) *)
      let b_masked = { b with Runner.caches = a.Runner.caches } in
      if a <> b_masked then
        fail "%s[%d] %s: result differs (sequential vs multiplexed)" what j
          a.Runner.scenario_name;
      if a.Runner.monitor <> b.Runner.monitor then
        fail "%s[%d] %s: monitor summary differs" what j a.Runner.scenario_name;
      let ta = List.rev seq_traces.(j) and tb = List.rev mux_traces.(j) in
      if List.length ta <> List.length tb then
        fail "%s[%d] %s: trace length %d (sequential) vs %d (multiplexed)"
          what j a.Runner.scenario_name (List.length ta) (List.length tb)
      else
        let rec first_diff k ta tb =
          match (ta, tb) with
          | [], [] -> ()
          | ea :: ta', eb :: tb' ->
              if ea <> eb then
                fail "%s[%d] %s: trace diverges at event %d" what j
                  a.Runner.scenario_name k
              else first_diff (k + 1) ta' tb'
          | _ -> assert false
        in
        first_diff 0 ta tb)
    (List.combine seq mux);
  !failures

let check_grid () =
  let cfg1 = Config.make_exn ~n:4 ~ts:1 ~ta:1 ~d:1 ~eps:0.05 ~delta:4 in
  let cfg2 = Config.make_exn ~n:5 ~ts:1 ~ta:1 ~d:2 ~eps:0.05 ~delta:4 in
  let sync = Network.lockstep ~delta:4 in
  let asyn = Network.async_uniform ~max_delay:9 in
  let failures = ref [] in
  let add fs = failures := !failures @ fs in
  List.iter
    (fun k ->
      List.iter
        (fun (cname, cfg) ->
          List.iter
            (fun (pname, policy, is_sync) ->
              List.iter
                (fun (bname, corrupt) ->
                  let name =
                    Printf.sprintf "grid-k%d-%s-%s-%s" k cname pname bname
                  in
                  let scenarios =
                    List.init k
                      (grid_scenario ~name ~cfg ~policy ~sync:is_sync
                         ~layer:`Interned ~corrupt ~seed:(41 * k))
                  in
                  add (check_group ~what:name scenarios))
                [ ("silent", `Silent); ("poison", `Poison) ])
            [ ("sync", sync, true); ("async", asyn, false) ])
        [ ("d1", cfg1); ("d2", cfg2) ])
    [ 1; 4; 16 ];
  (* EW instances multiplex through the same machinery *)
  let ew =
    List.init 4 (fun i ->
        let s =
          grid_scenario ~name:"grid-ew" ~cfg:cfg1 ~policy:asyn ~sync:false
            ~layer:`Interned ~corrupt:`Silent ~seed:97 i
        in
        { s with Scenario.protocol = `Ew })
  in
  add (check_group ~what:"grid-ew" ew);
  (* cross-instance batching: `Batched instances under one lockstep
     policy; the combined wire packets must split back into the exact
     per-instance packets *)
  let batched =
    List.init 4
      (grid_scenario ~name:"grid-batched" ~cfg:cfg1 ~policy:sync ~sync:true
         ~layer:`Batched ~corrupt:`Silent ~seed:71)
  in
  add (check_group ~what:"grid-batched" ~batching:true batched);
  !failures
