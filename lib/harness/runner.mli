(** Executes a {!Scenario} and grades the run against the paper's three
    properties: Validity (outputs in the honest inputs' convex hull, checked
    by LP), ε-Agreement (output diameter ≤ ε) and Liveness (every honest
    party outputs). *)

type termination =
  | Completed  (** the engine ran to quiescence *)
  | Timed_out
      (** the scenario's [budget.wall_seconds] deadline fired (polled
          between engine events — cooperative, and inherently
          non-reproducible; quarantine, don't aggregate) *)
  | Budget_exhausted
      (** the engine event budget ([budget.max_events], default 10M) was
          hit — the deterministic watchdog for run-away protocols *)

val termination_to_string : termination -> string
(** ["completed"], ["timed-out"], ["budget-exhausted"]. *)

type cache_stats = {
  safe_hits : int;  (** safe-area memo lookups answered from cache *)
  safe_misses : int;  (** lookups that ran the geometry kernel *)
  safe_size : int;  (** distinct memo entries at run end *)
  intern_hits : int;  (** payload-intern lookups resolved to a known id *)
  intern_misses : int;  (** payloads interned fresh *)
  intern_size : int;  (** distinct payloads interned *)
}
(** Shared-cache efficacy. For a dedicated-engine run the safe-area
    numbers are this run's own memo and the intern numbers sum the graded
    parties' tables. Under the multi-instance engine both structures may
    be shared across co-resident instances, so a multiplexed run reports
    the {e shared} totals — the differential tests mask this field. *)

type result = {
  scenario_name : string;
  termination : termination;
      (** how the run ended; everything below is graded over whatever had
          happened by that point when not [Completed] *)
  live : bool;
  valid : bool;
  agreement : bool;
  diameter : float;  (** of the honest outputs *)
  eps : float;
  outputs : (int * Vec.t) list;
  output_iters : (int * int) list;
  output_times : (int * int) list;
  t_estimates : (int * int) list;
  histories : (int * (int * Vec.t) list) list;
  completion_rounds : float;
      (** unit: Δ-rounds — last honest output time in ticks divided by
          [cfg.delta]; [0.] when no honest party output (dead run) *)
  stats : Engine.stats;
  honest_inputs : Vec.t list;
  traffic : (string * int * int) list;
      (** per-primitive (class, messages, bytes), see {!Traffic} *)
  monitor : Monitor.summary option;
      (** the online invariant monitor's verdict (violation counts, worst
          final diameter vs ε, …); [Some] iff the run was started with
          [~monitor:true] *)
  caches : cache_stats;
  transport : [ `Sim | `Net ];
      (** which backend carried the messages (from the scenario) *)
  wire : Netrun.wire_stats option;
      (** physical-layer statistics; [Some] iff [transport] is [`Net].
          Unlike everything above, these depend on kernel scheduling
          (retransmission and reconnect counts) — assert them loosely *)
}

type attached = {
  a_start : Vec.t -> unit;
  a_output : unit -> Vec.t option;
  a_output_iter : unit -> int option;
  a_output_time : unit -> int option;
  a_t_estimate : unit -> int option;
  a_history : unit -> (int * Vec.t) list;
  a_intern : unit -> int * int * int;
      (** (hits, misses, size) of the party's intern table; zeros for EW *)
}
(** Uniform read-side view over whichever protocol an endpoint runs —
    the interface {!grade} consumes, independent of [`Maaa] vs [`Ew]. *)

type hooks = (iter:int -> Vec.t -> unit) * (iter:int -> Vec.t -> unit)
(** (on_iteration, on_output) monitor callbacks. *)

val attach_party :
  scenario:Scenario.t ->
  ?hooks:hooks ->
  ?intern:Intern.t ->
  safe_cache:Safe_cache.t ->
  ew_iters:int Lazy.t ->
  Message.t Transport.endpoint ->
  attached
(** Attaches the scenario's protocol ([`Maaa] → {!Party}, [`Ew] →
    {!Ew_aa}) onto the endpoint with the scenario's full configuration
    (mutant, message layer, batch window, update kernel). The one seam
    both {!run} and {!Multi_runner} build parties through, so a
    multiplexed party is configured exactly like a dedicated-engine one.
    [?intern] (ΠAA only) lets the multi-instance runner share one payload
    table per engine slot across co-resident instances. *)

val grade :
  scenario:Scenario.t ->
  termination:termination ->
  stats:Engine.stats ->
  traffic:(string * int * int) list ->
  monitor:Monitor.summary option ->
  safe_cache:Safe_cache.t ->
  transport:[ `Sim | `Net ] ->
  wire:Netrun.wire_stats option ->
  (int * attached) list ->
  result
(** The grading tail shared by {!run} and {!Multi_runner}: filters the
    attached parties down to {!Scenario.graded_honest}, reads their
    outputs, and computes liveness / validity / agreement / diameter /
    completion metrics plus the cache counters. *)

val run :
  ?monitor:bool ->
  ?fail_fast:bool ->
  ?tracer:(Message.t Engine.trace_event -> unit) ->
  ?on_engine:(Message.t Engine.t -> unit) ->
  Scenario.t ->
  result
(** Runs ΠAA for every honest party and installs the scenario's Byzantine
    behaviours for the rest; a chaos fault plan in the scenario is compiled
    into the delay policy and installed on the engine. With
    [~monitor:true] (default false) an online {!Monitor} watches the run
    and its summary lands in the result. Metrics are graded over the
    parties that stay honest for the whole run (adaptive chaos targets are
    graded as corrupt). Never raises on liveness failures — they are
    reported in the result (lower-bound experiments rely on observing
    them).

    The scenario's {!Scenario.budget} is enforced as a watchdog: event
    budget exhaustion and wall-clock deadline are reported as the result's
    [termination] ([Budget_exhausted] / [Timed_out]) instead of an
    exception escaping [Engine.run]. [~fail_fast:true] restores the old
    raising behaviour on event-budget exhaustion, for tests that pin it.

    [?tracer] observes every engine trace event (chained after the
    monitor's own tracer when both are present) — the hook the
    differential grid uses to capture full send/deliver traces.

    [?on_engine] receives the engine right after creation, before any
    party attaches or any event is enqueued — the seam through which the
    explorer installs an {!Engine.set_chooser} schedule strategy. *)

val run_batch : ?domains:int -> ?monitor:bool -> Scenario.t list -> result list
(** Runs the scenarios on a {!Pool} of [domains] worker domains (default
    [1] = plain sequential [List.map run]) and returns the results in
    submission order. Because every scenario owns its engine, RNG, LP
    workspaces and monitor, the results are {e bit-identical} to the
    sequential run for any [domains] — property-tested in [test_pool.ml]
    and [test_chaos.ml]. *)

val contraction_ratios : result -> (int * float) list
(** For each iteration [it ≥ 1] completed by {e all} honest parties, the
    ratio [δmax(I_it) / δmax(I_{it-1})] (skipping already-collapsed
    predecessors). Lemma 5.15 bounds each by [√(7/8)]. *)

val iteration_diameters : result -> (int * float) list
(** [δmax(I_it)] per fully-completed iteration, iteration 0 being the
    Πinit outputs. *)

val pp_summary : Format.formatter -> result -> unit
