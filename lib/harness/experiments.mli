(** The experiment suite: one entry per paper artefact (figures, theorems,
    quantitative lemma claims), as indexed in DESIGN.md §3. Each experiment
    prints a self-contained report (tables included) to stdout and returns
    [true] when every checked property held. [EXPERIMENTS.md] records the
    reference output. *)

val set_domains : int -> unit
(** Worker-domain count for the independent scenario batches inside the
    experiments (they go through {!Runner.run_batch}). Default [1]
    (sequential). Reports are byte-identical for any value — scenarios are
    built before submission, results are joined back into submission
    order, and all printing happens after the join. *)

val all : (string * string * (unit -> bool)) list
(** [(id, title, run)] for e1 … e17, in order. *)

val find_opt : string -> (unit -> bool) option
(** The runner for the experiment with the given id ([e1] … [e17]), or
    [None] for an unknown id. *)

val run_one : string -> bool
(** Runs the experiment with the given id ([e1] … [e17]).
    @raise Not_found for an unknown id (prefer {!find_opt}). *)

val run_all : unit -> bool
(** Runs every experiment; [true] iff all passed. *)
