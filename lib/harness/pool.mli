(** A fixed-size pool of worker domains for embarrassingly parallel
    scenario sweeps (stdlib [Domain]/[Mutex]/[Condition] only).

    Determinism: the pool adds no randomness of its own. As long as every
    job owns its mutable state (the harness gives each scenario its own
    {!Engine.t}, {!Rng.t} and LP workspaces) and nothing prints from
    inside a job, [map pool f xs] is bit-identical to [List.map f xs] for
    any pool size — only wall-clock interleaving changes. *)

type t

val create : ?domains:int -> unit -> t
(** Spawns [domains] worker domains (default
    [Domain.recommended_domain_count ()], clamped to ≥ 1). *)

val size : t -> int
(** Number of worker domains. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Fans the list out to the pool and blocks until every element is done;
    results come back in submission order. The task count may exceed the
    pool size — excess tasks queue. If jobs raise, every job still runs
    to completion and the exception of the {e lowest-indexed} failing
    element is re-raised (with its backtrace); the pool stays usable. *)

val map_chunked : ?chunk_size:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but enqueues one job per {e contiguous chunk} of
    [chunk_size] items (default ⌈length/size⌉, i.e. one chunk per worker)
    instead of one job per item, so per-item queue/wakeup/counter traffic
    is paid once per chunk. Results keep submission order and per-item
    exceptions are captured exactly as in [map] (lowest-indexed failure
    re-raised after everything finishes) — the output is bit-identical to
    [map]'s, only the dispatch granularity changes.
    @raise Invalid_argument if [chunk_size <= 0]. *)

val submit : t -> (unit -> unit) -> unit
(** Low-level enqueue of one fire-and-forget job.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Lets queued jobs drain, then stops and joins every worker.
    Idempotent. *)

val with_pool : ?domains:int -> (t -> 'b) -> 'b
(** [create], run, then [shutdown] (also on exceptions). *)
