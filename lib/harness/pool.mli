(** A fixed-size pool of worker domains for embarrassingly parallel
    scenario sweeps (stdlib [Domain]/[Mutex]/[Condition] only).

    Determinism: the pool adds no randomness of its own. As long as every
    job owns its mutable state (the harness gives each scenario its own
    {!Engine.t}, {!Rng.t} and LP workspaces) and nothing prints from
    inside a job, [map pool f xs] is bit-identical to [List.map f xs] for
    any pool size — only wall-clock interleaving changes. *)

type t

val create : ?domains:int -> unit -> t
(** Spawns [domains] worker domains (default
    [Domain.recommended_domain_count ()], clamped to ≥ 1). *)

val size : t -> int
(** Number of worker domains. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Fans the list out to the pool and blocks until every element is done;
    results come back in submission order. The task count may exceed the
    pool size — excess tasks queue. If jobs raise, every job still runs
    to completion and the exception of the {e lowest-indexed} failing
    element is re-raised (with its backtrace); the pool stays usable. *)

val map_chunked : ?chunk_size:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but enqueues one job per {e contiguous chunk} of
    [chunk_size] items (default ⌈length/size⌉, i.e. one chunk per worker)
    instead of one job per item, so per-item queue/wakeup/counter traffic
    is paid once per chunk. Results keep submission order and per-item
    exceptions are captured exactly as in [map] (lowest-indexed failure
    re-raised after everything finishes) — the output is bit-identical to
    [map]'s, only the dispatch granularity changes.
    @raise Invalid_argument if [chunk_size <= 0]. *)

val submit : t -> (unit -> unit) -> unit
(** Low-level enqueue of one fire-and-forget job.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Lets queued jobs drain, then stops and joins every worker.
    Idempotent. *)

val with_pool : ?domains:int -> (t -> 'b) -> 'b
(** [create], run, then [shutdown] (also on exceptions). *)

(** Crash-tolerant sweeps. Where {!map} captures job exceptions in-slot,
    [Supervised.map] treats {e any} exception escaping a job — including
    fatal ones like [Out_of_memory] — as the death of its worker domain:
    the worker exits, the supervising (calling) domain joins it, spawns a
    replacement and requeues the in-flight item with a bounded retry
    count, so the sweep degrades gracefully instead of dying. *)
module Supervised : sig
  type 'b outcome =
    | Done of 'b
    | Crashed of { attempts : int; last_error : string }
        (** the item crashed its worker on every one of [attempts]
            ([= max_retries + 1]) tries; [last_error] is the final
            exception, printed *)

  val map :
    ?domains:int ->
    ?max_retries:int ->
    ?on_done:(int -> 'b outcome -> unit) ->
    ('a -> 'b) ->
    'a list ->
    'b outcome list
  (** Runs [job] over the list on [domains] worker domains (default
      [Domain.recommended_domain_count ()], capped at the item count) and
      returns one outcome per item in submission order. A job exception
      kills its worker; the item is requeued up to [max_retries] times
      (default [1]) onto a freshly spawned replacement, then reported as
      [Crashed]. [on_done] — if given — is invoked in the {e calling}
      domain, without any pool lock held, once per item as its outcome
      becomes final (completion order, not submission order): the hook for
      journaling incremental progress to disk. Every spawned domain is
      joined before [map] returns, crash or no crash. *)

  val active_domains : unit -> int
  (** Domains spawned by [Supervised.map] and not yet joined, across the
      whole process — [0] whenever no supervised sweep is in flight (the
      no-leaked-domains test probe). *)
end
