(** A fixed-size pool of worker domains for embarrassingly parallel
    scenario sweeps (stdlib [Domain]/[Mutex]/[Condition] only).

    Determinism: the pool adds no randomness of its own. As long as every
    job owns its mutable state (the harness gives each scenario its own
    {!Engine.t}, {!Rng.t} and LP workspaces) and nothing prints from
    inside a job, [map pool f xs] is bit-identical to [List.map f xs] for
    any pool size — only wall-clock interleaving changes. *)

type t

val create : ?domains:int -> unit -> t
(** Spawns [domains] worker domains (default
    [Domain.recommended_domain_count ()], clamped to ≥ 1). *)

val size : t -> int
(** Number of worker domains. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Fans the list out to the pool and blocks until every element is done;
    results come back in submission order. The task count may exceed the
    pool size — excess tasks queue. If jobs raise, every job still runs
    to completion and the exception of the {e lowest-indexed} failing
    element is re-raised (with its backtrace); the pool stays usable. *)

val submit : t -> (unit -> unit) -> unit
(** Low-level enqueue of one fire-and-forget job.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Lets queued jobs drain, then stops and joins every worker.
    Idempotent. *)

val with_pool : ?domains:int -> (t -> 'b) -> 'b
(** [create], run, then [shutdown] (also on exceptions). *)
