(** Per-primitive traffic accounting, built on the engine's trace hook.

    Classifies every sent message by the protocol layer it belongs to, so
    the cost experiments can report where the O(n²)s go. *)

type klass =
  | Init_rbc  (** Πinit: value and report reliable broadcasts *)
  | Iteration_rbc  (** ΠoBC value distribution, per iteration *)
  | Halt_rbc  (** [(halt, it)] reliable broadcasts *)
  | Obc_reports  (** ΠoBC best-effort report sets *)
  | Witness_sets  (** Πinit best-effort witness sets *)
  | Baseline  (** baseline protocols' traffic *)
  | Junk  (** adversarial noise *)

val klass_of : Message.t -> klass
val klass_name : klass -> string
val all_klasses : klass list

type t
(** Mutable per-class counters. *)

val create : unit -> t

val attach : t -> Message.t Engine.t -> unit
(** Installs the counters as the engine's tracer. *)

val observe : t -> Message.t Engine.trace_event -> unit
(** The raw counting hook behind {!attach}, for callers that need to fan
    one engine tracer out to several consumers (e.g. traffic + monitor). *)

val count : t -> klass -> int
val bytes : t -> klass -> int
val total : t -> int

val to_rows : t -> (string * int * int) list
(** [(class name, messages, bytes)], fixed class order. *)
