(** Per-primitive traffic accounting.

    Classifies every sent message by the protocol layer it belongs to, so
    the cost experiments can report where the O(n²)s go. Two groupings
    coexist: the {e physical} classes ({!Init_rbc} … {!Ew}) partition the
    packets actually sent, while the {e step} classes ({!Step_init},
    {!Step_echo}, {!Step_ready}) attribute each logical rBC vote — whether
    it travelled as its own packet or as one entry of an {!Message.Rbc_batch}
    — to its Bracha step. Step rows therefore overlap the physical rows
    and are excluded from {!total}.

    Counts can be collected two ways: via the engine tracer ({!attach},
    the historical path) or — cheaper, and what {!Runner} uses — via the
    engine's send-path class counters ({!classify_into} passed to
    [Engine.create], then {!of_engine}). Both paths run the same fold, so
    they agree exactly. *)

type klass =
  | Init_rbc  (** Πinit: value and report reliable broadcasts *)
  | Iteration_rbc  (** ΠoBC value distribution, per iteration *)
  | Halt_rbc  (** [(halt, it)] reliable broadcasts *)
  | Obc_reports  (** ΠoBC best-effort report sets *)
  | Witness_sets  (** Πinit best-effort witness sets *)
  | Baseline  (** baseline protocols' traffic *)
  | Junk  (** adversarial noise *)
  | Batched_rbc  (** combined per-(sender, receiver) rBC vote packets *)
  | Ew  (** Erbes–Wattenhofer direct values and reports *)
  | Step_init  (** logical rBC init votes (standalone or batched) *)
  | Step_echo  (** logical rBC echo votes *)
  | Step_ready  (** logical rBC ready votes *)

val klass_of : Message.t -> klass
(** The physical class of a packet. *)

val klass_name : klass -> string
val all_klasses : klass list

val num_klasses : int
(** Array size for engine-side accounting ([Engine.create ~classes]). *)

val classify_into : Message.t -> (int -> int -> unit) -> unit
(** [classify_into msg emit] calls [emit klass_index bytes] once for the
    packet's physical class and once per logical rBC vote's step class.
    Pass directly as [Engine.create ~classify]. *)

type t
(** Mutable per-class counters. *)

val create : unit -> t

val attach : t -> Message.t Engine.t -> unit
(** Installs the counters as the engine's tracer. *)

val observe : t -> Message.t Engine.trace_event -> unit
(** The raw counting hook behind {!attach}, for callers that need to fan
    one engine tracer out to several consumers (e.g. traffic + monitor). *)

val of_engine : Message.t Engine.t -> t
(** Snapshot of an engine's send-path class counters; the engine must
    have been created with [~classes:num_klasses ~classify:classify_into]. *)

val count : t -> klass -> int
val bytes : t -> klass -> int

val total : t -> int
(** Messages summed over the physical classes only (step rows overlap). *)

val to_rows : t -> (string * int * int) list
(** [(class name, messages, bytes)], fixed class order. *)
