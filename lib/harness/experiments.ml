(* Each experiment prints a report and returns whether all its checks
   passed. Seeds are fixed: reports are reproducible bit for bit.

   Independent scenario batches go through [run_batch] below, which fans
   them out to [domains] worker domains. Reports stay byte-identical for
   any domain count because (a) scenarios are constructed — and any
   shared input-generation Rng is consumed — before submission, (b)
   Runner.run owns all its mutable state and never prints, and (c) all
   formatting happens after the join, from the ordered result list. *)

let domains = ref 1
let set_domains n = domains := max 1 n
let run_batch scenarios = Runner.run_batch ~domains:!domains scenarios

let check ok msg failures =
  if not ok then failures := msg :: !failures;
  ok

let header title =
  Printf.printf "\n=== %s ===\n\n" title

let verdict failures =
  match !failures with
  | [] ->
      print_endline "\nRESULT: PASS";
      true
  | fs ->
      Printf.printf "\nRESULT: FAIL (%d checks)\n" (List.length fs);
      List.iter (fun f -> Printf.printf "  - %s\n" f) (List.rev fs);
      false

let f3 x = Printf.sprintf "%.3f" x
let e3 x = Printf.sprintf "%.3e" x
let yn b = if b then "yes" else "no"

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 / Theorem 3.1 — synchronous lower bound                *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header
    "E1  Figure 1 / Theorem 3.1: no sync D-AA at n = (D+1)*ts (D=2, ts=1)";
  let failures = ref [] in
  let eps = 1. in
  let corners = Inputs.simplex_corners ~d:2 ~scale:eps ~n:3 in
  Printf.printf "Inputs: %s\n\n"
    (String.concat "  " (List.map Vec.to_string corners));
  (* Party with input e_d cannot distinguish the scenarios in which any
     other group i is corrupted; its output must lie in every candidate
     honest hull convex({e_j : j <> i}). *)
  let forced =
    List.mapi
      (fun d ed ->
        let candidate_hulls =
          List.concat
            (List.mapi
               (fun i _ ->
                 if i = d then []
                 else
                   [ Polygon.of_points (List.filteri (fun j _ -> j <> i) corners) ])
               corners)
        in
        let region = Polygon.inter_all candidate_hulls in
        (d, ed, region))
      corners
  in
  let rows =
    List.map
      (fun (d, ed, region) ->
        match region with
        | None -> [ Printf.sprintf "S%d" d; Vec.to_string ed; "EMPTY"; "-" ]
        | Some r ->
            let diam = Polygon.diameter r in
            let is_own =
              diam <= 1e-9 && Polygon.contains r ed
            in
            ignore
              (check is_own
                 (Printf.sprintf "group %d not forced to its own input" d)
                 failures);
            [
              Printf.sprintf "S%d" d;
              Vec.to_string ed;
              Format.asprintf "%a" Polygon.pp r;
              yn is_own;
            ])
      forced
  in
  Table.print
    ~header:[ "group"; "input"; "forced output region"; "forced to own input" ]
    rows;
  let outs = List.map (fun (_, ed, _) -> ed) forced in
  let diam = Vec.diameter outs in
  Printf.printf
    "\nForced output diameter = %.4f = eps*sqrt(2) > eps = %.1f  => no \
     eps-agreement possible.\n"
    diam eps;
  ignore
    (check
       (Float.abs (diam -. (eps *. sqrt 2.)) <= 1e-9)
       "forced diameter is not eps*sqrt(2)" failures);

  (* Control: one more party (n = 4 > (D+1)*ts) and the same corner attack
     fails against our protocol. *)
  print_newline ();
  print_endline
    "Control at n = 4, ts = 1, ta = 0 (feasible): corrupt party replays a \
     corner input.";
  let cfg = Config.make_exn ~n:4 ~ts:1 ~ta:0 ~d:2 ~eps:0.25 ~delta:10 in
  let inputs = corners @ [ Vec.of_list [ 0.3; 0.3 ] ] in
  let corrupts = [ 0; 1; 2 ] in
  let results =
    run_batch
      (List.map
         (fun corrupt ->
           Scenario.make ~name:"e1-control" ~cfg ~inputs
             ~corruptions:
               [ (corrupt, Behavior.Honest_with_input (List.nth corners corrupt)) ]
             ())
         corrupts)
  in
  let rows =
    List.map2
      (fun corrupt r ->
        let ok = r.Runner.live && r.Runner.valid && r.Runner.agreement in
        ignore
          (check ok
             (Printf.sprintf "control run with corrupt %d failed" corrupt)
             failures);
        [
          string_of_int corrupt;
          yn r.Runner.live;
          yn r.Runner.valid;
          yn r.Runner.agreement;
          e3 r.Runner.diameter;
        ])
      corrupts results
  in
  Table.print ~header:[ "corrupt"; "live"; "valid"; "agree"; "diam" ] rows;
  verdict failures

(* ------------------------------------------------------------------ *)
(* E2: Theorem 3.2 — asynchronous lower bound                          *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2  Theorem 3.2: no async D-AA at n = (D+2)*ta (D=2, ta=1)";
  let failures = ref [] in
  let eps = 1. in
  let corners = Inputs.simplex_corners ~d:2 ~scale:eps ~n:3 in
  print_endline
    "Groups S0..S2 hold the corner inputs; S3 sends nothing. An honest\n\
     party cannot tell whether S3 is corrupt or merely slow with some other\n\
     group corrupt, so its output must lie in every candidate honest hull:";
  let all_ok = ref true in
  List.iteri
    (fun d ed ->
      let candidate_hulls =
        List.concat
          (List.mapi
             (fun i _ ->
               if i = d then []
               else
                 [ Polygon.of_points (List.filteri (fun j _ -> j <> i) corners) ])
             corners)
      in
      match Polygon.inter_all candidate_hulls with
      | Some r when Polygon.diameter r <= 1e-9 && Polygon.contains r ed -> ()
      | _ -> all_ok := false)
    corners;
  ignore (check !all_ok "async forcing failed" failures);
  Printf.printf
    "Each group is forced to its own corner; output diameter %.4f > eps.\n"
    (eps *. sqrt 2.);

  print_newline ();
  print_endline
    "Control at n = 6, ts = ta = 1 (feasible): silent corrupt party plus \
     starvation of one honest party.";
  let cfg = Config.make_exn ~n:6 ~ts:1 ~ta:1 ~d:2 ~eps:0.25 ~delta:10 in
  let inputs = corners @ [ Vec.of_list [ 0.5; 0.2 ]; Vec.of_list [ 0.2; 0.5 ]; Vec.of_list [ 0.4; 0.4 ] ] in
  let r =
    Runner.run
      (Scenario.make ~name:"e2-control" ~cfg ~inputs ~sync_network:false
         ~policy:
           (Network.async_starve ~victims:(fun i -> i = 1) ~release:800 ~fast:4)
         ~corruptions:[ (5, Behavior.Silent) ]
         ())
  in
  Printf.printf "live=%s valid=%s agree=%s diam=%s\n" (yn r.Runner.live)
    (yn r.Runner.valid) (yn r.Runner.agreement) (e3 r.Runner.diameter);
  ignore
    (check
       (r.Runner.live && r.Runner.valid && r.Runner.agreement)
       "feasible async control failed" failures);
  verdict failures

(* ------------------------------------------------------------------ *)
(* E3: Figure 2 — safe-area worked example                             *)
(* ------------------------------------------------------------------ *)

let e3_run () =
  header "E3  Figure 2: safe area of four points, t = 1";
  let failures = ref [] in
  let pts =
    [
      Vec.of_list [ 0.; 0. ]; Vec.of_list [ 2.; 0. ];
      Vec.of_list [ 2.; 2. ]; Vec.of_list [ 0.; 2. ];
    ]
  in
  Printf.printf "Points: %s\n\n"
    (String.concat "  " (List.map Vec.to_string pts));
  let subsets = Restrict.subsets ~t:1 pts in
  print_endline "Stage-by-stage intersection of the 3-subset hulls:";
  let acc = ref None in
  List.iteri
    (fun i sub ->
      let hull = Polygon.of_points sub in
      acc :=
        (match !acc with
        | None -> Some hull
        | Some r -> Polygon.inter r hull);
      Printf.printf "  after subset %d (%s): %s\n" (i + 1)
        (String.concat " " (List.map Vec.to_string sub))
        (match !acc with
        | None -> "EMPTY"
        | Some r -> Format.asprintf "%a" Polygon.pp r))
    subsets;
  (match Safe_area.compute ~t:1 pts with
  | Some (Safe_area.Planar p as area) ->
      let vcount = List.length (Polygon.vertices p) in
      ignore (check (vcount = 1) "safe area is not a single point" failures);
      let v = List.hd (Polygon.vertices p) in
      Printf.printf "\nFinal safe area: the single point v = %s\n"
        (Vec.to_string v);
      ignore
        (check
           (Vec.dist v (Vec.of_list [ 1.; 1. ]) <= 1e-9)
           "v is not the diagonal crossing" failures);
      (* v is inside the convex hull of any 3 of the 4 points *)
      List.iter
        (fun sub ->
          ignore
            (check
               (Membership.in_hull ~eps:1e-9 sub v)
               "v outside some 3-subset hull" failures))
        subsets;
      print_endline
        "v lies in the convex hull of every 3 of the 4 points: whichever\n\
         point is corrupt, v is inside the honest hull.";
      ignore area
  | _ -> ignore (check false "safe area not planar/non-empty" failures));

  (* The Section 5 example motivating max(k, ta): safe_1 of three honest
     values is empty; the paper's trim level uses k = 0 instead. *)
  print_newline ();
  let three =
    [ Vec.of_list [ 0.; 0. ]; Vec.of_list [ 0.; 1. ]; Vec.of_list [ 1.; 0. ] ]
  in
  let empty = Safe_area.compute ~t:1 three = None in
  Printf.printf
    "Section 5 example (n=4, ts=1, ta=0, one silent corruption):\n\
    \  safe_1({(0,0),(0,1),(1,0)}) empty: %s   (naive trim fails)\n" (yn empty);
  ignore (check empty "paper's empty example is not empty" failures);
  let fixed =
    match Safe_area.compute ~t:0 three with
    | Some a -> Safe_area.contains a (Vec.of_list [ 0.33; 0.33 ])
    | None -> false
  in
  Printf.printf
    "  safe_max(k,ta) = safe_0 = the full hull: %s   (the paper's fix)\n"
    (yn fixed);
  ignore (check fixed "max(k,ta) fix does not recover the hull" failures);
  verdict failures

(* ------------------------------------------------------------------ *)
(* E4: Theorem 4.2 — reliable broadcast round counts                   *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4  Theorem 4.2: Bracha rBC with c_rBC = 3, c'_rBC = 2";
  let failures = ref [] in
  let delta = 10 in
  let payload = Message.Pvec (Vec.of_list [ 1.; 2. ]) in
  let rows =
    List.map
      (fun (n, t) ->
        let honest = List.init n Fun.id in
        (* honest liveness under worst-case synchronous scheduling *)
        let obs =
          Fixtures.run_rbc ~n ~t ~policy:(Network.lockstep ~delta) ~honest
            ~sender:(`Honest (0, payload)) ()
        in
        let times = List.map (fun (_, _, tm) -> tm) obs.rbc_deliveries in
        let maxt = List.fold_left max 0 times in
        let all = List.length times = n in
        ignore (check all (Printf.sprintf "n=%d: not all delivered" n) failures);
        ignore
          (check
             (maxt <= Params.c_rbc * delta)
             (Printf.sprintf "n=%d: delivery after 3 delta" n)
             failures);
        (* conditional liveness gap under random synchronous delays *)
        let worst_gap = ref 0 in
        List.iter
          (fun seed ->
            let obs =
              Fixtures.run_rbc ~seed ~n ~t
                ~policy:(Network.sync_uniform ~delta) ~honest
                ~sender:(`Honest (0, payload)) ()
            in
            let times = List.map (fun (_, _, tm) -> tm) obs.rbc_deliveries in
            if List.length times = n then begin
              let lo = List.fold_left min max_int times in
              let hi = List.fold_left max 0 times in
              worst_gap := max !worst_gap (hi - lo)
            end)
          [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ];
        ignore
          (check
             (!worst_gap <= Params.c_rbc' * delta)
             (Printf.sprintf "n=%d: conditional-liveness gap > 2 delta" n)
             failures);
        (* consistency under an equivocating corrupt sender *)
        let consistent = ref true in
        List.iter
          (fun seed ->
            let honest = List.init (n - 1) Fun.id in
            let obs =
              Fixtures.run_rbc ~seed ~n ~t
                ~policy:(Network.sync_uniform ~delta) ~honest
                ~sender:
                  (`Equivocator
                    ( n - 1,
                      Message.Pvec (Vec.of_list [ 1.; 1. ]),
                      Message.Pvec (Vec.of_list [ 2.; 2. ]) ))
                ()
            in
            let values =
              List.sort_uniq compare
                (List.map (fun (_, p, _) -> p) obs.rbc_deliveries)
            in
            if List.length values > 1 then consistent := false)
          [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ];
        ignore
          (check !consistent
             (Printf.sprintf "n=%d: equivocation broke consistency" n)
             failures);
        [
          string_of_int n;
          string_of_int t;
          Printf.sprintf "%d (= %.1f rounds)" maxt
            (float_of_int maxt /. float_of_int delta);
          Printf.sprintf "%d (<= %d)" !worst_gap (Params.c_rbc' * delta);
          yn !consistent;
        ])
      [ (4, 1); (7, 2); (10, 3); (13, 4) ]
  in
  Table.print
    ~header:
      [ "n"; "t"; "honest liveness (<= 3 delta)"; "cond. gap"; "equiv. consistent" ]
    rows;
  verdict failures

(* ------------------------------------------------------------------ *)
(* E5: Theorem 4.4 — overlap all-to-all broadcast                      *)
(* ------------------------------------------------------------------ *)

let min_pairwise_overlap outputs =
  let sets = List.map (fun (_, m, _) -> m) outputs in
  List.fold_left
    (fun acc m ->
      List.fold_left
        (fun acc m' ->
          if m == m' then acc
          else min acc (Pairset.cardinal (Pairset.inter m m')))
        acc sets)
    max_int sets

let e5 () =
  header "E5  Theorem 4.4: Overlap All-to-All Broadcast (c_oBC = 5)";
  let failures = ref [] in
  let delta = 10 in
  let mk_inputs honest =
    List.map (fun i -> (i, Vec.of_list [ float_of_int i; 0. ])) honest
  in
  let rows =
    List.map
      (fun (n, ts) ->
        let honest = List.init n Fun.id in
        (* synchronous: everyone outputs by c_oBC * delta with all honest
           values present *)
        let obs =
          Fixtures.run_obc ~n ~ts ~delta ~policy:(Network.lockstep ~delta)
            ~inputs:(mk_inputs honest) ()
        in
        let maxt =
          List.fold_left (fun acc (_, _, tm) -> max acc tm) 0 obs.obc_outputs
        in
        let sync_overlap_ok =
          List.length obs.obc_outputs = n
          && List.for_all
               (fun (_, m, _) ->
                 List.for_all (fun j -> Pairset.mem_party j m) honest)
               obs.obc_outputs
        in
        ignore
          (check sync_overlap_ok
             (Printf.sprintf "n=%d: synchronized overlap failed" n)
             failures);
        ignore
          (check
             (maxt <= (Params.c_obc * delta) + 2)
             (Printf.sprintf "n=%d: output after 5 delta" n)
             failures);
        (* asynchronous: starve one party; min pairwise overlap >= n - ts *)
        let worst_overlap = ref max_int in
        List.iter
          (fun seed ->
            let obs =
              Fixtures.run_obc ~seed ~n ~ts ~delta
                ~policy:
                  (Network.async_starve
                     ~victims:(fun i -> i = n - 1)
                     ~release:400 ~fast:3)
                ~inputs:(mk_inputs honest) ()
            in
            if List.length obs.obc_outputs = n then
              worst_overlap := min !worst_overlap (min_pairwise_overlap obs.obc_outputs))
          [ 1L; 2L; 3L; 4L ];
        ignore
          (check
             (!worst_overlap >= n - ts)
             (Printf.sprintf "n=%d: async overlap < n - ts" n)
             failures);
        [
          string_of_int n;
          string_of_int ts;
          Printf.sprintf "%d (<= %d)" maxt ((Params.c_obc * delta) + 2);
          yn sync_overlap_ok;
          Printf.sprintf "%d (>= %d)" !worst_overlap (n - ts);
        ])
      [ (4, 1); (7, 2); (10, 3) ]
  in
  Table.print
    ~header:
      [
        "n"; "ts"; "sync output time"; "all honest values"; "async min overlap";
      ]
    rows;

  (* Ablation: drop the witness phase. Two late-joining parties make their
     values race the others' collection deadlines; without witnesses,
     output sets then share fewer than n - ts pairs. *)
  print_newline ();
  print_endline
    "Ablation: witness phase removed; two parties join 8 and 9 ticks late\n\
     (values race the 3-delta collection deadline). Worst pairwise overlap\n\
     over 40 seeds:";
  let laggard_overlap ~n ~ts ~witnessing =
    let worst = ref max_int in
    for seed = 1 to 40 do
      let obs =
        Fixtures.run_obc ~seed:(Int64.of_int seed) ~witnessing ~n ~ts ~delta
          ~policy:(Network.sync_uniform ~delta)
          ~start_delays:[ (n - 1, 8); (n - 2, 9) ]
          ~inputs:(mk_inputs (List.init n Fun.id))
          ()
      in
      if List.length obs.obc_outputs >= 2 then
        worst := min !worst (min_pairwise_overlap obs.obc_outputs)
    done;
    !worst
  in
  let abl_rows =
    List.map
      (fun (n, ts) ->
        let with_w = laggard_overlap ~n ~ts ~witnessing:true in
        let without_w = laggard_overlap ~n ~ts ~witnessing:false in
        ignore
          (check (with_w >= n - ts)
             (Printf.sprintf "n=%d: witnessed overlap below n - ts" n)
             failures);
        ignore
          (check (without_w < n - ts)
             (Printf.sprintf
                "n=%d: ablation did not exhibit the overlap violation" n)
             failures);
        [
          string_of_int n;
          string_of_int ts;
          Printf.sprintf "%d (>= %d)" with_w (n - ts);
          Printf.sprintf "%d (< %d: guarantee lost)" without_w (n - ts);
        ])
      [ (5, 1); (6, 1) ]
  in
  Table.print
    ~header:[ "n"; "ts"; "with witnesses"; "without witnesses" ]
    abl_rows;
  print_endline
    "\nThe witness phase is what buys the (ts, ta)-Overlap guarantee:\n\
     removing it lets two honest parties output with fewer than n - ts\n\
     common pairs, which empties downstream safe-area intersections.";
  verdict failures

(* ------------------------------------------------------------------ *)
(* E6: Lemmas 5.5-5.8 — safe-area invariants, randomized               *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6  Lemmas 5.5-5.8: randomized safe-area invariants";
  let failures = ref [] in
  let rng = Rng.create 2024L in
  let random_vec d = Vec.of_list (List.init d (fun _ -> Rng.float_range rng (-10.) 10.)) in
  let rows =
    List.map
      (fun (d, n, ts, ta, trials) ->
        let nonempty = ref 0 and inside = ref 0 and intersect = ref 0 in
        let inter_total = ref 0 in
        for _ = 1 to trials do
          (* Lemma 5.5 / 5.7 instance *)
          let k = Rng.int rng (ts + 1) in
          let m = List.init (n - ts + k) (fun _ -> random_vec d) in
          let trim = max k ta in
          (match Safe_area.compute ~t:trim m with
          | Some area ->
              incr nonempty;
              let a, b = Safe_area.diameter_pair area in
              let mid = Safe_area.midpoint_value area in
              let in_all_subsets =
                List.for_all
                  (fun sub ->
                    List.for_all
                      (fun p -> Membership.in_hull ~eps:1e-6 sub p)
                      [ a; b; mid ])
                  (Restrict.subsets ~t:trim m)
              in
              if in_all_subsets then incr inside
          | None -> ());
          (* Lemma 5.8 instance: common core of n - ts values *)
          if d = 2 then begin
            let core = List.init (n - ts) (fun _ -> random_vec d) in
            let m1 = core @ [ random_vec d ] and m2 = core @ [ random_vec d ] in
            let t_of m = max (List.length m - (n - ts)) ta in
            incr inter_total;
            match
              ( Safe_area.compute ~t:(t_of m1) m1,
                Safe_area.compute ~t:(t_of m2) m2 )
            with
            | Some (Safe_area.Planar p1), Some (Safe_area.Planar p2) ->
                if Polygon.inter p1 p2 <> None then incr intersect
            | _ -> ()
          end
        done;
        ignore
          (check (!nonempty = trials)
             (Printf.sprintf "D=%d: some safe area was empty" d)
             failures);
        ignore
          (check (!inside = !nonempty)
             (Printf.sprintf "D=%d: safe area left a subset hull" d)
             failures);
        if d = 2 then
          ignore
            (check
               (!intersect = !inter_total)
               "D=2: some honest safe areas did not intersect" failures);
        [
          string_of_int d;
          Printf.sprintf "%d/%d/%d" n ts ta;
          Printf.sprintf "%d/%d" !nonempty trials;
          Printf.sprintf "%d/%d" !inside !nonempty;
          (if d = 2 then Printf.sprintf "%d/%d" !intersect !inter_total else "-");
        ])
      [ (1, 7, 2, 1, 150); (2, 8, 2, 1, 150); (3, 9, 2, 0, 40) ]
  in
  Table.print
    ~header:
      [
        "D"; "n/ts/ta"; "non-empty (5.5)"; "inside subset hulls (5.7)";
        "pairwise intersect (5.8)";
      ]
    rows;
  verdict failures

(* ------------------------------------------------------------------ *)
(* E7: Lemma 5.15 — contraction factor sqrt(7/8)                       *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7  Lemma 5.15: per-iteration contraction <= sqrt(7/8) = 0.9354";
  let failures = ref [] in

  (* Part 1 — the lemma at its native level. Lemma 5.15 bounds the distance
     of two honest parties' new values given any ΠoBC outputs satisfying
     the overlap guarantees. We adversarially construct such outputs: a
     common core of n - ts pairs plus per-party extras, with up to ts
     corrupt values placed far away, and measure
     diam(new values) / diam(honest values) over many random trials. *)
  print_endline
    "Unit level: adversarial oBC-compatible received sets, ratio\n\
     diam(new honest values) / diam(honest iteration inputs):";
  let rng = Rng.create 4242L in
  (* One trial builds, for every honest party, a received set that a real
     ΠoBC execution could produce, then applies the new-value rule.
     Synchronous style: f = ts corrupt parties; Synchronized Overlap means
     every honest set contains all honest pairs, plus a random subset of
     the corrupt ones. Asynchronous style: f = ta corrupt parties; sets
     share a random common core of n - ts pairs ((ts,ta)-Overlap) plus
     random extras. In both cases the corrupt count never exceeds the trim
     level max(k, ta) — exactly the invariant ΠoBC guarantees. *)
  let trial ?(rule = Safe_area.midpoint_value) ~style ~d ~n ~ts ~ta () =
    let rand_vec scale =
      Vec.of_list (List.init d (fun _ -> Rng.float_range rng (-.scale) scale))
    in
    let f = match style with `Sync -> ts | `Async -> ta in
    let honest_vals = Array.init (n - f) (fun _ -> rand_vec 10.) in
    let corrupt_vals = Array.init f (fun _ -> rand_vec 1000.) in
    let value p =
      if p < n - f then honest_vals.(p) else corrupt_vals.(p - (n - f))
    in
    let members =
      match style with
      | `Sync ->
          fun () ->
            let honest = List.init (n - f) Fun.id in
            let extras =
              List.init f (fun i -> n - f + i)
              |> List.filter (fun _ -> Rng.bool rng)
            in
            honest @ extras
      | `Async ->
          let perm = Array.init n Fun.id in
          Rng.shuffle rng perm;
          let core = Array.to_list (Array.sub perm 0 (n - ts)) in
          let rest = Array.to_list (Array.sub perm (n - ts) ts) in
          fun () -> core @ List.filter (fun _ -> Rng.bool rng) rest
    in
    let new_vals =
      List.init (n - f) (fun _ ->
          let pairs =
            Pairset.of_bindings (List.map (fun p -> (p, value p)) (members ()))
          in
          let k = Pairset.cardinal pairs - (n - ts) in
          match Safe_area.compute ~t:(max k ta) (Pairset.values pairs) with
          | Some area -> rule area
          | None -> assert false (* Lemma 5.5 *))
    in
    let d_in = Vec.diameter (Array.to_list honest_vals) in
    if d_in > 1e-9 then Some (Vec.diameter new_vals /. d_in) else None
  in
  let unit_rows =
    List.concat_map
      (fun (d, n, ts, ta, trials) ->
        List.map
          (fun style ->
            let worst = ref 0. in
            for _ = 1 to trials do
              match trial ~style ~d ~n ~ts ~ta () with
              | Some r -> worst := Float.max !worst r
              | None -> ()
            done;
            let ok = !worst <= Params.conv_factor +. 1e-6 in
            ignore
              (check ok
                 (Printf.sprintf "D=%d unit-level contraction violated" d)
                 failures);
            [
              Printf.sprintf "D=%d n=%d ts=%d ta=%d" d n ts ta;
              (match style with `Sync -> "sync" | `Async -> "async");
              string_of_int trials;
              f3 !worst;
              f3 Params.conv_factor;
              yn ok;
            ])
          [ `Sync; `Async ])
      [ (1, 7, 2, 1, 400); (2, 8, 2, 1, 300); (3, 9, 2, 0, 24) ]
  in
  Table.print
    ~header:[ "setting"; "style"; "trials"; "max ratio"; "bound"; "ok" ]
    unit_rows;

  (* Ablation (DESIGN.md §4): the diameter-pair midpoint rule of
     Függer–Nowak vs a centroid update. Both stay inside the safe area
     (validity), but only the midpoint rule carries the proven constant. *)
  print_newline ();
  print_endline "Update-rule ablation (D=2, n=8, ts=2, ta=1, async style):";
  let measure rule trials =
    let worst = ref 0. in
    for _ = 1 to trials do
      match trial ~rule ~style:`Async ~d:2 ~n:8 ~ts:2 ~ta:1 () with
      | Some r -> worst := Float.max !worst r
      | None -> ()
    done;
    !worst
  in
  let mid = measure Safe_area.midpoint_value 300 in
  let cen = measure Safe_area.centroid_value 300 in
  Table.print
    ~header:[ "update rule"; "max ratio"; "proven bound" ]
    [
      [ "diameter-pair midpoint (paper)"; f3 mid; f3 Params.conv_factor ];
      [ "area centroid (ablation)"; f3 cen; "none proven" ];
    ];
  ignore
    (check (mid <= Params.conv_factor +. 1e-6)
       "midpoint rule exceeded the proven bound" failures);

  print_newline ();
  print_endline
    "End to end: full protocol runs. The witness mechanism keeps honest\n\
     views so close that the measured contraction is far better than the\n\
     worst-case bound (typically full collapse in one iteration):";
  let case name cfg policy sync corruptions inputs seed =
    Scenario.make ~name ~seed ~cfg ~policy ~sync_network:sync ~corruptions
      ~inputs ()
  in
  let cases =
    List.concat
      [
        (let cfg = Config.make_exn ~n:7 ~ts:2 ~ta:0 ~d:1 ~eps:1e-4 ~delta:10 in
         let inputs = List.init 7 (fun i -> Vec.of_list [ float_of_int (i * i) ]) in
         [
           case "D=1 poison+lagger" cfg
             (Network.sync_uniform ~delta:10)
             true
             [ (0, Behavior.Honest_with_input (Vec.of_list [ 1e6 ]));
               (3, Behavior.Lagger 8) ]
             inputs 11L;
         ]);
        (let cfg = Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:1e-4 ~delta:10 in
         let rng = Rng.create 5L in
         let inputs = Inputs.two_clusters rng ~d:2 ~n:8 ~separation:20. in
         [
           case "D=2 poison+lagger" cfg
             (Network.sync_uniform ~delta:10)
             true
             [ (1, Behavior.Honest_with_input (Vec.of_list [ 500.; -500. ]));
               (6, Behavior.Lagger 8) ]
             inputs 12L;
           case "D=2 async heavy tail" cfg
             (Network.async_heavy_tail ~base:60)
             false
             [ (1, Behavior.Honest_with_input (Vec.of_list [ 500.; -500. ])) ]
             inputs 1L;
         ]);
        (let cfg = Config.make_exn ~n:6 ~ts:1 ~ta:0 ~d:3 ~eps:1e-2 ~delta:10 in
         let rng = Rng.create 6L in
         let inputs = Inputs.uniform_cube rng ~d:3 ~n:6 ~side:10. in
         [
           case "D=3 poison" cfg
             (Network.sync_uniform ~delta:10)
             true
             [ (2, Behavior.Honest_with_input (Vec.of_list [ 100.; 100.; -100. ])) ]
             inputs 14L;
         ]);
      ]
  in
  let rows =
    List.map
      (fun r ->
        let name = r.Runner.scenario_name in
        let ratios = Runner.contraction_ratios r in
        let worst =
          List.fold_left (fun acc (_, x) -> Float.max acc x) 0. ratios
        in
        ignore
          (check
             (r.Runner.live && r.Runner.valid && r.Runner.agreement)
             (name ^ ": correctness failed") failures);
        ignore
          (check
             (ratios = [] || worst <= Params.conv_factor +. 1e-6)
             (name ^ ": contraction bound violated") failures);
        [
          name;
          string_of_int (List.length ratios);
          (if ratios = [] then "-" else f3 worst);
          f3 Params.conv_factor;
          yn (ratios = [] || worst <= Params.conv_factor +. 1e-6);
        ])
      (run_batch cases)
  in
  Table.print
    ~header:[ "case"; "iterations"; "max ratio"; "bound"; "ok" ]
    rows;
  verdict failures

(* ------------------------------------------------------------------ *)
(* E8: Theorem 5.18 — the Πinit estimation round                       *)
(* ------------------------------------------------------------------ *)

let rounds_needed_for ~eps ~diam =
  if diam <= eps then 0
  else int_of_float (Float.ceil (log (eps /. diam) /. log Params.conv_factor))

let e8 () =
  header "E8  Theorem 5.18: Pi_init outputs (T, v0)";
  let failures = ref [] in
  let n = 8 and ts = 2 and ta = 1 and delta = 10 and eps = 0.05 in
  let honest = [ 0; 1; 2; 3; 4; 6; 7 ] in
  (* party 5 silent *)
  let inputs =
    List.map (fun i -> (i, Vec.of_list [ float_of_int (i mod 3); float_of_int (i mod 5) ])) honest
  in
  let honest_vals = List.map snd inputs in

  (* synchronous run *)
  let obs =
    Fixtures.run_init ~n ~ts ~ta ~delta ~eps ~policy:(Network.lockstep ~delta)
      ~inputs ()
  in
  let all_out = List.length obs.init_results = List.length honest in
  ignore (check all_out "sync: not every honest party output" failures);
  let sync_time =
    List.fold_left (fun acc (_, _, _, tm) -> max acc tm) 0 obs.init_results
  in
  Printf.printf "Synchronous completion at tick %d (= %.1f rounds; c_init = %d)\n"
    sync_time
    (float_of_int sync_time /. float_of_int delta)
    Params.c_init;
  ignore
    (check (sync_time <= (Params.c_init * delta) + 2) "sync: completion after c_init" failures);
  let v0_ok =
    List.for_all
      (fun (_, _, v0, _) -> Membership.in_hull ~eps:1e-6 honest_vals v0)
      obs.init_results
  in
  Printf.printf "All v0 inside the honest inputs' hull: %s\n" (yn v0_ok);
  ignore (check v0_ok "sync: some v0 outside the honest hull" failures);
  let v0s = List.map (fun (_, _, v0, _) -> v0) obs.init_results in
  let t_needed it0 = it0 >= rounds_needed_for ~eps ~diam:(Vec.diameter v0s) in
  let ts_list = List.map (fun (_, tt, _, _) -> tt) obs.init_results in
  let t_min = List.fold_left min max_int ts_list in
  Printf.printf "Estimates T: %s; delta_max(I0) = %s; required >= %d\n"
    (String.concat "," (List.map string_of_int ts_list))
    (e3 (Vec.diameter v0s))
    (rounds_needed_for ~eps ~diam:(Vec.diameter v0s));
  ignore (check (t_needed t_min) "sync: smallest T below requirement" failures);

  (* asynchronous run: common estimations with and without double
     witnesses *)
  let common_est obs =
    let sets = List.map snd obs.Fixtures.init_estimations in
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc s' ->
            if s == s' then acc
            else min acc (Pairset.cardinal (Pairset.inter s s')))
          acc sets)
      max_int sets
  in
  let async_policy =
    Network.async_starve ~victims:(fun i -> i = 7) ~release:500 ~fast:3
  in
  let with_dw =
    Fixtures.run_init ~n ~ts ~ta ~delta ~eps ~policy:async_policy ~inputs ()
  in
  let without_dw =
    Fixtures.run_init ~double_witnessing:false ~n ~ts ~ta ~delta ~eps
      ~policy:async_policy ~inputs ()
  in
  Printf.printf
    "\nAsync minimum common estimations between honest pairs:\n\
    \  with double-witnesses:    %d (needs >= n - ts = %d)\n\
    \  without double-witnesses: %d (ablation)\n"
    (common_est with_dw) (n - ts) (common_est without_dw);
  ignore
    (check (common_est with_dw >= n - ts) "async: common estimations < n - ts" failures);
  verdict failures

(* ------------------------------------------------------------------ *)
(* E9 / E10: Theorem 5.19 end-to-end sweeps                            *)
(* ------------------------------------------------------------------ *)

let sweep_rows failures cases =
  let results =
    run_batch
      (List.map
         (fun (name, cfg, policy, sync, corruptions, inputs, seed) ->
           Scenario.make ~name ~seed ~cfg ~policy ~sync_network:sync
             ~corruptions ~inputs ())
         cases)
  in
  List.map2
    (fun (name, cfg, _, _, _, _, _) r ->
      let ok = r.Runner.live && r.Runner.valid && r.Runner.agreement in
      ignore (check ok (name ^ " failed") failures);
      [
        name;
        Format.asprintf "%a" Config.pp cfg;
        yn r.Runner.live;
        yn r.Runner.valid;
        yn r.Runner.agreement;
        e3 r.Runner.diameter;
        f3 r.Runner.completion_rounds;
        string_of_int r.Runner.stats.Engine.messages_sent;
      ])
    cases results

let table_sweep rows =
  Table.print
    ~header:[ "case"; "config"; "live"; "valid"; "agree"; "diam"; "rounds"; "msgs" ]
    rows

let poison d scale =
  Behavior.Honest_with_input (Vec.scale scale (Vec.make d 1.))

let e9 () =
  header "E9  Theorem 5.19 (synchronous, ts corruptions)";
  let failures = ref [] in
  let mk n ts ta d eps = Config.make_exn ~n ~ts ~ta ~d ~eps ~delta:10 in
  let rng = Rng.create 99L in
  let cases =
    [
      (let cfg = mk 8 2 1 2 0.05 in
       ( "grid, 2 poison", cfg,
         Network.sync_uniform ~delta:10, true,
         [ (0, poison 2 100.); (4, poison 2 (-100.)) ],
         Inputs.uniform_cube rng ~d:2 ~n:8 ~side:5., 1L ));
      (let cfg = mk 8 2 1 2 0.05 in
       ( "clusters, silent+rushing", cfg,
         Network.rushing ~delta:10 ~corrupt:(fun i -> i = 3), true,
         [ (3, Behavior.Silent); (6, Behavior.Crash_at 60) ],
         Inputs.two_clusters rng ~d:2 ~n:8 ~separation:10., 2L ));
      (let cfg = mk 12 3 1 2 0.02 in
       ( "n=12 ts=3 mixed", cfg,
         Network.sync_uniform ~delta:10, true,
         [ (1, poison 2 1000.); (5, Behavior.Silent); (9, poison 2 (-1000.)) ],
         Inputs.uniform_cube rng ~d:2 ~n:12 ~side:8., 3L ));
      (let cfg = mk 7 2 0 1 0.01 in
       ( "D=1 poison", cfg,
         Network.sync_uniform ~delta:10, true,
         [ (2, poison 1 1e5); (5, poison 1 (-1e5)) ],
         Inputs.uniform_cube rng ~d:1 ~n:7 ~side:20., 4L ));
      (let cfg = mk 6 1 0 3 0.1 in
       ( "D=3 poison", cfg,
         Network.sync_uniform ~delta:10, true,
         [ (0, poison 3 50.) ],
         Inputs.uniform_cube rng ~d:3 ~n:6 ~side:6., 5L ));
      (let cfg = mk 11 2 2 2 0.05 in
       ( "ta=ts=2 equivocate", cfg,
         Network.sync_uniform ~delta:10, true,
         [ (4, Behavior.Equivocate (Vec.of_list [ 60.; 0. ], Vec.of_list [ 0.; 60. ]));
           (8, poison 2 (-60.)) ],
         Inputs.uniform_cube rng ~d:2 ~n:11 ~side:5., 6L ));
    ]
  in
  table_sweep (sweep_rows failures cases);
  verdict failures

let e10 () =
  header "E10  Theorem 5.19 (asynchronous, ta corruptions)";
  let failures = ref [] in
  let mk n ts ta d eps = Config.make_exn ~n ~ts ~ta ~d ~eps ~delta:10 in
  let rng = Rng.create 123L in
  let cases =
    [
      (let cfg = mk 8 2 1 2 0.05 in
       ( "starve 2 honest, 1 silent", cfg,
         Network.async_starve ~victims:(fun i -> i = 0 || i = 1) ~release:900 ~fast:4,
         false,
         [ (5, Behavior.Silent) ],
         Inputs.uniform_cube rng ~d:2 ~n:8 ~side:5., 1L ));
      (let cfg = mk 8 2 1 2 0.05 in
       ( "heavy tail, 1 poison", cfg,
         Network.async_heavy_tail ~base:12, false,
         [ (2, poison 2 300.) ],
         Inputs.two_clusters rng ~d:2 ~n:8 ~separation:10., 2L ));
      (let cfg = mk 11 2 2 2 0.05 in
       ( "ta=2: silent+poison", cfg,
         Network.async_heavy_tail ~base:10, false,
         [ (3, Behavior.Silent); (7, poison 2 (-400.)) ],
         Inputs.uniform_cube rng ~d:2 ~n:11 ~side:6., 3L ));
      (let cfg = mk 6 1 0 3 0.1 in
       ( "D=3 ta=0 heavy tail", cfg,
         Network.async_heavy_tail ~base:10, false, [],
         Inputs.uniform_cube rng ~d:3 ~n:6 ~side:6., 4L ));
    ]
  in
  table_sweep (sweep_rows failures cases);

  (* Statistical widening: one adversarial case replayed over six engine
     seeds (Scenario.replicate), so the claim rests on a distribution of
     heavy-tail schedules rather than a single draw. *)
  print_newline ();
  print_endline
    "Seed-replicated sweep: \"heavy tail, 1 poison\" over 6 scheduling \
     seeds:";
  let rep_rng = Rng.create 246L in
  let rep_base =
    Scenario.make ~name:"heavy-tail-poison" ~cfg:(mk 8 2 1 2 0.05)
      ~policy:(Network.async_heavy_tail ~base:12) ~sync_network:false
      ~corruptions:[ (2, poison 2 300.) ]
      ~inputs:(Inputs.two_clusters rep_rng ~d:2 ~n:8 ~separation:10.)
      ()
  in
  let reps =
    run_batch
      (Scenario.replicate ~seeds:[ 1L; 2L; 3L; 4L; 5L; 6L ] rep_base)
  in
  let all_ok =
    List.for_all
      (fun r -> r.Runner.live && r.Runner.valid && r.Runner.agreement)
      reps
  in
  let worst_diam =
    List.fold_left (fun acc r -> Float.max acc r.Runner.diameter) 0. reps
  in
  let msgs =
    Stats.summarize
      (List.map
         (fun r -> float_of_int r.Runner.stats.Engine.messages_sent)
         reps)
  in
  let rounds =
    Stats.summarize (List.map (fun r -> r.Runner.completion_rounds) reps)
  in
  Table.print
    ~header:[ "seeds"; "all live/valid/agree"; "worst diam"; "msgs"; "rounds" ]
    [
      [
        string_of_int (List.length reps);
        yn all_ok;
        e3 worst_diam;
        Printf.sprintf "%.0f +- %.0f" msgs.Stats.mean msgs.Stats.stddev;
        Printf.sprintf "%.1f +- %.1f" rounds.Stats.mean rounds.Stats.stddev;
      ];
    ];
  ignore (check all_ok "replicated heavy-tail sweep had a failing seed" failures);
  verdict failures

(* ------------------------------------------------------------------ *)
(* E11: the resilience trade-off boundary                              *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11  Resilience boundary: (D+1)*ts + ta < n is tight";
  let failures = ref [] in
  let rng = Rng.create 321L in
  let rows =
    List.concat_map
      (fun (d, ts, ta) ->
        let n_min = ((d + 1) * ts) + ta + 1 in
        let n_ok = max n_min ((3 * ts) + 1) in
        (* feasibility at the boundary *)
        let below = Config.make ~n:(n_ok - 1) ~ts ~ta ~d ~eps:0.1 ~delta:10 in
        let at = Config.make ~n:n_ok ~ts ~ta ~d ~eps:0.1 ~delta:10 in
        ignore
          (check (Result.is_error below)
             (Printf.sprintf "D=%d ts=%d ta=%d: n-1 accepted" d ts ta)
             failures);
        ignore
          (check (Result.is_ok at)
             (Printf.sprintf "D=%d ts=%d ta=%d: minimal n rejected" d ts ta)
             failures);
        match at with
        | Error _ -> []
        | Ok cfg ->
            (* run at minimal n with a full-budget adversary *)
            let inputs = Inputs.uniform_cube rng ~d ~n:n_ok ~side:5. in
            let corruptions =
              List.init ts (fun i ->
                  ( i * (n_ok / max 1 ts),
                    if i mod 2 = 0 then poison d 1000. else Behavior.Silent ))
            in
            let r =
              Runner.run
                (Scenario.make
                   ~name:(Printf.sprintf "min-n D=%d" d)
                   ~cfg ~inputs ~corruptions
                   ~policy:(Network.sync_uniform ~delta:10)
                   ())
            in
            let ok = r.Runner.live && r.Runner.valid && r.Runner.agreement in
            ignore
              (check ok
                 (Printf.sprintf "D=%d ts=%d ta=%d: minimal-n run failed" d ts ta)
                 failures);
            [
              [
                string_of_int d;
                string_of_int ts;
                string_of_int ta;
                string_of_int n_ok;
                yn (Result.is_error below);
                yn ok;
              ];
            ])
      [ (1, 1, 0); (1, 1, 1); (2, 1, 0); (2, 1, 1); (2, 2, 1); (2, 2, 2); (3, 1, 1); (3, 2, 0) ]
  in
  Table.print
    ~header:
      [ "D"; "ts"; "ta"; "minimal n"; "n-1 rejected"; "protocol ok at minimal n" ]
    rows;
  print_endline
    "\nBelow the bound the Theorem 3.1/3.2 scenarios force disagreement\n\
     (see E1/E2); at the minimal feasible n the protocol withstands a\n\
     full-budget adversary.";
  verdict failures

(* ------------------------------------------------------------------ *)
(* E12: comparison with the pure-sync and pure-async baselines          *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12  Hybrid vs pure-synchronous vs pure-asynchronous";
  let failures = ref [] in
  let n = 8 and d = 2 and delta = 10 and eps = 0.05 in
  let ts = 2 and ta = 1 in
  let cfg = Config.make_exn ~n ~ts ~ta ~d ~eps ~delta in
  let rng = Rng.create 777L in
  let inputs = Inputs.uniform_cube rng ~d ~n ~side:10. in
  let far = Vec.of_list [ 500.; -500. ] in
  let async_t = (n - 1) / (d + 2) in
  (* = 1: the best a pure-async protocol can tolerate at n = 8, D = 2 *)
  let rounds = Baseline_runner.rounds_for ~eps ~inputs in

  (* Setting A: synchronous network, f = ts = 2 poison corruptions. *)
  let corr_sync = [ (1, Baseline_runner.Poison far); (5, Baseline_runner.Poison far) ] in
  let hybrid_a =
    Runner.run
      (Scenario.make ~name:"hybrid" ~cfg ~inputs
         ~policy:(Network.sync_uniform ~delta)
         ~corruptions:
           [ (1, Behavior.Honest_with_input far); (5, Behavior.Honest_with_input far) ]
         ())
  in
  let sync_a =
    Baseline_runner.run_sync_baseline ~n ~t:ts ~rounds ~delta ~eps ~inputs
      ~policy:(Network.sync_uniform ~delta) ~corruptions:corr_sync ()
  in
  let async_a =
    Baseline_runner.run_async_baseline ~n ~t:async_t ~iters:rounds ~delta ~eps
      ~inputs ~policy:(Network.sync_uniform ~delta) ~corruptions:corr_sync ()
  in
  print_endline
    (Printf.sprintf
       "Setting A: synchronous, %d poison corruptions (= ts; async baseline only tolerates t = %d)"
       ts async_t);
  let row name (live, valid, agree, diam, rounds, msgs) =
    [ name; yn live; yn valid; yn agree; e3 diam; f3 rounds; string_of_int msgs ]
  in
  Table.print
    ~header:[ "protocol"; "live"; "valid"; "agree"; "diam"; "rounds"; "msgs" ]
    [
      row "hybrid (this work)"
        ( hybrid_a.Runner.live, hybrid_a.Runner.valid, hybrid_a.Runner.agreement,
          hybrid_a.Runner.diameter, hybrid_a.Runner.completion_rounds,
          hybrid_a.Runner.stats.Engine.messages_sent );
      row "pure-sync"
        ( sync_a.Baseline_runner.live, sync_a.valid, sync_a.agreement,
          sync_a.diameter, sync_a.completion_rounds,
          sync_a.stats.Engine.messages_sent );
      row "pure-async"
        ( async_a.Baseline_runner.live, async_a.valid, async_a.agreement,
          async_a.diameter, async_a.completion_rounds,
          async_a.stats.Engine.messages_sent );
    ];
  ignore
    (check
       (hybrid_a.Runner.live && hybrid_a.Runner.valid && hybrid_a.Runner.agreement)
       "setting A: hybrid failed" failures);
  ignore
    (check
       (sync_a.Baseline_runner.live && sync_a.valid && sync_a.agreement)
       "setting A: pure-sync should succeed in its home setting" failures);
  ignore
    (check
       (not (async_a.valid && async_a.agreement))
       "setting A: pure-async unexpectedly survived ts > t corruptions" failures);

  (* Setting B: asynchronous network (starvation beyond Delta), f = ta = 1. *)
  print_newline ();
  let victims i = i = 0 in
  let async_policy = Network.async_starve ~victims ~release:2000 ~fast:4 in
  let corr_async = [ (5, Baseline_runner.Mute) ] in
  let hybrid_b =
    Runner.run
      (Scenario.make ~name:"hybrid" ~cfg ~inputs ~policy:async_policy
         ~sync_network:false
         ~corruptions:[ (5, Behavior.Silent) ]
         ())
  in
  let sync_b =
    Baseline_runner.run_sync_baseline ~n ~t:ts ~rounds ~delta ~eps ~inputs
      ~policy:async_policy ~corruptions:corr_async ()
  in
  let async_b =
    Baseline_runner.run_async_baseline ~n ~t:async_t ~iters:rounds ~delta ~eps
      ~inputs ~policy:async_policy ~corruptions:corr_async ()
  in
  print_endline
    "Setting B: asynchronous (one honest party starved past Delta), 1 \
     silent corruption (= ta)";
  Table.print
    ~header:[ "protocol"; "live"; "valid"; "agree"; "diam"; "rounds"; "msgs" ]
    [
      row "hybrid (this work)"
        ( hybrid_b.Runner.live, hybrid_b.Runner.valid, hybrid_b.Runner.agreement,
          hybrid_b.Runner.diameter, hybrid_b.Runner.completion_rounds,
          hybrid_b.Runner.stats.Engine.messages_sent );
      row "pure-sync"
        ( sync_b.Baseline_runner.live, sync_b.valid, sync_b.agreement,
          sync_b.diameter, sync_b.completion_rounds,
          sync_b.stats.Engine.messages_sent );
      row "pure-async"
        ( async_b.Baseline_runner.live, async_b.valid, async_b.agreement,
          async_b.diameter, async_b.completion_rounds,
          async_b.stats.Engine.messages_sent );
    ];
  Printf.printf "pure-sync starved rounds: %d\n" sync_b.starved_rounds;
  ignore
    (check
       (hybrid_b.Runner.live && hybrid_b.Runner.valid && hybrid_b.Runner.agreement)
       "setting B: hybrid failed" failures);
  ignore
    (check
       (sync_b.starved_rounds > 0 && not sync_b.agreement)
       "setting B: pure-sync should lose agreement off-synchrony" failures);
  ignore
    (check
       (async_b.Baseline_runner.live && async_b.valid && async_b.agreement)
       "setting B: pure-async should succeed in its home setting" failures);
  print_endline
    "\nShape: only the hybrid protocol survives both settings. It pays for\n\
     hybridity with reliable-broadcast traffic (roughly the pure-async\n\
     cost), while the pure-sync baseline is an order of magnitude cheaper\n\
     but collapses off-synchrony.";
  verdict failures

(* ------------------------------------------------------------------ *)
(* E13: scaling of the iteration estimate T with eps                   *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13  Iteration estimate: T scales as log_{sqrt(7/8)}(eps / diam)";
  let failures = ref [] in
  (* One poisoned party keeps delta_max(I_e) large and fixed while eps
     sweeps over four decades; the estimate T (Theorem 5.18) must grow by
     ln 10 / ln sqrt(8/7) = 34.5 per decade of precision. *)
  let rng = Rng.create 5150L in
  (* Party 7 is corrupt: it holds a far value and joins 5 ticks late over a
     network whose upper half is Delta-slow. Its value's reliable broadcast
     then completes before the lower half's report deadline but after the
     upper half's — a deterministic report split that keeps
     delta_max(I_e) fixed and positive while eps sweeps. *)
  let inputs =
    List.mapi
      (fun i v -> if i = 7 then Vec.of_list [ 300.; -300. ] else v)
      (Inputs.uniform_cube rng ~d:2 ~n:8 ~side:10.)
  in
  let eps_points = [ 1e-1; 1e-2; 1e-3; 1e-4 ] in
  let results =
    run_batch
      (List.map
         (fun eps ->
           let cfg = Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps ~delta:10 in
           Scenario.make ~name:"e13" ~seed:7L ~cfg ~inputs
             ~policy:(Network.targeted_slow ~delta:10 ~victims:(fun i -> i >= 4))
             ~corruptions:[ (7, Behavior.Lagger 5) ]
             ())
         eps_points)
  in
  let prev_t = ref 0 in
  let deltas = ref [] in
  let rows =
    List.map2
      (fun eps r ->
        let ok = r.Runner.live && r.Runner.valid && r.Runner.agreement in
        ignore (check ok (Printf.sprintf "eps=%g run failed" eps) failures);
        let t_max =
          List.fold_left (fun acc (_, t) -> max acc t) 0 r.Runner.t_estimates
        in
        let it_out =
          List.fold_left (fun acc (_, it) -> max acc it) 0 r.Runner.output_iters
        in
        if !prev_t > 0 then deltas := (t_max - !prev_t) :: !deltas;
        prev_t := t_max;
        [
          Printf.sprintf "%g" eps;
          string_of_int t_max;
          string_of_int it_out;
          f3 r.Runner.completion_rounds;
          string_of_int r.Runner.stats.Engine.messages_sent;
          yn ok;
        ])
      eps_points results
  in
  Table.print
    ~header:[ "eps"; "max T"; "output iteration"; "rounds"; "msgs"; "ok" ]
    rows;
  let slope_ok = List.for_all (fun d -> d >= 33 && d <= 36) !deltas in
  Printf.printf
    "
T grows by %s per decade of eps; theory predicts ln 10 / ln sqrt(8/7)      = 34.5.
"
    (String.concat ", " (List.rev_map string_of_int !deltas));
  ignore (check slope_ok "T growth per decade off the predicted 34.5" failures);
  verdict failures

(* ------------------------------------------------------------------ *)
(* E14: message-complexity breakdown per primitive                     *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14  Message complexity: where the O(n^2)s go";
  let failures = ref [] in
  (* All-honest lockstep reference run: every count is exactly predictable.
     One Bracha instance with an honest sender costs n (init) + n^2 (echo)
     + n^2 (ready) sends; Pi_init runs 2n instances (values + reports);
     each iteration runs n instances plus n best-effort report broadcasts;
     every party halts at T, adding n more instances; witness sets are one
     broadcast per party. *)
  let n = 8 and d = 2 in
  let cfg = Config.make_exn ~n ~ts:2 ~ta:1 ~d ~eps:0.05 ~delta:10 in
  let inputs =
    List.init n (fun i ->
        Vec.of_list (List.init d (fun c -> float_of_int ((i + c) mod 4))))
  in
  let r =
    Runner.run
      (Scenario.make ~name:"e14" ~cfg ~inputs
         ~policy:(Network.lockstep ~delta:10) ())
  in
  ignore
    (check (r.Runner.live && r.Runner.valid && r.Runner.agreement)
       "reference run failed" failures);
  let per_instance = n + (2 * n * n) in
  let iterations =
    (* every party executes iterations 1 .. it_h + 1 in this run *)
    1 + List.fold_left (fun acc (_, it) -> max acc it) 0 r.Runner.output_iters
  in
  (* I = total Bracha instances this run: 2n (Pi_init values + reports),
     n per iteration, n halts. The step rows re-group the same I *
     (n + 2n^2) sends by Bracha phase: every instance broadcasts one init
     wave (n sends) and full echo/ready waves (n^2 each). *)
  let instances = (2 * n) + (iterations * n) + n in
  let expected =
    [
      ("Pi_init rBC", 2 * n * per_instance);
      ("iteration rBC", iterations * n * per_instance);
      ("halt rBC", n * per_instance);
      (* only the first iteration's report phase completes: in the final
         iteration parties output on halt messages (delivered ~3 rounds
         after the halt broadcast) before the report deadline fires *)
      ("oBC reports", (iterations - 1) * n * n);
      ("witness sets", n * n);
      ("baseline", 0);
      ("junk", 0);
      (* reference (unbatched) run: no combined packets, no EW traffic *)
      ("batched rBC", 0);
      ("EW direct", 0);
      ("rBC step: init", instances * n);
      ("rBC step: echo", instances * n * n);
      ("rBC step: ready", instances * n * n);
    ]
  in
  let rows =
    List.map
      (fun (name, msgs, bytes) ->
        let exp = List.assoc name expected in
        let ok = msgs = exp in
        ignore
          (check ok
             (Printf.sprintf "%s: measured %d, predicted %d" name msgs exp)
             failures);
        [
          name;
          string_of_int msgs;
          string_of_int exp;
          string_of_int bytes;
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int msgs
            /. float_of_int r.Runner.stats.Engine.messages_sent);
          yn ok;
        ])
      r.Runner.traffic
  in
  Table.print
    ~header:[ "class"; "messages"; "predicted"; "bytes"; "share"; "exact" ]
    rows;
  Printf.printf
    "\nTotal %d messages over %d iterations; one Bracha instance costs\n\
     n + 2n^2 = %d sends, and reliable broadcast accounts for ~%.0f%%\n\
     of all traffic — the price of hybrid robustness (compare E12).\n"
    r.Runner.stats.Engine.messages_sent iterations per_instance
    (100.
    *. float_of_int
         (List.fold_left
            (fun acc (name, m, _) ->
              if
                List.mem name [ "Pi_init rBC"; "iteration rBC"; "halt rBC" ]
              then acc + m
              else acc)
            0 r.Runner.traffic)
    /. float_of_int r.Runner.stats.Engine.messages_sent);
  verdict failures

(* ------------------------------------------------------------------ *)
(* E15: scalability sweep                                              *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15  Scalability: cost vs n and vs D";
  let failures = ref [] in
  (* Sweep n at D = 2 with a proportional adversary, random synchronous
     delays, several seeds per point; the E14 cost model says message
     count grows as Theta(n^3) (n Bracha instances of Theta(n^2) per
     phase). *)
  print_endline "Sweep over n (D = 2, ts = floor((n-1)/4), 4 seeds each):";
  let msg_means = ref [] in
  let rows_n =
    List.map
      (fun n ->
        let ts = max 1 (min ((n - 1) / 4) ((n - 1) / 4)) in
        let ta = max 0 (min ts (n - 1 - (3 * ts))) in
        let ta = min ta 1 in
        let cfg = Config.make_exn ~n ~ts ~ta ~d:2 ~eps:0.05 ~delta:10 in
        let seeds = [ 1; 2; 3 ] in
        let runs =
          run_batch
            (List.map
               (fun seed ->
                 let rng = Rng.create (Int64.of_int (seed * 31)) in
                 let inputs = Inputs.uniform_cube rng ~d:2 ~n ~side:8. in
                 let corruptions =
                   if ts >= 1 then
                     [ (1, Behavior.Honest_with_input (Vec.of_list [ 1e3; -1e3 ])) ]
                   else []
                 in
                 Scenario.make ~name:"e15" ~seed:(Int64.of_int seed) ~cfg
                   ~inputs ~corruptions
                   ~policy:(Network.sync_uniform ~delta:10)
                   ())
               seeds)
        in
        List.iter2
          (fun seed r ->
            ignore
              (check
                 (r.Runner.live && r.Runner.valid && r.Runner.agreement)
                 (Printf.sprintf "n=%d seed=%d failed" n seed)
                 failures))
          seeds runs;
        let msgs =
          Stats.summarize
            (List.map
               (fun r -> float_of_int r.Runner.stats.Engine.messages_sent)
               runs)
        in
        let rounds =
          Stats.summarize (List.map (fun r -> r.Runner.completion_rounds) runs)
        in
        msg_means := (n, msgs.Stats.mean) :: !msg_means;
        [
          string_of_int n;
          string_of_int ts;
          Printf.sprintf "%.0f +- %.0f" msgs.Stats.mean msgs.Stats.stddev;
          Printf.sprintf "%.1f" rounds.Stats.mean;
          Printf.sprintf "%.2f"
            (msgs.Stats.mean /. (float_of_int (n * n * n) *. 2.));
        ])
      [ 4; 6; 8; 10; 12 ]
  in
  Table.print
    ~header:[ "n"; "ts"; "messages"; "rounds"; "msgs / 2n^3" ]
    rows_n;
  (* the normalized column must be roughly flat: check the ratio between
     its extreme values stays within a factor of 4 (phases per run vary
     with the iteration count, not with n) *)
  let norms =
    List.map (fun (n, m) -> m /. float_of_int (2 * n * n * n)) !msg_means
  in
  let lo = List.fold_left Float.min infinity norms
  and hi = List.fold_left Float.max 0. norms in
  ignore
    (check (hi /. lo < 4.) "message growth deviates from Theta(n^3)" failures);
  Printf.printf
    "\nmsgs / 2n^3 stays within [%.2f, %.2f]: message complexity tracks\n\
     Theta(n^3) per run, as the E14 per-instance model predicts.\n" lo hi;

  (* Sweep D at fixed n: the protocol cost is dimension-independent on the
     wire (vectors only grow linearly); what grows is the local safe-area
     computation, benchmarked in B1. *)
  print_newline ();
  print_endline "Sweep over D (n = 10, ts = 2, ta = 1, lockstep, honest):";
  let dims = [ 1; 2; 3 ] in
  let results_d =
    run_batch
      (List.map
         (fun d ->
           let cfg = Config.make_exn ~n:10 ~ts:2 ~ta:1 ~d ~eps:0.05 ~delta:10 in
           let rng = Rng.create 17L in
           let inputs = Inputs.uniform_cube rng ~d ~n:10 ~side:5. in
           Scenario.make ~name:"e15d" ~cfg ~inputs
             ~policy:(Network.lockstep ~delta:10) ())
         dims)
  in
  let rows_d =
    List.map2
      (fun d r ->
        ignore
          (check
             (r.Runner.live && r.Runner.valid && r.Runner.agreement)
             (Printf.sprintf "D=%d failed" d)
             failures);
        [
          string_of_int d;
          string_of_int r.Runner.stats.Engine.messages_sent;
          string_of_int r.Runner.stats.Engine.bytes_sent;
          f3 r.Runner.completion_rounds;
        ])
      dims results_d
  in
  Table.print ~header:[ "D"; "messages"; "bytes"; "rounds" ] rows_d;

  (* Batched message layer: same protocol, same votes, fewer packets.
     Under lockstep every rBC echo/ready wave a party emits in a tick
     collapses into one combined packet per receiver, so the per-iteration
     packet count drops from Theta(n^3) to Theta(n^2). Outputs are
     byte-identical (test_batch's differential grid); here we measure the
     packet reduction itself. *)
  print_newline ();
  print_endline "Batched layer vs reference (D = 2, ts = 2, ta = 1, lockstep):";
  let batched_ns = [ 8; 12 ] in
  let scen_layer layer n =
    let cfg = Config.make_exn ~n ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10 in
    let rng = Rng.create (Int64.of_int (n * 977)) in
    let inputs = Inputs.uniform_cube rng ~d:2 ~n ~side:6. in
    Scenario.make
      ~name:(Printf.sprintf "e15b-%d" n)
      ~cfg ~inputs ~message_layer:layer
      ~policy:(Network.lockstep ~delta:10) ()
  in
  let ref_runs = run_batch (List.map (scen_layer `Interned) batched_ns) in
  let bat_runs = run_batch (List.map (scen_layer `Batched) batched_ns) in
  let reductions = ref [] in
  let rows_b =
    List.map2
      (fun n (r_ref, r_bat) ->
        ignore
          (check
             (r_bat.Runner.live && r_bat.Runner.valid && r_bat.Runner.agreement)
             (Printf.sprintf "batched n=%d failed" n)
             failures);
        let m_ref = r_ref.Runner.stats.Engine.messages_sent in
        let m_bat = r_bat.Runner.stats.Engine.messages_sent in
        let red = float_of_int m_ref /. float_of_int m_bat in
        reductions := (n, red) :: !reductions;
        [
          string_of_int n;
          string_of_int m_ref;
          string_of_int m_bat;
          Printf.sprintf "%.2fx" red;
        ])
      batched_ns
      (List.combine ref_runs bat_runs)
  in
  Table.print
    ~header:[ "n"; "reference pkts"; "batched pkts"; "reduction" ]
    rows_b;
  let red12 = List.assoc 12 !reductions in
  ignore
    (check (red12 >= 3.)
       (Printf.sprintf "batched reduction at n=12 is %.2fx < 3x" red12)
       failures);
  Printf.printf
    "\nPacket reduction grows with n (combined packets amortize one header\n\
     over ~n votes); at n = 12 batching already saves %.1fx.\n" red12;

  (* EW quadratic-communication protocol: no rBC at all, so one iteration
     is exactly 2n^2 direct sends (a value wave and a report wave) —
     Theta(n^2) total where the Bracha-based stack pays Theta(n^3). *)
  print_newline ();
  print_endline "EW quadratic protocol (D = 2, ta = 1, lockstep, honest):";
  let ew_ns = [ 8; 16; 32 ] in
  let ew_runs =
    run_batch
      (List.map
         (fun n ->
           let cfg =
             Config.make_exn ~n ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10
           in
           let rng = Rng.create (Int64.of_int (n * 131)) in
           let inputs = Inputs.uniform_cube rng ~d:2 ~n ~side:6. in
           Scenario.make
             ~name:(Printf.sprintf "e15ew-%d" n)
             ~cfg ~inputs ~protocol:`Ew
             ~policy:(Network.lockstep ~delta:10) ())
         ew_ns)
  in
  let ew_msgs = ref [] in
  let rows_ew =
    List.map2
      (fun n r ->
        ignore
          (check
             (r.Runner.live && r.Runner.valid && r.Runner.agreement)
             (Printf.sprintf "EW n=%d failed" n)
             failures);
        let m = r.Runner.stats.Engine.messages_sent in
        ew_msgs := (n, float_of_int m) :: !ew_msgs;
        [
          string_of_int n;
          string_of_int m;
          Printf.sprintf "%.2f" (float_of_int m /. float_of_int (n * n));
          f3 r.Runner.completion_rounds;
        ])
      ew_ns ew_runs
  in
  Table.print ~header:[ "n"; "messages"; "msgs / n^2"; "rounds" ] rows_ew;
  let m8 = List.assoc 8 !ew_msgs and m32 = List.assoc 32 !ew_msgs in
  let exponent = log (m32 /. m8) /. log 4. in
  ignore
    (check
       (exponent > 1.6 && exponent < 2.4)
       (Printf.sprintf "EW message exponent %.2f outside [1.6, 2.4]" exponent)
       failures);
  Printf.printf
    "\nFitted message exponent n=8 -> n=32: %.2f — quadratic, as the\n\
     direct-broadcast structure (2n^2 sends per iteration) dictates.\n"
    exponent;
  verdict failures

(* ------------------------------------------------------------------ *)
(* E16: what the Pi_init estimation round buys                         *)
(* ------------------------------------------------------------------ *)

(* A bare runner for the Fixed_t party mode (the known-bounds variant of
   [20, 29]); the scenario runner always uses the paper's Estimate mode. *)
let run_fixed_mode ~cfg ~inputs ~tt ~policy ~seed =
  let engine =
    Engine.create ~seed ~size_of:Message.size_of ~n:cfg.Config.n ~policy ()
  in
  let parties =
    List.init cfg.Config.n (fun i ->
        Party.attach ~mode:(Party.Fixed_t tt) ~cfg ~me:i engine)
  in
  List.iteri (fun i p -> Party.start p (List.nth inputs i)) parties;
  Engine.run engine;
  let outs = List.filter_map Party.output parties in
  let time =
    List.fold_left
      (fun acc p -> match Party.output_time p with Some t -> max acc t | None -> acc)
      0 parties
  in
  ( List.length outs = cfg.Config.n,
    Vec.diameter outs,
    float_of_int time /. float_of_int cfg.Config.delta,
    (Engine.stats engine).Engine.messages_sent )

let e16 () =
  header "E16  Ablation: Pi_init vs the known-input-bounds variant";
  let failures = ref [] in
  let cfg = Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10 in
  let rng = Rng.create 777L in
  let inputs = Inputs.two_clusters rng ~d:2 ~n:8 ~separation:10. in
  let t_true = Baseline_runner.rounds_for ~eps:cfg.Config.eps ~inputs in

  (* Part 1 — cost, synchronous lockstep, honest: skipping Pi_init saves
     its 8 rounds and its reliable-broadcast traffic. *)
  let r_paper =
    Runner.run
      (Scenario.make ~name:"e16" ~cfg ~inputs
         ~policy:(Network.lockstep ~delta:10) ())
  in
  let ok_f, diam_f, rounds_f, msgs_f =
    run_fixed_mode ~cfg ~inputs ~tt:t_true
      ~policy:(Network.lockstep ~delta:10) ~seed:1L
  in
  print_endline "Cost under synchrony (honest, lockstep):";
  Table.print
    ~header:[ "variant"; "prior knowledge"; "agree"; "rounds"; "msgs" ]
    [
      [
        "Pi_init estimation (paper)"; "none";
        yn r_paper.Runner.agreement;
        f3 r_paper.Runner.completion_rounds;
        string_of_int r_paper.Runner.stats.Engine.messages_sent;
      ];
      [
        Printf.sprintf "Fixed T = %d (known bounds)" t_true;
        "input diameter";
        yn (ok_f && diam_f <= cfg.Config.eps);
        f3 rounds_f;
        string_of_int msgs_f;
      ];
    ];
  ignore
    (check r_paper.Runner.agreement "paper variant failed" failures);
  ignore (check (ok_f && diam_f <= cfg.Config.eps) "fixed-T variant failed" failures);

  (* Part 2 — safety: a mis-estimated bound (T = 1, i.e. the inputs were
     assumed nearly agreed already) breaks agreement under asynchrony,
     while the estimating protocol cannot be mis-configured. *)
  print_newline ();
  print_endline
    "Safety under asynchrony (heavy-tail scheduling, 3 seeds; worst output
     diameter):";
  let seeds = [ 2L; 3L; 4L ] in
  let worst_fixed1 = ref 0. and worst_paper = ref 0. in
  List.iter
    (fun seed ->
      let _, d1, _, _ =
        run_fixed_mode ~cfg ~inputs ~tt:1
          ~policy:(Network.async_heavy_tail ~base:60) ~seed
      in
      worst_fixed1 := Float.max !worst_fixed1 d1)
    seeds;
  List.iter
    (fun rp ->
      ignore
        (check
           (rp.Runner.live && rp.Runner.valid && rp.Runner.agreement)
           "paper variant failed under heavy tail" failures);
      worst_paper := Float.max !worst_paper rp.Runner.diameter)
    (run_batch
       (List.map
          (fun seed ->
            Scenario.make ~name:"e16a" ~seed ~cfg ~inputs ~sync_network:false
              ~policy:(Network.async_heavy_tail ~base:60) ())
          seeds));
  Table.print
    ~header:[ "variant"; "worst diameter"; "eps"; "agreement" ]
    [
      [ "Pi_init estimation (paper)"; e3 !worst_paper; "0.05";
        yn (!worst_paper <= cfg.Config.eps) ];
      [ "Fixed T = 1 (wrong bound)"; e3 !worst_fixed1; "0.05";
        yn (!worst_fixed1 <= cfg.Config.eps) ];
    ];
  ignore
    (check
       (!worst_fixed1 > cfg.Config.eps)
       "mis-configured fixed-T variant unexpectedly survived" failures);
  print_endline
    "\nPi_init wins on both axes. Safety: it removes the a-priori-bounds\n\
     assumption entirely, while a wrong bound makes the fixed-T variant\n\
     halt too early and violate eps-agreement. Cost: its estimations adapt\n\
     to the actual spread after one information exchange, so runs finish in\n\
     a handful of iterations, whereas a fixed T must be provisioned for the\n\
     worst case and then dutifully burns all of it.";
  verdict failures

(* ------------------------------------------------------------------ *)
(* E17: update-kernel head-to-head — midpoint vs centroid              *)
(* ------------------------------------------------------------------ *)

(* Wall-clock for this pairing lives in the bench suite (the B13 group
   and the b13_* derived keys of BENCH_lp.json); this report sticks to
   deterministic counters — estimated T, halt iteration, Δ-rounds, final
   diameter — so the output is byte-identical on every host and for any
   --domains. Both kernels adopt points of the same safe areas, so the
   paper's three properties must hold for both; the centroid rule skips
   the per-iteration diameter query but contracts without the midpoint
   rule's √(7/8) guarantee, and the interesting number is how many extra
   halting iterations (if any) that costs on the same workload. *)
let e17 () =
  header "E17  Update kernels: safe-area midpoint vs centroid";
  let failures = ref [] in
  let n = 8 in
  let dims = [ 1; 2; 3; 4 ] in
  let kernels = [ (`Safe_area, "midpoint"); (`Centroid, "centroid") ] in
  let scen ~d ~kernel =
    let cfg = Config.make_exn ~n ~ts:1 ~ta:1 ~d ~eps:0.05 ~delta:10 in
    (* E13's report-split device: a far-valued lagger over a half-slow
       network keeps delta_max(I_e) large, so T lands in the tens and the
       iteration phase actually exercises the contraction of each kernel.
       Under plain lockstep every party assembles the same report
       multiset, all estimations coincide, and T collapses to 1 — no
       kernel difference would be observable. *)
    let rng = Rng.create 4242L in
    let inputs =
      List.mapi
        (fun i v ->
          if i = n - 1 then
            Vec.of_list
              (List.init d (fun c -> if c mod 2 = 0 then 300. else -300.))
          else v)
        (Inputs.uniform_cube rng ~d ~n ~side:4.)
    in
    Scenario.make
      ~name:(Printf.sprintf "e17-d%d" d)
      ~seed:7L ~cfg ~inputs ~update_kernel:kernel
      ~corruptions:[ (n - 1, Behavior.Lagger 5) ]
      ~policy:(Network.targeted_slow ~delta:10 ~victims:(fun i -> i >= 4))
      ()
  in
  let cases =
    List.concat_map
      (fun d -> List.map (fun (k, kn) -> (d, kn, scen ~d ~kernel:k)) kernels)
      dims
  in
  let results = run_batch (List.map (fun (_, _, s) -> s) cases) in
  let rows =
    List.map2
      (fun (d, kn, _) r ->
        let imax sel = List.fold_left (fun a (_, v) -> max a (sel v)) 0 in
        let tt = imax Fun.id r.Runner.t_estimates in
        let halt = imax Fun.id r.Runner.output_iters in
        let ok = r.Runner.live && r.Runner.valid && r.Runner.agreement in
        ignore
          (check ok
             (Printf.sprintf "d=%d %s kernel violated a property" d kn)
             failures);
        [
          string_of_int d; kn; string_of_int tt; string_of_int halt;
          f3 r.Runner.completion_rounds; e3 r.Runner.diameter; yn ok;
        ])
      cases results
  in
  Table.print
    ~header:[ "D"; "kernel"; "T est"; "halt iter"; "rounds"; "diameter"; "ok" ]
    rows;
  print_endline
    "\nSame workload (uniform cube plus one far-valued lagger), same\n\
     Pi_init information exchange — only the update rule differs. Both\n\
     kernels satisfy Validity, eps-Agreement and Liveness on every row:\n\
     the centroid is a point of the same safe area the midpoint rule\n\
     uses, so per-iteration containment is inherited, and its iteration\n\
     estimate is computed with the kernel it iterates with. The midpoint\n\
     rule carries the paper's sqrt(7/8) contraction guarantee; the\n\
     centroid rule matches it empirically here (D=1 it IS the midpoint\n\
     rule), trading the per-iteration diameter query for a guarantee-free\n\
     contraction constant. Wall-clock: BENCH_lp.json b13_* keys.";
  verdict failures

(* ------------------------------------------------------------------ *)

let all =
  [
    ("e1", "Figure 1 / Theorem 3.1 lower bound", e1);
    ("e2", "Theorem 3.2 async lower bound", e2);
    ("e3", "Figure 2 safe-area worked example", e3_run);
    ("e4", "Theorem 4.2 reliable broadcast", e4);
    ("e5", "Theorem 4.4 overlap broadcast", e5);
    ("e6", "Lemmas 5.5-5.8 safe-area invariants", e6);
    ("e7", "Lemma 5.15 contraction", e7);
    ("e8", "Theorem 5.18 Pi_init", e8);
    ("e9", "Theorem 5.19 sync end-to-end", e9);
    ("e10", "Theorem 5.19 async end-to-end", e10);
    ("e11", "Resilience boundary", e11);
    ("e12", "Baseline comparison", e12);
    ("e13", "Iteration-estimate scaling", e13);
    ("e14", "Message-complexity breakdown", e14);
    ("e15", "Scalability sweep", e15);
    ("e16", "Pi_init ablation", e16);
    ("e17", "Update-kernel head-to-head", e17);
  ]

let find_opt id =
  List.find_opt (fun (i, _, _) -> i = id) all
  |> Option.map (fun (_, _, f) -> f)

let run_one id =
  match find_opt id with
  | Some f -> f ()
  | None -> raise Not_found

let run_all () =
  let results = List.map (fun (id, _, f) -> (id, f ())) all in
  print_newline ();
  print_endline "=== SUMMARY ===";
  List.iter
    (fun (id, ok) -> Printf.printf "  %-4s %s\n" id (if ok then "PASS" else "FAIL"))
    results;
  List.for_all snd results
