(** Sim-as-oracle differential harness for the networked runtime.

    Every pinned-grid scenario runs three times: on the simulator
    backend, on the loopback TCP backend ({!Netrun}), and on the TCP
    backend under frame-level chaos ({!Wire_chaos}). The net backend is
    exact w.r.t. the engine schedule by construction, so the contract is
    the strongest one possible: after masking the transport tag and the
    (kernel-scheduling-dependent) wire statistics, the three {!Runner}
    results must be {e structurally identical} — outputs, iteration
    trajectories, engine statistics, traffic tables and the online
    {!Monitor} verdict alike. Any frame the perfect link fails to mask,
    any message lost or duplicated at the logical layer, shows up as a
    mismatch here. *)

type verdict = {
  name : string;
  net_ok : bool;  (** plain net run identical to the sim oracle *)
  chaos_ok : bool;  (** chaos net run identical to the sim oracle *)
  monitor_clean : bool;
      (** the chaos run's monitor recorded zero violations *)
  detail : string option;  (** first differing field on any mismatch *)
  wire : Netrun.wire_stats;  (** plain net run *)
  chaos_wire : Netrun.wire_stats;  (** chaos net run *)
}

type report = {
  verdicts : verdict list;
  cases : int;
  failures : int;  (** verdicts with any of the three checks false *)
}

val pinned_grid : unit -> Scenario.t list
(** The pinned differential grid: configs (D, n, ts, ta) ∈ {(1,4,1,0),
    (1,8,2,1), (2,4,1,0), (2,8,2,1)}, sync runs under lockstep and
    sync-uniform policies, async runs under async-uniform, each with no
    corruption, budget-many [Silent] parties, and budget-many
    input-poisoning ([Honest_with_input]) parties (corruption arms are
    skipped where the mode's budget is zero). Seeds, inputs and policies
    are all pinned — the grid is identical on every invocation. *)

val default_wire_chaos : Wire_chaos.plan
(** The chaos arm's frame-fault plan: 15% drop, 10% duplicate, 10%
    reorder (hold 3) on every directed link, a delay spike on links out
    of party 0, and one connection flap on the (0,1) pair. *)

val run_case : Scenario.t -> verdict
(** Runs the three arms for one scenario (the scenario's [transport] is
    overridden per-arm) and compares. The scenario's wall budget bounds
    each arm's wire pump. *)

val execute : ?log:(string -> unit) -> unit -> report
(** {!run_case} over {!pinned_grid}, in order. [log] (default silent)
    receives a one-line progress message per case. *)

val passed : report -> bool

val pp : Format.formatter -> report -> unit
