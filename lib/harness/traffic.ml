type klass =
  | Init_rbc
  | Iteration_rbc
  | Halt_rbc
  | Obc_reports
  | Witness_sets
  | Baseline
  | Junk

let klass_of = function
  | Message.Rbc ({ tag = Message.Init_value | Message.Init_report; _ }, _, _) ->
      Init_rbc
  | Message.Rbc ({ tag = Message.Obc_value _; _ }, _, _) -> Iteration_rbc
  | Message.Rbc ({ tag = Message.Halt _; _ }, _, _) -> Halt_rbc
  | Message.Rbc ({ tag = Message.Async_value _ | Message.Async_report _; _ }, _, _)
  | Message.Sync_round _ ->
      Baseline
  | Message.Obc_report _ -> Obc_reports
  | Message.Witness_set _ -> Witness_sets
  | Message.Junk _ -> Junk

let klass_name = function
  | Init_rbc -> "Pi_init rBC"
  | Iteration_rbc -> "iteration rBC"
  | Halt_rbc -> "halt rBC"
  | Obc_reports -> "oBC reports"
  | Witness_sets -> "witness sets"
  | Baseline -> "baseline"
  | Junk -> "junk"

let all_klasses =
  [ Init_rbc; Iteration_rbc; Halt_rbc; Obc_reports; Witness_sets; Baseline; Junk ]

let index = function
  | Init_rbc -> 0
  | Iteration_rbc -> 1
  | Halt_rbc -> 2
  | Obc_reports -> 3
  | Witness_sets -> 4
  | Baseline -> 5
  | Junk -> 6

type t = { counts : int array; byte_counts : int array }

let create () = { counts = Array.make 7 0; byte_counts = Array.make 7 0 }

let observe t = function
  | Engine.Sent { msg; _ } ->
      let i = index (klass_of msg) in
      t.counts.(i) <- t.counts.(i) + 1;
      t.byte_counts.(i) <- t.byte_counts.(i) + Message.size_of msg
  | Engine.Delivered _ | Engine.Timer_fired _ | Engine.Party_failed _ -> ()

let attach t engine = Engine.set_tracer engine (observe t)

let count t k = t.counts.(index k)
let bytes t k = t.byte_counts.(index k)
let total t = Array.fold_left ( + ) 0 t.counts

let to_rows t =
  List.map (fun k -> (klass_name k, count t k, bytes t k)) all_klasses
