type klass =
  | Init_rbc
  | Iteration_rbc
  | Halt_rbc
  | Obc_reports
  | Witness_sets
  | Baseline
  | Junk
  | Batched_rbc
  | Ew
  | Step_init
  | Step_echo
  | Step_ready

let klass_of = function
  | Message.Rbc ({ tag = Message.Init_value | Message.Init_report; _ }, _, _) ->
      Init_rbc
  | Message.Rbc ({ tag = Message.Obc_value _; _ }, _, _) -> Iteration_rbc
  | Message.Rbc ({ tag = Message.Halt _; _ }, _, _) -> Halt_rbc
  | Message.Rbc ({ tag = Message.Async_value _ | Message.Async_report _; _ }, _, _)
  | Message.Sync_round _ ->
      Baseline
  | Message.Rbc_batch _ -> Batched_rbc
  | Message.Ew_value _ | Message.Ew_echo _ | Message.Ew_report _ -> Ew
  | Message.Obc_report _ -> Obc_reports
  | Message.Witness_set _ -> Witness_sets
  | Message.Junk _ -> Junk

let klass_name = function
  | Init_rbc -> "Pi_init rBC"
  | Iteration_rbc -> "iteration rBC"
  | Halt_rbc -> "halt rBC"
  | Obc_reports -> "oBC reports"
  | Witness_sets -> "witness sets"
  | Baseline -> "baseline"
  | Junk -> "junk"
  | Batched_rbc -> "batched rBC"
  | Ew -> "EW direct"
  | Step_init -> "rBC step: init"
  | Step_echo -> "rBC step: echo"
  | Step_ready -> "rBC step: ready"

let all_klasses =
  [
    Init_rbc;
    Iteration_rbc;
    Halt_rbc;
    Obc_reports;
    Witness_sets;
    Baseline;
    Junk;
    Batched_rbc;
    Ew;
    Step_init;
    Step_echo;
    Step_ready;
  ]

let index = function
  | Init_rbc -> 0
  | Iteration_rbc -> 1
  | Halt_rbc -> 2
  | Obc_reports -> 3
  | Witness_sets -> 4
  | Baseline -> 5
  | Junk -> 6
  | Batched_rbc -> 7
  | Ew -> 8
  | Step_init -> 9
  | Step_echo -> 10
  | Step_ready -> 11

let num_klasses = 12

let step_index = function
  | Message.Init -> index Step_init
  | Message.Echo -> index Step_echo
  | Message.Ready -> index Step_ready

(* The accounting fold behind both the tracer path and the engine's
   send-path counters. Physical classes (0..8) partition the messages;
   the step classes (9..11) additionally attribute every logical rBC
   vote — whether it travelled standalone or inside a batch — to its
   Bracha step, so the two groupings overlap by design. *)
let classify_into msg emit =
  match msg with
  | Message.Rbc (_, step, _) as m ->
      let sz = Message.size_of m in
      emit (index (klass_of m)) sz;
      emit (step_index step) sz
  | Message.Rbc_batch entries as m ->
      emit (index Batched_rbc) (Message.size_of m);
      List.iter
        (fun ((_, step, _) as e) ->
          emit (step_index step) (Message.size_of_entry e))
        entries
  | m -> emit (index (klass_of m)) (Message.size_of m)

type t = { counts : int array; byte_counts : int array }

let create () =
  { counts = Array.make num_klasses 0; byte_counts = Array.make num_klasses 0 }

let record t i bytes =
  t.counts.(i) <- t.counts.(i) + 1;
  t.byte_counts.(i) <- t.byte_counts.(i) + bytes

let observe t = function
  | Engine.Sent { msg; _ } -> classify_into msg (record t)
  | Engine.Delivered _ | Engine.Timer_fired _ | Engine.Party_failed _ -> ()

let attach t engine = Engine.set_tracer engine (observe t)

let of_engine engine =
  { counts = Engine.class_messages engine; byte_counts = Engine.class_bytes engine }

let count t k = t.counts.(index k)
let bytes t k = t.byte_counts.(index k)

(* Total over the physical classes only — the step rows re-count rBC
   votes in a second grouping and must not inflate the sum. *)
let total t =
  let acc = ref 0 in
  for i = 0 to index Ew do
    acc := !acc + t.counts.(i)
  done;
  !acc

let to_rows t =
  List.map (fun k -> (klass_name k, count t k, bytes t k)) all_klasses
