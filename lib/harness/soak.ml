type config = {
  cases : int;
  seed : int64;
  domains : int;
  mutant : Party.mutant option;
  max_shrink : int;
}

let default =
  { cases = 500; seed = 7L; domains = 1; mutant = None; max_shrink = 200 }

let mutant_to_string = function
  | None -> "none"
  | Some Party.Non_contracting_update -> "non-contracting"
  | Some Party.Premature_output -> "premature-output"

let mutant_of_string = function
  | "none" -> Ok None
  | "non-contracting" -> Ok (Some Party.Non_contracting_update)
  | "premature-output" -> Ok (Some Party.Premature_output)
  | s ->
      Error
        (Printf.sprintf
           "unknown mutant %S (expected none|non-contracting|premature-output)"
           s)

type violating_case = {
  vc_name : string;
  vc_seed : int64;
  vc_sync : bool;
  vc_invariants : string list;
  vc_violations : Monitor.violation list;
  vc_plan : Fault_plan.t;
  vc_shrunk : Fault_shrink.outcome;
}

type outcome = {
  total : int;
  sync_cases : int;
  async_cases : int;
  checks : int;
  counts : (string * int) list;
  violations_total : int;
  missing_outputs : int;
  party_failures : int;
  worst_diameter : float;
  worst_diameter_eps : float;
  worst_diameter_case : string;
  violating : violating_case list;
}

(* Configs at the paper's resilience bounds ((D+1)·ts + ta < n, n > 3·ts);
   the last is tight: 3·2 + 2 = 8 = n − 1. *)
let grid_configs =
  [
    Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10;
    Config.make_exn ~n:6 ~ts:1 ~ta:1 ~d:1 ~eps:0.02 ~delta:8;
    Config.make_exn ~n:9 ~ts:2 ~ta:2 ~d:2 ~eps:0.1 ~delta:10;
  ]

let sample_inputs rng (cfg : Config.t) =
  let d = cfg.Config.d and n = cfg.Config.n in
  match Rng.int rng 4 with
  | 0 -> Inputs.simplex_corners ~d ~scale:10. ~n
  | 1 -> Inputs.uniform_cube rng ~d ~n ~side:5.
  | 2 -> Inputs.two_clusters rng ~d ~n ~separation:8.
  | _ -> Inputs.gaussian_cluster rng ~d ~n ~center:(Vec.make d 1.) ~spread:2.

let sample_policy rng ~sync ~static (cfg : Config.t) =
  let delta = cfg.Config.delta in
  if sync then
    match Rng.int rng 3 with
    | 0 -> Network.lockstep ~delta
    | 1 -> Network.sync_uniform ~delta
    | _ -> Network.rushing ~delta ~corrupt:(fun p -> List.mem p static)
  else
    match Rng.int rng 2 with
    | 0 -> Network.async_uniform ~max_delay:(4 * delta)
    | _ -> Network.async_heavy_tail ~base:delta

let build_case ~mutant rng i =
  let cfg = List.nth grid_configs (Rng.int rng (List.length grid_configs)) in
  let sync = i mod 2 = 0 in
  let horizon = 40 * cfg.Config.delta in
  let inputs = sample_inputs rng cfg in
  let budget = if sync then cfg.Config.ts else cfg.Config.ta in
  let n_static = Rng.int rng (budget + 1) in
  let ids = Array.init cfg.Config.n Fun.id in
  Rng.shuffle rng ids;
  let static = Array.to_list (Array.sub ids 0 n_static) in
  let corruptions =
    List.map (fun p -> (p, Fault_gen.behaviors_menu rng ~cfg ~horizon ~tick:0)) static
  in
  let chaos = Fault_gen.sample rng ~cfg ~sync ~existing:static ~horizon in
  let policy = sample_policy rng ~sync ~static cfg in
  let seed = Rng.next_int64 rng in
  Scenario.make
    ~name:(Printf.sprintf "soak-%04d" i)
    ~seed ~policy ~sync_network:sync ~corruptions ~chaos ?mutant ~isolate:true
    ~cfg ~inputs ()

let build_scenarios config =
  let master = Rng.create config.seed in
  let rec go i acc =
    if i >= config.cases then List.rev acc
    else
      (* split first so each case owns an independent stream derived only
         from the master's position, not from earlier cases' draw counts *)
      let rng = Rng.split master in
      go (i + 1) (build_case ~mutant:config.mutant rng i :: acc)
  in
  go 0 []

let violated_invariants (m : Monitor.summary) =
  List.filter_map
    (fun (name, c) -> if c > 0 then Some name else None)
    m.Monitor.counts

let shrink_case ~max_shrink (scen : Scenario.t) (m : Monitor.summary) =
  let target = violated_invariants m in
  let reproduces plan' =
    let r = Runner.run ~monitor:true { scen with Scenario.chaos = Some plan' } in
    match r.Runner.monitor with
    | Some m' ->
        List.exists
          (fun (name, c) -> c > 0 && List.mem name target)
          m'.Monitor.counts
    | None -> false
  in
  let plan = Option.value scen.Scenario.chaos ~default:[] in
  Fault_shrink.shrink ~max_tries:max_shrink ~reproduces plan

let monitor_exn name = function
  | Some (m : Monitor.summary) -> m
  | None -> invalid_arg ("Soak: no monitor summary for " ^ name)

let execute config =
  let scenarios = build_scenarios config in
  let results =
    Runner.run_batch ~domains:config.domains ~monitor:true scenarios
  in
  let pairs =
    List.map2
      (fun (s : Scenario.t) (r : Runner.result) ->
        (s, r, monitor_exn s.Scenario.name r.Runner.monitor))
      scenarios results
  in
  let sum f = List.fold_left (fun acc (_, r, m) -> acc + f r m) 0 pairs in
  let checks = sum (fun _ (m : Monitor.summary) -> m.Monitor.checks) in
  let counts =
    List.map
      (fun inv ->
        let name = Monitor.invariant_name inv in
        ( name,
          sum (fun _ (m : Monitor.summary) ->
              match List.assoc_opt name m.Monitor.counts with
              | Some c -> c
              | None -> 0) ))
      Monitor.all_invariants
  in
  let violations_total = List.fold_left (fun a (_, c) -> a + c) 0 counts in
  let missing_outputs =
    sum (fun _ (m : Monitor.summary) ->
        m.Monitor.honest_expected - m.Monitor.honest_outputs)
  in
  let party_failures =
    sum (fun (r : Runner.result) _ -> r.Runner.stats.Engine.party_failures)
  in
  let worst_diameter, worst_diameter_eps, worst_diameter_case =
    List.fold_left
      (fun ((best, _, _) as acc) ((s : Scenario.t), _, (m : Monitor.summary)) ->
        if m.Monitor.final_diameter > best then
          (m.Monitor.final_diameter, m.Monitor.eps, s.Scenario.name)
        else acc)
      (-1., 0., "") pairs
  in
  let violating =
    List.filter_map
      (fun ((s : Scenario.t), _, (m : Monitor.summary)) ->
        if Monitor.total_violations m = 0 then None
        else
          let shrunk = shrink_case ~max_shrink:config.max_shrink s m in
          Some
            {
              vc_name = s.Scenario.name;
              vc_seed = s.Scenario.seed;
              vc_sync = s.Scenario.sync_network;
              vc_invariants = violated_invariants m;
              vc_violations = m.Monitor.violations;
              vc_plan = Option.value s.Scenario.chaos ~default:[];
              vc_shrunk = shrunk;
            })
      pairs
  in
  let sync_cases =
    List.length (List.filter (fun (s, _, _) -> s.Scenario.sync_network) pairs)
  in
  {
    total = List.length pairs;
    sync_cases;
    async_cases = List.length pairs - sync_cases;
    checks;
    counts;
    violations_total;
    missing_outputs;
    party_failures;
    worst_diameter = (if worst_diameter < 0. then 0. else worst_diameter);
    worst_diameter_eps;
    worst_diameter_case;
    violating;
  }

(* -- JSON report -- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let json_strings lst =
  "[" ^ String.concat ", " (List.map (fun s -> "\"" ^ json_escape s ^ "\"") lst)
  ^ "]"

(* No wall-clock values and no [domains]-dependent fields: the document must
   be byte-identical for any worker count (tested in test_chaos.ml). *)
let to_json config (o : outcome) =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "{\n";
  out "  \"schema\": \"maaa-soak/1\",\n";
  out "  \"seed\": %Ld,\n" config.seed;
  out "  \"mutant\": \"%s\",\n" (mutant_to_string config.mutant);
  out "  \"cases\": %d,\n" o.total;
  out "  \"sync_cases\": %d,\n" o.sync_cases;
  out "  \"async_cases\": %d,\n" o.async_cases;
  out "  \"checks\": %d,\n" o.checks;
  out "  \"violations_total\": %d,\n" o.violations_total;
  out "  \"invariants\": {%s},\n"
    (String.concat ", "
       (List.map
          (fun (name, c) -> Printf.sprintf "\"%s\": %d" (json_escape name) c)
          o.counts));
  out "  \"missing_outputs\": %d,\n" o.missing_outputs;
  out "  \"party_failures\": %d,\n" o.party_failures;
  out "  \"worst_final_diameter\": {\"case\": \"%s\", \"value\": %s, \"eps\": %s},\n"
    (json_escape o.worst_diameter_case)
    (json_float o.worst_diameter)
    (json_float o.worst_diameter_eps);
  out "  \"violating_cases\": [";
  List.iteri
    (fun k vc ->
      if k > 0 then out ",";
      out "\n    {\n";
      out "      \"name\": \"%s\",\n" (json_escape vc.vc_name);
      out "      \"seed\": %Ld,\n" vc.vc_seed;
      out "      \"sync\": %b,\n" vc.vc_sync;
      out "      \"invariants\": %s,\n" (json_strings vc.vc_invariants);
      out "      \"violations\": %d,\n" (List.length vc.vc_violations);
      (match vc.vc_violations with
      | [] -> ()
      | v :: _ ->
          out "      \"first_violation\": \"%s\",\n"
            (json_escape
               (Printf.sprintf "[%s] party=%d t=%d %s"
                  (Monitor.invariant_name v.Monitor.invariant)
                  v.Monitor.party v.Monitor.time v.Monitor.detail)));
      out "      \"plan\": %s,\n" (json_strings (Fault_plan.to_strings vc.vc_plan));
      out "      \"shrunk_plan\": %s,\n"
        (json_strings (Fault_plan.to_strings vc.vc_shrunk.Fault_shrink.plan));
      out "      \"shrink_tries\": %d,\n" vc.vc_shrunk.Fault_shrink.tries;
      out "      \"shrink_minimal\": %b\n" vc.vc_shrunk.Fault_shrink.minimal;
      out "    }")
    o.violating;
  if o.violating <> [] then out "\n  ";
  out "]\n";
  out "}\n";
  Buffer.contents b

let pp ppf (o : outcome) =
  Format.fprintf ppf
    "soak: %d cases (%d sync, %d async), %d checks, %d violations@."
    o.total o.sync_cases o.async_cases o.checks o.violations_total;
  List.iter
    (fun (name, c) -> Format.fprintf ppf "  %-18s %d@." name c)
    o.counts;
  Format.fprintf ppf "  missing outputs: %d, isolated failures: %d@."
    o.missing_outputs o.party_failures;
  if o.worst_diameter_case <> "" then
    Format.fprintf ppf "  worst final diameter: %.3e (eps=%g) in %s@."
      o.worst_diameter o.worst_diameter_eps o.worst_diameter_case;
  List.iter
    (fun vc ->
      Format.fprintf ppf "  VIOLATION %s (seed=%Ld, %s): %s@." vc.vc_name
        vc.vc_seed
        (if vc.vc_sync then "sync" else "async")
        (String.concat "," vc.vc_invariants);
      List.iteri
        (fun k (v : Monitor.violation) ->
          if k < 3 then
            Format.fprintf ppf "    [%s] party=%d t=%d %s@."
              (Monitor.invariant_name v.Monitor.invariant)
              v.Monitor.party v.Monitor.time v.Monitor.detail)
        vc.vc_violations;
      Format.fprintf ppf "    plan: %s@."
        (String.concat "; " (Fault_plan.to_strings vc.vc_plan));
      Format.fprintf ppf "    shrunk (%d tries, minimal=%b): %s@."
        vc.vc_shrunk.Fault_shrink.tries vc.vc_shrunk.Fault_shrink.minimal
        (match Fault_plan.to_strings vc.vc_shrunk.Fault_shrink.plan with
        | [] -> "<empty plan — the protocol variant itself violates>"
        | atoms -> String.concat "; " atoms))
    o.violating
