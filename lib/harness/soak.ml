type config = {
  cases : int;
  seed : int64;
  domains : int;
  mutant : Party.mutant option;
  max_shrink : int;
  case_events : int;
  case_wall : float option;
  retries : int;
  stuck : int option;
  message_layer : [ `Interned | `Reference | `Batched ];
  update_kernel : Safe_cache.kernel;
  protocol : [ `Maaa | `Ew ];
  transport : [ `Sim | `Net ];
}

let default =
  {
    cases = 500;
    seed = 7L;
    domains = 1;
    mutant = None;
    max_shrink = 200;
    case_events = 10_000_000;
    case_wall = Some 300.;
    retries = 1;
    stuck = None;
    message_layer = `Interned;
    update_kernel = `Safe_area;
    protocol = `Maaa;
    transport = `Sim;
  }

let mutant_to_string = function
  | None -> "none"
  | Some Party.Non_contracting_update -> "non-contracting"
  | Some Party.Premature_output -> "premature-output"

let mutant_of_string = function
  | "none" -> Ok None
  | "non-contracting" -> Ok (Some Party.Non_contracting_update)
  | "premature-output" -> Ok (Some Party.Premature_output)
  | s ->
      Error
        (Printf.sprintf
           "unknown mutant %S (expected none|non-contracting|premature-output)"
           s)

let layer_to_string = function
  | `Interned -> "interned"
  | `Reference -> "reference"
  | `Batched -> "batched"

let layer_of_string = function
  | "interned" -> Ok `Interned
  | "reference" -> Ok `Reference
  | "batched" -> Ok `Batched
  | s ->
      Error
        (Printf.sprintf
           "unknown message layer %S (expected interned|reference|batched)" s)

let kernel_to_string = function
  | `Safe_area -> "safe-area"
  | `Centroid -> "centroid"

let kernel_of_string = function
  | "safe-area" -> Ok `Safe_area
  | "centroid" -> Ok `Centroid
  | s ->
      Error
        (Printf.sprintf
           "unknown update kernel %S (expected safe-area|centroid)" s)

let protocol_to_string = function `Maaa -> "maaa" | `Ew -> "ew"

let protocol_of_string = function
  | "maaa" -> Ok `Maaa
  | "ew" -> Ok `Ew
  | s -> Error (Printf.sprintf "unknown protocol %S (expected maaa|ew)" s)

let transport_to_string = function `Sim -> "sim" | `Net -> "net"

let transport_of_string = function
  | "sim" -> Ok `Sim
  | "net" -> Ok `Net
  | s -> Error (Printf.sprintf "unknown transport %S (expected sim|net)" s)

(* -- Per-case records ------------------------------------------------

   Everything the final report needs about one case, as plain data
   (strings, ints, floats — no closures, no plan values), so a record can
   round-trip through the journal byte-exactly and a resumed sweep
   aggregates to the same SOAK.json as an uninterrupted one. *)

type violating_detail = {
  vd_invariants : string list;
  vd_total : int;
  vd_first : string list;  (* up to 3 rendered violations *)
  vd_shrunk : string list;
  vd_tries : int;
  vd_minimal : bool;
}

type quarantine_detail = {
  qd_reason : string;
  qd_shrunk : string list;
  qd_tries : int;
  qd_minimal : bool;
}

type case_status =
  | Clean
  | Violating of violating_detail
  | Quarantined of quarantine_detail

type case_record = {
  cr_index : int;
  cr_name : string;
  cr_seed : int64;
  cr_sync : bool;
  cr_checks : int;
  cr_counts : int list;  (* aligned with Monitor.all_invariants *)
  cr_missing : int;
  cr_pfail : int;
  cr_diameter : float;
  cr_eps : float;
  cr_plan : string list;
  cr_status : case_status;
}

type violating_case = {
  vc_name : string;
  vc_seed : int64;
  vc_sync : bool;
  vc_invariants : string list;
  vc_violations : int;
  vc_first : string list;
  vc_plan : string list;
  vc_shrunk_plan : string list;
  vc_shrink_tries : int;
  vc_shrink_minimal : bool;
}

type quarantined_case = {
  qc_name : string;
  qc_seed : int64;
  qc_sync : bool;
  qc_reason : string;
  qc_plan : string list;
  qc_shrunk_plan : string list;
  qc_shrink_tries : int;
  qc_shrink_minimal : bool;
}

type outcome = {
  total : int;
  sync_cases : int;
  async_cases : int;
  checks : int;
  counts : (string * int) list;
  violations_total : int;
  missing_outputs : int;
  party_failures : int;
  worst_diameter : float;
  worst_diameter_eps : float;
  worst_diameter_case : string;
  violating : violating_case list;
  quarantined : quarantined_case list;
}

(* Configs at the paper's resilience bounds ((D+1)·ts + ta < n, n > 3·ts);
   the last is tight: 3·2 + 2 = 8 = n − 1. *)
let grid_configs =
  [
    Config.make_exn ~n:8 ~ts:2 ~ta:1 ~d:2 ~eps:0.05 ~delta:10;
    Config.make_exn ~n:6 ~ts:1 ~ta:1 ~d:1 ~eps:0.02 ~delta:8;
    Config.make_exn ~n:9 ~ts:2 ~ta:2 ~d:2 ~eps:0.1 ~delta:10;
  ]

let sample_inputs rng (cfg : Config.t) =
  let d = cfg.Config.d and n = cfg.Config.n in
  match Rng.int rng 4 with
  | 0 -> Inputs.simplex_corners ~d ~scale:10. ~n
  | 1 -> Inputs.uniform_cube rng ~d ~n ~side:5.
  | 2 -> Inputs.two_clusters rng ~d ~n ~separation:8.
  | _ -> Inputs.gaussian_cluster rng ~d ~n ~center:(Vec.make d 1.) ~spread:2.

let sample_policy rng ~sync ~static (cfg : Config.t) =
  let delta = cfg.Config.delta in
  if sync then
    match Rng.int rng 3 with
    | 0 -> Network.lockstep ~delta
    | 1 -> Network.sync_uniform ~delta
    | _ -> Network.rushing ~delta ~corrupt:(fun p -> List.mem p static)
  else
    match Rng.int rng 2 with
    | 0 -> Network.async_uniform ~max_delay:(4 * delta)
    | _ -> Network.async_heavy_tail ~base:delta

let build_case ~config rng i =
  let cfg = List.nth grid_configs (Rng.int rng (List.length grid_configs)) in
  let sync = i mod 2 = 0 in
  let horizon = 40 * cfg.Config.delta in
  let inputs = sample_inputs rng cfg in
  let budget = if sync then cfg.Config.ts else cfg.Config.ta in
  (* EW is correct only up to [ta] corruptions regardless of network
     synchrony, so its sweep caps the static budget there. The default
     ΠAA grid is untouched — same draws, same cases, same SOAK.json. *)
  let budget =
    match config.protocol with `Ew -> min budget cfg.Config.ta | `Maaa -> budget
  in
  let n_static = Rng.int rng (budget + 1) in
  let ids = Array.init cfg.Config.n Fun.id in
  Rng.shuffle rng ids;
  let static = Array.to_list (Array.sub ids 0 n_static) in
  let corruptions =
    List.map (fun p -> (p, Fault_gen.behaviors_menu rng ~cfg ~horizon ~tick:0)) static
  in
  let chaos = Fault_gen.sample rng ~cfg ~sync ~existing:static ~horizon in
  let policy = sample_policy rng ~sync ~static cfg in
  let seed = Rng.next_int64 rng in
  let scen =
    Scenario.make
      ~name:(Printf.sprintf "soak-%04d" i)
      ~seed ~policy ~sync_network:sync ~corruptions ~chaos ?mutant:config.mutant
      ~isolate:true
      ~budget:
        {
          Scenario.max_events = Some config.case_events;
          wall_seconds = config.case_wall;
        }
      ~cfg ~inputs ()
  in
  (* Layer/protocol overrides ride on the built scenario rather than the
     [Scenario.make] call so the RNG draw sequence for the default config
     stays byte-identical to the committed SOAK.json. EW drops the chaos
     plan: adaptive corruption grading is calibrated against ΠAA's
     iteration structure, and EW's static-corruption coverage is the
     property under test. *)
  let scen =
    match (config.message_layer, config.protocol) with
    | `Interned, `Maaa -> scen
    | layer, `Maaa -> { scen with Scenario.message_layer = layer }
    | layer, `Ew ->
        { scen with Scenario.message_layer = layer; protocol = `Ew; chaos = None }
  in
  let scen =
    match config.update_kernel with
    | `Safe_area -> scen
    | k -> { scen with Scenario.update_kernel = k }
  in
  (* Same patch-after-make discipline: the net transport rides on the
     built scenario, so the default sweep's RNG draws (and SOAK.json)
     are untouched. The sim-as-oracle guarantee makes a `Net soak the
     same logical sweep over real sockets. *)
  let scen =
    match config.transport with
    | `Sim -> scen
    | `Net -> { scen with Scenario.transport = `Net }
  in
  (* Test/CI hook: replace case [i]'s corruptions with one unbounded
     spammer, a protocol livelock that generates events forever — the
     watchdog must quarantine it instead of letting it wedge the sweep.
     Patched in after [Scenario.make] so the RNG draw sequence (and hence
     every other case of the grid) is untouched. *)
  match config.stuck with
  | Some s when s = i ->
      {
        scen with
        Scenario.corruptions =
          [ (0, Behavior.Spam { period = 1; payload_bytes = 8; until = max_int }) ];
        chaos = None;
      }
  | _ -> scen

let build_scenarios config =
  let master = Rng.create config.seed in
  let rec go i acc =
    if i >= config.cases then List.rev acc
    else
      (* split first so each case owns an independent stream derived only
         from the master's position, not from earlier cases' draw counts *)
      let rng = Rng.split master in
      go (i + 1) (build_case ~config rng i :: acc)
  in
  go 0 []

let violated_invariants (m : Monitor.summary) =
  List.filter_map
    (fun (name, c) -> if c > 0 then Some name else None)
    m.Monitor.counts

let shrink_case ~max_shrink (scen : Scenario.t) (m : Monitor.summary) =
  let target = violated_invariants m in
  let reproduces plan' =
    let r = Runner.run ~monitor:true { scen with Scenario.chaos = Some plan' } in
    match r.Runner.monitor with
    | Some m' ->
        List.exists
          (fun (name, c) -> c > 0 && List.mem name target)
          m'.Monitor.counts
    | None -> false
  in
  let plan = Option.value scen.Scenario.chaos ~default:[] in
  Fault_shrink.shrink ~max_tries:max_shrink ~reproduces plan

let monitor_exn name = function
  | Some (m : Monitor.summary) -> m
  | None -> invalid_arg ("Soak: no monitor summary for " ^ name)

let plan_strings (scen : Scenario.t) =
  match scen.Scenario.chaos with
  | None -> []
  | Some plan -> Fault_plan.to_strings plan

let zero_counts = List.map (fun _ -> 0) Monitor.all_invariants

let render_violation (v : Monitor.violation) =
  Printf.sprintf "[%s] party=%d t=%d %s"
    (Monitor.invariant_name v.Monitor.invariant)
    v.Monitor.party v.Monitor.time v.Monitor.detail

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

(* One case, run inside a pool worker: watchdogged run, then (still in the
   worker, so it parallelizes and needs no engine state afterwards) the
   deterministic shrink of anything abnormal, folded into a plain-data
   record. *)
let run_case config ((idx, scen) : int * Scenario.t) : case_record =
  let r = Runner.run ~monitor:true scen in
  let base ~checks ~counts ~missing ~pfail ~diameter ~eps status =
    {
      cr_index = idx;
      cr_name = scen.Scenario.name;
      cr_seed = scen.Scenario.seed;
      cr_sync = scen.Scenario.sync_network;
      cr_checks = checks;
      cr_counts = counts;
      cr_missing = missing;
      cr_pfail = pfail;
      cr_diameter = diameter;
      cr_eps = eps;
      cr_plan = plan_strings scen;
      cr_status = status;
    }
  in
  match r.Runner.termination with
  | Runner.Completed ->
      let m = monitor_exn scen.Scenario.name r.Runner.monitor in
      let counts =
        List.map
          (fun inv ->
            match
              List.assoc_opt (Monitor.invariant_name inv) m.Monitor.counts
            with
            | Some c -> c
            | None -> 0)
          Monitor.all_invariants
      in
      let status =
        if Monitor.total_violations m = 0 then Clean
        else
          let shrunk = shrink_case ~max_shrink:config.max_shrink scen m in
          Violating
            {
              vd_invariants = violated_invariants m;
              vd_total = List.length m.Monitor.violations;
              vd_first = take 3 (List.map render_violation m.Monitor.violations);
              vd_shrunk = Fault_plan.to_strings shrunk.Fault_shrink.plan;
              vd_tries = shrunk.Fault_shrink.tries;
              vd_minimal = shrunk.Fault_shrink.minimal;
            }
      in
      base ~checks:m.Monitor.checks ~counts
        ~missing:(m.Monitor.honest_expected - m.Monitor.honest_outputs)
        ~pfail:r.Runner.stats.Engine.party_failures
        ~diameter:m.Monitor.final_diameter ~eps:m.Monitor.eps status
  | (Runner.Timed_out | Runner.Budget_exhausted) as t ->
      (* A watchdogged case is quarantined: its partial monitor tables are
         not trustworthy (deferred containment checks need complete runs),
         so it contributes nothing to the aggregate counters. The repro
         plan is still shrunk, against a "still fails to complete" oracle
         bounded by the same budgets. *)
      let reproduces plan' =
        let r' =
          Runner.run ~monitor:false { scen with Scenario.chaos = Some plan' }
        in
        r'.Runner.termination <> Runner.Completed
      in
      let plan = Option.value scen.Scenario.chaos ~default:[] in
      let shrunk =
        Fault_shrink.shrink ~max_tries:config.max_shrink ~reproduces plan
      in
      base ~checks:0 ~counts:zero_counts ~missing:0 ~pfail:0 ~diameter:0.
        ~eps:scen.Scenario.cfg.Config.eps
        (Quarantined
           {
             qd_reason =
               Printf.sprintf "%s(%d events)"
                 (Runner.termination_to_string t)
                 r.Runner.stats.Engine.events_processed;
             qd_shrunk = Fault_plan.to_strings shrunk.Fault_shrink.plan;
             qd_tries = shrunk.Fault_shrink.tries;
             qd_minimal = shrunk.Fault_shrink.minimal;
           })

(* A worker-domain crash (Out_of_memory-style fatal, retried
   [config.retries] times by the supervised pool) is quarantined without
   re-running anything — the repro "shrink" would risk crashing the
   supervisor itself, so the unshrunk plan is the artifact. *)
let crashed_record ((idx, scen) : int * Scenario.t) ~attempts ~last_error =
  let plan = plan_strings scen in
  {
    cr_index = idx;
    cr_name = scen.Scenario.name;
    cr_seed = scen.Scenario.seed;
    cr_sync = scen.Scenario.sync_network;
    cr_checks = 0;
    cr_counts = zero_counts;
    cr_missing = 0;
    cr_pfail = 0;
    cr_diameter = 0.;
    cr_eps = scen.Scenario.cfg.Config.eps;
    cr_plan = plan;
    cr_status =
      Quarantined
        {
          qd_reason =
            Printf.sprintf "crashed: %s (attempts=%d)" last_error attempts;
          qd_shrunk = plan;
          qd_tries = 0;
          qd_minimal = false;
        };
  }

(* -- Journal ---------------------------------------------------------

   Append-only checkpoint file (schema "maaa-soak-journal/1"): a header
   line binding the journal to the exact sweep configuration, then one
   line per completed case, written and flushed by the supervising domain
   as each case's outcome becomes final. A resumed sweep replays records
   instead of re-running their cases, so the final SOAK.json is
   byte-identical to an uninterrupted run's for any --domains count.

   Robustness: a SIGKILL can truncate the last line mid-write, so every
   record line ends with a "." sentinel field and any line that fails to
   parse (or lacks the sentinel) is discarded — that case simply re-runs.
   Encoding is line-oriented: fields are TAB-separated; strings are
   percent-encoded (%, TAB, control bytes, '~'); string lists join their
   encoded elements with US (0x1f), with "~" denoting the empty list;
   floats render as hex ("%h") so they round-trip bit-exactly. *)

let journal_schema = "maaa-soak-journal/1"

let journal_header config =
  Printf.sprintf
    "%s\tseed=%Ld\tcases=%d\tmutant=%s\tevents=%d\twall=%s\tretries=%d\tstuck=%s\tmax_shrink=%d\tlayer=%s\tprotocol=%s\tkernel=%s\ttransport=%s"
    journal_schema config.seed config.cases
    (mutant_to_string config.mutant)
    config.case_events
    (match config.case_wall with None -> "none" | Some w -> Printf.sprintf "%h" w)
    config.retries
    (match config.stuck with None -> "none" | Some i -> string_of_int i)
    config.max_shrink
    (layer_to_string config.message_layer)
    (protocol_to_string config.protocol)
    (kernel_to_string config.update_kernel)
    (transport_to_string config.transport)

let enc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' | '\t' | '~' | '\x1f' ->
          Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
      | c when Char.code c < 0x20 || Char.code c = 0x7f ->
          Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

exception Bad_line

let dec s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' ->
        if !i + 2 >= n then raise Bad_line;
        let code =
          try int_of_string ("0x" ^ String.sub s (!i + 1) 2)
          with _ -> raise Bad_line
        in
        Buffer.add_char b (Char.chr code);
        i := !i + 2
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let enc_list = function
  | [] -> "~"
  | l -> String.concat "\x1f" (List.map enc l)

let dec_list = function
  | "~" -> []
  | s -> List.map dec (String.split_on_char '\x1f' s)

let int_of_field s = match int_of_string_opt s with Some i -> i | None -> raise Bad_line
let int64_of_field s = match Int64.of_string_opt s with Some i -> i | None -> raise Bad_line
let float_of_field s = match float_of_string_opt s with Some f -> f | None -> raise Bad_line

let bool_of_field = function
  | "1" -> true
  | "0" -> false
  | _ -> raise Bad_line

let render_case (r : case_record) =
  let b = Buffer.create 256 in
  let fld s = Buffer.add_char b '\t'; Buffer.add_string b s in
  Buffer.add_string b "c";
  fld (string_of_int r.cr_index);
  fld (enc r.cr_name);
  fld (Int64.to_string r.cr_seed);
  fld (if r.cr_sync then "1" else "0");
  fld (string_of_int r.cr_checks);
  fld (String.concat "," (List.map string_of_int r.cr_counts));
  fld (string_of_int r.cr_missing);
  fld (string_of_int r.cr_pfail);
  fld (Printf.sprintf "%h" r.cr_diameter);
  fld (Printf.sprintf "%h" r.cr_eps);
  fld (enc_list r.cr_plan);
  (match r.cr_status with
  | Clean -> fld "ok"
  | Violating v ->
      fld "viol";
      fld (enc_list v.vd_invariants);
      fld (string_of_int v.vd_total);
      fld (enc_list v.vd_first);
      fld (enc_list v.vd_shrunk);
      fld (string_of_int v.vd_tries);
      fld (if v.vd_minimal then "1" else "0")
  | Quarantined q ->
      fld "quar";
      fld (enc q.qd_reason);
      fld (enc_list q.qd_shrunk);
      fld (string_of_int q.qd_tries);
      fld (if q.qd_minimal then "1" else "0"));
  fld ".";
  Buffer.contents b

let parse_case line =
  match String.split_on_char '\t' line with
  | "c" :: idx :: name :: seed :: sync :: checks :: counts :: missing :: pfail
    :: diam :: eps :: plan :: rest ->
      let status =
        match rest with
        | [ "ok"; "." ] -> Clean
        | [ "viol"; invs; total; first; shrunk; tries; minimal; "." ] ->
            Violating
              {
                vd_invariants = dec_list invs;
                vd_total = int_of_field total;
                vd_first = dec_list first;
                vd_shrunk = dec_list shrunk;
                vd_tries = int_of_field tries;
                vd_minimal = bool_of_field minimal;
              }
        | [ "quar"; reason; shrunk; tries; minimal; "." ] ->
            Quarantined
              {
                qd_reason = dec reason;
                qd_shrunk = dec_list shrunk;
                qd_tries = int_of_field tries;
                qd_minimal = bool_of_field minimal;
              }
        | _ -> raise Bad_line
      in
      {
        cr_index = int_of_field idx;
        cr_name = dec name;
        cr_seed = int64_of_field seed;
        cr_sync = bool_of_field sync;
        cr_checks = int_of_field checks;
        cr_counts =
          (match counts with
          | "" -> []
          | s -> List.map int_of_field (String.split_on_char ',' s));
        cr_missing = int_of_field missing;
        cr_pfail = int_of_field pfail;
        cr_diameter = float_of_field diam;
        cr_eps = float_of_field eps;
        cr_plan = dec_list plan;
        cr_status = status;
      }
  | _ -> raise Bad_line

let load_journal ~header path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "journal %s does not exist" path)
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    match List.rev !lines with
    | [] -> Error (Printf.sprintf "journal %s is empty" path)
    | first :: rest ->
        if first <> header then
          Error
            (Printf.sprintf
               "journal %s was written by a different sweep configuration\n\
               \  journal: %s\n\
               \  current: %s" path first header)
        else
          Ok
            (List.filter_map
               (fun line -> try Some (parse_case line) with Bad_line -> None)
               rest)
  end

(* -- Sweep ----------------------------------------------------------- *)

let aggregate records =
  let graded =
    List.filter
      (fun r -> match r.cr_status with Quarantined _ -> false | _ -> true)
      records
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 graded in
  let counts =
    List.mapi
      (fun k inv ->
        ( Monitor.invariant_name inv,
          sum (fun r -> try List.nth r.cr_counts k with _ -> 0) ))
      Monitor.all_invariants
  in
  let violations_total = List.fold_left (fun a (_, c) -> a + c) 0 counts in
  let worst_diameter, worst_diameter_eps, worst_diameter_case =
    List.fold_left
      (fun ((best, _, _) as acc) r ->
        if r.cr_diameter > best then (r.cr_diameter, r.cr_eps, r.cr_name)
        else acc)
      (-1., 0., "") graded
  in
  let violating =
    List.filter_map
      (fun r ->
        match r.cr_status with
        | Violating v ->
            Some
              {
                vc_name = r.cr_name;
                vc_seed = r.cr_seed;
                vc_sync = r.cr_sync;
                vc_invariants = v.vd_invariants;
                vc_violations = v.vd_total;
                vc_first = v.vd_first;
                vc_plan = r.cr_plan;
                vc_shrunk_plan = v.vd_shrunk;
                vc_shrink_tries = v.vd_tries;
                vc_shrink_minimal = v.vd_minimal;
              }
        | _ -> None)
      records
  in
  let quarantined =
    List.filter_map
      (fun r ->
        match r.cr_status with
        | Quarantined q ->
            Some
              {
                qc_name = r.cr_name;
                qc_seed = r.cr_seed;
                qc_sync = r.cr_sync;
                qc_reason = q.qd_reason;
                qc_plan = r.cr_plan;
                qc_shrunk_plan = q.qd_shrunk;
                qc_shrink_tries = q.qd_tries;
                qc_shrink_minimal = q.qd_minimal;
              }
        | _ -> None)
      records
  in
  let sync_cases = List.length (List.filter (fun r -> r.cr_sync) records) in
  {
    total = List.length records;
    sync_cases;
    async_cases = List.length records - sync_cases;
    checks = sum (fun r -> r.cr_checks);
    counts;
    violations_total;
    missing_outputs = sum (fun r -> r.cr_missing);
    party_failures = sum (fun r -> r.cr_pfail);
    worst_diameter = (if worst_diameter < 0. then 0. else worst_diameter);
    worst_diameter_eps;
    worst_diameter_case;
    violating;
    quarantined;
  }

let execute ?journal ?(resume = false) config =
  if config.cases <= 0 then invalid_arg "Soak.execute: cases <= 0";
  if config.domains <= 0 then invalid_arg "Soak.execute: domains <= 0";
  if resume && journal = None then
    invalid_arg "Soak.execute: resume requires a journal";
  let scenarios = build_scenarios config in
  let header = journal_header config in
  let records_tbl : (int, case_record) Hashtbl.t =
    Hashtbl.create (config.cases * 2)
  in
  (match (journal, resume) with
  | Some path, true -> (
      match load_journal ~header path with
      | Ok records ->
          List.iter
            (fun r ->
              if r.cr_index >= 0 && r.cr_index < config.cases
                 && not (Hashtbl.mem records_tbl r.cr_index)
              then Hashtbl.add records_tbl r.cr_index r)
            records
      | Error msg -> invalid_arg ("Soak.execute: " ^ msg))
  | _ -> ());
  let indexed = List.mapi (fun i s -> (i, s)) scenarios in
  let remaining =
    Array.of_list
      (List.filter (fun (i, _) -> not (Hashtbl.mem records_tbl i)) indexed)
  in
  let oc =
    match journal with
    | None -> None
    | Some path ->
        if resume then begin
          let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
          (* a SIGKILL may have torn the last line mid-write, leaving no
             trailing newline; start on a fresh line so the first resumed
             record can't merge into the torn one (a blank line parses as
             malformed and is skipped, which is harmless) *)
          output_char oc '\n';
          Some oc
        end
        else begin
          let oc = open_out path in
          output_string oc header;
          output_char oc '\n';
          flush oc;
          Some oc
        end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter close_out oc)
    (fun () ->
      if Array.length remaining > 0 then begin
        (* on_done runs in this (supervising) domain, case by case as the
           pool finishes them — the journal records progress even if the
           process is killed mid-sweep. *)
        let on_done pos outcome =
          let ((idx, _) as item) = remaining.(pos) in
          let record =
            match outcome with
            | Pool.Supervised.Done r -> r
            | Pool.Supervised.Crashed { attempts; last_error } ->
                crashed_record item ~attempts ~last_error
          in
          Hashtbl.replace records_tbl idx record;
          match oc with
          | None -> ()
          | Some oc ->
              output_string oc (render_case record);
              output_char oc '\n';
              flush oc
        in
        ignore
          (Pool.Supervised.map ~domains:config.domains
             ~max_retries:config.retries ~on_done (run_case config)
             (Array.to_list remaining))
      end);
  aggregate (List.map (fun (i, _) -> Hashtbl.find records_tbl i) indexed)

(* -- JSON report -- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let json_strings lst =
  "[" ^ String.concat ", " (List.map (fun s -> "\"" ^ json_escape s ^ "\"") lst)
  ^ "]"

(* No wall-clock values and no [domains]-dependent fields: the document must
   be byte-identical for any worker count and for interrupted-and-resumed
   vs uninterrupted sweeps (both tested in test_chaos.ml). *)
let to_json config (o : outcome) =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "{\n";
  out "  \"schema\": \"maaa-soak/2\",\n";
  out "  \"seed\": %Ld,\n" config.seed;
  out "  \"mutant\": \"%s\",\n" (mutant_to_string config.mutant);
  (* Emitted only when non-default so the committed SOAK.json (written
     before these knobs existed) stays byte-stable under schema 2. *)
  (match config.message_layer with
  | `Interned -> ()
  | l -> out "  \"message_layer\": \"%s\",\n" (layer_to_string l));
  (match config.protocol with
  | `Maaa -> ()
  | p -> out "  \"protocol\": \"%s\",\n" (protocol_to_string p));
  (match config.update_kernel with
  | `Safe_area -> ()
  | k -> out "  \"update_kernel\": \"%s\",\n" (kernel_to_string k));
  (match config.transport with
  | `Sim -> ()
  | t -> out "  \"transport\": \"%s\",\n" (transport_to_string t));
  out "  \"case_events\": %d,\n" config.case_events;
  out "  \"cases\": %d,\n" o.total;
  out "  \"sync_cases\": %d,\n" o.sync_cases;
  out "  \"async_cases\": %d,\n" o.async_cases;
  out "  \"checks\": %d,\n" o.checks;
  out "  \"violations_total\": %d,\n" o.violations_total;
  out "  \"invariants\": {%s},\n"
    (String.concat ", "
       (List.map
          (fun (name, c) -> Printf.sprintf "\"%s\": %d" (json_escape name) c)
          o.counts));
  out "  \"missing_outputs\": %d,\n" o.missing_outputs;
  out "  \"party_failures\": %d,\n" o.party_failures;
  out "  \"quarantined\": %d,\n" (List.length o.quarantined);
  out "  \"worst_final_diameter\": {\"case\": \"%s\", \"value\": %s, \"eps\": %s},\n"
    (json_escape o.worst_diameter_case)
    (json_float o.worst_diameter)
    (json_float o.worst_diameter_eps);
  out "  \"quarantined_cases\": [";
  List.iteri
    (fun k qc ->
      if k > 0 then out ",";
      out "\n    {\n";
      out "      \"name\": \"%s\",\n" (json_escape qc.qc_name);
      out "      \"seed\": %Ld,\n" qc.qc_seed;
      out "      \"sync\": %b,\n" qc.qc_sync;
      out "      \"reason\": \"%s\",\n" (json_escape qc.qc_reason);
      out "      \"plan\": %s,\n" (json_strings qc.qc_plan);
      out "      \"shrunk_plan\": %s,\n" (json_strings qc.qc_shrunk_plan);
      out "      \"shrink_tries\": %d,\n" qc.qc_shrink_tries;
      out "      \"shrink_minimal\": %b\n" qc.qc_shrink_minimal;
      out "    }")
    o.quarantined;
  if o.quarantined <> [] then out "\n  ";
  out "],\n";
  out "  \"violating_cases\": [";
  List.iteri
    (fun k vc ->
      if k > 0 then out ",";
      out "\n    {\n";
      out "      \"name\": \"%s\",\n" (json_escape vc.vc_name);
      out "      \"seed\": %Ld,\n" vc.vc_seed;
      out "      \"sync\": %b,\n" vc.vc_sync;
      out "      \"invariants\": %s,\n" (json_strings vc.vc_invariants);
      out "      \"violations\": %d,\n" vc.vc_violations;
      (match vc.vc_first with
      | [] -> ()
      | v :: _ -> out "      \"first_violation\": \"%s\",\n" (json_escape v));
      out "      \"plan\": %s,\n" (json_strings vc.vc_plan);
      out "      \"shrunk_plan\": %s,\n" (json_strings vc.vc_shrunk_plan);
      out "      \"shrink_tries\": %d,\n" vc.vc_shrink_tries;
      out "      \"shrink_minimal\": %b\n" vc.vc_shrink_minimal;
      out "    }")
    o.violating;
  if o.violating <> [] then out "\n  ";
  out "]\n";
  out "}\n";
  Buffer.contents b

let pp ppf (o : outcome) =
  Format.fprintf ppf
    "soak: %d cases (%d sync, %d async), %d checks, %d violations, %d quarantined@."
    o.total o.sync_cases o.async_cases o.checks o.violations_total
    (List.length o.quarantined);
  List.iter
    (fun (name, c) -> Format.fprintf ppf "  %-18s %d@." name c)
    o.counts;
  Format.fprintf ppf "  missing outputs: %d, isolated failures: %d@."
    o.missing_outputs o.party_failures;
  if o.worst_diameter_case <> "" then
    Format.fprintf ppf "  worst final diameter: %.3e (eps=%g) in %s@."
      o.worst_diameter o.worst_diameter_eps o.worst_diameter_case;
  List.iter
    (fun qc ->
      Format.fprintf ppf "  QUARANTINED %s (seed=%Ld, %s): %s@." qc.qc_name
        qc.qc_seed
        (if qc.qc_sync then "sync" else "async")
        qc.qc_reason;
      Format.fprintf ppf "    plan: %s@."
        (match qc.qc_plan with
        | [] -> "<none>"
        | atoms -> String.concat "; " atoms);
      Format.fprintf ppf "    shrunk (%d tries, minimal=%b): %s@."
        qc.qc_shrink_tries qc.qc_shrink_minimal
        (match qc.qc_shrunk_plan with
        | [] -> "<empty plan — the case wedges under every sub-plan>"
        | atoms -> String.concat "; " atoms))
    o.quarantined;
  List.iter
    (fun vc ->
      Format.fprintf ppf "  VIOLATION %s (seed=%Ld, %s): %s@." vc.vc_name
        vc.vc_seed
        (if vc.vc_sync then "sync" else "async")
        (String.concat "," vc.vc_invariants);
      List.iter
        (fun line -> Format.fprintf ppf "    %s@." line)
        vc.vc_first;
      Format.fprintf ppf "    plan: %s@."
        (String.concat "; " vc.vc_plan);
      Format.fprintf ppf "    shrunk (%d tries, minimal=%b): %s@."
        vc.vc_shrink_tries vc.vc_shrink_minimal
        (match vc.vc_shrunk_plan with
        | [] -> "<empty plan — the protocol variant itself violates>"
        | atoms -> String.concat "; " atoms))
    o.violating
