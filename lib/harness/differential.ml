(* Sim-as-oracle differentials: see differential.mli for the contract.
   The comparison is structural equality on the full Runner.result with
   only [transport] and [wire] masked — the net backend owes the sim an
   exact reproduction, so nothing else is forgiven. *)

type verdict = {
  name : string;
  net_ok : bool;
  chaos_ok : bool;
  monitor_clean : bool;
  detail : string option;
  wire : Netrun.wire_stats;
  chaos_wire : Netrun.wire_stats;
}

type report = { verdicts : verdict list; cases : int; failures : int }

(* -- the pinned grid ---------------------------------------------------- *)

let delta = 4
let eps = 0.1
let grid_configs = [ (1, 4, 1, 0); (1, 8, 2, 1); (2, 4, 1, 0); (2, 8, 2, 1) ]

let poison_vec d = Vec.make d 50.

(* Corruption arms within the mode's budget; the degenerate budget-0 arms
   would duplicate "clean", so they are skipped rather than run twice. *)
let corruption_arms ~n ~d ~budget =
  if budget = 0 then [ ("clean", []) ]
  else
    let ids = List.init budget (fun i -> n - 1 - i) in
    [
      ("clean", []);
      ("silent", List.map (fun i -> (i, Behavior.Silent)) ids);
      ( "poison",
        List.map (fun i -> (i, Behavior.Honest_with_input (poison_vec d))) ids
      );
    ]

let pinned_grid () =
  let idx = ref 0 in
  List.concat_map
    (fun (d, n, ts, ta) ->
      let cfg = Config.make_exn ~n ~ts ~ta ~d ~eps ~delta in
      let inputs =
        Inputs.uniform_cube
          (Rng.create (Int64.of_int ((7 * n) + d)))
          ~d ~n ~side:1.0
      in
      let modes =
        [
          (true, ts,
           [ ("lockstep", Network.lockstep ~delta);
             ("sync-uniform", Network.sync_uniform ~delta) ]);
          (false, ta,
           [ ("async-uniform", Network.async_uniform ~max_delay:(3 * delta)) ]);
        ]
      in
      List.concat_map
        (fun (sync, budget, policies) ->
          List.concat_map
            (fun (pname, policy) ->
              List.map
                (fun (cname, corruptions) ->
                  let name =
                    Printf.sprintf "diff-d%d-n%d-%s-%s-%s" d n
                      (if sync then "sync" else "async")
                      pname cname
                  in
                  let i = !idx in
                  incr idx;
                  Scenario.make ~name
                    ~seed:(Int64.of_int (101 + (17 * i)))
                    ~policy ~sync_network:sync ~corruptions
                    ~budget:
                      { Scenario.max_events = None; wall_seconds = Some 120. }
                    ~cfg ~inputs ())
                (corruption_arms ~n ~d ~budget))
            policies)
        modes)
    grid_configs

let default_wire_chaos ~src ~dst =
  let base =
    [
      Wire_chaos.Drop { percent = 15 };
      Wire_chaos.Duplicate { percent = 10 };
      Wire_chaos.Reorder { percent = 10; hold = 3 };
    ]
  in
  let spike =
    if src = 0 then
      [ Wire_chaos.Delay_spike { from_tick = 40; until_tick = 80; hold = 4 } ]
    else []
  in
  let flap =
    if src = 0 && dst = 1 then
      [ Wire_chaos.Link_flap { at_tick = 60; down_for = 30 } ]
    else []
  in
  base @ spike @ flap

(* -- comparison --------------------------------------------------------- *)

let mask (r : Runner.result) = { r with Runner.transport = `Sim; wire = None }

(* Field-by-field so a mismatch names what diverged instead of just
   "results differ". Ordered cheapest-to-richest. *)
let diff_detail (a : Runner.result) (b : Runner.result) =
  let open Runner in
  if a.termination <> b.termination then Some "termination"
  else if a.live <> b.live then Some "live"
  else if a.valid <> b.valid then Some "valid"
  else if a.agreement <> b.agreement then Some "agreement"
  else if a.diameter <> b.diameter then Some "diameter"
  else if a.outputs <> b.outputs then Some "outputs"
  else if a.output_iters <> b.output_iters then Some "output_iters"
  else if a.output_times <> b.output_times then Some "output_times"
  else if a.t_estimates <> b.t_estimates then Some "t_estimates"
  else if a.histories <> b.histories then Some "histories"
  else if a.completion_rounds <> b.completion_rounds then
    Some "completion_rounds"
  else if a.stats <> b.stats then Some "engine stats"
  else if a.traffic <> b.traffic then Some "traffic"
  else if a.monitor <> b.monitor then Some "monitor summary"
  else if mask a <> mask b then Some "result (unclassified field)"
  else None

let wire_of (r : Runner.result) =
  match r.Runner.wire with
  | Some w -> w
  | None -> failwith "differential: net run carried no wire stats"

let run_case (scen : Scenario.t) =
  let arm transport wire_chaos =
    Runner.run ~monitor:true
      { scen with Scenario.transport; wire_chaos }
  in
  let rs = arm `Sim None in
  let rn = arm `Net None in
  let rc = arm `Net (Some default_wire_chaos) in
  let d_net = diff_detail rs rn in
  let d_chaos = diff_detail rs rc in
  let monitor_clean =
    match rc.Runner.monitor with
    | Some s -> Monitor.total_violations s = 0
    | None -> false
  in
  {
    name = scen.Scenario.name;
    net_ok = d_net = None;
    chaos_ok = d_chaos = None;
    monitor_clean;
    detail =
      (match (d_net, d_chaos) with
      | Some f, _ -> Some ("net: " ^ f)
      | None, Some f -> Some ("chaos: " ^ f)
      | None, None -> None);
    wire = wire_of rn;
    chaos_wire = wire_of rc;
  }

let failed v = not (v.net_ok && v.chaos_ok && v.monitor_clean)

let execute ?(log = fun _ -> ()) () =
  let grid = pinned_grid () in
  let verdicts =
    List.map
      (fun scen ->
        let v = run_case scen in
        log
          (Printf.sprintf "%-40s %s  (frames=%d retx=%d reconn=%d)" v.name
             (if failed v then "MISMATCH" else "ok")
             v.chaos_wire.Netrun.frames_sent v.chaos_wire.Netrun.retransmits
             v.chaos_wire.Netrun.reconnects);
        v)
      grid
  in
  {
    verdicts;
    cases = List.length verdicts;
    failures = List.length (List.filter failed verdicts);
  }

let passed r = r.failures = 0

let pp ppf r =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf "sim-as-oracle differential: %d cases, %d failures@,"
    r.cases r.failures;
  List.iter
    (fun v ->
      Format.fprintf ppf "  %-40s net=%s chaos=%s monitor=%s%s@," v.name
        (if v.net_ok then "ok" else "MISMATCH")
        (if v.chaos_ok then "ok" else "MISMATCH")
        (if v.monitor_clean then "clean" else "VIOLATIONS")
        (match v.detail with None -> "" | Some d -> "  first diff: " ^ d))
    r.verdicts;
  let tot f = List.fold_left (fun a v -> a + f v.chaos_wire) 0 r.verdicts in
  Format.fprintf ppf
    "  chaos arms masked: %d frames dropped, %d duplicated, %d retransmits, \
     %d reconnects"
    (tot (fun w -> w.Netrun.chaos_dropped))
    (tot (fun w -> w.Netrun.chaos_duplicated))
    (tot (fun w -> w.Netrun.retransmits))
    (tot (fun w -> w.Netrun.reconnects));
  Format.pp_close_box ppf ()
