(** Stateful depth-first enumeration of engine nondeterminism — bounded
    model checking for small configurations.

    The simulator resolves exactly one kind of nondeterminism by itself:
    when several events are pending at the minimal tick, [(time, seq)]
    order decides which fires first. {!Engine.set_chooser} exposes that
    decision, and this module drives it: every execution is re-run from
    scratch under a {e schedule prefix} (the chooser answers recorded
    indices, then [0] — the default — beyond the prefix), and each fresh
    choice point with [k ≥ 2] candidates registers sibling prefixes for
    the alternatives still worth trying. The search is therefore
    stateless per execution and exhaustive over all schedules that differ
    from the default in the first [max_schedule_depth] choice points —
    the honestly-stated bound of this bounded model checker.

    Adversary nondeterminism rides the same loop as an outer product over
    {!Fault_plan}s: crash points become [Corrupt_at _ → Silent] atoms over
    a tick range, Byzantine per-receiver payload choices become
    [Corrupt_at _ → Equivocate_split] atoms over a small symbolic domain
    of value pairs and receiver subsets. A counterexample is always a
    (plan, schedule) pair — replayable, shrinkable and serialisable.

    Two reduction mechanisms cut the [Pruned] search (both off under
    [Naive], which is kept as the measured baseline):

    - {b DPOR-style persistent sets}: same-tick events to {e different}
      targets commute — a handler mutates only its own party's state,
      sends are enqueued at strictly later ticks and timers target the
      setting party — so a choice point branches only on the candidates
      sharing candidate 0's target (and not at all when that target has
      no live handler: delivering to a crashed party is a no-op, which
      commutes with everything).
    - {b canonical-state dedup}: at each fresh choice point the engine
      state is fingerprinted (current tick, per-party MD5 digest chains
      over the delivery/timer history, the pending-event multiset in a
      seq-independent canonical order, handler liveness); a state already
      visited with at least as much event budget remaining is cut.

    Soundness caveats are spelled out in DESIGN.md §11: the engine's
    delay policy must be deterministic (lockstep — the default scenario
    policy), handlers must not create same-tick events for {e other}
    parties (they cannot: the only same-tick route is the self-targeted
    timer clamp), and state hashing is exact (full fingerprint
    comparison, not hash compaction) only up to MD5 collisions.

    Graded by the existing online {!Monitor}: a violating execution is
    shrunk — schedule indices zeroed/truncated to a fixpoint, then the
    fault plan through {!Fault_shrink}, then the schedule again — and
    appended to a soak-style TSV quarantine journal, replayable with
    [explore_main --replay]. *)

type mode = Naive | Pruned

type adversary =
  | Honest  (** schedule nondeterminism only: the single empty plan *)
  | Crash of { party : int; max_tick : int }
      (** [Corrupt_at {tick; party; behavior = Silent}] for every
          [tick ∈ [0, max_tick]] *)
  | Equivocator of { party : int; values : Vec.t * Vec.t }
      (** [Equivocate_split] over every nonempty receiver subset of the
          {e other} parties: [party] broadcasts the first value, then
          sends the second to the subset (see {!Behavior}) *)

type config = {
  cfg : Config.t;
  inputs : Vec.t list;  (** one per party *)
  mode : mode;
  adversary : adversary;
  mutant : Party.mutant option;
      (** deliberately broken honest-party variant — the explorer must
          rediscover both known mutants exhaustively *)
  protocol : [ `Maaa | `Ew ];
  max_events : int;  (** per-execution engine event budget *)
  max_executions : int;  (** global execution budget for the search *)
  max_schedule_depth : int;
      (** choice points after which executions follow the default
          schedule unconditionally (the exhaustiveness bound) *)
  max_counterexamples : int;
      (** stop searching a plan's schedule space after this many violating
          executions have been shrunk and recorded (the remaining plans
          are still explored) *)
}

val default_config :
  ?mode:mode ->
  ?adversary:adversary ->
  ?mutant:Party.mutant ->
  ?protocol:[ `Maaa | `Ew ] ->
  ?max_events:int ->
  ?max_executions:int ->
  ?max_schedule_depth:int ->
  ?max_counterexamples:int ->
  cfg:Config.t ->
  inputs:Vec.t list ->
  unit ->
  config
(** Defaults: [Pruned], [Honest], no mutant, [`Maaa], 50_000 events,
    20_000 executions, depth 4, 3 counterexamples.
    @raise Invalid_argument on input-count mismatch or an out-of-range /
    budget-violating adversary party. *)

type counterexample = {
  cx_plan : Fault_plan.t;
  cx_schedule : int list;  (** chooser answers, one per [k ≥ 2] point *)
  cx_invariants : string list;
      (** sorted violated-invariant names: monitor invariants plus
          ["liveness"] for a quiescent run with a silent graded party *)
  cx_shrunk_plan : Fault_plan.t;
  cx_shrunk_schedule : int list;
  cx_tries : int;  (** oracle re-executions spent shrinking *)
  cx_minimal : bool;
      (** the joint (schedule zeroing ∘ {!Fault_shrink}) fixpoint was
          reached within the shrinker's try budget *)
}

type report = {
  r_mode : mode;
  executions : int;  (** complete re-executions performed *)
  choice_points : int;  (** chooser consultations across all executions *)
  truncated : int;
      (** executions stopped by [max_events] — counted, never graded for
          liveness (exhaustiveness holds only below the budget) *)
  dedup_cuts : int;  (** executions abandoned at a revisited state *)
  distinct_states : int;  (** canonical fingerprints recorded *)
  exhausted : bool;
      (** the bounded schedule space was drained; [false] when
          [max_executions] stopped the search or a plan was abandoned at
          [max_counterexamples] *)
  counterexamples : counterexample list;
}

val explore : config -> report
(** Runs the full search: every plan in the adversary's symbolic domain,
    DFS over the schedule space of each. Deterministic: same config, same
    report. *)

val replay : config -> plan:Fault_plan.t -> schedule:int list -> string list
(** One concrete execution under [plan] with the chooser answering
    [schedule] (then default); returns the sorted violated-invariant
    names, [] when clean. The [mode]/[adversary] fields of [config] are
    ignored — a quarantined counterexample replays against the config
    alone. *)

(** {2 Quarantine journal}

    Same shape as the soak journal (schema ["maaa-explore-quarantine/1"]):
    one TSV header line binding the config, one [stats] line, one [case]
    line per counterexample, every line ending in a ["."] sentinel.
    Fault plans embed via {!Fault_plan.to_repr} (tab-free by
    construction); vectors as ['/']-joined ["%h"] floats. *)

val write_quarantine : path:string -> config -> report -> unit

type replay_outcome = {
  rp_total : int;
  rp_reproduced : int;
  rp_failures : string list;  (** one human-readable line per failure *)
}

val replay_quarantine : path:string -> (replay_outcome, string) result
(** Parses a quarantine file, re-runs every case's {e shrunk}
    counterexample and checks the recorded invariants are violated again.
    [Error] on unparsable files. *)

(** {2 Reprs} — the journal's field encodings, exposed for the CLI. *)

val mode_repr : mode -> string
val mode_of_repr : string -> (mode, string) result
val adversary_repr : adversary -> string

val adversary_of_repr : string -> (adversary, string) result
(** ["honest"], ["crash:PARTY:MAXTICK"], or ["equiv:PARTY:VA:VB"] with
    vectors as ['/']-joined floats (hex or decimal). *)

val mutant_repr : Party.mutant option -> string
val mutant_of_repr : string -> (Party.mutant option, string) result

