module IntSet = Set.Make (Int)

type mode = Naive | Pruned

type adversary =
  | Honest
  | Crash of { party : int; max_tick : int }
  | Equivocator of { party : int; values : Vec.t * Vec.t }

type config = {
  cfg : Config.t;
  inputs : Vec.t list;
  mode : mode;
  adversary : adversary;
  mutant : Party.mutant option;
  protocol : [ `Maaa | `Ew ];
  max_events : int;
  max_executions : int;
  max_schedule_depth : int;
  max_counterexamples : int;
}

(* -- the adversary's symbolic domain, as fault plans -- *)

let plans_of_adversary cfg = function
  | Honest -> [ [] ]
  | Crash { party; max_tick } ->
      List.init (max_tick + 1) (fun tick ->
          [ Fault_plan.Corrupt_at { tick; party; behavior = Behavior.Silent } ])
  | Equivocator { party; values } ->
      (* Every nonempty subset of the other parties receives the second
         value; the split party itself always stays on side 0. *)
      let n = cfg.Config.n in
      let others = List.filter (fun p -> p <> party) (List.init n Fun.id) in
      let k = List.length others in
      List.init ((1 lsl k) - 1) (fun m ->
          let mask = m + 1 in
          let assign = Array.make n 0 in
          List.iteri
            (fun bit p -> if mask land (1 lsl bit) <> 0 then assign.(p) <- 1)
            others;
          [
            Fault_plan.Corrupt_at
              {
                tick = 0;
                party;
                behavior = Behavior.Equivocate_split { values; assign };
              };
          ])

let default_config ?(mode = Pruned) ?(adversary = Honest) ?mutant
    ?(protocol = `Maaa) ?(max_events = 50_000) ?(max_executions = 20_000)
    ?(max_schedule_depth = 4) ?(max_counterexamples = 3) ~cfg ~inputs () =
  if List.length inputs <> cfg.Config.n then
    invalid_arg "Explore.default_config: need one input per party";
  (match plans_of_adversary cfg adversary with
  | [] | [ [] ] -> ()
  | plan :: _ -> (
      (* One representative plan stands in for the whole domain: every
         plan in it has the same corruption target. *)
      match Fault_plan.validate ~cfg ~sync:true ~existing:[] plan with
      | Ok () -> ()
      | Error e -> invalid_arg ("Explore.default_config: " ^ e)));
  {
    cfg;
    inputs;
    mode;
    adversary;
    mutant;
    protocol;
    max_events;
    max_executions;
    max_schedule_depth;
    max_counterexamples;
  }

(* -- one execution under a schedule prefix -- *)

exception Cut_execution

let scenario_of config plan =
  Scenario.make ~name:"explore"
    ?chaos:(if plan = [] then None else Some plan)
    ?mutant:config.mutant ~protocol:config.protocol
    ~budget:{ Scenario.max_events = Some config.max_events; wall_seconds = None }
    ~cfg:config.cfg ~inputs:config.inputs ()

(* Violated-invariant names for one graded run. Monitor violations count
   whatever the termination (an agreement or malformed-message violation
   over a partial run is a real violation); liveness and the result-level
   flags are meaningful only for a quiescent run. *)
let violated (result : Runner.result) =
  let from_monitor =
    match result.Runner.monitor with
    | None -> []
    | Some s ->
        List.map
          (fun v -> Monitor.invariant_name v.Monitor.invariant)
          s.Monitor.violations
  in
  let flags =
    if result.Runner.termination = Runner.Completed then
      (if not result.Runner.live then [ "liveness" ] else [])
      @ (if result.Runner.live && not result.Runner.valid then [ "validity" ]
         else [])
      @
      if result.Runner.live && not result.Runner.agreement then [ "agreement" ]
      else []
    else []
  in
  List.sort_uniq compare (from_monitor @ flags)

(* Canonical state fingerprint at a choice point. Components:
   - the current tick (parties observe [now]);
   - per-party digest chains over each party's own delivery/timer
     history — order across parties does not enter, which is exactly the
     commutativity the DPOR reduction exploits;
   - the pending-event multiset (the popped candidates plus the rest of
     the heap) as (delta-tick, target, event digest), sorted — sequence
     numbers, which depend on the order commuting handlers ran in, are
     deliberately excluded;
   - handler liveness per party (crashes are state). *)
let fingerprint ~digests ~alive ~now ~cands ~rest =
  let b = Buffer.create 512 in
  Buffer.add_string b (string_of_int now);
  Buffer.add_char b '|';
  Array.iter
    (fun d ->
      Buffer.add_string b d;
      Buffer.add_char b '.')
    digests;
  Array.iter (fun a -> Buffer.add_char b (if a then '1' else '0')) alive;
  let entry (c : Message.t Engine.choice) =
    ( c.Engine.ch_at - now,
      c.Engine.ch_target,
      Digest.string (Marshal.to_string c.Engine.ch_event []) )
  in
  let pend =
    List.sort compare (List.map entry (Array.to_list cands @ rest))
  in
  List.iter
    (fun (dt, tgt, dg) ->
      Buffer.add_string b (Printf.sprintf "|%d.%d." dt tgt);
      Buffer.add_string b dg)
    pend;
  Digest.string (Buffer.contents b)

type exec = {
  ex_schedule : int list;  (** recorded chooser answers *)
  ex_alternatives : int list list;  (** sibling prefixes registered *)
  ex_invariants : string list;
  ex_truncated : bool;
  ex_cut : bool;
  ex_points : int;  (** chooser consultations in this execution *)
}

(* State-dedup table: fingerprint -> Pareto-maximal (remaining events,
   remaining depth) pairs already explored from that state. A revisit is
   cut only when some recorded visit dominated it on both budgets —
   otherwise the deeper/longer revisit still contributes coverage. *)
type dedup = (string, (int * int) list) Hashtbl.t

let dedup_dominates table fp ~re ~rd =
  match Hashtbl.find_opt table fp with
  | None -> false
  | Some visits -> List.exists (fun (re', rd') -> re' >= re && rd' >= rd) visits

let dedup_record table fp ~re ~rd =
  let visits = Option.value (Hashtbl.find_opt table fp) ~default:[] in
  let survivors =
    List.filter (fun (re', rd') -> not (re >= re' && rd >= rd')) visits
  in
  Hashtbl.replace table fp ((re, rd) :: survivors)

let run_one config plan ~prefix ~(dedup : dedup option) ~register_alternatives =
  let scenario = scenario_of config plan in
  let n = config.cfg.Config.n in
  let digests = Array.make n "" in
  let events_done = ref 0 in
  let prefix_left = ref prefix in
  let sched_rev = ref [] in
  let alts_rev = ref [] in
  let points = ref 0 in
  let cut = ref false in
  let engine_ref = ref None in
  let tracer ev =
    match ev with
    | Engine.Delivered { src; dst; at; msg } ->
        incr events_done;
        digests.(dst) <-
          Digest.string
            (digests.(dst)
            ^ Printf.sprintf "D%d.%d." src at
            ^ Digest.string (Marshal.to_string msg []))
    | Engine.Timer_fired { party; at; tag } ->
        incr events_done;
        digests.(party) <-
          Digest.string (digests.(party) ^ Printf.sprintf "T%d.%d" tag at)
    | Engine.Sent _ | Engine.Party_failed _ -> ()
  in
  let chooser (cands : Message.t Engine.choice array) =
    incr points;
    let k = Array.length cands in
    match !prefix_left with
    | i :: rest ->
        prefix_left := rest;
        (* A prefix recorded against this very search tree always fits;
           an index out of range means a stale replay file. *)
        if i >= k then raise Cut_execution;
        sched_rev := i :: !sched_rev;
        i
    | [] ->
        let engine = Option.get !engine_ref in
        (match dedup with
        | None -> ()
        | Some table ->
            let alive = Array.init n (Engine.has_handler engine) in
            let now = cands.(0).Engine.ch_at in
            let fp =
              fingerprint ~digests ~alive ~now ~cands
                ~rest:(Engine.pending engine)
            in
            let re = config.max_events - !events_done in
            let rd = config.max_schedule_depth - List.length !sched_rev in
            if dedup_dominates table fp ~re ~rd then raise Cut_execution
            else dedup_record table fp ~re ~rd);
        let depth = List.length !sched_rev in
        if register_alternatives && depth < config.max_schedule_depth then begin
          let branch =
            match config.mode with
            | Naive -> List.init (k - 1) (fun j -> j + 1)
            | Pruned ->
                let t0 = cands.(0).Engine.ch_target in
                if Engine.has_handler engine t0 then
                  List.filter
                    (fun j -> cands.(j).Engine.ch_target = t0)
                    (List.init (k - 1) (fun j -> j + 1))
                else []
          in
          List.iter
            (fun j -> alts_rev := List.rev (j :: !sched_rev) :: !alts_rev)
            branch
        end;
        sched_rev := 0 :: !sched_rev;
        0
  in
  let on_engine engine =
    engine_ref := Some engine;
    Engine.set_chooser engine chooser
  in
  let result =
    try Some (Runner.run ~monitor:true ~tracer ~on_engine scenario)
    with Cut_execution ->
      cut := true;
      None
  in
  match result with
  | None ->
      {
        ex_schedule = List.rev !sched_rev;
        ex_alternatives = !alts_rev;
        ex_invariants = [];
        ex_truncated = false;
        ex_cut = true;
        ex_points = !points;
      }
  | Some r ->
      {
        ex_schedule = List.rev !sched_rev;
        ex_alternatives = !alts_rev;
        ex_invariants = violated r;
        ex_truncated = r.Runner.termination <> Runner.Completed;
        ex_cut = false;
        ex_points = !points;
      }

let replay config ~plan ~schedule =
  let ex =
    run_one config plan ~prefix:schedule ~dedup:None
      ~register_alternatives:false
  in
  ex.ex_invariants

(* -- counterexample shrinking -- *)

type counterexample = {
  cx_plan : Fault_plan.t;
  cx_schedule : int list;
  cx_invariants : string list;
  cx_shrunk_plan : Fault_plan.t;
  cx_shrunk_schedule : int list;
  cx_tries : int;
  cx_minimal : bool;
}

let subset_of xs ys = List.for_all (fun x -> List.mem x ys) xs

(* Trailing default answers are behaviourally void: beyond the recorded
   prefix the chooser answers 0 anyway. No oracle call needed. *)
let strip_trailing_zeros schedule =
  List.rev
    (let rec drop = function 0 :: tl -> drop tl | s -> s in
     drop (List.rev schedule))

let shrink_schedule ~check schedule =
  let rec zero_pass sched i =
    if i >= List.length sched then sched
    else if List.nth sched i = 0 then zero_pass sched (i + 1)
    else
      let cand = List.mapi (fun j x -> if j = i then 0 else x) sched in
      if check cand then zero_pass cand (i + 1) else zero_pass sched (i + 1)
  in
  let rec fix sched =
    let sched' = strip_trailing_zeros (zero_pass sched 0) in
    if sched' = sched then sched else fix sched'
  in
  fix (strip_trailing_zeros schedule)

let shrink_counterexample config ~plan ~schedule ~invariants =
  let tries = ref 0 in
  let reproduces p s =
    incr tries;
    subset_of invariants (replay config ~plan:p ~schedule:s)
  in
  let schedule1 = shrink_schedule ~check:(fun s -> reproduces plan s) schedule in
  let plan_outcome =
    if plan = [] then { Fault_shrink.plan = []; tries = 0; minimal = true }
    else
      Fault_shrink.shrink ~reproduces:(fun p -> reproduces p schedule1) plan
  in
  let plan2 = plan_outcome.Fault_shrink.plan in
  let schedule2 =
    shrink_schedule ~check:(fun s -> reproduces plan2 s) schedule1
  in
  {
    cx_plan = plan;
    cx_schedule = strip_trailing_zeros schedule;
    cx_invariants = invariants;
    cx_shrunk_plan = plan2;
    cx_shrunk_schedule = schedule2;
    cx_tries = !tries + plan_outcome.Fault_shrink.tries;
    cx_minimal = plan_outcome.Fault_shrink.minimal;
  }

(* -- the search -- *)

type report = {
  r_mode : mode;
  executions : int;
  choice_points : int;
  truncated : int;
  dedup_cuts : int;
  distinct_states : int;
  exhausted : bool;
  counterexamples : counterexample list;
}

let explore config =
  let executions = ref 0 in
  let choice_points = ref 0 in
  let truncated = ref 0 in
  let dedup_cuts = ref 0 in
  let distinct_states = ref 0 in
  let exhausted = ref true in
  let counterexamples = ref [] in
  let plans = plans_of_adversary config.cfg config.adversary in
  List.iter
    (fun plan ->
      let dedup =
        match config.mode with
        | Naive -> None
        | Pruned -> Some (Hashtbl.create 1024)
      in
      let stack = ref [ [] ] in
      let found = ref 0 in
      let seen_shrunk = Hashtbl.create 16 in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | prefix :: rest ->
            if !executions >= config.max_executions then begin
              exhausted := false;
              stack := []
            end
            else begin
              stack := rest;
              incr executions;
              let ex =
                run_one config plan ~prefix ~dedup ~register_alternatives:true
              in
              choice_points := !choice_points + ex.ex_points;
              if ex.ex_cut then incr dedup_cuts;
              if ex.ex_truncated then incr truncated;
              stack := ex.ex_alternatives @ !stack;
              if ex.ex_invariants <> [] then begin
                let cx =
                  shrink_counterexample config ~plan ~schedule:ex.ex_schedule
                    ~invariants:ex.ex_invariants
                in
                let key = (cx.cx_shrunk_plan, cx.cx_shrunk_schedule) in
                if not (Hashtbl.mem seen_shrunk key) then begin
                  Hashtbl.add seen_shrunk key ();
                  counterexamples := cx :: !counterexamples;
                  incr found
                end;
                if !found >= config.max_counterexamples then begin
                  if !stack <> [] then exhausted := false;
                  stack := []
                end
              end
            end
      done;
      match dedup with
      | None -> ()
      | Some table -> distinct_states := !distinct_states + Hashtbl.length table)
    plans;
  {
    r_mode = config.mode;
    executions = !executions;
    choice_points = !choice_points;
    truncated = !truncated;
    dedup_cuts = !dedup_cuts;
    distinct_states = !distinct_states;
    exhausted = !exhausted;
    counterexamples = List.rev !counterexamples;
  }

(* -- quarantine journal (soak TSV idiom, own schema) -- *)

let schema = "maaa-explore-quarantine/1"

(* Field encoding: tab-free by construction everywhere below, but escape
   defensively so a foreign plan repr can never break the TSV framing. *)
let enc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '\t' -> Buffer.add_string b "%09"
      | '\n' -> Buffer.add_string b "%0a"
      | '\r' -> Buffer.add_string b "%0d"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dec s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char b
          (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let vec_repr v =
  String.concat "/"
    (List.map (Printf.sprintf "%h") (Array.to_list (Vec.to_array v)))

let vec_of_repr s =
  try
    Ok
      (Vec.of_array
         (Array.of_list
            (List.map float_of_string (String.split_on_char '/' s))))
  with _ -> Error (Printf.sprintf "bad vector %S" s)

let mode_repr = function Naive -> "naive" | Pruned -> "pruned"

let mode_of_repr = function
  | "naive" -> Ok Naive
  | "pruned" -> Ok Pruned
  | s -> Error (Printf.sprintf "bad mode %S" s)

let mutant_repr = function
  | None -> "~"
  | Some Party.Non_contracting_update -> "non-contracting"
  | Some Party.Premature_output -> "premature-output"

let mutant_of_repr = function
  | "~" -> Ok None
  | "non-contracting" -> Ok (Some Party.Non_contracting_update)
  | "premature-output" -> Ok (Some Party.Premature_output)
  | s -> Error (Printf.sprintf "bad mutant %S" s)

let adversary_repr = function
  | Honest -> "honest"
  | Crash { party; max_tick } -> Printf.sprintf "crash:%d:%d" party max_tick
  | Equivocator { party; values = va, vb } ->
      Printf.sprintf "equiv:%d:%s:%s" party (vec_repr va) (vec_repr vb)

let adversary_of_repr s =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ "honest" ] -> Ok Honest
  | [ "crash"; p; t ] -> (
      match (int_of_string_opt p, int_of_string_opt t) with
      | Some party, Some max_tick -> Ok (Crash { party; max_tick })
      | _ -> Error (Printf.sprintf "bad crash adversary %S" s))
  | [ "equiv"; p; va; vb ] -> (
      match int_of_string_opt p with
      | None -> Error (Printf.sprintf "bad equivocator party %S" p)
      | Some party ->
          let* va = vec_of_repr va in
          let* vb = vec_of_repr vb in
          Ok (Equivocator { party; values = (va, vb) }))
  | _ -> Error (Printf.sprintf "bad adversary %S" s)

let protocol_repr = function `Maaa -> "maaa" | `Ew -> "ew"

let protocol_of_repr = function
  | "maaa" -> Ok `Maaa
  | "ew" -> Ok `Ew
  | s -> Error (Printf.sprintf "bad protocol %S" s)

let schedule_repr = function
  | [] -> "~"
  | s -> String.concat "-" (List.map string_of_int s)

let schedule_of_repr = function
  | "~" -> Ok []
  | s -> (
      let parts = String.split_on_char '-' s in
      match
        List.fold_right
          (fun p acc ->
            match (acc, int_of_string_opt p) with
            | Some tl, Some i when i >= 0 -> Some (i :: tl)
            | _ -> None)
          parts (Some [])
      with
      | Some sched -> Ok sched
      | None -> Error (Printf.sprintf "bad schedule %S" s))

let plan_repr = function [] -> "~" | plan -> Fault_plan.to_repr plan

let plan_of_repr = function "~" -> Ok [] | s -> Fault_plan.of_repr s

let header_line config =
  let cfg = config.cfg in
  String.concat "\t"
    [
      schema;
      "mode=" ^ mode_repr config.mode;
      Printf.sprintf "n=%d" cfg.Config.n;
      Printf.sprintf "d=%d" cfg.Config.d;
      Printf.sprintf "ts=%d" cfg.Config.ts;
      Printf.sprintf "ta=%d" cfg.Config.ta;
      Printf.sprintf "eps=%h" cfg.Config.eps;
      Printf.sprintf "delta=%d" cfg.Config.delta;
      "protocol=" ^ protocol_repr config.protocol;
      "mutant=" ^ mutant_repr config.mutant;
      "adversary=" ^ enc (adversary_repr config.adversary);
      "inputs=" ^ enc (String.concat "|" (List.map vec_repr config.inputs));
      Printf.sprintf "max-events=%d" config.max_events;
      Printf.sprintf "max-execs=%d" config.max_executions;
      Printf.sprintf "depth=%d" config.max_schedule_depth;
      Printf.sprintf "max-cx=%d" config.max_counterexamples;
      ".";
    ]

let stats_line r =
  String.concat "\t"
    [
      "stats";
      Printf.sprintf "execs=%d" r.executions;
      Printf.sprintf "points=%d" r.choice_points;
      Printf.sprintf "truncated=%d" r.truncated;
      Printf.sprintf "cuts=%d" r.dedup_cuts;
      Printf.sprintf "states=%d" r.distinct_states;
      Printf.sprintf "exhausted=%d" (if r.exhausted then 1 else 0);
      ".";
    ]

let case_line cx =
  String.concat "\t"
    [
      "case";
      "invariants=" ^ String.concat "," cx.cx_invariants;
      "plan=" ^ enc (plan_repr cx.cx_plan);
      "schedule=" ^ schedule_repr cx.cx_schedule;
      "shrunk-plan=" ^ enc (plan_repr cx.cx_shrunk_plan);
      "shrunk-schedule=" ^ schedule_repr cx.cx_shrunk_schedule;
      Printf.sprintf "tries=%d" cx.cx_tries;
      Printf.sprintf "minimal=%d" (if cx.cx_minimal then 1 else 0);
      ".";
    ]

let write_quarantine ~path config report =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header_line config);
      output_char oc '\n';
      output_string oc (stats_line report);
      output_char oc '\n';
      List.iter
        (fun cx ->
          output_string oc (case_line cx);
          output_char oc '\n')
        report.counterexamples)

(* -- parsing + replay -- *)

let field ~line ~what s key =
  match String.index_opt s '=' with
  | Some i when String.sub s 0 i = key ->
      Ok (String.sub s (i + 1) (String.length s - i - 2 + 1))
  | _ -> Error (Printf.sprintf "line %d: expected %s field %S" line what key)

let int_field ~line s key =
  Result.bind (field ~line ~what:"integer" s key) (fun v ->
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "line %d: bad integer %S for %s" line v key))

let float_field ~line s key =
  Result.bind (field ~line ~what:"float" s key) (fun v ->
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "line %d: bad float %S for %s" line v key))

let parse_header line s =
  let ( let* ) = Result.bind in
  match String.split_on_char '\t' s with
  | [
   sc; mode; n; d; ts; ta; eps; delta; protocol; mutant; adversary; inputs;
   max_events; max_execs; depth; max_cx; ".";
  ]
    when sc = schema ->
      let* mode = Result.bind (field ~line ~what:"mode" mode "mode") mode_of_repr in
      let* n = int_field ~line n "n" in
      let* d = int_field ~line d "d" in
      let* ts = int_field ~line ts "ts" in
      let* ta = int_field ~line ta "ta" in
      let* eps = float_field ~line eps "eps" in
      let* delta = int_field ~line delta "delta" in
      let* protocol =
        Result.bind (field ~line ~what:"protocol" protocol "protocol")
          protocol_of_repr
      in
      let* mutant =
        Result.bind (field ~line ~what:"mutant" mutant "mutant") mutant_of_repr
      in
      let* adversary =
        Result.bind (field ~line ~what:"adversary" adversary "adversary")
          (fun v -> adversary_of_repr (dec v))
      in
      let* inputs_s = field ~line ~what:"inputs" inputs "inputs" in
      let* inputs =
        List.fold_right
          (fun v acc ->
            let* acc = acc in
            let* v = vec_of_repr v in
            Ok (v :: acc))
          (String.split_on_char '|' (dec inputs_s))
          (Ok [])
      in
      let* max_events = int_field ~line max_events "max-events" in
      let* max_executions = int_field ~line max_execs "max-execs" in
      let* max_schedule_depth = int_field ~line depth "depth" in
      let* max_counterexamples = int_field ~line max_cx "max-cx" in
      let* cfg =
        match Config.make ~n ~ts ~ta ~d ~eps ~delta with
        | Ok cfg -> Ok cfg
        | Error e -> Error (Printf.sprintf "line %d: %s" line e)
      in
      if List.length inputs <> n then
        Error (Printf.sprintf "line %d: %d inputs for n=%d" line
                 (List.length inputs) n)
      else
        Ok
          {
            cfg;
            inputs;
            mode;
            adversary;
            mutant;
            protocol;
            max_events;
            max_executions;
            max_schedule_depth;
            max_counterexamples;
          }
  | _ -> Error (Printf.sprintf "line %d: malformed quarantine header" line)

let parse_case line s =
  let ( let* ) = Result.bind in
  match String.split_on_char '\t' s with
  | [ "case"; invs; plan; sched; splan; ssched; tries; minimal; "." ] ->
      let* invs_s = field ~line ~what:"invariants" invs "invariants" in
      let invariants =
        List.filter (fun s -> s <> "") (String.split_on_char ',' invs_s)
      in
      let* plan =
        Result.bind (field ~line ~what:"plan" plan "plan") (fun v ->
            plan_of_repr (dec v))
      in
      let* schedule =
        Result.bind (field ~line ~what:"schedule" sched "schedule")
          schedule_of_repr
      in
      let* shrunk_plan =
        Result.bind (field ~line ~what:"shrunk plan" splan "shrunk-plan")
          (fun v -> plan_of_repr (dec v))
      in
      let* shrunk_schedule =
        Result.bind
          (field ~line ~what:"shrunk schedule" ssched "shrunk-schedule")
          schedule_of_repr
      in
      let* tries = int_field ~line tries "tries" in
      let* minimal = int_field ~line minimal "minimal" in
      Ok
        {
          cx_plan = plan;
          cx_schedule = schedule;
          cx_invariants = invariants;
          cx_shrunk_plan = shrunk_plan;
          cx_shrunk_schedule = shrunk_schedule;
          cx_tries = tries;
          cx_minimal = minimal <> 0;
        }
  | _ -> Error (Printf.sprintf "line %d: malformed case line" line)

type replay_outcome = {
  rp_total : int;
  rp_reproduced : int;
  rp_failures : string list;
}

let replay_quarantine ~path =
  let ( let* ) = Result.bind in
  let* lines =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | l -> go (l :: acc)
            | exception End_of_file -> List.rev acc
          in
          Ok (go []))
    with Sys_error e -> Error e
  in
  match lines with
  | [] -> Error "empty quarantine file"
  | header :: rest ->
      let* config = parse_header 1 header in
      let* cases =
        List.fold_left
          (fun acc (i, l) ->
            let* acc = acc in
            if l = "" || String.length l >= 5 && String.sub l 0 5 = "stats"
            then Ok acc
            else
              let* cx = parse_case (i + 2) l in
              Ok (cx :: acc))
          (Ok [])
          (List.mapi (fun i l -> (i, l)) rest)
      in
      let cases = List.rev cases in
      let failures = ref [] in
      let reproduced = ref 0 in
      List.iteri
        (fun i cx ->
          let got =
            replay config ~plan:cx.cx_shrunk_plan ~schedule:cx.cx_shrunk_schedule
          in
          if subset_of cx.cx_invariants got then incr reproduced
          else
            failures :=
              Printf.sprintf
                "case %d: expected violations {%s}, replay produced {%s}"
                (i + 1)
                (String.concat ", " cx.cx_invariants)
                (String.concat ", " got)
              :: !failures)
        cases;
      Ok
        {
          rp_total = List.length cases;
          rp_reproduced = !reproduced;
          rp_failures = List.rev !failures;
        }
