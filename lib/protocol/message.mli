(** The on-the-wire message type shared by every protocol in this
    repository.

    Sub-protocol instances are identified by an {!rbc_id}: a {!tag} naming
    the purpose (and, where applicable, the iteration) plus the [origin] —
    the designated sender of that reliable-broadcast instance. This plays
    the role of the "identification numbers" the paper attaches to messages
    and then omits for presentation.

    On top of that, every multiplexable message carries a protocol
    {e instance} id: the multi-instance engine ({!Multi_runner}) hosts many
    concurrent ΠAA/EW runs in one event loop, and the instance id is what
    keeps their vote tables apart — exactly the way rBC ids already keep
    concurrent broadcasts apart. Single-run code constructs everything with
    [instance = 0]; the multiplexer rewrites ids at its send boundary with
    {!with_instance} and routes deliveries with {!instance_of}. *)

type tag =
  | Init_value  (** Πinit: input distribution *)
  | Init_report  (** Πinit: reliably-broadcast report sets *)
  | Obc_value of int  (** ΠoBC value distribution in iteration [it] *)
  | Halt of int  (** ΠAA: [(halt, it)] messages *)
  | Async_value of int  (** pure-async baseline: iteration values *)
  | Async_report of int  (** pure-async baseline: witness reports *)

type rbc_id = { tag : tag; origin : int; instance : int }

type payload =
  | Pvec of Vec.t
  | Ppairs of (int * Vec.t) list  (** value–party pairs, by party id *)
  | Pint of int
  | Pparties of int list

type step = Init | Echo | Ready
(** Bracha's three message kinds. *)

type t =
  | Rbc of rbc_id * step * payload
  | Rbc_batch of (rbc_id * step * payload) list
      (** batched message layer: every rBC vote a party emits within one
          delivery tick, across all concurrent instances, packed into one
          packet per (sender, receiver). Entries are in emission order. *)
  | Obc_report of { instance : int; iter : int; pairs : (int * Vec.t) list }
      (** ΠoBC's best-effort report (line 6 of the protocol) *)
  | Witness_set of { instance : int; parties : int list }
      (** Πinit line 13: best-effort witness sets *)
  | Sync_round of { round : int; value : Vec.t }
      (** pure-synchronous baseline: round-[r] value exchange *)
  | Ew_value of { instance : int; iter : int; value : Vec.t }
      (** Erbes–Wattenhofer quadratic AA: direct iteration-[iter] value *)
  | Ew_echo of { instance : int; iter : int; pairs : (int * Vec.t) list }
      (** Erbes–Wattenhofer quadratic AA, equivocation defence: the sender
          vouches that it received value [v] directly from party [p], for
          each listed pair. A pair enters a receiver's value set only once
          [n − t] distinct parties echo the same [(p, v)] — the
          echo-confirmation quorum that replaces per-value reliable
          broadcast (see {!Ew_aa}). *)
  | Ew_report of { instance : int; iter : int; pairs : (int * Vec.t) list }
      (** Erbes–Wattenhofer quadratic AA: direct witness report *)
  | Junk of int  (** adversarial noise *)

val with_instance_id : int -> rbc_id -> rbc_id
(** Retags one rBC id (physically equal when already tagged [j]). *)

val with_instance : int -> t -> t
(** [with_instance j m] retags [m] (including every {!Rbc_batch} entry)
    with instance id [j]. Physically returns [m] itself when the tag is
    already [j] — single-instance traffic pays nothing. [Sync_round] and
    [Junk] are not multiplexable and pass through unchanged. *)

val instance_of : t -> int
(** The instance id a delivery routes to; 0 for non-multiplexable
    messages. A batch routes by its first entry (mixed batches are split
    by the multiplexer before routing). *)

val size_of : t -> int
(** Approximate serialised size in bytes, for traffic accounting. The
    16-byte header already accounts for the instance id, so sizes are
    identical whichever instance a message is tagged with. *)

val size_of_entry : rbc_id * step * payload -> int
(** Wire cost of one {!Rbc_batch} entry: an 8-byte (tag, origin, step)
    descriptor plus the payload — the 16-byte packet header is paid once
    per batch, which is the point of batching. *)

val pp : Format.formatter -> t -> unit
