(* Hash-consing of received message payloads into dense small-int ids.

   One table lives in each party (see Party); every payload a party
   receives is interned exactly once at receipt, so the n² reliable
   broadcast instances of an iteration that all carry the same value (or
   the same Ppairs report — the largest payloads on the wire) share one
   id, one canonical representative, and from then on compare by [=] on
   ints instead of [Stdlib.compare] over float vectors.

   Hash and equality are structural but specialized per constructor —
   vectors by their float-array bits via [Vec.hash]/[Vec.equal_exact] —
   so no polymorphic comparison or hashing runs anywhere on the hot
   path. The equality is exactly the relation of [Stdlib.compare] = 0 on
   payloads (Float.compare per coordinate), which is what the reference
   PayloadMap keyed on; interned ids therefore partition payloads the
   same way the reference vote maps did. *)

type entry = { hash : int; id : int }

type t = {
  mutable buckets : entry list array;  (* hash-indexed chains *)
  mutable payloads : Message.payload array;  (* id -> canonical payload *)
  mutable count : int;
  fixed : bool;  (* never grow: test hook to force collision chains *)
  (* 1-entry physical-equality memo: a broadcast fans the same payload
     block out to every receiver, and re-broadcasts carry the canonical
     representative, so most receipts are [==] to the previous one —
     phys-equal implies structurally equal, so skipping the hash is
     sound. [last_id] is -1 while empty. *)
  mutable last_p : Message.payload;
  mutable last_id : int;
  (* lookup accounting: a hit finds an existing id (memo or bucket), a
     miss allocates a fresh one. Exposed through Runner.result so shared-
     table efficacy across multiplexed instances is measurable. *)
  mutable hits : int;
  mutable misses : int;
}

let hash_int_list l =
  List.fold_left (fun h p -> ((h * 0x01000193) lxor p) land max_int) 0x2f0e1 l

let hash_payload = function
  | Message.Pvec v -> Vec.hash v lxor 0x11
  | Message.Ppairs ps ->
      List.fold_left
        (fun h (p, v) ->
          (((h * 0x01000193) lxor p lxor Vec.hash v) land max_int))
        0x22 ps
  | Message.Pint i -> (i lxor 0x33) land max_int
  | Message.Pparties ps -> hash_int_list ps lxor 0x44

let equal_payload a b =
  match (a, b) with
  | Message.Pvec u, Message.Pvec v -> Vec.equal_exact u v
  | Message.Ppairs us, Message.Ppairs vs ->
      List.compare_lengths us vs = 0
      && List.for_all2
           (fun (p, u) (q, v) -> p = q && Vec.equal_exact u v)
           us vs
  | Message.Pint i, Message.Pint j -> i = j
  | Message.Pparties us, Message.Pparties vs ->
      List.compare_lengths us vs = 0 && List.for_all2 ( = ) us vs
  | _ -> false

let dummy = Message.Pint 0

let create ?(initial_size = 64) ?(fixed = false) () =
  let size = max 1 initial_size in
  (* non-fixed tables index buckets by mask, so round up to a power of 2 *)
  let size =
    if fixed then size
    else begin
      let p = ref 1 in
      while !p < size do
        p := !p * 2
      done;
      !p
    end
  in
  {
    buckets = Array.make size [];
    payloads = Array.make (max 8 size) dummy;
    count = 0;
    fixed;
    last_p = dummy;
    last_id = -1;
    hits = 0;
    misses = 0;
  }

let count t = t.count
let hits t = t.hits
let misses t = t.misses

let rehash t =
  let size = 2 * Array.length t.buckets in
  let buckets = Array.make size [] in
  Array.iter
    (List.iter (fun e ->
         let b = e.hash land (size - 1) in
         buckets.(b) <- e :: buckets.(b)))
    t.buckets;
  t.buckets <- buckets

(* Bucket index: when the bucket count is a power of two this is a mask;
   a [fixed] table may have any size, so use mod there. *)
let bucket_of t h =
  let size = Array.length t.buckets in
  if t.fixed then h mod size else h land (size - 1)

let payload t id =
  if id < 0 || id >= t.count then invalid_arg "Intern.payload: bad id";
  t.payloads.(id)

let intern t p =
  if t.last_id >= 0 && p == t.last_p then begin
    t.hits <- t.hits + 1;
    t.last_id
  end
  else begin
    let h = hash_payload p in
    let b = bucket_of t h in
    let rec find = function
      | [] -> -1
      | e :: rest ->
          if e.hash = h && equal_payload t.payloads.(e.id) p then e.id
          else find rest
    in
    let id =
      match find t.buckets.(b) with
      | id when id >= 0 ->
          t.hits <- t.hits + 1;
          id
      | _ ->
          t.misses <- t.misses + 1;
          let id = t.count in
          if id = Array.length t.payloads then begin
            let bigger = Array.make (2 * id) dummy in
            Array.blit t.payloads 0 bigger 0 id;
            t.payloads <- bigger
          end;
          t.payloads.(id) <- p;
          t.count <- id + 1;
          t.buckets.(b) <- { hash = h; id } :: t.buckets.(b);
          if (not t.fixed) && t.count > 2 * Array.length t.buckets then
            rehash t;
          id
    in
    t.last_p <- p;
    t.last_id <- id;
    id
  end

let intern_payload t p = payload t (intern t p)

let reset t =
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  Array.fill t.payloads 0 (Array.length t.payloads) dummy;
  t.count <- 0;
  t.last_p <- dummy;
  t.last_id <- -1;
  t.hits <- 0;
  t.misses <- 0
