type tag =
  | Init_value
  | Init_report
  | Obc_value of int
  | Halt of int
  | Async_value of int
  | Async_report of int

type rbc_id = { tag : tag; origin : int; instance : int }

type payload =
  | Pvec of Vec.t
  | Ppairs of (int * Vec.t) list
  | Pint of int
  | Pparties of int list

type step = Init | Echo | Ready

type t =
  | Rbc of rbc_id * step * payload
  | Rbc_batch of (rbc_id * step * payload) list
  | Obc_report of { instance : int; iter : int; pairs : (int * Vec.t) list }
  | Witness_set of { instance : int; parties : int list }
  | Sync_round of { round : int; value : Vec.t }
  | Ew_value of { instance : int; iter : int; value : Vec.t }
  | Ew_echo of { instance : int; iter : int; pairs : (int * Vec.t) list }
  | Ew_report of { instance : int; iter : int; pairs : (int * Vec.t) list }
  | Junk of int

let size_of_payload = function
  | Pvec v -> 8 * Vec.dim v
  | Ppairs ps ->
      List.fold_left (fun acc (_, v) -> acc + 4 + (8 * Vec.dim v)) 0 ps
  | Pint _ -> 8
  | Pparties ps -> 4 * List.length ps

(* A batch pays the 16-byte packet header once; each entry then costs an
   8-byte (tag, origin, step) descriptor plus its payload — that
   amortisation is the whole point of batching. *)
let size_of_entry (_, _, p) = 8 + size_of_payload p

let size_of = function
  | Rbc (_, _, p) -> 16 + size_of_payload p
  | Rbc_batch entries ->
      List.fold_left (fun acc e -> acc + size_of_entry e) 16 entries
  | Obc_report { pairs; _ } -> 16 + size_of_payload (Ppairs pairs)
  | Witness_set { parties; _ } -> 16 + (4 * List.length parties)
  | Sync_round { value; _ } -> 16 + (8 * Vec.dim value)
  | Ew_value { value; _ } -> 16 + (8 * Vec.dim value)
  | Ew_echo { pairs; _ } -> 16 + size_of_payload (Ppairs pairs)
  | Ew_report { pairs; _ } -> 16 + size_of_payload (Ppairs pairs)
  | Junk n -> 16 + n

(* -- instance multiplexing -- *)

let with_instance_id j (id : rbc_id) =
  if id.instance = j then id else { id with instance = j }

let with_instance j = function
  | Rbc (id, step, p) -> Rbc (with_instance_id j id, step, p)
  | Rbc_batch entries ->
      Rbc_batch
        (List.map (fun (id, step, p) -> (with_instance_id j id, step, p))
           entries)
  | Obc_report r ->
      if r.instance = j then Obc_report r
      else Obc_report { r with instance = j }
  | Witness_set w ->
      if w.instance = j then Witness_set w
      else Witness_set { w with instance = j }
  | Ew_value r ->
      if r.instance = j then Ew_value r else Ew_value { r with instance = j }
  | Ew_echo r ->
      if r.instance = j then Ew_echo r else Ew_echo { r with instance = j }
  | Ew_report r ->
      if r.instance = j then Ew_report r else Ew_report { r with instance = j }
  | (Sync_round _ | Junk _) as m -> m

let instance_of = function
  | Rbc (id, _, _) -> id.instance
  | Rbc_batch ((id, _, _) :: _) -> id.instance
  | Rbc_batch [] -> 0
  | Obc_report { instance; _ }
  | Witness_set { instance; _ }
  | Ew_value { instance; _ }
  | Ew_echo { instance; _ }
  | Ew_report { instance; _ } ->
      instance
  | Sync_round _ | Junk _ -> 0

let pp_tag ppf = function
  | Init_value -> Format.fprintf ppf "init-value"
  | Init_report -> Format.fprintf ppf "init-report"
  | Obc_value it -> Format.fprintf ppf "obc[%d]" it
  | Halt it -> Format.fprintf ppf "halt[%d]" it
  | Async_value it -> Format.fprintf ppf "async-value[%d]" it
  | Async_report it -> Format.fprintf ppf "async-report[%d]" it

let pp_step ppf = function
  | Init -> Format.fprintf ppf "init"
  | Echo -> Format.fprintf ppf "echo"
  | Ready -> Format.fprintf ppf "ready"

let pp ppf = function
  | Rbc (id, step, _) ->
      Format.fprintf ppf "rbc(%a from P%d, %a)" pp_tag id.tag id.origin
        pp_step step
  | Rbc_batch entries ->
      Format.fprintf ppf "rbc-batch(%d entries)" (List.length entries)
  | Obc_report { iter; pairs; _ } ->
      Format.fprintf ppf "obc-report[%d] (%d pairs)" iter (List.length pairs)
  | Witness_set { parties; _ } ->
      Format.fprintf ppf "witness-set (%d)" (List.length parties)
  | Sync_round { round; _ } -> Format.fprintf ppf "sync-round[%d]" round
  | Ew_value { iter; _ } -> Format.fprintf ppf "ew-value[%d]" iter
  | Ew_echo { iter; pairs; _ } ->
      Format.fprintf ppf "ew-echo[%d] (%d pairs)" iter (List.length pairs)
  | Ew_report { iter; pairs; _ } ->
      Format.fprintf ppf "ew-report[%d] (%d pairs)" iter (List.length pairs)
  | Junk n -> Format.fprintf ppf "junk(%d)" n
