(** Per-party hash-consing of {!Message.payload}s into dense small-int
    ids — the message-layer fast path.

    ΠAA multiplexes Θ(n²) reliable-broadcast instances per iteration,
    each exchanging Θ(n²) echo/ready messages, and most of those
    messages carry one of only a handful of distinct payloads (an
    origin's value vector, or an origin's report — the same [Ppairs]
    list rides through all n² instances that echo it). Interning maps
    each {e structurally distinct} payload to an id exactly once at
    receipt; all further vote accounting is integer comparisons and flat
    array indexing, and the canonical representative is shared in
    memory.

    Hash and equality are specialized per constructor ({!Vec.hash} /
    {!Vec.equal_exact} on vectors — float-array bits, NaN-safe); no
    polymorphic [Stdlib.compare] or [Hashtbl.hash] is involved. Two
    payloads receive the same id iff [Stdlib.compare] would call them
    equal, so interned vote tables partition votes exactly like the
    reference [PayloadMap] did. *)

type t

val create : ?initial_size:int -> ?fixed:bool -> unit -> t
(** A fresh, empty table. [initial_size] (default 64) sizes the bucket
    array; with [fixed:true] the bucket array {e never grows} — a test
    hook that forces hash-collision chains (e.g. [initial_size:1] puts
    every payload in one bucket). Production tables resize at load
    factor 2. *)

val intern : t -> Message.payload -> int
(** The id of the payload: a fresh dense id ([0], [1], [2], …) on first
    sight, the existing id for any structurally equal payload after. *)

val payload : t -> int -> Message.payload
(** The canonical representative interned under this id (the first
    structurally-equal payload received).
    @raise Invalid_argument on an id this table never produced. *)

val intern_payload : t -> Message.payload -> Message.payload
(** [payload t (intern t p)] — canonicalize in one call. *)

val count : t -> int
(** Number of distinct payloads interned so far. *)

val hits : t -> int
(** Lookups that found an existing id (1-entry memo hits included). *)

val misses : t -> int
(** Lookups that allocated a fresh id ([= count] until a {!reset}). *)

val reset : t -> unit
(** Empty the table, keeping its buffers, so a party object can be
    reused across runs without leaking payloads between them. Ids
    restart at [0]. *)
