(** Quadratic-communication asynchronous approximate agreement in the
    style of Erbes–Wattenhofer ("Asynchronous Approximate Agreement with
    Quadratic Communication").

    Structurally this is {!Async_aa} with the reliable-broadcast layer
    removed: values and witness reports travel as {e direct} one-to-all
    messages over the authenticated channels, so one iteration costs
    [2·n] sends per party — Θ(n²) messages per iteration in total, versus
    the Θ(n³) the Bracha-based protocols pay ([n] rBC instances × [n +
    2n²] sends each). Each iteration: broadcast the current value
    directly; wait for [n − t] values into [M]; broadcast [M] as a
    report; mark report senders whose report is a ≥ [n − t]-subset of
    one's own [M] as witnesses; on [n − t] witnesses trim [t] outliers
    via the safe area and adopt the diameter-pair midpoint. A fixed
    iteration count is supplied by the harness, as for {!Async_aa}.

    Simplification relative to the paper: with rBC gone, nothing forces a
    Byzantine sender to show the same value to everyone, and this module
    adds no equivocation defence (the paper layers a lightweight
    consistency mechanism for that). Within this repository's adversary
    universe — whose behaviours never equivocate on EW message types —
    the distinction is unobservable, and the monitor grades the protocol
    under silent/crash/noise corruption; see DESIGN.md §7. *)

type t

type callbacks = {
  on_iteration : iter:int -> Vec.t -> unit;
      (** fired when [v_iter] is adopted; also with [iter = 0] for the
          input *)
  on_output : iter:int -> Vec.t -> unit;  (** fired once, on output *)
}

val no_callbacks : callbacks

val attach :
  ?callbacks:callbacks ->
  n:int ->
  t:int ->
  iters:int ->
  me:int ->
  Message.t Engine.t ->
  t
(** Correct against [t < n/(D+2)] corruptions, any network. Convenience
    wrapper over {!attach_endpoint} with the simulator's endpoint. *)

val attach_endpoint :
  ?callbacks:callbacks ->
  t:int ->
  iters:int ->
  Message.t Transport.endpoint ->
  t
(** Attach onto an arbitrary transport endpoint ([n] comes from the
    endpoint). This is what lets the multi-instance engine host EW
    instances alongside ΠAA ones. *)

val start : t -> Vec.t -> unit
val output : t -> Vec.t option
val output_iteration : t -> int option
(** The iteration the output was adopted at ([iters]), once output. *)

val current_iteration : t -> int
val value_history : t -> (int * Vec.t) list
val output_time : t -> int option
