(** Quadratic-communication asynchronous approximate agreement in the
    style of Erbes–Wattenhofer ("Asynchronous Approximate Agreement with
    Quadratic Communication").

    Structurally this is {!Async_aa} with the reliable-broadcast layer
    removed: values and witness reports travel as {e direct} one-to-all
    messages over the authenticated channels, so one iteration costs
    [2·n] sends per party — Θ(n²) messages per iteration in total, versus
    the Θ(n³) the Bracha-based protocols pay ([n] rBC instances × [n +
    2n²] sends each). Each iteration: broadcast the current value
    directly; wait for [n − t] values into [M]; broadcast [M] as a
    report; mark report senders whose report is a ≥ [n − t]-subset of
    one's own [M] as witnesses; on [n − t] witnesses trim [t] outliers
    via the safe area and adopt the diameter-pair midpoint. A fixed
    iteration count is supplied by the harness, as for {!Async_aa}.

    With rBC gone, nothing intrinsically forces a Byzantine sender to
    show the same value to everyone; the paper layers a lightweight
    consistency mechanism over the direct channels to restore that. This
    module implements an {e echo-confirmation} defence in that role,
    enabled by [?equivocation_defence] (default off, keeping the legacy
    wire behaviour byte-identical for the pinned message-count and
    differential gates):

    - each party records the first value received directly from each
      sender ([raw], first-wins per sender);
    - once [n − t] direct values have arrived it broadcasts its raw pairs
      as {!Message.Ew_echo} {e claims}, and thereafter one delta claim
      per later direct arrival;
    - a pair [(p, v)] is {e confirmed} into the value set [M] once
      [n − t] distinct parties have echoed it. Reports, the witness
      subset test and safe-area adoption all read confirmed [M] only.

    Safety: honest parties echo at most one value per claimed sender, so
    two conflicting pairs for one sender would need [2(n − 2t) ≤ n − t]
    honest echoers — impossible for [n > 3t]. An equivocating value
    therefore either confirms to a single vector everywhere or confirms
    nowhere, which is exactly the guarantee rBC provided in the cubic
    baseline. Liveness: every honest pair is eventually echoed by all
    [n − t] honest parties (in their batch claim or a delta), so it
    confirms everywhere. Cost: one claim broadcast per party plus at most
    [t + 1] deltas — Θ(n²) messages per iteration in the common case,
    preserving the quadratic bound (worst case Θ(t·n²) with maximally
    staggered deliveries).

    Without the defence, an equivocating sender can split honest value
    sets so that no honest report ever passes another party's subset
    test: witness counts stall below [n − t] and {e no honest party
    outputs} — the failure mode pinned by [test_explore]'s equivocation
    test. The monitor grades the defence-off configuration only under
    this repository's non-equivocating adversary universe; see DESIGN.md
    §7. *)

type t

type callbacks = {
  on_iteration : iter:int -> Vec.t -> unit;
      (** fired when [v_iter] is adopted; also with [iter = 0] for the
          input *)
  on_output : iter:int -> Vec.t -> unit;  (** fired once, on output *)
}

val no_callbacks : callbacks

val attach :
  ?callbacks:callbacks ->
  ?equivocation_defence:bool ->
  n:int ->
  t:int ->
  iters:int ->
  me:int ->
  Message.t Engine.t ->
  t
(** Correct against [t < n/(D+2)] corruptions, any network. Convenience
    wrapper over {!attach_endpoint} with the simulator's endpoint. *)

val attach_endpoint :
  ?callbacks:callbacks ->
  ?equivocation_defence:bool ->
  t:int ->
  iters:int ->
  Message.t Transport.endpoint ->
  t
(** Attach onto an arbitrary transport endpoint ([n] comes from the
    endpoint). This is what lets the multi-instance engine host EW
    instances alongside ΠAA ones. [equivocation_defence] (default
    [false]) switches the value path to echo-confirmation as described
    above; off, the wire behaviour is byte-identical to previous
    versions. *)

val start : t -> Vec.t -> unit
val output : t -> Vec.t option
val output_iteration : t -> int option
(** The iteration the output was adopted at ([iters]), once output. *)

val current_iteration : t -> int
val value_history : t -> (int * Vec.t) list
val output_time : t -> int option
