module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type callbacks = {
  on_iteration : iter:int -> Vec.t -> unit;
  on_output : iter:int -> Vec.t -> unit;
}

let no_callbacks =
  { on_iteration = (fun ~iter:_ _ -> ()); on_output = (fun ~iter:_ _ -> ()) }

type iter_state = {
  mutable m : Pairset.t;
  mutable witnesses : IntSet.t;
  mutable pending : Pairset.t IntMap.t;
  mutable seen_report : IntSet.t;
  mutable sent_report : bool;
  (* Equivocation-defence state, untouched when the defence is off. [raw]
     holds the first value received directly from each sender; [support]
     maps a claimed sender to the echo-supporter set of each value claimed
     for it. *)
  mutable raw : Pairset.t;
  mutable support : (Vec.t * IntSet.t) list IntMap.t;
  mutable sent_claims : bool;
}

type t = {
  n : int;
  thr : int;
  iters : int;
  defence : bool;
  now : unit -> int;
  send_all : Message.t -> unit;
  cbs : callbacks;
  states : (int, iter_state) Hashtbl.t;
  history : (int, Vec.t) Hashtbl.t;
  mutable iter : int;
  mutable value : Vec.t option;
  mutable output : Vec.t option;
  mutable output_time : int option;
}

let output t = t.output
let output_time t = t.output_time
let output_iteration t = if t.output = None then None else Some t.iters
let current_iteration t = t.iter

let value_history t =
  Hashtbl.fold (fun r v acc -> (r, v) :: acc) t.history []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let state t it =
  match Hashtbl.find_opt t.states it with
  | Some s -> s
  | None ->
      let s =
        {
          m = Pairset.empty;
          witnesses = IntSet.empty;
          pending = IntMap.empty;
          seen_report = IntSet.empty;
          sent_report = false;
          raw = Pairset.empty;
          support = IntMap.empty;
          sent_claims = false;
        }
      in
      Hashtbl.add t.states it s;
      s

let broadcast_value t it v =
  t.send_all (Message.Ew_value { instance = 0; iter = it; value = v })

let rec step t =
  if t.output = None then begin
    let it = t.iter in
    let s = state t it in
    if (not s.sent_report) && Pairset.cardinal s.m >= t.n - t.thr then begin
      s.sent_report <- true;
      t.send_all
        (Message.Ew_report
           { instance = 0; iter = it; pairs = Pairset.bindings s.m })
    end;
    let validated, rest =
      IntMap.partition
        (fun _ report ->
          Pairset.cardinal report >= t.n - t.thr && Pairset.subset report s.m)
        s.pending
    in
    s.pending <- rest;
    IntMap.iter
      (fun from _ -> s.witnesses <- IntSet.add from s.witnesses)
      validated;
    if s.sent_report && IntSet.cardinal s.witnesses >= t.n - t.thr then begin
      match Safe_area.new_value_arr ~t:t.thr (Pairset.values_arr s.m) with
      | Some v ->
          t.value <- Some v;
          Hashtbl.replace t.history it v;
          t.cbs.on_iteration ~iter:it v;
          if it >= t.iters then begin
            t.output <- Some v;
            t.output_time <- Some (t.now ());
            t.cbs.on_output ~iter:it v
          end
          else begin
            t.iter <- it + 1;
            broadcast_value t t.iter v;
            step t
          end
      | None ->
          (* corruption count beyond the (D+2)·t < n envelope: stall
             rather than crash, as in the rBC-based baseline *)
          ()
    end
  end

let valid_party t p = p >= 0 && p < t.n

(* Equivocation defence: fold one echo vote from [voter] for the claim
   "party [p] sent value [v]". A pair is confirmed into [s.m] once n − t
   distinct parties echo it. Honest parties echo at most one value per
   claimed sender (their [raw] binding is first-wins), so two conflicting
   pairs for the same sender would need 2(n − 2t) ≤ n − t honest echoers
   — impossible for n > 3t — and [s.m] stays consistent across honest
   parties without per-value reliable broadcast. *)
let add_support t s ~voter ~p ~v =
  if valid_party t p && not (Pairset.mem_party p s.m) then begin
    let votes = try IntMap.find p s.support with Not_found -> [] in
    let updated, confirmed =
      let rec go acc = function
        | [] -> (List.rev ((v, IntSet.singleton voter) :: acc), t.n - t.thr <= 1)
        | (v', sup) :: rest when Vec.equal_exact v v' ->
            let sup = IntSet.add voter sup in
            (List.rev_append acc ((v', sup) :: rest),
             IntSet.cardinal sup >= t.n - t.thr)
        | entry :: rest -> go (entry :: acc) rest
      in
      go [] votes
    in
    s.support <- IntMap.add p updated s.support;
    if confirmed then begin
      s.m <- Pairset.add ~party:p v s.m;
      true
    end
    else false
  end
  else false

(* Channels are authenticated, so [src] plays the role the rBC origin
   field plays in the cubic baseline: a party's first value per iteration
   wins and duplicates (chaos-layer re-deliveries included) are no-ops. *)
let handle t ev =
  match ev with
  | Transport.Deliver
      { src; msg = Message.Ew_value { iter = it; value = v; _ } } ->
      if valid_party t src && it >= 1 then
        if not t.defence then begin
          let s = state t it in
          s.m <- Pairset.add ~party:src v s.m;
          if it = t.iter then step t
        end
        else begin
          let s = state t it in
          if not (Pairset.mem_party src s.raw) then begin
            s.raw <- Pairset.add ~party:src v s.raw;
            if s.sent_claims then
              (* Late direct arrival: a delta claim, so slow senders still
                 gather their echo quorum. *)
              t.send_all
                (Message.Ew_echo { instance = 0; iter = it; pairs = [ (src, v) ] })
            else if Pairset.cardinal s.raw >= t.n - t.thr then begin
              s.sent_claims <- true;
              t.send_all
                (Message.Ew_echo
                   { instance = 0; iter = it; pairs = Pairset.bindings s.raw })
            end
          end
        end
  | Transport.Deliver { src; msg = Message.Ew_echo { iter = it; pairs; _ } } ->
      if t.defence && valid_party t src && it >= 1 then begin
        let s = state t it in
        let grew =
          List.fold_left
            (fun acc (p, v) -> add_support t s ~voter:src ~p ~v || acc)
            false pairs
        in
        if grew && it = t.iter then step t
      end
  | Transport.Deliver { src; msg = Message.Ew_report { iter = it; pairs; _ } }
    ->
      if valid_party t src && it >= 1 then begin
        let s = state t it in
        if not (IntSet.mem src s.seen_report) then begin
          s.seen_report <- IntSet.add src s.seen_report;
          let report =
            List.fold_left
              (fun acc (p, v) ->
                if valid_party t p then Pairset.add ~party:p v acc else acc)
              Pairset.empty pairs
          in
          s.pending <- IntMap.add src report s.pending;
          if it = t.iter then step t
        end
      end
  | Transport.Deliver _ | Transport.Timer _ -> ()

let attach_endpoint ?(callbacks = no_callbacks) ?(equivocation_defence = false)
    ~t:thr ~iters (ep : Message.t Transport.endpoint) =
  let t =
    {
      n = ep.n;
      thr;
      iters;
      defence = equivocation_defence;
      now = ep.now;
      send_all = ep.send_all;
      cbs = callbacks;
      states = Hashtbl.create 16;
      history = Hashtbl.create 16;
      iter = 1;
      value = None;
      output = None;
      output_time = None;
    }
  in
  ep.set_handler (handle t);
  t

let attach ?callbacks ?equivocation_defence ~n ~t:thr ~iters ~me engine =
  let ep = Engine.endpoint engine ~me in
  if ep.n <> n then invalid_arg "Ew_aa.attach: n mismatch";
  attach_endpoint ?callbacks ?equivocation_defence ~t:thr ~iters ep

let start t v =
  t.value <- Some v;
  Hashtbl.replace t.history 0 v;
  t.cbs.on_iteration ~iter:0 v;
  if t.iters = 0 then begin
    t.output <- Some v;
    t.output_time <- Some (t.now ());
    t.cbs.on_output ~iter:0 v
  end
  else broadcast_value t 1 v
