module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type iter_state = {
  mutable m : Pairset.t;
  mutable witnesses : IntSet.t;
  mutable pending : Pairset.t IntMap.t;
  mutable seen_report : IntSet.t;
  mutable sent_report : bool;
}

type t = {
  n : int;
  thr : int;
  iters : int;
  me : int;
  engine : Message.t Engine.t;
  mutable rbc : Rbc.t option;
  states : (int, iter_state) Hashtbl.t;
  history : (int, Vec.t) Hashtbl.t;
  mutable iter : int;
  mutable value : Vec.t option;
  mutable output : Vec.t option;
  mutable output_time : int option;
}

let output t = t.output
let output_time t = t.output_time

let value_history t =
  Hashtbl.fold (fun r v acc -> (r, v) :: acc) t.history []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let state t it =
  match Hashtbl.find_opt t.states it with
  | Some s -> s
  | None ->
      let s =
        {
          m = Pairset.empty;
          witnesses = IntSet.empty;
          pending = IntMap.empty;
          seen_report = IntSet.empty;
          sent_report = false;
        }
      in
      Hashtbl.add t.states it s;
      s

let rbc t = Option.get t.rbc

let broadcast_value t it v =
  Rbc.broadcast (rbc t)
    { Message.tag = Message.Async_value it; origin = t.me; instance = 0 }
    (Message.Pvec v)

let rec step t =
  if t.output = None then begin
    let it = t.iter in
    let s = state t it in
    if (not s.sent_report) && Pairset.cardinal s.m >= t.n - t.thr then begin
      s.sent_report <- true;
      Rbc.broadcast (rbc t)
        { Message.tag = Message.Async_report it; origin = t.me; instance = 0 }
        (Message.Ppairs (Pairset.bindings s.m))
    end;
    let validated, rest =
      IntMap.partition
        (fun _ report ->
          Pairset.cardinal report >= t.n - t.thr && Pairset.subset report s.m)
        s.pending
    in
    s.pending <- rest;
    IntMap.iter
      (fun from _ -> s.witnesses <- IntSet.add from s.witnesses)
      validated;
    if s.sent_report && IntSet.cardinal s.witnesses >= t.n - t.thr then begin
      (* pure asynchronous trim level: always t (here ts = ta = t, so
         max(k, t) = t since k ≤ t) *)
      match Safe_area.new_value_arr ~t:t.thr (Pairset.values_arr s.m) with
      | Some v ->
          t.value <- Some v;
          Hashtbl.replace t.history it v;
          if it >= t.iters then begin
            t.output <- Some v;
            t.output_time <- Some (Engine.now t.engine)
          end
          else begin
            t.iter <- it + 1;
            broadcast_value t t.iter v;
            step t
          end
      | None ->
          (* possible when the corruption count exceeds the protocol's
             envelope (the E12 regime): stall rather than crash *)
          ()
    end
  end

let valid_party t p = p >= 0 && p < t.n

let on_deliver t (id : Message.rbc_id) payload =
  match (id.tag, payload) with
  | Message.Async_value it, Message.Pvec v ->
      if valid_party t id.origin then begin
        let s = state t it in
        s.m <- Pairset.add ~party:id.origin v s.m;
        if it = t.iter then step t
      end
  | Message.Async_report it, Message.Ppairs pairs ->
      if valid_party t id.origin then begin
        let s = state t it in
        if not (IntSet.mem id.origin s.seen_report) then begin
          s.seen_report <- IntSet.add id.origin s.seen_report;
          let report =
            List.fold_left
              (fun acc (p, v) ->
                if valid_party t p then Pairset.add ~party:p v acc else acc)
              Pairset.empty pairs
          in
          s.pending <- IntMap.add id.origin report s.pending;
          if it = t.iter then step t
        end
      end
  | _ -> ()

let handle t ev =
  match ev with
  | Engine.Deliver { src; msg = Message.Rbc (id, rbc_step, payload) } ->
      Rbc.on_message (rbc t) ~from:src id rbc_step payload
  | Engine.Deliver _ | Engine.Timer _ -> ()

let attach ~n ~t:thr ~iters ~me engine =
  let t =
    {
      n;
      thr;
      iters;
      me;
      engine;
      rbc = None;
      states = Hashtbl.create 16;
      history = Hashtbl.create 16;
      iter = 1;
      value = None;
      output = None;
      output_time = None;
    }
  in
  t.rbc <-
    Some
      (Rbc.create ~n ~t:thr
         {
           Rbc.send_all = (fun msg -> Engine.broadcast engine ~src:me msg);
           deliver = (fun id payload -> on_deliver t id payload);
         });
  Engine.set_party engine me (handle t);
  t

let start t v =
  t.value <- Some v;
  Hashtbl.replace t.history 0 v;
  if t.iters = 0 then begin
    t.output <- Some v;
    t.output_time <- Some (Engine.now t.engine)
  end
  else broadcast_value t 1 v
