type t = {
  n : int;
  thr : int;
  rounds : int;
  delta : int;
  me : int;
  engine : Message.t Engine.t;
  history : (int, Vec.t) Hashtbl.t;
  received : (int, Pairset.t) Hashtbl.t;  (* round -> values *)
  mutable round : int;
  mutable value : Vec.t option;
  mutable output : Vec.t option;
  mutable starved : int;
}

let output t = t.output
let starved_rounds t = t.starved

let value_history t =
  Hashtbl.fold (fun r v acc -> (r, v) :: acc) t.history []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let round_set t r =
  match Hashtbl.find_opt t.received r with
  | Some s -> s
  | None -> Pairset.empty

(* Rounds last Δ + 1 ticks so that a message sent at a round boundary and
   delivered after exactly Δ is still counted for its round (the model
   treats "delivered within Δ" as included). *)
let begin_round t =
  let v = Option.get t.value in
  Engine.broadcast t.engine ~src:t.me
    (Message.Sync_round { round = t.round; value = v });
  Engine.set_timer t.engine ~party:t.me
    ~at:((t.round + 1) * (t.delta + 1))
    ~tag:t.round

(* Round end: trim [k] outliers of what arrived. Under synchrony all honest
   values arrived, so at most [k = |M| - (n - t)] of them are corrupt; under
   a broken network the trim level is silently wrong — by design. *)
let end_round t =
  let m = round_set t t.round in
  let got = Pairset.cardinal m in
  if got >= t.n - t.thr then begin
    let k = got - (t.n - t.thr) in
    match Safe_area.new_value_arr ~t:k (Pairset.values_arr m) with
    | Some v -> t.value <- Some v
    | None -> t.starved <- t.starved + 1 (* keep the old value *)
  end
  else t.starved <- t.starved + 1;
  Hashtbl.replace t.history (t.round + 1) (Option.get t.value);
  t.round <- t.round + 1;
  if t.round >= t.rounds then t.output <- t.value else begin_round t

let handle t ev =
  match ev with
  | Engine.Deliver { src; msg = Message.Sync_round { round; value } } ->
      (* accept only traffic for the round in progress: late messages are
         lost, which is the protocol's Achilles heel off-synchrony *)
      if round = t.round && t.output = None then
        Hashtbl.replace t.received round
          (Pairset.add ~party:src value (round_set t round))
  | Engine.Deliver _ -> ()
  | Engine.Timer r -> if r = t.round && t.output = None then end_round t

let attach ~n ~t:thr ~rounds ~delta ~me engine =
  let t =
    {
      n;
      thr;
      rounds;
      delta;
      me;
      engine;
      history = Hashtbl.create 16;
      received = Hashtbl.create 16;
      round = 0;
      value = None;
      output = None;
      starved = 0;
    }
  in
  Engine.set_party engine me (handle t);
  t

let start t v =
  t.value <- Some v;
  Hashtbl.replace t.history 0 v;
  if t.rounds = 0 then t.output <- Some v else begin_round t
