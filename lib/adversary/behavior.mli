(** Byzantine party behaviours.

    A corrupted party may deviate arbitrarily; the strategies here cover
    the capabilities the paper's proofs attribute to the adversary, from
    simple omission to active equivocation. Channels remain authenticated:
    a Byzantine party can lie about content but not about its identity. *)

type t =
  | Silent
      (** never sends anything: the classic omission/crash corruption used
          in the Theorem 3.2 lower-bound scenario *)
  | Crash_at of int
      (** behaves honestly until the given tick, then stops completely —
          exercises adaptive corruption mid-protocol *)
  | Honest_with_input of Vec.t
      (** follows the protocol with an adversarially-chosen input (value
          poisoning — the strongest attack that stays inside the protocol;
          this is the adversary of the Theorem 3.1 scenario) *)
  | Equivocate of Vec.t * Vec.t
      (** runs honestly with the first value but concurrently initiates
          its own broadcasts with the second value towards the upper half
          of the parties — rBC consistency is what must contain this *)
  | Equivocate_split of { values : Vec.t * Vec.t; assign : int array }
      (** [Equivocate] with an explicit per-receiver split: parties [dst]
          with [assign.(dst) <> 0] receive the conflicting second-value
          Init messages, everyone else sees the honest first value. This
          is the enumerable form of equivocation the exhaustive explorer
          sweeps (all [2^n] assignments at small [n]); the all-zero
          assignment degrades to honest behaviour on the first value *)
  | Halt_liar of int
      (** honest, but immediately reliably-broadcasts a [(halt, it)]
          message for the given iteration, trying to trick parties into
          outputting early *)
  | Spam of { period : int; payload_bytes : int; until : int }
      (** floods junk messages; exercises robustness of dispatch *)
  | Garbage of int
      (** honest, but additionally floods structurally-invalid protocol
          messages at the given tick: reports naming out-of-range parties,
          witness sets with bogus identifiers, oversized report sets, and
          halt messages for negative iterations — every validation path in
          the honest message handlers gets exercised *)
  | Lagger of int
      (** honest, but joins the protocol only after the given tick —
          breaking the synchronous "everyone starts at the same time"
          assumption. Messages arriving before the start are queued and
          replayed, as a real socket would. Creates genuine information
          asymmetry across honest parties, so Πinit estimations (and hence
          iteration counts) spread out. *)

val install :
  Message.t Engine.t -> cfg:Config.t -> me:int -> input:Vec.t -> t -> unit
(** Installs the behaviour as party [me]'s handler and starts it. [input]
    is the value the behaviour bases honest-looking traffic on (ignored by
    [Silent] and overridden by [Honest_with_input]). *)
