type t =
  | Silent
  | Crash_at of int
  | Honest_with_input of Vec.t
  | Equivocate of Vec.t * Vec.t
  | Equivocate_split of { values : Vec.t * Vec.t; assign : int array }
  | Halt_liar of int
  | Spam of { period : int; payload_bytes : int; until : int }
  | Garbage of int
  | Lagger of int

let equivocate_towards engine ~cfg ~me ~va ~vb ~lied_to =
  let p = Party.attach ~cfg ~me engine in
  Party.start p va;
  List.iter
    (fun tag ->
      for dst = 0 to cfg.Config.n - 1 do
        if lied_to dst then
          Engine.send engine ~src:me ~dst
            (Message.Rbc
               ( { Message.tag; origin = me; instance = 0 },
                 Message.Init,
                 Message.Pvec vb ))
      done)
    [ Message.Init_value; Message.Obc_value 1 ]

let install engine ~cfg ~me ~input behavior =
  match behavior with
  | Silent -> Engine.clear_party engine me
  | Honest_with_input v ->
      let p = Party.attach ~cfg ~me engine in
      Party.start p v
  | Crash_at tick ->
      let p =
        Party.create ~cfg ~me
          ~now:(fun () -> Engine.now engine)
          ~send_all:(fun msg -> Engine.broadcast engine ~src:me msg)
          ~set_timer:(fun ~at -> Engine.set_timer engine ~party:me ~at ~tag:0)
          ()
      in
      Engine.set_party engine me (fun ev ->
          if Engine.now engine <= tick then Party.handle p ev);
      Party.start p input
  | Equivocate (va, vb) ->
      (* Honest machinery runs on [va]; at the same instant, conflicting
         Init messages carrying [vb] go to the upper half for the two
         broadcasts of our own where equivocation matters most: the Πinit
         input and the first iteration's ΠoBC value. *)
      equivocate_towards engine ~cfg ~me ~va ~vb ~lied_to:(fun dst ->
          dst >= cfg.Config.n / 2)
  | Equivocate_split { values = va, vb; assign } ->
      (* [Equivocate] with the receiver split chosen per party instead of
         hard-wired to the upper half — the enumerable form the explorer
         sweeps: [assign.(dst) = 1] marks the receivers that get the
         conflicting [vb] Init messages. (The all-zero assignment degrades
         to plain honest-on-[va].) *)
      equivocate_towards engine ~cfg ~me ~va ~vb ~lied_to:(fun dst ->
          dst < Array.length assign && assign.(dst) <> 0)
  | Halt_liar it ->
      let p = Party.attach ~cfg ~me engine in
      Party.start p input;
      Engine.broadcast engine ~src:me
        (Message.Rbc
           ( { Message.tag = Message.Halt it; origin = me; instance = 0 },
             Message.Init,
             Message.Pint it ))
  | Spam { period; payload_bytes; until } ->
      (* Periodic junk to every party. Bounded by [until] so that the
         simulation's event queue still drains. *)
      let handler ev =
        match ev with
        | Engine.Timer _ ->
            Engine.broadcast engine ~src:me (Message.Junk payload_bytes);
            let next = Engine.now engine + period in
            if next <= until then
              Engine.set_timer engine ~party:me ~at:next ~tag:0
        | Engine.Deliver _ -> ()
      in
      Engine.set_party engine me handler;
      Engine.set_timer engine ~party:me ~at:period ~tag:0
  | Garbage at ->
      let p = Party.attach ~cfg ~me engine in
      Party.start p input;
      let n = cfg.Config.n in
      let bogus_pairs =
        [ (-1, input); (n + 5, input); (0, input); (0, Vec.scale 2. input) ]
      in
      let shoot () =
        List.iter
          (fun msg -> Engine.broadcast engine ~src:me msg)
          [
            (* report naming out-of-range and duplicate parties *)
            Message.Obc_report
              { instance = 0; iter = 1; pairs = bogus_pairs };
            (* report for an iteration far in the future *)
            Message.Obc_report
              { instance = 0; iter = 10_000; pairs = bogus_pairs };
            (* witness set full of bogus identifiers *)
            Message.Witness_set
              { instance = 0; parties = [ -3; n; n + 1; 0; 0 ] };
            (* a reliably-broadcast report with junk content *)
            Message.Rbc
              ( { Message.tag = Message.Init_report; origin = me; instance = 0 },
                Message.Init,
                Message.Ppairs bogus_pairs );
            (* halt for a negative iteration *)
            Message.Rbc
              ( { Message.tag = Message.Halt (-2); origin = me; instance = 0 },
                Message.Init,
                Message.Pint (-2) );
            (* mismatched payload kinds *)
            Message.Rbc
              ( { Message.tag = Message.Obc_value 1; origin = me; instance = 0 },
                Message.Init,
                Message.Pparties [ 1; 2 ] );
          ]
      in
      (* fire once via a timer so the flood lands mid-protocol; the honest
         machinery of this party keeps its own timers flowing *)
      let base_handler = Party.handle p in
      Engine.set_party engine me (fun ev ->
          (match ev with
          | Engine.Timer 99 -> shoot ()
          | _ -> ());
          base_handler ev);
      Engine.set_timer engine ~party:me ~at:at ~tag:99
  | Lagger delay ->
      let p =
        Party.create ~cfg ~me
          ~now:(fun () -> Engine.now engine)
          ~send_all:(fun msg -> Engine.broadcast engine ~src:me msg)
          ~set_timer:(fun ~at -> Engine.set_timer engine ~party:me ~at ~tag:0)
          ()
      in
      let started = ref false in
      let backlog = ref [] in
      Engine.set_party engine me (fun ev ->
          if !started then Party.handle p ev
          else if Engine.now engine >= delay then begin
            started := true;
            Party.start p input;
            List.iter (Party.handle p) (List.rev !backlog);
            Party.handle p ev
          end
          else
            match ev with
            | Engine.Deliver _ -> backlog := ev :: !backlog
            | Engine.Timer _ -> ());
      Engine.set_timer engine ~party:me ~at:delay ~tag:0
