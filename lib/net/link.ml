(* The perfect-link layer: retransmit/ACK state machines for one
   directed link.

   The model's channels are perfect — every sent message is eventually
   delivered, exactly once, authenticated. TCP plus the frame MAC gives
   most of that until a connection dies; this layer closes the gap with
   sequence numbers, cumulative ACKs, bounded retransmission state and
   replay-on-reconnect, so the layer above (the simulator engine acting
   as scheduler) can treat the wire as lossless.

   Both state machines are pure with respect to time: every operation
   takes [~now] (a wire tick), nothing reads a real clock, and the
   retransmission schedule is a deterministic function of the submission
   ticks, the ACK ticks and the seeded jitter stream — which is what
   lets the unit tests pin the exact schedule against a fake clock.

   Sender: sequence numbers from 1; a bounded in-flight window (submit
   returns [`Backpressure] when full — the caller queues above, nothing
   is silently dropped); per-entry retransmission timer with exponential
   backoff, capped, plus a small deterministic jitter drawn from the
   link's RNG stream so simultaneous links don't beat in lockstep.
   First transmission and retransmissions alike are harvested by
   {!due} — the caller owns socket I/O and its timing.

   Receiver: delivers strictly in sequence order; a bounded reorder
   buffer holds early arrivals; duplicates and stale frames are counted
   and re-ACKed (a lost ACK must not wedge the sender), frames beyond
   the buffer window are dropped for the sender to retry later. The
   cumulative ACK is simply the highest in-order sequence delivered. *)

(* -- sender -- *)

type entry = {
  seq : int;
  payload : Bytes.t;
  mutable next_due : int;
  mutable rto : int;
  mutable tx : int;  (* transmissions so far *)
}

type sender = {
  mutable next_seq : int;
  mutable unacked : entry list;  (* ascending seq *)
  mutable unacked_len : int;
  window : int;
  rto0 : int;
  rto_max : int;
  rng : Rng.t;
  mutable retransmits : int;
}

let sender ?(window = 64) ?(rto0 = 8) ?(rto_max = 256) ~rng () =
  if window < 1 then invalid_arg "Link.sender: window must be >= 1";
  if rto0 < 1 || rto_max < rto0 then invalid_arg "Link.sender: bad rto";
  {
    next_seq = 1;
    unacked = [];
    unacked_len = 0;
    window;
    rto0;
    rto_max;
    rng;
    retransmits = 0;
  }

let in_flight s = s.unacked_len
let retransmits s = s.retransmits

let submit s ~now payload =
  if s.unacked_len >= s.window then `Backpressure
  else begin
    let seq = s.next_seq in
    s.next_seq <- seq + 1;
    let e = { seq; payload; next_due = now; rto = s.rto0; tx = 0 } in
    s.unacked <- s.unacked @ [ e ];
    s.unacked_len <- s.unacked_len + 1;
    `Accepted seq
  end

(* Jitter in [0, rto/4]: enough to desynchronise links, small enough
   that the backoff cap still bounds the inter-retransmit gap. *)
let jitter s rto = if rto < 4 then 0 else Rng.int s.rng (1 + (rto / 4))

let due s ~now =
  List.filter_map
    (fun e ->
      if e.next_due > now then None
      else begin
        if e.tx > 0 then s.retransmits <- s.retransmits + 1;
        e.tx <- e.tx + 1;
        e.next_due <- now + e.rto + jitter s e.rto;
        e.rto <- min (e.rto * 2) s.rto_max;
        Some (e.seq, e.payload)
      end)
    s.unacked

let on_ack s ~ack =
  let keep = List.filter (fun e -> e.seq > ack) s.unacked in
  let freed = s.unacked_len - List.length keep in
  s.unacked <- keep;
  s.unacked_len <- s.unacked_len - freed;
  freed

let mark_replay s =
  List.iter
    (fun e ->
      e.next_due <- 0;
      e.rto <- s.rto0)
    s.unacked

(* -- receiver -- *)

type receiver = {
  mutable delivered : int;  (* highest in-order seq delivered *)
  pending : (int, Bytes.t) Hashtbl.t;
  rwindow : int;
  mutable dups : int;
}

let receiver ?(window = 256) () =
  if window < 1 then invalid_arg "Link.receiver: window must be >= 1";
  { delivered = 0; pending = Hashtbl.create 16; rwindow = window; dups = 0 }

let cumulative_ack r = r.delivered
let duplicates r = r.dups

let on_data r ~seq payload =
  if seq <= r.delivered || Hashtbl.mem r.pending seq then begin
    (* replay (retransmission of something already seen): count and let
       the caller re-ACK so a lost ACK can't wedge the sender *)
    r.dups <- r.dups + 1;
    []
  end
  else if seq > r.delivered + r.rwindow then
    (* beyond the reorder buffer: drop, the sender's timer will retry
       once the window has advanced *)
    []
  else begin
    Hashtbl.replace r.pending seq payload;
    let rec drain acc =
      match Hashtbl.find_opt r.pending (r.delivered + 1) with
      | None -> List.rev acc
      | Some p ->
          Hashtbl.remove r.pending (r.delivered + 1);
          r.delivered <- r.delivered + 1;
          drain (p :: acc)
    in
    drain []
  end
