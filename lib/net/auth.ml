(* Per-link message authentication: SipHash-2-4 with link keys derived
   from one master key.

   The paper's model gives every pair of parties an authenticated
   channel; over real sockets that guarantee has to be manufactured.
   SipHash-2-4 is the standard short-input keyed PRF for exactly this
   job (64-bit tag, 128-bit key), and it is small enough to implement
   here directly — the container offers no crypto library, and pulling
   one in is out of bounds. The implementation below is the reference
   algorithm (Aumasson–Bernstein) on OCaml int64s.

   Honest scope note: a 64-bit tag and a shared master key stop frame
   corruption and cross-link replay/confusion — the failure modes the
   chaos harness injects — not a malicious party that legitimately
   holds the master key. Per-pair asymmetric keys are out of scope for
   a loopback runtime. *)

type key = { k0 : int64; k1 : int64 }

let ( +% ) = Int64.add
let ( ^% ) = Int64.logxor

let rotl x b =
  Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

(* The state is threaded through mutable refs so the 2- and 4-round
   compression loops below stay readable. *)
let siphash24 { k0; k1 } bytes ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    invalid_arg "Auth.siphash24";
  let v0 = ref (k0 ^% 0x736f6d6570736575L)
  and v1 = ref (k1 ^% 0x646f72616e646f6dL)
  and v2 = ref (k0 ^% 0x6c7967656e657261L)
  and v3 = ref (k1 ^% 0x7465646279746573L) in
  let sipround () =
    v0 := !v0 +% !v1;
    v1 := rotl !v1 13;
    v1 := !v1 ^% !v0;
    v0 := rotl !v0 32;
    v2 := !v2 +% !v3;
    v3 := rotl !v3 16;
    v3 := !v3 ^% !v2;
    v0 := !v0 +% !v3;
    v3 := rotl !v3 21;
    v3 := !v3 ^% !v0;
    v2 := !v2 +% !v1;
    v1 := rotl !v1 17;
    v1 := !v1 ^% !v2;
    v2 := rotl !v2 32
  in
  let word8 i = Bytes.get_int64_le bytes i in
  let tail = len land 7 in
  let ends = off + len - tail in
  let i = ref off in
  while !i < ends do
    let m = word8 !i in
    v3 := !v3 ^% m;
    sipround ();
    sipround ();
    v0 := !v0 ^% m;
    i := !i + 8
  done;
  (* last word: remaining bytes, little-endian, length in the top byte *)
  let m = ref (Int64.shift_left (Int64.of_int (len land 0xff)) 56) in
  for j = tail - 1 downto 0 do
    m :=
      Int64.logor !m
        (Int64.shift_left
           (Int64.of_int (Char.code (Bytes.get bytes (ends + j))))
           (8 * j))
  done;
  v3 := !v3 ^% !m;
  sipround ();
  sipround ();
  v0 := !v0 ^% !m;
  v2 := !v2 ^% 0xffL;
  sipround ();
  sipround ();
  sipround ();
  sipround ();
  !v0 ^% !v1 ^% !v2 ^% !v3

let mac key bytes ~off ~len = siphash24 key bytes ~off ~len

(* Link keys: hash a tiny directed-link descriptor under the master key,
   twice with distinct domain separators, to get the two key halves.
   Directed, so the a→b and b→a streams authenticate under different
   keys and a reflected frame never verifies. *)
let derive master ~src ~dst =
  let buf = Bytes.create 9 in
  let fill sep =
    Bytes.set buf 0 (Char.chr sep);
    Bytes.set_int32_le buf 1 (Int32.of_int src);
    Bytes.set_int32_le buf 5 (Int32.of_int dst);
    siphash24 master buf ~off:0 ~len:9
  in
  { k0 = fill 0x4c (* 'L' *); k1 = fill 0x4b (* 'K' *) }

let of_master m =
  { k0 = m; k1 = Int64.logxor (Int64.lognot m) 0x5bd1e995a54ff53aL }
