(** Byte-exact binary round-trip for {!Message.t}.

    Vector coordinates travel as raw IEEE-754 bit patterns, so decoding
    reproduces the sender's floats exactly — the sim-as-oracle
    differential depends on it. Integrity is the frame layer's job; a
    malformed buffer here means a local bug and raises {!Malformed}. *)

exception Malformed of string

val encode : Message.t -> Bytes.t
val decode : Bytes.t -> Message.t
(** Raises {!Malformed} on truncation, unknown constructor codes,
    implausible length prefixes, or trailing bytes. *)

val encode_record : engine_seq:int -> deliver_at:int -> Message.t -> Bytes.t
(** The net backend's DATA payload: the engine-allocated sequence number
    and delivery tick ride with the message so the receiving side can
    re-insert it under the exact event-queue key a direct send would
    have used. *)

val decode_record : Bytes.t -> int * int * Message.t
(** [(engine_seq, deliver_at, msg)]. Raises {!Malformed} as {!decode}. *)
