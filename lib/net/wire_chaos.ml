(* Wire-level chaos: frame-layer faults the perfect link must mask.

   The shapes deliberately mirror lib/harness's Fault_plan atoms, one
   layer down: where Fault_plan perturbs logical message delivery inside
   the simulator, these atoms perturb physical frames between the link
   state machines and the socket — drop, duplicate, reorder, delay
   spikes, and link flaps that kill the TCP connection outright. A
   correct perfect link hides all of it: the differential harness
   demands byte-identical logical results under any of these plans.

   Decisions are drawn from a per-directed-link RNG stream seeded from
   (master seed, src, dst), so a plan is reproducible for a fixed seed
   regardless of how many links exist or which order frames flow.
   HELLO frames are exempt — chaos models a lossy wire, not a broken
   handshake; flaps cover connection-level failure.

   Verdicts are sender-side, pre-write: [Deliver delays] sends one copy
   per list element, each after that many wire ticks (0 = now); [Drop]
   sends nothing (the sender's retransmission timer recovers). *)

type atom =
  | Drop of { percent : int }
  | Duplicate of { percent : int }
  | Reorder of { percent : int; hold : int }
  | Delay_spike of { from_tick : int; until_tick : int; hold : int }
  | Link_flap of { at_tick : int; down_for : int }

type plan = src:int -> dst:int -> atom list

let no_chaos ~src:_ ~dst:_ = []

type link_state = { atoms : atom list; rng : Rng.t }

type t = {
  links : link_state array array;  (* [src].[dst] *)
  n : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable held : int;
}

let create ~seed ~n (plan : plan) =
  let links =
    Array.init n (fun src ->
        Array.init n (fun dst ->
            let rng =
              Rng.create
                (Int64.add seed (Int64.of_int ((src * 257) + dst + 1)))
            in
            { atoms = plan ~src ~dst; rng }))
  in
  { links; n; dropped = 0; duplicated = 0; held = 0 }

let dropped t = t.dropped
let duplicated t = t.duplicated
let held t = t.held

let hit rng percent = percent > 0 && Rng.int rng 100 < percent

type verdict = Deliver of int list | Drop_frame

(* Atoms compose left to right over a working copy-list of delays. *)
let on_frame t ~src ~dst ~ftype ~tick =
  match ftype with
  | Wire.Hello -> Deliver [ 0 ]
  | Wire.Data | Wire.Ack ->
      let ls = t.links.(src).(dst) in
      let verdict =
        List.fold_left
          (fun v atom ->
            match v with
            | Drop_frame -> Drop_frame
            | Deliver delays -> (
                match atom with
                | Drop { percent } ->
                    if hit ls.rng percent then begin
                      t.dropped <- t.dropped + 1;
                      Drop_frame
                    end
                    else Deliver delays
                | Duplicate { percent } ->
                    if hit ls.rng percent then begin
                      t.duplicated <- t.duplicated + 1;
                      Deliver (delays @ [ 0 ])
                    end
                    else Deliver delays
                | Reorder { percent; hold } ->
                    if hit ls.rng percent then begin
                      t.held <- t.held + 1;
                      (* hold the first copy back so later frames of the
                         same link overtake it *)
                      match delays with
                      | d :: rest -> Deliver ((d + hold) :: rest)
                      | [] -> Deliver [ hold ]
                    end
                    else Deliver delays
                | Delay_spike { from_tick; until_tick; hold } ->
                    if tick >= from_tick && tick < until_tick then begin
                      t.held <- t.held + 1;
                      Deliver (List.map (fun d -> d + hold) delays)
                    end
                    else Deliver delays
                | Link_flap _ -> Deliver delays))
          (Deliver [ 0 ]) ls.atoms
      in
      verdict

(* Flaps are connection-level, polled by the runtime each wire tick:
   [(src, dst, down_for)] for every flap whose trigger tick is [tick].
   The runtime force-closes the connection carrying that directed link
   and refuses to re-dial for [down_for] ticks. *)
let flaps_due t ~tick =
  let out = ref [] in
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      List.iter
        (function
          | Link_flap { at_tick; down_for } when at_tick = tick ->
              out := (src, dst, down_for) :: !out
          | _ -> ())
        t.links.(src).(dst).atoms
    done
  done;
  !out
