(** Perfect-link state machines for one directed link: sequence numbers,
    cumulative ACKs, capped exponential-backoff retransmission, replay
    on reconnect, exactly-once in-order delivery.

    Time is an abstract wire tick supplied by the caller ([~now]);
    nothing here reads a clock, so the retransmission schedule is
    deterministic given the seeded jitter stream — the unit tests pin it
    exactly against a fake clock. *)

(** {1 Sender} *)

type sender

val sender :
  ?window:int -> ?rto0:int -> ?rto_max:int -> rng:Rng.t -> unit -> sender
(** [window] (default 64) bounds in-flight entries — {!submit} applies
    backpressure beyond it. [rto0] (default 8) is the initial
    retransmission timeout in ticks; it doubles per retransmission up to
    [rto_max] (default 256), plus jitter in [0, rto/4] drawn from [rng].
    Raises [Invalid_argument] on a non-positive window or a bad rto
    pair. *)

val submit : sender -> now:int -> Bytes.t -> [ `Accepted of int | `Backpressure ]
(** Queue a payload; on [`Accepted seq] the first transmission is
    harvested by the next {!due}. [`Backpressure] when the window is
    full — the caller must hold the payload and retry after ACKs. *)

val due : sender -> now:int -> (int * Bytes.t) list
(** Entries whose (re)transmission timer has expired: [(seq, payload)]
    to put on the wire now. Each harvested entry's timer is re-armed
    with backoff. *)

val on_ack : sender -> ack:int -> int
(** Cumulative: retires every entry with [seq <= ack], cancelling its
    timer. Returns the number retired (freed window slots). *)

val mark_replay : sender -> unit
(** After a reconnect: every unacked entry becomes due immediately with
    its backoff reset — the replacement connection replays the backlog
    at once. *)

val in_flight : sender -> int
val retransmits : sender -> int

(** {1 Receiver} *)

type receiver

val receiver : ?window:int -> unit -> receiver
(** [window] (default 256) bounds the out-of-order buffer; frames beyond
    it are dropped for later retry. *)

val on_data : receiver -> seq:int -> Bytes.t -> Bytes.t list
(** Payloads now deliverable in order (possibly none — an out-of-order
    arrival waits in the buffer, a duplicate or beyond-window frame
    yields nothing). After any call, send {!cumulative_ack} back —
    duplicates in particular must be re-ACKed. *)

val cumulative_ack : receiver -> int
(** Highest in-order sequence delivered. *)

val duplicates : receiver -> int
(** Replayed or stale frames seen (retransmissions that had already
    arrived) — suppressed, never delivered twice. *)
