(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.

   The frame layer carries both a CRC and a keyed MAC: the CRC is the
   cheap first-line check that catches accidental corruption (torn
   writes, bit flips) with a precise error, while the MAC rejects
   anything an adversary could craft. OCaml's native ints are at least
   63 bits, so the 32-bit arithmetic needs no boxing. *)

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let update crc byte = table.((crc lxor byte) land 0xff) lxor (crc lsr 8)

let digest_sub bytes ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    invalid_arg "Crc32.digest_sub";
  let crc = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get bytes i))
  done;
  !crc lxor 0xFFFFFFFF

let digest bytes = digest_sub bytes ~off:0 ~len:(Bytes.length bytes)
