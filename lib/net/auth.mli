(** Per-link frame authentication: SipHash-2-4 under keys derived from
    one master key.

    Realises the model's authenticated channels over real sockets: every
    directed link [(src, dst)] MACs its frames under its own derived key,
    so corrupted, cross-link, or reflected frames never verify. The MAC
    is a keyed integrity check against the chaos the harness injects —
    {e not} a defence against a party that holds the master key (see the
    implementation header). *)

type key = { k0 : int64; k1 : int64 }

val of_master : int64 -> key
(** Expand a 64-bit master secret into a 128-bit SipHash key. *)

val derive : key -> src:int -> dst:int -> key
(** The directed link [(src, dst)]'s frame key. *)

val mac : key -> Bytes.t -> off:int -> len:int -> int64
(** SipHash-2-4 tag of the slice. Raises [Invalid_argument] on an
    out-of-bounds slice. *)
