(* The wire frame format and its incremental decoder.

   Layout (all integers little-endian):

     offset  size  field
     ------  ----  -----------------------------------------
          0     1  magic        0xAA
          1     1  version      1
          2     1  frame type   1 = HELLO, 2 = DATA, 3 = ACK
          3     1  src          party id
          4     1  dst          party id
          5     4  len          payload length in bytes
          9     8  seq          link sequence number (HELLO: epoch)
         17     8  ack          cumulative acknowledgement
         25   len  payload
     25+len     4  crc32        over bytes [0, 25+len)
     29+len     8  mac          SipHash-2-4 over bytes [0, 25+len),
                                keyed per directed link (src, dst)

   The decoder is incremental (TCP gives a byte stream, frames arrive
   torn) and total: any input either yields a frame, asks for more
   bytes, or returns a structured error — never an exception. On error
   the stream is unrecoverable by design (a length prefix can no longer
   be trusted), so the caller drops the connection and lets the perfect
   link replay; there is no resync heuristic to get subtly wrong. *)

let magic = 0xAA
let version = 1
let header_len = 25
let trailer_len = 12
let max_payload = 4 * 1024 * 1024

type ftype = Hello | Data | Ack

type frame = {
  ftype : ftype;
  src : int;
  dst : int;
  seq : int64;
  ack : int64;
  payload : Bytes.t;
}

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_type of int
  | Bad_party of int
  | Oversize of int
  | Bad_crc of { expected : int; got : int }
  | Bad_mac
  | Short_frame
      (* only from [decode_exact]; the streaming decoder waits instead *)

let pp_error ppf = function
  | Bad_magic b -> Format.fprintf ppf "bad magic byte 0x%02x" b
  | Bad_version v -> Format.fprintf ppf "unknown version %d" v
  | Bad_type t -> Format.fprintf ppf "unknown frame type %d" t
  | Bad_party p -> Format.fprintf ppf "party id %d out of range" p
  | Oversize l -> Format.fprintf ppf "payload length %d exceeds limit" l
  | Bad_crc { expected; got } ->
      Format.fprintf ppf "crc mismatch (expected %08x, got %08x)" expected got
  | Bad_mac -> Format.fprintf ppf "mac verification failed"
  | Short_frame -> Format.fprintf ppf "truncated frame"

let ftype_code = function Hello -> 1 | Data -> 2 | Ack -> 3

let encode ~key f =
  let plen = Bytes.length f.payload in
  if plen > max_payload then invalid_arg "Wire.encode: payload too large";
  let buf = Bytes.create (header_len + plen + trailer_len) in
  Bytes.set buf 0 (Char.chr magic);
  Bytes.set buf 1 (Char.chr version);
  Bytes.set buf 2 (Char.chr (ftype_code f.ftype));
  Bytes.set buf 3 (Char.chr f.src);
  Bytes.set buf 4 (Char.chr f.dst);
  Bytes.set_int32_le buf 5 (Int32.of_int plen);
  Bytes.set_int64_le buf 9 f.seq;
  Bytes.set_int64_le buf 17 f.ack;
  Bytes.blit f.payload 0 buf header_len plen;
  let body = header_len + plen in
  Bytes.set_int32_le buf body (Int32.of_int (Crc32.digest_sub buf ~off:0 ~len:body));
  Bytes.set_int64_le buf (body + 4) (Auth.mac key buf ~off:0 ~len:body);
  buf

(* -- incremental decoder -- *)

type decoder = {
  mutable buf : Bytes.t;  (* accumulated unparsed bytes *)
  mutable start : int;  (* parse position *)
  mutable stop : int;  (* end of valid data *)
  n : int;  (* party count, for src/dst range checks *)
  key_of : src:int -> dst:int -> Auth.key;
}

let decoder ~n ~key_of =
  { buf = Bytes.create 4096; start = 0; stop = 0; n; key_of }

let buffered d = d.stop - d.start

let feed d bytes ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    invalid_arg "Wire.feed";
  let avail = Bytes.length d.buf - d.stop in
  if avail < len then begin
    let live = buffered d in
    let need = live + len in
    if Bytes.length d.buf - live >= len && d.start > 0 then begin
      (* compact in place *)
      Bytes.blit d.buf d.start d.buf 0 live;
      d.start <- 0;
      d.stop <- live
    end
    else begin
      let cap = ref (max 4096 (2 * Bytes.length d.buf)) in
      while !cap < need do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit d.buf d.start nb 0 live;
      d.buf <- nb;
      d.start <- 0;
      d.stop <- live
    end
  end;
  Bytes.blit bytes off d.buf d.stop len;
  d.stop <- d.stop + len

let u8 d i = Char.code (Bytes.get d.buf (d.start + i))

(* [Ok None] = need more bytes; [Ok (Some f)] = one frame consumed;
   [Error e] = stream poisoned, caller must drop the connection. *)
let next d =
  if buffered d < header_len then Ok None
  else begin
    let m = u8 d 0 in
    if m <> magic then Error (Bad_magic m)
    else
      let v = u8 d 1 in
      if v <> version then Error (Bad_version v)
      else
        let tc = u8 d 2 in
        if tc < 1 || tc > 3 then Error (Bad_type tc)
        else
          let src = u8 d 3 and dst = u8 d 4 in
          if src >= d.n then Error (Bad_party src)
          else if dst >= d.n then Error (Bad_party dst)
          else
            let plen = Int32.to_int (Bytes.get_int32_le d.buf (d.start + 5)) in
            if plen < 0 || plen > max_payload then Error (Oversize plen)
            else if buffered d < header_len + plen + trailer_len then Ok None
            else begin
              let body = header_len + plen in
              let crc_got =
                Int32.to_int (Bytes.get_int32_le d.buf (d.start + body))
                land 0xFFFFFFFF
              in
              let crc_want = Crc32.digest_sub d.buf ~off:d.start ~len:body in
              if crc_got <> crc_want then
                Error (Bad_crc { expected = crc_want; got = crc_got })
              else
                let mac_got = Bytes.get_int64_le d.buf (d.start + body + 4) in
                let mac_want =
                  Auth.mac (d.key_of ~src ~dst) d.buf ~off:d.start ~len:body
                in
                if not (Int64.equal mac_got mac_want) then Error Bad_mac
                else begin
                  let ftype =
                    match tc with 1 -> Hello | 2 -> Data | _ -> Ack
                  in
                  let seq = Bytes.get_int64_le d.buf (d.start + 9) in
                  let ack = Bytes.get_int64_le d.buf (d.start + 17) in
                  let payload = Bytes.sub d.buf (d.start + header_len) plen in
                  d.start <- d.start + body + trailer_len;
                  if d.start = d.stop then begin
                    d.start <- 0;
                    d.stop <- 0
                  end;
                  Ok (Some { ftype; src; dst; seq; ack; payload })
                end
            end
  end

(* One-shot decode of a complete frame image — the property tests' entry
   point, where a torn tail must be an error rather than a wait. *)
let decode_exact ~n ~key_of bytes =
  let d = decoder ~n ~key_of in
  feed d bytes ~off:0 ~len:(Bytes.length bytes);
  match next d with
  | Ok (Some f) when buffered d = 0 -> Ok f
  | Ok (Some _) -> Error Short_frame  (* trailing garbage *)
  | Ok None -> Error Short_frame
  | Error e -> Error e
