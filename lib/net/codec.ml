(* Binary serialisation of the protocol's logical messages.

   The sim backend passes [Message.t] values by reference; the net
   backend must push them through sockets, so every constructor gets a
   byte-exact round-trip here. Integrity is the frame layer's job (CRC +
   MAC), so a malformed buffer reaching [decode] means a local bug —
   decode raises the structured [Malformed] rather than trying to limp
   on, and the caller treats it as fatal for the connection.

   Vectors travel as raw IEEE-754 bit patterns ([Int64.bits_of_float]),
   so the round-trip is exact — the sim-as-oracle differential compares
   outputs with [Vec.equal_exact] and any decimal formatting would show
   up immediately. *)

exception Malformed of string

let bad fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* -- writer -- *)

let w8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let w32 b v = Buffer.add_int32_le b (Int32.of_int v)
let w64 b v = Buffer.add_int64_le b v
let wf b f = w64 b (Int64.bits_of_float f)

let wvec b v =
  let a = Vec.to_array v in
  w32 b (Array.length a);
  Array.iter (wf b) a

let wpairs b ps =
  w32 b (List.length ps);
  List.iter
    (fun (i, v) ->
      w32 b i;
      wvec b v)
    ps

let wparties b ps =
  w32 b (List.length ps);
  List.iter (w32 b) ps

let wtag b = function
  | Message.Init_value -> w8 b 0
  | Message.Init_report -> w8 b 1
  | Message.Obc_value it ->
      w8 b 2;
      w32 b it
  | Message.Halt it ->
      w8 b 3;
      w32 b it
  | Message.Async_value it ->
      w8 b 4;
      w32 b it
  | Message.Async_report it ->
      w8 b 5;
      w32 b it

let wid b { Message.tag; origin; instance } =
  wtag b tag;
  w32 b origin;
  w32 b instance

let wstep b = function
  | Message.Init -> w8 b 0
  | Message.Echo -> w8 b 1
  | Message.Ready -> w8 b 2

let wpayload b = function
  | Message.Pvec v ->
      w8 b 0;
      wvec b v
  | Message.Ppairs ps ->
      w8 b 1;
      wpairs b ps
  | Message.Pint i ->
      w8 b 2;
      w64 b (Int64.of_int i)
  | Message.Pparties ps ->
      w8 b 3;
      wparties b ps

let wentry b (id, step, p) =
  wid b id;
  wstep b step;
  wpayload b p

let write b = function
  | Message.Rbc (id, step, p) ->
      w8 b 0;
      wentry b (id, step, p)
  | Message.Rbc_batch entries ->
      w8 b 1;
      w32 b (List.length entries);
      List.iter (wentry b) entries
  | Message.Obc_report { instance; iter; pairs } ->
      w8 b 2;
      w32 b instance;
      w32 b iter;
      wpairs b pairs
  | Message.Witness_set { instance; parties } ->
      w8 b 3;
      w32 b instance;
      wparties b parties
  | Message.Sync_round { round; value } ->
      w8 b 4;
      w32 b round;
      wvec b value
  | Message.Ew_value { instance; iter; value } ->
      w8 b 5;
      w32 b instance;
      w32 b iter;
      wvec b value
  | Message.Ew_report { instance; iter; pairs } ->
      w8 b 6;
      w32 b instance;
      w32 b iter;
      wpairs b pairs
  | Message.Junk n ->
      w8 b 7;
      w32 b n
  | Message.Ew_echo { instance; iter; pairs } ->
      w8 b 8;
      w32 b instance;
      w32 b iter;
      wpairs b pairs

let encode msg =
  let b = Buffer.create 128 in
  write b msg;
  Buffer.to_bytes b

(* -- reader -- *)

type cursor = { buf : Bytes.t; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.buf then
    bad "truncated at byte %d (need %d more)" c.pos n

let r8 c =
  need c 1;
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let r32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  v

let r64 c =
  need c 8;
  let v = Bytes.get_int64_le c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let rlen c what =
  let n = r32 c in
  if n < 0 || n > 1_000_000 then bad "implausible %s count %d" what n;
  n

let rvec c =
  let d = rlen c "vector dimension" in
  let a = Array.init d (fun _ -> Int64.float_of_bits (r64 c)) in
  Vec.of_array a

let rpairs c =
  let n = rlen c "pair" in
  List.init n (fun _ ->
      let i = r32 c in
      let v = rvec c in
      (i, v))

let rparties c =
  let n = rlen c "party" in
  List.init n (fun _ -> r32 c)

let rtag c =
  match r8 c with
  | 0 -> Message.Init_value
  | 1 -> Message.Init_report
  | 2 -> Message.Obc_value (r32 c)
  | 3 -> Message.Halt (r32 c)
  | 4 -> Message.Async_value (r32 c)
  | 5 -> Message.Async_report (r32 c)
  | t -> bad "unknown rbc tag %d" t

let rid c =
  let tag = rtag c in
  let origin = r32 c in
  let instance = r32 c in
  { Message.tag; origin; instance }

let rstep c =
  match r8 c with
  | 0 -> Message.Init
  | 1 -> Message.Echo
  | 2 -> Message.Ready
  | s -> bad "unknown step %d" s

let rpayload c =
  match r8 c with
  | 0 -> Message.Pvec (rvec c)
  | 1 -> Message.Ppairs (rpairs c)
  | 2 -> Message.Pint (Int64.to_int (r64 c))
  | 3 -> Message.Pparties (rparties c)
  | p -> bad "unknown payload kind %d" p

let rentry c =
  let id = rid c in
  let step = rstep c in
  let p = rpayload c in
  (id, step, p)

let read c =
  match r8 c with
  | 0 ->
      let id, step, p = rentry c in
      Message.Rbc (id, step, p)
  | 1 ->
      let n = rlen c "batch entry" in
      Message.Rbc_batch (List.init n (fun _ -> rentry c))
  | 2 ->
      let instance = r32 c in
      let iter = r32 c in
      Message.Obc_report { instance; iter; pairs = rpairs c }
  | 3 ->
      let instance = r32 c in
      Message.Witness_set { instance; parties = rparties c }
  | 4 ->
      let round = r32 c in
      Message.Sync_round { round; value = rvec c }
  | 5 ->
      let instance = r32 c in
      let iter = r32 c in
      Message.Ew_value { instance; iter; value = rvec c }
  | 6 ->
      let instance = r32 c in
      let iter = r32 c in
      Message.Ew_report { instance; iter; pairs = rpairs c }
  | 7 -> Message.Junk (r32 c)
  | 8 ->
      let instance = r32 c in
      let iter = r32 c in
      Message.Ew_echo { instance; iter; pairs = rpairs c }
  | k -> bad "unknown message kind %d" k

let decode bytes =
  let c = { buf = bytes; pos = 0 } in
  let msg = read c in
  if c.pos <> Bytes.length bytes then
    bad "trailing %d bytes after message" (Bytes.length bytes - c.pos);
  msg

(* -- the net backend's logical record: engine metadata + message -- *)

let encode_record ~engine_seq ~deliver_at msg =
  let b = Buffer.create 144 in
  w64 b (Int64.of_int engine_seq);
  w64 b (Int64.of_int deliver_at);
  write b msg;
  Buffer.to_bytes b

let decode_record bytes =
  let c = { buf = bytes; pos = 0 } in
  let engine_seq = Int64.to_int (r64 c) in
  let deliver_at = Int64.to_int (r64 c) in
  let msg = read c in
  if c.pos <> Bytes.length bytes then
    bad "trailing %d bytes after record" (Bytes.length bytes - c.pos);
  (engine_seq, deliver_at, msg)
