(** Authenticated length-prefixed wire frames and their incremental
    decoder.

    Frame layout (little-endian): magic [0xAA] (1) · version (1) · frame
    type (1) · src (1) · dst (1) · payload length (4) · seq (8) · ack (8)
    · payload · CRC-32 (4) · SipHash-2-4 MAC (8), the CRC and MAC both
    taken over header plus payload, the MAC under the directed link's
    {!Auth.derive}d key.

    Decoding is total: every input yields a frame, a request for more
    bytes, or a structured {!error} — never an escaping exception. A
    decode error poisons the stream (the length prefix is no longer
    trustworthy); the caller drops the connection and relies on the
    perfect link's replay. *)

val header_len : int
val trailer_len : int
val max_payload : int

type ftype = Hello | Data | Ack

type frame = {
  ftype : ftype;
  src : int;
  dst : int;
  seq : int64;  (** link sequence number; connection epoch for HELLO *)
  ack : int64;  (** cumulative acknowledgement *)
  payload : Bytes.t;
}

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_type of int
  | Bad_party of int
  | Oversize of int
  | Bad_crc of { expected : int; got : int }
  | Bad_mac
  | Short_frame  (** [decode_exact] only: input ended mid-frame *)

val pp_error : Format.formatter -> error -> unit

val encode : key:Auth.key -> frame -> Bytes.t
(** Raises [Invalid_argument] when the payload exceeds {!max_payload} —
    a sender bug, not a wire condition. *)

type decoder

val decoder : n:int -> key_of:(src:int -> dst:int -> Auth.key) -> decoder
(** [n] bounds the party ids a frame may name; [key_of] supplies the
    per-directed-link MAC key once src/dst are parsed. *)

val feed : decoder -> Bytes.t -> off:int -> len:int -> unit
(** Append raw received bytes. *)

val buffered : decoder -> int

val next : decoder -> (frame option, error) result
(** [Ok None]: a frame is still incomplete — feed more bytes. [Ok (Some
    f)]: one verified frame, consumed from the buffer. [Error e]: the
    stream is poisoned; discard the decoder and the connection. *)

val decode_exact :
  n:int ->
  key_of:(src:int -> dst:int -> Auth.key) ->
  Bytes.t ->
  (frame, error) result
(** One-shot: decode exactly one frame spanning the whole buffer. Torn
    input and trailing garbage are [Error Short_frame]. *)
