(** The loopback networked runtime: the simulator engine stays the
    scheduler while every logical message physically traverses a real
    TCP socket through the authenticated frame codec ({!Wire}), the
    perfect-link layer ({!Link}) and optional frame chaos
    ({!Wire_chaos}).

    Messages carry their engine-allocated [(seq, deliver_at)] and are
    re-inserted through [Engine.inject] under the exact event-queue key
    a direct send would have used; the pump refuses to let simulated
    time advance while anything is in flight. A run on this backend is
    therefore byte-identical to the same run on the sim backend — the
    sim is an exact oracle, and any frame-level chaos the perfect link
    fails to mask shows up as a differential mismatch. Wall-clock
    nondeterminism (retransmission counts, reconnect timing) perturbs
    {!wire_stats} only, never logical results. *)

type t

type wire_stats = {
  logical_sent : int;  (** messages handed to the wire (incl. self) *)
  logical_delivered : int;  (** messages re-injected into the engine *)
  frames_sent : int;  (** physical frames enqueued, after chaos *)
  frames_received : int;  (** verified frames decoded *)
  retransmits : int;
  dup_frames : int;  (** replays suppressed by receivers *)
  chaos_dropped : int;
  chaos_duplicated : int;
  chaos_held : int;
  reconnects : int;  (** re-establishments after a connection died *)
  backpressure_stalls : int;  (** sends parked in overflow queues *)
  decode_errors : int;  (** poisoned streams (each drops a connection) *)
}

val pp_wire_stats : Format.formatter -> wire_stats -> unit

val attach :
  ?chaos:Wire_chaos.plan ->
  ?master_key:int64 ->
  ?link_window:int ->
  ?rto0:int ->
  ?rto_max:int ->
  ?pump_budget:float ->
  ?chaos_seed:int64 ->
  Message.t Engine.t ->
  t
(** Builds the full loopback mesh — one listener per party on an
    ephemeral port, one connection per pair (lower id dials), HELLO
    handshakes — then installs itself with [Engine.set_wire]. Blocks
    until the mesh is up (bounded; raises [Failure] on timeout).
    [pump_budget] (default 30 s) bounds the wall-clock a single pump may
    spend before a wedged wire raises a structured [Failure]. Call
    {!close} when done — always, also on exceptions. *)

val kill_connection : t -> a:int -> b:int -> unit
(** Test hook: force-close the TCP connection of pair [(a, b)] as a
    crash would. The supervisor re-dials with backoff and both
    directions replay their unacked backlog. *)

val close : t -> unit
(** Detaches from the engine ([Engine.clear_wire]) and closes every
    socket. Idempotent. *)

val stats : t -> wire_stats

val in_flight : t -> int
(** Logical messages currently in custody of the wire. [0] whenever the
    engine is between events — the pump drains fully. *)
