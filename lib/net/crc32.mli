(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]).

    The frame layer's integrity check for {e accidental} corruption; the
    keyed MAC ({!Auth}) handles adversarial frames. *)

val digest : Bytes.t -> int
(** CRC-32 of the whole buffer, in [\[0, 2^32)]. *)

val digest_sub : Bytes.t -> off:int -> len:int -> int
(** CRC-32 of [len] bytes starting at [off]. Raises [Invalid_argument] on
    an out-of-bounds slice. *)
