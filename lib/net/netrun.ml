(* The loopback networked runtime: every logical message physically
   traverses a real TCP socket through the authenticated frame codec and
   the perfect-link layer, while the simulator engine remains the
   scheduler.

   The trick that makes the sim an exact oracle: the engine still draws
   the delay policy, allocates the event sequence number and counts
   stats at send time — it only hands the message to us instead of
   pushing the delivery event. The message rides to the destination
   carrying its [(engine_seq, deliver_at)] and is re-inserted through
   [Engine.inject] under the exact heap key a direct send would have
   used. The engine calls [wire_pump] at its two seams (queue drained,
   time about to advance), and the pump does not return until every
   in-flight logical message has been re-injected — so the pop order,
   and therefore the entire run, is byte-identical to the sim backend.
   Frame-level chaos below the perfect link must then be masked
   completely: the differential harness demands identical results even
   under drop/duplicate/reorder/delay/flap plans.

   Topology: every party binds a loopback listener on an ephemeral
   port; for each unordered pair the lower id dials the higher id's
   listener and opens the connection with a HELLO frame naming itself
   and the connection epoch. Both endpoints of every connection live in
   this process (all parties share it), so a connection is a pair of
   [endp] records — one per side — each with its own fd, decoder and
   write queue. A dead connection (EOF, write error, decode error,
   chaos flap, or the kill test hook) takes both sides down; the dialer
   re-dials after a capped exponential backoff and both directions
   replay their unacked backlog ([Link.mark_replay]) — cumulative ACKs
   make the replay idempotent.

   Wire time is a tick counter advanced once per pump iteration; link
   RTOs, chaos holds and reconnect backoffs are denominated in it.
   Wall-clock nondeterminism (how many retransmissions a given kernel
   scheduling produces) perturbs wire statistics only, never logical
   results. A wall-clock budget per pump call turns a wedged wire into
   a structured failure instead of a hang. *)

type wire_stats = {
  logical_sent : int;
  logical_delivered : int;
  frames_sent : int;
  frames_received : int;
  retransmits : int;
  dup_frames : int;
  chaos_dropped : int;
  chaos_duplicated : int;
  chaos_held : int;
  reconnects : int;
  backpressure_stalls : int;
  decode_errors : int;
}

let pp_wire_stats ppf s =
  Format.fprintf ppf
    "logical %d/%d  frames %d/%d  retx %d  dup %d  chaos %d/%d/%d  reconn %d  \
     stall %d  decerr %d"
    s.logical_sent s.logical_delivered s.frames_sent s.frames_received
    s.retransmits s.dup_frames s.chaos_dropped s.chaos_duplicated s.chaos_held
    s.reconnects s.backpressure_stalls s.decode_errors

(* one directed link's perfect-link state *)
type dlink = {
  snd : Link.sender;
  rcv : Link.receiver;
  overflow : Bytes.t Queue.t;  (* payloads the sender window rejected *)
  mutable ack_pending : bool;  (* receiver owes a (re-)ACK *)
}

(* one side of a TCP connection *)
type endp = {
  owner : int;  (* party holding this side *)
  mutable fd : Unix.file_descr option;
  mutable dec : Wire.decoder;
  outq : (Bytes.t * int ref) Queue.t;  (* encoded frames, write offset *)
}

type conn = {
  a : int;
  b : int;  (* a < b; a dials *)
  ea : endp;  (* a's side *)
  eb : endp;  (* b's side *)
  mutable down_until : int;  (* no re-dial before this wire tick *)
  mutable backoff : int;  (* ticks, doubles per failure, capped *)
  mutable epoch : int;  (* successful establishments *)
}

type t = {
  engine : Message.t Engine.t;
  n : int;
  keys : Auth.key array array;
  links : dlink array array;
  conns : conn option array array;  (* upper triangle: [a].[b], a < b *)
  listeners : Unix.file_descr array;
  ports : int array;
  mutable pending : (int * Unix.file_descr * Wire.decoder) list;
      (* accepted, awaiting HELLO: (host party, fd, decoder) *)
  chaos : Wire_chaos.t option;
  mutable holds : (int * endp * Bytes.t) list;  (* (release tick, via, frame) *)
  mutable tick : int;
  mutable in_flight : int;  (* logical msgs handed to us, not yet injected *)
  pump_budget : float;  (* seconds of wall per pump call *)
  scratch : Bytes.t;
  mutable logical_sent : int;
  mutable logical_delivered : int;
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable reconnects : int;
  mutable backpressure_stalls : int;
  mutable decode_errors : int;
  mutable closed : bool;
}

let max_backoff = 64

(* -- connection plumbing -- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let conn_of t i j =
  let a = min i j and b = max i j in
  match t.conns.(a).(b) with
  | Some c -> c
  | None -> invalid_arg "Netrun: no connection for pair"

let fresh_decoder t =
  Wire.decoder ~n:t.n ~key_of:(fun ~src ~dst -> t.keys.(src).(dst))

let take_down t c =
  (match c.ea.fd with Some fd -> close_quiet fd | None -> ());
  (match c.eb.fd with Some fd -> close_quiet fd | None -> ());
  c.ea.fd <- None;
  c.eb.fd <- None;
  Queue.clear c.ea.outq;
  Queue.clear c.eb.outq;
  c.ea.dec <- fresh_decoder t;
  c.eb.dec <- fresh_decoder t;
  c.down_until <- t.tick + c.backoff;
  c.backoff <- min (c.backoff * 2) max_backoff

(* Both directions of a re-established connection replay their unacked
   backlog immediately; duplicates are suppressed by the receivers. *)
let mark_established t c =
  c.epoch <- c.epoch + 1;
  c.backoff <- 1;
  if c.epoch > 1 then t.reconnects <- t.reconnects + 1;
  Link.mark_replay t.links.(c.a).(c.b).snd;
  Link.mark_replay t.links.(c.b).(c.a).snd

let enqueue_frame t (e : endp) bytes =
  if e.fd <> None then begin
    t.frames_sent <- t.frames_sent + 1;
    Queue.push (bytes, ref 0) e.outq
  end
(* no fd: the frame is dropped — retransmission covers DATA, receivers
   re-ACK on the duplicate, HELLO is re-sent by the dialer *)

(* route one encoded frame through chaos; [via] is the sending side *)
let route t ~src ~dst ~ftype (via : endp) bytes =
  match t.chaos with
  | None -> enqueue_frame t via bytes
  | Some ch -> (
      match Wire_chaos.on_frame ch ~src ~dst ~ftype ~tick:t.tick with
      | Wire_chaos.Drop_frame -> ()
      | Wire_chaos.Deliver delays ->
          List.iter
            (fun d ->
              if d <= 0 then enqueue_frame t via bytes
              else t.holds <- (t.tick + d, via, bytes) :: t.holds)
            delays)

let endp_for t ~src ~dst =
  let c = conn_of t src dst in
  if src = c.a then c.ea else c.eb

(* send a DATA frame for directed link (src, dst), piggybacking src's
   cumulative ack for the reverse direction *)
let send_data t ~src ~dst ~seq payload =
  let frame =
    {
      Wire.ftype = Wire.Data;
      src;
      dst;
      seq = Int64.of_int seq;
      ack = Int64.of_int (Link.cumulative_ack t.links.(dst).(src).rcv);
      payload;
    }
  in
  route t ~src ~dst ~ftype:Wire.Data (endp_for t ~src ~dst)
    (Wire.encode ~key:t.keys.(src).(dst) frame)

let send_ack t ~src ~dst =
  (* acknowledges data received at [src] over link (dst → src) *)
  let frame =
    {
      Wire.ftype = Wire.Ack;
      src;
      dst;
      seq = 0L;
      ack = Int64.of_int (Link.cumulative_ack t.links.(dst).(src).rcv);
      payload = Bytes.empty;
    }
  in
  route t ~src ~dst ~ftype:Wire.Ack (endp_for t ~src ~dst)
    (Wire.encode ~key:t.keys.(src).(dst) frame)

let send_hello t c =
  let frame =
    {
      Wire.ftype = Wire.Hello;
      src = c.a;
      dst = c.b;
      seq = Int64.of_int c.epoch;
      ack = 0L;
      payload = Bytes.empty;
    }
  in
  route t ~src:c.a ~dst:c.b ~ftype:Wire.Hello c.ea
    (Wire.encode ~key:t.keys.(c.a).(c.b) frame)

let dial t c =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.ports.(c.b)))
  with
  | () ->
      Unix.set_nonblock fd;
      c.ea.fd <- Some fd;
      c.ea.dec <- fresh_decoder t;
      send_hello t c
  | exception Unix.Unix_error _ ->
      close_quiet fd;
      c.down_until <- t.tick + c.backoff;
      c.backoff <- min (c.backoff * 2) max_backoff

(* -- frame dispatch -- *)

exception Conn_poisoned

let on_frame t (e : endp) (f : Wire.frame) =
  t.frames_received <- t.frames_received + 1;
  (* any frame's ack field credits the sender of the (dst → src) data
     direction — for DATA that is the piggyback, for ACK the point *)
  (match f.ftype with
  | Wire.Data | Wire.Ack ->
      ignore (Link.on_ack t.links.(f.dst).(f.src).snd ~ack:(Int64.to_int f.ack))
  | Wire.Hello -> ());
  match f.ftype with
  | Wire.Hello -> ()  (* re-handshake on a live side: nothing to do *)
  | Wire.Ack -> ()
  | Wire.Data ->
      if f.dst <> e.owner then begin
        (* authenticated frame addressed to the wrong side: a wiring
           bug, not a wire fault — poison the connection *)
        t.decode_errors <- t.decode_errors + 1;
        raise Conn_poisoned
      end;
      let dl = t.links.(f.src).(f.dst) in
      let deliveries = Link.on_data dl.rcv ~seq:(Int64.to_int f.seq) f.payload in
      dl.ack_pending <- true;
      List.iter
        (fun payload ->
          match Codec.decode_record payload with
          | exception Codec.Malformed _ ->
              t.decode_errors <- t.decode_errors + 1;
              raise Conn_poisoned
          | engine_seq, deliver_at, msg ->
              Engine.inject t.engine ~src:f.src ~dst:f.dst ~seq:engine_seq
                ~deliver_at msg;
              t.logical_delivered <- t.logical_delivered + 1;
              t.in_flight <- t.in_flight - 1)
        deliveries

let drain_decoder t (e : endp) =
  let rec go () =
    match Wire.next e.dec with
    | Ok None -> ()
    | Ok (Some f) ->
        on_frame t e f;
        go ()
    | Error _err ->
        t.decode_errors <- t.decode_errors + 1;
        raise Conn_poisoned
  in
  go ()

let read_endp t c (e : endp) =
  match e.fd with
  | None -> ()
  | Some fd -> (
      match Unix.read fd t.scratch 0 (Bytes.length t.scratch) with
      | 0 -> take_down t c  (* peer closed *)
      | len -> (
          Wire.feed e.dec t.scratch ~off:0 ~len;
          try drain_decoder t e with Conn_poisoned -> take_down t c)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> take_down t c)

let write_endp t c (e : endp) =
  match e.fd with
  | None -> ()
  | Some fd -> (
      try
        while not (Queue.is_empty e.outq) do
          let bytes, off = Queue.peek e.outq in
          let len = Bytes.length bytes - !off in
          let n = Unix.write fd bytes !off len in
          off := !off + n;
          if !off = Bytes.length bytes then ignore (Queue.pop e.outq)
          else raise Exit  (* partial write: socket buffer full *)
        done
      with
      | Exit -> ()
      | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | Unix.Unix_error _ -> take_down t c)

(* an accepted fd delivers its HELLO: bind it to its connection *)
let adopt_pending t host fd dec =
  match Wire.next dec with
  | Ok None -> `Wait
  | Ok (Some { Wire.ftype = Wire.Hello; src; dst; _ })
    when dst = host && src < host -> (
      match t.conns.(src).(host) with
      | Some c ->
          (match c.eb.fd with Some old -> close_quiet old | None -> ());
          c.eb.fd <- Some fd;
          c.eb.dec <- dec;
          mark_established t c;
          (* bytes that followed HELLO in the same read *)
          (try drain_decoder t c.eb with Conn_poisoned -> take_down t c);
          `Adopted
      | None -> `Reject)
  | Ok (Some _) | Error _ ->
      t.decode_errors <- t.decode_errors + 1;
      `Reject

(* -- the pump -- *)

let iter_conns t f =
  for a = 0 to t.n - 1 do
    for b = a + 1 to t.n - 1 do
      match t.conns.(a).(b) with Some c -> f c | None -> ()
    done
  done

let live_pairs t f =
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      if src <> dst then f src dst
    done
  done

let pump_once t =
  t.tick <- t.tick + 1;
  (* chaos link flaps *)
  (match t.chaos with
  | None -> ()
  | Some ch ->
      List.iter
        (fun (src, dst, down_for) ->
          let c = conn_of t src dst in
          if c.ea.fd <> None || c.eb.fd <> None then begin
            take_down t c;
            c.down_until <- max c.down_until (t.tick + down_for)
          end)
        (Wire_chaos.flaps_due ch ~tick:t.tick));
  (* release chaos-held frames *)
  (match t.holds with
  | [] -> ()
  | holds ->
      let due, later = List.partition (fun (r, _, _) -> r <= t.tick) holds in
      t.holds <- later;
      List.iter (fun (_, via, bytes) -> enqueue_frame t via bytes) (List.rev due));
  (* re-dial dead connections whose backoff has expired *)
  iter_conns t (fun c ->
      if c.ea.fd = None && c.eb.fd = None && t.tick >= c.down_until then
        dial t c);
  (* move overflow into freed sender windows *)
  live_pairs t (fun src dst ->
      let dl = t.links.(src).(dst) in
      let continue = ref true in
      while !continue && not (Queue.is_empty dl.overflow) do
        match Link.submit dl.snd ~now:t.tick (Queue.peek dl.overflow) with
        | `Accepted _ -> ignore (Queue.pop dl.overflow)
        | `Backpressure -> continue := false
      done);
  (* harvest due (re)transmissions *)
  live_pairs t (fun src dst ->
      List.iter
        (fun (seq, payload) -> send_data t ~src ~dst ~seq payload)
        (Link.due t.links.(src).(dst).snd ~now:t.tick));
  (* owed ACKs *)
  live_pairs t (fun src dst ->
      let dl = t.links.(src).(dst) in
      if dl.ack_pending then begin
        dl.ack_pending <- false;
        send_ack t ~src:dst ~dst:src
      end);
  (* I/O round *)
  let reads = ref [] and writes = ref [] in
  Array.iter (fun fd -> reads := fd :: !reads) t.listeners;
  List.iter (fun (_, fd, _) -> reads := fd :: !reads) t.pending;
  iter_conns t (fun c ->
      List.iter
        (fun e ->
          match e.fd with
          | None -> ()
          | Some fd ->
              reads := fd :: !reads;
              if not (Queue.is_empty e.outq) then writes := fd :: !writes)
        [ c.ea; c.eb ]);
  let readable, writable, _ =
    try Unix.select !reads !writes [] 0.001
    with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
  in
  (* accepts *)
  Array.iteri
    (fun host lfd ->
      if List.memq lfd readable then
        match Unix.accept lfd with
        | fd, _ ->
            Unix.set_nonblock fd;
            t.pending <- (host, fd, fresh_decoder t) :: t.pending
        | exception Unix.Unix_error _ -> ())
    t.listeners;
  (* pending HELLOs *)
  t.pending <-
    List.filter
      (fun (host, fd, dec) ->
        if not (List.memq fd readable) then true
        else
          match Unix.read fd t.scratch 0 (Bytes.length t.scratch) with
          | 0 ->
              close_quiet fd;
              false
          | len -> (
              Wire.feed dec t.scratch ~off:0 ~len;
              match adopt_pending t host fd dec with
              | `Wait -> true
              | `Adopted -> false
              | `Reject ->
                  close_quiet fd;
                  false)
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
              true
          | exception Unix.Unix_error _ ->
              close_quiet fd;
              false)
      t.pending;
  (* established reads, then writes *)
  iter_conns t (fun c ->
      List.iter
        (fun e ->
          match e.fd with
          | Some fd when List.memq fd readable -> read_endp t c e
          | _ -> ())
        [ c.ea; c.eb ]);
  iter_conns t (fun c ->
      List.iter
        (fun e ->
          match e.fd with
          | Some fd when List.memq fd writable || not (Queue.is_empty e.outq)
            ->
              ignore fd;
              write_endp t c e
          | _ -> ())
        [ c.ea; c.eb ])

let wire_pump t () =
  if t.closed then false
  else if t.in_flight = 0 then false
  else begin
    let deadline = Unix.gettimeofday () +. t.pump_budget in
    while t.in_flight > 0 do
      if Unix.gettimeofday () > deadline then
        failwith
          (Format.asprintf
             "Netrun: wire stalled — %d logical message(s) undelivered after \
              %.1fs (tick %d)"
             t.in_flight t.pump_budget t.tick);
      pump_once t
    done;
    true
  end

let wire_send t ~src ~dst ~seq ~deliver_at msg =
  t.logical_sent <- t.logical_sent + 1;
  if src = dst then begin
    (* self-delivery never leaves the process: inject directly, same
       heap key, no socket round-trip *)
    Engine.inject t.engine ~src ~dst ~seq ~deliver_at msg;
    t.logical_delivered <- t.logical_delivered + 1
  end
  else begin
    let payload = Codec.encode_record ~engine_seq:seq ~deliver_at msg in
    t.in_flight <- t.in_flight + 1;
    let dl = t.links.(src).(dst) in
    if not (Queue.is_empty dl.overflow) then begin
      (* keep submission order: behind earlier overflow *)
      t.backpressure_stalls <- t.backpressure_stalls + 1;
      Queue.push payload dl.overflow
    end
    else
      match Link.submit dl.snd ~now:t.tick payload with
      | `Accepted _ -> ()
      | `Backpressure ->
          t.backpressure_stalls <- t.backpressure_stalls + 1;
          Queue.push payload dl.overflow
  end

(* -- lifecycle -- *)

let attach ?chaos ?(master_key = 0x6e65742d6d616161L)
    ?(link_window = 64) ?(rto0 = 8) ?(rto_max = 256) ?(pump_budget = 30.)
    ?(chaos_seed = 0x77697265L) engine =
  let n = Engine.n engine in
  if n < 1 || n > 255 then invalid_arg "Netrun.attach: n out of frame range";
  let master = Auth.of_master master_key in
  let keys =
    Array.init n (fun src ->
        Array.init n (fun dst -> Auth.derive master ~src ~dst))
  in
  let link_rng = Rng.create (Int64.lognot master_key) in
  let links =
    Array.init n (fun _ ->
        Array.init n (fun _ ->
            {
              snd =
                Link.sender ~window:link_window ~rto0 ~rto_max
                  ~rng:(Rng.split link_rng) ();
              rcv = Link.receiver ();
              overflow = Queue.create ();
              ack_pending = false;
            }))
  in
  let listeners =
    Array.init n (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.listen fd 64;
        Unix.set_nonblock fd;
        fd)
  in
  let ports =
    Array.map
      (fun fd ->
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> port
        | _ -> assert false)
      listeners
  in
  let chaos =
    Option.map (fun plan -> Wire_chaos.create ~seed:chaos_seed ~n plan) chaos
  in
  let t =
    {
      engine;
      n;
      keys;
      links;
      conns = Array.make_matrix n n None;
      listeners;
      ports;
      pending = [];
      chaos;
      holds = [];
      tick = 0;
      in_flight = 0;
      pump_budget;
      scratch = Bytes.create 65536;
      logical_sent = 0;
      logical_delivered = 0;
      frames_sent = 0;
      frames_received = 0;
      reconnects = 0;
      backpressure_stalls = 0;
      decode_errors = 0;
      closed = false;
    }
  in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let mk owner =
        { owner; fd = None; dec = fresh_decoder t; outq = Queue.create () }
      in
      t.conns.(a).(b) <-
        Some
          {
            a;
            b;
            ea = mk a;
            eb = mk b;
            down_until = 0;
            backoff = 1;
            epoch = 0;
          }
    done
  done;
  (* establish the full mesh before the first logical send *)
  let deadline = Unix.gettimeofday () +. 10. in
  let all_up () =
    let up = ref true in
    iter_conns t (fun c -> if c.ea.fd = None || c.eb.fd = None then up := false);
    !up
  in
  while not (all_up ()) do
    if Unix.gettimeofday () > deadline then
      failwith "Netrun.attach: could not establish the loopback mesh";
    pump_once t
  done;
  Engine.set_wire engine
    {
      Engine.wire_send = (fun ~src ~dst ~seq ~deliver_at msg ->
          wire_send t ~src ~dst ~seq ~deliver_at msg);
      wire_pump = (fun () -> wire_pump t ());
    };
  t

let kill_connection t ~a ~b =
  let c = conn_of t a b in
  if c.ea.fd <> None || c.eb.fd <> None then take_down t c

let close t =
  if not t.closed then begin
    t.closed <- true;
    Engine.clear_wire t.engine;
    iter_conns t (fun c ->
        (match c.ea.fd with Some fd -> close_quiet fd | None -> ());
        (match c.eb.fd with Some fd -> close_quiet fd | None -> ());
        c.ea.fd <- None;
        c.eb.fd <- None);
    List.iter (fun (_, fd, _) -> close_quiet fd) t.pending;
    t.pending <- [];
    Array.iter close_quiet t.listeners
  end

let stats t =
  let retransmits = ref 0 and dups = ref 0 in
  live_pairs t (fun src dst ->
      retransmits := !retransmits + Link.retransmits t.links.(src).(dst).snd;
      dups := !dups + Link.duplicates t.links.(src).(dst).rcv);
  {
    logical_sent = t.logical_sent;
    logical_delivered = t.logical_delivered;
    frames_sent = t.frames_sent;
    frames_received = t.frames_received;
    retransmits = !retransmits;
    dup_frames = !dups;
    chaos_dropped = (match t.chaos with Some c -> Wire_chaos.dropped c | None -> 0);
    chaos_duplicated =
      (match t.chaos with Some c -> Wire_chaos.duplicated c | None -> 0);
    chaos_held = (match t.chaos with Some c -> Wire_chaos.held c | None -> 0);
    reconnects = t.reconnects;
    backpressure_stalls = t.backpressure_stalls;
    decode_errors = t.decode_errors;
  }

let in_flight t = t.in_flight
