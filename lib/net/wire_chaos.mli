(** Frame-level fault injection the perfect link must mask.

    Mirrors [lib/harness]'s [Fault_plan] atom shapes one layer down:
    these perturb physical frames between the link state machines and
    the socket. Decisions come from per-directed-link RNG streams seeded
    from [(seed, src, dst)], so plans are reproducible. HELLO frames are
    exempt (flaps model connection failure; chaos models a lossy wire). *)

type atom =
  | Drop of { percent : int }  (** lose the frame *)
  | Duplicate of { percent : int }  (** send a second copy *)
  | Reorder of { percent : int; hold : int }
      (** hold the frame [hold] ticks so successors overtake it *)
  | Delay_spike of { from_tick : int; until_tick : int; hold : int }
      (** add [hold] ticks to every frame in the wire-tick window *)
  | Link_flap of { at_tick : int; down_for : int }
      (** force-close the connection at [at_tick]; no re-dial for
          [down_for] ticks *)

type plan = src:int -> dst:int -> atom list
(** Atoms for each directed link. *)

val no_chaos : plan

type t

val create : seed:int64 -> n:int -> plan -> t

type verdict = Deliver of int list | Drop_frame

val on_frame :
  t -> src:int -> dst:int -> ftype:Wire.ftype -> tick:int -> verdict
(** Sender-side, pre-write: [Deliver delays] transmits one copy per
    element, each after that many wire ticks; [Drop_frame] transmits
    nothing. *)

val flaps_due : t -> tick:int -> (int * int * int) list
(** [(src, dst, down_for)] for every flap triggering at [tick]. *)

val dropped : t -> int

val duplicated : t -> int

val held : t -> int
