module IM = Map.Make (Int)

type t = Vec.t IM.t

let empty = IM.empty
let is_empty = IM.is_empty
let cardinal = IM.cardinal

let add ~party v m =
  IM.update party (function None -> Some v | Some old -> Some old) m

let mem_party = IM.mem
let find_party p m = IM.find_opt p m
let values m = IM.bindings m |> List.map snd

let values_arr m =
  let n = IM.cardinal m in
  if n = 0 then [||]
  else begin
    let _, v0 = IM.min_binding m in
    let out = Array.make n v0 in
    let i = ref 0 in
    IM.iter
      (fun _ v ->
        out.(!i) <- v;
        incr i)
      m;
    out
  end
let parties m = IM.bindings m |> List.map fst
let bindings = IM.bindings

let of_bindings bs =
  List.fold_left (fun acc (p, v) -> add ~party:p v acc) empty bs

let same_value u v = Vec.compare u v = 0

let subset m m' =
  IM.for_all
    (fun p v ->
      match IM.find_opt p m' with Some v' -> same_value v v' | None -> false)
    m

let inter m m' =
  IM.merge
    (fun _ a b ->
      match (a, b) with
      | Some v, Some v' when same_value v v' -> Some v
      | _ -> None)
    m m'

let union m m' = IM.union (fun _ v _ -> Some v) m m'
let diameter m = Vec.diameter (values m)

let pp ppf m =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (p, v) -> Format.fprintf ppf "P%d↦%a" p Vec.pp v))
    (bindings m)
