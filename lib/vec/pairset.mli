(** Sets of value–party pairs [M ⊆ R^D × {P_0, …, P_{n−1}}].

    The paper's protocol never holds two pairs with the same party, so the
    set is keyed by party identifier. [val(M)] (a multiset of vectors) is
    {!values}: two parties may well contribute the same vector. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val add : party:int -> Vec.t -> t -> t
(** [add ~party v m] binds [party ↦ v]. An existing binding for [party] is
    kept unchanged (first value received via reliable broadcast wins, which
    matches the protocol: consistency makes duplicates identical anyway). *)

val mem_party : int -> t -> bool
val find_party : int -> t -> Vec.t option

val values : t -> Vec.t list
(** [val(M)] as a list, in increasing party order (deterministic). *)

val values_arr : t -> Vec.t array
(** [val(M)] as an array, in increasing party order; feeds the array-native
    safe-area path without an intermediate list. *)

val parties : t -> int list
val bindings : t -> (int * Vec.t) list
val of_bindings : (int * Vec.t) list -> t

val subset : t -> t -> bool
(** [subset m m'] holds when every pair of [m] occurs in [m'] (same party
    {e and} same value, exact float equality as produced by broadcast). *)

val inter : t -> t -> t
(** Pairs present in both (party and value equal). *)

val union : t -> t -> t
(** Union of pairs; on a party bound in both, the left value wins. *)

val diameter : t -> float
(** [δmax(val(M))]. *)

val pp : Format.formatter -> t -> unit
