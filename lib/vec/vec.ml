type t = float array

let dim = Array.length
let of_array a = Array.copy a
let of_list = Array.of_list
let to_array = Array.copy
let to_list = Array.to_list
let get (v : t) d = v.(d)
let zero d = Array.make d 0.

let basis ~dim d s =
  if d < 0 || d >= dim then invalid_arg "Vec.basis";
  let v = Array.make dim 0. in
  v.(d) <- s;
  v

let make d x = Array.make d x

let check_dims u v =
  if Array.length u <> Array.length v then invalid_arg "Vec: dimension mismatch"

let add u v =
  check_dims u v;
  Array.mapi (fun i x -> x +. v.(i)) u

let sub u v =
  check_dims u v;
  Array.mapi (fun i x -> x -. v.(i)) u

let scale s v = Array.map (fun x -> s *. x) v
let neg v = scale (-1.) v

let dot u v =
  check_dims u v;
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (x *. v.(i))) u;
  !acc

let dist2 u v =
  check_dims u v;
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
      let d = x -. v.(i) in
      acc := !acc +. (d *. d))
    u;
  !acc

let norm v = sqrt (dot v v)
let dist u v = sqrt (dist2 u v)
let midpoint a b = scale 0.5 (add a b)

let lincomb = function
  | [] -> invalid_arg "Vec.lincomb: empty list"
  | (l0, v0) :: rest ->
      let acc = scale l0 v0 in
      List.iter
        (fun (l, v) ->
          check_dims acc v;
          Array.iteri (fun i x -> acc.(i) <- acc.(i) +. (l *. x)) v)
        rest;
      acc

let normalize v =
  let n = norm v in
  if n <= 1e-300 then None else Some (scale (1. /. n) v)

let compare (u : t) (v : t) =
  let c = Stdlib.compare (Array.length u) (Array.length v) in
  if c <> 0 then c
  else
    let rec go i =
      if i = Array.length u then 0
      else
        let c = Float.compare u.(i) v.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal ?(eps = 1e-9) u v =
  Array.length u = Array.length v
  && Array.for_all2 (fun a b -> Float.abs (a -. b) <= eps) u v

let equal_exact (u : t) (v : t) =
  Array.length u = Array.length v
  &&
  let rec go i =
    i = Array.length u || (Float.compare u.(i) v.(i) = 0 && go (i + 1))
  in
  go 0

(* Bit-level FNV-style hash. Every NaN is folded to one canonical word so
   the hash agrees with [equal_exact] (Float.compare puts all NaNs in one
   equivalence class); -0. and 0. hash apart, as Float.compare separates
   them. *)
let hash (v : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length v - 1 do
    let x = v.(i) in
    let bits =
      if Float.is_nan x then 0x7ff8000000000L else Int64.bits_of_float x
    in
    let w = Int64.to_int bits in
    h := (!h * 0x01000193) lxor (w land max_int) lxor (w lsr 32)
  done;
  !h land max_int

let diameter_pair vs =
  match vs with
  | [] -> None
  | [ v ] -> Some (v, v)
  | _ ->
      let best = ref None in
      let better a b d2 =
        match !best with
        | None -> true
        | Some (a', b', d2') ->
            d2 > d2' +. 1e-15
            ||
            (Float.abs (d2 -. d2') <= 1e-15
            &&
            let c = compare a a' in
            c < 0 || (c = 0 && compare b b' < 0))
      in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              (* orient the pair deterministically *)
              let a, b = if compare a b <= 0 then (a, b) else (b, a) in
              let d2 = dist2 a b in
              if better a b d2 then best := Some (a, b, d2))
            vs)
        vs;
      Option.map (fun (a, b, _) -> (a, b)) !best

let diameter vs =
  match diameter_pair vs with None -> 0. | Some (a, b) -> dist a b

let centroid = function
  | [] -> invalid_arg "Vec.centroid: empty list"
  | vs ->
      let n = float_of_int (List.length vs) in
      lincomb (List.map (fun v -> (1. /. n, v)) vs)

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list v)

let to_string v = Format.asprintf "%a" pp v
