(** Dense vectors in [R^D] and basic Euclidean geometry over finite sets.

    All protocol values, robot positions, gradients etc. are represented as
    values of type {!t}. Vectors are immutable from the point of view of this
    interface: every operation allocates a fresh result. *)

type t = private float array
(** A point of [R^D]. The dimension is the array length. *)

val dim : t -> int
(** [dim v] is the dimension [D] of [v]. *)

val of_array : float array -> t
(** [of_array a] copies [a] into a fresh vector. *)

val of_list : float list -> t

val to_array : t -> float array
(** [to_array v] is a fresh copy of the coordinates of [v]. *)

val to_list : t -> float list

val get : t -> int -> float
(** [get v d] is the projection of [v] on coordinate [d] (0-indexed). *)

val zero : int -> t
(** [zero d] is the origin of [R^d]. *)

val basis : dim:int -> int -> float -> t
(** [basis ~dim d s] is [s·e_d]: the vector with [s] at coordinate [d]
    and [0.] elsewhere. Raises [Invalid_argument] if [d] is out of range. *)

val make : int -> float -> t
(** [make d x] is the [d]-dimensional vector with every coordinate [x]. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val dot : t -> t -> float

val norm : t -> float
(** Euclidean norm. *)

val dist : t -> t -> float
(** [dist u v] is the Euclidean distance [δ(u, v)] of Definition 2.1. *)

val dist2 : t -> t -> float
(** Squared Euclidean distance (no square root; cheaper for comparisons). *)

val midpoint : t -> t -> t
(** [midpoint a b = (a + b) / 2]. *)

val lincomb : (float * t) list -> t
(** [lincomb [(l1,v1); ...]] is [Σ li·vi]. The list must be non-empty and all
    vectors of equal dimension. *)

val normalize : t -> t option
(** [normalize v] is [v / |v|], or [None] when [|v|] is (numerically) [0]. *)

val compare : t -> t -> int
(** Total lexicographic order on [R^D], used for the deterministic
    tie-breaking the protocol relies on. Shorter vectors come first. *)

val equal : ?eps:float -> t -> t -> bool
(** Coordinate-wise equality up to [eps] (default [1e-9]). *)

val equal_exact : t -> t -> bool
(** [equal_exact u v] iff [compare u v = 0]: same dimension and every
    coordinate equal under [Float.compare] (so NaNs compare equal to NaNs,
    and [0.] ≠ [-0.]). The exact-identity relation the message-layer
    interning uses — no tolerance. *)

val hash : t -> int
(** A structural hash of the coordinate bits, consistent with
    {!equal_exact}: [equal_exact u v] implies [hash u = hash v] (all NaNs
    hash alike). Never calls the polymorphic [Hashtbl.hash]. *)

val diameter : t list -> float
(** [diameter vs] is [δmax(vs) = max δ(v, v')], [0.] on short lists. *)

val diameter_pair : t list -> (t * t) option
(** The pair realizing {!diameter}, chosen deterministically: among
    maximal-distance pairs, the one with lexicographically smallest first
    point, then smallest second point. [None] if fewer than one point. *)

val centroid : t list -> t
(** Arithmetic mean of a non-empty list. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
