module Vtbl = Hashtbl.Make (struct
  type t = Vec.t

  let equal = Vec.equal_exact
  let hash = Vec.hash
end)

type t = {
  dim : int;
  hulls : Vec.t array array;
  offsets : int array;
  nvars : int;
  mutable problem : (float * Lp.Problem.t) option;
      (* cached LP workspace, keyed by the eps it was built with *)
  mutable hull_lists : Vec.t list array option;
      (* cached per-hull point lists for membership queries *)
  support_cache : (float * Vec.t) option Vtbl.t;
      (* memoised [support] answers keyed on the exact direction bits *)
  mutable fpoint_cache : Vec.t option option;
      (* memoised [find_point] answer *)
  mutable cache_eps : float;
      (* eps the two memo tables above were filled under *)
}

let validate hulls =
  if Array.length hulls = 0 then invalid_arg "Hullset.make: no hulls";
  if Array.exists (fun h -> Array.length h = 0) hulls then
    invalid_arg "Hullset.make: empty hull";
  let dim = Vec.dim hulls.(0).(0) in
  Array.iter
    (fun h ->
      Array.iter
        (fun v ->
          if Vec.dim v <> dim then invalid_arg "Hullset.make: mixed dimensions")
        h)
    hulls;
  dim

(* [of_arrays] adopts the arrays without copying (the geometry stack hands
   over freshly built subset arrays); callers must not mutate them after. *)
let of_arrays hulls =
  let dim = validate hulls in
  let k = Array.length hulls in
  let offsets = Array.make k 0 in
  let n = ref 0 in
  Array.iteri
    (fun i h ->
      offsets.(i) <- !n;
      n := !n + Array.length h)
    hulls;
  {
    dim;
    hulls;
    offsets;
    nvars = !n;
    problem = None;
    hull_lists = None;
    support_cache = Vtbl.create 61;
    fpoint_cache = None;
    cache_eps = 1e-9;
  }

let make hulls = of_arrays (Array.of_list (List.map Array.of_list hulls))
let dim t = t.dim

(* Shared constraint system: one convex-combination weight per generator
   point, each hull's weights sum to 1, and all hulls describe the same
   point (hull i's combination equals hull 0's, coordinate-wise). *)
let constraints t =
  let k = Array.length t.hulls in
  let sums =
    List.init k (fun i ->
        {
          Lp.coeffs =
            List.init (Array.length t.hulls.(i)) (fun j ->
                (t.offsets.(i) + j, 1.));
          cmp = Lp.Eq;
          rhs = 1.;
        })
  in
  let equalities =
    List.concat
      (List.init (k - 1) (fun i ->
           let i = i + 1 in
           List.init t.dim (fun c ->
               let pos =
                 List.init (Array.length t.hulls.(i)) (fun j ->
                     (t.offsets.(i) + j, Vec.get t.hulls.(i).(j) c))
               in
               let neg =
                 List.init (Array.length t.hulls.(0)) (fun j ->
                     (t.offsets.(0) + j, -.Vec.get t.hulls.(0).(j) c))
               in
               { Lp.coeffs = pos @ neg; cmp = Lp.Eq; rhs = 0. })))
  in
  sums @ equalities

let problem ~eps t =
  match t.problem with
  | Some (e, p) when e = eps -> p
  | _ ->
      let p = Lp.Problem.make ~eps ~nvars:t.nvars (constraints t) in
      t.problem <- Some (eps, p);
      p

let point_of_solution t x =
  let h0 = t.hulls.(0) in
  Vec.lincomb
    (List.init (Array.length h0) (fun j -> (x.(t.offsets.(0) + j), h0.(j))))

let support_objective t ~dir =
  let h0 = t.hulls.(0) in
  List.init (Array.length h0) (fun j -> (t.offsets.(0) + j, Vec.dot dir h0.(j)))

(* The memo tables are valid for exactly one eps at a time; queries under a
   different tolerance drop them (the protocol only ever uses the default,
   so in practice the caches live for the lifetime of [t]). *)
let sync_caches t eps =
  if not (Float.equal eps t.cache_eps) then begin
    Vtbl.reset t.support_cache;
    t.fpoint_cache <- None;
    t.cache_eps <- eps
  end

let find_point ?(eps = 1e-9) t =
  sync_caches t eps;
  match t.fpoint_cache with
  | Some r -> r
  | None ->
      let r =
        Option.map (point_of_solution t)
          (Lp.Problem.feasible_point (problem ~eps t))
      in
      t.fpoint_cache <- Some r;
      r

let is_empty ?eps t = Option.is_none (find_point ?eps t)

let contains ?(eps = 1e-9) t p =
  let lists =
    match t.hull_lists with
    | Some ls -> ls
    | None ->
        let ls = Array.map Array.to_list t.hulls in
        t.hull_lists <- Some ls;
        ls
  in
  Array.for_all (fun h -> Membership.in_hull ~eps h p) lists

(* [warm:false]: phase 2 replays from the pristine post-phase-1 state, so
   every cached-workspace query is bit-identical to [Reference] below (and
   hence to the seed one-shot implementation) while still skipping the
   per-query constraint build, tableau build and phase 1. The fully warm
   mode is benchmarked at the [Lp.Problem] level.

   Answers are additionally memoised per [t], keyed on the exact coordinate
   bits of [dir]: the diameter search's alternating refinement and the
   sign-symmetric direction family re-issue identical directions, and a hit
   returns the stored answer verbatim — bit-identical to the cold query by
   construction. *)
let support ?(eps = 1e-9) t ~dir =
  sync_caches t eps;
  match Vtbl.find_opt t.support_cache dir with
  | Some r -> r
  | None ->
      let r =
        match
          Lp.Problem.solve_objective ~warm:false (problem ~eps t)
            ~minimize:false
            ~objective:(support_objective t ~dir)
        with
        | Lp.Infeasible -> None
        | Lp.Unbounded ->
            assert false (* K is bounded: a product of simplices *)
        | Lp.Optimal (v, x) -> Some (v, point_of_solution t x)
      in
      Vtbl.replace t.support_cache dir r;
      r

(* A direction and its negation drive the same width query (the two support
   calls swap roles and the width sum is commutative), so the direction
   family is deduped up to sign. The canonical key flips the sign so the
   first non-zero coordinate is positive and maps every zero to [+0.] — a
   coordinate axis [e_c] and a normalised generator difference [±e_c] then
   collide even when negation left a [-0.] behind. Keys are used for dedup
   only; each kept representative queries with its original bits. *)
let canon_dir d =
  let a = Vec.to_array d in
  let flip =
    let rec first i =
      if i >= Array.length a then false
      else if a.(i) <> 0. then a.(i) < 0.
      else first (i + 1)
    in
    first 0
  in
  Vec.of_array
    (Array.map
       (fun c ->
         let c = if flip then -.c else c in
         if c = 0. then 0. else c)
       a)

(* Deterministic direction family for the diameter search: coordinate axes
   plus normalised pairwise differences of the (deduped) generators,
   deduped up to sign against the axes and each other. Capped so the query
   cost stays bounded; alternating refinement then sharpens the best
   candidate. *)
let seed_directions t =
  let axes = List.init t.dim (fun c -> Vec.basis ~dim:t.dim c 1.) in
  let gens =
    Array.to_list t.hulls |> List.concat_map Array.to_list
    |> List.sort_uniq Vec.compare
  in
  let diffs = ref [] in
  let rec pairs = function
    | [] -> ()
    | g :: rest ->
        List.iter
          (fun g' ->
            match Vec.normalize (Vec.sub g g') with
            | Some d -> diffs := d :: !diffs
            | None -> ())
          rest;
        pairs rest
  in
  pairs gens;
  let diffs = List.sort_uniq Vec.compare !diffs in
  let seen = Vtbl.create 61 in
  List.iter (fun a -> Vtbl.replace seen (canon_dir a) ()) axes;
  let cap = 24 in
  let kept = ref 0 in
  let diffs =
    List.filter
      (fun d ->
        let c = canon_dir d in
        if !kept >= cap || Vtbl.mem seen c then false
        else begin
          Vtbl.replace seen c ();
          incr kept;
          true
        end)
      diffs
  in
  axes @ diffs

(* The search itself, shared by the workspace-backed and the reference
   implementations so that their results can only differ through the
   [find_point]/[support] queries they are given. *)
let diameter_pair_with ~find_point ~support t =
  match find_point t with
  | None -> None
  | Some p0 ->
      let width d =
        match (support t ~dir:d, support t ~dir:(Vec.neg d)) with
        | Some (va, a), Some (vb, b) -> Some (va +. vb, a, b)
        | _ -> None
      in
      let best = ref (0., p0, p0) in
      let consider d =
        match width d with
        | Some (w, a, b) ->
            let bw, _, _ = !best in
            if w > bw +. 1e-12 then best := (w, a, b)
        | None -> ()
      in
      List.iter consider (seed_directions t);
      (* Alternating refinement from the best seed. *)
      let rec refine i =
        if i >= 8 then ()
        else begin
          let w0, a, b = !best in
          match Vec.normalize (Vec.sub a b) with
          | None -> ()
          | Some d -> (
              consider d;
              let w1, _, _ = !best in
              if w1 > w0 +. 1e-10 then refine (i + 1))
        end
      in
      refine 0;
      let _, a, b = !best in
      (* Deterministic orientation of the pair. *)
      if Vec.compare a b <= 0 then Some (a, b) else Some (b, a)

let diameter_pair ?(eps = 1e-9) t =
  diameter_pair_with t
    ~find_point:(fun t -> find_point ~eps t)
    ~support:(fun t ~dir -> support ~eps t ~dir)

module Reference = struct
  let find_point ?(eps = 1e-9) t =
    Option.map (point_of_solution t)
      (Lp.feasible_point ~eps ~nvars:t.nvars (constraints t))

  let support ?(eps = 1e-9) t ~dir =
    match
      Lp.solve ~eps ~nvars:t.nvars ~minimize:false
        ~objective:(support_objective t ~dir)
        (constraints t)
    with
    | Lp.Infeasible -> None
    | Lp.Unbounded -> assert false
    | Lp.Optimal (v, x) -> Some (v, point_of_solution t x)

  let diameter_pair ?(eps = 1e-9) t =
    diameter_pair_with t
      ~find_point:(fun t -> find_point ~eps t)
      ~support:(fun t ~dir -> support ~eps t ~dir)
end
