(** Exact convex polytopes in [R^3]: hulls of small point sets and
    intersections of hulls, by supporting-plane enumeration and successive
    halfspace clipping.

    This is the D = 3 counterpart of {!Polygon}: an explicit boundary
    representation (face rings aligned with outward halfspaces) on which
    diameter, membership and centroid queries are closed-form scans instead
    of linear programs. It backs the [Safe_area] D = 3 kernel; the
    LP-backed {!Hullset} remains the oracle for differential tests and the
    kernel for D ≥ 4.

    All operations are deterministic pure functions of the input coordinate
    bits. Degenerate inputs — affinely dependent point sets, intersections
    thinner than the tolerance band (relative [1e-9] of the clip-box
    diagonal) — are reported as [`Degenerate] rather than approximated, and
    the caller is expected to fall back to the LP kernel, which keeps
    robustness a performance question rather than a correctness one. *)

type poly
(** A bounded convex polytope with non-empty interior (≥ 4 faces). *)

type halfspace = { n : Vec.t; o : float }
(** The region [n·x ≤ o], with [n] a unit vector. *)

val of_points :
  Vec.t list -> [ `Poly of poly | `Degenerate ]
(** Convex hull of a point set. [`Degenerate] when the set has fewer than
    four points, is affinely dependent, or is numerically flat. *)

val inter_hulls :
  Vec.t array array -> [ `Poly of poly | `Empty | `Degenerate ]
(** [inter_hulls hs] is [⋂ᵢ convex(hs.(i))]. [`Empty] when the clipped
    region vanished ({e advisory}: a lower-dimensional but non-empty true
    intersection can also report [`Empty] — callers that must distinguish
    re-decide emptiness with the LP kernel). [`Degenerate] when some hull
    is affinely dependent or the intersection is thinner than the
    tolerance band.

    @raise Invalid_argument on an empty array. *)

val vertices : poly -> Vec.t list
(** Deduped vertex set, lexicographically sorted (computed lazily once). *)

val halfspaces : poly -> halfspace list
(** The outward supporting halfspace of each face. *)

val nfaces : poly -> int

val contains : ?eps:float -> poly -> Vec.t -> bool
(** Membership: every face halfspace satisfied within [eps]
    (default [1e-9], absolute). *)

val diameter_pair : poly -> Vec.t * Vec.t
(** The exact diameter-realizing vertex pair, tie-broken deterministically
    as in {!Vec.diameter_pair}. *)

val diameter : poly -> float

val centroid : poly -> Vec.t
(** Arithmetic mean of the deduped vertex set. *)
