(* Exact convex geometry in R^3.

   A polytope is carried as boundary face rings aligned with their outward
   supporting halfspaces. Hulls of small point sets are built by
   supporting-plane enumeration over point triples (the sets here are
   trimmed subsets of at most a dozen protocol values, so the cubic triple
   scan is far below a single LP solve); intersections are computed by
   successively clipping a padded bounding box with every supporting
   halfspace. Clipping one halfspace is Sutherland–Hodgman on each face
   ring plus reconstruction of the cap face, O(total boundary size).

   Everything is a deterministic pure function of the input coordinate
   bits: triple enumeration order is fixed, supporting planes are sorted,
   ties in the cap-face angular order break on the lexicographic vector
   order. Degenerate inputs (affinely dependent point sets, slivers thinner
   than the tolerance band) are *reported*, never guessed at — the caller
   falls back to the LP-backed implicit kernel, so numerical robustness
   here costs accuracy of the fast path, not correctness. *)

type halfspace = { n : Vec.t; o : float }  (* unit [n]; region [n·x ≤ o] *)

type poly = {
  faces : (Vec.t array * halfspace) array;
  scale : float;  (* clip-box diagonal: the reference for tolerances *)
  mutable verts : Vec.t list option;  (* lazy deduped, sorted vertex list *)
}

let coords (v : Vec.t) = (v :> float array)

let cross a b =
  let a = coords a and b = coords b in
  Vec.of_array
    [|
      (a.(1) *. b.(2)) -. (a.(2) *. b.(1));
      (a.(2) *. b.(0)) -. (a.(0) *. b.(2));
      (a.(0) *. b.(1)) -. (a.(1) *. b.(0));
    |]

(* Tolerances: [tol p] bounds distances considered zero, relative to the
   clip-box diagonal so the kernel is scale-invariant. *)
let tol p = 1e-9 *. p.scale

let compare_halfspace h1 h2 =
  let c = Vec.compare h1.n h2.n in
  if c <> 0 then c else Float.compare h1.o h2.o

(* Collapse a chain of near-identical consecutive points (cyclically). *)
let dedupe_ring ~tol pts =
  let close a b = Vec.dist a b <= tol in
  let rec go = function
    | a :: (b :: _ as rest) when close a b -> go rest
    | a :: rest -> a :: go rest
    | [] -> []
  in
  match go pts with
  | [] | [ _ ] -> []
  | first :: _ :: _ as l ->
      let rec drop_last = function
        | [ last ] when close last first -> []
        | [] -> []
        | x :: rest -> x :: drop_last rest
      in
      drop_last l

(* Tolerance dedupe of an unordered point cloud: lexicographic sort, then
   collapse adjacent near-equal points. Deterministic. *)
let dedupe_cloud ~tol pts =
  match List.sort Vec.compare pts with
  | [] -> []
  | p :: rest ->
      List.rev
        (List.fold_left
           (fun acc q ->
             match acc with
             | last :: _ when Vec.dist last q <= tol -> acc
             | _ -> q :: acc)
           [ p ] rest)

(* A deterministic orthonormal basis (u, v) of the plane orthogonal to the
   unit vector [n]: project out the least-aligned coordinate axis. *)
let plane_basis n =
  let nc = coords n in
  let k = ref 0 in
  for i = 1 to 2 do
    if Float.abs nc.(i) < Float.abs nc.(!k) then k := i
  done;
  let e = Vec.basis ~dim:3 !k 1. in
  let u =
    match Vec.normalize (Vec.sub e (Vec.scale (Vec.dot n e) n)) with
    | Some u -> u
    | None -> assert false (* |n·e_k| ≤ 1/√3 < 1 *)
  in
  (u, cross n u)

(* Order coplanar points into a convex ring: angular sort around their
   centroid in a deterministic in-plane basis, ties broken lexicographically
   (exact duplicates have been removed by the caller). *)
let order_ring n pts =
  let c = Vec.centroid pts in
  let u, v = plane_basis n in
  let angle p =
    let d = Vec.sub p c in
    Float.atan2 (Vec.dot d v) (Vec.dot d u)
  in
  List.sort
    (fun a b ->
      let c = Float.compare (angle a) (angle b) in
      if c <> 0 then c else Vec.compare a b)
    pts

(* Clip [p] with one halfspace. [`Unchanged] when every vertex is already
   inside (the plane is redundant — the caller keeps [p] as is), [`Empty]
   when no vertex is strictly inside, [`Degenerate] when the result is
   thinner than the tolerance band (fewer than four surviving faces). *)
let clip p { n; o } =
  let eps = tol p in
  let dist v = Vec.dot n v -. o in
  let any_out = ref false and any_in = ref false in
  Array.iter
    (fun (ring, _) ->
      Array.iter
        (fun v ->
          let d = dist v in
          if d > eps then any_out := true
          else if d < -.eps then any_in := true)
        ring)
    p.faces;
  if not !any_out then `Unchanged
  else if not !any_in then `Empty
  else begin
    let kept = ref [] in
    let cap = ref [] in
    let on_plane v = Float.abs (dist v) <= 4. *. eps in
    Array.iter
      (fun (ring, plane) ->
        let k = Array.length ring in
        let out = ref [] in
        let push v = out := v :: !out in
        for i = 0 to k - 1 do
          let cur = ring.(i) and next = ring.((i + 1) mod k) in
          let dc = dist cur and dn = dist next in
          let ic = dc <= eps and inext = dn <= eps in
          if ic then push cur;
          if ic <> inext then begin
            let denom = dc -. dn in
            if Float.abs denom > 0. then
              let t = dc /. denom in
              push (Vec.add cur (Vec.scale t (Vec.sub next cur)))
          end
        done;
        match dedupe_ring ~tol:eps (List.rev !out) with
        | _ :: _ :: _ :: _ as ring' ->
            List.iter (fun v -> if on_plane v then cap := v :: !cap) ring';
            kept := (Array.of_list ring', plane) :: !kept
        | _ -> ())
      p.faces;
    (* The cap face: every surviving boundary point on the clip plane. Its
       vertices all also lie on two adjacent side faces, so the ring is
       recoverable by angular ordering. *)
    (match dedupe_cloud ~tol:eps !cap with
    | _ :: _ :: _ :: _ as pts ->
        kept := (Array.of_list (order_ring n pts), { n; o }) :: !kept
    | _ -> ());
    match !kept with
    | _ :: _ :: _ :: _ :: _ as faces ->
        `Poly { p with faces = Array.of_list (List.rev faces); verts = None }
    | _ -> `Degenerate
  end

(* The initial clip box: an axis-aligned box strictly containing the target
   region, face rings ordered as simple cycles. *)
let box ~lo ~hi ~scale =
  let v x y z = Vec.of_array [| x; y; z |] in
  let lx = lo.(0) and ly = lo.(1) and lz = lo.(2) in
  let hx = hi.(0) and hy = hi.(1) and hz = hi.(2) in
  let c000 = v lx ly lz and c001 = v lx ly hz in
  let c010 = v lx hy lz and c011 = v lx hy hz in
  let c100 = v hx ly lz and c101 = v hx ly hz in
  let c110 = v hx hy lz and c111 = v hx hy hz in
  let hs x y z o = { n = v x y z; o } in
  let faces =
    [|
      ([| c000; c001; c011; c010 |], hs (-1.) 0. 0. (-.lx));
      ([| c100; c110; c111; c101 |], hs 1. 0. 0. hx);
      ([| c000; c100; c101; c001 |], hs 0. (-1.) 0. (-.ly));
      ([| c010; c011; c111; c110 |], hs 0. 1. 0. hy);
      ([| c000; c010; c110; c100 |], hs 0. 0. (-1.) (-.lz));
      ([| c001; c101; c111; c011 |], hs 0. 0. 1. hz);
    |]
  in
  { faces; scale; verts = None }

(* Supporting halfspaces of [conv pts] by triple enumeration: a triple's
   plane supports the hull iff every point lies (within tolerance) on one
   side. Offsets take the max projection so all generators are inside.
   [`Degenerate] when the set is affinely dependent (no triple spans a
   proper plane, or some spanning plane has every point in its tolerance
   band). *)
let supporting_planes ~tol pts =
  let m = Array.length pts in
  let planes = ref [] in
  let flat = ref false in
  let spanning = ref false in
  (try
     for i = 0 to m - 3 do
       for j = i + 1 to m - 2 do
         for k = j + 1 to m - 1 do
           let a = pts.(i) and b = pts.(j) and c = pts.(k) in
           let cr = cross (Vec.sub b a) (Vec.sub c a) in
           match Vec.normalize cr with
           | None -> ()
           | Some n ->
               spanning := true;
               let o = Vec.dot n a in
               let hi = ref neg_infinity and lo = ref infinity in
               Array.iter
                 (fun p ->
                   let d = Vec.dot n p in
                   if d > !hi then hi := d;
                   if d < !lo then lo := d)
                 pts;
               if !hi <= o +. tol && !lo >= o -. tol then begin
                 (* every point in the plane's tolerance band: flat set *)
                 flat := true;
                 raise Exit
               end;
               if !hi <= o +. tol then planes := { n; o = !hi } :: !planes;
               if !lo >= o -. tol then
                 planes := { n = Vec.neg n; o = -. !lo } :: !planes
         done
       done
     done
   with Exit -> ());
  if !flat || not !spanning then `Degenerate
  else `Planes (List.sort_uniq compare_halfspace !planes)

let bbox pts =
  let lo = [| infinity; infinity; infinity |] in
  let hi = [| neg_infinity; neg_infinity; neg_infinity |] in
  Array.iter
    (fun p ->
      let c = coords p in
      for i = 0 to 2 do
        if c.(i) < lo.(i) then lo.(i) <- c.(i);
        if c.(i) > hi.(i) then hi.(i) <- c.(i)
      done)
    pts;
  (lo, hi)

(* Successively clip a padded bounding box of [seed] with [planes]. *)
let clip_box ~seed planes =
  let lo, hi = bbox seed in
  let diag =
    sqrt
      (((hi.(0) -. lo.(0)) ** 2.)
      +. ((hi.(1) -. lo.(1)) ** 2.)
      +. ((hi.(2) -. lo.(2)) ** 2.))
  in
  if not (Float.is_finite diag) || diag <= 0. then `Degenerate
  else begin
    let pad = 0.125 *. diag in
    for i = 0 to 2 do
      lo.(i) <- lo.(i) -. pad;
      hi.(i) <- hi.(i) +. pad
    done;
    let rec go p = function
      | [] -> `Poly p
      | h :: rest -> (
          match clip p h with
          | `Unchanged -> go p rest
          | `Poly p' -> go p' rest
          | (`Empty | `Degenerate) as r -> r)
    in
    go (box ~lo ~hi ~scale:diag) planes
  end

let of_points pts =
  let pts = Array.of_list pts in
  if Array.length pts < 4 then `Degenerate
  else begin
    let lo, hi = bbox pts in
    let diag =
      sqrt
        (((hi.(0) -. lo.(0)) ** 2.)
        +. ((hi.(1) -. lo.(1)) ** 2.)
        +. ((hi.(2) -. lo.(2)) ** 2.))
    in
    if not (Float.is_finite diag) || diag <= 0. then `Degenerate
    else
      match supporting_planes ~tol:(1e-9 *. diag) pts with
      | `Degenerate -> `Degenerate
      | `Planes planes -> (
          match clip_box ~seed:pts planes with
          | `Poly _ as r -> r
          | `Empty | `Degenerate -> `Degenerate)
  end

let inter_hulls hulls =
  if Array.length hulls = 0 then invalid_arg "Hull3d.inter_hulls: no hulls"
  else begin
    let seed = hulls.(0) in
    let lo, hi = bbox seed in
    let diag =
      sqrt
        (((hi.(0) -. lo.(0)) ** 2.)
        +. ((hi.(1) -. lo.(1)) ** 2.)
        +. ((hi.(2) -. lo.(2)) ** 2.))
    in
    if not (Float.is_finite diag) || diag <= 0. then `Degenerate
    else begin
      let tol = 1e-9 *. diag in
      let exception Bail in
      let planes = ref [] in
      (try
         Array.iter
           (fun h ->
             match supporting_planes ~tol h with
             | `Degenerate -> raise Bail
             | `Planes ps -> planes := ps :: !planes)
           hulls
       with Bail -> planes := []);
      match !planes with
      | [] -> `Degenerate
      | pss -> clip_box ~seed (List.concat (List.rev pss))
    end
  end

let vertices p =
  match p.verts with
  | Some vs -> vs
  | None ->
      let vs =
        dedupe_cloud ~tol:(tol p)
          (Array.to_list p.faces
          |> List.concat_map (fun (ring, _) -> Array.to_list ring))
      in
      p.verts <- Some vs;
      vs

let nfaces p = Array.length p.faces

let halfspaces p = Array.to_list p.faces |> List.map snd

let contains ?(eps = 1e-9) p v =
  Array.for_all (fun (_, { n; o }) -> Vec.dot n v <= o +. eps) p.faces

let diameter_pair p =
  match Vec.diameter_pair (vertices p) with
  | Some pair -> pair
  | None -> assert false (* a poly has ≥ 4 faces, hence ≥ 4 vertices *)

let diameter p =
  let a, b = diameter_pair p in
  Vec.dist a b

let centroid p = Vec.centroid (vertices p)
