(** Operations on an intersection [K = ⋂ᵢ convex(Vᵢ)] of finitely many
    convex hulls in arbitrary dimension, queried through linear programs.

    This is the implicit representation backing safe areas for [D ≥ 3],
    where explicit vertex enumeration of the intersection is impractical.
    All queries are deterministic. *)

type t
(** A non-trivial intersection description (at least one hull, every hull
    non-empty, all points of equal dimension). *)

val make : Vec.t list list -> t
(** @raise Invalid_argument on an empty list, an empty hull, or mixed
    dimensions. *)

val of_arrays : Vec.t array array -> t
(** Array-native constructor used by the safe-area kernels; adopts the
    arrays without copying, so they must not be mutated afterwards.
    Validation as in {!make}. *)

val dim : t -> int

val find_point : ?eps:float -> t -> Vec.t option
(** Some point of [K], or [None] when [K = ∅]. *)

val is_empty : ?eps:float -> t -> bool

val contains : ?eps:float -> t -> Vec.t -> bool
(** [contains t p]: membership in every hull. *)

val support : ?eps:float -> t -> dir:Vec.t -> (float * Vec.t) option
(** [support t ~dir] maximises [dir·p] over [p ∈ K]; returns the value and
    a maximiser. [None] when [K = ∅]. *)

val diameter_pair : ?eps:float -> t -> (Vec.t * Vec.t) option
(** A deterministic pair [(a, b)] of points of [K] approximating
    [argmax δ(a,b)], found by maximising the support width
    [h_K(d) + h_K(−d)] over a direction family (coordinate axes and
    normalised pairwise differences of the hulls' generators) followed by
    alternating refinement [d ← (a−b)/|a−b|]. Both returned points lie in
    [K] exactly (they are LP support points), so their midpoint is in [K].
    [None] when [K = ∅]. *)

(** All LP-backed queries above share one cached {!Lp.Problem} workspace
    per value of [t] (built lazily on the first query): the constraint
    system, tableau and phase-1 feasibility are computed once and every
    support/feasibility query replays phase 2 from that state, which keeps
    the answers bit-identical to the one-shot reference below.

    On top of the workspace, [support] and [find_point] answers are
    memoised per [t] — [support] keyed on the exact coordinate bits of the
    direction (consistent with {!Vec.equal_exact}) — so the diameter
    search's sign-symmetric family and alternating refinement never
    re-solve an LP they have already solved. A cache hit returns the stored
    answer verbatim and is therefore bit-identical to the cold query. The
    memo tables are valid for one [eps] at a time and reset when queried
    under a different tolerance.

    [Reference] is the unstaged path — every query rebuilds the constraint
    system and calls the one-shot {!Lp.solve} / {!Lp.feasible_point}, as
    the code before the workspace layer did. It exists for differential
    tests and the before/after benchmark groups; protocol code should use
    the cached queries above. *)
module Reference : sig
  val find_point : ?eps:float -> t -> Vec.t option
  val support : ?eps:float -> t -> dir:Vec.t -> (float * Vec.t) option
  val diameter_pair : ?eps:float -> t -> (Vec.t * Vec.t) option
end
